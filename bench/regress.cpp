// regress — the benchmark-regression harness for the PYTHIA core hot
// paths (Table I territory: per-event record cost, observe/predict
// latency, allocator traffic).
//
//   ./build/bench/regress [--out=BENCH_core.json] [--strict]
//
// Self-timed (no google-benchmark dependency) so it can fold the counting
// allocator's numbers into the same report. Emits one JSON object with:
//   - append throughput (events/s, ns/event) on regular + irregular traces
//   - finalize() cost
//   - observe()/predict(1) latency percentiles (p50/p90/p99)
//   - steady-state allocator calls and bytes per event (requires the
//     pythia_alloc_hook TU, which this binary links)
//
// --strict (or PYTHIA_BENCH_STRICT=1) exits nonzero when the steady-state
// hot paths allocate at all — the regression gate CI runs.
// PYTHIA_BENCH_SCALE scales the workload sizes as in every other bench.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/grammar.hpp"
#include "core/predictor.hpp"
#include "core/session.hpp"
#include "support/alloc_counter.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace {

using namespace pythia;
using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point begin, Clock::time_point end) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

std::vector<TerminalId> loop_trace(std::size_t events) {
  // BT-like: a 7-event loop body repeated (same shape as micro_core).
  std::vector<TerminalId> out;
  out.reserve(events);
  while (out.size() < events) {
    for (TerminalId t : {0u, 1u, 2u, 3u, 4u, 5u, 5u}) {
      if (out.size() >= events) break;
      out.push_back(t);
    }
  }
  return out;
}

std::vector<TerminalId> irregular_trace(std::size_t events,
                                        std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  out.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    out.push_back(static_cast<TerminalId>(rng.below(24)));
  }
  return out;
}

struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

Percentiles percentiles(std::vector<double>& samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[index];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  return out;
}

/// Best-of-reps wall time (ns) for appending `trace` into a fresh grammar.
double append_ns(const std::vector<TerminalId>& trace, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Grammar grammar;
    const auto begin = Clock::now();
    for (TerminalId t : trace) grammar.append(t);
    const double ns = elapsed_ns(begin, Clock::now());
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

double finalize_ns(const std::vector<TerminalId>& trace, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Grammar grammar;
    for (TerminalId t : trace) grammar.append(t);
    const auto begin = Clock::now();
    grammar.finalize();
    const double ns = elapsed_ns(begin, Clock::now());
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

double emit_append(bench::JsonWriter& json, const char* name,
                   const std::vector<TerminalId>& trace, int reps) {
  const double ns = append_ns(trace, reps);
  const double per_event = ns / static_cast<double>(trace.size());
  json.begin_object(name)
      .field("events", static_cast<std::uint64_t>(trace.size()))
      .field("ns_per_event", per_event)
      .field("events_per_sec", 1e9 / per_event)
      .end_object();
  std::printf("  %-24s %8.1f ns/event  (%.2fM events/s)\n", name, per_event,
              1e3 / per_event);
  return per_event;
}

struct JournaledAppend {
  double ns = -1.0;     ///< best journaled wall time across reps
  double ratio = -1.0;  ///< best per-rep journaled/plain ratio
};

/// Appending `trace` through a RecordSession — grammar append + framed
/// journal write on every event. Write-cadence durability (no fsync):
/// the crash-consistency level the SIGKILL matrix tests. Each rep also
/// times a plain-grammar pass back-to-back and the overhead ratio is
/// taken per rep, so CPU frequency drift between the journaled loop and
/// the earlier append_regular measurement cannot masquerade as journal
/// cost.
JournaledAppend journaled_append(const std::vector<TerminalId>& trace,
                                 int reps) {
  namespace fs = std::filesystem;
  JournaledAppend out;
  for (int rep = 0; rep < reps; ++rep) {
    const auto plain_begin = Clock::now();
    Grammar plain;
    for (TerminalId t : trace) plain.append(t);
    const double plain_ns = elapsed_ns(plain_begin, Clock::now());

    std::error_code ignored;
    const fs::path dir = fs::temp_directory_path() /
                         ("pythia_regress_journal_" + std::to_string(rep));
    fs::remove_all(dir, ignored);
    SessionOptions options;
    options.record_timestamps = false;  // match the bare-grammar baseline
    options.journal.sync_on_seal = false;
    Result<RecordSession> opened = RecordSession::open(dir.string(), options);
    if (!opened.ok()) {
      std::fprintf(stderr, "  append_journaled: %s\n",
                   opened.status().to_string().c_str());
      return out;
    }
    RecordSession session = opened.take();
    for (int k = 0; k < 6; ++k) {
      session.intern("k" + std::to_string(k));  // TerminalIds 0..5
    }
    const auto begin = Clock::now();
    for (TerminalId t : trace) session.event(t);
    const double ns = elapsed_ns(begin, Clock::now());
    if (out.ns < 0.0 || ns < out.ns) out.ns = ns;
    const double ratio = ns / plain_ns;
    if (out.ratio < 0.0 || ratio < out.ratio) out.ratio = ratio;
    // Abandon without finish(): the bench measures the append path only.
    fs::remove_all(dir, ignored);
  }
  return out;
}

void emit_percentiles(bench::JsonWriter& json, const char* name,
                      std::vector<double>& samples) {
  const Percentiles p = percentiles(samples);
  json.begin_object(name)
      .field("samples", static_cast<std::uint64_t>(samples.size()))
      .field("p50_ns", p.p50)
      .field("p90_ns", p.p90)
      .field("p99_ns", p.p99)
      .end_object();
  std::printf("  %-24s p50 %6.0f ns   p90 %6.0f ns   p99 %6.0f ns\n", name,
              p.p50, p.p90, p.p99);
}

/// Allocator traffic per event across `events` steady-state calls of `fn`.
template <typename Fn>
void emit_alloc(bench::JsonWriter& json, const char* name,
                std::size_t events, Fn&& fn, double& allocs_out) {
  const support::AllocSnapshot before = support::alloc_snapshot();
  fn();
  const support::AllocSnapshot delta = support::alloc_snapshot() - before;
  const double denom = static_cast<double>(events);
  allocs_out = static_cast<double>(delta.allocations) / denom;
  json.begin_object(name)
      .field("events", static_cast<std::uint64_t>(events))
      .field("allocations", delta.allocations)
      .field("allocs_per_event", allocs_out)
      .field("bytes_per_event", static_cast<double>(delta.bytes) / denom)
      .end_object();
  std::printf("  %-24s %6.4f allocs/event  %8.2f bytes/event\n", name,
              allocs_out, static_cast<double>(delta.bytes) / denom);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  bool strict = pythia::support::env_flag("PYTHIA_BENCH_STRICT");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "usage: regress [--out=FILE] [--strict]\n");
      return 2;
    }
  }

  const double scale = pythia::bench::workload_scale();
  const int reps = pythia::support::bench_reps(3);
  // Rounded to whole loop bodies so steady-state measurements that append
  // *more* loop iterations continue the pattern instead of starting a new
  // digram at a mid-body seam.
  const auto append_events =
      static_cast<std::size_t>(std::max(7000.0, 100000.0 * scale)) / 7 * 7;
  const auto latency_samples = static_cast<std::size_t>(
      std::max(2000.0, 50000.0 * scale));

  std::printf("pythia bench/regress  (scale %.2f, reps %d, alloc hook %s)\n",
              scale, reps,
              pythia::support::alloc_hook_active() ? "active" : "MISSING");

  pythia::bench::JsonWriter json;
  json.field("bench", std::string("regress"))
      .field("scale", scale)
      .field("reps", static_cast<std::uint64_t>(reps))
      .field("alloc_hook", pythia::support::alloc_hook_active());

  // --- grammar construction -------------------------------------------------
  const std::vector<TerminalId> regular = loop_trace(append_events);
  const std::vector<TerminalId> irregular =
      irregular_trace(append_events, 99);
  emit_append(json, "append_regular", regular, reps);
  emit_append(json, "append_irregular", irregular, reps);

  // Journaled append: the same regular trace through a RecordSession,
  // with the overhead ratio measured against a back-to-back plain pass
  // inside each rep. The acceptance bound is <= 15% overhead, enforced
  // by --strict; the per-rep best-of ratio (journaled and plain timed
  // back to back within one rep) is what makes the measurement stable
  // enough to gate on shared runners.
  const JournaledAppend journaled = journaled_append(regular, reps);
  if (journaled.ns > 0.0) {
    const double per_event = journaled.ns / static_cast<double>(regular.size());
    const double overhead = journaled.ratio - 1.0;
    json.begin_object("append_journaled")
        .field("events", static_cast<std::uint64_t>(regular.size()))
        .field("ns_per_event", per_event)
        .field("events_per_sec", 1e9 / per_event)
        .field("overhead_vs_plain_append", overhead)
        .end_object();
    std::printf("  %-24s %8.1f ns/event  (%.2fM events/s, %+.1f%% vs plain)\n",
                "append_journaled", per_event, 1e3 / per_event,
                overhead * 100.0);
  }

  const double fin_ns = finalize_ns(regular, reps);
  json.begin_object("finalize_regular")
      .field("events", static_cast<std::uint64_t>(regular.size()))
      .field("total_ns", fin_ns)
      .field("ns_per_event", fin_ns / static_cast<double>(regular.size()))
      .end_object();
  std::printf("  %-24s %8.0f ns total\n", "finalize_regular", fin_ns);

  // --- tracking / prediction latency ---------------------------------------
  Grammar grammar;
  for (TerminalId t : regular) grammar.append(t);
  grammar.finalize();
  Predictor predictor(grammar);

  // Warm up: one full pass seats every scratch buffer at its high-water
  // capacity, so the measured (and alloc-counted) passes are steady state.
  for (TerminalId t : regular) predictor.observe(t);

  std::vector<double> samples;
  samples.reserve(latency_samples);
  for (std::size_t i = 0; i < latency_samples; ++i) {
    const TerminalId event = regular[i % regular.size()];
    const auto begin = Clock::now();
    predictor.observe(event);
    samples.push_back(elapsed_ns(begin, Clock::now()));
  }
  const double observe_p50 = percentiles(samples).p50;
  emit_percentiles(json, "observe", samples);

  // Park the tracker mid-loop-body: at the very end of the reference
  // sequence predict(1) rightly has no future to report.
  for (TerminalId t : {0u, 1u, 2u}) predictor.observe(t);
  samples.clear();
  for (std::size_t i = 0; i < latency_samples; ++i) {
    const auto begin = Clock::now();
    const auto prediction = predictor.predict(1);
    samples.push_back(elapsed_ns(begin, Clock::now()));
    if (!prediction.has_value()) break;  // would make the numbers a lie
  }
  // Absolute numbers on this path have swung 32-46 ns p50 across
  // otherwise-neutral changes: per-call sampling pays the clock read
  // (~15-20 ns here) inside every sample, and the remainder moves with
  // code layout. The strict gate below therefore checks the RATIO
  // against observe(), which is measured back-to-back under the same
  // protocol and drifts with the same noise. For clock-overhead-free
  // absolute predict latencies, see bench/compiled (batched protocol).
  const double predict1_p50 = percentiles(samples).p50;
  emit_percentiles(json, "predict1", samples);

  // --- steady-state allocator traffic --------------------------------------
  double append_allocs = 0.0;
  double observe_allocs = 0.0;
  double predict_allocs = 0.0;
  if (pythia::support::alloc_hook_active()) {
    // Grammar warmed with the full regular trace: further loop iterations
    // only bump repetition exponents and recycle pooled nodes.
    Grammar warm;
    for (TerminalId t : regular) warm.append(t);
    const std::vector<TerminalId> tail = loop_trace(7 * 1000);
    emit_alloc(json, "append_steady_state", tail.size(),
               [&] { for (TerminalId t : tail) warm.append(t); },
               append_allocs);
    emit_alloc(json, "observe_steady_state", regular.size(),
               [&] { for (TerminalId t : regular) predictor.observe(t); },
               observe_allocs);
    for (TerminalId t : {0u, 1u, 2u}) predictor.observe(t);  // re-park
    emit_alloc(json, "predict_steady_state", 4096,
               [&] {
                 for (int i = 0; i < 4096; ++i) {
                   const auto p = predictor.predict(1);
                   if (!p.has_value()) break;
                 }
               },
               predict_allocs);
  } else {
    std::printf("  (alloc hook not linked — allocator metrics skipped)\n");
  }

  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (strict) {
    if (!pythia::support::alloc_hook_active()) {
      std::fprintf(stderr,
                   "strict: alloc hook not linked, cannot verify\n");
      return 1;
    }
    if (append_allocs > 0.0 || observe_allocs > 0.0 ||
        predict_allocs > 0.0) {
      std::fprintf(stderr,
                   "strict: steady-state hot path allocates "
                   "(append %.4f, observe %.4f, predict %.4f per event)\n",
                   append_allocs, observe_allocs, predict_allocs);
      return 1;
    }
    // Journaled-append overhead budget (crash-safe record sessions must
    // stay within 15% of a plain append pass).
    constexpr double kJournaledOverheadBudget = 0.15;
    if (journaled.ratio < 0.0) {
      std::fprintf(stderr,
                   "strict: journaled append overhead not measured\n");
      return 1;
    }
    if (journaled.ratio - 1.0 > kJournaledOverheadBudget) {
      std::fprintf(stderr,
                   "strict: journaled append overhead %.1f%% exceeds "
                   "budget %.0f%%\n",
                   (journaled.ratio - 1.0) * 100.0,
                   kJournaledOverheadBudget * 100.0);
      return 1;
    }
    // Early warning before the budget gate trips: overhead has measured
    // ~12.5% on the reference host, so anything above 13% means the
    // margin is nearly gone — flag it loudly without failing the run.
    constexpr double kJournaledWarnThreshold = 0.13;
    const double journaled_overhead = journaled.ratio - 1.0;
    if (journaled_overhead > kJournaledWarnThreshold) {
      std::fprintf(stderr,
                   "strict: WARNING journaled append overhead %.1f%% is "
                   "within %.1f%% of the %.0f%% budget\n",
                   journaled_overhead * 100.0,
                   (kJournaledOverheadBudget - journaled_overhead) * 100.0,
                   kJournaledOverheadBudget * 100.0);
    }
    // predict(1) drift gate (ratio, see the comment at the measurement).
    constexpr double kPredictVsObserveBudget = 2.0;
    if (predict1_p50 > kPredictVsObserveBudget * observe_p50) {
      std::fprintf(stderr,
                   "strict: predict(1) p50 %.1f ns is more than %.1fx the "
                   "observe p50 %.1f ns\n",
                   predict1_p50, kPredictVsObserveBudget, observe_p50);
      return 1;
    }
    std::printf(
        "strict: steady-state hot paths allocation-free, journaled "
        "overhead %+.1f%% (margin %.1f%% to the %.0f%% budget), "
        "predict(1)/observe ratio %.2f within %.1fx\n",
        journaled_overhead * 100.0,
        (kJournaledOverheadBudget - journaled_overhead) * 100.0,
        kJournaledOverheadBudget * 100.0,
        observe_p50 > 0.0 ? predict1_p50 / observe_p50 : 0.0,
        kPredictVsObserveBudget);
  }
  return 0;
}
