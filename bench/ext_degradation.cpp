// Extension — graceful degradation under injected faults.
//
// Lulesh (s=30, Pudding) with the general fault-injection harness
// perturbing the oracle's event stream: at each rate every fault class
// (drop / duplicate / reorder / inject-unknown) fires independently with
// that probability. Three runtime setups per rate:
//   Vanilla          — no oracle; immune to the faults by construction;
//   predict+breaker  — adaptive teams, divergence circuit breaker armed
//                      (the RunConfig default);
//   predict, no brk  — adaptive teams, breaker disabled: the oracle keeps
//                      re-anchoring on the perturbed stream and keeps
//                      acting on whatever it believes.
//
// The claim under test: with the breaker, predict-mode virtual time never
// falls meaningfully below vanilla (within 5% at a 50% fault rate) — a
// poisoned event stream degrades PYTHIA to a no-op, not to a liability.
#include <algorithm>
#include <cstdio>

#include "bench/lulesh_bench.hpp"
#include "harness/faults.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;

struct DegradationPoint {
  double predict_s = 0.0;
  double mean_team = 0.0;
  double confidence = 0.0;
  std::uint64_t anchors = 0;
  std::uint64_t suppressed = 0;
};

DegradationPoint predict_under_faults(const apps::App& app,
                                      const Trace& reference, double scale,
                                      double rate, bool breaker,
                                      std::uint64_t seed) {
  harness::RunConfig config;
  config.mode = harness::Mode::kPredict;
  config.ranks = 1;
  config.app.scale = scale;
  config.app.seed = 42;  // same workload every run; only faults vary
  config.machine = ompsim::MachineModel::pudding();
  config.omp_max_threads = 24;
  config.omp_adaptive = true;
  config.reference = &reference;
  config.breaker = breaker;
  config.faults = harness::FaultPlan::uniform(rate, seed);
  const harness::RunResult result = harness::run_app(app, config);

  DegradationPoint point;
  point.predict_s = result.makespan_seconds();
  point.mean_team = result.omp_stats.mean_team();
  point.confidence = result.min_confidence;
  point.anchors = result.predictor_stats.anchors;
  point.suppressed = result.predictor_stats.anchors_suppressed;
  return point;
}

}  // namespace

int main() {
  banner("Extension — degradation",
         "Lulesh (s=30, Pudding) under event-stream faults: the breaker "
         "pins predict at vanilla (virtual s)");

  const double scale = workload_scale();
  LuleshAtSize app(30);

  harness::RunConfig record;
  record.mode = harness::Mode::kRecord;
  record.ranks = 1;
  record.app.scale = scale;
  record.app.seed = 42;
  record.machine = ompsim::MachineModel::pudding();
  record.omp_max_threads = 24;
  const harness::RunResult recorded = harness::run_app(app, record);

  harness::RunConfig vanilla = record;
  vanilla.mode = harness::Mode::kVanilla;
  const double vanilla_s = harness::run_app(app, vanilla).makespan_seconds();

  support::Table table({"fault rate", "Vanilla (s)", "breaker (s)",
                        "vs vanilla", "no breaker (s)", "vs vanilla",
                        "anchors saved"});
  constexpr int kSeeds = 3;
  double worst_breaker_overhead = 0.0;
  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5}) {
    DegradationPoint with{}, without{};
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto salt = 17 + static_cast<std::uint64_t>(seed);
      const DegradationPoint b =
          predict_under_faults(app, recorded.trace, scale, rate, true, salt);
      const DegradationPoint n =
          predict_under_faults(app, recorded.trace, scale, rate, false, salt);
      with.predict_s += b.predict_s / kSeeds;
      with.anchors += b.anchors;
      with.suppressed += b.suppressed;
      without.predict_s += n.predict_s / kSeeds;
      without.anchors += n.anchors;
    }
    const double breaker_overhead = with.predict_s / vanilla_s - 1.0;
    const double plain_overhead = without.predict_s / vanilla_s - 1.0;
    worst_breaker_overhead =
        std::max(worst_breaker_overhead, breaker_overhead);
    const double saved =
        with.anchors + with.suppressed > 0
            ? static_cast<double>(with.suppressed) /
                  static_cast<double>(with.anchors + with.suppressed)
            : 0.0;
    table.add_row({support::strf("%.2f", rate),
                   support::strf("%.3f", vanilla_s),
                   support::strf("%.3f", with.predict_s),
                   support::strf("%+.1f%%", breaker_overhead * 100.0),
                   support::strf("%.3f", without.predict_s),
                   support::strf("%+.1f%%", plain_overhead * 100.0),
                   support::strf("%.0f%%", saved * 100.0)});
  }
  table.print();

  const bool ok = worst_breaker_overhead <= 0.05;
  std::printf(
      "\nShape check: %s — predict with the breaker stays within 5%% of\n"
      "vanilla at every fault rate (worst overhead %.1f%%); at rate 0 it\n"
      "keeps the full adaptive advantage.\n",
      ok ? "PASS" : "FAIL", worst_breaker_overhead * 100.0);
  return ok ? 0 : 1;
}
