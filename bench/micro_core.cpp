// Micro-benchmarks of the PYTHIA core (google-benchmark): grammar
// reduction throughput, prediction latency vs. distance, trace
// serialization. These quantify the per-event costs behind Table I and
// figure 9.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/grammar.hpp"
#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "support/rng.hpp"

namespace {

using namespace pythia;

std::vector<TerminalId> loop_trace(std::size_t events) {
  // BT-like: a 7-event loop body repeated.
  std::vector<TerminalId> out;
  out.reserve(events);
  while (out.size() < events) {
    for (TerminalId t : {0u, 1u, 2u, 3u, 4u, 5u, 5u}) {
      if (out.size() >= events) break;
      out.push_back(t);
    }
  }
  return out;
}

std::vector<TerminalId> irregular_trace(std::size_t events,
                                        std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  out.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    out.push_back(static_cast<TerminalId>(rng.below(24)));
  }
  return out;
}

void BM_GrammarAppend_Regular(benchmark::State& state) {
  const auto trace = loop_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Grammar grammar;
    for (TerminalId t : trace) grammar.append(t);
    benchmark::DoNotOptimize(grammar.rule_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_GrammarAppend_Regular)->Arg(1000)->Arg(100000);

void BM_GrammarAppend_Irregular(benchmark::State& state) {
  const auto trace =
      irregular_trace(static_cast<std::size_t>(state.range(0)), 99);
  for (auto _ : state) {
    Grammar grammar;
    for (TerminalId t : trace) grammar.append(t);
    benchmark::DoNotOptimize(grammar.rule_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_GrammarAppend_Irregular)->Arg(1000)->Arg(100000);

void BM_PredictAtDistance(benchmark::State& state) {
  Grammar grammar;
  for (TerminalId t : loop_trace(50000)) grammar.append(t);
  grammar.finalize();
  Predictor predictor(grammar);
  predictor.observe(0);
  predictor.observe(1);
  predictor.observe(2);
  const auto distance = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.predict(distance));
  }
}
BENCHMARK(BM_PredictAtDistance)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_ObserveTracked(benchmark::State& state) {
  Grammar grammar;
  const auto trace = loop_trace(50000);
  for (TerminalId t : trace) grammar.append(t);
  grammar.finalize();
  Predictor predictor(grammar);
  std::size_t index = 0;
  for (auto _ : state) {
    predictor.observe(trace[index % trace.size()]);
    ++index;
  }
}
BENCHMARK(BM_ObserveTracked);

void BM_TraceSaveLoad(benchmark::State& state) {
  Trace trace;
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (TerminalId t : loop_trace(20000)) recorder.record(t, now += 120);
  trace.threads.push_back(std::move(recorder).finish());
  const std::string path = "/tmp/pythia_micro_bench.pythia";
  for (auto _ : state) {
    trace.save(path);
    Trace loaded = Trace::load(path);
    benchmark::DoNotOptimize(loaded.threads.size());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_TraceSaveLoad);

}  // namespace

BENCHMARK_MAIN();
