// Ablation — why the paper modified GNU OpenMP's thread pool.
//
// §III-D1: "we have made the spurious threads wait until they are needed
// again" instead of destroying them. This bench runs the adaptive policy
// with and without the parked pool: without parking, every team resize
// pays thread destruction + re-creation, which devours the savings.
#include <cstdio>

#include "bench/lulesh_bench.hpp"

int main() {
  using namespace pythia;
  using namespace pythia::bench;
  using namespace pythia::harness;

  banner("Ablation", "adaptive policy with parked vs. vanilla thread pool");

  const double scale = workload_scale();
  support::Table table({"pool", "Vanilla (s)", "PYTHIA-predict (s)",
                        "improvement", "pool cost (ms)"});

  for (const bool park : {true, false}) {
    LuleshAtSize app(30);
    RunConfig base;
    base.ranks = 1;
    base.app.scale = scale;
    base.machine = ompsim::MachineModel::pudding();
    base.omp_max_threads = 24;
    base.omp_park = park;

    RunConfig record = base;
    record.mode = Mode::kRecord;
    const RunResult recorded = run_app(app, record);

    RunConfig vanilla = base;
    vanilla.mode = Mode::kVanilla;
    const RunResult vanilla_result = run_app(app, vanilla);

    RunConfig predict = base;
    predict.mode = Mode::kPredict;
    predict.reference = &recorded.trace;
    predict.omp_adaptive = true;
    const RunResult predict_result = run_app(app, predict);

    table.add_row(
        {park ? "parked (paper)" : "vanilla (destroy)",
         support::strf("%.3f", vanilla_result.makespan_seconds()),
         support::strf("%.3f", predict_result.makespan_seconds()),
         support::strf("%.1f%%", (1.0 - predict_result.makespan_seconds() /
                                            vanilla_result.makespan_seconds()) *
                                     100.0),
         support::strf("%.2f", predict_result.omp_stats.pool_cost_ns / 1e6)});
  }
  table.print();
  std::printf(
      "\nShape check: with the parked pool the adaptive strategy wins;\n"
      "with GNU OpenMP's destroy-on-shrink behaviour the resize cost\n"
      "cancels (or inverts) the benefit — the reason the paper patched\n"
      "the pool before deploying the optimization.\n");
  return 0;
}
