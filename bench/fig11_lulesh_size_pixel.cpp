// Figure 11 — Lulesh execution time vs. problem size (Pixel, 16
// threads). Same experiment as fig. 10 on the smaller machine; the
// paper reports up to 20 % improvement here.
#include <cstdio>

#include "bench/lulesh_bench.hpp"

int main() {
  using namespace pythia;
  using namespace pythia::bench;

  banner("Figure 11",
         "Lulesh time vs. problem size (Pixel, 16 threads, virtual s)");

  const double scale = workload_scale();
  support::Table table({"size", "Vanilla (s)", "PYTHIA-record (s)",
                        "PYTHIA-predict (s)", "improvement", "mean team"});
  for (int size : {10, 15, 20, 25, 30, 35, 40, 45, 50}) {
    const LuleshPoint point =
        lulesh_point(size, ompsim::MachineModel::pixel(), 16, scale);
    table.add_row(
        {support::strf("%d", size), support::strf("%.3f", point.vanilla_s),
         support::strf("%.3f", point.record_s),
         support::strf("%.3f", point.predict_s),
         support::strf("%.1f%%",
                       (1.0 - point.predict_s / point.vanilla_s) * 100.0),
         support::strf("%.1f", point.mean_team)});
  }
  table.print();
  std::printf(
      "\nShape check: same trend as fig. 10 with a smaller gap — fewer\n"
      "cores mean less fork/join overhead to save (paper: up to 20%% on\n"
      "Pixel vs 38%% on Pudding).\n");
  return 0;
}
