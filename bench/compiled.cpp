// compiled — zero-copy prediction automaton bench (compile.hpp +
// CompiledPredictor + mapped trace loading).
//
//   ./build/bench/compiled [--out=BENCH_compiled.json] [--strict]
//
// Answers three questions with numbers:
//   1. How fast is the compiled engine vs the interpreted walker on the
//      serving hot paths — predict(1) tracked, predict(1) right after an
//      anchor (the precomputed k-step table), observe(), predict_n?
//   2. What does compiling cost (time, blob bytes) for a given grammar?
//   3. How much faster does a daemon get a trace *servable* when it mmaps
//      the compiled section instead of deserializing the thread sections
//      (cold-start: file -> first answered prediction)?
//
// Latency protocol: per-call Clock::now() sampling (as bench/regress
// uses) floors every number at the clock-read cost, which drowns a
// table-lookup-fast path. Here each sample is the mean of a 64-call
// batch; percentiles are over batch means. Interpreted and compiled are
// measured under the SAME protocol, so the ratios are clean even where
// the absolute floor matters.
//
// --strict (or PYTHIA_BENCH_STRICT=1) gates:
//   * compiled anchored predict(1) p50 <= 20 ns,
//   * compiled >= 2x faster than interpreted at anchored predict(1)
//     (the ambiguous-anchor vote is the expensive interpreted path;
//     tracked predict(1) sits at the clock floor for BOTH engines and is
//     gated only against regression, <= 1.5x interpreted),
//   * mapped cold start >= 10x faster than full deserialization.
// The ratio gates compare numbers taken back-to-back on the same host,
// so they hold on slow/noisy runners; the absolute gate uses the batched
// p50, which is clock-overhead-free.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/compile.hpp"
#include "core/compiled_predictor.hpp"
#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "engine/snapshot.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace {

using namespace pythia;
using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point begin, Clock::time_point end) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

Percentiles percentiles(std::vector<double>& samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[index];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  return out;
}

void emit_percentiles(bench::JsonWriter& json, const char* name,
                      std::vector<double>& samples) {
  const Percentiles p = percentiles(samples);
  json.begin_object(name)
      .field("samples", static_cast<std::uint64_t>(samples.size()))
      .field("p50_ns", p.p50)
      .field("p90_ns", p.p90)
      .field("p99_ns", p.p99)
      .end_object();
  std::printf("  %-26s p50 %7.1f ns   p90 %7.1f ns   p99 %7.1f ns\n", name,
              p.p50, p.p90, p.p99);
}

/// Batched latency: each sample is the mean over `kBatch` calls of `fn`
/// (which must return a value to fold into the sink).
template <typename Fn>
std::vector<double> batched_samples(std::size_t batches, Fn&& fn) {
  constexpr std::size_t kBatch = 64;
  std::vector<double> samples;
  samples.reserve(batches);
  volatile std::uint64_t sink = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    std::uint64_t local = 0;
    const auto begin = Clock::now();
    for (std::size_t i = 0; i < kBatch; ++i) local += fn();
    const double ns = elapsed_ns(begin, Clock::now());
    sink = sink + local;
    samples.push_back(ns / static_cast<double>(kBatch));
  }
  return samples;
}

std::vector<TerminalId> loop_trace(std::size_t events) {
  // BT-like 7-event loop body (the shape bench/regress measures).
  std::vector<TerminalId> out;
  out.reserve(events);
  while (out.size() < events) {
    for (TerminalId t : {0u, 1u, 2u, 3u, 4u, 5u, 5u}) {
      if (out.size() >= events) break;
      out.push_back(t);
    }
  }
  return out;
}

std::vector<TerminalId> irregular_trace(std::size_t events,
                                        std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  out.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    out.push_back(static_cast<TerminalId>(rng.below(24)));
  }
  return out;
}

ThreadTrace record_thread(const std::vector<TerminalId>& stream) {
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (TerminalId t : stream) recorder.record(t, now += 1000);
  return std::move(recorder).finish();
}

constexpr std::size_t kN = 256;  ///< predict_n window

struct PairResult {
  double predict1_interpreted = 0.0;
  double predict1_compiled = 0.0;
  double predictn_interpreted = 0.0;
  double predictn_compiled = 0.0;
};

/// Measures the serving hot paths on one thread with BOTH engines under
/// the identical protocol: tracked predict(1), predict_n(256), observe.
/// Engines are parked mid-stream so every prediction has a future and
/// predict_n a full window; predict() is const, so the parked state holds
/// until the observe phase (which runs last).
PairResult measure_pair(bench::JsonWriter& json, const std::string& prefix,
                        const ThreadTrace& thread,
                        const std::vector<TerminalId>& stream,
                        std::size_t batches) {
  PairResult out;
  Predictor interpreted(thread.grammar, &thread.timing);
  CompiledPredictor compiled(thread.compiled, Predictor::Options{});
  const std::size_t park = stream.size() / 2;
  for (std::size_t i = 0; i < park; ++i) {
    interpreted.observe(stream[i]);
    compiled.observe(stream[i]);
  }

  std::vector<double> samples = batched_samples(batches, [&] {
    const auto p = interpreted.predict(1);
    return static_cast<std::uint64_t>(p.has_value() ? p->event : 0);
  });
  out.predict1_interpreted = percentiles(samples).p50;
  emit_percentiles(json, (prefix + "_predict1_interpreted").c_str(), samples);

  samples = batched_samples(batches, [&] {
    const auto p = compiled.predict(1);
    return static_cast<std::uint64_t>(p.has_value() ? p->event : 0);
  });
  out.predict1_compiled = percentiles(samples).p50;
  emit_percentiles(json, (prefix + "_predict1_compiled").c_str(), samples);

  TerminalId buffer[kN];
  samples = batched_samples(batches, [&] {
    return static_cast<std::uint64_t>(
        interpreted.predict_sequence_into(buffer, kN));
  });
  out.predictn_interpreted = percentiles(samples).p50;
  emit_percentiles(json, (prefix + "_predict_n256_interpreted").c_str(),
                   samples);

  samples = batched_samples(batches, [&] {
    return static_cast<std::uint64_t>(
        compiled.predict_sequence_into(buffer, kN));
  });
  out.predictn_compiled = percentiles(samples).p50;
  emit_percentiles(json, (prefix + "_predict_n256_compiled").c_str(), samples);

  // observe last: it advances the engines. Both replay the same on-
  // reference continuation, so advance/re-anchor mixes stay identical.
  std::size_t cursor = park;
  samples = batched_samples(batches, [&] {
    interpreted.observe(stream[cursor++ % stream.size()]);
    return std::uint64_t{0};
  });
  emit_percentiles(json, (prefix + "_observe_interpreted").c_str(), samples);
  cursor = park;
  samples = batched_samples(batches, [&] {
    compiled.observe(stream[cursor++ % stream.size()]);
    return std::uint64_t{0};
  });
  emit_percentiles(json, (prefix + "_observe_compiled").c_str(), samples);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_compiled.json";
  bool strict = support::env_flag("PYTHIA_BENCH_STRICT");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "usage: compiled [--out=FILE] [--strict]\n");
      return 2;
    }
  }

  const double scale = bench::workload_scale();
  const auto events =
      static_cast<std::size_t>(std::max(7000.0, 100000.0 * scale)) / 7 * 7;
  const auto batches =
      static_cast<std::size_t>(std::max(200.0, 2000.0 * scale));
  const int reps = support::bench_reps(3);

  std::printf("pythia bench/compiled  (scale %.2f, %zu events, %zu batches)\n",
              scale, events, batches);
  bench::JsonWriter json;
  json.field("bench", std::string("compiled"))
      .field("scale", scale)
      .field("events", static_cast<std::uint64_t>(events));

  // --- workloads -------------------------------------------------------------
  // rich: irregular 24-symbol stream -> a deep rule hierarchy, the case
  // grammar compilation exists for (the interpreted walker chases nested
  // expansions; the compiled engine reads flattened tables). The strict
  // gates apply here. loop: the BT-like 7-event loop bench/regress
  // measures — on it both engines sit near the measurement floor, so it
  // bounds the best case rather than showing the compiled win.
  const std::vector<TerminalId> rich_stream = irregular_trace(events, 7);
  ThreadTrace rich = record_thread(rich_stream);
  const std::vector<TerminalId> loop_stream = loop_trace(events);
  ThreadTrace loop = record_thread(loop_stream);

  // --- compile cost (rich grammar) ------------------------------------------
  const std::uint64_t digest = thread_section_digest(rich);
  double compile_ns = 0.0;
  std::vector<unsigned char> blob;
  for (int rep = 0; rep < reps; ++rep) {
    const auto begin = Clock::now();
    blob = compile_thread(rich.grammar, &rich.timing, digest);
    const double ns = elapsed_ns(begin, Clock::now());
    if (rep == 0 || ns < compile_ns) compile_ns = ns;
  }
  if (blob.empty() || !rich.compile() || !loop.compile()) {
    std::fprintf(stderr, "error: grammar did not compile\n");
    return 1;
  }
  json.begin_object("compile")
      .field("ns", compile_ns)
      .field("blob_bytes", static_cast<std::uint64_t>(blob.size()))
      .field("nodes", static_cast<std::uint64_t>(rich.compiled.node_count()))
      .field("rules", static_cast<std::uint64_t>(rich.compiled.rule_count()))
      .end_object();
  std::printf("  %-26s %8.0f ns  (%zu bytes, %u nodes, %u rules)\n",
              "compile", compile_ns, blob.size(), rich.compiled.node_count(),
              rich.compiled.rule_count());

  // --- hot paths, both engines, both workloads -------------------------------
  const PairResult rich_pair =
      measure_pair(json, "rich", rich, rich_stream, batches);
  const PairResult loop_pair =
      measure_pair(json, "loop", loop, loop_stream, batches);
  const double interpreted_p50 = rich_pair.predict1_interpreted;
  const double compiled_p50 = rich_pair.predict1_compiled;

  // --- predict(k) from a fresh ambiguous anchor (daemon first answer) -------
  // A fresh engine's first observe anchors; on the rich grammar that
  // anchor is ambiguous, so the interpreted engine re-votes across up to
  // 32 candidate continuations on EVERY predict. The compiled engine
  // reads one precomputed anchor-table row. This is where the strict
  // predict(1) gates apply — the tracked steady-state numbers above sit
  // at the measurement floor for both engines.
  Predictor anchored_interpreted(rich.grammar, &rich.timing);
  CompiledPredictor anchored(rich.compiled, Predictor::Options{});
  anchored_interpreted.observe(rich_stream[0]);
  anchored.observe(rich_stream[0]);
  std::vector<double> samples = batched_samples(batches, [&] {
    const auto p = anchored_interpreted.predict(1);
    return static_cast<std::uint64_t>(p.has_value() ? p->event : 0);
  });
  const double anchored_interpreted_p50 = percentiles(samples).p50;
  emit_percentiles(json, "anchored_predict1_interpreted", samples);
  samples = batched_samples(batches, [&] {
    const auto p = anchored.predict(1);
    return static_cast<std::uint64_t>(p.has_value() ? p->event : 0);
  });
  const double anchored_compiled_p50 = percentiles(samples).p50;
  emit_percentiles(json, "anchored_predict1_compiled", samples);
  samples = batched_samples(batches, [&] {
    const auto p = anchored.predict(4);
    return static_cast<std::uint64_t>(p.has_value() ? p->event : 0);
  });
  emit_percentiles(json, "anchored_predict4_compiled", samples);

  // --- memcpy floor for predict_n --------------------------------------------
  TerminalId buffer[kN];
  std::vector<TerminalId> src(kN);
  for (std::size_t i = 0; i < kN; ++i) src[i] = loop_stream[i];
  samples = batched_samples(batches, [&] {
    std::memcpy(buffer, src.data(), sizeof(TerminalId) * kN);
    return static_cast<std::uint64_t>(buffer[0]);
  });
  const double memcpy_p50 = percentiles(samples).p50;
  emit_percentiles(json, "memcpy256_baseline", samples);
  json.begin_object("predict_n_ratio")
      .field("rich_compiled_vs_memcpy",
             memcpy_p50 > 0.0 ? rich_pair.predictn_compiled / memcpy_p50 : 0.0)
      .field("rich_interpreted_vs_compiled",
             rich_pair.predictn_compiled > 0.0
                 ? rich_pair.predictn_interpreted / rich_pair.predictn_compiled
                 : 0.0)
      .field("loop_compiled_vs_memcpy",
             memcpy_p50 > 0.0 ? loop_pair.predictn_compiled / memcpy_p50 : 0.0)
      .field("loop_interpreted_vs_compiled",
             loop_pair.predictn_compiled > 0.0
                 ? loop_pair.predictn_interpreted / loop_pair.predictn_compiled
                 : 0.0)
      .end_object();

  // --- cold start: file -> first answered prediction ------------------------
  // Big irregular grammar: the case where deserialization actually hurts
  // (many rules, large occurrence index, big timing table).
  {
    // Fixed size, independent of PYTHIA_BENCH_SCALE: the >= 10x gate
    // needs a trace big enough that deserialization dominates, and a
    // scaled-down trace would flake the ratio right at the threshold.
    const std::vector<TerminalId> stream =
        irregular_trace(std::max<std::size_t>(events, 100000), 99);
    Trace trace;
    for (int k = 0; k < 24; ++k) trace.registry.intern("k" + std::to_string(k));
    trace.threads.push_back(record_thread(stream));
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "pythia_bench_compiled.pythia").string();
    trace.save(path);
    const TerminalId warm = stream[0];

    double full_ns = -1.0;
    double mapped_ns = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      {
        const auto begin = Clock::now();
        auto loaded = engine::TraceSnapshot::load(path);
        if (!loaded.ok()) {
          std::fprintf(stderr, "error: full load failed: %s\n",
                       loaded.status().to_string().c_str());
          return 1;
        }
        engine::PredictServer server(loaded.take());
        auto session = server.open(0).take();
        session.observe(warm);
        const bool answered = session.predict(1).has_value();
        const double ns = elapsed_ns(begin, Clock::now());
        if (answered && (full_ns < 0.0 || ns < full_ns)) full_ns = ns;
      }
      {
        const auto begin = Clock::now();
        auto loaded = engine::TraceSnapshot::load_mapped(path);
        if (!loaded.ok()) {
          std::fprintf(stderr, "error: mapped load failed: %s\n",
                       loaded.status().to_string().c_str());
          return 1;
        }
        engine::PredictServer server(loaded.take());
        auto session = server.open(0).take();
        session.observe(warm);
        const bool answered = session.predict(1).has_value();
        const double ns = elapsed_ns(begin, Clock::now());
        if (answered && (mapped_ns < 0.0 || ns < mapped_ns)) mapped_ns = ns;
      }
    }
    std::remove(path.c_str());
    const double ratio = mapped_ns > 0.0 ? full_ns / mapped_ns : 0.0;
    json.begin_object("cold_start")
        .field("full_load_ns", full_ns)
        .field("mapped_load_ns", mapped_ns)
        .field("speedup", ratio)
        .end_object();
    std::printf("  %-26s full %9.0f ns   mapped %9.0f ns   (%.1fx)\n",
                "cold_start", full_ns, mapped_ns, ratio);

    if (!json.write_file(out_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    if (strict) {
      bool ok = true;
      if (anchored_compiled_p50 > 20.0) {
        std::fprintf(stderr,
                     "strict: compiled anchored predict(1) p50 %.1f ns "
                     "exceeds 20 ns\n",
                     anchored_compiled_p50);
        ok = false;
      }
      if (anchored_interpreted_p50 < 2.0 * anchored_compiled_p50) {
        std::fprintf(stderr,
                     "strict: compiled anchored predict(1) only %.2fx faster "
                     "than interpreted (need >= 2x)\n",
                     anchored_compiled_p50 > 0.0
                         ? anchored_interpreted_p50 / anchored_compiled_p50
                         : 0.0);
        ok = false;
      }
      // Tracked predict(1) must not regress past the interpreted engine
      // by more than measurement noise: both sit at the clock floor.
      if (compiled_p50 > 1.5 * interpreted_p50) {
        std::fprintf(stderr,
                     "strict: compiled tracked predict(1) p50 %.1f ns is "
                     ">1.5x the interpreted %.1f ns\n",
                     compiled_p50, interpreted_p50);
        ok = false;
      }
      if (ratio < 10.0) {
        std::fprintf(stderr,
                     "strict: mapped cold start only %.1fx faster than full "
                     "load (need >= 10x)\n",
                     ratio);
        ok = false;
      }
      if (!ok) return 1;
      std::printf(
          "strict: anchored predict1 %.1f ns (%.1fx vs interpreted), cold "
          "start %.1fx — all gates pass\n",
          anchored_compiled_p50,
          anchored_interpreted_p50 / anchored_compiled_p50, ratio);
    }
  }
  return 0;
}
