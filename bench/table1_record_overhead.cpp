// Table I — performance evaluation of PYTHIA-RECORD.
//
// For each of the 13 applications (Large working set): wall-clock of the
// vanilla run vs. the run with PYTHIA-RECORD attached, the recording
// overhead in percent, the number of recorded events, and the average
// number of grammar rules. Application kernels burn real CPU (calibrated
// spinner), so the overhead percentage compares real work to the real
// cost of on-line grammar reduction — the quantity Table I reports.
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::harness;

struct PaperRow {
  const char* app;
  double vanilla_s;
  double overhead_pct;
  double events;
  int rules;
};

// Table I as printed in the paper (Paravance, 64/8 ranks, Large).
constexpr PaperRow kPaperRows[] = {
    {"BT", 24.2, 0.7, 2'329'920, 3},
    {"CG", 9.9, -0.3, 3'837'890, 15},
    {"EP", 4.2, -3.8, 384, 1},
    {"FT", 17.4, 0.2, 3'072, 2},
    {"IS", 3.2, 0.1, 2'493, 2},
    {"LU", 23.0, 1.4, 18'164'200, 11},
    {"MG", 4.2, -0.5, 609'888, 14},
    {"SP", 24.3, 0.2, 356'870, 9},
    {"AMG", 38.7, -0.9, 118'438, 150},
    {"Lulesh", 125.6, -1.1, 28'150'300, 12},
    {"Kripke", 59.8, 2.0, 9'881, 46},
    {"miniFE", 25.8, -5.8, 39'272, 8},
    {"Quicksilver", 35.9, 4.9, 26'786'800, 409},
};

double paper_overhead(const char* app) {
  for (const PaperRow& row : kPaperRows) {
    if (std::string(row.app) == app) return row.overhead_pct;
  }
  return 0.0;
}

int paper_rules(const char* app) {
  for (const PaperRow& row : kPaperRows) {
    if (std::string(row.app) == app) return row.rules;
  }
  return 0;
}

}  // namespace

int main() {
  banner("Table I", "overhead of PYTHIA-RECORD on the 13 applications");

  const int reps = static_cast<int>(support::env_long("PYTHIA_BENCH_REPS", 3));
  // Fraction of each rank's virtual compute burned as real CPU. Low
  // enough to keep the bench fast, high enough that recording cost is
  // measured against real work.
  const double real_fraction =
      support::env_double("PYTHIA_REAL_WORK", 1.0);

  support::Table table({"Application", "Vanilla (s)", "PYTHIA-RECORD (s)",
                        "overhead(%)", "paper(%)", "# events", "# rules",
                        "paper rules"});

  for (const apps::App* app : apps::all_apps()) {
    RunConfig base;
    base.app.set = apps::WorkingSet::kLarge;
    base.app.scale = workload_scale();
    base.real_work_fraction = real_fraction;
    base.machine = ompsim::MachineModel::paravance();
    base.omp_max_threads = 8;

    support::SampleSet vanilla_wall, record_wall;
    std::uint64_t events = 0;
    double rules = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      RunConfig vanilla = base;
      vanilla.mode = Mode::kVanilla;
      vanilla_wall.add(run_app(*app, vanilla).wall_seconds);

      RunConfig record = base;
      record.mode = Mode::kRecord;
      record.record_timestamps = false;  // as in Table I (no timing)
      const RunResult result = run_app(*app, record);
      record_wall.add(result.wall_seconds);
      events = result.total_events;
      rules = result.mean_rules;
    }

    const double vanilla_s = vanilla_wall.min();
    const double record_s = record_wall.min();
    const double overhead = (record_s / vanilla_s - 1.0) * 100.0;
    table.add_row({app->name(), support::strf("%.3f", vanilla_s),
                   support::strf("%.3f", record_s),
                   support::strf("%+.1f", overhead),
                   support::strf("%+.1f", paper_overhead(app->name().c_str())),
                   support::strf("%llu", static_cast<unsigned long long>(events)),
                   support::strf("%.0f", rules),
                   support::strf("%d", paper_rules(app->name().c_str()))});
  }
  table.print();
  std::printf(
      "\nShape check: overhead stays within a few percent for every app;\n"
      "event counts span orders of magnitude (EP tiny, LU/Lulesh/\n"
      "Quicksilver huge); grammars are small for regular apps and large\n"
      "for AMG/Quicksilver.\n");
  return 0;
}
