// Figure 10 — Lulesh execution time vs. problem size (Pudding, 24
// threads). Paper: PYTHIA-predict wins clearly at small sizes (38 % at
// s=30) and the gap narrows as the big kernels dominate.
#include <cstdio>

#include "bench/lulesh_bench.hpp"

int main() {
  using namespace pythia;
  using namespace pythia::bench;

  banner("Figure 10",
         "Lulesh time vs. problem size (Pudding, 24 threads, virtual s)");

  const double scale = workload_scale();
  support::Table table({"size", "Vanilla (s)", "PYTHIA-record (s)",
                        "PYTHIA-predict (s)", "improvement", "mean team"});
  for (int size : {10, 15, 20, 25, 30, 35, 40, 45, 50}) {
    const LuleshPoint point =
        lulesh_point(size, ompsim::MachineModel::pudding(), 24, scale);
    table.add_row(
        {support::strf("%d", size), support::strf("%.3f", point.vanilla_s),
         support::strf("%.3f", point.record_s),
         support::strf("%.3f", point.predict_s),
         support::strf("%.1f%%",
                       (1.0 - point.predict_s / point.vanilla_s) * 100.0),
         support::strf("%.1f", point.mean_team)});
  }
  table.print();
  std::printf(
      "\nShape check: predict beats vanilla at every size; the relative\n"
      "improvement is largest for small problems (paper: 38%% at s=30)\n"
      "and shrinks as the compute-bound kernels dominate. Record matches\n"
      "vanilla (recording does not change scheduling decisions).\n");
  return 0;
}
