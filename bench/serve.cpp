// serve — predict-daemon serving throughput, latency and overload
// behaviour (the oracle-as-a-service layer on top of the engine).
//
//   ./build/bench/serve [--out=BENCH_serve.json] [--strict]
//
// Three phases against one live Daemon over a socketpair:
//
//   sessions — 1000+ full session lifecycles (open, warmup lap,
//              observe/predict rounds, close) through the real wire
//              protocol; reports sessions/s and p50/p99 round-trip
//              latency for observe and predict separately.
//   overload — a tenant with a deliberately tiny rate budget floods
//              predicts; reports how many the daemon shed (admission
//              answering early, not queueing).
//   diverge  — a tenant walks off the recorded pattern until the
//              breaker degrades the session; reports degraded counts
//              (both client-observed and daemon-side).
//
// A fourth phase times registry cold start (time-to-servable) with the
// zero-copy mmap path vs full deserialization on a big irregular trace;
// bench/compiled carries the strict gate for that ratio.
//
// Wall-clock gates (--strict / PYTHIA_BENCH_STRICT) only arm on hosts
// with >= 2 hardware threads: the daemon serves from its own thread, so
// on a 1-core box every round trip pays a scheduler handoff and a
// latency assertion would measure the kernel, not the daemon. The
// counter gates (shed > 0, degraded > 0, no lost requests) always arm.
//
// PYTHIA_BENCH_SCALE scales the round counts (the 1000-session floor
// stays); PYTHIA_BENCH_REPS the best-of rep count.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/registry.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace {

using namespace pythia;
using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// The recorded reference: a b c repeated (ids 0 1 2).
Trace loop_trace(int iterations) {
  Trace trace;
  trace.registry.intern("a");
  trace.registry.intern("b");
  trace.registry.intern("c");
  Oracle oracle = Oracle::record(true);
  std::uint64_t now = 0;
  for (int i = 0; i < iterations; ++i) {
    for (TerminalId event : {0u, 1u, 2u}) oracle.event(event, now += 1000);
  }
  trace.threads.push_back(oracle.finish());
  return trace;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

struct SessionPhase {
  double sessions_per_sec = 0.0;
  double observe_p50_us = 0.0;
  double observe_p99_us = 0.0;
  double predict_p50_us = 0.0;
  double predict_p99_us = 0.0;
  std::uint64_t sessions = 0;
  std::uint64_t requests = 0;
  std::uint64_t shed = 0;  ///< answered, but shed by admission
  std::uint64_t lost = 0;  ///< transport-level failures (should be 0)
};

/// `sessions` full lifecycles on one connection; every round trip timed.
SessionPhase run_sessions(serve::PredictClient& client, std::size_t sessions,
                          int rounds) {
  SessionPhase result;
  std::vector<double> observe_us;
  std::vector<double> predict_us;
  observe_us.reserve(sessions * static_cast<std::size_t>(rounds));
  predict_us.reserve(sessions * static_cast<std::size_t>(rounds));
  const TerminalId lap[3] = {0, 1, 2};

  const auto begin = Clock::now();
  for (std::size_t s = 0; s < sessions; ++s) {
    auto opened = client.open("loop", 0);
    ++result.requests;
    if (!opened.ok()) {
      ++result.lost;
      continue;
    }
    if (!opened.value().open) {
      ++result.shed;  // answered with a code (shed/degraded), not lost
      continue;
    }
    serve::ClientSession session = opened.take();
    ++result.requests;
    if (!client.observe(session, lap, 3).ok()) ++result.lost;
    for (int i = 0; i < rounds; ++i) {
      const TerminalId next = lap[i % 3];
      auto t0 = Clock::now();
      const auto observed = client.observe(session, &next, 1);
      auto t1 = Clock::now();
      const auto predicted = client.predict(session, 1, 1);
      auto t2 = Clock::now();
      result.requests += 2;
      if (!observed.ok() || !predicted.ok()) {
        ++result.lost;
        continue;
      }
      if (predicted.value().code != serve::ReplyCode::kOk) {
        ++result.shed;
        continue;
      }
      observe_us.push_back(elapsed_s(t0, t1) * 1e6);
      predict_us.push_back(elapsed_s(t1, t2) * 1e6);
    }
    (void)client.close(session);
    ++result.requests;
    ++result.sessions;
  }
  const double wall = elapsed_s(begin, Clock::now());

  std::sort(observe_us.begin(), observe_us.end());
  std::sort(predict_us.begin(), predict_us.end());
  result.sessions_per_sec = static_cast<double>(result.sessions) / wall;
  result.observe_p50_us = percentile(observe_us, 0.50);
  result.observe_p99_us = percentile(observe_us, 0.99);
  result.predict_p50_us = percentile(predict_us, 0.50);
  result.predict_p99_us = percentile(predict_us, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  bool strict = support::env_flag("PYTHIA_BENCH_STRICT");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "usage: serve [--out=FILE] [--strict]\n");
      return 2;
    }
  }

  const double scale = support::bench_scale();
  const int reps = support::bench_reps(2);
  // The acceptance floor is 1000 sessions; scale adds, never subtracts.
  const auto sessions =
      std::max<std::size_t>(1000, static_cast<std::size_t>(1000 * scale));
  const int rounds = 6;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const bool wall_gates = strict && cores >= 2;

  bench::banner("serve", "predict daemon: sessions/s, round-trip latency, "
                         "overload shedding");
  if (strict && !wall_gates) {
    std::printf("  [1 hardware thread: wall-clock gates self-skip; counter "
                "gates stay armed]\n");
  }

  // One daemon, one trace, socketpair transport.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("pythia_bench_serve_" +
                                   std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string trace_path = (dir / "loop.pythia").string();
  if (!loop_trace(50).try_save(trace_path).ok()) {
    std::fprintf(stderr, "serve: cannot write trace file\n");
    return 1;
  }

  serve::Daemon daemon;
  if (!daemon.core().registry().add("loop", trace_path).ok() ||
      !daemon.start().ok()) {
    std::fprintf(stderr, "serve: daemon failed to start\n");
    return 1;
  }
  // The overload tenant's budget: trickle-rate, so the flood mostly sheds.
  serve::TenantLimits tight;
  tight.rate_per_sec = 100.0;
  tight.burst = 10.0;
  daemon.core().admission().set_limits(
      daemon.core().admission().register_tenant("flood"), tight);
  // The measurement tenants must never be the bottleneck being measured:
  // give them an effectively unlimited budget (the default 10k/s shapes
  // production tenants, not benches).
  serve::TenantLimits generous;
  generous.rate_per_sec = 1e9;
  generous.burst = 1e9;
  generous.max_inflight = 1 << 20;
  for (const char* tenant : {"bench", "diverge", "stats"}) {
    daemon.core().admission().set_limits(
        daemon.core().admission().register_tenant(tenant), generous);
  }

  auto connect_client = [&daemon](const std::string& tenant)
      -> serve::PredictClient* {
    int pair[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) return nullptr;
    if (!daemon.adopt(pair[0]).ok()) return nullptr;
    serve::ClientOptions options;
    options.tenant = tenant;
    options.request_timeout_ms = 10000;
    options.degraded_ttl_ms = 0;  // count every degraded answer honestly
    auto* client = new serve::PredictClient(options);
    if (!client->connect_fd(pair[1]).ok()) {
      delete client;
      return nullptr;
    }
    return client;
  };

  // --- phase 1: session lifecycles ----------------------------------------
  SessionPhase best;
  for (int rep = 0; rep < reps; ++rep) {
    auto* client = connect_client("bench");
    if (client == nullptr) return 1;
    const SessionPhase phase = run_sessions(*client, sessions, rounds);
    if (phase.sessions_per_sec > best.sessions_per_sec) best = phase;
    delete client;
  }
  std::printf("  sessions   %8.0f sessions/s over %llu sessions "
              "(%d rounds each)\n",
              best.sessions_per_sec,
              static_cast<unsigned long long>(best.sessions), rounds);
  std::printf("  observe    p50 %7.1f us   p99 %7.1f us\n",
              best.observe_p50_us, best.observe_p99_us);
  std::printf("  predict    p50 %7.1f us   p99 %7.1f us\n",
              best.predict_p50_us, best.predict_p99_us);

  // --- phase 2: overload ---------------------------------------------------
  std::uint64_t flood_ok = 0;
  std::uint64_t flood_shed = 0;
  {
    auto* client = connect_client("flood");
    if (client == nullptr) return 1;
    auto opened = client->open("loop", 0);
    if (opened.ok() && opened.value().open) {
      serve::ClientSession session = opened.take();
      const TerminalId lap[3] = {0, 1, 2};
      (void)client->observe(session, lap, 3);
      const auto flood_requests =
          static_cast<std::size_t>(2000 * scale) + 500;
      for (std::size_t i = 0; i < flood_requests; ++i) {
        auto predicted = client->predict(session, 1, 1);
        if (!predicted.ok()) continue;
        if (predicted.value().code == serve::ReplyCode::kShed) {
          ++flood_shed;
        } else if (predicted.value().code == serve::ReplyCode::kOk) {
          ++flood_ok;
        }
      }
    }
    delete client;
  }
  std::printf("  overload   %llu shed / %llu served under flood\n",
              static_cast<unsigned long long>(flood_shed),
              static_cast<unsigned long long>(flood_ok));

  // --- phase 3: divergence -> degraded ------------------------------------
  std::uint64_t degraded_replies = 0;
  {
    auto* client = connect_client("diverge");
    if (client == nullptr) return 1;
    auto opened = client->open("loop", 0);
    if (opened.ok() && opened.value().open) {
      serve::ClientSession session = opened.take();
      // March firmly off the a-b-c loop; the breaker degrades, and from
      // then on every predict answers kDegraded without engine work.
      const TerminalId off_pattern[4] = {2, 2, 2, 2};
      for (int i = 0; i < 100; ++i) {
        (void)client->observe(session, off_pattern, 4);
        auto predicted = client->predict(session, 1, 1);
        if (predicted.ok() &&
            predicted.value().code == serve::ReplyCode::kDegraded) {
          ++degraded_replies;
        }
      }
    }
    delete client;
  }
  std::printf("  diverge    %llu degraded replies\n",
              static_cast<unsigned long long>(degraded_replies));

  // --- phase 4: registry cold start (mapped vs full load) ------------------
  // Time-to-servable for a cold registry entry: the zero-copy path maps
  // the compiled section in place; the full path deserializes every
  // thread section. Same file, fresh single-entry registry each way. A
  // big irregular trace makes the cost visible — tiny loop grammars load
  // fast either way.
  double cold_full_ns = -1.0;
  double cold_mapped_ns = -1.0;
  {
    const std::string big_path = (dir / "big.pythia").string();
    Trace big;
    for (int k = 0; k < 24; ++k) {
      big.registry.intern("k" + std::to_string(k));
    }
    Oracle recorder = Oracle::record(true);
    support::Rng rng(0xC01D);
    std::uint64_t now = 0;
    const auto cold_events =
        static_cast<std::size_t>(50000.0 * std::max(0.2, scale));
    for (std::size_t i = 0; i < cold_events; ++i) {
      recorder.event(static_cast<TerminalId>(rng.below(24)), now += 1000);
    }
    big.threads.push_back(recorder.finish());
    if (big.try_save(big_path).ok()) {
      for (int rep = 0; rep < std::max(reps, 2); ++rep) {
        for (const bool mapped : {false, true}) {
          serve::RegistryOptions options;
          options.prefer_mapped = mapped;
          serve::TraceRegistry registry(options);
          if (!registry.add("big", big_path).ok()) break;
          const auto t0 = Clock::now();
          auto snapshot = registry.acquire("big");
          const double ns = elapsed_s(t0, Clock::now()) * 1e9;
          if (!snapshot.ok()) break;
          double& best_ns = mapped ? cold_mapped_ns : cold_full_ns;
          if (best_ns < 0.0 || ns < best_ns) best_ns = ns;
        }
      }
    }
  }
  const double cold_speedup =
      (cold_full_ns > 0.0 && cold_mapped_ns > 0.0)
          ? cold_full_ns / cold_mapped_ns
          : 0.0;
  std::printf("  cold start full %8.0f ns   mapped %8.0f ns   (%.1fx)\n",
              cold_full_ns, cold_mapped_ns, cold_speedup);

  serve::StatsAckMsg server_stats;
  {
    auto* client = connect_client("stats");
    if (client != nullptr) {
      auto stats = client->server_stats();
      if (stats.ok()) server_stats = stats.take();
      delete client;
    }
  }
  daemon.stop();
  fs::remove_all(dir);

  bench::JsonWriter json;
  json.field("bench", std::string("serve"))
      .field("scale", scale)
      .field("reps", static_cast<std::uint64_t>(reps))
      .field("hardware_concurrency", static_cast<std::uint64_t>(cores))
      .field("wall_gates_armed", wall_gates);
  json.begin_object("sessions")
      .field("count", best.sessions)
      .field("rounds_per_session", static_cast<std::uint64_t>(rounds))
      .field("sessions_per_sec", best.sessions_per_sec)
      .field("observe_p50_us", best.observe_p50_us)
      .field("observe_p99_us", best.observe_p99_us)
      .field("predict_p50_us", best.predict_p50_us)
      .field("predict_p99_us", best.predict_p99_us)
      .field("requests", best.requests)
      .field("shed", best.shed)
      .field("lost", best.lost)
      .end_object();
  json.begin_object("overload")
      .field("shed", flood_shed)
      .field("served", flood_ok)
      .end_object();
  json.begin_object("diverge")
      .field("degraded_replies", degraded_replies)
      .end_object();
  json.begin_object("cold_start")
      .field("full_load_ns", cold_full_ns)
      .field("mapped_load_ns", cold_mapped_ns)
      .field("speedup", cold_speedup)
      .end_object();
  json.begin_object("daemon")
      .field("frames", server_stats.frames)
      .field("replies", server_stats.replies)
      .field("shed", server_stats.shed)
      .field("degraded", server_stats.degraded)
      .field("expired", server_stats.expired)
      .field("publishes", server_stats.publishes)
      .end_object();
  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "serve: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", out_path.c_str());

  // Counter gates: always on under --strict — they are wall-clock free.
  if (strict) {
    if (best.lost != 0) {
      std::fprintf(stderr, "STRICT: %llu lost requests\n",
                   static_cast<unsigned long long>(best.lost));
      return 1;
    }
    if (best.sessions < 1000) {
      std::fprintf(stderr, "STRICT: only %llu sessions completed\n",
                   static_cast<unsigned long long>(best.sessions));
      return 1;
    }
    if (flood_shed == 0) {
      std::fprintf(stderr, "STRICT: overload phase shed nothing\n");
      return 1;
    }
    if (degraded_replies == 0) {
      std::fprintf(stderr, "STRICT: divergence never degraded\n");
      return 1;
    }
  }
  if (wall_gates) {
    if (best.predict_p99_us > 10'000.0) {
      std::fprintf(stderr, "STRICT: predict p99 %0.1f us > 10 ms\n",
                   best.predict_p99_us);
      return 1;
    }
    if (best.sessions_per_sec < 50.0) {
      std::fprintf(stderr, "STRICT: %0.1f sessions/s < 50\n",
                   best.sessions_per_sec);
      return 1;
    }
  }
  return 0;
}
