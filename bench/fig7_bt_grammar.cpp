// Figure 7 — overview of the grammar extracted from BT.Large.
//
// The paper prints the grammar of one MPI rank:
//   R -> Bcast^6 B Barrier A^200 Allreduce Allreduce B Reduce Barrier
//   A -> B Isend Irecv [...] Wait^2
//   B -> Irecv Irecv [...] Waitall
// This bench records BT and prints the rank-0 grammar in the same
// notation (event names, exponents).
#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using namespace pythia;
  using namespace pythia::bench;
  using namespace pythia::harness;

  banner("Figure 7", "grammar extracted from BT (Large working set)");

  const apps::App* bt = apps::find_app("BT");
  RunConfig config;
  config.mode = Mode::kRecord;
  config.app.set = apps::WorkingSet::kLarge;
  config.app.scale = workload_scale();
  config.record_timestamps = false;
  const RunResult result = run_app(*bt, config);

  std::printf("BT.Large, %zu ranks, %llu events total.\n\n",
              result.trace.threads.size(),
              static_cast<unsigned long long>(result.total_events));
  std::printf("Grammar of rank 0 (%zu rules):\n\n",
              result.trace.threads[0].grammar.rule_count());
  std::printf("%s\n",
              result.trace.threads[0]
                  .grammar.to_text(&result.trace.registry)
                  .c_str());
  std::printf(
      "Shape check: one loop rule with a repetition exponent equal to the\n"
      "time-step count, a face-exchange rule (Irecv... Waitall), broadcast\n"
      "prologue and reduction epilogue — matching the paper's fig. 7.\n");
  return 0;
}
