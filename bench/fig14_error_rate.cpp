// Figure 14 — resilience to unexpected events.
//
// Lulesh (s=30, Pudding): the OpenMP runtime randomly submits unknown
// events with a given error rate (paper §III-E). As the rate grows, the
// oracle keeps losing synchronization, predictions at region entry fail,
// and the runtime falls back to max threads on small regions — the
// advantage over vanilla erodes.
#include <cstdio>

#include "bench/lulesh_bench.hpp"

int main() {
  using namespace pythia;
  using namespace pythia::bench;

  banner("Figure 14",
         "Lulesh (s=30, Pudding) time vs. injected error rate (virtual s)");

  const double scale = workload_scale();
  const LuleshPoint baseline =
      lulesh_point(30, ompsim::MachineModel::pudding(), 24, scale);

  support::Table table({"error rate", "Vanilla (s)", "PYTHIA-record (s)",
                        "PYTHIA-predict (s)", "improvement", "mean team"});
  for (double rate : {0.0, 0.001, 0.01, 0.05, 0.1, 0.2, 0.35, 0.5}) {
    // Average the stochastic injection over three seeds.
    double predict_sum = 0.0;
    double team_sum = 0.0;
    constexpr int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const LuleshPoint point =
          lulesh_point(30, ompsim::MachineModel::pudding(), 24, scale, rate,
                       42 + static_cast<std::uint64_t>(seed));
      predict_sum += point.predict_s;
      team_sum += point.mean_team;
    }
    const double predict_s = predict_sum / kSeeds;
    table.add_row(
        {support::strf("%.3f", rate),
         support::strf("%.3f", baseline.vanilla_s),
         support::strf("%.3f", baseline.record_s),
         support::strf("%.3f", predict_s),
         support::strf("%.1f%%",
                       (1.0 - predict_s / baseline.vanilla_s) * 100.0),
         support::strf("%.1f", team_sum / kSeeds)});
  }
  table.print();
  std::printf(
      "\nShape check: at low error rates predict retains most of its\n"
      "advantage; as the rate climbs the improvement decays towards the\n"
      "vanilla baseline (paper fig. 14).\n");
  return 0;
}
