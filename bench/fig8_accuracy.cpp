// Figure 8 — accuracy of PYTHIA-PREDICT predictions.
//
// For every application: record a reference trace with the Small working
// set, then run the application with the Small, Medium and Large sets,
// asking at every blocking MPI call which event will occur in x events,
// for x in {1, 2, 4, ..., 128}. Reported: the fraction of scored
// predictions that were correct (the paper's correct-vs-incorrect count).
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "bench/bench_util.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::harness;

const std::vector<std::size_t> kDistances = {1, 2, 4, 8, 16, 32, 64, 128};

std::map<std::size_t, AccuracyProbe::Tally> measure(
    const apps::App& app, const Trace& reference, apps::WorkingSet set,
    double scale) {
  std::map<std::size_t, AccuracyProbe::Tally> tallies;
  std::mutex mutex;

  RunConfig config;
  config.mode = Mode::kPredict;
  config.app.set = set;
  config.app.scale = scale;
  // A fresh execution, not a replay: apps whose communication depends on
  // program state (Quicksilver particles, AMG coarsening) naturally vary
  // between runs — the variation the paper's fig. 8 measures.
  config.app.seed = 1337;
  config.reference = &reference;
  config.observer_factory = [&](int, Oracle& oracle) {
    struct Collector : AccuracyProbe {
      Collector(Oracle& o, std::map<std::size_t, AccuracyProbe::Tally>* out,
                std::mutex* m)
          : AccuracyProbe(o, kDistances), out_(out), mutex_(m) {}
      ~Collector() override {
        std::lock_guard lock(*mutex_);
        merge_into(*out_);
      }
      std::map<std::size_t, AccuracyProbe::Tally>* out_;
      std::mutex* mutex_;
    };
    return std::make_unique<Collector>(oracle, &tallies, &mutex);
  };
  run_app(app, config);
  return tallies;
}

}  // namespace

int main() {
  banner("Figure 8",
         "prediction accuracy vs. distance (trace: Small; runs: S/M/L)");

  const double scale = workload_scale();

  std::vector<std::string> header = {"Application", "run set"};
  for (std::size_t d : kDistances) header.push_back("x=" + std::to_string(d));
  support::Table table(header);

  for (const apps::App* app : apps::all_apps()) {
    // Reference execution: Small working set (paper §III-C2).
    RunConfig record;
    record.mode = Mode::kRecord;
    record.app.set = apps::WorkingSet::kSmall;
    record.app.scale = scale;
    const RunResult recorded = run_app(*app, record);

    for (const apps::WorkingSet set :
         {apps::WorkingSet::kSmall, apps::WorkingSet::kMedium,
          apps::WorkingSet::kLarge}) {
      const auto tallies = measure(*app, recorded.trace, set, scale);
      std::vector<std::string> row = {app->name(),
                                      apps::to_string(set)};
      for (std::size_t d : kDistances) {
        auto it = tallies.find(d);
        const bool scored =
            it != tallies.end() &&
            it->second.correct + it->second.incorrect > 0;
        if (!scored) {
          // Nothing verifiable at this distance (the prediction target
          // lies past the end of the run for every request).
          row.push_back("-");
        } else {
          row.push_back(
              support::strf("%5.1f%%", it->second.answered_accuracy() * 100));
        }
      }
      table.add_row(std::move(row));
    }
  }
  table.print();
  std::printf(
      "\nShape check: short-distance accuracy is high everywhere; regular\n"
      "apps (BT, EP, FT, SP, miniFE) stay >90%% out to x=128 even on\n"
      "larger working sets; irregular apps (Quicksilver, AMG) degrade\n"
      "with distance; size-dependent loop counts (LU, MG, CG) mispredict\n"
      "near loop boundaries on medium/large runs.\n");
  return 0;
}
