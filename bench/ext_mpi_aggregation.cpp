// Extension — prediction-guided MPI send aggregation.
//
// The paper motivates its MPI integration with "the optimization could
// consist in aggregating multiple successive MPI send messages" (§III-B)
// but implements no optimization. This bench closes that loop: a bursty
// producer sends several small fragments per step to its neighbour; with
// PYTHIA, the runtime buffers fragments while the oracle predicts more
// isends to the same destination and ships them as one wire transaction.
#include <cstdio>
#include <mutex>

#include "bench/bench_util.hpp"
#include "mpisim/aggregator.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::mpisim;

constexpr int kFragments = 8;

void bursty_program(SendAggregator& mpi, int rank, int size, int steps) {
  const int right = (rank + 1) % size;
  const int left = (rank + size - 1) % size;
  const std::vector<double> fragment(32, 1.0);
  for (int step = 0; step < steps; ++step) {
    std::vector<Request> recvs;
    for (int f = 0; f < kFragments; ++f) {
      recvs.push_back(mpi.irecv(left, f));
    }
    for (int f = 0; f < kFragments; ++f) {
      mpi.isend(right, f, Communicator::as_bytes(fragment));
    }
    mpi.waitall(recvs);
    mpi.compute(8'000);
    if (step % 25 == 24) mpi.allreduce(1.0, ReduceOp::kSum);
  }
  mpi.barrier();
}

struct Outcome {
  double seconds = 0.0;
  SendAggregator::Stats stats;
};

Outcome run(int ranks, int steps, const Trace* reference,
            SharedRegistry& shared, std::vector<ThreadTrace>* record_out) {
  Outcome outcome;
  std::mutex mutex;
  Cluster cluster(ranks);
  const Cluster::Result result = cluster.run([&](Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    Oracle oracle = reference != nullptr
                        ? Oracle::predict(reference->threads[rank])
                        : (record_out != nullptr ? Oracle::record(true)
                                                 : Oracle::off());
    InstrumentedComm mpi(comm, oracle, shared);
    SendAggregator aggregator(mpi);
    bursty_program(aggregator, comm.rank(), comm.size(), steps);
    aggregator.flush();

    std::lock_guard lock(mutex);
    const auto& stats = aggregator.stats();
    outcome.stats.sends += stats.sends;
    outcome.stats.batched += stats.batched;
    outcome.stats.batches += stats.batches;
    outcome.stats.flushes += stats.flushes;
    outcome.stats.latency_saved += stats.latency_saved;
    if (record_out != nullptr) {
      (*record_out)[rank] = oracle.finish();
    }
  });
  outcome.seconds = static_cast<double>(result.makespan_virtual_ns) * 1e-9;
  return outcome;
}

}  // namespace

int main() {
  banner("Extension: send aggregation",
         "bursty neighbour exchange, 8 ranks, 8 fragments per step");

  const int steps = static_cast<int>(200 * workload_scale());
  constexpr int kRanks = 8;

  Trace trace;
  SharedRegistry shared(trace.registry);

  // Vanilla: no trace, oracle off — the aggregator flushes every send.
  const Outcome vanilla = run(kRanks, steps, nullptr, shared, nullptr);

  // Reference execution with recording.
  std::vector<ThreadTrace> threads(kRanks);
  run(kRanks, steps, nullptr, shared, &threads);
  for (ThreadTrace& thread : threads) {
    trace.threads.push_back(std::move(thread));
  }

  // Predict run: the aggregator batches while the oracle foresees sends.
  const Outcome predicted = run(kRanks, steps, &trace, shared, nullptr);

  support::Table table({"setup", "time (virtual s)", "wire transactions",
                        "msgs aggregated", "latencies saved"});
  table.add_row({"vanilla (flush every send)",
                 support::strf("%.4f", vanilla.seconds),
                 support::strf("%llu",
                               static_cast<unsigned long long>(
                                   vanilla.stats.flushes)),
                 "0", "0"});
  table.add_row(
      {"PYTHIA-guided aggregation", support::strf("%.4f", predicted.seconds),
       support::strf("%llu",
                     static_cast<unsigned long long>(predicted.stats.flushes)),
       support::strf("%llu",
                     static_cast<unsigned long long>(predicted.stats.batched)),
       support::strf("%llu", static_cast<unsigned long long>(
                                 predicted.stats.latency_saved))});
  table.print();

  std::printf(
      "\nimprovement: %.1f%% — each 8-fragment burst pays one injection\n"
      "overhead and one latency instead of eight; mispredictions only cost\n"
      "an early flush, never correctness.\n",
      (1.0 - predicted.seconds / vanilla.seconds) * 100.0);
  return 0;
}
