// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "harness/probes.hpp"
#include "harness/runner.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace pythia::bench {

/// Scale for workload iteration counts: reduced defaults unless
/// PYTHIA_FULL is set; PYTHIA_BENCH_SCALE multiplies on top.
inline double workload_scale() {
  const double base = support::full_fidelity() ? 5.0 : 1.0;
  return base * support::bench_scale();
}

inline void banner(const char* experiment, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("(PYTHIA reproduction; simulated cluster, see DESIGN.md. Shapes,\n");
  std::printf(" not absolute values, are the comparison target.)\n");
  std::printf("================================================================\n\n");
}

/// Minimal JSON object writer for machine-readable bench results
/// (bench/regress emits BENCH_core.json with it; any bench can reuse it
/// to publish numbers for CI diffing). Values are appended in call order;
/// nesting via begin_object()/end_object(). No external dependency.
class JsonWriter {
 public:
  JsonWriter() { out_ = "{"; }

  JsonWriter& field(const std::string& key, double value) {
    char buffer[64];
    // %.6g keeps latencies readable and round-trips the magnitudes we
    // care about; integral doubles print without an exponent.
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    raw(key, buffer);
    return *this;
  }
  JsonWriter& field(const std::string& key, std::uint64_t value) {
    raw(key, std::to_string(value));
    return *this;
  }
  JsonWriter& field(const std::string& key, bool value) {
    raw(key, value ? "true" : "false");
    return *this;
  }
  JsonWriter& field(const std::string& key, const std::string& value) {
    raw(key, "\"" + escape(value) + "\"");
    return *this;
  }

  JsonWriter& begin_object(const std::string& key) {
    separator();
    out_ += quote(key) + ": {";
    fresh_ = true;
    ++depth_;
    return *this;
  }
  JsonWriter& end_object() {
    out_ += "}";
    fresh_ = false;
    --depth_;
    return *this;
  }

  /// Final document; call once, after all fields.
  std::string str() {
    while (depth_ > 0) end_object();
    return out_ + "}\n";
  }

  bool write_file(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::string body = str();
    const bool ok = std::fwrite(body.data(), 1, body.size(), file) ==
                    body.size();
    return std::fclose(file) == 0 && ok;
  }

 private:
  static std::string escape(const std::string& text) {
    std::string out;
    for (char c : text) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  static std::string quote(const std::string& key) {
    return "\"" + escape(key) + "\"";
  }
  void separator() {
    if (!fresh_) out_ += ", ";
    fresh_ = false;
  }
  void raw(const std::string& key, const std::string& value) {
    separator();
    out_ += quote(key) + ": " + value;
  }

  std::string out_;
  bool fresh_ = true;
  int depth_ = 0;
};

}  // namespace pythia::bench
