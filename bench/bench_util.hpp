// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "apps/app.hpp"
#include "harness/probes.hpp"
#include "harness/runner.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace pythia::bench {

/// Scale for workload iteration counts: reduced defaults unless
/// PYTHIA_FULL is set; PYTHIA_BENCH_SCALE multiplies on top.
inline double workload_scale() {
  const double base = support::full_fidelity() ? 5.0 : 1.0;
  return base * support::bench_scale();
}

inline void banner(const char* experiment, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("(PYTHIA reproduction; simulated cluster, see DESIGN.md. Shapes,\n");
  std::printf(" not absolute values, are the comparison target.)\n");
  std::printf("================================================================\n\n");
}

}  // namespace pythia::bench
