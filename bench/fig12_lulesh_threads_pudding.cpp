// Figure 12 — Lulesh (s=30) execution time vs. maximum thread count
// (Pudding). Vanilla and record always use the maximum; predict adapts
// per region within the maximum. Paper: identical up to ~8 threads,
// up to 38.8 % improvement at high counts.
#include <cstdio>

#include "bench/lulesh_bench.hpp"

int main() {
  using namespace pythia;
  using namespace pythia::bench;

  banner("Figure 12",
         "Lulesh (s=30) time vs. max threads (Pudding, virtual s)");

  const double scale = workload_scale();
  support::Table table({"max threads", "Vanilla (s)", "PYTHIA-record (s)",
                        "PYTHIA-predict (s)", "improvement", "mean team"});
  for (int threads : {1, 2, 4, 8, 12, 16, 20, 24}) {
    const LuleshPoint point =
        lulesh_point(30, ompsim::MachineModel::pudding(), threads, scale);
    table.add_row(
        {support::strf("%d", threads),
         support::strf("%.3f", point.vanilla_s),
         support::strf("%.3f", point.record_s),
         support::strf("%.3f", point.predict_s),
         support::strf("%.1f%%",
                       (1.0 - point.predict_s / point.vanilla_s) * 100.0),
         support::strf("%.1f", point.mean_team)});
  }
  table.print();
  std::printf(
      "\nShape check: all three coincide at low thread counts; beyond ~8\n"
      "threads vanilla pays fork/join on every small region while predict\n"
      "keeps improving (paper: up to 38.8%% at 24 threads).\n");
  return 0;
}
