// Ablation — repetition exponents vs. classic SEQUITUR.
//
// The paper's grammar follows Cyclitur in attaching consecutive-repeat
// exponents to every occurrence (§II-A), citing Sequitur's "drawbacks
// for detecting some control flow from execution traces" (§IV). This
// bench quantifies the choice on the recorded event streams of the real
// application skeletons: grammar size (rules, body symbols) and
// reduction throughput, exponent grammar vs. the classic baseline.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/sequitur_classic.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::harness;

struct Comparison {
  std::size_t exp_rules = 0, exp_nodes = 0;
  std::size_t classic_rules = 0, classic_nodes = 0;
  double exp_mevents_s = 0.0, classic_mevents_s = 0.0;
};

Comparison compare(const std::vector<TerminalId>& events) {
  using clock = std::chrono::steady_clock;
  Comparison out;
  {
    const auto start = clock::now();
    Grammar grammar;
    for (TerminalId t : events) grammar.append(t);
    const double seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    out.exp_rules = grammar.rule_count();
    for (const Rule* rule : grammar.rules()) out.exp_nodes += rule->length;
    out.exp_mevents_s =
        static_cast<double>(events.size()) / seconds / 1e6;
  }
  {
    const auto start = clock::now();
    baseline::ClassicSequitur sequitur;
    for (TerminalId t : events) sequitur.append(t);
    const double seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    out.classic_rules = sequitur.rule_count();
    out.classic_nodes = sequitur.node_count();
    out.classic_mevents_s =
        static_cast<double>(events.size()) / seconds / 1e6;
  }
  return out;
}

}  // namespace

int main() {
  banner("Ablation: repetition exponents",
         "exponent grammar vs classic SEQUITUR on recorded app streams");

  const double scale = workload_scale();
  support::Table table({"Application", "events", "rules (exp)",
                        "rules (classic)", "nodes (exp)", "nodes (classic)",
                        "Mev/s (exp)", "Mev/s (classic)"});

  for (const apps::App* app : apps::all_apps()) {
    RunConfig record;
    record.mode = Mode::kRecord;
    record.app.set = apps::WorkingSet::kLarge;
    record.app.scale = scale;
    record.record_timestamps = false;
    const RunResult recorded = run_app(*app, record);

    // Rank 0's stream, replayed through both reducers.
    const std::vector<TerminalId> events =
        recorded.trace.threads[0].grammar.unfold();
    if (events.empty()) continue;
    const Comparison result = compare(events);

    table.add_row(
        {app->name(), support::strf("%zu", events.size()),
         support::strf("%zu", result.exp_rules),
         support::strf("%zu", result.classic_rules),
         support::strf("%zu", result.exp_nodes),
         support::strf("%zu", result.classic_nodes),
         support::strf("%.2f", result.exp_mevents_s),
         support::strf("%.2f", result.classic_mevents_s)});
  }
  table.print();
  std::printf(
      "\nShape check: on loop-heavy streams (BT, SP, Lulesh, miniFE) the\n"
      "exponent grammar is an order of magnitude smaller — a T-iteration\n"
      "loop is one A^T occurrence instead of a log(T) doubling chain —\n"
      "which is what makes the paper's progress sequences and timing\n"
      "contexts tractable. On irregular streams the two are comparable.\n");
  return 0;
}
