// scaling — multi-threaded oracle engine scaling (record ingestion and
// shared-grammar predict serving).
//
//   ./build/bench/scaling [--out=BENCH_mt.json] [--strict]
//
// Record side: T producer threads, each feeding its own RecordEngine
// shard (SPSC ring + recorder worker), measured to the drain() barrier —
// aggregate events/s at 1/2/4/8 threads, plus ring high-water occupancy
// and drop/block counters. Predict side: T client threads, each with its
// own PredictSession against one shared immutable TraceSnapshot —
// aggregate predictions/s. Both report the 4-thread speedup over one
// thread.
//
// Reps are pinned to distinct cores when the machine has them (Linux
// affinity; see EXPERIMENTS.md for the tier-1 parallelism caveat). The
// --strict gate (>= 3x aggregate at 4 threads, no drops) only arms on
// machines with >= 4 hardware threads: on smaller boxes the threads
// time-slice one core and a scaling assertion would measure the
// scheduler, not the engine. hardware_concurrency is always reported so
// CI can tell which case it saw.
//
// PYTHIA_BENCH_SCALE scales event counts; PYTHIA_BENCH_REPS the best-of
// rep count, as in the other benches.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/recorder.hpp"
#include "engine/record_engine.hpp"
#include "engine/snapshot.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace {

using namespace pythia;
using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// Loopy stream with irregular interruptions (same shape as the engine
/// tests): exercises rule creation, reuse and exponent bumps.
std::vector<TerminalId> mixed_stream(std::size_t events, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  out.reserve(events);
  while (out.size() < events) {
    for (TerminalId t : {0u, 1u, 2u, 3u, 2u, 3u}) {
      if (out.size() >= events) break;
      out.push_back(t);
    }
    if (rng.below(4) == 0) out.push_back(4 + rng.below(8));
  }
  out.resize(events);
  return out;
}

/// Pins the calling thread to `core` (best effort; no-op off Linux).
bool pin_self(unsigned core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)core;
  return false;
#endif
}

struct RecordResult {
  double events_per_sec = 0.0;
  std::uint64_t ring_peak = 0;  ///< sampled high-water ring occupancy
  engine::RecordEngine::ShardStats stats;
};

/// T producers, one shard each, timed to the drain() barrier. Best-of
/// `reps` on aggregate throughput.
RecordResult bench_record(std::size_t threads, std::size_t events_per_thread,
                          int reps, bool pin, unsigned cores) {
  std::vector<std::vector<TerminalId>> streams;
  streams.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    streams.push_back(mixed_stream(events_per_thread, 40 + t));
  }

  RecordResult best;
  for (int rep = 0; rep < reps; ++rep) {
    engine::RecordEngine engine(threads);
    std::atomic<bool> producing{true};
    std::uint64_t ring_peak = 0;

    const auto begin = Clock::now();
    std::vector<std::thread> producers;
    producers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      producers.emplace_back([&, t] {
        // Distinct cores per producer; the worker threads float. (On a
        // single-core host pinning is skipped entirely.)
        if (pin) pin_self(static_cast<unsigned>(t) % cores);
        engine::RecordEngine::Producer& producer = engine.producer(t);
        std::uint64_t now = 0;
        for (TerminalId event : streams[t]) producer.submit(event, now += 100);
      });
    }
    // Sample ring occupancy from the main thread while producers run.
    while (producing.load(std::memory_order_relaxed)) {
      for (std::size_t t = 0; t < threads; ++t) {
        ring_peak = std::max(
            ring_peak, static_cast<std::uint64_t>(engine.ring_size_approx(t)));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      if (engine.totals().enqueued + engine.totals().dropped >=
          threads * events_per_thread) {
        producing.store(false, std::memory_order_relaxed);
      }
    }
    for (std::thread& producer : producers) producer.join();
    engine.drain();
    const auto end = Clock::now();

    const double wall = elapsed_s(begin, end);
    const double rate =
        static_cast<double>(threads * events_per_thread) / wall;
    if (rate > best.events_per_sec) {
      best.events_per_sec = rate;
      best.ring_peak = ring_peak;
      best.stats = engine.totals();
    }
    (void)engine.finish();
  }
  return best;
}

/// T clients over one shared snapshot: observe + predict_n(4) rounds.
double bench_predict(const std::shared_ptr<const engine::TraceSnapshot>& snap,
                     const std::vector<TerminalId>& reference,
                     std::size_t threads, std::size_t rounds_per_thread,
                     int reps, bool pin, unsigned cores) {
  engine::PredictServer server;
  server.publish(snap);
  constexpr std::size_t kHorizon = 4;

  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto begin = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        if (pin) pin_self(static_cast<unsigned>(t) % cores);
        auto session = server.open(0);
        if (!session.ok()) return;
        engine::PredictSession client = session.take();
        TerminalId out[kHorizon];
        std::size_t cursor = t % reference.size();
        for (std::size_t round = 0; round < rounds_per_thread; ++round) {
          client.observe(reference[cursor]);
          cursor = (cursor + 1) % reference.size();
          (void)client.predict_n(out, kHorizon);
        }
      });
    }
    for (std::thread& client : clients) client.join();
    const double wall = elapsed_s(begin, Clock::now());
    const double rate =
        static_cast<double>(threads * rounds_per_thread * kHorizon) / wall;
    best = std::max(best, rate);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_mt.json";
  bool strict = support::env_flag("PYTHIA_BENCH_STRICT");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "usage: scaling [--out=FILE] [--strict]\n");
      return 2;
    }
  }

  const double scale = support::bench_scale();
  const int reps = support::bench_reps(3);
  const auto record_events = static_cast<std::size_t>(200'000 * scale);
  const auto predict_rounds = static_cast<std::size_t>(50'000 * scale);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  // Pin only when every thread of the widest run can get its own core;
  // pinning 8 threads onto 2 cores would measure the affinity mask, not
  // the engine.
  const bool pin = cores >= thread_counts.back();

  std::printf("scaling: %zu record events/thread, %zu predict rounds/thread, "
              "%d reps, %u hardware threads%s\n",
              record_events, predict_rounds, reps, cores,
              pin ? ", pinned" : "");

  bench::JsonWriter json;
  json.field("bench", std::string("scaling"))
      .field("scale", scale)
      .field("reps", static_cast<std::uint64_t>(reps))
      .field("hardware_concurrency", static_cast<std::uint64_t>(cores))
      .field("pinned", pin)
      .field("ring_capacity",
             static_cast<std::uint64_t>(engine::RingOptions{}.capacity));

  // --- record ingestion -----------------------------------------------------
  double record_rate_1 = 0.0;
  double record_rate_4 = 0.0;
  std::uint64_t dropped_total = 0;
  for (const std::size_t threads : thread_counts) {
    const RecordResult result =
        bench_record(threads, record_events, reps, pin, cores);
    if (threads == 1) record_rate_1 = result.events_per_sec;
    if (threads == 4) record_rate_4 = result.events_per_sec;
    dropped_total += result.stats.dropped;
    json.begin_object("record_t" + std::to_string(threads))
        .field("events_per_sec", result.events_per_sec)
        .field("ns_per_event", 1e9 / result.events_per_sec *
                                   static_cast<double>(threads))
        .field("ring_occupancy_peak", result.ring_peak)
        .field("max_batch", result.stats.max_batch)
        .field("dropped", result.stats.dropped)
        .field("blocked", result.stats.blocked)
        .end_object();
    std::printf("  record  t=%zu  %10.2fM events/s  (ring peak %llu, "
                "blocked %llu)\n",
                threads, result.events_per_sec / 1e6,
                static_cast<unsigned long long>(result.ring_peak),
                static_cast<unsigned long long>(result.stats.blocked));
  }

  // --- predict serving ------------------------------------------------------
  const std::vector<TerminalId> reference = mixed_stream(40'000, 7);
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (TerminalId event : reference) recorder.record(event, now += 100);
  Trace trace;
  trace.threads.push_back(std::move(recorder).finish());
  const auto snapshot = engine::TraceSnapshot::make(std::move(trace));

  double predict_rate_1 = 0.0;
  double predict_rate_4 = 0.0;
  for (const std::size_t threads : thread_counts) {
    const double rate = bench_predict(snapshot, reference, threads,
                                      predict_rounds, reps, pin, cores);
    if (threads == 1) predict_rate_1 = rate;
    if (threads == 4) predict_rate_4 = rate;
    json.begin_object("predict_t" + std::to_string(threads))
        .field("predictions_per_sec", rate)
        .field("ns_per_prediction", 1e9 / rate * static_cast<double>(threads))
        .end_object();
    std::printf("  predict t=%zu  %10.2fM predictions/s\n", threads,
                rate / 1e6);
  }

  const double record_speedup =
      record_rate_1 > 0.0 ? record_rate_4 / record_rate_1 : 0.0;
  const double predict_speedup =
      predict_rate_1 > 0.0 ? predict_rate_4 / predict_rate_1 : 0.0;
  const bool multicore = cores >= 4;
  json.field("record_speedup_4x", record_speedup)
      .field("predict_speedup_4x", predict_speedup)
      .field("multicore", multicore);
  std::printf("  speedup at 4 threads: record %.2fx, predict %.2fx\n",
              record_speedup, predict_speedup);

  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (strict) {
    constexpr double kTargetSpeedup = 3.0;
    if (dropped_total != 0) {
      std::fprintf(stderr,
                   "strict: kBlock backpressure dropped %llu events\n",
                   static_cast<unsigned long long>(dropped_total));
      return 1;
    }
    if (!multicore) {
      std::printf("strict: %u hardware threads < 4 — scaling gate skipped "
                  "(threads would time-slice one core)\n",
                  cores);
      return 0;
    }
    if (record_speedup < kTargetSpeedup || predict_speedup < kTargetSpeedup) {
      std::fprintf(stderr,
                   "strict: 4-thread speedup below %.1fx "
                   "(record %.2fx, predict %.2fx)\n",
                   kTargetSpeedup, record_speedup, predict_speedup);
      return 1;
    }
    std::printf("strict: 4-thread speedup >= %.1fx on both paths\n",
                kTargetSpeedup);
  }
  return 0;
}
