// Extension — prediction-guided persistent communication.
//
// §III-B's second motivating optimization: "setting up persistent
// communication if a communication pattern repeats". The optimizer sets
// up a persistent channel only when the oracle's reference execution
// shows the isend recurring often enough to amortize the setup; one-shot
// sends are left alone (a heuristic that blindly converts everything
// pays setup costs it never recovers).
#include <cstdio>
#include <mutex>

#include "bench/bench_util.hpp"
#include "mpisim/persistent.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::mpisim;

// A halo exchange that repeats every step (worth a channel) plus a
// different one-shot control message per step (not worth one).
void program(PersistentSendOptimizer& opt, InstrumentedComm& mpi,
             int steps) {
  const int right = (mpi.rank() + 1) % mpi.size();
  const int left = (mpi.rank() + mpi.size() - 1) % mpi.size();
  const std::vector<double> halo(64, 1.0);
  const std::vector<double> control(4, 0.0);
  for (int step = 0; step < steps; ++step) {
    std::vector<Request> recvs;
    for (int f = 0; f < 4; ++f) recvs.push_back(mpi.irecv(left, f));
    for (int f = 0; f < 4; ++f) {
      opt.isend(right, f, Communicator::as_bytes(halo));  // repeats
    }
    mpi.waitall(recvs);
    if (step % 40 == 39) {
      // Occasional one-shot to a varying peer: no channel.
      const int peer = (mpi.rank() + 2 + step / 40) % mpi.size();
      if (peer != mpi.rank()) {
        Request once = mpi.irecv(kAnySource, 7);
        opt.isend((mpi.rank() + 2 + step / 40) % mpi.size(), 7,
                  Communicator::as_bytes(control));
        mpi.wait(once);
      }
    }
    mpi.compute(5'000);
  }
  mpi.barrier();
}

struct Outcome {
  double seconds = 0.0;
  PersistentSendOptimizer::Stats stats;
};

Outcome run(int ranks, int steps, const Trace* reference,
            SharedRegistry& shared, std::vector<ThreadTrace>* record_out) {
  Outcome outcome;
  std::mutex mutex;
  Cluster cluster(ranks);
  const Cluster::Result result = cluster.run([&](Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    Oracle oracle = reference != nullptr
                        ? Oracle::predict(reference->threads[rank])
                        : (record_out != nullptr ? Oracle::record(true)
                                                 : Oracle::off());
    InstrumentedComm mpi(comm, oracle, shared);
    PersistentSendOptimizer optimizer(mpi);
    program(optimizer, mpi, steps);
    std::lock_guard lock(mutex);
    outcome.stats.sends += optimizer.stats().sends;
    outcome.stats.channels += optimizer.stats().channels;
    outcome.stats.persistent_sends += optimizer.stats().persistent_sends;
    if (record_out != nullptr) {
      (*record_out)[rank] = oracle.finish();
    }
  });
  outcome.seconds = static_cast<double>(result.makespan_virtual_ns) * 1e-9;
  return outcome;
}

}  // namespace

int main() {
  banner("Extension: persistent communication",
         "repeating halo sends converted to persistent channels");

  const int steps = static_cast<int>(400 * workload_scale());
  constexpr int kRanks = 8;

  Trace trace;
  SharedRegistry shared(trace.registry);

  const Outcome vanilla = run(kRanks, steps, nullptr, shared, nullptr);

  std::vector<ThreadTrace> threads(kRanks);
  run(kRanks, steps, nullptr, shared, &threads);
  for (ThreadTrace& thread : threads) {
    trace.threads.push_back(std::move(thread));
  }

  const Outcome predicted = run(kRanks, steps, &trace, shared, nullptr);

  support::Table table({"setup", "time (virtual s)", "channels set up",
                        "persistent sends", "plain sends"});
  table.add_row(
      {"vanilla", support::strf("%.4f", vanilla.seconds), "0", "0",
       support::strf("%llu",
                     static_cast<unsigned long long>(vanilla.stats.sends))});
  table.add_row(
      {"PYTHIA-guided persistent",
       support::strf("%.4f", predicted.seconds),
       support::strf("%llu",
                     static_cast<unsigned long long>(
                         predicted.stats.channels)),
       support::strf("%llu", static_cast<unsigned long long>(
                                 predicted.stats.persistent_sends)),
       support::strf("%llu",
                     static_cast<unsigned long long>(
                         predicted.stats.sends -
                         predicted.stats.persistent_sends))});
  table.print();
  const double injection_saved_us =
      (280.0 * static_cast<double>(predicted.stats.persistent_sends) -
       3000.0 * static_cast<double>(predicted.stats.channels)) /
      1000.0;
  std::printf(
      "\nimprovement: %.1f%% end-to-end; %.0f us of sender injection\n"
      "overhead removed. The repeating halo sends get channels (their\n"
      "reference occurrence counts clear the threshold); the one-shot\n"
      "control messages stay plain, so no setup cost is wasted. The\n"
      "end-to-end gain is modest because the wire latency — which\n"
      "persistent requests cannot remove — dominates the exchange; the\n"
      "win is the freed sender CPU, exactly as with real MPI_Send_init.\n",
      (1.0 - predicted.seconds / vanilla.seconds) * 100.0,
      injection_saved_us);
  return 0;
}
