// Shared driver for the Lulesh experiments (figures 10–14).
//
// These reproduce the paper's single-node OpenMP study: Lulesh runs on
// one simulated machine (Pudding: 24 cores, Pixel: 16 cores) under three
// OpenMP runtime setups:
//   Vanilla        — GNU OpenMP default: always the maximum thread count;
//   PYTHIA-record  — same decisions, with event recording attached (in
//                    virtual time identical to vanilla by construction;
//                    the recording cost is real CPU, shown in Table I);
//   PYTHIA-predict — the adaptive policy picks the team per region from
//                    the predicted duration.
#pragma once

#include <string>

#include "apps/catalog.hpp"
#include "bench/bench_util.hpp"

namespace pythia::bench {

/// Lulesh at an explicit -s problem size (the figure sweeps go outside
/// the Small/Medium/Large presets).
class LuleshAtSize final : public apps::App {
 public:
  explicit LuleshAtSize(int size) : size_(size) {}
  std::string name() const override {
    return "Lulesh-s" + std::to_string(size_);
  }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 1; }
  void run_rank(apps::RankEnv& env,
                const apps::AppConfig& config) const override {
    apps::run_lulesh_problem(env, size_, config.scale);
  }

 private:
  int size_;
};

struct LuleshPoint {
  double vanilla_s = 0.0;
  double record_s = 0.0;
  double predict_s = 0.0;
  double mean_team = 0.0;
};

/// One measurement: record a reference at (machine, max_threads), then
/// run vanilla and adaptive-predict. All times are virtual seconds.
inline LuleshPoint lulesh_point(int size, const ompsim::MachineModel& machine,
                                int max_threads, double scale,
                                double error_rate = 0.0,
                                std::uint64_t seed = 42) {
  LuleshAtSize app(size);

  harness::RunConfig base;
  base.ranks = 1;
  base.app.scale = scale;
  base.app.seed = seed;
  base.machine = machine;
  base.omp_max_threads = max_threads;

  harness::RunConfig record = base;
  record.mode = harness::Mode::kRecord;
  const harness::RunResult recorded = harness::run_app(app, record);

  harness::RunConfig vanilla = base;
  vanilla.mode = harness::Mode::kVanilla;
  const harness::RunResult vanilla_result = harness::run_app(app, vanilla);

  harness::RunConfig predict = base;
  predict.mode = harness::Mode::kPredict;
  predict.reference = &recorded.trace;
  predict.omp_adaptive = true;
  predict.omp_error_rate = error_rate;
  const harness::RunResult predict_result = harness::run_app(app, predict);

  LuleshPoint point;
  point.vanilla_s = vanilla_result.makespan_seconds();
  point.record_s = recorded.makespan_seconds();
  point.predict_s = predict_result.makespan_seconds();
  point.mean_team = predict_result.omp_stats.mean_team();
  return point;
}

}  // namespace pythia::bench
