#!/usr/bin/env bash
# Builds (Release) and runs the benchmark-regression harnesses, leaving
# BENCH_core.json, BENCH_mt.json, BENCH_serve.json, BENCH_compiled.json,
# BENCH_online.json and BENCH_analysis.json at the repo root. Extra flags
# are forwarded to every binary, e.g.:
#
#   bench/run_regress.sh --strict          # fail on steady-state allocs,
#                                          # journaled overhead > 15%,
#                                          # compiled-engine gate misses, or
#                                          # (multi-core hosts) < 3x engine
#                                          # scaling at 4 threads
#   PYTHIA_BENCH_SCALE=0.2 bench/run_regress.sh
#
# BUILD_DIR overrides the build tree (default: build-bench, kept separate
# from the default developer tree so a Debug build never pollutes the
# numbers).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target regress scaling serve compiled online analysis >/dev/null

# Write via a temp file + atomic rename so an interrupted or failing run
# never leaves a torn report behind.
OUT=BENCH_core.json
TMP=$(mktemp "${OUT}.XXXXXX.tmp")
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR/bench/regress" --out="$TMP" "$@"
mv -f "$TMP" "$OUT"
trap - EXIT

MT_OUT=BENCH_mt.json
MT_TMP=$(mktemp "${MT_OUT}.XXXXXX.tmp")
trap 'rm -f "$MT_TMP"' EXIT

"$BUILD_DIR/bench/scaling" --out="$MT_TMP" "$@"
mv -f "$MT_TMP" "$MT_OUT"
trap - EXIT

SERVE_OUT=BENCH_serve.json
SERVE_TMP=$(mktemp "${SERVE_OUT}.XXXXXX.tmp")
trap 'rm -f "$SERVE_TMP"' EXIT

"$BUILD_DIR/bench/serve" --out="$SERVE_TMP" "$@"
mv -f "$SERVE_TMP" "$SERVE_OUT"
trap - EXIT

COMPILED_OUT=BENCH_compiled.json
COMPILED_TMP=$(mktemp "${COMPILED_OUT}.XXXXXX.tmp")
trap 'rm -f "$COMPILED_TMP"' EXIT

"$BUILD_DIR/bench/compiled" --out="$COMPILED_TMP" "$@"
mv -f "$COMPILED_TMP" "$COMPILED_OUT"
trap - EXIT

ONLINE_OUT=BENCH_online.json
ONLINE_TMP=$(mktemp "${ONLINE_OUT}.XXXXXX.tmp")
trap 'rm -f "$ONLINE_TMP"' EXIT

"$BUILD_DIR/bench/online" --out="$ONLINE_TMP" "$@"
mv -f "$ONLINE_TMP" "$ONLINE_OUT"
trap - EXIT

ANALYSIS_OUT=BENCH_analysis.json
ANALYSIS_TMP=$(mktemp "${ANALYSIS_OUT}.XXXXXX.tmp")
trap 'rm -f "$ANALYSIS_TMP"' EXIT

"$BUILD_DIR/bench/analysis" --out="$ANALYSIS_TMP" "$@"
mv -f "$ANALYSIS_TMP" "$ANALYSIS_OUT"
trap - EXIT
