// Figure 13 — Lulesh (s=30) execution time vs. maximum thread count
// (Pixel). Paper: up to 20.0 % improvement at 16 threads.
#include <cstdio>

#include "bench/lulesh_bench.hpp"

int main() {
  using namespace pythia;
  using namespace pythia::bench;

  banner("Figure 13",
         "Lulesh (s=30) time vs. max threads (Pixel, virtual s)");

  const double scale = workload_scale();
  support::Table table({"max threads", "Vanilla (s)", "PYTHIA-record (s)",
                        "PYTHIA-predict (s)", "improvement", "mean team"});
  for (int threads : {1, 2, 4, 8, 12, 16}) {
    const LuleshPoint point =
        lulesh_point(30, ompsim::MachineModel::pixel(), threads, scale);
    table.add_row(
        {support::strf("%d", threads),
         support::strf("%.3f", point.vanilla_s),
         support::strf("%.3f", point.record_s),
         support::strf("%.3f", point.predict_s),
         support::strf("%.1f%%",
                       (1.0 - point.predict_s / point.vanilla_s) * 100.0),
         support::strf("%.1f", point.mean_team)});
  }
  table.print();
  std::printf(
      "\nShape check: same crossover as fig. 12, smaller peak gain on the\n"
      "16-core machine (paper: 20.0%%).\n");
  return 0;
}
