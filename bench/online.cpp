// online — learn-while-running oracle bench (OnlineOracle + Mode::kOnline).
//
//   ./build/bench/online [--out=BENCH_online.json] [--strict]
//
// The first-run question the offline figures cannot answer: with no
// reference trace at all, how fast does the oracle earn the right to
// serve predictions, and what does acting on them cost or save? For
// every application — the regular Table I catalog and the adversarially
// irregular ones (AMR, WorkSteal, Branchy) — this runs:
//
//   1. vanilla (the baseline the online run must never lose to), and
//   2. pythia-online with the confidence ramp armed, sampling the ramp
//      (rolling self-accuracy, serving state, snapshot grammar size)
//      every history_every events on rank 0.
//
// Reported per app: virtual makespans and their ratio, the event index
// where serving began, the withheld-event rate, ramp trips, end-to-end
// self-accuracy, snapshot count and final grammar size, plus the rank-0
// mid-run ramp curve (fig14-style: accuracy and grammar growth vs
// events). The irregular apps are the negative control: their streams
// resist compression, so they serve later, withhold more, and trip more
// often — while the ratio gate still holds, because a withheld oracle
// is a no-op.
//
// A second phase, snapshot_rebuild, isolates the publish path itself:
// for each regular app's recorded stream (and the longest stream again
// at 3x scale) it times every snapshot publish twice — through the
// IncrementalFinalizer (O(rules changed)) and through full log replay
// (O(log)) — at the oracle's own geometric cadence, and converts the
// latencies into staleness: how many events arrive while the snapshot
// is being built, at the measured ingest rate. Each publish is measured
// two ways:
//   * structural — the grammar sync + refinalize that produces the
//     servable finalized grammar (vs full Sequitur replay + finalize).
//     This is the O(rules-changed) pipeline and what --strict gates.
//   * timed — structural plus the timing-model rollup. The rollup is
//     bit-identical to a full TimingModel::replay, and that contract
//     makes it Theta(positions whose ≤4-level context changed): when a
//     loopy stream regroups a shared rule between two publishes (tail
//     carves, accumulator regrouping), the full-rebuild model itself
//     genuinely differs at O(log) positions, so ANY bit-identical
//     incremental rollup must do that work. The finalizer bounds it at
//     one log sweep per publish (see incremental_finalize.hpp) and the
//     bench reports the resulting speedup honestly, separate from the
//     structural gate.
//
// --strict (or PYTHIA_BENCH_STRICT=1) gates:
//   * online <= 1.05x vanilla for EVERY app (never-worse acceptance),
//   * every regular app long enough to ramp (>= 600 events/rank) starts
//     serving (first_served_event > 0),
//   * the 3x-scale rebuild: incremental structural publish >= 5x faster
//     than full replay at the final (largest) publish. Wall-clock on a
//     noisy 1-core CI box is the caveat here, so the gate compares the
//     same machine against itself in the same process, and self-skips
//     when the recorded stream is too short for the asymptotic gap to
//     show.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "bench/bench_util.hpp"
#include "core/grammar.hpp"
#include "core/incremental_finalize.hpp"
#include "core/timing.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace {

using namespace pythia;

struct AppReport {
  std::string name;
  bool irregular = false;
  double vanilla_s = 0.0;
  double online_s = 0.0;
  double ratio = 0.0;
  OnlineOracle::Stats stats;
  std::size_t ranks_serving = 0;
  std::size_t ranks = 0;
  std::size_t final_rules = 0;
  std::vector<OnlineOracle::RampSample> ramp;
};

double withheld_rate(const OnlineOracle::Stats& stats) {
  return stats.events == 0 ? 0.0
                           : static_cast<double>(stats.withheld_events) /
                                 static_cast<double>(stats.events);
}

double self_accuracy(const OnlineOracle::Stats& stats) {
  return stats.scored == 0 ? 0.0
                           : static_cast<double>(stats.hits) /
                                 static_cast<double>(stats.scored);
}

AppReport measure(const apps::App& app, bool irregular, double scale) {
  AppReport report;
  report.name = app.name();
  report.irregular = irregular;

  apps::AppConfig app_config;
  app_config.scale = scale;

  harness::RunConfig vanilla;
  vanilla.mode = harness::Mode::kVanilla;
  vanilla.app = app_config;
  vanilla.io.enabled = true;  // same I/O runtime, just unguided
  const harness::RunResult base = run_app(app, vanilla);
  report.vanilla_s = base.makespan_seconds();

  harness::RunConfig online;
  online.mode = harness::Mode::kOnline;
  online.app = app_config;
  online.omp_adaptive = app.hybrid();
  online.io.enabled = true;  // Branchy's I/O phase; inert elsewhere
  online.online.history_every = 128;
  const harness::RunResult run = run_app(app, online);
  report.online_s = run.makespan_seconds();
  report.ratio = report.vanilla_s == 0.0 ? 1.0
                                         : report.online_s / report.vanilla_s;
  report.stats = run.online_stats;
  report.ranks_serving = run.ranks_serving;
  report.ranks = run.trace.threads.size();
  report.final_rules = run.max_rules;
  report.ramp = run.online_history;
  return report;
}

/// At most `limit` evenly spaced samples (the full curve for short runs).
std::vector<OnlineOracle::RampSample> downsample(
    const std::vector<OnlineOracle::RampSample>& curve, std::size_t limit) {
  if (curve.size() <= limit) return curve;
  std::vector<OnlineOracle::RampSample> out;
  out.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    out.push_back(curve[i * (curve.size() - 1) / (limit - 1)]);
  }
  return out;
}

void write_report(bench::JsonWriter& json, const AppReport& report) {
  json.begin_object(report.name);
  json.field("irregular", report.irregular);
  json.field("vanilla_s", report.vanilla_s);
  json.field("online_s", report.online_s);
  json.field("ratio", report.ratio);
  json.field("events", report.stats.events);
  json.field("snapshots", report.stats.snapshots);
  json.field("first_served_event", report.stats.first_served_event);
  json.field("served_events", report.stats.served_events);
  json.field("withheld_rate", withheld_rate(report.stats));
  json.field("ramp_trips", report.stats.ramp_trips);
  json.field("self_accuracy", self_accuracy(report.stats));
  json.field("ranks_serving", static_cast<std::uint64_t>(report.ranks_serving));
  json.field("ranks", static_cast<std::uint64_t>(report.ranks));
  json.field("max_rules", static_cast<std::uint64_t>(report.final_rules));
  // Rank 0's mid-run ramp: accuracy + grammar growth vs event index
  // (nested objects keyed by sample index; the writer has no arrays).
  json.begin_object("ramp");
  const auto curve = downsample(report.ramp, 32);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    json.begin_object(std::to_string(i));
    json.field("events", curve[i].events);
    json.field("accuracy", curve[i].accuracy);
    json.field("serving", curve[i].serving);
    json.field("rules", static_cast<std::uint64_t>(curve[i].snapshot_rules));
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

// --- snapshot_rebuild phase -------------------------------------------------

struct RebuildReport {
  std::string name;
  double scale_mult = 1.0;
  std::uint64_t events = 0;
  std::uint64_t publishes = 0;
  double inc_p50_us = 0.0;
  double inc_p95_us = 0.0;
  double full_p50_us = 0.0;
  double full_p95_us = 0.0;
  double speedup_p50 = 0.0;
  /// full/incremental (timed publish: structural + timing rollup) at the
  /// final publish — the largest snapshot.
  double speedup_last = 0.0;
  /// Structural publish only: grammar sync + refinalize vs full Sequitur
  /// replay + finalize. O(rules changed) vs O(log) — the --strict gate.
  double inc_struct_p50_us = 0.0;
  double inc_struct_p95_us = 0.0;
  double full_struct_p50_us = 0.0;
  double full_struct_p95_us = 0.0;
  double speedup_struct_p50 = 0.0;
  double speedup_struct_last = 0.0;
  double events_per_sec = 0.0;
  /// Events arriving during a p95-latency publish at the measured ingest
  /// rate — the prediction staleness a publish imposes on the ramp.
  double staleness_full_p95 = 0.0;
  double staleness_inc_p95 = 0.0;
  /// The incremental finalizer's own accounting of the final publish:
  /// how much actually changed, and how much replay the sync needed.
  IncrementalFinalizer::PublishStats final_stats;
};

double percentile_us(std::vector<double> latencies_us, double p) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const std::size_t index = std::min(
      latencies_us.size() - 1,
      static_cast<std::size_t>(p * (latencies_us.size() - 1) + 0.5));
  return latencies_us[index];
}

RebuildReport measure_rebuild(const apps::App& app, double scale,
                              double mult) {
  using clock_type = std::chrono::steady_clock;
  const auto elapsed_us = [](clock_type::time_point t0) {
    return std::chrono::duration<double, std::micro>(clock_type::now() - t0)
        .count();
  };

  RebuildReport report;
  report.name = app.name();
  report.scale_mult = mult;

  harness::RunConfig record;
  record.mode = harness::Mode::kRecord;
  record.app.scale = scale * mult;
  const harness::RunResult run = run_app(app, record);
  std::vector<TerminalId> stream;
  if (!run.trace.threads.empty()) {
    stream = run.trace.threads[0].grammar.unfold();
  }
  report.events = stream.size();
  if (stream.size() < 64) return report;

  // Synthetic fixed-gap timestamps: both paths carry the timing-model
  // cost a timestamped online run pays.
  std::vector<TimedEvent> log;
  log.reserve(stream.size());
  std::uint64_t clock = 0;
  for (TerminalId event : stream) {
    clock += 1000;
    log.push_back(TimedEvent::make(event, clock));
  }

  // Publish points: OnlineOracle's default geometric cadence, then a
  // short steady-state interval at the largest size — the final publish
  // covers only the last 256 events. That last point is where the
  // O(changed-rules) claim is visible (and what --strict gates): under a
  // purely geometric cadence the interval itself is ~N/3 events, and
  // replaying it dominates BOTH paths, bounding any speedup at about
  // growth/(growth-1) regardless of how cheap the incremental sync is.
  std::vector<std::size_t> points;
  std::size_t next = 256;
  while (next < log.size()) {
    points.push_back(next);
    next = static_cast<std::size_t>(static_cast<double>(next) * 1.5) + 1;
  }
  if (log.size() > 512 &&
      (points.empty() || log.size() - 256 > points.back())) {
    points.push_back(log.size() - 256);
  }
  points.push_back(log.size());
  report.publishes = points.size();

  // Ingest rate (plain appends) converts latency into staleness.
  {
    Grammar grammar;
    const auto t0 = clock_type::now();
    for (TerminalId event : stream) grammar.append(event);
    const double us = elapsed_us(t0);
    report.events_per_sec =
        us > 0.0 ? static_cast<double>(stream.size()) / (us * 1e-6) : 0.0;
  }

  std::vector<double> inc_us;
  std::vector<double> inc_struct_us;
  std::vector<double> full_us;
  std::vector<double> full_struct_us;
  {
    // Timed publishes: structural sync + timing rollup.
    Grammar live;
    live.enable_dirty_tracking();
    IncrementalFinalizer finalizer;
    std::vector<TimedEvent> seen;
    seen.reserve(log.size());
    std::size_t fed = 0;
    for (std::size_t point : points) {
      for (; fed < point; ++fed) {
        live.append(log[fed].event);
        seen.push_back(log[fed]);
      }
      const auto t0 = clock_type::now();
      finalizer.publish(live, seen, /*timestamped=*/true);
      inc_us.push_back(elapsed_us(t0));
    }
    report.final_stats = finalizer.stats();
  }
  {
    // Structural publishes only (untimed log): the O(rules-changed)
    // grammar sync + refinalize the serving path hot-swaps.
    Grammar live;
    live.enable_dirty_tracking();
    IncrementalFinalizer finalizer;
    std::vector<TimedEvent> seen;
    seen.reserve(log.size());
    std::size_t fed = 0;
    for (std::size_t point : points) {
      for (; fed < point; ++fed) {
        live.append(log[fed].event);
        seen.push_back(log[fed]);
      }
      const auto t0 = clock_type::now();
      finalizer.publish(live, seen, /*timestamped=*/false);
      inc_struct_us.push_back(elapsed_us(t0));
    }
  }
  for (std::size_t point : points) {
    // What OnlineOracle's full_rebuild path does per publish: replay the
    // whole log prefix into a fresh grammar, finalize, replay timing.
    // The intermediate mark splits the structural rebuild (append +
    // finalize) from the timing replay.
    std::vector<TimedEvent> prefix(log.begin(),
                                   log.begin() + static_cast<long>(point));
    const auto t0 = clock_type::now();
    Grammar grammar;
    for (const TimedEvent& event : prefix) grammar.append(event.event);
    grammar.finalize();
    full_struct_us.push_back(elapsed_us(t0));
    const TimingModel timing = TimingModel::replay(grammar, prefix);
    (void)timing;
    full_us.push_back(elapsed_us(t0));
  }

  report.inc_p50_us = percentile_us(inc_us, 0.50);
  report.inc_p95_us = percentile_us(inc_us, 0.95);
  report.full_p50_us = percentile_us(full_us, 0.50);
  report.full_p95_us = percentile_us(full_us, 0.95);
  report.speedup_p50 = report.inc_p50_us > 0.0
                           ? report.full_p50_us / report.inc_p50_us
                           : 0.0;
  report.speedup_last =
      inc_us.back() > 0.0 ? full_us.back() / inc_us.back() : 0.0;
  report.inc_struct_p50_us = percentile_us(inc_struct_us, 0.50);
  report.inc_struct_p95_us = percentile_us(inc_struct_us, 0.95);
  report.full_struct_p50_us = percentile_us(full_struct_us, 0.50);
  report.full_struct_p95_us = percentile_us(full_struct_us, 0.95);
  report.speedup_struct_p50 =
      report.inc_struct_p50_us > 0.0
          ? report.full_struct_p50_us / report.inc_struct_p50_us
          : 0.0;
  report.speedup_struct_last =
      inc_struct_us.back() > 0.0
          ? full_struct_us.back() / inc_struct_us.back()
          : 0.0;
  report.staleness_full_p95 =
      report.full_p95_us * 1e-6 * report.events_per_sec;
  report.staleness_inc_p95 =
      report.inc_p95_us * 1e-6 * report.events_per_sec;
  return report;
}

void write_rebuild(bench::JsonWriter& json, const RebuildReport& report) {
  json.begin_object(report.name + "@" +
                    support::strf("%.0fx", report.scale_mult));
  json.field("events", report.events);
  json.field("publishes", report.publishes);
  json.field("incremental_p50_us", report.inc_p50_us);
  json.field("incremental_p95_us", report.inc_p95_us);
  json.field("full_p50_us", report.full_p50_us);
  json.field("full_p95_us", report.full_p95_us);
  json.field("speedup_p50", report.speedup_p50);
  json.field("speedup_last", report.speedup_last);
  json.field("incremental_structural_p50_us", report.inc_struct_p50_us);
  json.field("incremental_structural_p95_us", report.inc_struct_p95_us);
  json.field("full_structural_p50_us", report.full_struct_p50_us);
  json.field("full_structural_p95_us", report.full_struct_p95_us);
  json.field("speedup_structural_p50", report.speedup_struct_p50);
  json.field("speedup_structural_last", report.speedup_struct_last);
  json.field("events_per_sec", report.events_per_sec);
  json.field("staleness_full_p95_events", report.staleness_full_p95);
  json.field("staleness_incremental_p95_events", report.staleness_inc_p95);
  json.field("final_dirty_rules",
             static_cast<std::uint64_t>(report.final_stats.last_dirty_rules));
  json.field("final_changed_rules",
             static_cast<std::uint64_t>(
                 report.final_stats.last_changed_rules));
  json.field("final_closure_rules",
             static_cast<std::uint64_t>(
                 report.final_stats.last_closure_rules));
  json.field("final_clean_prefix",
             static_cast<std::uint64_t>(report.final_stats.last_clean_prefix));
  json.field("final_subtracted",
             static_cast<std::uint64_t>(report.final_stats.last_subtracted));
  json.field("final_added",
             static_cast<std::uint64_t>(report.final_stats.last_added));
  json.field("timing_rebuilds",
             static_cast<std::uint64_t>(report.final_stats.timing_rebuilds));
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pythia;

  std::string out_path;
  bool strict = support::env_long("PYTHIA_BENCH_STRICT", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "usage: online [--out=FILE] [--strict]\n");
      return 2;
    }
  }

  bench::banner("Online oracle",
                "learn-while-running: ramp-up, withheld rate, never-worse "
                "(virtual s)");
  const double scale = bench::workload_scale();

  std::vector<AppReport> reports;
  for (const apps::App* app : apps::all_apps()) {
    reports.push_back(measure(*app, /*irregular=*/false, scale));
  }
  for (const apps::App* app : apps::irregular_apps()) {
    reports.push_back(measure(*app, /*irregular=*/true, scale));
  }

  // snapshot_rebuild phase: every regular app at 1x, the longest stream
  // again at 3x — the largest pinned size, where the strict gate applies.
  std::vector<RebuildReport> rebuilds;
  for (const apps::App* app : apps::all_apps()) {
    rebuilds.push_back(measure_rebuild(*app, scale, 1.0));
  }
  std::size_t longest = 0;
  for (std::size_t i = 1; i < rebuilds.size(); ++i) {
    if (rebuilds[i].events > rebuilds[longest].events) longest = i;
  }
  const apps::App* gate_app = apps::all_apps()[longest];
  rebuilds.push_back(measure_rebuild(*gate_app, scale, 3.0));

  support::Table table({"app", "vanilla (s)", "online (s)", "ratio",
                        "1st served", "withheld", "trips", "accuracy",
                        "rules"});
  for (const AppReport& report : reports) {
    table.add_row(
        {report.name + (report.irregular ? " *" : ""),
         support::strf("%.3f", report.vanilla_s),
         support::strf("%.3f", report.online_s),
         support::strf("%.3f", report.ratio),
         support::strf("%llu", static_cast<unsigned long long>(
                                   report.stats.first_served_event)),
         support::strf("%.1f%%", withheld_rate(report.stats) * 100.0),
         support::strf("%llu",
                       static_cast<unsigned long long>(report.stats.ramp_trips)),
         support::strf("%.2f", self_accuracy(report.stats)),
         support::strf("%zu", report.final_rules)});
  }
  table.print();
  std::printf(
      "\n* adversarially irregular (AMR refinement bursts, work-stealing\n"
      "  schedules, data-dependent branching). Shape check: regular apps\n"
      "  serve early with low withheld rates; irregular apps serve late,\n"
      "  withhold more and trip more — but the ratio stays ~1 because a\n"
      "  withheld oracle is a no-op (never-worse acceptance).\n");

  support::Table rebuild_table(
      {"app", "events", "publishes", "inc p50 (us)", "inc p95 (us)",
       "full p50 (us)", "full p95 (us)", "timed@max", "struct@max",
       "stale inc/full"});
  for (const RebuildReport& report : rebuilds) {
    rebuild_table.add_row(
        {report.name + support::strf(" @%.0fx", report.scale_mult),
         support::strf("%llu", static_cast<unsigned long long>(report.events)),
         support::strf("%llu",
                       static_cast<unsigned long long>(report.publishes)),
         support::strf("%.1f", report.inc_p50_us),
         support::strf("%.1f", report.inc_p95_us),
         support::strf("%.1f", report.full_p50_us),
         support::strf("%.1f", report.full_p95_us),
         support::strf("%.1fx", report.speedup_last),
         support::strf("%.1fx", report.speedup_struct_last),
         support::strf("%.1f/%.1f", report.staleness_inc_p95,
                       report.staleness_full_p95)});
  }
  std::printf(
      "\nsnapshot_rebuild: publish latency through the incremental\n"
      "finalizer vs full log replay, at the oracle's own publish cadence;\n"
      "staleness = events arriving during a p95 publish at the measured\n"
      "ingest rate. struct@max = structural publish (grammar sync +\n"
      "refinalize vs Sequitur replay + finalize) at the largest snapshot —\n"
      "the O(rules-changed) pipeline and the --strict gate. timed@max adds\n"
      "the timing-model rollup, which bit-identity makes Theta(positions\n"
      "whose context changed) when the stream regroups shared rules.\n");
  rebuild_table.print();

  if (!out_path.empty()) {
    bench::JsonWriter json;
    json.field("schema", std::string("pythia-bench-online-v1"));
    json.field("scale", scale);
    json.begin_object("apps");
    for (const AppReport& report : reports) write_report(json, report);
    json.end_object();
    json.begin_object("snapshot_rebuild");
    for (const RebuildReport& report : rebuilds) write_rebuild(json, report);
    json.end_object();
    if (!json.write_file(out_path)) {
      std::fprintf(stderr, "online: failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (strict) {
    bool ok = true;
    for (const AppReport& report : reports) {
      if (report.ratio > 1.05) {
        std::fprintf(stderr,
                     "STRICT FAIL: %s online %.3fx vanilla (> 1.05x)\n",
                     report.name.c_str(), report.ratio);
        ok = false;
      }
      const std::uint64_t events_per_rank =
          report.ranks == 0 ? 0 : report.stats.events / report.ranks;
      if (!report.irregular && events_per_rank >= 600 &&
          report.stats.first_served_event == 0) {
        std::fprintf(stderr,
                     "STRICT FAIL: %s never started serving "
                     "(%llu events/rank)\n",
                     report.name.c_str(),
                     static_cast<unsigned long long>(events_per_rank));
        ok = false;
      }
    }
    // Incremental-publish gate, on the largest pinned size (the 3x
    // rerun's final publish). Self-skips when the recorded stream is too
    // short for the asymptotic gap to dominate constant costs — small
    // scales and 1-core CI noise would make the gate flaky, not wrong.
    const RebuildReport& gate = rebuilds.back();
    if (gate.events < 4096) {
      std::printf(
          "strict: snapshot_rebuild gate skipped (%llu events at 3x is "
          "below the 4096-event floor; rerun with PYTHIA_FULL=1)\n",
          static_cast<unsigned long long>(gate.events));
    } else if (gate.speedup_struct_last < 5.0) {
      std::fprintf(stderr,
                   "STRICT FAIL: %s@3x incremental structural publish only "
                   "%.1fx faster than full replay at the largest snapshot "
                   "(gate: >= 5x; timed rollup measured %.1fx)\n",
                   gate.name.c_str(), gate.speedup_struct_last,
                   gate.speedup_last);
      ok = false;
    }
    if (!ok) return 1;
    std::printf(
        "strict gates passed: never-worse + regular apps serve + "
        "incremental structural publish >= 5x\n");
  }
  return 0;
}
