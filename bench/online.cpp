// online — learn-while-running oracle bench (OnlineOracle + Mode::kOnline).
//
//   ./build/bench/online [--out=BENCH_online.json] [--strict]
//
// The first-run question the offline figures cannot answer: with no
// reference trace at all, how fast does the oracle earn the right to
// serve predictions, and what does acting on them cost or save? For
// every application — the regular Table I catalog and the adversarially
// irregular ones (AMR, WorkSteal, Branchy) — this runs:
//
//   1. vanilla (the baseline the online run must never lose to), and
//   2. pythia-online with the confidence ramp armed, sampling the ramp
//      (rolling self-accuracy, serving state, snapshot grammar size)
//      every history_every events on rank 0.
//
// Reported per app: virtual makespans and their ratio, the event index
// where serving began, the withheld-event rate, ramp trips, end-to-end
// self-accuracy, snapshot count and final grammar size, plus the rank-0
// mid-run ramp curve (fig14-style: accuracy and grammar growth vs
// events). The irregular apps are the negative control: their streams
// resist compression, so they serve later, withhold more, and trip more
// often — while the ratio gate still holds, because a withheld oracle
// is a no-op.
//
// --strict (or PYTHIA_BENCH_STRICT=1) gates:
//   * online <= 1.05x vanilla for EVERY app (never-worse acceptance),
//   * every regular app long enough to ramp (>= 600 events/rank) starts
//     serving (first_served_event > 0).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "bench/bench_util.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace {

using namespace pythia;

struct AppReport {
  std::string name;
  bool irregular = false;
  double vanilla_s = 0.0;
  double online_s = 0.0;
  double ratio = 0.0;
  OnlineOracle::Stats stats;
  std::size_t ranks_serving = 0;
  std::size_t ranks = 0;
  std::size_t final_rules = 0;
  std::vector<OnlineOracle::RampSample> ramp;
};

double withheld_rate(const OnlineOracle::Stats& stats) {
  return stats.events == 0 ? 0.0
                           : static_cast<double>(stats.withheld_events) /
                                 static_cast<double>(stats.events);
}

double self_accuracy(const OnlineOracle::Stats& stats) {
  return stats.scored == 0 ? 0.0
                           : static_cast<double>(stats.hits) /
                                 static_cast<double>(stats.scored);
}

AppReport measure(const apps::App& app, bool irregular, double scale) {
  AppReport report;
  report.name = app.name();
  report.irregular = irregular;

  apps::AppConfig app_config;
  app_config.scale = scale;

  harness::RunConfig vanilla;
  vanilla.mode = harness::Mode::kVanilla;
  vanilla.app = app_config;
  vanilla.io.enabled = true;  // same I/O runtime, just unguided
  const harness::RunResult base = run_app(app, vanilla);
  report.vanilla_s = base.makespan_seconds();

  harness::RunConfig online;
  online.mode = harness::Mode::kOnline;
  online.app = app_config;
  online.omp_adaptive = app.hybrid();
  online.io.enabled = true;  // Branchy's I/O phase; inert elsewhere
  online.online.history_every = 128;
  const harness::RunResult run = run_app(app, online);
  report.online_s = run.makespan_seconds();
  report.ratio = report.vanilla_s == 0.0 ? 1.0
                                         : report.online_s / report.vanilla_s;
  report.stats = run.online_stats;
  report.ranks_serving = run.ranks_serving;
  report.ranks = run.trace.threads.size();
  report.final_rules = run.max_rules;
  report.ramp = run.online_history;
  return report;
}

/// At most `limit` evenly spaced samples (the full curve for short runs).
std::vector<OnlineOracle::RampSample> downsample(
    const std::vector<OnlineOracle::RampSample>& curve, std::size_t limit) {
  if (curve.size() <= limit) return curve;
  std::vector<OnlineOracle::RampSample> out;
  out.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    out.push_back(curve[i * (curve.size() - 1) / (limit - 1)]);
  }
  return out;
}

void write_report(bench::JsonWriter& json, const AppReport& report) {
  json.begin_object(report.name);
  json.field("irregular", report.irregular);
  json.field("vanilla_s", report.vanilla_s);
  json.field("online_s", report.online_s);
  json.field("ratio", report.ratio);
  json.field("events", report.stats.events);
  json.field("snapshots", report.stats.snapshots);
  json.field("first_served_event", report.stats.first_served_event);
  json.field("served_events", report.stats.served_events);
  json.field("withheld_rate", withheld_rate(report.stats));
  json.field("ramp_trips", report.stats.ramp_trips);
  json.field("self_accuracy", self_accuracy(report.stats));
  json.field("ranks_serving", static_cast<std::uint64_t>(report.ranks_serving));
  json.field("ranks", static_cast<std::uint64_t>(report.ranks));
  json.field("max_rules", static_cast<std::uint64_t>(report.final_rules));
  // Rank 0's mid-run ramp: accuracy + grammar growth vs event index
  // (nested objects keyed by sample index; the writer has no arrays).
  json.begin_object("ramp");
  const auto curve = downsample(report.ramp, 32);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    json.begin_object(std::to_string(i));
    json.field("events", curve[i].events);
    json.field("accuracy", curve[i].accuracy);
    json.field("serving", curve[i].serving);
    json.field("rules", static_cast<std::uint64_t>(curve[i].snapshot_rules));
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pythia;

  std::string out_path;
  bool strict = support::env_long("PYTHIA_BENCH_STRICT", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "usage: online [--out=FILE] [--strict]\n");
      return 2;
    }
  }

  bench::banner("Online oracle",
                "learn-while-running: ramp-up, withheld rate, never-worse "
                "(virtual s)");
  const double scale = bench::workload_scale();

  std::vector<AppReport> reports;
  for (const apps::App* app : apps::all_apps()) {
    reports.push_back(measure(*app, /*irregular=*/false, scale));
  }
  for (const apps::App* app : apps::irregular_apps()) {
    reports.push_back(measure(*app, /*irregular=*/true, scale));
  }

  support::Table table({"app", "vanilla (s)", "online (s)", "ratio",
                        "1st served", "withheld", "trips", "accuracy",
                        "rules"});
  for (const AppReport& report : reports) {
    table.add_row(
        {report.name + (report.irregular ? " *" : ""),
         support::strf("%.3f", report.vanilla_s),
         support::strf("%.3f", report.online_s),
         support::strf("%.3f", report.ratio),
         support::strf("%llu", static_cast<unsigned long long>(
                                   report.stats.first_served_event)),
         support::strf("%.1f%%", withheld_rate(report.stats) * 100.0),
         support::strf("%llu",
                       static_cast<unsigned long long>(report.stats.ramp_trips)),
         support::strf("%.2f", self_accuracy(report.stats)),
         support::strf("%zu", report.final_rules)});
  }
  table.print();
  std::printf(
      "\n* adversarially irregular (AMR refinement bursts, work-stealing\n"
      "  schedules, data-dependent branching). Shape check: regular apps\n"
      "  serve early with low withheld rates; irregular apps serve late,\n"
      "  withhold more and trip more — but the ratio stays ~1 because a\n"
      "  withheld oracle is a no-op (never-worse acceptance).\n");

  if (!out_path.empty()) {
    bench::JsonWriter json;
    json.field("schema", std::string("pythia-bench-online-v1"));
    json.field("scale", scale);
    json.begin_object("apps");
    for (const AppReport& report : reports) write_report(json, report);
    json.end_object();
    if (!json.write_file(out_path)) {
      std::fprintf(stderr, "online: failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (strict) {
    bool ok = true;
    for (const AppReport& report : reports) {
      if (report.ratio > 1.05) {
        std::fprintf(stderr,
                     "STRICT FAIL: %s online %.3fx vanilla (> 1.05x)\n",
                     report.name.c_str(), report.ratio);
        ok = false;
      }
      const std::uint64_t events_per_rank =
          report.ranks == 0 ? 0 : report.stats.events / report.ranks;
      if (!report.irregular && events_per_rank >= 600 &&
          report.stats.first_served_event == 0) {
        std::fprintf(stderr,
                     "STRICT FAIL: %s never started serving "
                     "(%llu events/rank)\n",
                     report.name.c_str(),
                     static_cast<unsigned long long>(events_per_rank));
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("strict gates passed: never-worse + regular apps serve\n");
  }
  return 0;
}
