// analysis — grammar-domain analytics bench (src/analysis/).
//
//   ./build/bench/analysis [--out=BENCH_analysis.json] [--strict]
//
// The tentpole claim in numbers: diffing two Lulesh-class traces in the
// grammar domain (analysis::grammar_diff) costs O(grammar), while the
// legacy replay (analysis::expand_diff) costs O(trace). Both produce
// bit-identical reports — asserted here on every measured pair, so the
// speedup is never bought with a wrong answer. The phase detector and
// the summary pass are timed on the largest trace for context.
//
// Sizes grow geometrically (x PYTHIA_BENCH_SCALE); each timing is the
// min over bench_reps(3) runs — min, not mean, because the quantity of
// interest is the algorithm's cost, not the host's noise.
//
// --strict (or PYTHIA_BENCH_STRICT=1) gates:
//   * grammar_diff >= 20x faster than expand_diff at the largest size,
//   * the ratio GROWS with trace length (last size vs first size): an
//     O(grammar) vs O(trace) separation must widen as traces lengthen,
//     so a constant-factor win cannot fake the complexity claim.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/diff.hpp"
#include "analysis/query.hpp"
#include "apps/catalog.hpp"
#include "bench/bench_util.hpp"
#include "harness/runner.hpp"
#include "support/env.hpp"

namespace {

using namespace pythia;
using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point begin, Clock::time_point end) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

/// Min-of-reps wall time of `fn` (which must fold into a sink).
template <typename Fn>
double min_ns(int reps, Fn&& fn) {
  double best = -1.0;
  volatile std::uint64_t sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto begin = Clock::now();
    sink = sink + fn();
    const double ns = elapsed_ns(begin, Clock::now());
    if (best < 0.0 || ns < best) best = ns;
  }
  return best;
}

bool reports_equal(const analysis::DiffReport& a,
                   const analysis::DiffReport& b) {
  return a.events == b.events && a.advanced == b.advanced &&
         a.reanchored == b.reanchored && a.unknown == b.unknown &&
         a.divergence_points == b.divergence_points;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_analysis.json";
  bool strict = support::env_flag("PYTHIA_BENCH_STRICT");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "usage: analysis [--out=FILE] [--strict]\n");
      return 2;
    }
  }

  const double scale = bench::workload_scale();
  const int reps = support::bench_reps(3);
  std::printf("pythia bench/analysis  (scale %.2f, %d reps)\n", scale, reps);

  bench::JsonWriter json;
  json.field("bench", std::string("analysis")).field("scale", scale);

  // Lulesh-class pairs at geometrically growing sizes. The two runs
  // differ in seed, so the diff does real divergence work rather than
  // fast-pathing an identical grammar. The largest size never shrinks
  // below app scale 3.0 regardless of PYTHIA_BENCH_SCALE: the >= 20x
  // gate needs a trace long enough for the O(trace) term to dominate,
  // and a scaled-down run would flake the ratio right at the threshold.
  const std::vector<double> app_scales = {0.25 * scale, 0.5 * scale,
                                          1.0 * scale,
                                          std::max(2.0 * scale, 3.0)};
  std::vector<double> ratios;
  std::vector<std::uint64_t> sizes;
  double first_ratio = 0.0;
  double last_ratio = 0.0;

  json.begin_object("diff");
  for (std::size_t i = 0; i < app_scales.size(); ++i) {
    apps::AppConfig config;
    config.scale = app_scales[i];
    const Trace reference =
        harness::record_reference(*apps::lulesh_app(), config);
    apps::AppConfig rerun = config;
    rerun.seed = config.seed + 1;
    const Trace other = harness::record_reference(*apps::lulesh_app(), rerun);
    const Grammar& ref = reference.threads[0].grammar;
    const Grammar& oth = other.threads[0].grammar;

    const analysis::DiffReport slow_report = analysis::expand_diff(ref, oth);
    const analysis::DiffReport fast_report = analysis::grammar_diff(ref, oth);
    if (!reports_equal(slow_report, fast_report)) {
      std::fprintf(stderr,
                   "error: grammar_diff report differs from expand_diff at "
                   "app scale %.2f — speedup numbers would be meaningless\n",
                   app_scales[i]);
      return 1;
    }

    const double slow_ns = min_ns(reps, [&] {
      return analysis::expand_diff(ref, oth).advanced;
    });
    const double fast_ns = min_ns(reps, [&] {
      return analysis::grammar_diff(ref, oth).advanced;
    });
    const double ratio = fast_ns > 0.0 ? slow_ns / fast_ns : 0.0;
    ratios.push_back(ratio);
    sizes.push_back(fast_report.events);
    if (i == 0) first_ratio = ratio;
    last_ratio = ratio;

    const std::string key = "size_" + std::to_string(i);
    json.begin_object(key)
        .field("app_scale", app_scales[i])
        .field("events", fast_report.events)
        .field("expand_ns", slow_ns)
        .field("grammar_ns", fast_ns)
        .field("speedup", ratio)
        .end_object();
    std::printf(
        "  %-10s %10llu events   expand %12.0f ns   grammar %10.0f ns   "
        "(%.1fx)\n",
        key.c_str(), static_cast<unsigned long long>(fast_report.events),
        slow_ns, fast_ns, ratio);
  }
  json.end_object();

  // Context numbers on the largest pair: summaries + phases + event_at,
  // the rest of the engine the diff shares its lens with.
  {
    apps::AppConfig config;
    config.scale = app_scales.back();
    const Trace trace = harness::record_reference(*apps::lulesh_app(), config);
    const ThreadTrace& thread = trace.threads[0];
    const double query_ns = min_ns(reps, [&] {
      const analysis::Query query =
          analysis::Query::over(thread.grammar, &thread.timing);
      return query.events();
    });
    const analysis::Query query =
        analysis::Query::over(thread.grammar, &thread.timing);
    analysis::PhaseOptions options;
    analysis::PhaseTree tree;
    const double phases_ns = min_ns(reps, [&] {
      query.phases(options, tree);
      return static_cast<std::uint64_t>(tree.nodes.size());
    });
    const double event_at_ns = min_ns(reps, [&] {
      TerminalId out = 0;
      (void)query.event_at(query.events() / 2, out);
      return static_cast<std::uint64_t>(out);
    });
    json.begin_object("query")
        .field("events", query.events())
        .field("rules", static_cast<std::uint64_t>(query.rules()))
        .field("build_ns", query_ns)
        .field("phases_ns", phases_ns)
        .field("event_at_ns", event_at_ns)
        .end_object();
    std::printf("  %-10s build %9.0f ns   phases %8.0f ns   event_at %6.0f "
                "ns   (%llu events, %u rules)\n",
                "query", query_ns, phases_ns, event_at_ns,
                static_cast<unsigned long long>(query.events()),
                query.rules());
  }

  const bool growing = last_ratio > first_ratio;
  json.field("largest_speedup", last_ratio)
      .field("speedup_growing", growing);

  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (strict) {
    bool ok = true;
    if (last_ratio < 20.0) {
      std::fprintf(stderr,
                   "strict: grammar_diff only %.1fx faster than expand_diff "
                   "at the largest size (need >= 20x)\n",
                   last_ratio);
      ok = false;
    }
    if (!growing) {
      std::fprintf(stderr,
                   "strict: speedup does not grow with trace length "
                   "(%.1fx at %llu events -> %.1fx at %llu events)\n",
                   first_ratio,
                   static_cast<unsigned long long>(sizes.front()), last_ratio,
                   static_cast<unsigned long long>(sizes.back()));
      ok = false;
    }
    if (!ok) return 1;
    std::printf("strict: speedup %.1fx -> %.1fx over %llu -> %llu events — "
                "all gates pass\n",
                first_ratio, last_ratio,
                static_cast<unsigned long long>(sizes.front()),
                static_cast<unsigned long long>(sizes.back()));
  }
  return 0;
}
