// Extension — cross-configuration prediction.
//
// The paper's conclusion: "Further investigations are needed to make
// Pythia able to predict accurately when the application runs with
// different configuration (number of threads, number of processes)."
//
// This bench implements and evaluates one such investigation: encoding
// point-to-point peers as *relative offsets* instead of absolute ranks.
// A ring-stencil program is recorded with 8 processes and predicted at
// 8, 12, and 16 processes. With absolute payloads the trace is useless
// on ranks that never existed in the reference; with relative payloads
// every rank sees the same stream and accuracy transfers.
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "bench/bench_util.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::harness;

// A neighbour-exchange stencil over a ring: the canonical pattern whose
// event stream is rank-count independent under relative encoding.
class RingStencil final : public apps::App {
 public:
  std::string name() const override { return "RingStencil"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(apps::RankEnv& env,
                const apps::AppConfig& config) const override {
    auto& mpi = env.mpi;
    const int left = (mpi.rank() + mpi.size() - 1) % mpi.size();
    const int right = (mpi.rank() + 1) % mpi.size();
    const std::vector<double> halo(48, 1.0);
    const int iterations = apps::scaled(120, config.scale);
    for (int iteration = 0; iteration < iterations; ++iteration) {
      std::vector<mpisim::Request> requests;
      requests.push_back(mpi.irecv(left, 0));
      requests.push_back(mpi.irecv(right, 1));
      requests.push_back(mpi.isend_doubles(right, 0, halo));
      requests.push_back(mpi.isend_doubles(left, 1, halo));
      mpi.waitall(requests);
      mpi.compute(40'000);
      if (iteration % 20 == 19) mpi.allreduce(1.0, mpisim::ReduceOp::kMax);
    }
    mpi.barrier();
  }
};

double accuracy_at(const RingStencil& app, const Trace& reference, int ranks,
                   mpisim::PeerEncoding encoding, double scale) {
  std::map<std::size_t, AccuracyProbe::Tally> tallies;
  std::mutex mutex;
  RunConfig config;
  config.mode = Mode::kPredict;
  config.ranks = ranks;
  config.app.scale = scale;
  config.reference = &reference;
  config.wrap_reference_threads = true;
  config.peer_encoding = encoding;
  config.observer_factory = [&](int, Oracle& oracle) {
    struct Collector : AccuracyProbe {
      Collector(Oracle& o, std::map<std::size_t, AccuracyProbe::Tally>* out,
                std::mutex* m)
          : AccuracyProbe(o, {1, 4, 16}), out_(out), mutex_(m) {}
      ~Collector() override {
        std::lock_guard lock(*mutex_);
        merge_into(*out_);
      }
      std::map<std::size_t, AccuracyProbe::Tally>* out_;
      std::mutex* mutex_;
    };
    return std::make_unique<Collector>(oracle, &tallies, &mutex);
  };
  run_app(app, config);

  double total_correct = 0, total_scored = 0;
  for (const auto& [distance, tally] : tallies) {
    total_correct += static_cast<double>(tally.correct);
    total_scored += static_cast<double>(tally.correct + tally.incorrect +
                                        tally.unanswered);
  }
  return total_scored > 0 ? total_correct / total_scored : 0.0;
}

}  // namespace

int main() {
  banner("Extension: configuration transfer",
         "trace recorded at 8 ranks, predictions at 8/12/16 ranks");

  const double scale = workload_scale();
  RingStencil app;

  support::Table table(
      {"encoding", "ranks=8 (same)", "ranks=12", "ranks=16"});
  for (const auto encoding : {mpisim::PeerEncoding::kAbsolute,
                              mpisim::PeerEncoding::kRelative}) {
    RunConfig record;
    record.mode = Mode::kRecord;
    record.ranks = 8;
    record.app.scale = scale;
    record.peer_encoding = encoding;
    const RunResult recorded = run_app(app, record);

    std::vector<std::string> row = {
        encoding == mpisim::PeerEncoding::kAbsolute ? "absolute (paper)"
                                                    : "relative (extension)"};
    for (int ranks : {8, 12, 16}) {
      row.push_back(support::strf(
          "%5.1f%%",
          accuracy_at(app, recorded.trace, ranks, encoding, scale) * 100.0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nShape check: both encodings are near-perfect at the recorded rank\n"
      "count; at 12/16 ranks the absolute trace collapses (peers that\n"
      "never existed in the reference), while the relative encoding keeps\n"
      "its accuracy — the paper's future-work direction, demonstrated.\n");
  return 0;
}
