// Extension — PYTHIA-guided I/O prefetching.
//
// The paper's fig. 9 discussion sizes prediction cost against exactly
// this use: "the cost of prediction for a distance of 64 ... would allow
// a runtime system to conduct coarse-grain optimization such as
// prefetching data"; its related work (Omnisc'IO) applies grammar-based
// prediction to I/O specifically. This bench closes the loop: an
// out-of-core stencil sweeps a file too large for its cache; the
// prefetcher asks the oracle which blocks come next and overlaps the
// device round trip with the per-block computation.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "iosim/block_store.hpp"
#include "iosim/prefetcher.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::iosim;

// Out-of-core workload: repeated sweeps over `blocks` with a short
// shuffle phase every sweep (two interleaved access runs), like a
// blocked matrix transpose.
void workload(PrefetchingReader& reader, int blocks, int sweeps,
              double compute_ns) {
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int block = 0; block < blocks; ++block) {
      reader.read(static_cast<std::uint64_t>(block));
      reader.compute(compute_ns);
    }
    // Shuffle phase: stride-2 pass.
    for (int block = 0; block < blocks; block += 2) {
      reader.read(static_cast<std::uint64_t>(block));
      reader.compute(compute_ns * 0.5);
    }
  }
}

}  // namespace

int main() {
  banner("Extension: I/O prefetch",
         "out-of-core sweep; oracle-prefetched vs demand paging");

  const double scale = workload_scale();
  const int blocks = 64;
  const int sweeps = static_cast<int>(12 * scale);
  const double compute_ns = 120'000;

  BlockStore::Config store_config;
  store_config.cache_blocks = 16;  // 4x smaller than the working set
  store_config.miss_ns = 400'000;
  store_config.hit_ns = 2'000;

  Trace trace;
  SharedRegistry shared(trace.registry);

  // Reference execution (also the vanilla measurement: recording does
  // not change I/O behaviour).
  std::uint64_t vanilla_ns = 0;
  BlockStore::Stats vanilla_stats;
  {
    BlockStore store(store_config);
    sim::VirtualClock clock;
    Oracle oracle = Oracle::record(true);
    PrefetchingReader reader(store, clock, oracle, shared);
    workload(reader, blocks, sweeps, compute_ns);
    trace.threads.push_back(oracle.finish());
    vanilla_ns = clock.now_ns();
    vanilla_stats = store.stats();
  }

  support::Table table({"setup", "time (virtual s)", "miss", "late",
                        "hit", "prefetches"});
  table.add_row(
      {"vanilla (demand paging)",
       support::strf("%.4f", static_cast<double>(vanilla_ns) * 1e-9),
       support::strf("%llu",
                     static_cast<unsigned long long>(vanilla_stats.misses)),
       support::strf("%llu", static_cast<unsigned long long>(
                                 vanilla_stats.late_prefetches)),
       support::strf("%llu",
                     static_cast<unsigned long long>(vanilla_stats.hits)),
       "0"});

  for (const std::size_t lookahead : {1u, 4u, 8u}) {
    BlockStore store(store_config);
    sim::VirtualClock clock;
    Oracle oracle = Oracle::predict(trace.threads[0]);
    PrefetchingReader::Config reader_config;
    reader_config.lookahead = lookahead;
    PrefetchingReader reader(store, clock, oracle, shared, reader_config);
    workload(reader, blocks, sweeps, compute_ns);
    const auto& stats = store.stats();
    table.add_row(
        {support::strf("PYTHIA prefetch, lookahead %zu", lookahead),
         support::strf("%.4f", static_cast<double>(clock.now_ns()) * 1e-9),
         support::strf("%llu", static_cast<unsigned long long>(stats.misses)),
         support::strf("%llu", static_cast<unsigned long long>(
                                   stats.late_prefetches)),
         support::strf("%llu", static_cast<unsigned long long>(stats.hits)),
         support::strf("%llu", static_cast<unsigned long long>(
                                   reader.prefetches_issued()))});
  }
  table.print();
  std::printf(
      "\nShape check: demand paging pays the full device latency on every\n"
      "block (the cache is 4x smaller than the sweep). With the oracle, a\n"
      "deeper lookahead hides more of the 400 us round trip behind the\n"
      "120 us per-block compute; lookahead 4+ turns almost every miss\n"
      "into a (late-)prefetch hit.\n");
  return 0;
}
