// Figure 9 — cost of PYTHIA-PREDICT predictions.
//
// For each application (Large working set): the average real time of one
// prediction at every blocking MPI call, as a function of the prediction
// distance. The paper reports sub-2µs costs at short distance and a
// linear growth with distance; irregular applications (many candidate
// progress sequences, big grammar graphs) cost more.
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "bench/bench_util.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::harness;

const std::vector<std::size_t> kDistances = {1, 2, 4, 8, 16, 32, 64};

}  // namespace

int main() {
  banner("Figure 9",
         "real cost (µs) of one prediction vs. distance (Large sets)");

  const double scale = workload_scale();

  std::vector<std::string> header = {"Application"};
  for (std::size_t d : kDistances) header.push_back("x=" + std::to_string(d));
  support::Table table(header);

  for (const apps::App* app : apps::all_apps()) {
    RunConfig record;
    record.mode = Mode::kRecord;
    record.app.set = apps::WorkingSet::kLarge;
    record.app.scale = scale;
    const RunResult recorded = run_app(*app, record);

    std::map<std::size_t, support::RunningStat> costs;
    std::mutex mutex;
    RunConfig predict;
    predict.mode = Mode::kPredict;
    predict.app.set = apps::WorkingSet::kLarge;
    predict.app.scale = scale;
    predict.reference = &recorded.trace;
    predict.observer_factory = [&](int, Oracle& oracle) {
      struct Collector : CostProbe {
        Collector(Oracle& o, std::map<std::size_t, support::RunningStat>* out,
                  std::mutex* m)
            : CostProbe(o, kDistances), out_(out), mutex_(m) {}
        ~Collector() override {
          std::lock_guard lock(*mutex_);
          merge_into(*out_);
        }
        std::map<std::size_t, support::RunningStat>* out_;
        std::mutex* mutex_;
      };
      return std::make_unique<Collector>(oracle, &costs, &mutex);
    };
    run_app(*app, predict);

    std::vector<std::string> row = {app->name()};
    for (std::size_t d : kDistances) {
      auto it = costs.find(d);
      row.push_back(it != costs.end() && it->second.count() > 0
                        ? support::strf("%7.2f", it->second.mean() / 1000.0)
                        : std::string("-"));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nShape check: cost grows roughly linearly with the distance;\n"
      "irregular applications (Quicksilver, AMG) sit well above the\n"
      "regular ones; short-distance predictions stay in the microsecond\n"
      "range, suitable for fine-grain runtime decisions.\n");
  return 0;
}
