// Ablation — eager root-anchored tracking vs. lazy partial progress
// sequences (§II-B2).
//
// The paper tracks *partial* progress sequences, extended upward as
// events confirm them; this reproduction's main Predictor eagerly
// enumerates all root-anchored paths instead. Both answer the same
// queries. This bench compares them on the recorded rank-0 streams of
// the 13 applications: distance-1 accuracy on an exact replay, mean
// candidate-set size, and the real cost per observe+predict step.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/lazy_predictor.hpp"

namespace {

using namespace pythia;
using namespace pythia::bench;
using namespace pythia::harness;

struct TrackerResult {
  double accuracy = 0.0;
  double mean_candidates = 0.0;
  double ns_per_event = 0.0;
};

template <typename PredictorType>
TrackerResult evaluate(const Grammar& grammar,
                       const std::vector<TerminalId>& events) {
  using clock = std::chrono::steady_clock;
  PredictorType predictor(grammar);
  std::size_t correct = 0, scored = 0;
  double candidate_sum = 0.0;
  const auto start = clock::now();
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    predictor.observe(events[i]);
    candidate_sum += static_cast<double>(predictor.candidate_count());
    const auto prediction = predictor.predict(1);
    if (i < 4) continue;
    ++scored;
    if (prediction.has_value() && prediction->event == events[i + 1]) {
      ++correct;
    }
  }
  const double elapsed =
      std::chrono::duration<double, std::nano>(clock::now() - start)
          .count();
  TrackerResult result;
  result.accuracy =
      scored > 0 ? static_cast<double>(correct) / static_cast<double>(scored)
                 : 0.0;
  result.mean_candidates =
      candidate_sum / static_cast<double>(events.size() - 1);
  result.ns_per_event = elapsed / static_cast<double>(events.size() - 1);
  return result;
}

}  // namespace

int main() {
  banner("Ablation: tracking strategy",
         "eager root-anchored paths vs lazy partial sequences (paper "
         "II-B2)");

  const double scale = workload_scale();
  support::Table table({"Application", "acc (eager)", "acc (lazy)",
                        "cands (eager)", "cands (lazy)", "ns/ev (eager)",
                        "ns/ev (lazy)"});

  for (const apps::App* app : apps::all_apps()) {
    RunConfig record;
    record.mode = Mode::kRecord;
    record.app.set = apps::WorkingSet::kSmall;
    record.app.scale = scale;
    record.record_timestamps = false;
    const RunResult recorded = run_app(*app, record);
    const Grammar& grammar = recorded.trace.threads[0].grammar;
    const std::vector<TerminalId> events = grammar.unfold();
    if (events.size() < 8) continue;

    const TrackerResult eager = evaluate<Predictor>(grammar, events);
    const TrackerResult lazy = evaluate<LazyPredictor>(grammar, events);
    table.add_row({app->name(),
                   support::strf("%5.1f%%", eager.accuracy * 100),
                   support::strf("%5.1f%%", lazy.accuracy * 100),
                   support::strf("%.1f", eager.mean_candidates),
                   support::strf("%.1f", lazy.mean_candidates),
                   support::strf("%.0f", eager.ns_per_event),
                   support::strf("%.0f", lazy.ns_per_event)});
  }
  table.print();
  std::printf(
      "\nShape check: both strategies track exact replays accurately; the\n"
      "lazy tracker holds fewer candidates right after (re-)anchoring on\n"
      "ambiguous events, at a similar per-event cost — supporting the\n"
      "paper's choice without changing the oracle's answers.\n");
  return 0;
}
