// Adaptive OpenMP thread selection — the paper's §III-D use case, end to
// end on a small synthetic application.
//
// A program alternates a heavy simulation kernel with several tiny
// bookkeeping loops, all expressed as parallel regions. Run once under
// PYTHIA-RECORD (max threads), then again under PYTHIA-PREDICT: the
// runtime asks the oracle for each region's expected duration and sizes
// the team accordingly (1 / 4 / 8 / ... threads).
#include <cstdio>

#include "core/oracle.hpp"
#include "core/shared_registry.hpp"
#include "ompsim/runtime.hpp"

namespace {

using namespace pythia;

void application(ompsim::OmpRuntime& omp, int steps) {
  for (int step = 0; step < steps; ++step) {
    omp.parallel(/*region=*/1, /*serial work=*/8e6, 0.99);  // 8 ms kernel
    // Bookkeeping pass: ten microsecond-scale fixup loops, the pattern
    // that hurts a max-threads policy (cf. Lulesh's 12 tiny regions).
    for (int fixup = 0; fixup < 10; ++fixup) {
      omp.parallel(10 + fixup, 3'000.0 + 1'500.0 * fixup, 0.9);
    }
    omp.parallel(2, 2.5e6, 0.98);  // 2.5 ms second kernel
    omp.critical(9, 1'500);        // tiny serialized section
  }
}

struct RunOutcome {
  double seconds;
  double mean_team;
  ThreadTrace trace;
};

RunOutcome run(ompsim::OmpRuntime::Config config, const ThreadTrace* reference,
               int steps) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  sim::VirtualClock clock;
  Oracle oracle = reference != nullptr ? Oracle::predict(*reference)
                                       : Oracle::record(true);
  ompsim::OmpRuntime omp(config, clock, oracle, shared);
  application(omp, steps);
  RunOutcome outcome;
  outcome.seconds = static_cast<double>(clock.now_ns()) * 1e-9;
  outcome.mean_team = omp.stats().mean_team();
  if (reference == nullptr) outcome.trace = oracle.finish();
  return outcome;
}

}  // namespace

int main() {
  using namespace pythia;

  ompsim::OmpRuntime::Config config;
  config.machine = ompsim::MachineModel::pudding();  // 24 cores
  config.max_threads = 24;

  constexpr int kSteps = 200;

  // Reference execution: vanilla decisions (always 24 threads), recording.
  RunOutcome recorded = run(config, nullptr, kSteps);
  std::printf("reference (24 threads everywhere): %.3f virtual s\n",
              recorded.seconds);

  // Second execution: adaptive.
  ompsim::OmpRuntime::Config adaptive = config;
  adaptive.adaptive = true;
  const RunOutcome predicted = run(adaptive, &recorded.trace, kSteps);
  std::printf("adaptive (PYTHIA-guided teams):    %.3f virtual s\n",
              predicted.seconds);
  std::printf("mean team size: %.1f threads\n", predicted.mean_team);
  std::printf("improvement: %.1f%%\n",
              (1.0 - predicted.seconds / recorded.seconds) * 100.0);

  std::printf(
      "\nThe big kernels still get all 24 threads; the microsecond fixup\n"
      "loops run on small teams, skipping most of the fork/join cost —\n"
      "the optimization behind the paper's 38%% Lulesh speedup.\n");
  return 0;
}
