// trace_inspect — command-line tool to examine a .pythia trace file.
//
//   ./build/examples/trace_inspect [--phases] <trace-file> [thread-index]
//   ./build/examples/trace_inspect [--phases] <session-dir> [thread-index]
//   ./build/examples/trace_inspect <journal.pyj>
//
// Prints the event registry, per-thread grammar statistics, the grammar
// itself in the paper's notation, and timing-model coverage. A record
// *session directory* is recovered in memory first (checkpoint + journal
// replay) and inspected like a trace; a bare journal file is scanned and
// summarized. With no arguments, demonstrates on a freshly recorded
// example trace.
//
// --phases swaps the grammar dump for the detected phase/loop hierarchy
// with trace-wide event counts and timing rollups — computed straight
// from the grammar (analysis::Query), never by expanding the trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/query.hpp"
#include "core/compile.hpp"
#include "core/journal.hpp"
#include "core/oracle.hpp"
#include "core/session.hpp"
#include "core/trace_io.hpp"
#include "support/io.hpp"

namespace {

using namespace pythia;

void print_journal_scan(const char* path, const JournalScan& scan) {
  std::printf("%s: record-session journal\n", path);
  std::printf("  segment size:   %zu bytes\n", scan.segment_bytes);
  std::printf("  segments:       %llu\n",
              static_cast<unsigned long long>(scan.segments));
  std::printf("  records:        %zu (%llu events)\n", scan.records.size(),
              static_cast<unsigned long long>(scan.event_records));
  std::printf("  valid prefix:   %llu of %llu bytes\n",
              static_cast<unsigned long long>(scan.valid_bytes),
              static_cast<unsigned long long>(scan.file_bytes));
  if (scan.torn) {
    std::printf("  TORN TAIL:      %llu byte(s) — %s\n",
                static_cast<unsigned long long>(scan.torn_tail_bytes()),
                scan.torn_note.c_str());
  }
}

int inspect_journal(const char* path) {
  Result<JournalScan> scanned = scan_journal(path);
  if (!scanned.ok()) {
    std::fprintf(stderr, "error: cannot scan %s: %s\n", path,
                 scanned.status().to_string().c_str());
    return 1;
  }
  print_journal_scan(path, scanned.value());
  return 0;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void print_thread(const Trace& trace, std::size_t index) {
  const ThreadTrace& thread = trace.threads[index];
  const Grammar& grammar = thread.grammar;

  if (!trace.thread_ok(index)) {
    std::printf("--- thread %zu --- (salvaged: %s)\n\n", index,
                trace.section_status[index].to_string().c_str());
    return;
  }

  std::size_t nodes = 0;
  for (const Rule* rule : grammar.rules()) nodes += rule->length;

  std::printf("--- thread %zu ---\n", index);
  std::printf("  events (unfolded): %llu\n",
              static_cast<unsigned long long>(grammar.sequence_length()));
  std::printf("  rules:             %zu\n", grammar.rule_count());
  std::printf("  body nodes:        %zu\n", nodes);
  std::printf("  compression:       %.1fx\n",
              nodes > 0 ? static_cast<double>(grammar.sequence_length()) /
                              static_cast<double>(nodes)
                        : 0.0);
  const Grammar::PoolStats pools = grammar.pool_stats();
  std::printf("  node pool:         %zu allocated, %zu free\n",
              pools.nodes_allocated, pools.nodes_free);
  std::printf("  rule pool:         %zu allocated, %zu live, %zu free "
              "(%zu id slots)\n",
              pools.rules_allocated, pools.rules_live, pools.rules_free,
              pools.rule_ids);
  std::printf("  digram index:      %zu entries / %zu slots\n",
              pools.digram_count, pools.digram_capacity);
  std::printf("  timing contexts:   %zu%s\n", thread.timing.context_count(),
              thread.timing.empty() ? " (no timestamps recorded)" : "");
  if (!thread.timing.empty()) {
    std::printf("  mean event gap:    %.1f us\n",
                thread.timing.global_mean_ns() / 1000.0);
  }
  // Determinism digest: content hash of this section (grammar payload +
  // canonicalized timing stats). Two recordings of the same run — e.g.
  // sequential vs. engine-parallel — print the same value; the engine
  // tests assert on it.
  std::printf("  digest:            %016llx\n",
              static_cast<unsigned long long>(thread_section_digest(thread)));
  if (thread.compiled.valid()) {
    const CompiledHeader& header = thread.compiled.header();
    std::printf("  compiled:          %llu bytes (checksums OK): "
                "%u nodes, %u rules, %u terminals, k<=%u%s\n",
                static_cast<unsigned long long>(header.blob_bytes),
                header.node_count, header.rule_count, header.terminal_count,
                header.k_max,
                thread.compiled.has_timing() ? ", timing" : "");
    std::printf("  compiled tables:   ");
    static const char* const kTableNames[kCompiledTableCount] = {
        "nodes", "tails", "rules", "occ_spans", "occ_nodes",
        "users", "expansions", "timing", "anchor_pred"};
    for (std::uint32_t t = 0; t < kCompiledTableCount; ++t) {
      std::printf("%s%s %llu B", t == 0 ? "" : ", ", kTableNames[t],
                  static_cast<unsigned long long>(header.tables[t].bytes));
    }
    std::printf("\n");
  } else if (index < trace.compiled_status.size() &&
             !trace.compiled_status[index].ok()) {
    std::printf("  compiled:          DROPPED (%s) — serving interpreted\n",
                trace.compiled_status[index].to_string().c_str());
  } else {
    std::printf("  compiled:          none (interpreted serving only)\n");
  }
  std::printf("\n%s\n", grammar.to_text(&trace.registry).c_str());
}

void print_phase_node(const analysis::PhaseTree& tree,
                      const Trace& trace, std::uint32_t index) {
  const analysis::PhaseNode& node = tree.nodes[index];
  std::string label(static_cast<std::size_t>(node.depth) * 2, ' ');
  if (node.depth == 0) {
    label += "<whole trace>";
  } else if (node.is_rule) {
    label += node.is_loop ? "loop R" : "R";
    label += std::to_string(node.rule);
  } else {
    label += trace.registry.describe(node.terminal);
  }
  if (node.reps > 1) label += " x" + std::to_string(node.reps);
  const double share =
      tree.total_events > 0
          ? 100.0 * static_cast<double>(node.events) /
                static_cast<double>(tree.total_events)
          : 0.0;
  std::printf("  %-34s %12llu events  %5.1f%%", label.c_str(),
              static_cast<unsigned long long>(node.events), share);
  if (tree.timed) std::printf("  %10.3f ms", node.time_ns / 1e6);
  std::printf("\n");
  // Children are contiguous and parents precede children; a linear scan
  // per node is fine at max_nodes scale.
  for (std::uint32_t child = index + 1; child < tree.nodes.size(); ++child) {
    if (tree.nodes[child].parent == static_cast<std::int32_t>(index)) {
      print_phase_node(tree, trace, child);
    }
  }
}

void print_phases(const Trace& trace, std::size_t index) {
  if (!trace.thread_ok(index)) {
    std::printf("--- thread %zu --- (salvaged: %s)\n\n", index,
                trace.section_status[index].to_string().c_str());
    return;
  }
  const analysis::Query query =
      analysis::Query::over_thread(trace.threads[index]);
  if (!query.valid()) {
    std::printf("--- thread %zu --- (no analyzable grammar)\n\n", index);
    return;
  }
  analysis::PhaseOptions options;
  analysis::PhaseTree tree;
  query.phases(options, tree);
  std::printf("--- thread %zu phases --- (%llu events, %s%s)\n", index,
              static_cast<unsigned long long>(tree.total_events),
              query.compiled() ? "compiled" : "interpreted",
              tree.timed ? ", timed" : "");
  if (!tree.nodes.empty()) print_phase_node(tree, trace, 0);
  if (tree.truncated) std::printf("  ... (truncated at node cap)\n");
  std::printf("\n");
}

Trace demo_trace() {
  Trace trace;
  const TerminalId compute = trace.registry.intern("compute");
  const TerminalId exchange = trace.registry.intern("MPI_Sendrecv", 1);
  const TerminalId norm = trace.registry.intern("MPI_Allreduce");
  Oracle oracle = Oracle::record(true);
  std::uint64_t now = 0;
  for (int i = 0; i < 60; ++i) {
    oracle.event(compute, now += 80'000);
    oracle.event(exchange, now += 12'000);
    if (i % 6 == 5) oracle.event(norm, now += 25'000);
  }
  trace.threads.push_back(oracle.finish());
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  bool phases = false;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--phases") == 0) {
      phases = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  if (args.empty()) {
    std::printf(
        "usage: trace_inspect [--phases] <trace.pythia> [thread]\n"
        "no file given — inspecting a freshly recorded demo trace:\n\n");
    const Trace trace = demo_trace();
    std::printf("registry: %zu kinds, %zu events\n\n",
                trace.registry.kind_count(), trace.registry.event_count());
    if (phases) {
      print_phases(trace, 0);
    } else {
      print_thread(trace, 0);
    }
    return 0;
  }

  const std::string arg = args[0];
  if (ends_with(arg, ".pyj")) return inspect_journal(args[0]);

  Trace trace;
  if (support::is_directory(arg)) {
    // A session directory: recover in memory and inspect the result.
    RecoveryInfo info;
    Result<Trace> recovered = recover_session(arg, &info);
    if (!recovered.ok()) {
      std::fprintf(stderr, "error: cannot recover session %s: %s\n",
                   args[0], recovered.status().to_string().c_str());
      return 1;
    }
    trace = recovered.take();
    // Recovery summary: enough for an operator to audit what a crash
    // cost — which checkpoint seeded the grammar, how much journal tail
    // was replayed on top, and whether a torn write was truncated.
    std::printf("%s: record session — recovery summary\n", args[0]);
    std::printf("  journaled events:  %llu (valid journal prefix)\n",
                static_cast<unsigned long long>(info.journaled_events));
    if (info.used_checkpoint) {
      std::printf("  checkpoint chosen: %s (%llu events)\n",
                  info.checkpoint_file.c_str(),
                  static_cast<unsigned long long>(info.checkpoint_events));
      std::printf("  replayed on top:   %llu journal event(s)\n",
                  static_cast<unsigned long long>(info.replayed_events));
    } else {
      std::printf("  checkpoint chosen: none — full journal replay "
                  "(%llu event(s))\n",
                  static_cast<unsigned long long>(info.replayed_events));
    }
    if (info.torn_bytes > 0) {
      std::printf("  torn bytes:        %llu truncated from the tail\n",
                  static_cast<unsigned long long>(info.torn_bytes));
    } else {
      std::printf("  torn bytes:        0 (clean tail)\n");
    }
    for (const std::string& note : info.notes) {
      std::printf("  note: %s\n", note.c_str());
    }
    // Online sessions leave a publish-telemetry sidecar (written
    // atomically after every snapshot publish): how the oracle was
    // building snapshots — incremental vs full replay — and what the
    // last completed publish cost, as of the moment the process died.
    std::vector<unsigned char> telemetry;
    if (support::read_file(arg + "/online_telemetry", telemetry).ok() &&
        !telemetry.empty()) {
      std::printf("  online publish telemetry (last completed publish):\n");
      std::string line;
      for (unsigned char c : telemetry) {
        if (c == '\n') {
          if (!line.empty()) std::printf("    %s\n", line.c_str());
          line.clear();
        } else {
          line += static_cast<char>(c);
        }
      }
      if (!line.empty()) std::printf("    %s\n", line.c_str());
    }
    std::printf("\n");
  } else {
    Result<Trace> result = Trace::try_load(arg);
    if (!result.ok()) {
      std::fprintf(stderr, "error: cannot load %s: %s\n", args[0],
                   result.status().to_string().c_str());
      return 1;
    }
    trace = result.take();
  }

  std::printf("%s: %zu thread(s)\n", args[0], trace.threads.size());
  std::printf("registry: %zu kinds, %zu events\n\n",
              trace.registry.kind_count(), trace.registry.event_count());
  if (!trace.fully_intact()) {
    std::printf("WARNING: %zu of %zu thread section(s) failed validation "
                "and were salvaged as empty placeholders:\n",
                trace.salvaged_threads(), trace.threads.size());
    for (std::size_t i = 0; i < trace.section_status.size(); ++i) {
      if (!trace.section_status[i].ok()) {
        std::printf("  thread %zu: %s\n", i,
                    trace.section_status[i].to_string().c_str());
      }
    }
    std::printf("\n");
  }

  const auto show = [&](std::size_t index) {
    if (phases) {
      print_phases(trace, index);
    } else {
      print_thread(trace, index);
    }
  };
  if (args.size() >= 2) {
    const std::size_t index =
        static_cast<std::size_t>(std::strtoul(args[1], nullptr, 10));
    if (index >= trace.threads.size()) {
      std::fprintf(stderr, "error: thread %zu out of range\n", index);
      return 1;
    }
    show(index);
  } else {
    for (std::size_t i = 0; i < trace.threads.size(); ++i) {
      show(i);
    }
  }
  return 0;
}
