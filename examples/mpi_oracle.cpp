// PYTHIA inside an MPI runtime: record a 4-rank halo-exchange program on
// the simulated cluster, then re-run it with the oracle answering "what
// comes next?" at every blocking call — the integration pattern of the
// paper's MPI runtime system (§III-B).
#include <cstdio>
#include <mutex>

#include "core/trace_io.hpp"
#include "mpisim/cluster.hpp"
#include "mpisim/instrumented_comm.hpp"

namespace {

using namespace pythia;
using namespace pythia::mpisim;

void stencil_program(InstrumentedComm& mpi, int iterations) {
  const int left = (mpi.rank() + mpi.size() - 1) % mpi.size();
  const int right = (mpi.rank() + 1) % mpi.size();
  const std::vector<double> halo(64, 1.0);

  for (int iteration = 0; iteration < iterations; ++iteration) {
    std::vector<Request> requests;
    requests.push_back(mpi.irecv(left, 0));
    requests.push_back(mpi.irecv(right, 1));
    requests.push_back(mpi.isend_doubles(right, 0, halo));
    requests.push_back(mpi.isend_doubles(left, 1, halo));
    mpi.waitall(requests);
    mpi.compute(50'000);  // 50 µs of stencil work
    if (iteration % 25 == 24) {
      mpi.allreduce(1.0, ReduceOp::kMax);  // convergence check
    }
  }
}

}  // namespace

int main() {
  constexpr int kRanks = 4;
  constexpr int kIterations = 100;

  Trace trace;
  SharedRegistry shared(trace.registry);

  // --- reference execution ------------------------------------------------
  {
    std::vector<ThreadTrace> threads(kRanks);
    Cluster cluster(kRanks);
    cluster.run([&](Communicator& comm) {
      Oracle oracle = Oracle::record(/*timestamps=*/true);
      InstrumentedComm mpi(comm, oracle, shared);
      stencil_program(mpi, kIterations);
      threads[static_cast<std::size_t>(comm.rank())] = oracle.finish();
    });
    for (ThreadTrace& thread : threads) {
      trace.threads.push_back(std::move(thread));
    }
  }
  trace.save("/tmp/mpi_oracle.pythia");
  std::printf("reference recorded: %zu ranks; rank-0 grammar:\n%s\n",
              trace.threads.size(),
              trace.threads[0].grammar.to_text(&trace.registry).c_str());

  // --- second execution: the runtime consults the oracle -------------------
  Trace working = Trace::load("/tmp/mpi_oracle.pythia");
  std::mutex print_mutex;

  struct WaitAdvisor : CommObserver {
    Oracle* oracle = nullptr;
    EventRegistry* registry = nullptr;
    std::mutex* print_mutex = nullptr;
    int rank = 0;
    int reported = 0;

    void on_sync_point(std::uint64_t) override {
      // The runtime is about to block — ask what comes after and when.
      const auto next = oracle->predict_event(1);
      const auto eta = oracle->predict_time_ns(1);
      if (rank == 0 && next.has_value() && reported < 5) {
        std::lock_guard lock(*print_mutex);
        std::printf("  [rank 0 blocking] next: %-16s p=%.2f eta=%.1f us\n",
                    registry->describe(next->event).c_str(),
                    next->probability,
                    eta.has_value() ? *eta / 1000.0 : -1.0);
        ++reported;
      }
    }
  };

  Cluster cluster(kRanks);
  SharedRegistry shared2(working.registry);
  cluster.run([&](Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    Oracle oracle = Oracle::predict(working.threads[rank]);
    WaitAdvisor advisor;
    advisor.oracle = &oracle;
    advisor.registry = &working.registry;
    advisor.print_mutex = &print_mutex;
    advisor.rank = comm.rank();
    InstrumentedComm mpi(comm, oracle, shared2, &advisor);
    stencil_program(mpi, kIterations);

    if (comm.rank() == 0) {
      const auto& stats = oracle.predictor_stats();
      std::lock_guard lock(print_mutex);
      std::printf(
          "\nrank 0 tracking: %llu events, %llu advanced, %llu re-anchored\n",
          static_cast<unsigned long long>(stats.observed),
          static_cast<unsigned long long>(stats.advanced),
          static_cast<unsigned long long>(stats.reanchored));
    }
  });

  std::printf(
      "\nAn MPI library would act on these predictions: aggregate the\n"
      "two sends it knows are coming, or pre-post the matching receive.\n");
  return 0;
}
