// trace_diff — compare two .pythia traces.
//
//   ./build/examples/trace_diff [--legacy-expand] <reference.pythia> \
//                               <other.pythia> [thread]
//
// Either argument may also be a record-session *directory* (journal +
// checkpoints); it is recovered in memory first, so a crashed run can be
// diffed against its reference without an explicit trace_recover step.
//
// Replays the second trace's event stream against the first trace's
// grammar with PYTHIA-PREDICT and reports how well they agree: the
// fraction of events tracked by advancing (identical behaviour), the
// re-anchor points (skips / reorders), and events unknown to the
// reference (new behaviour). This is the oracle machinery applied to
// trace *diffing*, in the spirit of DiffTrace from the paper's related
// work (§IV). With no arguments, runs a self-demo.
//
// The replay runs in the GRAMMAR DOMAIN by default (analysis::
// grammar_diff): time proportional to grammar size, not trace length,
// with a bit-identical report. --legacy-expand switches back to the
// original expansion-based replay (the differential-test oracle).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diff.hpp"
#include "analysis/query.hpp"
#include "core/oracle.hpp"
#include "core/session.hpp"
#include "core/trace_io.hpp"
#include "support/io.hpp"

namespace {

using namespace pythia;

/// Loads a trace file — or recovers a session directory in memory.
Result<Trace> load_trace_or_session(const std::string& path) {
  if (support::is_directory(path)) {
    RecoveryInfo info;
    Result<Trace> recovered = recover_session(path, &info);
    if (recovered.ok()) {
      std::printf("note: %s is a record session (%llu journaled events%s)\n",
                  path.c_str(),
                  static_cast<unsigned long long>(info.journaled_events),
                  info.torn_bytes > 0 ? ", torn tail truncated in memory"
                                      : "");
    }
    return recovered;
  }
  return Trace::try_load(path);
}

analysis::DiffReport diff_thread(const ThreadTrace& reference,
                                 const ThreadTrace& other,
                                 bool legacy_expand) {
  if (legacy_expand) {
    return analysis::expand_diff(reference.grammar, other.grammar);
  }
  return analysis::grammar_diff(reference.grammar, other.grammar);
}

void print_report(const analysis::DiffReport& report, const Trace& reference,
                  const ThreadTrace& other_thread) {
  std::printf("  events: %llu   tracked: %.1f%%   re-anchors: %llu   "
              "unknown: %llu\n",
              static_cast<unsigned long long>(report.events),
              report.agreement_percent(),
              static_cast<unsigned long long>(report.reanchored),
              static_cast<unsigned long long>(report.unknown));
  if (!report.divergence_points.empty()) {
    std::printf("  first divergences at event indices:");
    // Resolve each divergent index straight off the grammar — O(depth)
    // per lookup, no unfolding.
    const analysis::Query query = analysis::Query::over(other_thread.grammar);
    for (std::uint64_t index : report.divergence_points) {
      TerminalId event = 0;
      const bool ok = query.valid() && query.event_at(index, event);
      std::printf(" %llu(%s)", static_cast<unsigned long long>(index),
                  ok ? reference.registry.describe(event).c_str() : "?");
    }
    std::printf("\n");
  }
}

Trace demo(bool with_detour) {
  Trace trace;
  const TerminalId a = trace.registry.intern("phase_a");
  const TerminalId b = trace.registry.intern("phase_b");
  const TerminalId c = trace.registry.intern("checkpoint");
  Oracle oracle = Oracle::record(false);
  for (int i = 0; i < 50; ++i) {
    oracle.event(a);
    oracle.event(b);
    if (with_detour && i == 25) oracle.event(c);  // extra checkpoint
  }
  trace.threads.push_back(oracle.finish());
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  bool legacy_expand = false;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--legacy-expand") == 0) {
      legacy_expand = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  if (args.size() < 2) {
    std::printf(
        "usage: trace_diff [--legacy-expand] <reference.pythia> "
        "<other.pythia> [thread]\n"
        "no files given — self demo (a run with one extra checkpoint):\n\n");
    const Trace reference = demo(false);
    const Trace other = demo(true);
    const analysis::DiffReport report =
        diff_thread(reference.threads[0], other.threads[0], legacy_expand);
    print_report(report, reference, other.threads[0]);
    return 0;
  }

  Result<Trace> reference_result = load_trace_or_session(args[0]);
  if (!reference_result.ok()) {
    std::fprintf(stderr, "error: cannot load %s: %s\n", args[0],
                 reference_result.status().to_string().c_str());
    return 1;
  }
  Result<Trace> other_result = load_trace_or_session(args[1]);
  if (!other_result.ok()) {
    std::fprintf(stderr, "error: cannot load %s: %s\n", args[1],
                 other_result.status().to_string().c_str());
    return 1;
  }
  const Trace reference = reference_result.take();
  const Trace other = other_result.take();
  for (const auto& [trace, name] :
       {std::pair<const Trace*, const char*>{&reference, args[0]},
        std::pair<const Trace*, const char*>{&other, args[1]}}) {
    if (!trace->fully_intact()) {
      std::printf("note: %s has %zu salvaged thread section(s); those "
                  "threads are skipped\n",
                  name, trace->salvaged_threads());
    }
  }

  const std::size_t threads =
      std::min(reference.threads.size(), other.threads.size());
  if (reference.threads.size() != other.threads.size()) {
    std::printf("note: thread counts differ (%zu vs %zu); comparing %zu\n",
                reference.threads.size(), other.threads.size(), threads);
  }

  std::size_t begin = 0;
  std::size_t end = threads;
  if (args.size() >= 3) {
    begin = static_cast<std::size_t>(std::strtoul(args[2], nullptr, 10));
    if (begin >= threads) {
      std::fprintf(stderr, "error: thread %zu out of range\n", begin);
      return 1;
    }
    end = begin + 1;
  }
  for (std::size_t thread = begin; thread < end; ++thread) {
    std::printf("thread %zu:\n", thread);
    if (!reference.thread_ok(thread) || !other.thread_ok(thread)) {
      std::printf("  (skipped: section salvaged during load)\n");
      continue;
    }
    print_report(diff_thread(reference.threads[thread], other.threads[thread],
                             legacy_expand),
                 reference, other.threads[thread]);
  }
  return 0;
}
