// trace_diff — compare two .pythia traces.
//
//   ./build/examples/trace_diff <reference.pythia> <other.pythia> [thread]
//
// Either argument may also be a record-session *directory* (journal +
// checkpoints); it is recovered in memory first, so a crashed run can be
// diffed against its reference without an explicit trace_recover step.
//
// Replays the second trace's event stream against the first trace's
// grammar with PYTHIA-PREDICT and reports how well they agree: the
// fraction of events tracked by advancing (identical behaviour), the
// re-anchor points (skips / reorders), and events unknown to the
// reference (new behaviour). This is the oracle machinery applied to
// trace *diffing*, in the spirit of DiffTrace from the paper's related
// work (§IV). With no arguments, runs a self-demo.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/oracle.hpp"
#include "core/predictor.hpp"
#include "core/session.hpp"
#include "core/trace_io.hpp"
#include "support/io.hpp"

namespace {

using namespace pythia;

/// Loads a trace file — or recovers a session directory in memory.
Result<Trace> load_trace_or_session(const std::string& path) {
  if (support::is_directory(path)) {
    RecoveryInfo info;
    Result<Trace> recovered = recover_session(path, &info);
    if (recovered.ok()) {
      std::printf("note: %s is a record session (%llu journaled events%s)\n",
                  path.c_str(),
                  static_cast<unsigned long long>(info.journaled_events),
                  info.torn_bytes > 0 ? ", torn tail truncated in memory"
                                      : "");
    }
    return recovered;
  }
  return Trace::try_load(path);
}

struct DiffReport {
  std::uint64_t events = 0;
  std::uint64_t advanced = 0;
  std::uint64_t reanchored = 0;
  std::uint64_t unknown = 0;
  std::vector<std::uint64_t> divergence_points;  // event indices
};

DiffReport diff_thread(const ThreadTrace& reference,
                       const ThreadTrace& other) {
  DiffReport report;
  Predictor predictor(reference.grammar);
  const std::vector<TerminalId> events = other.grammar.unfold();
  report.events = events.size();
  std::uint64_t previous_reanchors = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    predictor.observe(events[i]);
    const auto& stats = predictor.stats();
    const std::uint64_t reanchors = stats.reanchored + stats.unknown;
    if (reanchors != previous_reanchors && i > 0) {
      if (report.divergence_points.size() < 16) {
        report.divergence_points.push_back(i);
      }
      previous_reanchors = reanchors;
    }
  }
  const auto& stats = predictor.stats();
  report.advanced = stats.advanced;
  report.reanchored = stats.reanchored;
  report.unknown = stats.unknown;
  return report;
}

void print_report(const DiffReport& report, const Trace& reference,
                  const ThreadTrace& other_thread) {
  const double agreement =
      report.events > 0 ? 100.0 * static_cast<double>(report.advanced) /
                              static_cast<double>(report.events)
                        : 0.0;
  std::printf("  events: %llu   tracked: %.1f%%   re-anchors: %llu   "
              "unknown: %llu\n",
              static_cast<unsigned long long>(report.events), agreement,
              static_cast<unsigned long long>(report.reanchored),
              static_cast<unsigned long long>(report.unknown));
  if (!report.divergence_points.empty()) {
    std::printf("  first divergences at event indices:");
    const std::vector<TerminalId> events = other_thread.grammar.unfold();
    for (std::uint64_t index : report.divergence_points) {
      std::printf(" %llu(%s)", static_cast<unsigned long long>(index),
                  reference.registry.describe(events[index]).c_str());
    }
    std::printf("\n");
  }
}

Trace demo(bool with_detour) {
  Trace trace;
  const TerminalId a = trace.registry.intern("phase_a");
  const TerminalId b = trace.registry.intern("phase_b");
  const TerminalId c = trace.registry.intern("checkpoint");
  Oracle oracle = Oracle::record(false);
  for (int i = 0; i < 50; ++i) {
    oracle.event(a);
    oracle.event(b);
    if (with_detour && i == 25) oracle.event(c);  // extra checkpoint
  }
  trace.threads.push_back(oracle.finish());
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::printf(
        "usage: trace_diff <reference.pythia> <other.pythia> [thread]\n"
        "no files given — self demo (a run with one extra checkpoint):\n\n");
    const Trace reference = demo(false);
    const Trace other = demo(true);
    const DiffReport report =
        diff_thread(reference.threads[0], other.threads[0]);
    print_report(report, reference, other.threads[0]);
    return 0;
  }

  Result<Trace> reference_result = load_trace_or_session(argv[1]);
  if (!reference_result.ok()) {
    std::fprintf(stderr, "error: cannot load %s: %s\n", argv[1],
                 reference_result.status().to_string().c_str());
    return 1;
  }
  Result<Trace> other_result = load_trace_or_session(argv[2]);
  if (!other_result.ok()) {
    std::fprintf(stderr, "error: cannot load %s: %s\n", argv[2],
                 other_result.status().to_string().c_str());
    return 1;
  }
  const Trace reference = reference_result.take();
  const Trace other = other_result.take();
  for (const auto& [trace, name] :
       {std::pair<const Trace*, const char*>{&reference, argv[1]},
        std::pair<const Trace*, const char*>{&other, argv[2]}}) {
    if (!trace->fully_intact()) {
      std::printf("note: %s has %zu salvaged thread section(s); those "
                  "threads are skipped\n",
                  name, trace->salvaged_threads());
    }
  }

  const std::size_t threads =
      std::min(reference.threads.size(), other.threads.size());
  if (reference.threads.size() != other.threads.size()) {
    std::printf("note: thread counts differ (%zu vs %zu); comparing %zu\n",
                reference.threads.size(), other.threads.size(), threads);
  }

  std::size_t begin = 0;
  std::size_t end = threads;
  if (argc >= 4) {
    begin = static_cast<std::size_t>(std::strtoul(argv[3], nullptr, 10));
    if (begin >= threads) {
      std::fprintf(stderr, "error: thread %zu out of range\n", begin);
      return 1;
    }
    end = begin + 1;
  }
  for (std::size_t thread = begin; thread < end; ++thread) {
    std::printf("thread %zu:\n", thread);
    if (!reference.thread_ok(thread) || !other.thread_ok(thread)) {
      std::printf("  (skipped: section salvaged during load)\n");
      continue;
    }
    print_report(diff_thread(reference.threads[thread],
                             other.threads[thread]),
                 reference, other.threads[thread]);
  }
  return 0;
}
