// Quickstart: record an event stream, save the trace, reload it, and ask
// the oracle about the future.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the full PYTHIA lifecycle from §II of the paper on a toy
// "application": a main loop that computes, sends, and reduces.
#include <cstdio>

#include "core/oracle.hpp"
#include "core/trace_io.hpp"

int main() {
  using namespace pythia;

  // ---------------------------------------------------------------------
  // 1. Reference execution: the runtime system submits events.
  // ---------------------------------------------------------------------
  Trace trace;
  const TerminalId compute = trace.registry.intern("compute_kernel");
  const TerminalId send_right = trace.registry.intern("MPI_Send", /*aux=*/1);
  const TerminalId recv_left = trace.registry.intern("MPI_Recv", /*aux=*/0);
  const TerminalId reduce = trace.registry.intern("MPI_Allreduce");

  {
    Oracle oracle = Oracle::record(/*timestamps=*/true);
    std::uint64_t now_ns = 0;
    for (int iteration = 0; iteration < 100; ++iteration) {
      oracle.event(compute, now_ns += 120'000);  // 120 µs kernel
      oracle.event(send_right, now_ns += 2'000);
      oracle.event(recv_left, now_ns += 15'000);
      if (iteration % 10 == 9) {
        oracle.event(reduce, now_ns += 30'000);
      }
    }
    trace.threads.push_back(oracle.finish());
  }

  std::printf("Recorded %llu events; grammar:\n%s\n",
              static_cast<unsigned long long>(
                  trace.threads[0].grammar.sequence_length()),
              trace.threads[0].grammar.to_text(&trace.registry).c_str());

  // ---------------------------------------------------------------------
  // 2. Persist and reload (what happens between two executions).
  // ---------------------------------------------------------------------
  trace.save("/tmp/quickstart.pythia");
  const Trace loaded = Trace::load("/tmp/quickstart.pythia");

  // ---------------------------------------------------------------------
  // 3. Next execution: follow progress and query the oracle.
  // ---------------------------------------------------------------------
  Oracle oracle = Oracle::predict(loaded.threads[0]);
  // The program is mid-run; PYTHIA synchronizes from wherever it is
  // (§II-B1: no need to start at the beginning).
  oracle.event(compute);
  oracle.event(send_right);

  std::printf("observed: compute_kernel, MPI_Send(1)\n\n");
  for (const std::size_t distance : {1u, 2u, 3u, 4u, 30u}) {
    const auto prediction = oracle.predict_event(distance);
    const auto eta = oracle.predict_time_ns(distance);
    if (!prediction.has_value()) continue;
    std::string when;
    if (eta.has_value()) {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, " expected in %.1f us",
                    *eta / 1000.0);
      when = buffer;
    }
    std::printf("in %2zu events: %-16s (p=%.2f)%s\n", distance,
                loaded.registry.describe(prediction->event).c_str(),
                prediction->probability, when.c_str());
  }

  std::printf(
      "\nA runtime system would use these answers instead of a heuristic:\n"
      "e.g. knowing an MPI_Allreduce is imminent, it could piggyback data\n"
      "on the collective instead of sending a separate message.\n");
  return 0;
}
