// trace_recover — rebuild a trace from a crashed record session.
//
//   ./build/examples/trace_recover <session-dir> [out.pythia]
//
// A RecordSession directory (journal.pyj + checkpoints + MANIFEST) holds
// everything a crashed reference execution managed to persist. This tool
// runs the same recovery the session itself would run on reopen — newest
// valid checkpoint, journal tail replayed on top, torn bytes reported —
// prints what it found, and writes the recovered trace (default:
// <session-dir>/trace.pythia). The session directory itself is not
// modified, so inspection is safe while deciding whether to resume.
#include <cstdio>
#include <string>

#include "core/session.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_recover <session-dir> [out.pythia]\n");
    return 2;
  }
  const std::string dir = argv[1];
  const std::string out =
      argc >= 3 ? std::string(argv[2]) : dir + "/trace.pythia";

  pythia::RecoveryInfo info;
  pythia::Result<pythia::Trace> recovered =
      pythia::recover_session(dir, &info);
  if (!recovered.ok()) {
    std::fprintf(stderr, "error: cannot recover %s: %s\n", dir.c_str(),
                 recovered.status().to_string().c_str());
    return 1;
  }
  const pythia::Trace trace = recovered.take();

  std::printf("%s:\n", dir.c_str());
  std::printf("  journaled events:  %llu\n",
              static_cast<unsigned long long>(info.journaled_events));
  if (info.used_checkpoint) {
    std::printf("  checkpoint:        used (covers %llu events)\n",
                static_cast<unsigned long long>(info.checkpoint_events));
  } else {
    std::printf("  checkpoint:        none usable\n");
  }
  std::printf("  replayed events:   %llu\n",
              static_cast<unsigned long long>(info.replayed_events));
  std::printf("  torn tail bytes:   %llu\n",
              static_cast<unsigned long long>(info.torn_bytes));
  for (const std::string& note : info.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  std::printf("  grammar:           %llu events, %zu rules\n",
              static_cast<unsigned long long>(
                  trace.threads[0].grammar.sequence_length()),
              trace.threads[0].grammar.rule_count());
  std::printf("  timing contexts:   %zu\n",
              trace.threads[0].timing.context_count());

  const pythia::Status saved = trace.try_save(out);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", out.c_str(),
                 saved.to_string().c_str());
    return 1;
  }
  std::printf("  recovered trace -> %s\n", out.c_str());
  return 0;
}
