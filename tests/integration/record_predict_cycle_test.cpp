// End-to-end integration: record an application on the simulated
// cluster, write the trace to disk, reload it, and predict a subsequent
// execution — per application, including cross-working-set transfers
// (the paper's fig. 8 scenario) and the full OpenMP adaptation loop.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "apps/app.hpp"
#include "harness/probes.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {
namespace {

using apps::App;
using apps::AppConfig;
using apps::WorkingSet;

AppConfig config_for(WorkingSet set) {
  AppConfig config;
  config.set = set;
  config.scale = 0.2;
  return config;
}

std::string temp_trace(const std::string& name) {
  return testing::TempDir() + "/" + name + ".pythia";
}

class DiskRoundTrip : public ::testing::TestWithParam<const App*> {};

TEST_P(DiskRoundTrip, RecordSaveLoadPredict) {
  const App& app = *GetParam();

  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.app = config_for(WorkingSet::kSmall);
  RunResult recorded = run_app(app, record_config);

  const std::string path = temp_trace(app.name());
  recorded.trace.save(path);
  Trace loaded = Trace::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.threads.size(), recorded.trace.threads.size());

  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.app = config_for(WorkingSet::kSmall);
  predict_config.reference = &loaded;
  const RunResult predicted = run_app(app, predict_config);

  EXPECT_GT(predicted.predictor_stats.observed, 0u);
  EXPECT_EQ(predicted.predictor_stats.unknown, 0u);
  EXPECT_GE(predicted.predictor_stats.advanced,
            predicted.predictor_stats.observed -
                2 * static_cast<std::uint64_t>(app.default_ranks()));
}

TEST_P(DiskRoundTrip, SmallTraceGuidesMediumRun) {
  // The fig. 8 scenario: record Small, run Medium. Short-distance
  // predictions must stay useful for every application.
  const App& app = *GetParam();

  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.app = config_for(WorkingSet::kSmall);
  const RunResult recorded = run_app(app, record_config);

  std::map<std::size_t, AccuracyProbe::Tally> tallies;
  std::mutex mutex;
  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.app = config_for(WorkingSet::kMedium);
  predict_config.reference = &recorded.trace;
  predict_config.observer_factory = [&](int, Oracle& oracle) {
    struct Collector : AccuracyProbe {
      Collector(Oracle& o, std::map<std::size_t, AccuracyProbe::Tally>* out,
                std::mutex* m)
          : AccuracyProbe(o, {1, 2}), out_(out), mutex_(m) {}
      ~Collector() override {
        std::lock_guard lock(*mutex_);
        merge_into(*out_);
      }
      std::map<std::size_t, AccuracyProbe::Tally>* out_;
      std::mutex* mutex_;
    };
    return std::make_unique<Collector>(oracle, &tallies, &mutex);
  };
  run_app(app, predict_config);

  const auto& tally = tallies[1];
  ASSERT_GT(tally.asked, 0u);
  // This runs at scale 0.2 to stay fast, so runs are a few dozen sync
  // points and loop-boundary mispredictions weigh heavily; the paper-
  // scale values (>87 % short-distance for regular apps) are produced by
  // bench/fig8_accuracy. Here we only require that the oracle stays
  // clearly better than chance on every application.
  const bool irregular =
      app.name() == "Quicksilver" || app.name() == "AMG";
  EXPECT_GE(tally.answered_accuracy(), irregular ? 0.45 : 0.5)
      << app.name() << ": " << tally.correct << "/" << tally.asked;
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, DiskRoundTrip, ::testing::ValuesIn(apps::all_apps()),
    [](const ::testing::TestParamInfo<const App*>& info) {
      return info.param->name();
    });

TEST(AdaptationLoop, FullCycleOnDiskForLulesh) {
  // The complete §III-D story: record Lulesh (max threads) with
  // timestamps, persist, reload, re-run with the adaptive OpenMP runtime,
  // and verify the speedup and that no region had to fall back.
  const App* lulesh = apps::find_app("Lulesh");
  ASSERT_NE(lulesh, nullptr);

  RunConfig base;
  base.app = config_for(WorkingSet::kMedium);
  base.ranks = 1;
  base.machine = ompsim::MachineModel::pudding();
  base.omp_max_threads = 24;

  RunConfig record_config = base;
  record_config.mode = Mode::kRecord;
  RunResult recorded = run_app(*lulesh, record_config);
  const std::uint64_t reference_time = recorded.makespan_virtual_ns;

  const std::string path = temp_trace("lulesh_adapt");
  recorded.trace.save(path);
  Trace loaded = Trace::load(path);
  std::remove(path.c_str());

  RunConfig predict_config = base;
  predict_config.mode = Mode::kPredict;
  predict_config.reference = &loaded;
  predict_config.omp_adaptive = true;
  const RunResult adapted = run_app(*lulesh, predict_config);

  EXPECT_LT(adapted.makespan_virtual_ns, reference_time);
  EXPECT_GT(adapted.omp_stats.adaptive_decisions, 0u);
  // After the first time step every region entry has a usable prediction.
  EXPECT_LE(adapted.omp_stats.fallback_decisions, 40u);
  EXPECT_LT(adapted.omp_stats.mean_team(), 24.0);
}

TEST(AdaptationLoop, HybridLuleshAdaptsUnderMpi) {
  // Same loop with 8 MPI ranks: MPI and OpenMP events share the per-rank
  // oracle and the adaptation must still pay off.
  const App* lulesh = apps::find_app("Lulesh");
  RunConfig base;
  base.app = config_for(WorkingSet::kSmall);
  base.machine = ompsim::MachineModel::pixel();
  base.omp_max_threads = 8;

  RunConfig record_config = base;
  record_config.mode = Mode::kRecord;
  const RunResult recorded = run_app(*lulesh, record_config);

  RunConfig predict_config = base;
  predict_config.mode = Mode::kPredict;
  predict_config.reference = &recorded.trace;
  predict_config.omp_adaptive = true;
  const RunResult adapted = run_app(*lulesh, predict_config);

  EXPECT_LE(adapted.makespan_virtual_ns, recorded.makespan_virtual_ns);
  EXPECT_GT(adapted.omp_stats.adaptive_decisions, 0u);
}

TEST(CrossConfiguration, RelativeEncodingSurvivesRankChange) {
  // The extension bench's scenario as a regression test, using CG whose
  // butterfly partners are power-of-two offsets.
  const App* cg = apps::find_app("CG");
  ASSERT_NE(cg, nullptr);

  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.ranks = 4;
  record_config.app = config_for(WorkingSet::kSmall);
  record_config.peer_encoding = mpisim::PeerEncoding::kRelative;
  const RunResult recorded = run_app(*cg, record_config);

  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.ranks = 8;  // different configuration
  predict_config.app = config_for(WorkingSet::kSmall);
  predict_config.reference = &recorded.trace;
  predict_config.wrap_reference_threads = true;
  predict_config.peer_encoding = mpisim::PeerEncoding::kRelative;
  const RunResult predicted = run_app(*cg, predict_config);

  // The 8-rank run has an extra butterfly stage the 4-rank trace never
  // saw, so some events are unknown — but the oracle must keep tracking
  // the shared structure rather than going permanently dark.
  ASSERT_GT(predicted.predictor_stats.observed, 0u);
  EXPECT_GE(static_cast<double>(predicted.predictor_stats.advanced),
            0.5 * static_cast<double>(predicted.predictor_stats.observed));
}

}  // namespace
}  // namespace pythia::harness
