// Block store and PYTHIA-guided prefetcher tests.
#include <gtest/gtest.h>

#include <vector>

#include "core/oracle.hpp"
#include "core/trace_io.hpp"
#include "iosim/block_store.hpp"
#include "iosim/prefetcher.hpp"

namespace pythia::iosim {
namespace {

BlockStore::Config small_store() {
  BlockStore::Config config;
  config.hit_ns = 1'000;
  config.miss_ns = 100'000;
  config.issue_ns = 500;
  config.cache_blocks = 4;
  return config;
}

TEST(BlockStore, ColdReadIsAMiss) {
  BlockStore store(small_store());
  sim::VirtualClock clock;
  store.read(clock, 7);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(clock.now_ns(), 100'000u);
}

TEST(BlockStore, RepeatReadIsAHit) {
  BlockStore store(small_store());
  sim::VirtualClock clock;
  store.read(clock, 7);
  const std::uint64_t after_miss = clock.now_ns();
  store.read(clock, 7);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(clock.now_ns(), after_miss + 1'000u);
}

TEST(BlockStore, LruEvictsOldest) {
  BlockStore store(small_store());  // capacity 4
  sim::VirtualClock clock;
  for (std::uint64_t block = 0; block < 5; ++block) {
    store.read(clock, block);
  }
  EXPECT_FALSE(store.resident(0));  // evicted
  EXPECT_TRUE(store.resident(4));
  store.read(clock, 0);
  EXPECT_EQ(store.stats().misses, 6u);
}

TEST(BlockStore, TouchRefreshesLruOrder) {
  BlockStore store(small_store());
  sim::VirtualClock clock;
  for (std::uint64_t block = 0; block < 4; ++block) {
    store.read(clock, block);
  }
  store.read(clock, 0);  // block 0 becomes most recent
  store.read(clock, 9);  // evicts block 1, not 0
  EXPECT_TRUE(store.resident(0));
  EXPECT_FALSE(store.resident(1));
}

TEST(BlockStore, PrefetchHidesLatencyWhenEarly) {
  BlockStore store(small_store());
  sim::VirtualClock clock;
  store.prefetch(clock, 3);
  EXPECT_EQ(clock.now_ns(), 500u);  // issue cost only
  clock.advance(200'000);           // enough compute for it to land
  store.read(clock, 3);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 0u);
  EXPECT_EQ(clock.now_ns(), 200'500u + 1'000u);
}

TEST(BlockStore, LatePrefetchIsAPartialWin) {
  BlockStore store(small_store());
  sim::VirtualClock clock;
  store.prefetch(clock, 3);  // ready at 500 + 100'000
  clock.advance(50'000);     // only half the latency has elapsed
  store.read(clock, 3);
  EXPECT_EQ(store.stats().late_prefetches, 1u);
  // Waited until ready (100'500) + hit cost — cheaper than a full miss
  // from t=50'500 (150'500).
  EXPECT_EQ(clock.now_ns(), 101'500u);
}

TEST(BlockStore, RedundantPrefetchIsFreeAndCounted) {
  BlockStore store(small_store());
  sim::VirtualClock clock;
  store.read(clock, 1);
  const std::uint64_t before = clock.now_ns();
  store.prefetch(clock, 1);
  EXPECT_EQ(store.stats().redundant_prefetches, 1u);
  EXPECT_EQ(clock.now_ns(), before);  // no issue cost
}

// --- the full prediction loop ----------------------------------------------

// Sweeps `blocks` in a fixed order with compute between reads.
void sweep_workload(PrefetchingReader& reader, int blocks, int sweeps,
                    double compute_ns) {
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int block = 0; block < blocks; ++block) {
      reader.read(static_cast<std::uint64_t>(block));
      reader.compute(compute_ns);
    }
  }
}

TEST(Prefetcher, OracleGuidedSweepBeatsColdCache) {
  // 16 blocks, capacity 4: every sweep misses everything without
  // prefetch. With the oracle foreseeing the next reads and enough
  // compute to hide the latency, reads become (late-)prefetch hits.
  BlockStore::Config config = small_store();
  config.cache_blocks = 4;

  constexpr int kBlocks = 16;
  constexpr int kSweeps = 6;
  constexpr double kComputeNs = 60'000;

  // Reference execution.
  Trace trace;
  SharedRegistry shared(trace.registry);
  std::uint64_t vanilla_ns = 0;
  {
    BlockStore store(config);
    sim::VirtualClock clock;
    Oracle oracle = Oracle::record(true);
    PrefetchingReader reader(store, clock, oracle, shared);
    sweep_workload(reader, kBlocks, kSweeps, kComputeNs);
    trace.threads.push_back(oracle.finish());
    vanilla_ns = clock.now_ns();
    EXPECT_EQ(store.stats().misses, kBlocks * kSweeps);  // all cold
  }

  // Prediction run with lookahead 3: three prefetches in flight cover
  // 3 x 60µs of compute against the 100µs device latency.
  {
    BlockStore store(config);
    sim::VirtualClock clock;
    Oracle oracle = Oracle::predict(trace.threads[0]);
    PrefetchingReader::Config reader_config;
    reader_config.lookahead = 3;
    PrefetchingReader reader(store, clock, oracle, shared, reader_config);
    sweep_workload(reader, kBlocks, kSweeps, kComputeNs);

    const auto& stats = store.stats();
    EXPECT_LT(clock.now_ns(), vanilla_ns);
    EXPECT_GT(stats.hits + stats.late_prefetches, stats.misses);
    EXPECT_GT(reader.prefetches_issued(), 0u);
  }
}

TEST(Prefetcher, RecordModeNeverPrefetches) {
  BlockStore store(small_store());
  sim::VirtualClock clock;
  Trace trace;
  SharedRegistry shared(trace.registry);
  Oracle oracle = Oracle::record(false);
  PrefetchingReader reader(store, clock, oracle, shared);
  reader.read(0);
  reader.read(1);
  EXPECT_EQ(reader.prefetches_issued(), 0u);
  EXPECT_EQ(store.stats().prefetches, 0u);
}

TEST(Prefetcher, UnknownFutureDoesNothingHarmful) {
  // The predict run touches blocks the reference never saw: the oracle
  // goes dark; reads still work as plain misses.
  Trace trace;
  SharedRegistry shared(trace.registry);
  {
    BlockStore store(small_store());
    sim::VirtualClock clock;
    Oracle oracle = Oracle::record(true);
    PrefetchingReader reader(store, clock, oracle, shared);
    for (int i = 0; i < 10; ++i) reader.read(static_cast<std::uint64_t>(i % 2));
    trace.threads.push_back(oracle.finish());
  }
  BlockStore store(small_store());
  sim::VirtualClock clock;
  Oracle oracle = Oracle::predict(trace.threads[0]);
  PrefetchingReader reader(store, clock, oracle, shared);
  reader.read(100);
  reader.read(101);
  EXPECT_EQ(store.stats().misses, 2u);
}

}  // namespace
}  // namespace pythia::iosim
