// Simulated OpenMP runtime tests: cost model, thread pool, adaptive
// policy, and the record→predict adaptation loop (paper §III-D1).
#include <gtest/gtest.h>

#include <vector>

#include "core/trace_io.hpp"
#include "ompsim/adaptive.hpp"
#include "ompsim/machine.hpp"
#include "ompsim/runtime.hpp"
#include "ompsim/thread_pool.hpp"

namespace pythia::ompsim {
namespace {

TEST(MachineModel, MoreThreadsHelpBigRegions) {
  const MachineModel machine = MachineModel::pudding();
  const double work = 5e6;  // 5 ms of serial work
  EXPECT_LT(machine.region_cost_ns(work, 24, 0.95),
            machine.region_cost_ns(work, 1, 0.95));
  EXPECT_LT(machine.region_cost_ns(work, 24, 0.95),
            machine.region_cost_ns(work, 4, 0.95));
}

TEST(MachineModel, SmallRegionsLoseAtHighThreadCounts) {
  const MachineModel machine = MachineModel::pudding();
  const double work = 10'000;  // 10 µs region
  EXPECT_LT(machine.region_cost_ns(work, 1, 1.0),
            machine.region_cost_ns(work, 24, 1.0));
}

TEST(MachineModel, NoSpeedupBeyondCoreCount) {
  const MachineModel machine = MachineModel::pixel();  // 16 cores
  const double work = 1e7;
  const double at16 = machine.region_cost_ns(work, 16, 1.0);
  const double at24 = machine.region_cost_ns(work, 24, 1.0);
  EXPECT_GT(at24, at16);  // only overhead grows
}

TEST(MachineModel, PixelFasterPerCore) {
  const MachineModel pudding = MachineModel::pudding();
  const MachineModel pixel = MachineModel::pixel();
  EXPECT_LT(pixel.region_cost_ns(1e6, 1, 1.0),
            pudding.region_cost_ns(1e6, 1, 1.0));
}

TEST(ThreadPool, ParkedPoolPaysSpawnOnlyOnce) {
  const MachineModel machine = MachineModel::pudding();
  ThreadPoolModel pool(machine, /*park_spurious=*/true);
  const double first = pool.adjust_to(24);
  EXPECT_DOUBLE_EQ(first, machine.spawn_thread_ns * 23);
  EXPECT_DOUBLE_EQ(pool.adjust_to(1), 0.0);  // parking is free
  EXPECT_EQ(pool.parked(), 23);
  const double regrow = pool.adjust_to(24);
  EXPECT_DOUBLE_EQ(regrow, machine.unpark_thread_ns * 23);  // cheap reuse
}

TEST(ThreadPool, VanillaPoolRespawnsAfterShrink) {
  const MachineModel machine = MachineModel::pudding();
  ThreadPoolModel pool(machine, /*park_spurious=*/false);
  pool.adjust_to(24);
  const double shrink = pool.adjust_to(1);
  EXPECT_DOUBLE_EQ(shrink, machine.destroy_thread_ns * 23);
  const double regrow = pool.adjust_to(24);
  EXPECT_DOUBLE_EQ(regrow, machine.spawn_thread_ns * 23);  // expensive
}

TEST(AdaptivePolicy, LadderIsMonotonic) {
  const AdaptivePolicy policy =
      AdaptivePolicy::from_model(MachineModel::pudding(), 24);
  ASSERT_FALSE(policy.ladder().empty());
  double previous = 0.0;
  int previous_threads = 0;
  for (const auto& threshold : policy.ladder()) {
    EXPECT_GE(threshold.max_predicted_ns, previous);
    EXPECT_GT(threshold.threads, previous_threads);
    previous = threshold.max_predicted_ns;
    previous_threads = threshold.threads;
  }
}

TEST(AdaptivePolicy, SmallPredictionFewThreadsLargeMax) {
  const AdaptivePolicy policy =
      AdaptivePolicy::from_model(MachineModel::pudding(), 24);
  EXPECT_EQ(policy.choose_threads(std::nullopt), 24);  // heuristic fallback
  EXPECT_EQ(policy.choose_threads(5'000.0), 1);        // tiny region
  EXPECT_EQ(policy.choose_threads(1e9), 24);           // huge region
  // A prediction between the 8-thread and 16-thread break-evens. The
  // ladder is compressed near overhead(24) because the reference duration
  // always includes the max-thread fork/join cost.
  const MachineModel machine = MachineModel::pudding();
  const double mid_prediction =
      machine.region_cost_ns(150'000.0, 24, 1.0);  // 150 µs of work
  const int mid = policy.choose_threads(mid_prediction);
  EXPECT_GT(mid, 1);
  EXPECT_LT(mid, 24);
}

TEST(AdaptivePolicy, ChoicesApproximateModelOptimum) {
  const MachineModel machine = MachineModel::pudding();
  const AdaptivePolicy policy = AdaptivePolicy::from_model(machine, 24);
  for (double work : {1e3, 1e4, 1e5, 1e6, 1e7, 1e8}) {
    const double predicted = machine.region_cost_ns(work, 24, 1.0);
    const int chosen = policy.choose_threads(predicted);
    // Exhaustive optimum over the candidate set.
    double best_cost = 1e300;
    for (int t : {1, 2, 4, 8, 16, 24}) {
      best_cost = std::min(best_cost, machine.region_cost_ns(work, t, 1.0));
    }
    const double chosen_cost = machine.region_cost_ns(work, chosen, 1.0);
    EXPECT_LE(chosen_cost, best_cost * 1.3)
        << "work=" << work << " chose " << chosen;
  }
}

// --- end-to-end: record a region pattern, then adapt -----------------------

struct LikeLulesh {
  // Alternating large and small regions, like Lulesh's 30 regions of
  // different sizes.
  static void run(OmpRuntime& omp, int timesteps) {
    for (int step = 0; step < timesteps; ++step) {
      omp.parallel(/*region_id=*/1, /*work=*/4e6, 0.98);   // big kernel
      omp.parallel(/*region_id=*/2, /*work=*/15'000, 0.9); // tiny fixup
      omp.parallel(/*region_id=*/3, /*work=*/2e6, 0.98);   // big kernel
      omp.parallel(/*region_id=*/4, /*work=*/8'000, 0.9);  // tiny fixup
    }
  }
};

TEST(OmpRuntime, RecordCapturesRegionPattern) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  sim::VirtualClock clock;
  Oracle oracle = Oracle::record(true);
  OmpRuntime::Config config;
  config.machine = MachineModel::pudding();
  config.max_threads = 24;
  OmpRuntime omp(config, clock, oracle, shared);
  LikeLulesh::run(omp, 50);
  ThreadTrace trace = oracle.finish();
  // 50 steps x 4 regions x 2 events.
  EXPECT_EQ(trace.grammar.sequence_length(), 400u);
  EXPECT_LE(trace.grammar.rule_count(), 8u);  // strongly repetitive
  EXPECT_FALSE(trace.timing.empty());
}

TEST(OmpRuntime, AdaptiveModeShrinksSmallRegions) {
  EventRegistry registry;
  SharedRegistry shared(registry);

  OmpRuntime::Config config;
  config.machine = MachineModel::pudding();
  config.max_threads = 24;

  // Reference execution (record, max threads).
  ThreadTrace trace;
  std::uint64_t record_time = 0;
  {
    sim::VirtualClock clock;
    Oracle oracle = Oracle::record(true);
    OmpRuntime omp(config, clock, oracle, shared);
    LikeLulesh::run(omp, 50);
    trace = oracle.finish();
    record_time = clock.now_ns();
  }

  // Prediction execution (adaptive).
  std::uint64_t predict_time = 0;
  OmpRuntime::Stats stats;
  {
    sim::VirtualClock clock;
    Oracle oracle = Oracle::predict(trace);
    OmpRuntime::Config adaptive_config = config;
    adaptive_config.adaptive = true;
    OmpRuntime omp(adaptive_config, clock, oracle, shared);
    LikeLulesh::run(omp, 50);
    predict_time = clock.now_ns();
    stats = omp.stats();
  }

  // The adaptive run must beat the fixed-max run (the tiny regions run
  // with few threads) and must have made real decisions.
  EXPECT_LT(predict_time, record_time);
  EXPECT_GT(stats.adaptive_decisions, 150u);
  EXPECT_LT(stats.mean_team(), 24.0);
  EXPECT_GT(stats.mean_team(), 1.0);
}

TEST(OmpRuntime, BodyRunsOncePerSimulatedThread) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  sim::VirtualClock clock;
  Oracle oracle = Oracle::off();
  OmpRuntime::Config config;
  config.machine = MachineModel::pixel();
  config.max_threads = 8;
  OmpRuntime omp(config, clock, oracle, shared);

  std::vector<double> data(64, 0.0);
  omp.parallel(7, 1000.0, 1.0, [&](int tid, int team) {
    // Static partition, like an OpenMP for loop.
    const std::size_t chunk = data.size() / static_cast<std::size_t>(team);
    const std::size_t begin = static_cast<std::size_t>(tid) * chunk;
    const std::size_t end =
        tid == team - 1 ? data.size() : begin + chunk;
    for (std::size_t i = begin; i < end; ++i) data[i] = 1.0;
  });
  for (double v : data) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_EQ(omp.last_team(), 8);
}

TEST(OmpRuntime, CriticalAndBarrierEmitEvents) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  sim::VirtualClock clock;
  Oracle oracle = Oracle::record(false);
  OmpRuntime::Config config;
  config.machine = MachineModel::pixel();
  config.max_threads = 4;
  OmpRuntime omp(config, clock, oracle, shared);
  omp.parallel(1, 1000.0, 1.0);
  omp.critical(9, 500.0);
  omp.barrier();
  ThreadTrace trace = oracle.finish();
  const auto seq = trace.grammar.unfold();
  ASSERT_EQ(seq.size(), 5u);  // begin, end, crit begin, crit end, barrier
  EXPECT_EQ(registry.describe(seq[2]), "GOMP_critical_start(9)");
  EXPECT_EQ(registry.describe(seq[4]), "GOMP_barrier");
}

}  // namespace
}  // namespace pythia::ompsim
