// Parameterized sweeps over the OpenMP machine cost model and the
// adaptive-policy ladder: the properties that make figs. 10–14 shaped
// the way they are.
#include <gtest/gtest.h>

#include <tuple>

#include "ompsim/adaptive.hpp"
#include "ompsim/machine.hpp"
#include "ompsim/thread_pool.hpp"

namespace pythia::ompsim {
namespace {

MachineModel machine_for(int index) {
  switch (index) {
    case 0:
      return MachineModel::pudding();
    case 1:
      return MachineModel::pixel();
    default:
      return MachineModel::paravance();
  }
}

class CostModelSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CostModelSweep, OverheadGrowsMonotonicallyWithThreads) {
  const auto [machine_index, threads] = GetParam();
  const MachineModel machine = machine_for(machine_index);
  if (threads < 2) GTEST_SKIP();
  EXPECT_GE(machine.overhead_ns(threads), machine.overhead_ns(threads - 1));
}

TEST_P(CostModelSweep, CostIsAtLeastAmdahlBound) {
  const auto [machine_index, threads] = GetParam();
  const MachineModel machine = machine_for(machine_index);
  const double work = 1e6;
  const double cost = machine.region_cost_ns(work, threads, 1.0);
  const int effective = std::min(threads, machine.cores);
  EXPECT_GE(cost, work / machine.core_speed / effective);
}

TEST_P(CostModelSweep, SerialFractionIsNeverParallelized) {
  const auto [machine_index, threads] = GetParam();
  const MachineModel machine = machine_for(machine_index);
  const double work = 2e6;
  const double fully = machine.region_cost_ns(work, threads, 1.0);
  const double half = machine.region_cost_ns(work, threads, 0.5);
  if (threads > 1) {
    EXPECT_GE(half, fully);  // serial part dominates with fewer threads
  }
  // The serial part is a hard floor.
  EXPECT_GE(half, work * 0.5 / machine.core_speed);
}

INSTANTIATE_TEST_SUITE_P(
    MachinesAndThreads, CostModelSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3, 4, 8, 12, 16, 24, 32)));

class PolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(PolicySweep, LadderCoversEveryTeamPowerOfTwo) {
  const int max_threads = GetParam();
  const AdaptivePolicy policy =
      AdaptivePolicy::from_model(MachineModel::pudding(), max_threads);
  // choose_threads must return values in [1, max_threads] and reach both
  // ends of the range.
  EXPECT_EQ(policy.choose_threads(0.0), 1);
  EXPECT_EQ(policy.choose_threads(1e12), max_threads);
  for (double predicted = 1e3; predicted < 1e9; predicted *= 3) {
    const int team = policy.choose_threads(predicted);
    EXPECT_GE(team, 1);
    EXPECT_LE(team, max_threads);
  }
}

TEST_P(PolicySweep, MonotonicInPrediction) {
  const int max_threads = GetParam();
  const AdaptivePolicy policy =
      AdaptivePolicy::from_model(MachineModel::pixel(), max_threads);
  int previous = 1;
  for (double predicted = 100.0; predicted < 1e10; predicted *= 1.5) {
    const int team = policy.choose_threads(predicted);
    EXPECT_GE(team, previous) << "prediction " << predicted;
    previous = team;
  }
}

INSTANTIATE_TEST_SUITE_P(MaxThreads, PolicySweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 24, 48));

TEST(ThreadPoolSequences, OscillationCostsParkedVsVanilla) {
  const MachineModel machine = MachineModel::pudding();
  // A Lulesh-like oscillation: 24 -> 1 -> 24 -> 1 ... 50 times.
  auto total_cost = [&](bool park) {
    ThreadPoolModel pool(machine, park);
    double total = 0.0;
    for (int i = 0; i < 50; ++i) {
      total += pool.adjust_to(24);
      total += pool.adjust_to(1);
    }
    return total;
  };
  const double parked = total_cost(true);
  const double vanilla = total_cost(false);
  // Parked: one spawn burst, then cheap unparks. Vanilla: destroy +
  // respawn every cycle — orders of magnitude more.
  EXPECT_LT(parked, vanilla / 10.0);
}

TEST(ThreadPoolSequences, GrowShrinkGrowAccounting) {
  const MachineModel machine = MachineModel::pixel();
  ThreadPoolModel pool(machine, /*park=*/true);
  pool.adjust_to(8);
  EXPECT_EQ(pool.alive(), 8);
  EXPECT_EQ(pool.parked(), 0);
  pool.adjust_to(3);
  EXPECT_EQ(pool.alive(), 3);
  EXPECT_EQ(pool.parked(), 5);
  pool.adjust_to(6);  // reuses 3 parked... all from parked set
  EXPECT_EQ(pool.alive(), 6);
  EXPECT_EQ(pool.parked(), 2);
  // Growing beyond everything ever created mixes unpark + spawn.
  const double cost = pool.adjust_to(12);
  EXPECT_EQ(pool.alive(), 12);
  EXPECT_EQ(pool.parked(), 0);
  EXPECT_DOUBLE_EQ(cost, 2 * machine.unpark_thread_ns +
                             4 * machine.spawn_thread_ns);
}

TEST(ThreadPoolSequences, SameSizeIsFree) {
  ThreadPoolModel pool(MachineModel::pudding(), true);
  pool.adjust_to(16);
  EXPECT_DOUBLE_EQ(pool.adjust_to(16), 0.0);
  EXPECT_DOUBLE_EQ(pool.adjust_to(16), 0.0);
}

}  // namespace
}  // namespace pythia::ompsim
