// Tests for the worksharing entry points (single, loop) added to the
// GOMP-like runtime.
#include <gtest/gtest.h>

#include "core/trace_io.hpp"
#include "ompsim/runtime.hpp"

namespace pythia::ompsim {
namespace {

OmpRuntime::Config config_for(int threads) {
  OmpRuntime::Config config;
  config.machine = MachineModel::pixel();
  config.max_threads = threads;
  return config;
}

TEST(Worksharing, SingleEmitsEventAndCharges) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  sim::VirtualClock clock;
  Oracle oracle = Oracle::record(false);
  OmpRuntime omp(config_for(8), clock, oracle, shared);
  omp.parallel(1, 10'000.0, 0.9);
  const std::uint64_t before = clock.now_ns();
  omp.single(5, 2'000.0);
  EXPECT_GT(clock.now_ns(), before + 1'000u);
  const ThreadTrace trace = oracle.finish();
  const auto events = trace.grammar.unfold();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(registry.describe(events[2]), "GOMP_single_start(5)");
}

TEST(Worksharing, LoopSharesAcrossTheCurrentTeam) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  // The same loop is cheaper under a bigger team.
  auto loop_cost = [&](int threads) {
    sim::VirtualClock clock;
    Oracle oracle = Oracle::off();
    OmpRuntime omp(config_for(threads), clock, oracle, shared);
    omp.parallel(1, 1'000.0, 0.5);  // establish the team
    const std::uint64_t before = clock.now_ns();
    omp.for_loop(7, 4e6, 0.98);
    return clock.now_ns() - before;
  };
  EXPECT_LT(loop_cost(16), loop_cost(2));
}

TEST(Worksharing, LoopEmitsPairedEvents) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  sim::VirtualClock clock;
  Oracle oracle = Oracle::record(false);
  OmpRuntime omp(config_for(4), clock, oracle, shared);
  omp.parallel(1, 1'000.0, 0.9);
  omp.for_loop(3, 50'000.0, 0.95);
  omp.for_loop(3, 50'000.0, 0.95);
  const ThreadTrace trace = oracle.finish();
  const auto events = trace.grammar.unfold();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(registry.describe(events[2]), "GOMP_loop_static_start(3)");
  EXPECT_EQ(registry.describe(events[3]), "GOMP_loop_end(3)");
}

TEST(Worksharing, PredictableLikeAnyOtherEvent) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  ThreadTrace trace;
  {
    sim::VirtualClock clock;
    Oracle oracle = Oracle::record(true);
    OmpRuntime omp(config_for(8), clock, oracle, shared);
    for (int i = 0; i < 25; ++i) {
      omp.parallel(1, 100'000.0, 0.95);
      omp.for_loop(2, 30'000.0, 0.9);
      omp.single(3, 1'000.0);
    }
    trace = oracle.finish();
  }
  sim::VirtualClock clock;
  Oracle oracle = Oracle::predict(trace);
  OmpRuntime omp(config_for(8), clock, oracle, shared);
  omp.parallel(1, 100'000.0, 0.95);
  omp.for_loop(2, 30'000.0, 0.9);
  const auto next = oracle.predict_event(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(registry.describe(next->event), "GOMP_single_start(3)");
}

}  // namespace
}  // namespace pythia::ompsim
