// Virtual clock and calibrated-spinner tests.
#include <gtest/gtest.h>

#include <chrono>

#include "sim/clock.hpp"
#include "sim/spin.hpp"

namespace pythia::sim {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock;
  clock.advance(100.0);
  clock.advance(250.5);
  EXPECT_EQ(clock.now_ns(), 350u);
}

TEST(VirtualClock, NegativeAndZeroAdvanceIgnored) {
  VirtualClock clock;
  clock.advance(100.0);
  clock.advance(0.0);
  clock.advance(-50.0);
  EXPECT_EQ(clock.now_ns(), 100u);
}

TEST(VirtualClock, MergeNeverMovesBackwards) {
  VirtualClock clock;
  clock.advance(1000.0);
  clock.merge(500);  // older timestamp: no effect
  EXPECT_EQ(clock.now_ns(), 1000u);
  clock.merge(2500);  // newer: jump forward
  EXPECT_EQ(clock.now_ns(), 2500u);
}

TEST(VirtualClock, ResetReturnsToZero) {
  VirtualClock clock;
  clock.advance(42.0);
  clock.reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(Spinner, BurnsApproximatelyRequestedTime) {
  using clock = std::chrono::steady_clock;
  // Warm the calibration.
  Spinner::spin_ns(1000.0);

  const auto start = clock::now();
  Spinner::spin_ns(20'000'000.0);  // 20 ms
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(clock::now() - start)
          .count();
  // Generous bounds: the host is noisy, but 20 ms of spinning should be
  // within a factor of a few.
  EXPECT_GT(elapsed_ms, 5.0);
  EXPECT_LT(elapsed_ms, 200.0);
}

TEST(Spinner, ZeroAndNegativeAreFree) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  Spinner::spin_ns(0.0);
  Spinner::spin_ns(-100.0);
  const double elapsed_us =
      std::chrono::duration<double, std::micro>(clock::now() - start)
          .count();
  EXPECT_LT(elapsed_us, 1000.0);
}

TEST(Spinner, LongerRequestsBurnLonger) {
  using clock = std::chrono::steady_clock;
  Spinner::spin_ns(1000.0);  // warm calibration

  auto measure = [](double ns) {
    const auto start = clock::now();
    Spinner::spin_ns(ns);
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  const double short_run = measure(2'000'000.0);
  const double long_run = measure(40'000'000.0);
  EXPECT_GT(long_run, short_run * 2);
}

}  // namespace
}  // namespace pythia::sim
