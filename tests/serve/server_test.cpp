// ServerCore request-pipeline tests, all in-process and on a virtual
// clock: protocol gating (hello first), the full open/observe/predict/
// close flow, malformed-payload vs corrupt-frame handling, per-tenant
// flood isolation, deadline expiry, degraded-trace early shedding, and
// hot publishes under live sessions.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/snapshot.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace pythia::serve {
namespace {

namespace fs = std::filesystem;
using testutil::CollectedFrame;
using testutil::collect_frames;
using testutil::frame_bytes;
using testutil::hello_frame;
using testutil::loop_trace;
using testutil::open_frame;
using testutil::temp_dir;
using testutil::write_trace_file;

/// One connection against an in-process core; every exchange returns the
/// decoded reply frames.
struct CoreClient {
  explicit CoreClient(ServerCore& core_in)
      : core(&core_in), conn(core_in.connection_open()) {}

  std::vector<CollectedFrame> send(const std::vector<std::uint8_t>& bytes,
                                   std::uint64_t now_ns = 1) {
    std::vector<std::uint8_t> out;
    alive = core->on_bytes(conn, bytes.data(), bytes.size(), out, now_ns);
    return collect_frames(out);
  }

  std::vector<CollectedFrame> hello(const std::string& tenant) {
    return send(hello_frame(tenant, next_request++));
  }

  /// Opens and returns the session id; asserts the ack code is kOk.
  std::uint64_t open_ok(const std::string& trace, std::uint32_t section = 0) {
    const auto replies = send(open_frame(trace, section, next_request++));
    EXPECT_EQ(replies.size(), 1u);
    OpenAckMsg ack;
    EXPECT_TRUE(parse_open_ack(
        WireReader(replies[0].payload.data(), replies[0].payload.size()),
        ack));
    EXPECT_EQ(ack.code, ReplyCode::kOk);
    return ack.session_id;
  }

  ReplyCode open_code(const std::string& trace, std::uint32_t section = 0,
                      std::uint64_t now_ns = 1) {
    const auto replies =
        send(open_frame(trace, section, next_request++), now_ns);
    OpenAckMsg ack;
    EXPECT_EQ(replies.size(), 1u);
    EXPECT_TRUE(parse_open_ack(
        WireReader(replies[0].payload.data(), replies[0].payload.size()),
        ack));
    return ack.code;
  }

  ObserveAckMsg observe(std::uint64_t session,
                        const std::vector<std::uint32_t>& events,
                        std::uint64_t now_ns = 1) {
    std::vector<std::uint8_t> payload;
    encode_observe(session, events.data(), events.size(), payload);
    const auto replies =
        send(frame_bytes(MsgType::kObserve, next_request++, payload), now_ns);
    ObserveAckMsg ack;
    EXPECT_EQ(replies.size(), 1u);
    EXPECT_TRUE(parse_observe_ack(
        WireReader(replies[0].payload.data(), replies[0].payload.size()),
        ack));
    return ack;
  }

  PredictAckMsg predict(std::uint64_t session, std::uint32_t distance,
                        std::uint32_t count, std::uint64_t deadline_ns = 0,
                        std::uint64_t now_ns = 1) {
    PredictMsg msg;
    msg.session_id = session;
    msg.distance = distance;
    msg.count = count;
    msg.deadline_ns = deadline_ns;
    std::vector<std::uint8_t> payload;
    encode_predict(msg, payload);
    const auto replies =
        send(frame_bytes(MsgType::kPredict, next_request++, payload), now_ns);
    PredictAckMsg ack;
    EXPECT_EQ(replies.size(), 1u);
    EXPECT_TRUE(parse_predict_ack(
        WireReader(replies[0].payload.data(), replies[0].payload.size()),
        ack, events, 4096));
    return ack;
  }

  ServerCore* core;
  std::uint64_t conn;
  std::uint64_t next_request = 1;
  bool alive = true;
  std::vector<std::uint32_t> events;  ///< last predict's returned batch
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = temp_dir("server");
    trace_path_ = write_trace_file(dir_, "loop", 20);
    ASSERT_FALSE(trace_path_.empty());
  }
  void TearDown() override { fs::remove_all(dir_); }

  // ServerCore is pinned in place (the registry owns a mutex), so the
  // fixture hands out heap instances.
  std::unique_ptr<ServerCore> make_core(ServerOptions options = {}) {
    auto core = std::make_unique<ServerCore>(options);
    EXPECT_TRUE(core->registry().add("loop", trace_path_).ok());
    return core;
  }

  std::string dir_;
  std::string trace_path_;
};

TEST_F(ServerTest, HelloRequiredBeforeSessionTraffic) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  const auto replies = client.send(open_frame("loop", 0, 1));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MsgType::kError);
  ErrorMsg error;
  ASSERT_TRUE(parse_error(
      WireReader(replies[0].payload.data(), replies[0].payload.size()),
      error));
  EXPECT_EQ(error.code, ReplyCode::kBadRequest);
  EXPECT_TRUE(client.alive);  // protocol violation, not corruption

  // Ping and stats stay available pre-hello (health checks).
  const auto pong = client.send(frame_bytes(MsgType::kPing, 2, {}));
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_EQ(pong[0].type, MsgType::kPong);
}

TEST_F(ServerTest, FullSessionFlow) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  const auto hello_replies = client.hello("tenant-a");
  ASSERT_EQ(hello_replies.size(), 1u);
  EXPECT_EQ(hello_replies[0].type, MsgType::kHelloAck);

  const std::uint64_t session = client.open_ok("loop");
  EXPECT_EQ(core.stats().sessions_opened, 1u);

  const ObserveAckMsg observed = client.observe(session, {0, 1, 2, 0});
  EXPECT_EQ(observed.code, ReplyCode::kOk);
  EXPECT_EQ(observed.health, 0u);  // kHealthy

  // Next after ...c a is b.
  const PredictAckMsg predicted = client.predict(session, 1, 1);
  EXPECT_EQ(predicted.code, ReplyCode::kOk);
  ASSERT_EQ(predicted.count, 1u);
  ASSERT_EQ(client.events.size(), 1u);
  EXPECT_EQ(client.events[0], 1u);
  EXPECT_GT(predicted.probability, 0.0);

  // Batched: b c a ...
  const PredictAckMsg batch = client.predict(session, 1, 3);
  EXPECT_EQ(batch.code, ReplyCode::kOk);
  ASSERT_EQ(client.events.size(), 3u);
  EXPECT_EQ(client.events[0], 1u);
  EXPECT_EQ(client.events[1], 2u);
  EXPECT_EQ(client.events[2], 0u);

  std::vector<std::uint8_t> payload;
  encode_close(CloseMsg{session}, payload);
  const auto closed = client.send(frame_bytes(MsgType::kClose, 99, payload));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].type, MsgType::kCloseAck);
  EXPECT_EQ(core.stats().sessions_open, 0u);
}

TEST_F(ServerTest, OpenFailuresAreExplicitCodes) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  EXPECT_EQ(client.open_code("ghost"), ReplyCode::kNotFound);
  EXPECT_EQ(client.open_code("loop", /*section=*/7), ReplyCode::kUnavailable);

  // A registered name whose file is gone: kUnavailable, not a hang.
  ASSERT_TRUE(core.registry().add("gone", dir_ + "/gone.pythia").ok());
  EXPECT_EQ(client.open_code("gone"), ReplyCode::kUnavailable);
}

TEST_F(ServerTest, UnknownSessionIsBadRequestReply) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  const ObserveAckMsg observed = client.observe(/*session=*/12345, {0});
  EXPECT_EQ(observed.code, ReplyCode::kBadRequest);
  const PredictAckMsg predicted = client.predict(/*session=*/12345, 1, 1);
  EXPECT_EQ(predicted.code, ReplyCode::kBadRequest);
  EXPECT_TRUE(client.alive);
}

TEST_F(ServerTest, MalformedPayloadRepliesErrorAndKeepsConnection) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  // A valid frame whose payload is not a valid OpenMsg.
  const auto replies =
      client.send(frame_bytes(MsgType::kOpen, 5, {0xde, 0xad}));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MsgType::kError);
  EXPECT_TRUE(client.alive);
  EXPECT_EQ(core.stats().bad_requests, 1u);
  // The connection still serves.
  client.open_ok("loop");
}

TEST_F(ServerTest, CorruptFrameDropsConnectionWithBestEffortError) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  auto bytes = open_frame("loop", 0, 6);
  bytes[3] ^= 0x40;  // bit flip inside the magic
  const auto replies = client.send(bytes);
  EXPECT_FALSE(client.alive);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MsgType::kError);
  EXPECT_EQ(core.stats().bad_frames, 1u);
  EXPECT_EQ(core.stats().connections_dropped, 1u);
}

TEST_F(ServerTest, FloodingTenantShedsWithoutStarvingOthers) {
  ServerOptions options;
  TenantLimits tight;
  tight.rate_per_sec = 1.0;  // refills one request per virtual second
  tight.burst = 4.0;
  options.tenant_defaults = tight;
  auto core_owner = make_core(options);
  ServerCore& core = *core_owner;

  CoreClient flooder(core);
  flooder.hello("flooder");
  CoreClient calm(core);
  calm.hello("calm");

  const std::uint64_t flooder_session = flooder.open_ok("loop");
  const std::uint64_t calm_session = calm.open_ok("loop");

  std::size_t shed = 0;
  for (int i = 0; i < 50; ++i) {
    const PredictAckMsg ack = flooder.predict(flooder_session, 1, 1);
    if (ack.code == ReplyCode::kShed) ++shed;
  }
  EXPECT_GE(shed, 45u);  // 3 remaining burst tokens, then shed

  // Same instant, same core: the calm tenant's budget is intact.
  const PredictAckMsg ack = calm.predict(calm_session, 1, 1);
  EXPECT_NE(ack.code, ReplyCode::kShed);
  EXPECT_GE(core.stats().shed, shed);
}

TEST_F(ServerTest, DeadlineExpiryIsExplicit) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  const std::uint64_t session = client.open_ok("loop");
  client.observe(session, {0, 1});

  // Deadline already behind now_ns: explicit expiry, no prediction work.
  const PredictAckMsg expired = client.predict(session, 1, 1,
                                               /*deadline_ns=*/50,
                                               /*now_ns=*/100);
  EXPECT_EQ(expired.code, ReplyCode::kDeadlineExpired);
  EXPECT_EQ(core.stats().expired, 1u);

  // A live deadline is honoured.
  const PredictAckMsg fine = client.predict(session, 1, 1,
                                            /*deadline_ns=*/200,
                                            /*now_ns=*/100);
  EXPECT_EQ(fine.code, ReplyCode::kOk);
}

TEST_F(ServerTest, DegradedSessionsShedTheTraceEarly) {
  ServerOptions options;
  options.degraded_min_sessions = 1;
  options.degraded_fraction = 0.5;
  auto core_owner = make_core(options);
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  const std::uint64_t session = client.open_ok("loop");

  // Feed events the reference has never seen: the breaker's miss streak
  // trips the session into kDegraded.
  ObserveAckMsg ack;
  for (int i = 0; i < 4; ++i) {
    ack = client.observe(session, {99, 99, 99, 99});
    if (ack.code == ReplyCode::kDegraded) break;
  }
  EXPECT_EQ(ack.code, ReplyCode::kDegraded);
  const auto [degraded, total] = core.trace_health("loop");
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(degraded, 1u);

  // The whole trace now sheds early: opens answer kDegraded without
  // touching the oracle, predicts on the degraded session likewise.
  EXPECT_EQ(client.open_code("loop"), ReplyCode::kDegraded);
  const PredictAckMsg predicted = client.predict(session, 1, 1);
  EXPECT_EQ(predicted.code, ReplyCode::kDegraded);
  EXPECT_GE(core.stats().degraded, 3u);
}

TEST_F(ServerTest, PublishUnderLiveSessionsKeepsOldPinsAndServesNew) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  const std::uint64_t session = client.open_ok("loop");
  client.observe(session, {0, 1, 2, 0});

  // Hot swap mid-traffic: a longer recording of the same loop.
  const std::uint64_t old_version = core.registry().version_of("loop");
  auto next = engine::TraceSnapshot::make(loop_trace(40), old_version + 1);
  ASSERT_TRUE(core.registry().publish("loop", next).ok());

  // The in-flight session keeps answering from its pinned snapshot.
  const PredictAckMsg predicted = client.predict(session, 1, 1);
  EXPECT_EQ(predicted.code, ReplyCode::kOk);
  ASSERT_EQ(client.events.size(), 1u);
  EXPECT_EQ(client.events[0], 1u);

  // A new open sees the new snapshot version.
  const auto replies =
      client.send(open_frame("loop", 0, client.next_request++));
  OpenAckMsg ack;
  ASSERT_TRUE(parse_open_ack(
      WireReader(replies[0].payload.data(), replies[0].payload.size()), ack));
  EXPECT_EQ(ack.code, ReplyCode::kOk);
  EXPECT_EQ(ack.snapshot_version, old_version + 1);
}

TEST_F(ServerTest, SessionCapSheds) {
  ServerOptions options;
  options.max_sessions_per_tenant = 2;
  auto core_owner = make_core(options);
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  client.open_ok("loop");
  client.open_ok("loop");
  EXPECT_EQ(client.open_code("loop"), ReplyCode::kShed);
}

TEST_F(ServerTest, ConnectionCloseReleasesSessions) {
  auto core_owner = make_core();
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  client.open_ok("loop");
  client.open_ok("loop");
  EXPECT_EQ(core.stats().sessions_open, 2u);
  core.connection_close(client.conn);
  EXPECT_EQ(core.stats().sessions_open, 0u);
  EXPECT_EQ(core.stats().sessions_closed, 2u);
  const auto [degraded, total] = core.trace_health("loop");
  EXPECT_EQ(total, 0u);
  EXPECT_EQ(degraded, 0u);
}

TEST_F(ServerTest, PredictCountCapIsBadRequest) {
  ServerOptions options;
  options.max_predict_count = 8;
  auto core_owner = make_core(options);
  ServerCore& core = *core_owner;
  CoreClient client(core);
  client.hello("t");
  const std::uint64_t session = client.open_ok("loop");
  PredictMsg msg;
  msg.session_id = session;
  msg.count = 9;
  std::vector<std::uint8_t> payload;
  encode_predict(msg, payload);
  const auto replies =
      client.send(frame_bytes(MsgType::kPredict, 50, payload));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MsgType::kError);
  EXPECT_TRUE(client.alive);
}

}  // namespace
}  // namespace pythia::serve
