// Admission-control tests: deterministic token-bucket behaviour against
// a virtual clock, per-tenant isolation, bounded inflight queues, and
// the degraded-trace early shed.
#include <gtest/gtest.h>

#include <cstdint>

#include "serve/admission.hpp"

namespace pythia::serve {
namespace {

constexpr std::uint64_t kSecond = 1000000000ull;

TEST(TokenBucket, BurstThenSustainedRate) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/3.0);
  std::uint64_t now = kSecond;
  // The burst allowance drains first.
  EXPECT_TRUE(bucket.try_take(now));
  EXPECT_TRUE(bucket.try_take(now));
  EXPECT_TRUE(bucket.try_take(now));
  EXPECT_FALSE(bucket.try_take(now));  // empty at the same instant
  // 100 ms at 10/s refills exactly one token.
  now += kSecond / 10;
  EXPECT_TRUE(bucket.try_take(now));
  EXPECT_FALSE(bucket.try_take(now));
  // A long idle period refills to the burst cap, not beyond.
  now += 100 * kSecond;
  EXPECT_DOUBLE_EQ(bucket.tokens(now), 3.0);
}

TEST(TokenBucket, ClockGoingBackwardsDoesNotMintTokens) {
  TokenBucket bucket(10.0, 1.0);
  std::uint64_t now = 10 * kSecond;
  EXPECT_TRUE(bucket.try_take(now));
  // A rewound clock (shared-memory clock skew, test artifact) must not
  // refill; it just freezes the bucket until time moves forward again.
  EXPECT_FALSE(bucket.try_take(now - kSecond));
  EXPECT_FALSE(bucket.try_take(now));
  EXPECT_TRUE(bucket.try_take(now + kSecond));
}

TEST(Admission, RegisterIsIdempotentByName) {
  AdmissionController admission;
  const std::uint32_t a = admission.register_tenant("alpha");
  const std::uint32_t b = admission.register_tenant("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(admission.register_tenant("alpha"), a);
  EXPECT_EQ(admission.tenants(), 2u);
}

TEST(Admission, RateShedIsPerTenant) {
  TenantLimits limits;
  limits.rate_per_sec = 1.0;
  limits.burst = 2.0;
  AdmissionController admission(limits);
  const std::uint32_t flooder = admission.register_tenant("flooder");
  const std::uint32_t calm = admission.register_tenant("calm");

  std::uint64_t now = kSecond;
  // The flooder burns its burst...
  EXPECT_EQ(admission.admit(flooder, now, false), Admit::kAdmit);
  EXPECT_EQ(admission.admit(flooder, now, false), Admit::kAdmit);
  // ...and gets shed from then on.
  EXPECT_EQ(admission.admit(flooder, now, false), Admit::kShedRate);
  EXPECT_EQ(admission.admit(flooder, now, false), Admit::kShedRate);
  // The calm tenant's bucket is untouched by the flood.
  EXPECT_EQ(admission.admit(calm, now, false), Admit::kAdmit);

  const auto stats = admission.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[flooder].shed_rate, 2u);
  EXPECT_EQ(stats[calm].shed_rate, 0u);
}

TEST(Admission, InflightBoundSheds) {
  TenantLimits limits;
  limits.max_inflight = 2;
  limits.rate_per_sec = 1e9;  // rate never the limiter here
  limits.burst = 1e9;
  AdmissionController admission(limits);
  const std::uint32_t tenant = admission.register_tenant("t");

  EXPECT_EQ(admission.admit(tenant, kSecond, false), Admit::kAdmit);
  admission.begin(tenant);
  EXPECT_EQ(admission.admit(tenant, kSecond, false), Admit::kAdmit);
  admission.begin(tenant);
  EXPECT_EQ(admission.admit(tenant, kSecond, false), Admit::kShedQueue);
  admission.end(tenant);
  EXPECT_EQ(admission.admit(tenant, kSecond, false), Admit::kAdmit);
}

TEST(Admission, DegradedTraceShedsEarlyWithoutSpendingTokens) {
  TenantLimits limits;
  limits.rate_per_sec = 1.0;
  limits.burst = 1.0;
  AdmissionController admission(limits);
  const std::uint32_t tenant = admission.register_tenant("t");

  // Degraded requests shed before the bucket: the answer is known.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(admission.admit(tenant, kSecond, true), Admit::kDegraded);
  }
  // The untouched token is still there for a healthy request.
  EXPECT_EQ(admission.admit(tenant, kSecond, false), Admit::kAdmit);

  const auto stats = admission.stats();
  EXPECT_EQ(stats[tenant].shed_degraded, 5u);
  EXPECT_EQ(stats[tenant].admitted, 1u);
}

TEST(Admission, PerTenantLimitOverrides) {
  AdmissionController admission;  // generous defaults
  const std::uint32_t vip = admission.register_tenant("vip");
  const std::uint32_t capped = admission.register_tenant("capped");
  TenantLimits tight;
  tight.rate_per_sec = 1.0;
  tight.burst = 1.0;
  admission.set_limits(capped, tight);

  EXPECT_EQ(admission.admit(capped, kSecond, false), Admit::kAdmit);
  EXPECT_EQ(admission.admit(capped, kSecond, false), Admit::kShedRate);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(admission.admit(vip, kSecond, false), Admit::kAdmit);
  }
}

}  // namespace
}  // namespace pythia::serve
