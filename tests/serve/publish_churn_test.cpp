// Publish-vs-churn concurrency: snapshots hot-swap while worker threads
// continuously open, drive and drop sessions. Run under TSan/ASan in CI
// (the serve-soak job), this is the proof behind "eviction and publish
// never invalidate an in-flight session".
//
// Thread budget is deliberately small (the reference host is 1-core):
// correctness races, not throughput, are the target — TSan finds a race
// at 3 threads as readily as at 30.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/snapshot.hpp"
#include "serve/registry.hpp"
#include "serve_test_util.hpp"

namespace pythia::serve {
namespace {

using testutil::loop_trace;
using testutil::temp_dir;
using testutil::write_trace_file;

TEST(PublishChurn, EnginePublishUnderSessionChurn) {
  engine::PredictServer server(
      engine::TraceSnapshot::make(loop_trace(20), 1));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> predictions{0};
  std::atomic<std::uint64_t> opens{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&server, &stop, &predictions, &opens] {
      while (!stop.load(std::memory_order_acquire)) {
        auto opened = server.open(0, Predictor::Options{});
        if (!opened.ok()) continue;  // a publish(nullptr) window, if any
        opens.fetch_add(1, std::memory_order_relaxed);
        engine::PredictSession session = opened.take();
        // The session's snapshot is pinned: whatever publish() does
        // concurrently, this loop must keep seeing one coherent trace.
        const std::uint64_t pinned_version = session.snapshot()->version();
        for (int i = 0; i < 50; ++i) {
          session.observe(static_cast<TerminalId>(i % 3));
          const auto prediction = session.predict(1);
          if (prediction.has_value()) {
            predictions.fetch_add(1, std::memory_order_relaxed);
          }
          ASSERT_EQ(session.snapshot()->version(), pinned_version);
        }
      }
    });
  }

  // Publisher: swap snapshots as fast as they can be built, and keep
  // swapping until the workers demonstrably churned under the swaps
  // (on a 1-core host 200 publishes can finish before a worker runs).
  std::uint64_t version = 2;
  for (int i = 0; i < 200 || opens.load() < 5; ++i) {
    server.publish(
        engine::TraceSnapshot::make(loop_trace(10 + (i % 5)), version++));
    if (i >= 200) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();

  EXPECT_GT(opens.load(), 0u);
  EXPECT_GT(predictions.load(), 0u);
  EXPECT_GE(server.publishes(), 201u);
}

TEST(PublishChurn, RegistryPublishAcquireEvictChurn) {
  const std::string dir = temp_dir("churn");
  RegistryOptions options;
  options.max_resident = 2;  // eviction constantly in play
  TraceRegistry registry(options);
  for (const char* name : {"a", "b", "c"}) {
    const std::string path = write_trace_file(dir, name, 12);
    ASSERT_FALSE(path.empty());
    ASSERT_TRUE(registry.add(name, path).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&registry, &stop, &served, t] {
      const char* names[] = {"a", "b", "c"};
      std::uint64_t i = static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        auto acquired = registry.acquire(names[i++ % 3]);
        if (!acquired.ok()) continue;
        // Pin survives whatever eviction/publish happens concurrently.
        const auto snapshot = acquired.take();
        engine::PredictServer scratch(snapshot);
        auto session = scratch.open(0, Predictor::Options{});
        if (!session.ok()) continue;
        for (int e = 0; e < 30; ++e) {
          session.value().observe(static_cast<TerminalId>(e % 3));
        }
        if (session.value().predict(1).has_value()) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 0; i < 100 || served.load() == 0; ++i) {
    const char* name = (i % 2 == 0) ? "a" : "b";
    ASSERT_TRUE(
        registry
            .publish(name, engine::TraceSnapshot::make(
                               loop_trace(10 + (i % 7)),
                               static_cast<std::uint64_t>(i + 2)))
            .ok());
    if (i >= 100) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(registry.stats().evictions, 0u);
}

}  // namespace
}  // namespace pythia::serve
