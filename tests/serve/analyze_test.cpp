// kAnalyze: the serve daemon answers grammar-domain analytics requests.
// The reply must equal a local analysis::Query over the same trace, the
// op must sit behind hello + the per-tenant token bucket, and a phase
// tree that cannot fit the frame cap must shed explicitly instead of
// emitting a frame the client's decoder would reject.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/query.hpp"
#include "core/trace_io.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace pythia::serve {
namespace {

namespace fs = std::filesystem;
using testutil::CollectedFrame;
using testutil::collect_frames;
using testutil::frame_bytes;
using testutil::hello_frame;
using testutil::temp_dir;
using testutil::write_trace_file;

std::vector<std::uint8_t> analyze_frame(const AnalyzeMsg& msg,
                                        std::uint64_t request_id) {
  std::vector<std::uint8_t> payload;
  encode_analyze(msg, payload);
  return frame_bytes(MsgType::kAnalyze, request_id, payload);
}

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = temp_dir("analyze");
    trace_path_ = write_trace_file(dir_, "loop", 20);
    ASSERT_FALSE(trace_path_.empty());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<ServerCore> make_core(ServerOptions options = {}) {
    auto core = std::make_unique<ServerCore>(options);
    EXPECT_TRUE(core->registry().add("loop", trace_path_).ok());
    return core;
  }

  /// Sends one analyze request on an introduced connection; returns the
  /// parsed ack (asserting exactly one kAnalyzeAck reply).
  AnalyzeAckMsg analyze(ServerCore& core, std::uint64_t conn,
                        const AnalyzeMsg& msg,
                        std::vector<AnalyzePhase>& phases,
                        std::uint64_t now_ns = 1) {
    const std::vector<std::uint8_t> bytes = analyze_frame(msg, ++request_);
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(core.on_bytes(conn, bytes.data(), bytes.size(), out, now_ns));
    const std::vector<CollectedFrame> replies = collect_frames(out);
    AnalyzeAckMsg ack;
    EXPECT_EQ(replies.size(), 1u);
    if (replies.empty()) return ack;
    EXPECT_EQ(replies[0].type, MsgType::kAnalyzeAck);
    EXPECT_TRUE(parse_analyze_ack(
        WireReader(replies[0].payload.data(), replies[0].payload.size()), ack,
        phases, 1u << 16));
    return ack;
  }

  std::uint64_t introduced_connection(ServerCore& core) {
    const std::uint64_t conn = core.connection_open();
    const std::vector<std::uint8_t> hello = hello_frame("tenant", ++request_);
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(core.on_bytes(conn, hello.data(), hello.size(), out, 1));
    return conn;
  }

  std::string dir_;
  std::string trace_path_;
  std::uint64_t request_ = 100;
};

TEST_F(AnalyzeTest, ReplyMatchesLocalQuery) {
  auto core = make_core();
  const std::uint64_t conn = introduced_connection(*core);

  AnalyzeMsg msg;
  msg.trace = "loop";
  std::vector<AnalyzePhase> phases;
  const AnalyzeAckMsg ack = analyze(*core, conn, msg, phases);
  ASSERT_EQ(ack.code, ReplyCode::kOk);

  // Ground truth: the same analysis run locally over the same file.
  Result<Trace> loaded = Trace::try_load(trace_path_);
  ASSERT_TRUE(loaded.ok());
  const Trace truth = loaded.take();
  const analysis::Query query = analysis::Query::over_thread(truth.threads[0]);
  ASSERT_TRUE(query.valid());
  analysis::PhaseOptions popts;
  analysis::PhaseTree tree;
  query.phases(popts, tree);

  EXPECT_EQ(ack.events, tree.total_events);
  EXPECT_EQ(ack.rules, query.rules());
  EXPECT_EQ(ack.timed != 0, tree.timed);
  EXPECT_EQ(ack.truncated != 0, tree.truncated);
  ASSERT_EQ(phases.size(), tree.nodes.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const analysis::PhaseNode& want = tree.nodes[i];
    EXPECT_EQ(phases[i].parent, want.parent) << i;
    EXPECT_EQ(phases[i].depth, want.depth) << i;
    EXPECT_EQ(phases[i].is_rule(), want.is_rule) << i;
    EXPECT_EQ(phases[i].is_loop(), want.is_loop) << i;
    EXPECT_EQ(phases[i].rule, want.rule) << i;
    EXPECT_EQ(phases[i].terminal, want.terminal) << i;
    EXPECT_EQ(phases[i].reps, want.reps) << i;
    EXPECT_EQ(phases[i].runs, want.runs) << i;
    EXPECT_EQ(phases[i].events, want.events) << i;
    EXPECT_DOUBLE_EQ(phases[i].time_ns, want.time_ns) << i;
  }
  // The loop trace is 20 x (a b c): the root covers all 60 events and
  // some node must be flagged as the loop carrying (nearly) everything.
  EXPECT_EQ(ack.events, 60u);
  bool found_loop = false;
  for (const AnalyzePhase& phase : phases) {
    if (phase.is_loop() && phase.events >= 54u) found_loop = true;
  }
  EXPECT_TRUE(found_loop);
}

TEST_F(AnalyzeTest, RequiresHelloFirst) {
  auto core = make_core();
  const std::uint64_t conn = core->connection_open();
  AnalyzeMsg msg;
  msg.trace = "loop";
  const std::vector<std::uint8_t> bytes = analyze_frame(msg, 1);
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(core->on_bytes(conn, bytes.data(), bytes.size(), out, 1));
  const std::vector<CollectedFrame> replies = collect_frames(out);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MsgType::kError);
}

TEST_F(AnalyzeTest, UnknownTraceIsNotFound) {
  auto core = make_core();
  const std::uint64_t conn = introduced_connection(*core);
  AnalyzeMsg msg;
  msg.trace = "nope";
  std::vector<AnalyzePhase> phases;
  const AnalyzeAckMsg ack = analyze(*core, conn, msg, phases);
  EXPECT_EQ(ack.code, ReplyCode::kNotFound);
  EXPECT_TRUE(phases.empty());
}

TEST_F(AnalyzeTest, MalformedPayloadIsBadRequest) {
  auto core = make_core();
  const std::uint64_t conn = introduced_connection(*core);
  const std::vector<std::uint8_t> bytes =
      frame_bytes(MsgType::kAnalyze, 9, {0x01, 0x02});
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(core->on_bytes(conn, bytes.data(), bytes.size(), out, 1));
  const std::vector<CollectedFrame> replies = collect_frames(out);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MsgType::kError);
}

TEST_F(AnalyzeTest, OversizedResponseShedsInsteadOfOverflowingFrame) {
  // A frame cap smaller than the phase tree's wire size: the server must
  // answer kShed with truncated set and an empty tree — never emit a
  // frame the peer's decoder would have to reject.
  ServerOptions options;
  options.wire.max_payload = 128;  // header fits, any real tree does not
  auto core = make_core(options);
  const std::uint64_t conn = introduced_connection(*core);

  AnalyzeMsg msg;
  msg.trace = "loop";
  std::vector<AnalyzePhase> phases;
  const std::uint64_t shed_before = core->stats().shed;
  const AnalyzeAckMsg ack = analyze(*core, conn, msg, phases);
  EXPECT_EQ(ack.code, ReplyCode::kShed);
  EXPECT_NE(ack.truncated, 0);
  EXPECT_TRUE(phases.empty());
  EXPECT_EQ(core->stats().shed, shed_before + 1);
  EXPECT_LE(analyze_ack_bytes(phases.size()), options.wire.max_payload);
}

TEST_F(AnalyzeTest, NodeBudgetIsClampedToServerCap) {
  ServerOptions options;
  options.max_analyze_nodes = 2;
  auto core = make_core(options);
  const std::uint64_t conn = introduced_connection(*core);

  AnalyzeMsg msg;
  msg.trace = "loop";
  msg.max_nodes = 100000;  // request far beyond the server's cap
  std::vector<AnalyzePhase> phases;
  const AnalyzeAckMsg ack = analyze(*core, conn, msg, phases);
  ASSERT_EQ(ack.code, ReplyCode::kOk);
  EXPECT_LE(phases.size(), 2u);
  EXPECT_NE(ack.truncated, 0);
}

TEST_F(AnalyzeTest, FloodIsShedByTheTokenBucket) {
  // Analytics share the per-tenant token bucket with predict traffic: a
  // burst beyond the bucket capacity sheds with kShed.
  TenantLimits tight;
  tight.rate_per_sec = 1.0;
  tight.burst = 3.0;
  ServerOptions options;
  options.tenant_defaults = tight;
  auto core = make_core(options);
  const std::uint64_t conn = introduced_connection(*core);

  AnalyzeMsg msg;
  msg.trace = "loop";
  std::vector<AnalyzePhase> phases;
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (int i = 0; i < 10; ++i) {
    const AnalyzeAckMsg ack = analyze(*core, conn, msg, phases, /*now_ns=*/1);
    if (ack.code == ReplyCode::kOk) ++ok;
    if (ack.code == ReplyCode::kShed) ++shed;
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(ok + shed, 10u);

  // The bucket refills with time: a later request is admitted again.
  const AnalyzeAckMsg later =
      analyze(*core, conn, msg, phases, /*now_ns=*/1 + 5'000'000'000ull);
  EXPECT_EQ(later.code, ReplyCode::kOk);
}

}  // namespace
}  // namespace pythia::serve
