// TraceRegistry tests: LRU residency with pin-aware eviction, hot
// publish swaps that never invalidate in-flight sessions, and manifest
// persistence across crashes — including an armed kill point at the
// manifest write and salvage of corrupted manifest lines.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/snapshot.hpp"
#include "serve/registry.hpp"
#include "serve_test_util.hpp"
#include "support/crash_point.hpp"

namespace pythia::serve {
namespace {

namespace fs = std::filesystem;
using testutil::loop_trace;
using testutil::temp_dir;
using testutil::write_trace_file;

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = temp_dir("registry"); }
  void TearDown() override {
    support::disarm_crash_points();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(RegistryTest, AddAcquireRoundTrip) {
  TraceRegistry registry;
  const std::string path = write_trace_file(dir_, "alpha", 20);
  ASSERT_FALSE(path.empty());
  ASSERT_TRUE(registry.add("alpha", path).ok());
  EXPECT_TRUE(registry.contains("alpha"));
  EXPECT_EQ(registry.resident(), 0u);  // lazy: nothing loaded yet

  auto acquired = registry.acquire("alpha");
  ASSERT_TRUE(acquired.ok()) << acquired.status().to_string();
  EXPECT_EQ(registry.resident(), 1u);
  EXPECT_EQ(registry.stats().cold_loads, 1u);
  EXPECT_GE(acquired.value()->version(), 1u);

  // Second acquire: resident, no new load.
  auto again = registry.acquire("alpha");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(registry.stats().cold_loads, 1u);
  EXPECT_EQ(again.value().get(), acquired.value().get());
}

TEST_F(RegistryTest, ColdLoadPrefersZeroCopyMapping) {
  TraceRegistry registry;
  const std::string path = write_trace_file(dir_, "zc", 30);
  ASSERT_TRUE(registry.add("zc", path).ok());

  auto acquired = registry.acquire("zc");
  ASSERT_TRUE(acquired.ok()) << acquired.status().to_string();
  // The trace has compiled sections, so the cold load mapped the file
  // and never deserialized the thread sections.
  EXPECT_TRUE(acquired.value()->mapped());
  EXPECT_EQ(registry.stats().mapped_loads, 1u);
  EXPECT_EQ(registry.stats().mapped_fallbacks, 0u);
  EXPECT_TRUE(acquired.value()->section(0).compiled.valid());
}

TEST_F(RegistryTest, MappedLoadDisabledFallsBackToFullLoad) {
  RegistryOptions options;
  options.prefer_mapped = false;
  TraceRegistry registry(options);
  const std::string path = write_trace_file(dir_, "full", 30);
  ASSERT_TRUE(registry.add("full", path).ok());

  auto acquired = registry.acquire("full");
  ASSERT_TRUE(acquired.ok()) << acquired.status().to_string();
  EXPECT_FALSE(acquired.value()->mapped());
  EXPECT_EQ(registry.stats().mapped_loads, 0u);
  EXPECT_EQ(registry.stats().mapped_fallbacks, 0u);
  // Full loads still serve compiled (from the heap-owned blob).
  EXPECT_TRUE(acquired.value()->section(0).compiled.valid());
}

TEST_F(RegistryTest, RejectsBadNamesAndUnknownTraces) {
  TraceRegistry registry;
  EXPECT_FALSE(registry.add("", "/x").ok());
  EXPECT_FALSE(registry.add("tab\tname", "/x").ok());
  EXPECT_FALSE(registry.add("nl\nname", "/x").ok());
  EXPECT_FALSE(registry.acquire("ghost").ok());
  EXPECT_FALSE(registry.remove("ghost").ok());
  EXPECT_FALSE(
      registry.publish("ghost", engine::TraceSnapshot::make(loop_trace(5)))
          .ok());
}

TEST_F(RegistryTest, MissingFileIsUnavailableNotFatal) {
  TraceRegistry registry;
  ASSERT_TRUE(registry.add("broken", dir_ + "/missing.pythia").ok());
  EXPECT_FALSE(registry.acquire("broken").ok());
  EXPECT_EQ(registry.stats().load_failures, 1u);
  // The bad registration does not poison others.
  const std::string path = write_trace_file(dir_, "good", 10);
  ASSERT_TRUE(registry.add("good", path).ok());
  EXPECT_TRUE(registry.acquire("good").ok());
}

TEST_F(RegistryTest, LruEvictionBeyondResidencyCap) {
  RegistryOptions options;
  options.max_resident = 2;
  TraceRegistry registry(options);
  for (const char* name : {"a", "b", "c"}) {
    const std::string path = write_trace_file(dir_, name, 10);
    ASSERT_TRUE(registry.add(name, path).ok());
  }
  ASSERT_TRUE(registry.acquire("a").ok());
  ASSERT_TRUE(registry.acquire("b").ok());
  EXPECT_EQ(registry.resident(), 2u);
  // Touch "a" so "b" is the LRU, then fault "c" in.
  ASSERT_TRUE(registry.acquire("a").ok());
  ASSERT_TRUE(registry.acquire("c").ok());
  EXPECT_EQ(registry.resident(), 2u);
  EXPECT_EQ(registry.stats().evictions, 1u);
  // "b" was evicted: acquiring it again is a cold load.
  const auto cold_loads = registry.stats().cold_loads;
  ASSERT_TRUE(registry.acquire("b").ok());
  EXPECT_EQ(registry.stats().cold_loads, cold_loads + 1);
}

TEST_F(RegistryTest, EvictionPrefersUnpinnedAndNeverInvalidatesPins) {
  RegistryOptions options;
  options.max_resident = 1;
  TraceRegistry registry(options);
  for (const char* name : {"pinned", "cold1", "cold2"}) {
    const std::string path = write_trace_file(dir_, name, 10);
    ASSERT_TRUE(registry.add(name, path).ok());
  }
  // Pin "pinned" with a live session the way the server does.
  auto acquired = registry.acquire("pinned");
  ASSERT_TRUE(acquired.ok());
  std::shared_ptr<const engine::TraceSnapshot> pin = acquired.take();
  engine::PredictServer server(pin);
  auto session = server.open(0, Predictor::Options{});  // deterministic
  ASSERT_TRUE(session.ok());
  // Three client-side refs: our pin, our PredictServer, the session.
  EXPECT_EQ(registry.pins("pinned"), 3u);

  // Fault two more traces through a cap of one. The pinned entry is the
  // LRU, but unpinned victims must go first.
  ASSERT_TRUE(registry.acquire("cold1").ok());
  ASSERT_TRUE(registry.acquire("cold2").ok());
  EXPECT_GE(registry.stats().evictions, 2u);

  // Whatever the registry evicted, the pinned snapshot and its session
  // still answer — eviction can only ever drop the registry's own ref.
  session.value().observe(0);
  session.value().observe(1);
  const auto prediction = session.value().predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->event, 2u);  // a b -> c
  EXPECT_EQ(pin->sections(), 1u);
}

TEST_F(RegistryTest, PublishHotSwapsWithoutDisruptingSessions) {
  TraceRegistry registry;
  const std::string path = write_trace_file(dir_, "swap", 10);
  ASSERT_TRUE(registry.add("swap", path).ok());
  auto before = registry.acquire("swap");
  ASSERT_TRUE(before.ok());
  const std::uint64_t v1 = before.value()->version();

  // In-flight session on the old snapshot.
  engine::PredictServer server(before.value());
  auto session = server.open(0);
  ASSERT_TRUE(session.ok());

  auto next = engine::TraceSnapshot::make(loop_trace(30), v1 + 1);
  ASSERT_TRUE(registry.publish("swap", next).ok());
  EXPECT_EQ(registry.version_of("swap"), v1 + 1);
  EXPECT_EQ(registry.stats().publishes, 1u);

  // New acquires see the new version; the old session still works.
  auto after = registry.acquire("swap");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value()->version(), v1 + 1);
  session.value().observe(0);
  EXPECT_EQ(session.value().snapshot()->version(), v1);
}

TEST_F(RegistryTest, ManifestPersistsAndRecovers) {
  const std::string manifest = dir_ + "/manifest.psrv";
  RegistryOptions options;
  options.manifest_path = manifest;
  const std::string path_a = write_trace_file(dir_, "a", 10);
  const std::string path_b = write_trace_file(dir_, "b", 12);
  {
    TraceRegistry registry(options);
    ASSERT_TRUE(registry.add("a", path_a).ok());
    ASSERT_TRUE(registry.add("b", path_b).ok());
    ASSERT_TRUE(registry.remove("b").ok());
    ASSERT_TRUE(registry.add("b2", path_b).ok());
  }  // daemon dies

  TraceRegistry recovered(options);
  ASSERT_TRUE(recovered.recover().ok());
  EXPECT_TRUE(recovered.contains("a"));
  EXPECT_FALSE(recovered.contains("b"));
  EXPECT_TRUE(recovered.contains("b2"));
  // Snapshots reload lazily from the recovered paths.
  EXPECT_EQ(recovered.resident(), 0u);
  EXPECT_TRUE(recovered.acquire("a").ok());
  EXPECT_TRUE(recovered.acquire("b2").ok());
}

TEST_F(RegistryTest, RecoverOnEmptyOrMissingManifestIsFirstBoot) {
  RegistryOptions options;
  options.manifest_path = dir_ + "/never_written.psrv";
  TraceRegistry registry(options);
  EXPECT_TRUE(registry.recover().ok());
  EXPECT_TRUE(registry.names().empty());
}

TEST_F(RegistryTest, RecoverSalvagesCorruptManifestLines) {
  const std::string manifest = dir_ + "/manifest.psrv";
  RegistryOptions options;
  options.manifest_path = manifest;
  const std::string path = write_trace_file(dir_, "keep", 10);
  {
    TraceRegistry registry(options);
    ASSERT_TRUE(registry.add("keep", path).ok());
    ASSERT_TRUE(registry.add("mangle", path).ok());
  }
  // Flip a byte inside the second entry's name: its line CRC now lies.
  std::string text;
  {
    std::ifstream in(manifest, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const auto pos = text.find("mangle");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = 'X';
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << text;
  }

  TraceRegistry recovered(options);
  ASSERT_TRUE(recovered.recover().ok());
  EXPECT_TRUE(recovered.contains("keep"));
  EXPECT_FALSE(recovered.contains("mangle"));
  EXPECT_FALSE(recovered.contains("Xangle"));
  EXPECT_EQ(recovered.stats().manifest_salvaged_lines, 1u);
}

TEST_F(RegistryTest, CrashAtManifestWriteLeavesOldStateAndRollsBack) {
  const std::string manifest = dir_ + "/manifest.psrv";
  RegistryOptions options;
  options.manifest_path = manifest;
  const std::string path = write_trace_file(dir_, "a", 10);
  TraceRegistry registry(options);
  ASSERT_TRUE(registry.add("a", path).ok());

  // Crash before the atomic write: disk keeps the old manifest; the
  // in-memory add must roll back so memory matches disk.
  support::arm_crash_point("serve.manifest.write", 1,
                           support::CrashAction::kThrow);
  bool crashed = false;
  try {
    (void)registry.add("b", path);
  } catch (const support::CrashPointHit&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  // NOTE: kThrow unwinds out of add() before the rollback, so memory may
  // briefly disagree — the recovery contract is about *disk*: a fresh
  // registry over the same manifest sees only "a".
  TraceRegistry recovered(options);
  ASSERT_TRUE(recovered.recover().ok());
  EXPECT_TRUE(recovered.contains("a"));
  EXPECT_FALSE(recovered.contains("b"));
}

TEST_F(RegistryTest, CrashAfterManifestRenameIsDurable) {
  const std::string manifest = dir_ + "/manifest.psrv";
  RegistryOptions options;
  options.manifest_path = manifest;
  const std::string path = write_trace_file(dir_, "a", 10);
  TraceRegistry registry(options);

  // Crash just after the rename: the new manifest is already the truth.
  support::arm_crash_point("serve.manifest.renamed", 1,
                           support::CrashAction::kThrow);
  bool crashed = false;
  try {
    (void)registry.add("a", path);
  } catch (const support::CrashPointHit&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  TraceRegistry recovered(options);
  ASSERT_TRUE(recovered.recover().ok());
  EXPECT_TRUE(recovered.contains("a"));
  EXPECT_TRUE(recovered.acquire("a").ok());
}

TEST_F(RegistryTest, ReAddRepointsAndDropsStaleResidency) {
  TraceRegistry registry;
  const std::string old_path = write_trace_file(dir_, "old", 10);
  const std::string new_path = write_trace_file(dir_, "new", 25);
  ASSERT_TRUE(registry.add("t", old_path).ok());
  auto first = registry.acquire("t");
  ASSERT_TRUE(first.ok());
  const std::uint64_t old_digest = first.value()->digest();

  ASSERT_TRUE(registry.add("t", new_path).ok());  // re-point
  EXPECT_EQ(registry.resident(), 0u);             // stale snapshot dropped
  auto second = registry.acquire("t");
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value()->digest(), old_digest);
  // The first acquire's pin is untouched by the re-point.
  EXPECT_EQ(first.value()->digest(), old_digest);
}

}  // namespace
}  // namespace pythia::serve
