// PredictClient total-deadline hardening (S2): a client embedded at a
// runtime decision point must be able to promise "back in N ms, no
// matter what". The per-attempt request timeout bounds one round trip,
// but the retry/reconnect schedule multiplies it — a wedged daemon
// could stall a caller for ~max_retries * (timeout + backoff). With
// ClientOptions::total_deadline_ms set, every operation returns
// StatusCode::kDeadlineExceeded once the overall budget is spent:
// backoff sleeps are clamped to the remaining budget, the per-attempt
// poll deadline never reaches past it, and the give-up is typed so the
// caller can tell "budget spent" from "daemon broken".
//
// The wedge under test is the nastiest one: a listener that is bound
// and listening but never accepts. connect(2) succeeds against the
// backlog, sends land in the socket buffer, and replies never come —
// so every attempt burns its full per-request timeout.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>

#include "serve/client.hpp"
#include "serve_test_util.hpp"
#include "support/status.hpp"

namespace pythia::serve {
namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Bound + listening, never calls accept(2): connects succeed (backlog),
/// requests hang forever.
class NeverAcceptListener {
 public:
  explicit NeverAcceptListener(const std::string& path) : path_(path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    struct sockaddr_un addr {};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd_, 8) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~NeverAcceptListener() {
    if (fd_ >= 0) ::close(fd_);
    ::unlink(path_.c_str());
  }
  bool ok() const { return fd_ >= 0; }

 private:
  std::string path_;
  int fd_ = -1;
};

ClientOptions capped_options() {
  ClientOptions options;
  options.request_timeout_ms = 60;
  options.max_retries = 10;  // uncapped worst case: > 600 ms of timeouts
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 40;
  options.total_deadline_ms = 150;
  return options;
}

TEST(ClientDeadline, NeverAcceptingListenerReturnsTypedGiveUp) {
  const std::string dir = testutil::temp_dir("deadline");
  const std::string path = dir + "/never.sock";
  NeverAcceptListener listener(path);
  ASSERT_TRUE(listener.ok());

  PredictClient client(capped_options());
  ASSERT_TRUE(client.connect_unix(path).ok());  // backlog accepts us

  const std::uint64_t start = now_ms();
  const Status status = client.ping();
  const std::uint64_t elapsed = now_ms() - start;

  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status.to_string();
  // Roughly the 150 ms cap — far under the ~600+ ms the full retry
  // schedule would burn. Generous ceiling for loaded CI hosts.
  EXPECT_LT(elapsed, 600u);
  EXPECT_GE(client.stats().timeouts, 1u);
  EXPECT_EQ(client.stats().deadline_giveups, 1u);
}

TEST(ClientDeadline, AllFourOperationsHonorTheCap) {
  const std::string dir = testutil::temp_dir("deadline_ops");
  const std::string path = dir + "/never.sock";
  NeverAcceptListener listener(path);
  ASSERT_TRUE(listener.ok());

  PredictClient client(capped_options());
  ASSERT_TRUE(client.connect_unix(path).ok());

  // open(): hello hangs first.
  const std::uint64_t start = now_ms();
  const auto opened = client.open("trace", 0);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDeadlineExceeded);

  // observe() and predict() drive their own retry loops through the
  // same wedge; each must give up on its own budget, not inherit a
  // stale one.
  ClientSession session;
  session.trace = "trace";
  const auto observed = client.observe(session, nullptr, 0);
  ASSERT_FALSE(observed.ok());
  EXPECT_EQ(observed.status().code(), StatusCode::kDeadlineExceeded);

  const auto predicted = client.predict(session, 1, 1);
  ASSERT_FALSE(predicted.ok());
  EXPECT_EQ(predicted.status().code(), StatusCode::kDeadlineExceeded);

  // request()-based plumbing (stats/ping) is capped too.
  EXPECT_EQ(client.ping().code(), StatusCode::kDeadlineExceeded);
  const std::uint64_t elapsed = now_ms() - start;
  EXPECT_LT(elapsed, 4u * 600u);
  EXPECT_EQ(client.stats().deadline_giveups, 4u);
}

TEST(ClientDeadline, CapsTheReconnectStormWhenNoDaemonExists) {
  const std::string dir = testutil::temp_dir("deadline_gone");

  ClientOptions options;
  options.request_timeout_ms = 60;
  options.max_retries = 10;
  options.backoff_initial_ms = 200;  // one uncapped sleep alone > budget
  options.backoff_max_ms = 400;
  options.total_deadline_ms = 100;
  PredictClient client(options);
  // No socket at all: the initial connect fails, the path is remembered,
  // and every retry is a fast ENOENT + a backoff sleep.
  EXPECT_FALSE(client.connect_unix(dir + "/gone.sock").ok());

  const std::uint64_t start = now_ms();
  const Status status = client.ping();
  const std::uint64_t elapsed = now_ms() - start;

  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status.to_string();
  // Backoff sleeps must be clamped to the remaining budget: a single
  // unclamped 200 ms sleep would already blow the 100 ms cap.
  EXPECT_LT(elapsed, 500u);
  EXPECT_EQ(client.stats().deadline_giveups, 1u);
}

TEST(ClientDeadline, ZeroDeadlinePreservesTheFullRetrySchedule) {
  const std::string dir = testutil::temp_dir("deadline_off");
  const std::string path = dir + "/never.sock";
  NeverAcceptListener listener(path);
  ASSERT_TRUE(listener.ok());

  ClientOptions options;
  options.request_timeout_ms = 20;
  options.max_retries = 2;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 2;
  options.total_deadline_ms = 0;  // default: cap disabled
  PredictClient client(options);
  ASSERT_TRUE(client.connect_unix(path).ok());

  const Status status = client.ping();
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.to_string();
  // Every attempt ran and timed out; nobody gave up on a deadline.
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().timeouts, 3u);
  EXPECT_EQ(client.stats().deadline_giveups, 0u);
}

}  // namespace
}  // namespace pythia::serve
