// Seeded wire-protocol fuzz corpus (1000 cases, deterministic): random
// frame trains through random corruption — bit flips, truncation,
// duplication, garbage splices, hostile length claims — fed to the
// decoder in random-sized chunks, and request-level fuzz against a full
// ServerCore. The invariants are the robustness contract itself:
//
//   * the decoder never delivers a frame that was not sent intact, never
//     delivers past a corruption, and never crashes;
//   * an uncorrupted train is delivered exactly, regardless of chunking;
//   * ServerCore answers every well-formed frame with a well-formed
//     reply frame and signals the drop on the first framing failure.
//
// Every case derives from PYTHIA_FUZZ_SEED (default 0xf022) so a CI
// failure reproduces locally by exporting the seed it prints.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pythia::serve {
namespace {

constexpr int kCases = 1000;

std::uint64_t base_seed() {
  return static_cast<std::uint64_t>(support::env_long("PYTHIA_FUZZ_SEED",
                                                      0xf022));
}

enum class Mutation : std::uint8_t {
  kNone = 0,
  kBitFlip,
  kTruncate,
  kDuplicateFrame,
  kGarbageSplice,
  kHostileLength,
};

struct FuzzCase {
  std::vector<std::vector<std::uint8_t>> frames;  ///< pristine frames
  std::vector<std::uint8_t> stream;               ///< possibly corrupted
  Mutation mutation = Mutation::kNone;
};

FuzzCase build_case(support::Rng& rng) {
  FuzzCase out;
  const std::size_t frame_count = 1 + rng.below(5);
  for (std::size_t i = 0; i < frame_count; ++i) {
    std::vector<std::uint8_t> payload(rng.below(64));
    for (auto& byte : payload) {
      byte = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto type = static_cast<MsgType>(1 + rng.below(15));
    std::vector<std::uint8_t> frame;
    encode_frame(type, rng.below(1u << 20), payload, frame);
    out.frames.push_back(frame);
    out.stream.insert(out.stream.end(), frame.begin(), frame.end());
  }

  out.mutation = static_cast<Mutation>(rng.below(6));
  switch (out.mutation) {
    case Mutation::kNone:
      break;
    case Mutation::kBitFlip: {
      const std::size_t pos = rng.below(out.stream.size());
      out.stream[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    }
    case Mutation::kTruncate: {
      const std::size_t keep = rng.below(out.stream.size());
      out.stream.resize(keep);
      break;
    }
    case Mutation::kDuplicateFrame: {
      const auto& dup = out.frames[rng.below(out.frames.size())];
      out.stream.insert(out.stream.end(), dup.begin(), dup.end());
      break;
    }
    case Mutation::kGarbageSplice: {
      std::vector<std::uint8_t> garbage(1 + rng.below(40));
      for (auto& byte : garbage) {
        byte = static_cast<std::uint8_t>(rng.below(256));
      }
      const std::size_t pos = rng.below(out.stream.size() + 1);
      out.stream.insert(out.stream.begin() + static_cast<std::ptrdiff_t>(pos),
                        garbage.begin(), garbage.end());
      break;
    }
    case Mutation::kHostileLength: {
      // Overwrite a frame's size field with a huge claim, leaving the
      // header CRC stale — must die on the checksum, not the allocator.
      const std::uint32_t huge = 0x7fffffffu;
      std::memcpy(out.stream.data() + 8, &huge, sizeof(huge));
      break;
    }
  }
  return out;
}

/// Feeds `stream` to `decoder` in random chunks, returning delivered
/// frame payload copies.
std::vector<std::vector<std::uint8_t>> run_decoder(
    FrameDecoder& decoder, const std::vector<std::uint8_t>& stream,
    support::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> delivered;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(97), stream.size() - offset);
    decoder.feed(stream.data() + offset, n);
    offset += n;
    while (auto frame = decoder.next()) {
      delivered.emplace_back(frame->payload, frame->payload + frame->size);
    }
  }
  return delivered;
}

TEST(WireFuzz, DecoderSurvivesTheCorpus) {
  const std::uint64_t seed = base_seed();
  for (int case_index = 0; case_index < kCases; ++case_index) {
    support::Rng rng(seed + static_cast<std::uint64_t>(case_index) *
                                0x9e3779b97f4a7c15ULL);
    const FuzzCase fuzz = build_case(rng);
    FrameDecoder decoder;
    const auto delivered = run_decoder(decoder, fuzz.stream, rng);
    const std::string label =
        "case " + std::to_string(case_index) + " seed " +
        std::to_string(seed) + " mutation " +
        std::to_string(static_cast<int>(fuzz.mutation));

    switch (fuzz.mutation) {
      case Mutation::kNone:
        EXPECT_FALSE(decoder.failed()) << label;
        ASSERT_EQ(delivered.size(), fuzz.frames.size()) << label;
        break;
      case Mutation::kDuplicateFrame:
        EXPECT_FALSE(decoder.failed()) << label;
        ASSERT_EQ(delivered.size(), fuzz.frames.size() + 1) << label;
        break;
      case Mutation::kTruncate:
        // A clean prefix of frames, never a failure (truncation is
        // indistinguishable from a slow sender) — unless the cut fell
        // inside nothing and all frames survived minus the tail.
        EXPECT_FALSE(decoder.failed()) << label;
        EXPECT_LE(delivered.size(), fuzz.frames.size()) << label;
        break;
      case Mutation::kBitFlip:
      case Mutation::kGarbageSplice:
      case Mutation::kHostileLength:
        // Corruption may land after every frame (splice at the end) or
        // inside one; delivered frames must be a prefix of what was
        // sent, and anything undelivered means the decoder failed or
        // is still waiting on garbage it will eventually reject.
        EXPECT_LE(delivered.size(), fuzz.frames.size()) << label;
        break;
    }

    // Every delivered payload must be byte-identical to a sent frame's
    // payload at the same position (no torn or spliced deliveries).
    for (std::size_t i = 0;
         i < delivered.size() && i < fuzz.frames.size(); ++i) {
      const auto& sent = fuzz.frames[i];
      ASSERT_EQ(delivered[i].size(), sent.size() - kFrameHeaderSize) << label;
      EXPECT_EQ(0, std::memcmp(delivered[i].data(),
                               sent.data() + kFrameHeaderSize,
                               delivered[i].size()))
          << label;
    }
  }
}

TEST(WireFuzz, ServerCoreSurvivesTheCorpus) {
  const std::uint64_t seed = base_seed() ^ 0xab5e11u;
  ServerOptions options;
  options.registry.max_resident = 2;
  ServerCore core(options);
  for (int case_index = 0; case_index < kCases; ++case_index) {
    support::Rng rng(seed + static_cast<std::uint64_t>(case_index) *
                                0x9e3779b97f4a7c15ULL);
    const FuzzCase fuzz = build_case(rng);
    const std::uint64_t conn = core.connection_open();
    std::vector<std::uint8_t> replies;
    bool alive = true;
    std::size_t offset = 0;
    while (offset < fuzz.stream.size() && alive) {
      const std::size_t n = std::min<std::size_t>(
          1 + rng.below(97), fuzz.stream.size() - offset);
      alive = core.on_bytes(conn, fuzz.stream.data() + offset, n, replies,
                            /*now_ns=*/1);
      offset += n;
    }
    if (fuzz.mutation == Mutation::kNone ||
        fuzz.mutation == Mutation::kDuplicateFrame ||
        fuzz.mutation == Mutation::kTruncate) {
      EXPECT_TRUE(alive) << "case " << case_index;
    }
    // Whatever happened on the way in, the way out is clean: every reply
    // byte re-parses as well-formed frames with no trailing garbage.
    FrameDecoder reply_decoder;
    reply_decoder.feed(replies.data(), replies.size());
    std::size_t reply_frames = 0;
    while (reply_decoder.next().has_value()) ++reply_frames;
    EXPECT_FALSE(reply_decoder.failed()) << "case " << case_index;
    EXPECT_EQ(reply_decoder.pending(), 0u) << "case " << case_index;
    core.connection_close(conn);
  }
  EXPECT_EQ(core.stats().connections, 0u);
}

}  // namespace
}  // namespace pythia::serve
