// Shared fixtures for the serving-layer tests: a deterministic loopy
// trace, trace files on disk, and a minimal raw wire client for tests
// that must speak the protocol below the PredictClient conveniences.
#pragma once

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "core/trace_io.hpp"
#include "engine/snapshot.hpp"
#include "serve/wire.hpp"

namespace pythia::serve::testutil {

/// One loopy section: a b c repeated. Event ids are 0, 1, 2.
inline Trace loop_trace(int iterations, std::uint64_t step_ns = 1000) {
  Trace trace;
  const TerminalId a = trace.registry.intern("a");
  const TerminalId b = trace.registry.intern("b");
  const TerminalId c = trace.registry.intern("c");
  Oracle oracle = Oracle::record(true);
  std::uint64_t now = 0;
  for (int i = 0; i < iterations; ++i) {
    oracle.event(a, now += step_ns);
    oracle.event(b, now += step_ns);
    oracle.event(c, now += step_ns);
  }
  trace.threads.push_back(oracle.finish());
  return trace;
}

/// A fresh per-process temp directory (removed by the caller's fixture).
inline std::string temp_dir(const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("pythia_serve_" + tag + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Saves loop_trace(iterations) under dir/name.pythia, returns the path.
inline std::string write_trace_file(const std::string& dir,
                                    const std::string& name,
                                    int iterations) {
  const std::string path = dir + "/" + name + ".pythia";
  const Trace trace = loop_trace(iterations);
  if (!trace.try_save(path).ok()) return "";
  return path;
}

/// Encodes one complete request frame.
inline std::vector<std::uint8_t> frame_bytes(
    MsgType type, std::uint64_t request_id,
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  encode_frame(type, request_id, payload, out);
  return out;
}

inline std::vector<std::uint8_t> hello_frame(const std::string& tenant,
                                             std::uint64_t request_id = 1) {
  std::vector<std::uint8_t> payload;
  encode_hello(HelloMsg{tenant}, payload);
  return frame_bytes(MsgType::kHello, request_id, payload);
}

inline std::vector<std::uint8_t> open_frame(const std::string& trace,
                                            std::uint32_t section,
                                            std::uint64_t request_id) {
  std::vector<std::uint8_t> payload;
  encode_open(OpenMsg{trace, section}, payload);
  return frame_bytes(MsgType::kOpen, request_id, payload);
}

/// Collects every frame a reply byte-buffer contains (copies payloads).
struct CollectedFrame {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

inline std::vector<CollectedFrame> collect_frames(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<CollectedFrame> frames;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  while (auto frame = decoder.next()) {
    CollectedFrame out;
    out.type = frame->type;
    out.request_id = frame->request_id;
    out.payload.assign(frame->payload, frame->payload + frame->size);
    frames.push_back(std::move(out));
  }
  return frames;
}

}  // namespace pythia::serve::testutil
