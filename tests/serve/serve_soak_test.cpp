// Daemon soak and fault matrix, over real sockets:
//
//   Soak  — concurrent tenants drive a live daemon over socketpairs
//           while a corruptor connection injects bit-flipped frames
//           (faults::Plan knobs), a flooding tenant exhausts its rate
//           budget, a slow reader refuses to drain replies, and the
//           operator hot-publishes new snapshots mid-traffic. Healthy
//           tenants must keep answering; no request may be lost or hung
//           (every call returns a code within its timeout); the daemon
//           must drop exactly the hostile connections.
//
//   Kill  — a daemon child process is SIGKILLed mid-service; clients
//           fail fast (no hang), a restarted daemon recovers its trace
//           registry from the on-disk manifest, and reconnecting
//           clients re-open sessions and get answers again. A second
//           matrix SIGKILLs a child *inside* the manifest writer at
//           kill points (support/crash_point.hpp), seeded by
//           PYTHIA_KILL_SEEDS, and asserts the manifest is a readable
//           prefix of the adds after every death.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "faults/plan.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve_test_util.hpp"
#include "support/crash_point.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pythia::serve {
namespace {

namespace fs = std::filesystem;
using testutil::frame_bytes;
using testutil::temp_dir;
using testutil::write_trace_file;

int make_socketpair(int fds[2]) {
  return ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
}

struct TenantOutcome {
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;
  std::uint64_t other = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t unanswered = 0;  ///< calls that returned nothing at all
};

/// One well-behaved tenant: open, observe/predict for `rounds`, close.
/// Every call must come back with *something* — a code or an error.
TenantOutcome run_tenant(int fd, const std::string& name, int rounds) {
  TenantOutcome outcome;
  ClientOptions options;
  options.tenant = name;
  options.request_timeout_ms = 5000;
  options.max_retries = 1;
  PredictClient client(options);
  if (!client.connect_fd(fd).ok()) {
    ++outcome.unanswered;
    return outcome;
  }
  auto opened = client.open("loop", 0);
  if (!opened.ok() || !opened.value().open) {
    ++outcome.unanswered;
    return outcome;
  }
  ClientSession session = opened.take();
  const TerminalId loop_events[3] = {0, 1, 2};
  for (int i = 0; i < rounds; ++i) {
    // Stay on the trace's a,b,c loop: warm up with one full lap, then
    // feed one in-sequence event per round (divergence would trip the
    // breaker and turn every answer into an honest-but-useless
    // kDegraded).
    const TerminalId next = loop_events[i == 0 ? 0 : (i - 1) % 3];
    const auto observed =
        client.observe(session, i == 0 ? loop_events : &next, i == 0 ? 3 : 1);
    if (!observed.ok()) {
      ++outcome.transport_errors;
      continue;
    }
    auto predicted = client.predict(session, 1, 1 + (i % 3));
    if (!predicted.ok()) {
      ++outcome.transport_errors;
      continue;
    }
    switch (predicted.value().code) {
      case ReplyCode::kOk:
        ++outcome.ok;
        break;
      case ReplyCode::kDegraded:
        ++outcome.degraded;
        break;
      case ReplyCode::kShed:
        ++outcome.shed;
        break;
      default:
        ++outcome.other;
        break;
    }
  }
  (void)client.close(session);
  return outcome;
}

/// A flat loop over many distinct events: its phase tree has one node
/// per terminal, so a generous node budget produces a reply bigger than
/// a small frame cap — the oversized-response shed path.
std::string write_busy_trace_file(const std::string& dir) {
  Trace trace;
  std::vector<TerminalId> ids;
  for (int i = 0; i < 48; ++i) {
    ids.push_back(trace.registry.intern("step_" + std::to_string(i)));
  }
  Oracle oracle = Oracle::record(false);
  for (int lap = 0; lap < 8; ++lap) {
    for (const TerminalId id : ids) oracle.event(id);
  }
  trace.threads.push_back(oracle.finish());
  const std::string path = dir + "/busy.pythia";
  if (!trace.try_save(path).ok()) return "";
  return path;
}

struct AnalystOutcome {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t oversized_shed = 0;  ///< kShed with truncated set
  std::uint64_t other = 0;
  std::uint64_t transport_errors = 0;
};

/// The analyst tenant: hammers kAnalyze against the busy trace,
/// alternating a polite node budget with a deliberately huge one whose
/// reply cannot fit the daemon's frame cap.
AnalystOutcome run_analyst(int fd, int rounds) {
  AnalystOutcome outcome;
  ClientOptions options;
  options.tenant = "analyst";
  options.request_timeout_ms = 5000;
  options.max_retries = 1;
  PredictClient client(options);
  if (!client.connect_fd(fd).ok()) {
    ++outcome.transport_errors;
    return outcome;
  }
  for (int i = 0; i < rounds; ++i) {
    const bool huge = i % 2 == 1;
    auto analyzed = client.analyze("busy", 0, /*max_depth=*/4,
                                   /*max_nodes=*/huge ? 4096 : 8,
                                   /*min_coverage_permille=*/1);
    if (!analyzed.ok()) {
      ++outcome.transport_errors;
      continue;
    }
    const auto& result = analyzed.value();
    switch (result.code) {
      case ReplyCode::kOk:
        ++outcome.ok;
        break;
      case ReplyCode::kShed:
        ++outcome.shed;
        if (huge && result.truncated && result.phases.empty()) {
          ++outcome.oversized_shed;
        }
        break;
      default:
        ++outcome.other;
        break;
    }
  }
  return outcome;
}

TEST(ServeSoak, ConcurrentTenantsSurviveHostileTraffic) {
  const std::string dir = temp_dir("soak");
  const std::string trace_path = write_trace_file(dir, "loop", 20);
  ASSERT_FALSE(trace_path.empty());
  const std::string busy_path = write_busy_trace_file(dir);
  ASSERT_FALSE(busy_path.empty());

  DaemonOptions options;
  options.server.registry.manifest_path = dir + "/manifest.psrv";
  options.max_output_buffer = 4096;  // makes the slow reader detectable
  // Frame cap small enough that the busy trace's full phase tree cannot
  // fit (but a predict reply or an 8-node tree easily does): the
  // analyst's greedy requests must shed, not wedge its decoder.
  options.server.wire.max_payload = 2048;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.core().registry().add("loop", trace_path).ok());
  ASSERT_TRUE(daemon.core().registry().add("busy", busy_path).ok());
  // The flooding tenant gets a starvation budget before the loop starts
  // (admission is loop-thread state once serving begins).
  TenantLimits tight;
  tight.rate_per_sec = 50.0;
  tight.burst = 8.0;
  daemon.core().admission().set_limits(
      daemon.core().admission().register_tenant("flood"), tight);
  ASSERT_TRUE(daemon.start().ok());

  // --- hostile connection 1: the corruptor --------------------------
  // Sends frames mutated per faults::Plan wire knobs; the daemon must
  // reject on the first corrupt frame and drop the connection.
  int corrupt_pair[2];
  ASSERT_EQ(make_socketpair(corrupt_pair), 0);
  ASSERT_TRUE(daemon.adopt(corrupt_pair[0]).ok());
  std::thread corruptor([fd = corrupt_pair[1]] {
    faults::Plan plan;
    plan.frame_corrupt_rate = 0.5;
    plan.frame_bit_flips = 2;
    plan.seed = 0xc0de;
    support::Rng rng(plan.seed);
    for (int i = 0; i < 64; ++i) {
      auto bytes = frame_bytes(MsgType::kPing,
                               static_cast<std::uint64_t>(i + 1), {});
      if (rng.chance(plan.frame_corrupt_rate)) {
        for (int flip = 0; flip < plan.frame_bit_flips; ++flip) {
          bytes[rng.below(bytes.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
      }
      if (::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) < 0) {
        break;  // daemon already cut the cord — exactly the contract
      }
    }
    ::close(fd);
  });

  // --- hostile connection 2: the slow reader ------------------------
  // Pumps pings and never reads a single reply.
  int slow_pair[2];
  ASSERT_EQ(make_socketpair(slow_pair), 0);
  ASSERT_TRUE(daemon.adopt(slow_pair[0]).ok());
  std::thread slow_reader([fd = slow_pair[1]] {
    const auto ping = frame_bytes(MsgType::kPing, 7, {});
    for (int i = 0; i < 20000; ++i) {
      if (::send(fd, ping.data(), ping.size(), MSG_NOSIGNAL) < 0) break;
    }
    ::close(fd);
  });

  // --- the flood ----------------------------------------------------
  int flood_pair[2];
  ASSERT_EQ(make_socketpair(flood_pair), 0);
  ASSERT_TRUE(daemon.adopt(flood_pair[0]).ok());
  std::thread flooder([fd = flood_pair[1]] {
    (void)run_tenant(fd, "flood", 300);
  });

  // --- the analyst: kAnalyze traffic, half of it oversized ----------
  int analyst_pair[2];
  ASSERT_EQ(make_socketpair(analyst_pair), 0);
  ASSERT_TRUE(daemon.adopt(analyst_pair[0]).ok());
  AnalystOutcome analyst_outcome;
  std::thread analyst([&analyst_outcome, fd = analyst_pair[1]] {
    analyst_outcome = run_analyst(fd, 60);
  });

  // --- the healthy tenants ------------------------------------------
  constexpr int kTenants = 3;
  constexpr int kRounds = 150;
  std::vector<TenantOutcome> outcomes(kTenants);
  std::vector<std::thread> tenants;
  for (int t = 0; t < kTenants; ++t) {
    int pair[2];
    ASSERT_EQ(make_socketpair(pair), 0);
    ASSERT_TRUE(daemon.adopt(pair[0]).ok());
    tenants.emplace_back([&outcomes, t, fd = pair[1]] {
      outcomes[static_cast<std::size_t>(t)] =
          run_tenant(fd, "tenant-" + std::to_string(t), kRounds);
    });
  }

  // --- the operator: hot publishes mid-traffic ----------------------
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(daemon.core()
                    .registry()
                    .publish("loop", engine::TraceSnapshot::make(
                                         testutil::loop_trace(20 + i),
                                         static_cast<std::uint64_t>(i + 2)))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  corruptor.join();
  slow_reader.join();
  flooder.join();
  analyst.join();
  for (auto& tenant : tenants) tenant.join();
  daemon.stop();

  // The analyst: every call answered; the polite requests succeeded and
  // every greedy request shed as an explicit oversized-response kShed.
  EXPECT_EQ(analyst_outcome.transport_errors, 0u);
  EXPECT_EQ(analyst_outcome.other, 0u);
  EXPECT_GE(analyst_outcome.ok, 30u);
  EXPECT_GE(analyst_outcome.oversized_shed, 30u);

  // Healthy tenants: every request answered, and answered usefully.
  for (int t = 0; t < kTenants; ++t) {
    const TenantOutcome& outcome = outcomes[static_cast<std::size_t>(t)];
    EXPECT_EQ(outcome.unanswered, 0u) << "tenant " << t;
    EXPECT_EQ(outcome.transport_errors, 0u) << "tenant " << t;
    EXPECT_EQ(outcome.ok + outcome.degraded + outcome.shed + outcome.other,
              static_cast<std::uint64_t>(kRounds))
        << "tenant " << t;
    // The flood and the hostiles must not have shed the healthy
    // tenants into uselessness.
    EXPECT_GT(outcome.ok, static_cast<std::uint64_t>(kRounds) / 2)
        << "tenant " << t;
  }

  const Daemon::Stats& stats = daemon.transport_stats();
  EXPECT_GE(stats.accepted, static_cast<std::uint64_t>(kTenants) + 3);
  EXPECT_GE(stats.dropped_protocol, 1u);     // the corruptor
  EXPECT_GE(stats.dropped_slow_reader, 1u);  // the non-reader
  EXPECT_GE(daemon.core().registry().stats().publishes, 10u);

  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Kill matrix
// ---------------------------------------------------------------------

/// The daemon child's whole life: serve on `socket_path` until killed.
/// `first_boot` decides between registering traces and recovering them.
[[noreturn]] void run_daemon_child(const std::string& dir,
                                   const std::string& socket_path,
                                   const std::string& trace_path,
                                   bool first_boot) {
  DaemonOptions options;
  options.server.registry.manifest_path = dir + "/manifest.psrv";
  options.server.registry.durable_manifest = true;
  Daemon daemon(options);
  if (first_boot) {
    if (!daemon.core().registry().add("loop", trace_path).ok()) ::_exit(3);
  }
  if (!daemon.listen_unix(socket_path).ok()) ::_exit(4);
  if (!daemon.start().ok()) ::_exit(5);
  while (true) ::pause();  // SIGKILL is the only way out
}

/// Connects with patience: the child daemon needs a beat to bind.
bool connect_with_retries(PredictClient& client, const std::string& path,
                          int attempts) {
  for (int i = 0; i < attempts; ++i) {
    if (client.connect_unix(path).ok()) return true;
    ::usleep(50 * 1000);
  }
  return false;
}

TEST(ServeSoak, DaemonSigkillRecoveryOverUnixSocket) {
  const std::string dir = temp_dir("kill");
  const std::string trace_path = write_trace_file(dir, "loop", 20);
  ASSERT_FALSE(trace_path.empty());
  const std::string socket_path = dir + "/pythia.sock";

  // Boot one: registers the trace (persisting the manifest) and serves.
  const pid_t first = ::fork();
  ASSERT_GE(first, 0);
  if (first == 0) {
    run_daemon_child(dir, socket_path, trace_path, /*first_boot=*/true);
  }

  ClientOptions coptions;
  coptions.tenant = "survivor";
  coptions.request_timeout_ms = 5000;
  coptions.max_retries = 2;
  coptions.backoff_initial_ms = 20;
  PredictClient client(coptions);
  ASSERT_TRUE(connect_with_retries(client, socket_path, 100));

  auto opened = client.open("loop", 0);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  ASSERT_TRUE(opened.value().open);
  ClientSession session = opened.take();
  const TerminalId warmup[4] = {0, 1, 2, 0};
  ASSERT_TRUE(client.observe(session, warmup, 4).ok());
  auto before = client.predict(session, 1, 1);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().code, ReplyCode::kOk);

  // SIGKILL mid-service: no shutdown path runs in the daemon at all.
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(first, &wait_status, 0), first);
  ASSERT_TRUE(WIFSIGNALED(wait_status));

  // The client fails *fast and explicitly* — never hangs.
  auto during = client.predict(session, 1, 1);
  EXPECT_FALSE(during.ok());

  // Boot two: same manifest, no adds — recovery must restore the
  // registry and the socket.
  const pid_t second = ::fork();
  ASSERT_GE(second, 0);
  if (second == 0) {
    run_daemon_child(dir, socket_path, trace_path, /*first_boot=*/false);
  }
  ASSERT_TRUE(connect_with_retries(client, socket_path, 100));

  // The old session handle heals: the client re-opens it on the
  // recovered daemon and predictions flow again.
  ASSERT_TRUE(client.observe(session, warmup, 4).ok());
  auto after = client.predict(session, 1, 1);
  ASSERT_TRUE(after.ok()) << after.status().to_string();
  EXPECT_EQ(after.value().code, ReplyCode::kOk);
  EXPECT_GT(client.stats().reopens, 0u);

  ASSERT_EQ(::kill(second, SIGKILL), 0);
  ASSERT_EQ(::waitpid(second, &wait_status, 0), second);
  fs::remove_all(dir);
}

TEST(ServeSoak, ManifestKillMatrixLeavesReadablePrefix) {
  const long seeds = support::env_long("PYTHIA_KILL_SEEDS", 6);
  const std::string trace_dir = temp_dir("killmatrix_traces");
  const std::string trace_path = write_trace_file(trace_dir, "t", 10);
  ASSERT_FALSE(trace_path.empty());
  constexpr int kAdds = 5;

  for (long seed = 0; seed < seeds; ++seed) {
    const std::string dir =
        temp_dir("killmatrix_" + std::to_string(seed));
    support::Rng rng(static_cast<std::uint64_t>(seed) * 0x9e3779b9u + 7);
    // Die at the Nth manifest write, alternating before/after the
    // atomic rename.
    const std::uint64_t hit = 1 + rng.below(kAdds);
    const char* point =
        seed % 2 == 0 ? "serve.manifest.write" : "serve.manifest.renamed";

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      support::arm_crash_point(point, hit, support::CrashAction::kSigkill);
      RegistryOptions options;
      options.manifest_path = dir + "/manifest.psrv";
      options.durable_manifest = true;
      TraceRegistry registry(options);
      for (int i = 0; i < kAdds; ++i) {
        if (!registry.add("trace-" + std::to_string(i), trace_path).ok()) {
          ::_exit(3);
        }
      }
      ::_exit(0);  // crash point never fired — matrix bug
    }
    int wait_status = 0;
    ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wait_status) && WTERMSIG(wait_status) == SIGKILL)
        << "seed " << seed << " point " << point << " hit " << hit;

    // Recovery after the kill: the manifest must be readable and list a
    // clean prefix of the adds (the in-flight add may or may not have
    // landed, depending on which side of the rename the kill hit).
    RegistryOptions options;
    options.manifest_path = dir + "/manifest.psrv";
    TraceRegistry recovered(options);
    ASSERT_TRUE(recovered.recover().ok()) << "seed " << seed;
    EXPECT_EQ(recovered.stats().manifest_salvaged_lines, 0u);
    const auto names = recovered.names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      EXPECT_EQ(names[i], "trace-" + std::to_string(i)) << "seed " << seed;
    }
    const std::size_t expected_min =
        static_cast<std::size_t>(hit) - 1;  // writes before the fatal one
    EXPECT_GE(names.size(), expected_min) << "seed " << seed;
    EXPECT_LE(names.size(), static_cast<std::size_t>(hit)) << "seed " << seed;
    // Every recovered name is actually servable.
    for (const auto& name : names) {
      EXPECT_TRUE(recovered.acquire(name).ok()) << name;
    }
    fs::remove_all(dir);
  }
  fs::remove_all(trace_dir);
}

}  // namespace
}  // namespace pythia::serve
