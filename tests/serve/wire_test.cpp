// Wire framing tests: every message schema round-trips; the decoder
// survives truncation, bit flips, oversize claims and byte-at-a-time
// delivery; and a corrupt length field can never drive an allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "serve/wire.hpp"

namespace pythia::serve {
namespace {

std::vector<std::uint8_t> make_frame(MsgType type, std::uint64_t request_id,
                                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  encode_frame(type, request_id, payload, out);
  return out;
}

TEST(Wire, FrameRoundTrip) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto bytes = make_frame(MsgType::kObserve, 42, payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + payload.size());

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kObserve);
  EXPECT_EQ(frame->request_id, 42u);
  ASSERT_EQ(frame->size, payload.size());
  EXPECT_EQ(0, std::memcmp(frame->payload, payload.data(), payload.size()));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.pending(), 0u);
}

TEST(Wire, EmptyPayloadAndBackToBackFrames) {
  std::vector<std::uint8_t> bytes = make_frame(MsgType::kPing, 1, {});
  const auto second = make_frame(MsgType::kClose, 2, {9, 9});
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto first = decoder.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MsgType::kPing);
  EXPECT_EQ(first->size, 0u);
  auto next = decoder.next();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->type, MsgType::kClose);
  EXPECT_EQ(next->request_id, 2u);
}

TEST(Wire, ByteAtATimeDelivery) {
  const std::vector<std::uint8_t> payload(100, 0xab);
  const auto bytes = make_frame(MsgType::kPredict, 7, payload);
  FrameDecoder decoder;
  std::size_t frames = 0;
  for (std::uint8_t byte : bytes) {
    decoder.feed(&byte, 1);
    while (decoder.next().has_value()) ++frames;
  }
  EXPECT_EQ(frames, 1u);
  EXPECT_FALSE(decoder.failed());
}

TEST(Wire, TruncatedFrameStaysPending) {
  const auto bytes = make_frame(MsgType::kObserve, 3, {1, 2, 3, 4});
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 2);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.failed());  // not corrupt — just incomplete
  EXPECT_GT(decoder.pending(), 0u);
  // The tail arrives: the frame completes.
  decoder.feed(bytes.data() + bytes.size() - 2, 2);
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(Wire, HeaderBitFlipPoisonsTheStream) {
  // Flip one bit in each header position in turn; every single one must
  // be caught by the header CRC (or the field checks it protects).
  for (std::size_t pos = 0; pos < kFrameHeaderSize; ++pos) {
    auto bytes = make_frame(MsgType::kOpen, 9, {5, 6, 7});
    bytes[pos] ^= 0x10;
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(decoder.next().has_value()) << "flipped header byte " << pos;
    EXPECT_TRUE(decoder.failed()) << "flipped header byte " << pos;
    // Poisoned: even a following pristine frame is not delivered.
    const auto clean = make_frame(MsgType::kPing, 10, {});
    decoder.feed(clean.data(), clean.size());
    EXPECT_FALSE(decoder.next().has_value());
  }
}

TEST(Wire, PayloadBitFlipIsCaughtByPayloadCrc) {
  for (std::size_t pos = 0; pos < 8; ++pos) {
    auto bytes = make_frame(MsgType::kObserve, 4,
                            {10, 11, 12, 13, 14, 15, 16, 17});
    bytes[kFrameHeaderSize + pos] ^= 0x01;
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(decoder.next().has_value()) << "flipped payload byte " << pos;
    EXPECT_TRUE(decoder.failed());
    EXPECT_EQ(decoder.stats().rejected_payload, 1u);
  }
}

TEST(Wire, OversizeClaimRejectedWithoutBuffering) {
  // A frame honestly claiming a payload beyond max_payload: rejected as
  // soon as the header is complete, long before any payload arrives —
  // the decoder never buffers toward a hostile length.
  FrameDecoder::Options options;
  options.max_payload = 64;
  const std::vector<std::uint8_t> payload(65, 0xcd);
  const auto bytes = make_frame(MsgType::kObserve, 5, payload);
  FrameDecoder decoder(options);
  decoder.feed(bytes.data(), kFrameHeaderSize);  // header only
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  EXPECT_EQ(decoder.stats().rejected_oversize, 1u);
}

TEST(Wire, CorruptLengthFieldCannotDriveAllocation) {
  // Forge a header whose payload_size says ~1 GiB but whose CRC is
  // stale: the decoder must reject on the checksum *before* believing
  // the size.
  auto bytes = make_frame(MsgType::kObserve, 6, {1});
  bytes[8] = 0xff;  // payload_size field
  bytes[9] = 0xff;
  bytes[10] = 0xff;
  bytes[11] = 0x3f;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  EXPECT_EQ(decoder.stats().rejected_header, 1u);
  EXPECT_EQ(decoder.stats().rejected_oversize, 0u);
}

TEST(Wire, GarbagePrefixPoisons) {
  std::vector<std::uint8_t> bytes(64, 0x5a);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
}

TEST(Wire, ReaderBoundsChecksEveryRead) {
  const std::uint8_t bytes[4] = {1, 2, 3, 4};
  WireReader reader(bytes, sizeof(bytes));
  std::uint64_t wide = 0;
  EXPECT_FALSE(reader.u64(wide));  // 8 > 4: refused, offset unchanged
  std::uint32_t narrow = 0;
  EXPECT_TRUE(reader.u32(narrow));
  EXPECT_EQ(narrow, 0x04030201u);
  std::uint8_t one = 0;
  EXPECT_FALSE(reader.u8(one));  // exhausted
  EXPECT_TRUE(reader.exhausted());
}

TEST(Wire, ReaderRejectsLyingStringLength) {
  std::vector<std::uint8_t> payload;
  WireWriter writer(payload);
  writer.u32(1000);  // claims 1000 bytes, provides 3
  payload.push_back('a');
  payload.push_back('b');
  payload.push_back('c');
  WireReader reader(payload.data(), payload.size());
  std::string out;
  EXPECT_FALSE(reader.str(out));
  EXPECT_TRUE(out.empty());
}

TEST(Wire, ReaderCapsStringLength) {
  std::vector<std::uint8_t> payload;
  WireWriter writer(payload);
  writer.str(std::string(300, 'x'));  // well-formed but over the cap
  WireReader reader(payload.data(), payload.size());
  std::string out;
  EXPECT_FALSE(reader.str(out, /*max_length=*/256));
}

TEST(Wire, MessageSchemasRoundTrip) {
  std::vector<std::uint8_t> buffer;

  encode_hello(HelloMsg{"tenant-a"}, buffer);
  HelloMsg hello;
  ASSERT_TRUE(parse_hello(WireReader(buffer.data(), buffer.size()), hello));
  EXPECT_EQ(hello.tenant, "tenant-a");

  buffer.clear();
  encode_open(OpenMsg{"trace-x", 3}, buffer);
  OpenMsg open;
  ASSERT_TRUE(parse_open(WireReader(buffer.data(), buffer.size()), open));
  EXPECT_EQ(open.trace, "trace-x");
  EXPECT_EQ(open.section, 3u);

  buffer.clear();
  const std::uint32_t events[4] = {7, 8, 9, 10};
  encode_observe(99, events, 4, buffer);
  ObserveMsg observe;
  std::vector<std::uint32_t> scratch;
  ASSERT_TRUE(parse_observe(WireReader(buffer.data(), buffer.size()), observe,
                            scratch, 16));
  EXPECT_EQ(observe.session_id, 99u);
  ASSERT_EQ(observe.count, 4u);
  EXPECT_EQ(scratch, (std::vector<std::uint32_t>{7, 8, 9, 10}));
  // Batch over the cap: rejected before any copy.
  EXPECT_FALSE(parse_observe(WireReader(buffer.data(), buffer.size()),
                             observe, scratch, 3));

  buffer.clear();
  PredictMsg predict;
  predict.session_id = 5;
  predict.distance = 2;
  predict.count = 8;
  predict.deadline_ns = 123456789;
  encode_predict(predict, buffer);
  PredictMsg predict_out;
  ASSERT_TRUE(
      parse_predict(WireReader(buffer.data(), buffer.size()), predict_out));
  EXPECT_EQ(predict_out.session_id, 5u);
  EXPECT_EQ(predict_out.distance, 2u);
  EXPECT_EQ(predict_out.count, 8u);
  EXPECT_EQ(predict_out.deadline_ns, 123456789u);

  buffer.clear();
  encode_predict_ack(ReplyCode::kOk, 1, 0.75, 0.5, events, 4, buffer);
  PredictAckMsg ack;
  ASSERT_TRUE(parse_predict_ack(WireReader(buffer.data(), buffer.size()), ack,
                                scratch, 16));
  EXPECT_EQ(ack.code, ReplyCode::kOk);
  EXPECT_EQ(ack.health, 1u);
  EXPECT_DOUBLE_EQ(ack.probability, 0.75);
  EXPECT_DOUBLE_EQ(ack.confidence, 0.5);
  EXPECT_EQ(scratch, (std::vector<std::uint32_t>{7, 8, 9, 10}));

  buffer.clear();
  encode_error(ErrorMsg{ReplyCode::kShed, "busy"}, buffer);
  ErrorMsg error;
  ASSERT_TRUE(parse_error(WireReader(buffer.data(), buffer.size()), error));
  EXPECT_EQ(error.code, ReplyCode::kShed);
  EXPECT_EQ(error.message, "busy");

  buffer.clear();
  StatsAckMsg stats;
  stats.frames = 10;
  stats.replies = 9;
  stats.sessions_open = 3;
  stats.shed = 2;
  stats.degraded = 1;
  stats.expired = 4;
  stats.publishes = 5;
  encode_stats_ack(stats, buffer);
  StatsAckMsg stats_out;
  ASSERT_TRUE(
      parse_stats_ack(WireReader(buffer.data(), buffer.size()), stats_out));
  EXPECT_EQ(stats_out.frames, 10u);
  EXPECT_EQ(stats_out.publishes, 5u);
}

TEST(Wire, DecoderRecountsFramesAcrossCompaction) {
  // Many frames through one decoder with interleaved partial feeds: the
  // internal compaction must never lose or duplicate a frame.
  FrameDecoder decoder;
  std::vector<std::uint8_t> stream;
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(i % 17), 0x11);
    encode_frame(MsgType::kObserve, static_cast<std::uint64_t>(i), payload,
                 stream);
  }
  std::uint64_t delivered = 0;
  std::size_t offset = 0;
  std::size_t chunk = 1;
  while (offset < stream.size()) {
    const std::size_t n = std::min(chunk, stream.size() - offset);
    decoder.feed(stream.data() + offset, n);
    offset += n;
    chunk = (chunk * 7 + 3) % 61 + 1;  // varied chunk sizes
    while (auto frame = decoder.next()) {
      EXPECT_EQ(frame->request_id, delivered);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(decoder.stats().frames, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(decoder.pending(), 0u);
}

}  // namespace
}  // namespace pythia::serve
