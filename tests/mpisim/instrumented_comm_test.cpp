// Tests for the MPI interposition shim: event streams, payloads,
// record→predict round trips through the simulated runtime.
#include <gtest/gtest.h>

#include <vector>

#include "core/trace_io.hpp"
#include "mpisim/cluster.hpp"
#include "mpisim/instrumented_comm.hpp"

namespace pythia::mpisim {
namespace {

Cluster::Options zero_cost() {
  Cluster::Options options;
  options.model = NetworkModel::zero();
  return options;
}

TEST(InstrumentedComm, EventsCarryPeerPayload) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  Cluster cluster(2, zero_cost());
  std::vector<ThreadTrace> traces(2);

  cluster.run([&](Communicator& comm) {
    Oracle oracle = Oracle::record(false);
    InstrumentedComm mpi(comm, oracle, shared);
    if (comm.rank() == 0) {
      mpi.send_doubles(1, 0, {});
      mpi.barrier();
    } else {
      mpi.recv(0, 0);
      mpi.barrier();
    }
    traces[static_cast<std::size_t>(comm.rank())] = oracle.finish();
  });

  // Rank 0 recorded MPI_Send(1) then MPI_Barrier; rank 1 MPI_Recv(0) then
  // MPI_Barrier.
  const auto seq0 = traces[0].grammar.unfold();
  ASSERT_EQ(seq0.size(), 2u);
  EXPECT_EQ(registry.describe(seq0[0]), "MPI_Send(1)");
  EXPECT_EQ(registry.describe(seq0[1]), "MPI_Barrier");
  const auto seq1 = traces[1].grammar.unfold();
  ASSERT_EQ(seq1.size(), 2u);
  EXPECT_EQ(registry.describe(seq1[0]), "MPI_Recv(0)");
  EXPECT_EQ(registry.describe(seq1[1]), "MPI_Barrier");
}

TEST(InstrumentedComm, SyncPointsFireAtBlockingCalls) {
  struct Counter : CommObserver {
    int events = 0;
    int syncs = 0;
    void on_event(TerminalId, std::uint64_t) override { ++events; }
    void on_sync_point(std::uint64_t) override { ++syncs; }
  };

  EventRegistry registry;
  SharedRegistry shared(registry);
  Cluster cluster(2, zero_cost());
  std::vector<Counter> counters(2);

  cluster.run([&](Communicator& comm) {
    Oracle oracle = Oracle::off();
    InstrumentedComm mpi(comm, oracle, shared,
                         &counters[static_cast<std::size_t>(comm.rank())]);
    if (comm.rank() == 0) {
      Request r = mpi.irecv(1, 5);  // event, no sync
      mpi.wait(r);                  // event + sync
      mpi.barrier();                // event + sync
    } else {
      mpi.send_doubles(0, 5, {});   // event, no sync
      mpi.barrier();                // event + sync
    }
  });

  EXPECT_EQ(counters[0].events, 3);
  EXPECT_EQ(counters[0].syncs, 2);
  EXPECT_EQ(counters[1].events, 2);
  EXPECT_EQ(counters[1].syncs, 1);
}

TEST(InstrumentedComm, RecordThenPredictNextMpiCall) {
  // A repetitive exchange is recorded; on the second "execution" the
  // predictor must name the next MPI call at every step.
  EventRegistry registry;
  SharedRegistry shared(registry);

  auto program = [](InstrumentedComm& mpi) {
    for (int iteration = 0; iteration < 30; ++iteration) {
      if (mpi.rank() == 0) {
        mpi.send_doubles(1, 0, {});
        mpi.recv(1, 1);
      } else {
        mpi.recv(0, 0);
        mpi.send_doubles(0, 1, {});
      }
      mpi.allreduce(1.0, ReduceOp::kSum);
    }
  };

  std::vector<ThreadTrace> traces(2);
  {
    Cluster cluster(2, zero_cost());
    cluster.run([&](Communicator& comm) {
      Oracle oracle = Oracle::record(true);
      InstrumentedComm mpi(comm, oracle, shared);
      program(mpi);
      traces[static_cast<std::size_t>(comm.rank())] = oracle.finish();
    });
  }

  // Predict run: after warm-up, predictions at distance 1 must be right.
  struct Checker : CommObserver {
    Oracle* oracle = nullptr;
    std::vector<TerminalId> pending;  // prediction made at the last event
    int correct = 0;
    int total = 0;
    std::optional<TerminalId> last_prediction;

    void on_event(TerminalId event, std::uint64_t) override {
      if (last_prediction.has_value()) {
        ++total;
        if (*last_prediction == event) ++correct;
        last_prediction.reset();
      }
      auto p = oracle->predict_event(1);
      if (p.has_value()) last_prediction = p->event;
    }
  };

  std::vector<Checker> checkers(2);
  {
    Cluster cluster(2, zero_cost());
    cluster.run([&](Communicator& comm) {
      const auto rank = static_cast<std::size_t>(comm.rank());
      Oracle oracle = Oracle::predict(traces[rank]);
      checkers[rank].oracle = &oracle;
      InstrumentedComm mpi(comm, oracle, shared, &checkers[rank]);
      program(mpi);
      checkers[rank].oracle = nullptr;
    });
  }

  for (const Checker& checker : checkers) {
    EXPECT_GT(checker.total, 50);
    EXPECT_GE(static_cast<double>(checker.correct),
              0.95 * static_cast<double>(checker.total))
        << checker.correct << "/" << checker.total;
  }
}

TEST(InstrumentedComm, EventCountMatchesSubmissions) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  Cluster cluster(2, zero_cost());
  std::vector<std::uint64_t> counts(2);
  cluster.run([&](Communicator& comm) {
    Oracle oracle = Oracle::record(false);
    InstrumentedComm mpi(comm, oracle, shared);
    for (int i = 0; i < 10; ++i) mpi.barrier();
    counts[static_cast<std::size_t>(comm.rank())] =
        oracle.recorder()->event_count();
    EXPECT_EQ(mpi.events_submitted(), 10u);
  });
  EXPECT_EQ(counts[0], 10u);
  EXPECT_EQ(counts[1], 10u);
}

}  // namespace
}  // namespace pythia::mpisim
