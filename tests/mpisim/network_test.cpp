// Network-layer tests: matching semantics, ordering, batch
// continuations, and cost-model arithmetic.
#include <gtest/gtest.h>

#include <thread>

#include "mpisim/model.hpp"
#include "mpisim/network.hpp"

namespace pythia::mpisim {
namespace {

Message make(int source, int tag, unsigned char byte,
             std::uint64_t sent_at = 0) {
  Message message;
  message.source = source;
  message.tag = tag;
  message.data = {std::byte{byte}};
  message.sent_at_ns = sent_at;
  return message;
}

TEST(NetworkMatching, WildcardSource) {
  Network network(2);
  network.deliver(0, make(1, 7, 1));
  const Message got = network.receive(0, kAnySource, 7);
  EXPECT_EQ(got.source, 1);
  EXPECT_EQ(got.data[0], std::byte{1});
}

TEST(NetworkMatching, WildcardTag) {
  Network network(2);
  network.deliver(0, make(1, 42, 9));
  const Message got = network.receive(0, 1, kAnyTag);
  EXPECT_EQ(got.tag, 42);
}

TEST(NetworkMatching, FifoWithinSourceTagPair) {
  Network network(2);
  for (unsigned char i = 0; i < 5; ++i) {
    network.deliver(0, make(1, 3, i));
  }
  for (unsigned char i = 0; i < 5; ++i) {
    EXPECT_EQ(network.receive(0, 1, 3).data[0], std::byte{i});
  }
}

TEST(NetworkMatching, SelectiveReceiveSkipsNonMatching) {
  Network network(3);
  network.deliver(0, make(1, 1, 10));
  network.deliver(0, make(2, 2, 20));
  network.deliver(0, make(1, 2, 30));
  // Ask specifically for source 2 / tag 2 although older messages exist.
  EXPECT_EQ(network.receive(0, 2, 2).data[0], std::byte{20});
  EXPECT_EQ(network.pending(), 2u);
  EXPECT_EQ(network.receive(0, 1, 2).data[0], std::byte{30});
  EXPECT_EQ(network.receive(0, 1, 1).data[0], std::byte{10});
}

TEST(NetworkMatching, TryReceiveDoesNotBlock) {
  Network network(1);
  Message out;
  EXPECT_FALSE(network.try_receive(0, kAnySource, kAnyTag, out));
  network.deliver(0, make(0, 0, 5));
  EXPECT_TRUE(network.try_receive(0, kAnySource, kAnyTag, out));
  EXPECT_EQ(out.data[0], std::byte{5});
  EXPECT_FALSE(network.try_receive(0, kAnySource, kAnyTag, out));
}

TEST(NetworkMatching, BlockingReceiveWakesOnDelivery) {
  Network network(1);
  Message got;
  std::thread receiver([&] { got = network.receive(0, 9, 9); });
  // Deliver a non-matching then a matching message.
  network.deliver(0, make(8, 9, 1));
  network.deliver(0, make(9, 9, 2));
  receiver.join();
  EXPECT_EQ(got.data[0], std::byte{2});
  EXPECT_EQ(network.pending(), 1u);  // the non-matching one remains
  (void)network.receive(0, 8, 9);
}

TEST(NetworkModelMath, TransferIncludesLatencyAndBandwidth) {
  NetworkModel model;
  model.latency_ns = 1000.0;
  model.bandwidth_gbps = 8.0;  // 1 ns per byte
  EXPECT_DOUBLE_EQ(model.transfer_ns(0), 1000.0);
  EXPECT_DOUBLE_EQ(model.transfer_ns(500), 1500.0);
}

TEST(NetworkModelMath, ZeroModelIsFree) {
  const NetworkModel model = NetworkModel::zero();
  EXPECT_DOUBLE_EQ(model.send_overhead_ns, 0.0);
  EXPECT_LT(model.transfer_ns(1 << 20), 1.0);
}

TEST(BatchContinuation, FlagTravelsWithMessage) {
  Network network(2);
  Message head = make(0, 1, 1, 100);
  Message cont = make(0, 2, 2, 100);
  cont.batch_continuation = true;
  network.deliver(1, head);
  network.deliver(1, cont);
  EXPECT_FALSE(network.receive(1, 0, 1).batch_continuation);
  EXPECT_TRUE(network.receive(1, 0, 2).batch_continuation);
}

}  // namespace
}  // namespace pythia::mpisim
