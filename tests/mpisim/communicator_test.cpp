// Simulated MPI runtime tests: point-to-point, requests, collectives,
// virtual-time propagation.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpisim/cluster.hpp"
#include "mpisim/communicator.hpp"

namespace pythia::mpisim {
namespace {

Cluster::Options zero_cost() {
  Cluster::Options options;
  options.model = NetworkModel::zero();
  return options;
}

TEST(Network, FifoPerSourceAndTagMatching) {
  Network network(2);
  Message m;
  m.source = 0;
  m.tag = 7;
  m.data = {std::byte{1}};
  network.deliver(1, m);
  m.tag = 9;
  m.data = {std::byte{2}};
  network.deliver(1, m);

  // Tag-selective receive takes the second message first.
  Message got = network.receive(1, 0, 9);
  EXPECT_EQ(got.data[0], std::byte{2});
  got = network.receive(1, kAnySource, kAnyTag);
  EXPECT_EQ(got.data[0], std::byte{1});
  EXPECT_EQ(network.pending(), 0u);
}

TEST(Cluster, PingPong) {
  Cluster cluster(2, zero_cost());
  std::vector<double> received(2, 0.0);
  cluster.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      const double value = 42.5;
      comm.send_doubles(1, 0, std::span<const double>(&value, 1));
      received[0] = comm.recv_doubles(1, 1)[0];
    } else {
      const double got = comm.recv_doubles(0, 0)[0];
      const double reply = got * 2;
      comm.send_doubles(0, 1, std::span<const double>(&reply, 1));
      received[1] = got;
    }
  });
  EXPECT_DOUBLE_EQ(received[1], 42.5);
  EXPECT_DOUBLE_EQ(received[0], 85.0);
}

TEST(Cluster, IsendIrecvWaitall) {
  constexpr int kRanks = 4;
  Cluster cluster(kRanks, zero_cost());
  std::vector<double> sums(kRanks, 0.0);
  cluster.run([&](Communicator& comm) {
    const int rank = comm.rank();
    const int left = (rank + kRanks - 1) % kRanks;
    const int right = (rank + 1) % kRanks;
    const double mine = static_cast<double>(rank + 1);

    std::vector<Request> requests;
    requests.push_back(comm.irecv(left, 3));
    requests.push_back(comm.irecv(right, 3));
    requests.push_back(
        comm.isend(left, 3, Communicator::as_bytes({&mine, 1})));
    requests.push_back(
        comm.isend(right, 3, Communicator::as_bytes({&mine, 1})));
    comm.waitall(requests);

    double sum = 0.0;
    for (Request& request : requests) {
      if (request.is_receive()) {
        sum += Communicator::to_doubles(request.data())[0];
      }
    }
    sums[static_cast<std::size_t>(rank)] = sum;
  });
  for (int rank = 0; rank < kRanks; ++rank) {
    const int left = (rank + kRanks - 1) % kRanks;
    const int right = (rank + 1) % kRanks;
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(rank)],
                     static_cast<double>(left + 1 + right + 1));
  }
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, AllreduceSum) {
  const int ranks = GetParam();
  Cluster cluster(ranks, zero_cost());
  std::vector<double> results(static_cast<std::size_t>(ranks));
  cluster.run([&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce(static_cast<double>(comm.rank() + 1), ReduceOp::kSum);
  });
  const double expected = ranks * (ranks + 1) / 2.0;
  for (double r : results) EXPECT_DOUBLE_EQ(r, expected);
}

TEST_P(CollectiveTest, AllreduceMinMax) {
  const int ranks = GetParam();
  Cluster cluster(ranks, zero_cost());
  std::vector<double> mins(static_cast<std::size_t>(ranks));
  std::vector<double> maxs(static_cast<std::size_t>(ranks));
  cluster.run([&](Communicator& comm) {
    const double mine = static_cast<double>(comm.rank());
    mins[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce(mine, ReduceOp::kMin);
    maxs[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce(mine, ReduceOp::kMax);
  });
  for (int r = 0; r < ranks; ++r) {
    EXPECT_DOUBLE_EQ(mins[static_cast<std::size_t>(r)], 0.0);
    EXPECT_DOUBLE_EQ(maxs[static_cast<std::size_t>(r)],
                     static_cast<double>(ranks - 1));
  }
}

TEST_P(CollectiveTest, ReduceAtNonzeroRoot) {
  const int ranks = GetParam();
  if (ranks < 2) GTEST_SKIP();
  Cluster cluster(ranks, zero_cost());
  std::vector<double> at_root(static_cast<std::size_t>(ranks), -1.0);
  cluster.run([&](Communicator& comm) {
    const double result =
        comm.reduce(1.0, ReduceOp::kSum, /*root=*/1);
    at_root[static_cast<std::size_t>(comm.rank())] = result;
  });
  EXPECT_DOUBLE_EQ(at_root[1], static_cast<double>(ranks));
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int ranks = GetParam();
  Cluster cluster(ranks, zero_cost());
  cluster.run([&](Communicator& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      Payload data;
      if (comm.rank() == root) {
        data = {std::byte{static_cast<unsigned char>(root + 1)}};
      }
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 1u);
      EXPECT_EQ(data[0], std::byte{static_cast<unsigned char>(root + 1)});
    }
  });
}

TEST_P(CollectiveTest, AlltoallPermutesChunks) {
  const int ranks = GetParam();
  Cluster cluster(ranks, zero_cost());
  cluster.run([&](Communicator& comm) {
    std::vector<Payload> send(static_cast<std::size_t>(ranks));
    for (int dst = 0; dst < ranks; ++dst) {
      send[static_cast<std::size_t>(dst)] = {
          std::byte{static_cast<unsigned char>(comm.rank() * 16 + dst)}};
    }
    const std::vector<Payload> got = comm.alltoall(send);
    for (int src = 0; src < ranks; ++src) {
      ASSERT_EQ(got[static_cast<std::size_t>(src)].size(), 1u);
      EXPECT_EQ(got[static_cast<std::size_t>(src)][0],
                std::byte{static_cast<unsigned char>(src * 16 + comm.rank())});
    }
  });
}

TEST_P(CollectiveTest, GatherAndScatter) {
  const int ranks = GetParam();
  Cluster cluster(ranks, zero_cost());
  cluster.run([&](Communicator& comm) {
    const double mine = static_cast<double>(comm.rank() * 10);
    const std::vector<Payload> gathered =
        comm.gather(Communicator::as_bytes({&mine, 1}), 0);
    std::vector<Payload> chunks;
    if (comm.rank() == 0) {
      EXPECT_EQ(static_cast<int>(gathered.size()), ranks);
      for (int r = 0; r < ranks; ++r) {
        EXPECT_DOUBLE_EQ(
            Communicator::to_doubles(gathered[static_cast<std::size_t>(r)])[0],
            static_cast<double>(r * 10));
      }
      chunks = gathered;  // scatter them back
    }
    const Payload mine_back = comm.scatter(chunks, 0);
    EXPECT_DOUBLE_EQ(Communicator::to_doubles(mine_back)[0],
                     static_cast<double>(comm.rank() * 10));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(VirtualTime, ComputeAdvancesClock) {
  Cluster cluster(1, zero_cost());
  const Cluster::Result result = cluster.run([](Communicator& comm) {
    comm.compute(1000.0);
    comm.compute(500.0);
  });
  EXPECT_EQ(result.rank_virtual_ns[0], 1500u);
  EXPECT_EQ(result.makespan_virtual_ns, 1500u);
}

TEST(VirtualTime, ReceiverWaitsForSender) {
  // Rank 0 computes 1 ms then sends; rank 1 receives immediately. The
  // receiver's clock must end past the sender's send time plus latency.
  Cluster::Options options;
  options.model.latency_ns = 10'000;
  options.model.send_overhead_ns = 100;
  options.model.recv_overhead_ns = 100;
  Cluster cluster(2, options);
  const Cluster::Result result = cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.compute(1'000'000.0);
      comm.send_empty(1, 0);
    } else {
      comm.recv(0, 0);
    }
  });
  EXPECT_GE(result.rank_virtual_ns[1], 1'010'000u);
  EXPECT_LT(result.rank_virtual_ns[1], 1'100'000u);
}

TEST(VirtualTime, BarrierSynchronizesToSlowest) {
  Cluster cluster(4, zero_cost());
  const Cluster::Result result = cluster.run([](Communicator& comm) {
    comm.compute(1000.0 * (comm.rank() + 1));  // slowest = 4000 ns
    comm.barrier();
  });
  for (std::uint64_t t : result.rank_virtual_ns) {
    EXPECT_GE(t, 4000u);
  }
}

TEST(VirtualTime, MessageSizeCostsBandwidth) {
  Cluster::Options options;
  options.model.latency_ns = 0;
  options.model.send_overhead_ns = 0;
  options.model.recv_overhead_ns = 0;
  options.model.bandwidth_gbps = 8.0;  // 1 ns per byte
  Cluster cluster(2, options);
  const Cluster::Result result = cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(1000, 1.0);  // 8000 bytes -> 8000 ns
      comm.send_doubles(1, 0, big);
    } else {
      comm.recv(0, 0);
    }
  });
  EXPECT_GE(result.rank_virtual_ns[1], 8000u);
  EXPECT_LT(result.rank_virtual_ns[1], 9000u);
}

TEST(VirtualTime, DeterministicAcrossRuns) {
  // Same program, two runs: identical virtual times despite host
  // scheduling differences.
  auto program = [](Communicator& comm) {
    for (int i = 0; i < 20; ++i) {
      comm.compute(100.0 * (comm.rank() + 1));
      comm.allreduce(1.0, ReduceOp::kSum);
    }
  };
  Cluster::Options options;  // default (non-zero) model
  Cluster a(4, options);
  Cluster b(4, options);
  const auto ra = a.run(program);
  const auto rb = b.run(program);
  EXPECT_EQ(ra.rank_virtual_ns, rb.rank_virtual_ns);
}

TEST(Cluster, ExceptionPropagates) {
  Cluster cluster(2, zero_cost());
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    comm.barrier();
    if (comm.rank() == 1) throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace pythia::mpisim
