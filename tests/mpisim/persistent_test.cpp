// Tests for persistent channels and the prediction-guided optimizer.
#include <gtest/gtest.h>

#include <mutex>

#include "core/trace_io.hpp"
#include "mpisim/cluster.hpp"
#include "mpisim/persistent.hpp"

namespace pythia::mpisim {
namespace {

TEST(PersistentSend, CheaperPerMessageAfterSetup) {
  Cluster::Options options;  // default model
  Cluster cluster(2, options);
  std::uint64_t plain_ns = 0, persistent_ns = 0;
  cluster.run([&](Communicator& comm) {
    const std::vector<double> payload(8, 1.0);
    if (comm.rank() == 0) {
      const std::uint64_t start = comm.now_ns();
      for (int i = 0; i < 100; ++i) {
        comm.send_doubles(1, 0, payload);
      }
      plain_ns = comm.now_ns() - start;
      comm.setup_persistent();
      const std::uint64_t mid = comm.now_ns();
      for (int i = 0; i < 100; ++i) {
        comm.send_persistent(1, 1, Communicator::as_bytes(payload));
      }
      persistent_ns = comm.now_ns() - mid;
    } else {
      for (int i = 0; i < 100; ++i) comm.recv(0, 0);
      for (int i = 0; i < 100; ++i) comm.recv(0, 1);
    }
  });
  EXPECT_LT(persistent_ns, plain_ns / 2);
}

TEST(PersistentOptimizer, ConvertsRepeatingSendsOnly) {
  EventRegistry registry;
  SharedRegistry shared(registry);

  // Decisions are per *destination* (the paper's isend events carry the
  // peer rank, not the tag), so the one-shot must target a peer that is
  // not otherwise flooded: rank 0 halos to rank 1 but pings rank 2 once.
  auto program = [](PersistentSendOptimizer& opt, InstrumentedComm& mpi) {
    const std::vector<double> halo(16, 1.0);
    const std::vector<double> once(2, 0.0);
    for (int step = 0; step < 30; ++step) {
      if (mpi.rank() == 0) {
        opt.isend(1, 0, Communicator::as_bytes(halo));  // repeats 30x
      } else if (mpi.rank() == 1) {
        mpi.recv(0, 0);
      }
    }
    if (mpi.rank() == 0) {
      opt.isend(2, 9, Communicator::as_bytes(once));  // happens once
    } else if (mpi.rank() == 2) {
      mpi.recv(0, 9);
    }
    mpi.barrier();
  };

  // Record.
  std::vector<ThreadTrace> threads(3);
  {
    Cluster cluster(3);
    cluster.run([&](Communicator& comm) {
      Oracle oracle = Oracle::record(true);
      InstrumentedComm mpi(comm, oracle, shared);
      PersistentSendOptimizer optimizer(mpi);
      program(optimizer, mpi);
      threads[static_cast<std::size_t>(comm.rank())] = oracle.finish();
    });
  }

  // Predict: the halo send gets a channel, the one-shot does not.
  PersistentSendOptimizer::Stats stats;
  std::mutex mutex;
  {
    Cluster cluster(3);
    cluster.run([&](Communicator& comm) {
      const auto rank = static_cast<std::size_t>(comm.rank());
      Oracle oracle = Oracle::predict(threads[rank]);
      InstrumentedComm mpi(comm, oracle, shared);
      PersistentSendOptimizer optimizer(mpi);
      program(optimizer, mpi);
      if (comm.rank() == 0) {
        std::lock_guard lock(mutex);
        stats = optimizer.stats();
      }
    });
  }
  EXPECT_EQ(stats.sends, 31u);
  EXPECT_EQ(stats.channels, 1u);           // only the repeating send
  EXPECT_EQ(stats.persistent_sends, 30u);  // all 30 halo sends
}

TEST(PersistentOptimizer, NoOracleMeansNoChannels) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  Cluster cluster(2);
  PersistentSendOptimizer::Stats stats;
  std::mutex mutex;
  cluster.run([&](Communicator& comm) {
    Oracle oracle = Oracle::off();
    InstrumentedComm mpi(comm, oracle, shared);
    PersistentSendOptimizer optimizer(mpi);
    const std::vector<double> halo(16, 1.0);
    for (int step = 0; step < 20; ++step) {
      if (comm.rank() == 0) {
        optimizer.isend(1, 0, Communicator::as_bytes(halo));
      } else {
        mpi.recv(0, 0);
      }
    }
    mpi.barrier();
    if (comm.rank() == 0) {
      std::lock_guard lock(mutex);
      stats = optimizer.stats();
    }
  });
  EXPECT_EQ(stats.channels, 0u);
  EXPECT_EQ(stats.persistent_sends, 0u);
}

}  // namespace
}  // namespace pythia::mpisim
