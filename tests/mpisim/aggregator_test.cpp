// Tests for the prediction-guided send aggregator: correctness never
// depends on the oracle; batching saves virtual time when predictions
// hold and degrades gracefully when they do not.
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "core/trace_io.hpp"
#include "mpisim/aggregator.hpp"
#include "mpisim/cluster.hpp"

namespace pythia::mpisim {
namespace {

// Two ranks: rank 0 bursts fragments to rank 1; rank 1 receives them.
void burst_once(SendAggregator& agg, InstrumentedComm& mpi, int fragments,
                std::vector<double>* received) {
  const std::vector<double> payload = {1.0, 2.0, 3.0};
  if (mpi.rank() == 0) {
    for (int f = 0; f < fragments; ++f) {
      agg.isend(1, 100 + f, Communicator::as_bytes(payload));
    }
    agg.barrier();
  } else {
    agg.barrier();
    for (int f = 0; f < fragments; ++f) {
      const auto data = mpi.recv_doubles(0, 100 + f);
      received->insert(received->end(), data.begin(), data.end());
    }
  }
}

TEST(SendAggregator, DeliversEveryMessageWithoutOracle) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  Cluster cluster(2);
  std::vector<double> received;
  cluster.run([&](Communicator& comm) {
    Oracle oracle = Oracle::off();
    InstrumentedComm mpi(comm, oracle, shared);
    SendAggregator aggregator(mpi);
    burst_once(aggregator, mpi, 5, &received);
  });
  EXPECT_EQ(received.size(), 15u);  // 5 fragments x 3 doubles
}

TEST(SendAggregator, VanillaModeNeverBatches) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  Cluster cluster(2);
  SendAggregator::Stats stats;
  std::mutex mutex;
  cluster.run([&](Communicator& comm) {
    Oracle oracle = Oracle::off();
    InstrumentedComm mpi(comm, oracle, shared);
    SendAggregator aggregator(mpi);
    std::vector<double> sink;
    burst_once(aggregator, mpi, 5, &sink);
    if (comm.rank() == 0) {
      std::lock_guard lock(mutex);
      stats = aggregator.stats();
    }
  });
  EXPECT_EQ(stats.sends, 5u);
  EXPECT_EQ(stats.batches, 0u);  // no oracle, no lookahead, no batching
  EXPECT_EQ(stats.flushes, 5u);
}

TEST(SendAggregator, PredictionsEnableBatching) {
  EventRegistry registry;
  SharedRegistry shared(registry);

  auto program = [&](Communicator& comm, Oracle& oracle,
                     SendAggregator::Stats* stats_out) {
    InstrumentedComm mpi(comm, oracle, shared);
    SendAggregator aggregator(mpi);
    std::vector<double> sink;
    for (int round = 0; round < 20; ++round) {
      burst_once(aggregator, mpi, 6, &sink);
    }
    if (stats_out != nullptr) *stats_out = aggregator.stats();
  };

  // Record.
  std::vector<ThreadTrace> threads(2);
  {
    Cluster cluster(2);
    cluster.run([&](Communicator& comm) {
      Oracle oracle = Oracle::record(true);
      program(comm, oracle, nullptr);
      threads[static_cast<std::size_t>(comm.rank())] = oracle.finish();
    });
  }

  // Predict: bursts should batch.
  SendAggregator::Stats stats;
  std::mutex mutex;
  {
    Cluster cluster(2);
    cluster.run([&](Communicator& comm) {
      const auto rank = static_cast<std::size_t>(comm.rank());
      Oracle oracle = Oracle::predict(threads[rank]);
      SendAggregator::Stats local;
      program(comm, oracle, &local);
      if (comm.rank() == 0) {
        std::lock_guard lock(mutex);
        stats = local;
      }
    });
  }
  EXPECT_EQ(stats.sends, 120u);
  EXPECT_GT(stats.batches, 15u);          // most bursts rode a batch
  EXPECT_LT(stats.flushes, stats.sends);  // fewer wire transactions
  EXPECT_GT(stats.latency_saved, 80u);
}

TEST(SendAggregator, MispredictionOnlyFlushesEarly) {
  // Record bursts towards rank 1, then run a program that suddenly sends
  // to a different destination mid-burst: everything must still arrive.
  EventRegistry registry;
  SharedRegistry shared(registry);

  std::vector<ThreadTrace> threads(3);
  {
    Cluster cluster(3);
    cluster.run([&](Communicator& comm) {
      Oracle oracle = Oracle::record(true);
      InstrumentedComm mpi(comm, oracle, shared);
      SendAggregator aggregator(mpi);
      if (comm.rank() == 0) {
        const std::vector<double> payload = {9.0};
        for (int f = 0; f < 4; ++f) {
          aggregator.isend(1, f, Communicator::as_bytes(payload));
        }
        aggregator.barrier();
      } else {
        aggregator.barrier();
        if (comm.rank() == 1) {
          for (int f = 0; f < 4; ++f) comm.recv(0, f);
        }
      }
      threads[static_cast<std::size_t>(comm.rank())] = oracle.finish();
    });
  }

  std::vector<double> at_rank1, at_rank2;
  {
    Cluster cluster(3);
    cluster.run([&](Communicator& comm) {
      const auto rank = static_cast<std::size_t>(comm.rank());
      Oracle oracle = Oracle::predict(threads[rank]);
      InstrumentedComm mpi(comm, oracle, shared);
      SendAggregator aggregator(mpi);
      if (comm.rank() == 0) {
        const std::vector<double> payload = {9.0};
        // Burst interrupted by a surprise destination switch.
        aggregator.isend(1, 0, Communicator::as_bytes(payload));
        aggregator.isend(1, 1, Communicator::as_bytes(payload));
        aggregator.isend(2, 0, Communicator::as_bytes(payload));
        aggregator.isend(1, 2, Communicator::as_bytes(payload));
        aggregator.barrier();
      } else {
        aggregator.barrier();
        if (comm.rank() == 1) {
          for (int f = 0; f < 3; ++f) {
            const auto data = mpi.recv_doubles(0, f);
            at_rank1.insert(at_rank1.end(), data.begin(), data.end());
          }
        } else {
          at_rank2 = mpi.recv_doubles(0, 0);
        }
      }
    });
  }
  EXPECT_EQ(at_rank1.size(), 3u);
  EXPECT_EQ(at_rank2.size(), 1u);
}

TEST(SendBatch, CheaperThanIndividualSends) {
  // Virtual-cost check of the transport primitive itself.
  Cluster::Options options;
  options.model.latency_ns = 10'000;
  options.model.send_overhead_ns = 500;
  options.model.recv_overhead_ns = 500;
  auto run_with = [&](bool batch) {
    Cluster cluster(2, options);
    const auto result = cluster.run([&](Communicator& comm) {
      const std::vector<double> payload(16, 1.0);
      if (comm.rank() == 0) {
        if (batch) {
          std::vector<std::pair<int, Payload>> parts;
          for (int f = 0; f < 8; ++f) {
            const auto bytes = Communicator::as_bytes(payload);
            parts.emplace_back(f, Payload(bytes.begin(), bytes.end()));
          }
          comm.send_batch(1, parts);
        } else {
          for (int f = 0; f < 8; ++f) {
            comm.send_doubles(1, f, payload);
          }
        }
      } else {
        for (int f = 0; f < 8; ++f) comm.recv(0, f);
      }
    });
    return result.rank_virtual_ns[1];
  };
  const std::uint64_t individual = run_with(false);
  const std::uint64_t batched = run_with(true);
  EXPECT_LT(batched, individual);
}

TEST(PeerEncoding, RelativeOffsetsAreSizeIndependent) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  // Record the described stream of rank 0's ring exchange at two sizes;
  // with relative encoding both must be identical.
  auto run_ring = [&](int ranks) {
    std::vector<std::string> described;
    std::mutex mutex;
    Cluster cluster(ranks);
    cluster.run([&](Communicator& comm) {
      Oracle oracle = Oracle::record(false);
      InstrumentedComm mpi(comm, oracle, shared, nullptr,
                           PeerEncoding::kRelative);
      const int left = (comm.rank() + comm.size() - 1) % comm.size();
      const int right = (comm.rank() + 1) % comm.size();
      const std::vector<double> halo(4, 1.0);
      for (int i = 0; i < 5; ++i) {
        Request recv = mpi.irecv(left, 0);
        mpi.send_doubles(right, 0, halo);
        mpi.wait(recv);
      }
      if (comm.rank() == 0) {
        ThreadTrace trace = oracle.finish();
        std::lock_guard lock(mutex);
        for (TerminalId t : trace.grammar.unfold()) {
          described.push_back(registry.describe(t));
        }
      }
    });
    return described;
  };
  EXPECT_EQ(run_ring(4), run_ring(8));
}

}  // namespace
}  // namespace pythia::mpisim
