// Tests for the classic-Sequitur baseline, plus head-to-head properties
// against the exponent grammar (the paper's reason for extending it).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grammar.hpp"
#include "core/sequitur_classic.hpp"
#include "support/rng.hpp"

namespace pythia::baseline {
namespace {

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

void expect_roundtrip(const std::string& letters) {
  ClassicSequitur sequitur;
  for (TerminalId t : ids(letters)) sequitur.append(t);
  sequitur.check_invariants();
  EXPECT_EQ(sequitur.unfold(), ids(letters))
      << letters << "\n" << sequitur.to_text();
}

TEST(ClassicSequitur, HandCheckedSequences) {
  expect_roundtrip("a");
  expect_roundtrip("ab");
  expect_roundtrip("aaa");
  expect_roundtrip("aaaa");
  expect_roundtrip("abab");
  expect_roundtrip("ababab");
  expect_roundtrip("abcabc");
  expect_roundtrip("abbcbcab");     // paper fig. 1 trace
  expect_roundtrip("abcabdababc");  // paper fig. 4 trace
  expect_roundtrip("aabbaabb");
  expect_roundtrip("abcbcbc");
}

TEST(ClassicSequitur, TextbookExample) {
  // The canonical N&W example: "abcabdabcabd" compresses to nested rules.
  ClassicSequitur sequitur;
  for (TerminalId t : ids("abcabdabcabd")) sequitur.append(t);
  sequitur.check_invariants();
  EXPECT_EQ(sequitur.unfold(), ids("abcabdabcabd"));
  EXPECT_GE(sequitur.rule_count(), 3u);  // root + ab + (abc abd group)
}

TEST(ClassicSequitur, ExhaustiveBinaryLength10) {
  for (int length = 1; length <= 10; ++length) {
    for (std::uint32_t bits = 0; bits < (1u << length); ++bits) {
      ClassicSequitur sequitur;
      std::vector<TerminalId> sequence;
      for (int i = 0; i < length; ++i) {
        const TerminalId t = (bits >> i) & 1u;
        sequence.push_back(t);
        sequitur.append(t);
      }
      sequitur.check_invariants();
      ASSERT_EQ(sequitur.unfold(), sequence)
          << "bits=" << bits << " len=" << length << "\n"
          << sequitur.to_text();
    }
  }
}

TEST(ClassicSequitur, RandomRoundTrips) {
  support::Rng rng(77);
  for (int round = 0; round < 60; ++round) {
    const int alphabet = 2 + static_cast<int>(rng.below(5));
    const int length = 10 + static_cast<int>(rng.below(400));
    ClassicSequitur sequitur;
    std::vector<TerminalId> sequence;
    for (int i = 0; i < length; ++i) {
      const auto t = static_cast<TerminalId>(rng.below(alphabet));
      sequence.push_back(t);
      sequitur.append(t);
    }
    sequitur.check_invariants();
    ASSERT_EQ(sequitur.unfold(), sequence);
  }
}

// --- the ablation the exponent grammar exists for --------------------------

TEST(ExponentAblation, LoopsCostClassicSequiturLogRules) {
  // 1024 iterations of a 4-event body.
  std::vector<TerminalId> trace;
  for (int i = 0; i < 1024; ++i) {
    for (TerminalId t : {0u, 1u, 2u, 3u}) trace.push_back(t);
  }

  ClassicSequitur classic;
  for (TerminalId t : trace) classic.append(t);
  classic.check_invariants();

  Grammar exponents;
  for (TerminalId t : trace) exponents.append(t);
  exponents.check_invariants();

  EXPECT_EQ(classic.unfold(), trace);
  EXPECT_EQ(exponents.unfold(), trace);

  // The exponent grammar keeps the loop as one occurrence (A^1024 plus
  // the body rule); classic Sequitur builds a log-depth doubling chain.
  EXPECT_LE(exponents.rule_count(), 3u);
  EXPECT_GE(classic.rule_count(), 8u);
  std::size_t exponent_nodes = 0;
  for (const Rule* rule : exponents.rules()) exponent_nodes += rule->length;
  EXPECT_LT(exponent_nodes, classic.node_count());
}

TEST(ExponentAblation, RunsOfOneSymbol) {
  // a^5000: one node with exponent vs a doubling chain.
  ClassicSequitur classic;
  Grammar exponents;
  for (int i = 0; i < 5000; ++i) {
    classic.append(7);
    exponents.append(7);
  }
  classic.check_invariants();
  exponents.check_invariants();
  EXPECT_EQ(exponents.rule_count(), 1u);
  EXPECT_EQ(exponents.root()->length, 1u);
  EXPECT_GT(classic.rule_count(), 4u);
}

TEST(ExponentAblation, BothRepresentIrregularTracesCorrectly) {
  support::Rng rng(2024);
  std::vector<TerminalId> trace;
  for (int i = 0; i < 2000; ++i) {
    trace.push_back(static_cast<TerminalId>(rng.below(6)));
  }
  ClassicSequitur classic;
  Grammar exponents;
  for (TerminalId t : trace) {
    classic.append(t);
    exponents.append(t);
  }
  EXPECT_EQ(classic.unfold(), trace);
  EXPECT_EQ(exponents.unfold(), trace);
}

}  // namespace
}  // namespace pythia::baseline
