// Property tests for the grammar: for any event sequence,
//   unfold(reduce(seq)) == seq   and all three invariants hold
// after every single append. Sequences are drawn from generators that
// stress the reduction: small alphabets, heavy repetition, nested loops,
// runs, and structured program-like traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/grammar.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

using support::Rng;

struct GeneratorCase {
  std::string name;
  int alphabet;
  int length;
  int style;  // 0 uniform, 1 runs, 2 loops, 3 nested loops, 4 markov
};

std::vector<TerminalId> generate(const GeneratorCase& spec,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TerminalId> out;
  out.reserve(static_cast<std::size_t>(spec.length));
  switch (spec.style) {
    case 0:  // uniform random
      while (out.size() < static_cast<std::size_t>(spec.length))
        out.push_back(static_cast<TerminalId>(rng.below(spec.alphabet)));
      break;
    case 1:  // random runs: symbol repeated 1..8 times
      while (out.size() < static_cast<std::size_t>(spec.length)) {
        const auto sym = static_cast<TerminalId>(rng.below(spec.alphabet));
        const auto run = 1 + rng.below(8);
        for (std::uint64_t i = 0;
             i < run && out.size() < static_cast<std::size_t>(spec.length);
             ++i)
          out.push_back(sym);
      }
      break;
    case 2: {  // flat loops: random body repeated many times
      while (out.size() < static_cast<std::size_t>(spec.length)) {
        const auto body_len = 1 + rng.below(5);
        std::vector<TerminalId> body;
        for (std::uint64_t i = 0; i < body_len; ++i)
          body.push_back(static_cast<TerminalId>(rng.below(spec.alphabet)));
        const auto reps = 1 + rng.below(10);
        for (std::uint64_t r = 0;
             r < reps && out.size() < static_cast<std::size_t>(spec.length);
             ++r)
          for (TerminalId t : body) out.push_back(t);
      }
      break;
    }
    case 3: {  // nested loops, program-like
      const auto inner_len = 1 + rng.below(3);
      std::vector<TerminalId> inner;
      for (std::uint64_t i = 0; i < inner_len; ++i)
        inner.push_back(static_cast<TerminalId>(rng.below(spec.alphabet)));
      while (out.size() < static_cast<std::size_t>(spec.length)) {
        const auto inner_reps = 1 + rng.below(6);
        for (std::uint64_t r = 0; r < inner_reps; ++r)
          for (TerminalId t : inner) out.push_back(t);
        out.push_back(static_cast<TerminalId>(rng.below(spec.alphabet)));
      }
      out.resize(static_cast<std::size_t>(spec.length));
      break;
    }
    case 4: {  // sticky markov chain: repeats previous symbol often
      TerminalId prev = 0;
      while (out.size() < static_cast<std::size_t>(spec.length)) {
        if (!out.empty() && rng.chance(0.6)) {
          out.push_back(prev);
        } else {
          prev = static_cast<TerminalId>(rng.below(spec.alphabet));
          out.push_back(prev);
        }
      }
      break;
    }
    default:
      break;
  }
  return out;
}

class GrammarProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GrammarProperty, RoundTripAndInvariants) {
  const auto [alphabet, length, style, seed] = GetParam();
  GeneratorCase spec{"param", alphabet, length, style};
  const std::vector<TerminalId> seq =
      generate(spec, static_cast<std::uint64_t>(seed) * 7919u + 13u);

  Grammar grammar;
  // Check invariants continuously on short sequences; on longer ones,
  // checking every step would be quadratic, so check periodically.
  const std::size_t check_every = seq.size() <= 64 ? 1 : seq.size() / 16;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    grammar.append(seq[i]);
    if (i % check_every == 0) grammar.check_invariants();
  }
  grammar.check_invariants();
  ASSERT_EQ(grammar.sequence_length(), seq.size());
  EXPECT_EQ(grammar.unfold(), seq) << grammar.to_text();
}

INSTANTIATE_TEST_SUITE_P(
    SmallAlphabetShort, GrammarProperty,
    ::testing::Combine(::testing::Values(1, 2, 3),       // alphabet
                       ::testing::Values(8, 24, 60),     // length
                       ::testing::Values(0, 1, 2, 3, 4),  // style
                       ::testing::Range(0, 6)));          // seeds

INSTANTIATE_TEST_SUITE_P(
    WiderAlphabetLonger, GrammarProperty,
    ::testing::Combine(::testing::Values(4, 8),
                       ::testing::Values(200, 1000),
                       ::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Range(0, 3)));

TEST(GrammarStress, ExhaustiveBinarySequences) {
  // Every binary sequence of length <= 12 must round-trip with invariants
  // intact after every single append.
  for (int length = 1; length <= 12; ++length) {
    for (std::uint32_t bits = 0; bits < (1u << length); ++bits) {
      Grammar grammar;
      std::vector<TerminalId> seq;
      for (int i = 0; i < length; ++i) {
        const TerminalId t = (bits >> i) & 1u;
        seq.push_back(t);
        grammar.append(t);
        grammar.check_invariants();
      }
      ASSERT_EQ(grammar.unfold(), seq)
          << "bits=" << bits << " len=" << length << "\n"
          << grammar.to_text();
    }
  }
}

TEST(GrammarStress, ExhaustiveTernarySequencesLength8) {
  std::vector<TerminalId> seq(8);
  for (std::uint32_t code = 0; code < 6561; ++code) {  // 3^8
    std::uint32_t c = code;
    Grammar grammar;
    for (int i = 0; i < 8; ++i) {
      seq[static_cast<std::size_t>(i)] = c % 3;
      c /= 3;
      grammar.append(seq[static_cast<std::size_t>(i)]);
    }
    grammar.check_invariants();
    ASSERT_EQ(grammar.unfold(), seq) << "code=" << code;
  }
}

TEST(GrammarStress, LargeStructuredTrace) {
  // A BT-like trace: init, 200 iterations of (exchange pattern), finale —
  // at scale. 200'000+ events must reduce to a handful of rules quickly.
  Grammar grammar;
  auto emit = [&](TerminalId t) { grammar.append(t); };
  for (int i = 0; i < 6; ++i) emit(10);  // Bcast x6
  emit(11);                              // Barrier
  for (int iter = 0; iter < 20000; ++iter) {
    for (TerminalId t : {0u, 1u, 2u, 3u, 4u}) emit(t);  // halo exchange
    emit(5u);
    emit(5u);  // Wait^2
  }
  emit(12);  // Allreduce
  emit(12);
  emit(13);  // Reduce
  emit(11);  // Barrier
  grammar.check_invariants();
  EXPECT_EQ(grammar.sequence_length(), 6u + 1u + 20000u * 7u + 4u);
  EXPECT_LE(grammar.rule_count(), 8u);
}

}  // namespace
}  // namespace pythia
