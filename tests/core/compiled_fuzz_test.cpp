// Compiled-section loader fuzzing: whatever happens to the bytes of a
// compiled section — bit flips, truncation, splices, pure garbage — a
// salvage load must come back with the thread intact and served by the
// interpreted engine (or, rarely, a compiled artifact that still passed
// every checksum and structural check). Never a crash, never a hang,
// never an Oracle that answers from corrupt tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/compile.hpp"
#include "core/oracle.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(input),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream output(path, std::ios::binary | std::ios::trunc);
  output.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
}

/// Locates the byte span of the trailing compiled region (first kind-3
/// section header to EOF) by walking the section framing.
std::size_t compiled_region_begin(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 8;
  while (offset + 16 <= bytes.size()) {
    std::uint32_t kind = 0;
    std::uint32_t size = 0;
    std::memcpy(&kind, &bytes[offset], 4);
    std::memcpy(&size, &bytes[offset + 4], 4);
    if (kind == 3) return offset;
    offset += 16 + size;
  }
  return bytes.size();
}

TEST(CompiledFuzz, CorruptionCorpusDegradesToInterpretedNeverCrashes) {
  // One recorded thread with a rich grammar + timing model.
  Trace trace;
  trace.registry.intern("a");
  trace.registry.intern("b");
  trace.registry.intern("c");
  trace.registry.intern("d");
  support::Rng source(0xF00D);
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (int i = 0; i < 400; ++i) {
    recorder.record(static_cast<TerminalId>(source.below(4)),
                    now += 100 + source.below(300));
  }
  trace.threads.push_back(std::move(recorder).finish());
  const std::string path = temp_path("compiled_fuzz.pythia");
  trace.save(path);

  const std::vector<std::uint8_t> pristine = file_bytes(path);
  const std::size_t region = compiled_region_begin(pristine);
  ASSERT_LT(region, pristine.size()) << "file must carry a compiled section";
  const std::vector<TerminalId> reference =
      trace.threads[0].grammar.unfold();

  int served_compiled = 0;
  int served_interpreted = 0;
  int dropped_artifacts = 0;
  constexpr int kSeeds = 1100;
  support::Rng rng(0xC0DE);
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::vector<std::uint8_t> bytes = pristine;
    // Aim squarely at the compiled region: flips inside it (most seeds),
    // truncation of the tail, or garbage splices over it.
    const std::uint64_t mode = rng.below(10);
    if (mode < 7) {
      const int flips = 1 + static_cast<int>(rng.below(16));
      for (int f = 0; f < flips; ++f) {
        const std::size_t offset =
            region + rng.below(bytes.size() - region);
        bytes[offset] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
    } else if (mode < 9) {
      bytes.resize(region + rng.below(bytes.size() - region + 1));
    } else {
      const std::size_t begin = region + rng.below(bytes.size() - region);
      const std::size_t length =
          std::min<std::size_t>(1 + rng.below(256), bytes.size() - begin);
      for (std::size_t i = 0; i < length; ++i) {
        bytes[begin + i] = static_cast<std::uint8_t>(rng.below(256));
      }
    }
    write_bytes(path, bytes);

    // Salvage load: must succeed — the damage is strictly behind the
    // thread sections.
    const Result<Trace> loaded = Trace::try_load(path);
    ASSERT_TRUE(loaded.ok())
        << "seed " << seed << ": " << loaded.status().to_string();
    const Trace& salvaged = loaded.value();
    ASSERT_EQ(salvaged.threads.size(), 1u) << "seed " << seed;
    ASSERT_TRUE(salvaged.thread_ok(0)) << "seed " << seed;

    // Whatever engine survived must predict — and predict correctly.
    // (A compiled artifact may survive when the flips landed in padding
    // or in slack bytes; then it passed every checksum and is safe.)
    Oracle oracle = Oracle::predict(salvaged.threads[0]);
    if (oracle.using_compiled()) {
      ++served_compiled;
    } else {
      ++served_interpreted;
      if (!salvaged.compiled_status.empty() &&
          !salvaged.compiled_status[0].ok()) {
        ++dropped_artifacts;
        EXPECT_FALSE(salvaged.compiled_status[0].message().empty());
      }
    }
    for (std::size_t i = 0; i < 32; ++i) oracle.event(reference[i]);
    const auto next = oracle.predict_event(1);
    ASSERT_TRUE(next.has_value()) << "seed " << seed;
    EXPECT_EQ(next->event, reference[32]) << "seed " << seed;
  }

  // The corpus must actually exercise the degrade path (and not, say,
  // miss the compiled section entirely).
  EXPECT_GT(served_interpreted, kSeeds / 2);
  EXPECT_GT(dropped_artifacts, kSeeds / 2);
  std::remove(path.c_str());
}

TEST(CompiledFuzz, RawBlobParseNeverCrashes) {
  // Direct CompiledView::parse fuzzing, unframed: random mutations of a
  // valid blob plus outright garbage. parse must return a Status, never
  // crash, and every accepted blob must have passed its checksums.
  Recorder recorder;
  support::Rng source(0xB10B);
  for (int i = 0; i < 300; ++i) {
    recorder.record(static_cast<TerminalId>(source.below(5)));
  }
  ThreadTrace thread = std::move(recorder).finish();
  ASSERT_TRUE(thread.compile());
  const std::vector<unsigned char> pristine = thread.compiled_blob;

  support::Rng rng(0x5EED);
  int rejected = 0;
  for (int seed = 0; seed < 1000; ++seed) {
    std::vector<unsigned char> blob = pristine;
    const std::uint64_t mode = rng.below(4);
    if (mode == 0) {
      blob.resize(rng.below(blob.size() + 1));
    } else {
      const int flips = 1 + static_cast<int>(rng.below(32));
      for (int f = 0; f < flips && !blob.empty(); ++f) {
        blob[rng.below(blob.size())] ^=
            static_cast<unsigned char>(1 + rng.below(255));
      }
    }
    const Result<CompiledView> view =
        CompiledView::parse(blob.data(), blob.size());
    if (!view.ok()) ++rejected;
  }
  EXPECT_GT(rejected, 900);  // flips overwhelmingly hit checksummed bytes
}

}  // namespace
}  // namespace pythia
