// FlatMap correctness: differential fuzz against std::unordered_map plus
// deterministic backward-shift deletion edge cases (the one part of an
// open-addressing table that is easy to get subtly wrong), and a grammar
// fuzz that cross-checks the flattened occurrence index against the
// grammar's own structure.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/grammar.hpp"
#include "support/flat_map.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

using support::FlatMap;
using support::Rng;

TEST(FlatMap, InsertFindOverwriteErase) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7u), nullptr);

  map.insert_or_assign(7, 70);
  map.insert_or_assign(8, 80);
  ASSERT_NE(map.find(7u), nullptr);
  EXPECT_EQ(*map.find(7u), 70);
  EXPECT_EQ(map.size(), 2u);

  map.insert_or_assign(7, 71);  // overwrite, not duplicate
  EXPECT_EQ(*map.find(7u), 71);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_EQ(map.find(7u), nullptr);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(8));
}

TEST(FlatMap, KeyZeroIsOrdinary) {
  // used_ flags mean key 0 needs no sentinel treatment; prove it.
  FlatMap<std::uint64_t, int> map;
  map.insert_or_assign(0, 42);
  ASSERT_NE(map.find(0u), nullptr);
  EXPECT_EQ(*map.find(0u), 42);
  EXPECT_TRUE(map.erase(0));
  EXPECT_EQ(map.find(0u), nullptr);
}

TEST(FlatMap, EraseIfChecksValue) {
  FlatMap<std::uint64_t, int> map;
  map.insert_or_assign(5, 50);
  EXPECT_FALSE(map.erase_if(5, [](int v) { return v == 99; }));
  EXPECT_TRUE(map.contains(5));
  EXPECT_TRUE(map.erase_if(5, [](int v) { return v == 50; }));
  EXPECT_FALSE(map.contains(5));
  EXPECT_FALSE(map.erase_if(5, [](int) { return true; }));  // absent
}

TEST(FlatMap, GrowPreservesEntries) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t k = 0; k < 1000; ++k) map.insert_or_assign(k, k * k);
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k * k);
  }
}

// Identity hash exposes the raw probe sequence, letting the tests place
// keys in chosen slots (home slot = key % capacity, capacity 16 initially).
struct IdentityHash {
  std::uint64_t operator()(std::uint64_t key) const { return key; }
};
using ProbeMap = FlatMap<std::uint64_t, int, IdentityHash>;

TEST(FlatMap, BackwardShiftClosesCollisionCluster) {
  // Keys 1, 17, 33 all home at slot 1 -> occupy slots 1, 2, 3. Erasing
  // the head must shift both displaced entries back or lookups would hit
  // the empty slot and stop early.
  ProbeMap map;
  map.insert_or_assign(1, 10);
  map.insert_or_assign(17, 170);
  map.insert_or_assign(33, 330);
  ASSERT_TRUE(map.erase(1));
  ASSERT_NE(map.find(17u), nullptr);
  EXPECT_EQ(*map.find(17u), 170);
  ASSERT_NE(map.find(33u), nullptr);
  EXPECT_EQ(*map.find(33u), 330);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, BackwardShiftSkipsEntriesAtHome) {
  // Slot layout: 1 -> key 1 (home), 2 -> key 2 (home), 3 -> key 17
  // (displaced from 1). Erasing key 1 must NOT move key 2 (it is at its
  // home slot) but must still pull 17 across it into the hole.
  ProbeMap map;
  map.insert_or_assign(1, 10);
  map.insert_or_assign(2, 20);
  map.insert_or_assign(17, 170);
  ASSERT_TRUE(map.erase(1));
  ASSERT_NE(map.find(2u), nullptr);
  EXPECT_EQ(*map.find(2u), 20);
  ASSERT_NE(map.find(17u), nullptr);
  EXPECT_EQ(*map.find(17u), 170);
}

TEST(FlatMap, BackwardShiftWrapsAroundTableEnd) {
  // Keys 15, 31, 47 home at slot 15 of a 16-slot table -> slots 15, 0, 1.
  // The shift arithmetic must treat the wrap correctly in both the probe
  // and the (slot - home) distance computation.
  ProbeMap map;
  map.insert_or_assign(15, 1);
  map.insert_or_assign(31, 2);
  map.insert_or_assign(47, 3);
  ASSERT_TRUE(map.erase(15));
  EXPECT_EQ(*map.find(31u), 2);
  EXPECT_EQ(*map.find(47u), 3);
  ASSERT_TRUE(map.erase(31));
  EXPECT_EQ(*map.find(47u), 3);
}

// Grows then shrinks the key space so the fuzz revisits dense clusters.
std::uint64_t striding(int step) {
  return 64 + static_cast<std::uint64_t>((step / 1000) % 7) * 97;
}

TEST(FlatMap, DifferentialFuzzAgainstUnorderedMap) {
  // Small key space forces constant collision, reinsertion after erase,
  // clustering, and several grows; every operation's result and the full
  // table contents are checked against std::unordered_map.
  Rng rng(0xF1A7F1A7ULL);
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;

  for (int step = 0; step < 100000; ++step) {
    const std::uint64_t key = rng.below(striding(step));
    switch (rng.below(5)) {
      case 0:
      case 1: {  // insert / overwrite
        const std::uint64_t value = rng();
        map.insert_or_assign(key, value);
        ref[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      }
      case 3: {  // conditional erase
        const auto it = ref.find(key);
        const bool should = it != ref.end() && (it->second & 1) == 0;
        EXPECT_EQ(map.erase_if(
                      key, [](std::uint64_t v) { return (v & 1) == 0; }),
                  should);
        if (should) ref.erase(it);
        break;
      }
      default: {  // lookup
        const std::uint64_t* found = map.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end()) << "key " << key;
        if (found != nullptr) EXPECT_EQ(*found, it->second);
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size());

    if (step % 10000 == 9999) {
      // Full-content sweep: every table entry must exist in the reference.
      std::size_t visited = 0;
      map.for_each([&](std::uint64_t k, std::uint64_t v) {
        const auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
        ++visited;
      });
      EXPECT_EQ(visited, ref.size());
    }
  }
}

TEST(FlatMapGrammar, OccurrenceIndexMatchesGrammarStructure) {
  // Fuzz the flattened occurrence index: for random traces, the spans
  // returned by occurrences_of() must (a) pass check_invariants, (b)
  // cover every terminal exactly once across all spans, and (c) expand —
  // weighting each node by exp * owner occurrences — to the trace's
  // per-terminal counts.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 0x9E3779B9ULL);
    const std::uint64_t alphabet = 2 + rng.below(12);
    std::vector<TerminalId> trace;
    const std::size_t length = 200 + rng.below(3000);
    while (trace.size() < length) {
      if (rng.chance(0.5) && !trace.empty()) {
        // replay a recent window to provoke rules
        const std::size_t window = 1 + rng.below(8);
        const std::size_t start =
            trace.size() > window ? trace.size() - window : 0;
        const std::size_t end = trace.size();
        for (std::size_t i = start; i < end && trace.size() < length; ++i) {
          trace.push_back(trace[i]);
        }
      } else {
        trace.push_back(static_cast<TerminalId>(rng.below(alphabet)));
      }
    }

    Grammar grammar;
    for (TerminalId t : trace) grammar.append(t);
    grammar.finalize();
    grammar.check_invariants();

    std::vector<std::uint64_t> expected(alphabet, 0);
    for (TerminalId t : trace) ++expected[t];

    std::size_t nodes_spanned = 0;
    for (TerminalId t = 0; t < alphabet; ++t) {
      std::uint64_t unfolded = 0;
      for (const Node* node : grammar.occurrences_of(t)) {
        ASSERT_TRUE(node->sym.is_terminal());
        ASSERT_EQ(node->sym.terminal_id(), t);
        unfolded += node->exp * node->owner->occurrences;
        ++nodes_spanned;
      }
      EXPECT_EQ(unfolded, expected[t]) << "seed " << seed << " terminal "
                                       << t;
    }
    // Spans must partition the terminal nodes: no terminal node of any
    // live rule may be missing or double-counted.
    std::size_t terminal_nodes = 0;
    for (const Rule* rule : grammar.rules()) {
      for (const Node* node = rule->head; node != nullptr;
           node = node->next) {
        if (node->sym.is_terminal()) ++terminal_nodes;
      }
    }
    EXPECT_EQ(nodes_spanned, terminal_nodes) << "seed " << seed;

    // Out-of-range terminals yield empty spans, not UB.
    EXPECT_TRUE(grammar.occurrences_of(
        static_cast<TerminalId>(alphabet + 100)).empty());
  }
}

}  // namespace
}  // namespace pythia
