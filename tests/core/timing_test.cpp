// Timing model tests: context-sensitive duration learning and prediction
// (paper §II-C, fig. 6).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grammar.hpp"
#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "core/timing.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

TEST(TimingModel, ReplayLearnsConstantGaps) {
  // Events every 100 ns; any expectation must be 100 ns.
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 1000;
  for (int i = 0; i < 30; ++i) {
    recorder.record(i % 3, now);
    now += 100;
  }
  ThreadTrace trace = std::move(recorder).finish();
  EXPECT_FALSE(trace.timing.empty());
  EXPECT_NEAR(trace.timing.global_mean_ns(), 100.0, 5.0);

  Predictor predictor(trace.grammar, &trace.timing);
  predictor.observe(0);
  predictor.observe(1);
  auto eta = predictor.predict_time_ns(1);
  ASSERT_TRUE(eta.has_value());
  EXPECT_NEAR(*eta, 100.0, 1.0);
  auto eta4 = predictor.predict_time_ns(4);
  ASSERT_TRUE(eta4.has_value());
  EXPECT_NEAR(*eta4, 400.0, 4.0);
}

TEST(TimingModel, ContextSensitiveDurations) {
  // Trace: (a b)^16 (a c)^16 — wait, that would change the grammar; use
  // a fixed structure where the same event pair has different durations
  // in different contexts: (ab)^20 then (ab)^20 again but slower inside a
  // different enclosing phase marked by events x / y.
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  auto emit = [&](TerminalId t, std::uint64_t gap) {
    now += gap;
    recorder.record(t, now);
  };
  // Phase 1: x then 20*(a b) with b following a after 10 ns.
  emit(23, 100);
  for (int i = 0; i < 20; ++i) {
    emit(0, 50);
    emit(1, 10);
  }
  // Phase 2: y then 20*(a b) with b following a after 500 ns.
  emit(24, 100);
  for (int i = 0; i < 20; ++i) {
    emit(0, 50);
    emit(1, 500);
  }
  ThreadTrace trace = std::move(recorder).finish();
  Predictor predictor(trace.grammar, &trace.timing);

  // Observe into phase 1 and ask for the time to the next event (b).
  std::vector<TerminalId> prefix = {23, 0, 1, 0, 1, 0};
  for (TerminalId t : prefix) predictor.observe(t);
  auto eta1 = predictor.predict_time_ns(1);
  ASSERT_TRUE(eta1.has_value());
  // Phase-1 "b after a" is 10 ns; the context-free average would be 255.
  EXPECT_LT(*eta1, 100.0);

  // Drive the same predictor into phase 2.
  std::vector<TerminalId> tail = {1};
  for (int i = 0; i < 14; ++i) {
    tail.push_back(0);
    tail.push_back(1);
  }
  tail.push_back(24);
  tail.push_back(0);
  tail.push_back(1);
  tail.push_back(0);
  for (TerminalId t : tail) predictor.observe(t);
  auto eta2 = predictor.predict_time_ns(1);
  ASSERT_TRUE(eta2.has_value());
  EXPECT_GT(*eta2, 300.0);
}

TEST(TimingModel, EmptyModelGivesNoEstimate) {
  Grammar grammar;
  for (TerminalId t : ids("abab")) grammar.append(t);
  grammar.finalize();
  TimingModel timing;
  Predictor predictor(grammar, &timing);
  predictor.observe(0);
  EXPECT_FALSE(predictor.predict_time_ns(1).has_value());
}

TEST(TimingModel, ReplayRejectsDivergentLog) {
  Grammar grammar;
  for (TerminalId t : ids("abab")) grammar.append(t);
  grammar.finalize();
  const std::vector<TerminalId> wrong = ids("abba");
  const std::vector<std::uint64_t> times = {0, 1, 2, 3};
  EXPECT_DEATH(TimingModel::replay(grammar, wrong, times), "diverges");
}

TEST(TimingModel, StatsAccumulate) {
  TimingModel model;
  Grammar grammar;
  for (TerminalId t : ids("abab")) grammar.append(t);
  grammar.finalize();
  ProgressPath path = ProgressPath::begin(grammar);
  model.add_sample(path, 100.0);
  model.add_sample(path, 200.0);
  EXPECT_FALSE(model.empty());
  auto expected = model.expect_ns(path);
  ASSERT_TRUE(expected.has_value());
  EXPECT_NEAR(*expected, 150.0, 1e-9);
}

}  // namespace
}  // namespace pythia
