// Scenario tests for the predictor: repetition phases, branch
// probabilities, candidate management, and cross-trace behaviours beyond
// the basic cases in predictor_test.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grammar.hpp"
#include "core/predictor.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

Grammar reduce(const std::string& letters) {
  Grammar grammar;
  for (TerminalId t : ids(letters)) grammar.append(t);
  grammar.finalize();
  return grammar;
}

TEST(PredictorScenario, RunPhaseDisambiguation) {
  // Reference: a^5 b, repeated. Anchoring mid-run on 'a' is ambiguous
  // (could be any of the five repetitions); the end-of-run candidate
  // lets the oracle predict 'b' once the run ends.
  std::string trace;
  for (int i = 0; i < 12; ++i) trace += "aaaaab";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);

  // Observe exactly a full run of a's from the start of a block: after
  // the 5th 'a', the next event must be 'b'.
  predictor.observe(1);  // b — anchors at end of a block
  for (int i = 0; i < 5; ++i) predictor.observe(0);
  auto prediction = predictor.predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->event, 1u);  // b
}

TEST(PredictorScenario, LongRunMidPhaseTolerance) {
  // With a run of 100 identical events, candidates must survive being
  // anchored mid-run: observing several a's keeps the oracle synchronized
  // and predicting 'a'.
  std::string trace;
  for (int i = 0; i < 5; ++i) {
    trace += std::string(100, 'a');
    trace += "b";
  }
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  predictor.observe(0);
  for (int i = 0; i < 30; ++i) {
    predictor.observe(0);
    ASSERT_TRUE(predictor.synchronized());
    auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value());
    EXPECT_EQ(prediction->event, 0u);  // deep inside the run: more a's
  }
}

TEST(PredictorScenario, BranchProbabilitiesAtDepth) {
  // After "xy", the reference continues with "p" 3 times out of 4 and
  // "q" once. predict(1) from a fresh anchor on y must weight p : q = 3.
  std::string trace;
  for (int i = 0; i < 3; ++i) trace += "xyp";
  trace += "xyq";
  for (int i = 0; i < 3; ++i) trace += "xyp";
  trace += "xyq";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  predictor.observe(static_cast<TerminalId>('x' - 'a'));
  predictor.observe(static_cast<TerminalId>('y' - 'a'));
  auto distribution = predictor.predict_distribution(1);
  ASSERT_GE(distribution.size(), 2u);
  EXPECT_EQ(distribution[0].event, static_cast<TerminalId>('p' - 'a'));
  EXPECT_GT(distribution[0].probability, 0.6);
  EXPECT_LT(distribution[0].probability, 0.95);
  EXPECT_EQ(distribution[1].event, static_cast<TerminalId>('q' - 'a'));
}

TEST(PredictorScenario, DistancePastLoopBoundary) {
  // 20 iterations of "abc" then a distinct finale "xyz": predictions
  // across the boundary from inside the loop are only correct once the
  // oracle knows which iteration it is in.
  std::string trace;
  for (int i = 0; i < 20; ++i) trace += "abc";
  trace += "xyz";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  const std::vector<TerminalId> seq = ids(trace);
  // Track from the very beginning: full knowledge.
  for (std::size_t i = 0; i < 10; ++i) predictor.observe(seq[i]);
  // At index 9 (inside iteration 4), the event 51 steps ahead is 'x'.
  const std::size_t target = 9 + 51;
  ASSERT_LT(target, seq.size());
  auto prediction = predictor.predict(51);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->event, seq[target]);
}

TEST(PredictorScenario, ZeroWeightNeverDivides) {
  // A grammar whose candidates all run off the end must yield an empty
  // distribution, not a NaN.
  Grammar grammar = reduce("abc");
  Predictor predictor(grammar);
  predictor.observe(2);  // 'c' — the final event
  EXPECT_TRUE(predictor.synchronized());
  EXPECT_TRUE(predictor.predict_distribution(1).empty());
  EXPECT_FALSE(predictor.predict(5).has_value());
}

TEST(PredictorScenario, InterleavedReanchoring) {
  // Alternating known/unknown events: the oracle must flip between
  // synchronized and dark without corrupting its statistics.
  std::string trace;
  for (int i = 0; i < 10; ++i) trace += "ab";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  for (int round = 0; round < 5; ++round) {
    predictor.observe(0);
    EXPECT_TRUE(predictor.synchronized());
    predictor.observe(25);  // unknown
    EXPECT_FALSE(predictor.synchronized());
  }
  const auto& stats = predictor.stats();
  EXPECT_EQ(stats.observed, 10u);
  EXPECT_EQ(stats.unknown, 5u);
  EXPECT_EQ(stats.reanchored + stats.advanced, 5u);
}

TEST(PredictorScenario, TracksThroughNestedStructure) {
  // ((ab)^3 c)^8: positions deep inside nested rules advance correctly.
  std::string trace;
  for (int outer = 0; outer < 8; ++outer) {
    for (int inner = 0; inner < 3; ++inner) trace += "ab";
    trace += "c";
  }
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  const std::vector<TerminalId> seq = ids(trace);
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    predictor.observe(seq[i]);
    if (i < 7) continue;  // one outer iteration to synchronize
    auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value());
    ++total;
    if (prediction->event == seq[i + 1]) ++correct;
  }
  EXPECT_EQ(correct, total);
}

TEST(PredictorScenario, RandomTraceExactReplayHighAccuracy) {
  // Even for an unstructured (random) reference, an exact replay tracked
  // from the first event is fully determined: predictions at distance 1
  // name the true next event once the candidate set narrows to the true
  // position. Accuracy must be very high (ambiguity can linger briefly).
  support::Rng rng(123);
  std::vector<TerminalId> seq;
  for (int i = 0; i < 500; ++i) {
    seq.push_back(static_cast<TerminalId>(rng.below(5)));
  }
  Grammar grammar;
  for (TerminalId t : seq) grammar.append(t);
  grammar.finalize();
  Predictor predictor(grammar);
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    predictor.observe(seq[i]);
    auto prediction = predictor.predict(1);
    if (i < 20) continue;
    ++total;
    if (prediction.has_value() && prediction->event == seq[i + 1]) {
      ++correct;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

class PredictorCapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PredictorCapSweep, CapIsAlwaysRespected) {
  const std::size_t cap = GetParam();
  support::Rng rng(cap);
  Grammar grammar;
  for (int i = 0; i < 3000; ++i) {
    grammar.append(static_cast<TerminalId>(rng.below(3)));
  }
  grammar.finalize();
  Predictor::Options options;
  options.max_candidates = cap;
  Predictor predictor(grammar, nullptr, options);
  support::Rng replay(cap + 1);
  for (int i = 0; i < 200; ++i) {
    predictor.observe(static_cast<TerminalId>(replay.below(3)));
    ASSERT_LE(predictor.candidate_count(), cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, PredictorCapSweep,
                         ::testing::Values(1, 2, 4, 16, 64, 256));

}  // namespace
}  // namespace pythia
