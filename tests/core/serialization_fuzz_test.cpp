// Serialization fuzzing: random recorded traces must survive a
// save/load round trip bit-exactly in behaviour — identical unfolded
// sequences, identical grammar invariants, and identical predictions
// (events *and* durations) before and after the reload.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "harness/faults.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

// Pid-qualified: several tests reuse the same index, and under a
// parallel ctest each runs in its own process — a shared literal path
// lets one test's fixture teardown delete another's live file.
std::string temp_path(int index) {
  return testing::TempDir() + "/fuzz_" + std::to_string(index) + "_" +
         std::to_string(::getpid()) + ".pythia";
}

struct FuzzCase {
  int alphabet;
  int length;
  int style;  // 0 random, 1 loops, 2 runs
};

std::vector<TerminalId> make_sequence(const FuzzCase& spec,
                                      std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  while (out.size() < static_cast<std::size_t>(spec.length)) {
    switch (spec.style) {
      case 0:
        out.push_back(static_cast<TerminalId>(rng.below(spec.alphabet)));
        break;
      case 1: {
        std::vector<TerminalId> body;
        const auto body_length = 1 + rng.below(4);
        for (std::uint64_t i = 0; i < body_length; ++i) {
          body.push_back(static_cast<TerminalId>(rng.below(spec.alphabet)));
        }
        const auto reps = 1 + rng.below(12);
        for (std::uint64_t r = 0;
             r < reps && out.size() < static_cast<std::size_t>(spec.length);
             ++r) {
          for (TerminalId t : body) out.push_back(t);
        }
        break;
      }
      default: {
        const auto sym = static_cast<TerminalId>(rng.below(spec.alphabet));
        const auto run = 1 + rng.below(9);
        for (std::uint64_t i = 0;
             i < run && out.size() < static_cast<std::size_t>(spec.length);
             ++i) {
          out.push_back(sym);
        }
        break;
      }
    }
  }
  out.resize(static_cast<std::size_t>(spec.length));
  return out;
}

class SerializationFuzz
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SerializationFuzz, RoundTripPreservesBehaviour) {
  const auto [alphabet, length, style, seed] = GetParam();
  const std::vector<TerminalId> sequence = make_sequence(
      {alphabet, length, style}, static_cast<std::uint64_t>(seed) * 31 + 7);

  // Record with timestamps (pseudo-random gaps).
  support::Rng gap_rng(static_cast<std::uint64_t>(seed) + 99);
  Trace trace;
  for (int i = 0; i < alphabet; ++i) {
    trace.registry.intern("evt_" + std::to_string(i));
  }
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (TerminalId t : sequence) {
    now += 50 + gap_rng.below(2000);
    recorder.record(t, now);
  }
  trace.threads.push_back(std::move(recorder).finish());

  const std::string path = temp_path(seed * 100 + style * 10 + alphabet);
  trace.save(path);
  Trace loaded = Trace::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.threads.size(), 1u);
  const ThreadTrace& original = trace.threads[0];
  const ThreadTrace& reloaded = loaded.threads[0];

  reloaded.grammar.check_invariants();
  EXPECT_EQ(reloaded.grammar.unfold(), sequence);
  EXPECT_EQ(reloaded.grammar.rule_count(), original.grammar.rule_count());
  EXPECT_EQ(reloaded.timing.context_count(),
            original.timing.context_count());

  // Drive two predictors in lockstep through a prefix of the sequence and
  // demand identical answers.
  Predictor before(original.grammar, &original.timing);
  Predictor after(reloaded.grammar, &reloaded.timing);
  const std::size_t prefix = sequence.size() / 2;
  for (std::size_t i = 0; i < prefix; ++i) {
    before.observe(sequence[i]);
    after.observe(sequence[i]);
  }
  EXPECT_EQ(before.candidate_count(), after.candidate_count());
  for (const std::size_t distance : {1u, 3u, 9u}) {
    const auto p_before = before.predict(distance);
    const auto p_after = after.predict(distance);
    ASSERT_EQ(p_before.has_value(), p_after.has_value())
        << "distance " << distance;
    if (p_before.has_value()) {
      EXPECT_EQ(p_before->event, p_after->event);
      EXPECT_NEAR(p_before->probability, p_after->probability, 1e-12);
    }
    const auto t_before = before.predict_time_ns(distance);
    const auto t_after = after.predict_time_ns(distance);
    ASSERT_EQ(t_before.has_value(), t_after.has_value());
    if (t_before.has_value()) {
      EXPECT_NEAR(*t_before, *t_after, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationFuzz,
    ::testing::Combine(::testing::Values(2, 4, 9),     // alphabet
                       ::testing::Values(40, 400),     // length
                       ::testing::Values(0, 1, 2),     // style
                       ::testing::Range(0, 4)));       // seeds

TEST(SerializationFuzz, ManyThreadsRoundTrip) {
  Trace trace;
  trace.registry.intern("e0");
  trace.registry.intern("e1");
  trace.registry.intern("e2");
  support::Rng rng(5);
  std::vector<std::vector<TerminalId>> sequences;
  for (int thread = 0; thread < 16; ++thread) {
    Recorder recorder;
    std::vector<TerminalId> sequence;
    const auto length = 10 + rng.below(300);
    for (std::uint64_t i = 0; i < length; ++i) {
      const auto t = static_cast<TerminalId>(rng.below(3));
      sequence.push_back(t);
      recorder.record(t);
    }
    sequences.push_back(std::move(sequence));
    trace.threads.push_back(std::move(recorder).finish());
  }
  const std::string path = temp_path(99999);
  trace.save(path);
  const Trace loaded = Trace::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.threads.size(), 16u);
  for (std::size_t thread = 0; thread < 16; ++thread) {
    EXPECT_EQ(loaded.threads[thread].grammar.unfold(), sequences[thread]);
  }
}

// ---------------------------------------------------------------------------
// Corruption corpus: every seeded bit-flip / truncation of a valid trace
// file must end in exactly one of three outcomes — loaded bit-identically
// in behaviour, salvaged per-section, or rejected with a Status. Never a
// crash, an abort, or a hang.

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
  return bytes;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

std::uint32_t read_le32(const std::uint8_t* at) {
  return static_cast<std::uint32_t>(at[0]) |
         (static_cast<std::uint32_t>(at[1]) << 8) |
         (static_cast<std::uint32_t>(at[2]) << 16) |
         (static_cast<std::uint32_t>(at[3]) << 24);
}

struct SectionSpan {
  std::uint32_t kind;
  std::size_t header_offset;
  std::size_t payload_offset;
  std::uint32_t payload_size;
};

// Walks the PYTHIA02 section framing (magic, then 16-byte headers).
std::vector<SectionSpan> scan_sections(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<SectionSpan> out;
  std::size_t offset = 8;
  while (offset + 16 <= bytes.size()) {
    SectionSpan span;
    span.kind = read_le32(&bytes[offset]);
    span.payload_size = read_le32(&bytes[offset + 4]);
    span.header_offset = offset;
    span.payload_offset = offset + 16;
    out.push_back(span);
    offset = span.payload_offset + span.payload_size;
  }
  return out;
}

// A four-thread trace with distinct per-thread sequences.
struct CorruptionFixture {
  Trace trace;
  std::vector<std::vector<TerminalId>> sequences;
  std::vector<std::uint8_t> pristine;
  std::string path;

  CorruptionFixture() {
    trace.registry.intern("a");
    trace.registry.intern("b");
    trace.registry.intern("c");
    support::Rng rng(0xC0FFEE);
    for (int thread = 0; thread < 4; ++thread) {
      Recorder recorder(Recorder::Options{.record_timestamps = true});
      std::vector<TerminalId> sequence;
      std::uint64_t now = 0;
      for (int i = 0; i < 120; ++i) {
        const auto t = static_cast<TerminalId>(rng.below(3));
        sequence.push_back(t);
        recorder.record(t, now += 100 + rng.below(500));
      }
      sequences.push_back(std::move(sequence));
      trace.threads.push_back(std::move(recorder).finish());
    }
    path = temp_path(424242);
    EXPECT_TRUE(trace.try_save(path).ok());
    pristine = file_bytes(path);
  }
  ~CorruptionFixture() { std::remove(path.c_str()); }

  // Loads `bytes` and checks the outcome trichotomy. Returns true when the
  // load succeeded (possibly salvaged).
  bool check_outcome(const std::vector<std::uint8_t>& bytes) const {
    write_bytes(path, bytes);
    const Result<Trace> result = Trace::try_load(path);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
      return false;
    }
    const Trace& loaded = result.value();
    EXPECT_EQ(loaded.threads.size(), loaded.section_status.size());
    for (std::size_t i = 0; i < loaded.threads.size(); ++i) {
      if (loaded.thread_ok(i)) {
        // Sections that claim to be intact must actually be the recorded
        // ones (checksums make silent damage practically impossible).
        loaded.threads[i].grammar.check_invariants();
        if (i < sequences.size()) {
          EXPECT_EQ(loaded.threads[i].grammar.unfold(), sequences[i]);
        }
      } else {
        // Salvaged placeholder: harmless — predicts nothing.
        EXPECT_TRUE(loaded.threads[i].grammar.finalized());
        EXPECT_EQ(loaded.threads[i].grammar.sequence_length(), 0u);
      }
    }
    return true;
  }
};

TEST(SerializationFuzz, BitFlipCorpusNeverCrashes) {
  CorruptionFixture fixture;
  int loaded = 0, rejected = 0;
  for (int seed = 0; seed < 700; ++seed) {
    std::vector<std::uint8_t> bytes = fixture.pristine;
    harness::corrupt_bytes(bytes, static_cast<std::uint64_t>(seed),
                           1 + seed % 8);
    (fixture.check_outcome(bytes) ? loaded : rejected) += 1;
  }
  // The corpus must exercise both outcomes: per-section salvage keeps
  // most flipped files loadable, registry/framing damage rejects.
  EXPECT_GT(loaded, 0);
  EXPECT_GT(rejected, 0);
}

TEST(SerializationFuzz, TruncationCorpusNeverCrashes) {
  CorruptionFixture fixture;
  support::Rng rng(0xBEEF);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> bytes = fixture.pristine;
    bytes.resize(rng.below(bytes.size()));  // cut anywhere, even to zero
    fixture.check_outcome(bytes);
  }
}

TEST(SerializationFuzz, ThreadSectionFlipSalvagesOnlyThatThread) {
  CorruptionFixture fixture;
  const std::vector<SectionSpan> sections = scan_sections(fixture.pristine);
  // Section 0 is the registry, then four thread sections, then the
  // trailing compiled sections (one per compilable thread).
  ASSERT_EQ(sections.size(), 9u);
  ASSERT_EQ(sections[0].kind, 1u);
  for (std::size_t i = 1; i <= 4; ++i) EXPECT_EQ(sections[i].kind, 2u);
  for (std::size_t i = 5; i <= 8; ++i) EXPECT_EQ(sections[i].kind, 3u);

  // Flip one payload bit in the third thread's section.
  const SectionSpan& victim = sections[3];
  ASSERT_EQ(victim.kind, 2u);
  std::vector<std::uint8_t> bytes = fixture.pristine;
  bytes[victim.payload_offset + victim.payload_size / 2] ^= 0x10;
  write_bytes(fixture.path, bytes);

  const Result<Trace> result = Trace::try_load(fixture.path);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const Trace& trace = result.value();
  ASSERT_EQ(trace.threads.size(), 4u);
  EXPECT_EQ(trace.salvaged_threads(), 1u);
  EXPECT_FALSE(trace.thread_ok(2));
  EXPECT_EQ(trace.section_status[2].code(), StatusCode::kCorrupt);
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_TRUE(trace.thread_ok(i));
    EXPECT_EQ(trace.threads[i].grammar.unfold(), fixture.sequences[i]);
  }
  // The salvaged thread's compiled artifact no longer matches its (now
  // empty) thread section, so it is dropped; the others survive.
  EXPECT_FALSE(trace.threads[2].compiled.valid());
  EXPECT_FALSE(trace.compiled_status[2].ok());
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_TRUE(trace.threads[i].compiled.valid());
    EXPECT_TRUE(trace.compiled_status[i].ok());
  }

  // Strict mode refuses the same file outright…
  EXPECT_FALSE(
      Trace::try_load(fixture.path, {.salvage_sections = false}).ok());
  // …and so does the legacy throwing loader.
  EXPECT_THROW(Trace::load(fixture.path), std::runtime_error);
}

TEST(SerializationFuzz, RegistryFlipFailsWholeLoad) {
  CorruptionFixture fixture;
  const std::vector<SectionSpan> sections = scan_sections(fixture.pristine);
  ASSERT_EQ(sections[0].kind, 1u);
  std::vector<std::uint8_t> bytes = fixture.pristine;
  bytes[sections[0].payload_offset + 2] ^= 0x01;
  write_bytes(fixture.path, bytes);
  const Result<Trace> result = Trace::try_load(fixture.path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorrupt);
}

}  // namespace
}  // namespace pythia
