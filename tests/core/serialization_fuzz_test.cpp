// Serialization fuzzing: random recorded traces must survive a
// save/load round trip bit-exactly in behaviour — identical unfolded
// sequences, identical grammar invariants, and identical predictions
// (events *and* durations) before and after the reload.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::string temp_path(int index) {
  return testing::TempDir() + "/fuzz_" + std::to_string(index) + ".pythia";
}

struct FuzzCase {
  int alphabet;
  int length;
  int style;  // 0 random, 1 loops, 2 runs
};

std::vector<TerminalId> make_sequence(const FuzzCase& spec,
                                      std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  while (out.size() < static_cast<std::size_t>(spec.length)) {
    switch (spec.style) {
      case 0:
        out.push_back(static_cast<TerminalId>(rng.below(spec.alphabet)));
        break;
      case 1: {
        std::vector<TerminalId> body;
        const auto body_length = 1 + rng.below(4);
        for (std::uint64_t i = 0; i < body_length; ++i) {
          body.push_back(static_cast<TerminalId>(rng.below(spec.alphabet)));
        }
        const auto reps = 1 + rng.below(12);
        for (std::uint64_t r = 0;
             r < reps && out.size() < static_cast<std::size_t>(spec.length);
             ++r) {
          for (TerminalId t : body) out.push_back(t);
        }
        break;
      }
      default: {
        const auto sym = static_cast<TerminalId>(rng.below(spec.alphabet));
        const auto run = 1 + rng.below(9);
        for (std::uint64_t i = 0;
             i < run && out.size() < static_cast<std::size_t>(spec.length);
             ++i) {
          out.push_back(sym);
        }
        break;
      }
    }
  }
  out.resize(static_cast<std::size_t>(spec.length));
  return out;
}

class SerializationFuzz
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SerializationFuzz, RoundTripPreservesBehaviour) {
  const auto [alphabet, length, style, seed] = GetParam();
  const std::vector<TerminalId> sequence = make_sequence(
      {alphabet, length, style}, static_cast<std::uint64_t>(seed) * 31 + 7);

  // Record with timestamps (pseudo-random gaps).
  support::Rng gap_rng(static_cast<std::uint64_t>(seed) + 99);
  Trace trace;
  for (int i = 0; i < alphabet; ++i) {
    trace.registry.intern("evt_" + std::to_string(i));
  }
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (TerminalId t : sequence) {
    now += 50 + gap_rng.below(2000);
    recorder.record(t, now);
  }
  trace.threads.push_back(std::move(recorder).finish());

  const std::string path = temp_path(seed * 100 + style * 10 + alphabet);
  trace.save(path);
  Trace loaded = Trace::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.threads.size(), 1u);
  const ThreadTrace& original = trace.threads[0];
  const ThreadTrace& reloaded = loaded.threads[0];

  reloaded.grammar.check_invariants();
  EXPECT_EQ(reloaded.grammar.unfold(), sequence);
  EXPECT_EQ(reloaded.grammar.rule_count(), original.grammar.rule_count());
  EXPECT_EQ(reloaded.timing.context_count(),
            original.timing.context_count());

  // Drive two predictors in lockstep through a prefix of the sequence and
  // demand identical answers.
  Predictor before(original.grammar, &original.timing);
  Predictor after(reloaded.grammar, &reloaded.timing);
  const std::size_t prefix = sequence.size() / 2;
  for (std::size_t i = 0; i < prefix; ++i) {
    before.observe(sequence[i]);
    after.observe(sequence[i]);
  }
  EXPECT_EQ(before.candidate_count(), after.candidate_count());
  for (const std::size_t distance : {1u, 3u, 9u}) {
    const auto p_before = before.predict(distance);
    const auto p_after = after.predict(distance);
    ASSERT_EQ(p_before.has_value(), p_after.has_value())
        << "distance " << distance;
    if (p_before.has_value()) {
      EXPECT_EQ(p_before->event, p_after->event);
      EXPECT_NEAR(p_before->probability, p_after->probability, 1e-12);
    }
    const auto t_before = before.predict_time_ns(distance);
    const auto t_after = after.predict_time_ns(distance);
    ASSERT_EQ(t_before.has_value(), t_after.has_value());
    if (t_before.has_value()) {
      EXPECT_NEAR(*t_before, *t_after, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationFuzz,
    ::testing::Combine(::testing::Values(2, 4, 9),     // alphabet
                       ::testing::Values(40, 400),     // length
                       ::testing::Values(0, 1, 2),     // style
                       ::testing::Range(0, 4)));       // seeds

TEST(SerializationFuzz, ManyThreadsRoundTrip) {
  Trace trace;
  trace.registry.intern("e0");
  trace.registry.intern("e1");
  trace.registry.intern("e2");
  support::Rng rng(5);
  std::vector<std::vector<TerminalId>> sequences;
  for (int thread = 0; thread < 16; ++thread) {
    Recorder recorder;
    std::vector<TerminalId> sequence;
    const auto length = 10 + rng.below(300);
    for (std::uint64_t i = 0; i < length; ++i) {
      const auto t = static_cast<TerminalId>(rng.below(3));
      sequence.push_back(t);
      recorder.record(t);
    }
    sequences.push_back(std::move(sequence));
    trace.threads.push_back(std::move(recorder).finish());
  }
  const std::string path = temp_path(99999);
  trace.save(path);
  const Trace loaded = Trace::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.threads.size(), 16u);
  for (std::size_t thread = 0; thread < 16; ++thread) {
    EXPECT_EQ(loaded.threads[thread].grammar.unfold(), sequences[thread]);
  }
}

}  // namespace
}  // namespace pythia
