// EventRegistry unit tests: interning stability, payload handling,
// description formatting.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/event.hpp"
#include "core/shared_registry.hpp"

namespace pythia {
namespace {

TEST(EventRegistry, KindInterningIsIdempotent) {
  EventRegistry registry;
  const KindId a = registry.intern_kind("MPI_Send");
  const KindId b = registry.intern_kind("MPI_Recv");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.intern_kind("MPI_Send"), a);
  EXPECT_EQ(registry.intern_kind("MPI_Recv"), b);
  EXPECT_EQ(registry.kind_count(), 2u);
}

TEST(EventRegistry, EventsDistinguishPayloads) {
  EventRegistry registry;
  const KindId send = registry.intern_kind("MPI_Send");
  const TerminalId to1 = registry.intern_event(send, 1);
  const TerminalId to2 = registry.intern_event(send, 2);
  const TerminalId plain = registry.intern_event(send);
  EXPECT_NE(to1, to2);
  EXPECT_NE(to1, plain);
  EXPECT_EQ(registry.intern_event(send, 1), to1);
  EXPECT_EQ(registry.event_count(), 3u);
}

TEST(EventRegistry, RoundTripAccessors) {
  EventRegistry registry;
  const TerminalId id = registry.intern("GOMP_parallel_start", 42);
  EXPECT_EQ(registry.kind_name(registry.kind_of(id)),
            "GOMP_parallel_start");
  EXPECT_EQ(registry.aux_of(id), 42);
  const TerminalId bare = registry.intern("GOMP_barrier");
  EXPECT_EQ(registry.aux_of(bare), kNoAux);
}

TEST(EventRegistry, DescribeFormatsPayloads) {
  EventRegistry registry;
  EXPECT_EQ(registry.describe(registry.intern("MPI_Send", 3)), "MPI_Send(3)");
  EXPECT_EQ(registry.describe(registry.intern("MPI_Barrier")), "MPI_Barrier");
  EXPECT_EQ(registry.describe(registry.intern("offset", -2)), "offset(-2)");
}

TEST(EventRegistry, NegativeAuxValuesAreDistinct) {
  // The relative peer encoding produces signed offsets; -1 and +1 must
  // intern to different terminals and survive round trips.
  EventRegistry registry;
  const KindId send = registry.intern_kind("MPI_Send");
  const TerminalId minus = registry.intern_event(send, -1);
  const TerminalId plus = registry.intern_event(send, +1);
  EXPECT_NE(minus, plus);
  EXPECT_EQ(registry.aux_of(minus), -1);
  EXPECT_EQ(registry.aux_of(plus), 1);
  EXPECT_EQ(registry.intern_event(send, -1), minus);
}

TEST(EventRegistry, ManyKindsAndEvents) {
  EventRegistry registry;
  std::vector<TerminalId> ids;
  for (int kind = 0; kind < 50; ++kind) {
    const KindId k = registry.intern_kind("kind_" + std::to_string(kind));
    for (int aux = 0; aux < 20; ++aux) {
      ids.push_back(registry.intern_event(k, aux));
    }
  }
  EXPECT_EQ(registry.kind_count(), 50u);
  EXPECT_EQ(registry.event_count(), 1000u);
  // Dense, unique ids.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<TerminalId>(i));
  }
}

TEST(SharedRegistry, CachedInternerAvoidsRepeatLookups) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  CachedInterner interner(shared);
  const KindId kind = shared.kind("MPI_Send");
  const TerminalId first = interner.event(kind, 7);
  EXPECT_EQ(interner.event(kind, 7), first);
  EXPECT_EQ(registry.event_count(), 1u);
  EXPECT_NE(interner.event(kind, 8), first);
  EXPECT_EQ(registry.event_count(), 2u);
}

TEST(SharedRegistry, ConcurrentInterningIsConsistent) {
  EventRegistry registry;
  SharedRegistry shared(registry);
  const KindId kind = shared.kind("evt");
  constexpr int kThreads = 8;
  constexpr int kAuxRange = 64;
  std::vector<std::vector<TerminalId>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int aux = 0; aux < kAuxRange; ++aux) {
          seen[static_cast<std::size_t>(t)].push_back(
              shared.event(kind, aux));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  // Every thread must have received the same id for the same payload.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  EXPECT_EQ(registry.event_count(), static_cast<std::size_t>(kAuxRange));
}

}  // namespace
}  // namespace pythia
