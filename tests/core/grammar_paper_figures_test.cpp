// Reproduces the worked examples of the paper's §II-A (figures 1–3).
//
// Figure 3 shows PYTHIA-RECORD appending the terminal `c` twice to the
// grammar
//     R -> ... B b^5      A -> b^3 c^2      B -> b^2 A
// and walks through the intermediate states:
//   step 1:  C -> b^3 c is carved out (min of the b-exponents),
//            A becomes C c, R becomes ... B b^2 C;
//   step 2:  the couple (C, c) matches A's body exactly, so A is reused;
//            C drops to a single use and is inlined back (A -> b^3 c^2);
//            the couple (b^2, A) matches B's body exactly, so B is reused
//            and merges into the preceding B: R -> ... B^2.
//
// The paper's "..." prefix must contain further uses of A and B for the
// initial grammar to satisfy invariant 1; we use R -> B A B b^5, which
// gives A two uses (R and B) and B two uses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grammar.hpp"

namespace pythia {
namespace {

constexpr TerminalId kA = 0;  // prints as 'a'
constexpr TerminalId kB = 1;  // prints as 'b'
constexpr TerminalId kC = 2;  // prints as 'c'

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

// Builds the paper's initial grammar (fig. 3a) with a concrete prefix:
//   R -> B A B b^5,  A -> b^3 c^2,  B -> b^2 A      (rule 1 = A, rule 2 = B)
Grammar figure3_initial() {
  std::vector<std::vector<Grammar::BodyEntry>> bodies = {
      {{Symbol::rule(2), 1},
       {Symbol::rule(1), 1},
       {Symbol::rule(2), 1},
       {Symbol::terminal(kB), 5}},
      {{Symbol::terminal(kB), 3}, {Symbol::terminal(kC), 2}},
      {{Symbol::terminal(kB), 2}, {Symbol::rule(1), 1}},
  };
  return Grammar::from_bodies(bodies);
}

std::string unfolded_letters(const Grammar& grammar) {
  std::string out;
  for (TerminalId t : grammar.unfold())
    out += static_cast<char>('a' + static_cast<char>(t));
  return out;
}

TEST(PaperFigure3, InitialGrammarIsValid) {
  Grammar grammar = figure3_initial();
  grammar.check_invariants();
  // B = b^2 A = b^2 b^3 c^2 = "bbbbbcc"; R = B A B b^5.
  EXPECT_EQ(unfolded_letters(grammar), "bbbbbcc" "bbbcc" "bbbbbcc" "bbbbb");
}

TEST(PaperFigure3, Step1CarvesOutMinimumExponent) {
  Grammar grammar = figure3_initial();
  grammar.append(kC);
  grammar.check_invariants();
  // Paper fig. 3c: R -> ... B b^2 C, A -> C c, C -> b^3 c.
  EXPECT_EQ(unfolded_letters(grammar),
            "bbbbbcc" "bbbcc" "bbbbbcc" "bbbbbc");
  const std::string text = grammar.to_text();
  EXPECT_NE(text.find("R -> B A B b^2 C"), std::string::npos) << text;
  EXPECT_NE(text.find("A -> C c"), std::string::npos) << text;
  EXPECT_NE(text.find("C -> b^3 c"), std::string::npos) << text;
  EXPECT_EQ(grammar.rule_count(), 4u);  // R, A, B, C
}

TEST(PaperFigure3, Step2ReusesRulesAndInlines) {
  Grammar grammar = figure3_initial();
  grammar.append(kC);
  grammar.append(kC);
  grammar.check_invariants();
  // Paper fig. 3h: R -> ... B^2, A -> b^3 c^2, B -> b^2 A; C is gone.
  EXPECT_EQ(unfolded_letters(grammar),
            "bbbbbcc" "bbbcc" "bbbbbcc" "bbbbbcc");
  const std::string text = grammar.to_text();
  EXPECT_NE(text.find("R -> B A B^2"), std::string::npos) << text;
  EXPECT_NE(text.find("A -> b^3 c^2"), std::string::npos) << text;
  EXPECT_NE(text.find("B -> b^2 A"), std::string::npos) << text;
  EXPECT_EQ(grammar.rule_count(), 3u);  // C was inlined away
}

TEST(PaperFigure1, TraceUnfoldsExactly) {
  // Fig. 1: grammar representing the trace "abbcbcab".
  Grammar grammar;
  for (TerminalId t : ids("abbcbcab")) grammar.append(t);
  grammar.check_invariants();
  EXPECT_EQ(unfolded_letters(grammar), "abbcbcab");
}

TEST(PaperFigure2, ConditionalLoopBecomesSingleRule) {
  // Fig. 2: for (i = 0..99) { if even -> a else -> b }  =>  R -> A^50,
  // A -> a b. The grammar models the *execution*, not the source code.
  Grammar grammar;
  for (int i = 0; i < 100; ++i) grammar.append(i % 2 == 0 ? kA : kB);
  grammar.check_invariants();
  ASSERT_EQ(grammar.root()->length, 1u);
  EXPECT_EQ(grammar.root()->head->exp, 50u);
  const Rule* loop = grammar.rule_by_id(grammar.root()->head->sym.rule_id());
  ASSERT_NE(loop, nullptr);
  ASSERT_EQ(loop->length, 2u);
  EXPECT_EQ(loop->head->sym, Symbol::terminal(kA));
  EXPECT_EQ(loop->tail->sym, Symbol::terminal(kB));
}

TEST(PaperFigure4, FourthOccurrenceOfA) {
  // Fig. 4 uses the trace "abcabdababc". Check it reduces and unfolds;
  // the progress-sequence behaviour itself is tested with the predictor.
  Grammar grammar;
  for (TerminalId t : ids("abcabdababc")) grammar.append(t);
  grammar.check_invariants();
  EXPECT_EQ(unfolded_letters(grammar), "abcabdababc");
}

}  // namespace
}  // namespace pythia
