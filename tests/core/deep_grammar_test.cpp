// Deep-grammar stress: rule chains tens of thousands of levels deep must
// not overflow the C stack anywhere in the pipeline — construction
// checks, finalize, invariant validation, predictor anchoring
// (extend_upward), and the grammar-domain analyses. Sequitur invariant 1
// (every rule used twice) makes purely nested deep chains explode in
// length, so the spine grammar below takes each rule's second use from
// the root: length grows quadratically with depth and a 60k-deep chain
// still unfolds to only ~1.8e9 events — representable, never expanded.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/diff.hpp"
#include "analysis/query.hpp"
#include "core/grammar.hpp"
#include "core/predictor.hpp"

namespace pythia {
namespace {

/// Root -> R_1 R_2 ... R_depth R_1, R_i -> a R_{i+1}, R_depth -> a b.
/// Every R_i is used once by R_{i-1} and once by the root (R_1 twice by
/// the root), satisfying invariant 1 with only quadratic length, and
/// occurrence paths under R_1 run `depth` levels deep.
Grammar spine_grammar(std::uint32_t depth) {
  std::vector<std::vector<Grammar::BodyEntry>> bodies(depth + 1);
  bodies[0].reserve(depth + 1);
  for (std::uint32_t level = 1; level <= depth; ++level) {
    bodies[0].push_back({Symbol::rule(level), 1});
    if (level < depth) {
      bodies[level] = {{Symbol::terminal(0), 1}, {Symbol::rule(level + 1), 1}};
    } else {
      bodies[level] = {{Symbol::terminal(0), 1}, {Symbol::terminal(1), 1}};
    }
  }
  bodies[0].push_back({Symbol::rule(1), 1});  // R_1's second use
  Grammar grammar = Grammar::from_bodies(bodies);
  grammar.finalize();
  return grammar;
}

constexpr std::uint32_t kDeep = 60000;

TEST(DeepGrammar, ConstructionFinalizeAndInvariantsSurvive) {
  const Grammar grammar = spine_grammar(kDeep);
  // Quadratic spine length: sum of (kDeep - i + 2), plus R_1 again.
  const std::uint64_t n = kDeep;
  EXPECT_EQ(grammar.sequence_length(), n * (n + 3) / 2 + n + 1);
  // The invariant checker's length sweep is explicit-stack too.
  grammar.check_invariants();
}

TEST(DeepGrammar, AnchorSurvivesDeepUserChains) {
  const Grammar grammar = spine_grammar(kDeep);
  // 'b' occurs once, at the bottom of the deepest chain: anchoring on it
  // builds a progress path kDeep+1 levels tall via extend_upward.
  Predictor predictor(grammar);
  predictor.observe(1);
  ASSERT_GE(predictor.candidate_count(), 1u);
  EXPECT_EQ(predictor.stats().reanchored, 1u);
  // The next event after 'b' is the 'a' opening R_2's chain (the path
  // climbs all the way up and back down).
  const auto next = predictor.predict(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->event, 0u);
}

TEST(DeepGrammar, GrammarDomainAnalysesSurvive) {
  const Grammar grammar = spine_grammar(kDeep);
  const analysis::Query query = analysis::Query::over(grammar);
  ASSERT_TRUE(query.valid());
  const std::uint64_t n = kDeep;
  EXPECT_EQ(query.events(), n * (n + 3) / 2 + n + 1);
  // Summaries walked the whole chain without recursing.
  EXPECT_EQ(query.summaries().rules.size(), kDeep + 1u);
  EXPECT_EQ(query.summaries().rules[1].exp_len, n + 1u);

  analysis::PhaseTree tree;
  query.phases(analysis::PhaseOptions{}, tree);
  EXPECT_FALSE(tree.nodes.empty());

  // Structural self-diff interns every subtree (explicit-stack DFS) and
  // finds nothing.
  EXPECT_TRUE(analysis::structural_diff(grammar, grammar).empty());

  // event_at descends the spine instead of unfolding 1.8e9 events.
  TerminalId event = 0;
  ASSERT_TRUE(query.event_at(0, event));
  EXPECT_EQ(event, 0u);
  // The trace now ends with R_1's unfolding: a^kDeep b.
  ASSERT_TRUE(query.event_at(query.events() - 1, event));
  EXPECT_EQ(event, 1u);
}

TEST(DeepGrammar, UnfoldAndDiffAtModerateDepth) {
  // 500 levels: deep enough to break naive recursion with large frames,
  // shallow enough to unfold (~126k events) and run the expansion oracle.
  const Grammar reference = spine_grammar(500);
  const std::vector<TerminalId> events = reference.unfold();
  ASSERT_EQ(events.size(), reference.sequence_length());
  EXPECT_EQ(events[0], 0u);
  EXPECT_EQ(events[500], 1u);  // R_1's unfolding is a^2000 b

  const Grammar other = spine_grammar(500);
  const analysis::DiffReport slow = analysis::expand_diff(reference, other);
  const analysis::DiffReport fast = analysis::grammar_diff(reference, other);
  EXPECT_EQ(slow, fast);
  EXPECT_EQ(fast.unknown, 0u);
  EXPECT_EQ(fast.events, reference.sequence_length());
}

}  // namespace
}  // namespace pythia
