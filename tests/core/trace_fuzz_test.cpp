// Trace-loader robustness: random corruption of valid trace files must
// produce clean errors (std::runtime_error or a rejected load), never
// crashes, hangs, or silent acceptance of structurally invalid data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<unsigned char> make_valid_file(const std::string& path) {
  Trace trace;
  trace.registry.intern("MPI_Send", 1);
  trace.registry.intern("MPI_Recv", 0);
  trace.registry.intern("MPI_Barrier");
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    recorder.record(static_cast<TerminalId>(i % 3), now += 100);
  }
  trace.threads.push_back(std::move(recorder).finish());
  trace.save(path);

  std::ifstream input(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(input),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes) {
  std::ofstream output(path, std::ios::binary | std::ios::trunc);
  output.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
}

TEST(TraceFuzz, SingleByteCorruptionNeverCrashes) {
  const std::string path = temp_path("fuzz_corrupt.pythia");
  const std::vector<unsigned char> valid = make_valid_file(path);
  support::Rng rng(404);

  int clean_errors = 0;
  int accepted = 0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<unsigned char> mutated = valid;
    // Flip 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t offset = rng.below(mutated.size());
      mutated[offset] ^= static_cast<unsigned char>(1 + rng.below(255));
    }
    write_bytes(path, mutated);
    try {
      Trace loaded = Trace::load(path);
      // Acceptable: the mutation hit a don't-care byte (e.g. timing
      // float) — but the structure must still be sound.
      for (const ThreadTrace& thread : loaded.threads) {
        thread.grammar.check_invariants();
      }
      ++accepted;
    } catch (const std::runtime_error&) {
      ++clean_errors;
    }
  }
  EXPECT_EQ(clean_errors + accepted, kTrials);
  EXPECT_GT(clean_errors, 0);  // corruption is usually detected
  std::remove(path.c_str());
}

TEST(TraceFuzz, TruncationAtEveryOffsetIsClean) {
  const std::string path = temp_path("fuzz_truncate.pythia");
  const std::vector<unsigned char> valid = make_valid_file(path);

  // Section boundaries at or after the last *thread* section are legal
  // truncation points: dropping whole trailing (compiled) sections yields
  // a structurally valid file that just serves interpreted. Every other
  // cut must be rejected, even when only the optional tail is damaged.
  std::vector<std::size_t> legal_cuts;
  {
    std::size_t offset = 8;  // magic
    std::size_t tail_start = valid.size();
    while (offset + 16 <= valid.size()) {
      const std::uint32_t kind = static_cast<std::uint32_t>(valid[offset]) |
                                 (static_cast<std::uint32_t>(valid[offset + 1])
                                  << 8);
      const std::uint32_t size =
          static_cast<std::uint32_t>(valid[offset + 4]) |
          (static_cast<std::uint32_t>(valid[offset + 5]) << 8) |
          (static_cast<std::uint32_t>(valid[offset + 6]) << 16) |
          (static_cast<std::uint32_t>(valid[offset + 7]) << 24);
      offset += 16 + size;
      if (kind == 2) tail_start = offset;  // after the last thread section
      if (offset >= tail_start) legal_cuts.push_back(offset);
    }
  }

  // Step through truncation points (every 7 bytes to keep the test
  // fast; includes offset 0).
  for (std::size_t cut = 0; cut < valid.size(); cut += 7) {
    std::vector<unsigned char> truncated(valid.begin(),
                                         valid.begin() +
                                             static_cast<std::ptrdiff_t>(cut));
    write_bytes(path, truncated);
    const bool legal = std::find(legal_cuts.begin(), legal_cuts.end(), cut) !=
                       legal_cuts.end();
    if (legal) {
      const Trace loaded = Trace::load(path);
      ASSERT_EQ(loaded.threads.size(), 1u) << "cut=" << cut;
      loaded.threads[0].grammar.check_invariants();
      EXPECT_FALSE(loaded.threads[0].compiled.valid()) << "cut=" << cut;
    } else {
      EXPECT_THROW(Trace::load(path), std::runtime_error) << "cut=" << cut;
    }
  }
  std::remove(path.c_str());
}

TEST(TraceFuzz, RandomGarbageIsRejected) {
  const std::string path = temp_path("fuzz_garbage.pythia");
  support::Rng rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<unsigned char> garbage(16 + rng.below(4096));
    for (unsigned char& byte : garbage) {
      byte = static_cast<unsigned char>(rng.below(256));
    }
    write_bytes(path, garbage);
    EXPECT_THROW(Trace::load(path), std::runtime_error);
  }
  std::remove(path.c_str());
}

TEST(TraceFuzz, ValidFileStillLoadsAfterRewrites) {
  const std::string path = temp_path("fuzz_valid.pythia");
  const std::vector<unsigned char> valid = make_valid_file(path);
  write_bytes(path, valid);
  const Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.threads.size(), 1u);
  EXPECT_EQ(loaded.threads[0].grammar.sequence_length(), 200u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pythia
