// Trace file round-trip tests: registry, grammars, timing tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TraceIo, RegistryRoundTrip) {
  Trace trace;
  const KindId send = trace.registry.intern_kind("MPI_Send");
  const KindId wait = trace.registry.intern_kind("MPI_Wait");
  const TerminalId send3 = trace.registry.intern_event(send, 3);
  const TerminalId send5 = trace.registry.intern_event(send, 5);
  const TerminalId wait_plain = trace.registry.intern_event(wait);
  trace.threads.emplace_back();  // empty thread
  trace.threads[0].grammar.finalize();

  const std::string path = temp_path("registry.pythia");
  trace.save(path);
  Trace loaded = Trace::load(path);

  EXPECT_EQ(loaded.registry.kind_count(), 2u);
  EXPECT_EQ(loaded.registry.event_count(), 3u);
  EXPECT_EQ(loaded.registry.describe(send3), "MPI_Send(3)");
  EXPECT_EQ(loaded.registry.describe(send5), "MPI_Send(5)");
  EXPECT_EQ(loaded.registry.describe(wait_plain), "MPI_Wait");
  std::remove(path.c_str());
}

TEST(TraceIo, GrammarRoundTripPreservesSequence) {
  Trace trace;
  Recorder recorder;
  support::Rng rng(11);
  std::vector<TerminalId> seq;
  for (int i = 0; i < 500; ++i) {
    TerminalId t = static_cast<TerminalId>(rng.below(4));
    seq.push_back(t);
    recorder.record(t);
  }
  trace.threads.push_back(std::move(recorder).finish());

  const std::string path = temp_path("grammar.pythia");
  trace.save(path);
  Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.threads.size(), 1u);
  loaded.threads[0].grammar.check_invariants();
  EXPECT_TRUE(loaded.threads[0].grammar.finalized());
  EXPECT_EQ(loaded.threads[0].grammar.unfold(), seq);
  std::remove(path.c_str());
}

TEST(TraceIo, TimingSurvivesRoundTrip) {
  Trace trace;
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 250;
    recorder.record(i % 2, now);
  }
  trace.threads.push_back(std::move(recorder).finish());

  const std::string path = temp_path("timing.pythia");
  trace.save(path);
  Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.threads.size(), 1u);
  const ThreadTrace& thread = loaded.threads[0];
  EXPECT_FALSE(thread.timing.empty());

  // Predictions through the reloaded trace must match the original model:
  // every gap was 250 ns.
  Predictor predictor(thread.grammar, &thread.timing);
  predictor.observe(0);
  predictor.observe(1);
  auto eta = predictor.predict_time_ns(1);
  ASSERT_TRUE(eta.has_value());
  EXPECT_NEAR(*eta, 250.0, 1.0);
  std::remove(path.c_str());
}

TEST(TraceIo, MultipleThreads) {
  Trace trace;
  for (int thread = 0; thread < 4; ++thread) {
    Recorder recorder;
    for (int i = 0; i < 100; ++i) {
      recorder.record(static_cast<TerminalId>((i + thread) % 3));
    }
    trace.threads.push_back(std::move(recorder).finish());
  }
  const std::string path = temp_path("threads.pythia");
  trace.save(path);
  Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.threads.size(), 4u);
  for (int thread = 0; thread < 4; ++thread) {
    std::vector<TerminalId> expected;
    for (int i = 0; i < 100; ++i) {
      expected.push_back(static_cast<TerminalId>((i + thread) % 3));
    }
    EXPECT_EQ(loaded.threads[static_cast<std::size_t>(thread)].grammar
                  .unfold(),
              expected);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(Trace::load("/nonexistent/path/x.pythia"),
               std::runtime_error);
}

TEST(TraceIo, CorruptMagicThrows) {
  const std::string path = temp_path("corrupt.pythia");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTATRACE", f);
  std::fclose(f);
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileThrows) {
  // Save a valid trace, then truncate it.
  Trace trace;
  Recorder recorder;
  for (int i = 0; i < 50; ++i) recorder.record(i % 2);
  trace.threads.push_back(std::move(recorder).finish());
  const std::string path = temp_path("truncated.pythia");
  trace.save(path);

  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 16);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OracleFacade, RecordPredictCycle) {
  // End-to-end through the facade: record a run, save, load, predict.
  Trace trace;
  const TerminalId a = trace.registry.intern("phase_a");
  const TerminalId b = trace.registry.intern("phase_b");
  {
    Oracle oracle = Oracle::record(/*timestamps=*/true);
    std::uint64_t now = 0;
    for (int i = 0; i < 25; ++i) {
      oracle.event(a, now += 100);
      oracle.event(b, now += 900);
    }
    trace.threads.push_back(oracle.finish());
  }
  const std::string path = temp_path("oracle.pythia");
  trace.save(path);
  Trace loaded = Trace::load(path);

  Oracle oracle = Oracle::predict(loaded.threads[0]);
  oracle.event(a);
  oracle.event(b);
  auto next = oracle.predict_event(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->event, a);
  auto eta = oracle.predict_time_ns(1);
  ASSERT_TRUE(eta.has_value());
  EXPECT_NEAR(*eta, 100.0, 5.0);  // a follows b after 100 ns
  std::remove(path.c_str());
}

TEST(OracleFacade, OffModeIsInert) {
  Oracle oracle = Oracle::off();
  oracle.event(0);
  oracle.event(1);
  EXPECT_FALSE(oracle.predict_event(1).has_value());
  EXPECT_FALSE(oracle.predict_time_ns(1).has_value());
}

}  // namespace
}  // namespace pythia
