// Tests for the lookahead-oriented predictor APIs: predict_sequence,
// reference_occurrences, and the grammar's dot export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/grammar.hpp"
#include "core/predictor.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

Grammar reduce(const std::string& letters) {
  Grammar grammar;
  for (TerminalId t : ids(letters)) grammar.append(t);
  grammar.finalize();
  return grammar;
}

TEST(PredictSequence, FollowsTheTrace) {
  std::string trace;
  for (int i = 0; i < 40; ++i) trace += "abcd";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  predictor.observe(0);
  predictor.observe(1);
  const std::vector<TerminalId> next = predictor.predict_sequence(6);
  EXPECT_EQ(next, ids("cdabcd"));
}

TEST(PredictSequence, AgreesWithPerDistancePredictions) {
  std::string trace;
  for (int i = 0; i < 25; ++i) trace += "xyz";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  predictor.observe(static_cast<TerminalId>('x' - 'a'));
  predictor.observe(static_cast<TerminalId>('y' - 'a'));
  const std::vector<TerminalId> sequence = predictor.predict_sequence(9);
  ASSERT_EQ(sequence.size(), 9u);
  for (std::size_t distance = 1; distance <= 9; ++distance) {
    const auto single = predictor.predict(distance);
    ASSERT_TRUE(single.has_value());
    EXPECT_EQ(single->event, sequence[distance - 1])
        << "distance " << distance;
  }
}

TEST(PredictSequence, TruncatesAtTraceEnd) {
  Grammar grammar = reduce("abcde");
  Predictor predictor(grammar);
  predictor.observe(2);  // c
  const std::vector<TerminalId> tail = predictor.predict_sequence(10);
  EXPECT_EQ(tail, ids("de"));
}

TEST(PredictSequence, EmptyWhenDark) {
  Grammar grammar = reduce("abab");
  Predictor predictor(grammar);
  predictor.observe(25);  // unknown event
  EXPECT_TRUE(predictor.predict_sequence(4).empty());
}

TEST(ReferenceOccurrences, CountsThroughExponentsAndRules) {
  // (ab)^20 c: a and b occur 20 times, c once.
  std::string trace;
  for (int i = 0; i < 20; ++i) trace += "ab";
  trace += "c";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  EXPECT_EQ(predictor.reference_occurrences(0), 20u);
  EXPECT_EQ(predictor.reference_occurrences(1), 20u);
  EXPECT_EQ(predictor.reference_occurrences(2), 1u);
  EXPECT_EQ(predictor.reference_occurrences(25), 0u);
}

TEST(ReferenceOccurrences, NestedRules) {
  // ((ab)^3 c)^4: a occurs 12 times, c 4 times.
  std::string trace;
  for (int outer = 0; outer < 4; ++outer) {
    for (int inner = 0; inner < 3; ++inner) trace += "ab";
    trace += "c";
  }
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  EXPECT_EQ(predictor.reference_occurrences(0), 12u);
  EXPECT_EQ(predictor.reference_occurrences(2), 4u);
}

TEST(DotExport, ContainsRulesAndEdges) {
  std::string trace;
  for (int i = 0; i < 10; ++i) trace += "ab";
  Grammar grammar = reduce(trace);
  const std::string dot = grammar.to_dot();
  EXPECT_NE(dot.find("digraph grammar"), std::string::npos);
  EXPECT_NE(dot.find("r0"), std::string::npos);   // root node
  EXPECT_NE(dot.find("->"), std::string::npos);   // at least one edge
  EXPECT_NE(dot.find("^10"), std::string::npos);  // the loop exponent
}

TEST(DotExport, EscapesRegistryNames) {
  Grammar grammar;
  EventRegistry registry;
  const TerminalId evil = registry.intern("say_\"hi\"");
  grammar.append(evil);
  grammar.append(evil);
  grammar.finalize();
  const std::string dot = grammar.to_dot(&registry);
  EXPECT_NE(dot.find("\\\""), std::string::npos);
}

}  // namespace
}  // namespace pythia
