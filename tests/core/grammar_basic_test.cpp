// Unit tests for the grammar reduction core: small hand-checked sequences.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grammar.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  out.reserve(letters.size());
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

Grammar reduce(const std::string& letters) {
  Grammar grammar;
  for (TerminalId t : ids(letters)) grammar.append(t);
  return grammar;
}

void expect_roundtrip(const std::string& letters) {
  Grammar grammar = reduce(letters);
  grammar.check_invariants();
  EXPECT_EQ(grammar.unfold(), ids(letters)) << "sequence: " << letters
                                            << "\n" << grammar.to_text();
}

TEST(GrammarBasic, EmptyGrammar) {
  Grammar grammar;
  grammar.check_invariants();
  EXPECT_EQ(grammar.sequence_length(), 0u);
  EXPECT_TRUE(grammar.unfold().empty());
  EXPECT_EQ(grammar.rule_count(), 1u);  // just the root
}

TEST(GrammarBasic, SingleEvent) {
  Grammar grammar = reduce("a");
  grammar.check_invariants();
  EXPECT_EQ(grammar.sequence_length(), 1u);
  EXPECT_EQ(grammar.unfold(), ids("a"));
  EXPECT_EQ(grammar.rule_count(), 1u);
}

TEST(GrammarBasic, RunsMergeIntoExponents) {
  Grammar grammar = reduce("aaaaa");
  grammar.check_invariants();
  EXPECT_EQ(grammar.rule_count(), 1u);
  EXPECT_EQ(grammar.root()->length, 1u);
  EXPECT_EQ(grammar.root()->head->exp, 5u);
  EXPECT_EQ(grammar.unfold(), ids("aaaaa"));
}

TEST(GrammarBasic, DistinctSymbolsStayFlat) {
  Grammar grammar = reduce("abcdef");
  grammar.check_invariants();
  EXPECT_EQ(grammar.rule_count(), 1u);
  EXPECT_EQ(grammar.root()->length, 6u);
  EXPECT_EQ(grammar.unfold(), ids("abcdef"));
}

TEST(GrammarBasic, RepeatedPairCreatesRule) {
  // abab -> R: A^2, A -> a b
  Grammar grammar = reduce("abab");
  grammar.check_invariants();
  EXPECT_EQ(grammar.unfold(), ids("abab"));
  EXPECT_EQ(grammar.rule_count(), 2u);
  EXPECT_EQ(grammar.root()->length, 1u);
  EXPECT_EQ(grammar.root()->head->exp, 2u);
}

TEST(GrammarBasic, LoopReducesToExponent) {
  // 50 repetitions of "ab" (paper fig. 2): loop of one hundred iterations
  // alternating two events reduces to A^50 with A -> a b.
  std::string seq;
  for (int i = 0; i < 50; ++i) seq += "ab";
  Grammar grammar = reduce(seq);
  grammar.check_invariants();
  EXPECT_EQ(grammar.unfold(), ids(seq));
  EXPECT_EQ(grammar.rule_count(), 2u);
  ASSERT_EQ(grammar.root()->length, 1u);
  EXPECT_EQ(grammar.root()->head->exp, 50u);
  const Rule* inner =
      grammar.rule_by_id(grammar.root()->head->sym.rule_id());
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->length, 2u);
}

TEST(GrammarBasic, PaperFigure1Trace) {
  // "abbcbcab" (paper fig. 1) — the exact rule split depends on the
  // algorithm's history; the contract is: invariants hold and the trace
  // unfolds exactly.
  expect_roundtrip("abbcbcab");
}

TEST(GrammarBasic, HandCheckedSmallSequences) {
  expect_roundtrip("aa");
  expect_roundtrip("ab");
  expect_roundtrip("aba");
  expect_roundtrip("abab");
  expect_roundtrip("ababab");
  expect_roundtrip("aabb");
  expect_roundtrip("aabbaabb");
  expect_roundtrip("abcabc");
  expect_roundtrip("abcabd");
  expect_roundtrip("xyxyx");
  expect_roundtrip("aaabaaab");
  expect_roundtrip("abbbabbb");
  expect_roundtrip("abcbcbc");
}

TEST(GrammarBasic, NestedRepetition) {
  // ((ab)^3 c)^4 — nested loops become nested rules.
  std::string seq;
  for (int outer = 0; outer < 4; ++outer) {
    for (int inner = 0; inner < 3; ++inner) seq += "ab";
    seq += "c";
  }
  Grammar grammar = reduce(seq);
  grammar.check_invariants();
  EXPECT_EQ(grammar.unfold(), ids(seq));
  // The structure should be strongly compressed: far fewer nodes than
  // events.
  EXPECT_LE(grammar.rule_count(), 4u);
}

TEST(GrammarBasic, LongLoopIsCompact) {
  // A 10'000-iteration loop body of 6 events must stay tiny (the paper's
  // BT grammar has 3 rules for 2.3M events).
  std::string body = "abcdef";
  Grammar grammar;
  for (int i = 0; i < 10000; ++i) {
    for (char c : body) grammar.append(static_cast<TerminalId>(c - 'a'));
  }
  grammar.check_invariants();
  EXPECT_EQ(grammar.sequence_length(), 60000u);
  EXPECT_LE(grammar.rule_count(), 6u);
  std::size_t nodes = 0;
  for (const Rule* rule : grammar.rules()) nodes += rule->length;
  EXPECT_LE(nodes, 24u);
}

TEST(GrammarBasic, AppendAfterFinalizeAborts) {
  Grammar grammar = reduce("abab");
  grammar.finalize();
  EXPECT_TRUE(grammar.finalized());
  EXPECT_DEATH(grammar.append(0), "finalize");
}

TEST(GrammarBasic, FinalizeComputesOccurrences) {
  std::string seq;
  for (int i = 0; i < 7; ++i) seq += "ab";
  Grammar grammar = reduce(seq);
  grammar.finalize();
  EXPECT_EQ(grammar.root()->occurrences, 1u);
  const Rule* inner =
      grammar.rule_by_id(grammar.root()->head->sym.rule_id());
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->occurrences, 7u);
  // Terminal occurrence index: 'a' appears in one spot of the grammar.
  EXPECT_EQ(grammar.occurrences_of(0).size(), 1u);
  EXPECT_EQ(grammar.occurrences_of(99).size(), 0u);
}

TEST(GrammarBasic, FromBodiesRoundTrip) {
  // R -> A b A ; A -> a b   represents "ab b ab".
  std::vector<std::vector<Grammar::BodyEntry>> bodies = {
      {{Symbol::rule(1), 1}, {Symbol::terminal(1), 1}, {Symbol::rule(1), 1}},
      {{Symbol::terminal(0), 1}, {Symbol::terminal(1), 1}},
  };
  Grammar grammar = Grammar::from_bodies(bodies);
  grammar.check_invariants();
  EXPECT_EQ(grammar.unfold(), ids("abbab"));
  EXPECT_EQ(grammar.sequence_length(), 5u);
}

TEST(GrammarBasic, MoveConstructionKeepsStructure) {
  Grammar grammar = reduce("abcabcabc");
  Grammar moved = std::move(grammar);
  moved.check_invariants();
  EXPECT_EQ(moved.unfold(), ids("abcabcabc"));
}

}  // namespace
}  // namespace pythia
