// Crash-safe record sessions: fresh sessions match the plain Recorder,
// recovery resumes event-for-event after an in-process crash (kThrow
// kill points at every durability boundary), and checkpoints bound the
// replay work without changing the result.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "harness/faults.hpp"
#include "support/io.hpp"

namespace pythia {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  // Start clean even when TempDir is reused between runs.
  std::filesystem::remove_all(dir);
  return dir;
}

/// Deterministic workload: nested loops produce a grammar with real
/// structure, three kinds, aux payloads, and growing timestamps.
struct Workload {
  std::vector<TerminalId> ids;
  std::uint64_t now = 0;

  void intern_all(RecordSession& session) {
    ids.push_back(session.intern("compute"));
    ids.push_back(session.intern("MPI_Send", 1));
    ids.push_back(session.intern("MPI_Recv", 1));
    ids.push_back(session.intern("MPI_Allreduce"));
  }
  void intern_all(EventRegistry& registry) {
    ids.push_back(registry.intern("compute"));
    ids.push_back(registry.intern("MPI_Send", 1));
    ids.push_back(registry.intern("MPI_Recv", 1));
    ids.push_back(registry.intern("MPI_Allreduce"));
  }
  TerminalId at(std::uint64_t step) const {
    switch (step % 7) {
      case 0:
      case 2:
      case 4:
        return ids[0];
      case 1:
        return ids[1];
      case 3:
        return ids[2];
      default:
        return ids[step % 7 == 5 ? 1 : 3];
    }
  }
  std::uint64_t tick() { return now += 1000; }
};

SessionOptions tiny_options(std::uint64_t checkpoint_every = 0) {
  SessionOptions options;
  options.journal.segment_bytes = 512;
  options.journal.flush_every_events = 1;  // every event reaches the OS
  options.journal.sync_on_seal = false;
  options.checkpoint_every_events = checkpoint_every;
  return options;
}

/// The uninterrupted reference run for `total` events.
ThreadTrace reference_run(std::uint64_t total) {
  Workload workload;
  EventRegistry registry;
  workload.intern_all(registry);
  Recorder recorder(Recorder::Options{true});
  for (std::uint64_t i = 0; i < total; ++i) {
    recorder.record(workload.at(i), workload.tick());
  }
  return std::move(recorder).finish();
}

void expect_equivalent(const ThreadTrace& actual, const ThreadTrace& expected,
                       const char* label) {
  EXPECT_EQ(actual.grammar.sequence_length(),
            expected.grammar.sequence_length())
      << label;
  EXPECT_EQ(actual.grammar.unfold(), expected.grammar.unfold()) << label;
  EXPECT_EQ(actual.timing.context_count(), expected.timing.context_count())
      << label;
  EXPECT_DOUBLE_EQ(actual.timing.global_mean_ns(),
                   expected.timing.global_mean_ns())
      << label;
}

TEST(Session, FreshSessionMatchesPlainRecorder) {
  const std::string dir = fresh_dir("session_fresh");
  Result<RecordSession> opened = RecordSession::open(dir, tiny_options());
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  RecordSession session = opened.take();
  EXPECT_FALSE(session.recovery().recovered);

  Workload workload;
  workload.intern_all(session);
  for (std::uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(session.event(workload.at(i), workload.tick()).ok());
  }
  Result<Trace> finished = std::move(session).finish();
  ASSERT_TRUE(finished.ok()) << finished.status().to_string();
  const Trace trace = finished.take();

  expect_equivalent(trace.threads[0], reference_run(500), "fresh session");
  EXPECT_EQ(trace.registry.kind_count(), 4u);
  EXPECT_EQ(trace.registry.event_count(), 4u);

  // finish() wrote the final trace file; it reloads identically.
  Result<Trace> reloaded = Trace::try_load(dir + "/trace.pythia");
  ASSERT_TRUE(reloaded.ok());
  expect_equivalent(reloaded.value().threads[0], trace.threads[0],
                    "saved trace");
}

TEST(Session, RejectsEventsThatWereNeverInterned) {
  const std::string dir = fresh_dir("session_reject");
  Result<RecordSession> opened = RecordSession::open(dir, tiny_options());
  ASSERT_TRUE(opened.ok());
  RecordSession session = opened.take();
  const Status status = session.event(42, 0);
  EXPECT_EQ(status.code(), StatusCode::kInvalidState);
  EXPECT_EQ(session.event_count(), 0u);
}

TEST(Session, ResumesFromJournalAloneAfterAbandonment) {
  const std::string dir = fresh_dir("session_journal_only");
  Workload workload;
  {
    Result<RecordSession> opened = RecordSession::open(dir, tiny_options());
    ASSERT_TRUE(opened.ok());
    RecordSession session = opened.take();
    workload.intern_all(session);
    for (std::uint64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(session.event(workload.at(i), workload.tick()).ok());
    }
    // Abandon without finish(): everything flushed (cadence 1) but the
    // session object dies like the process would.
  }

  Result<RecordSession> reopened = RecordSession::open(dir, tiny_options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  RecordSession session = reopened.take();
  EXPECT_TRUE(session.recovery().recovered);
  EXPECT_FALSE(session.recovery().used_checkpoint);
  EXPECT_EQ(session.recovery().journaled_events, 300u);
  EXPECT_EQ(session.recovery().replayed_events, 300u);
  EXPECT_EQ(session.event_count(), 300u);
  // The registry survived through the journal's intern records.
  EXPECT_EQ(session.registry().kind_count(), 4u);
  EXPECT_EQ(session.registry().event_count(), 4u);

  // Resume the workload where it stopped and compare to uninterrupted.
  Workload resumed = workload;
  for (std::uint64_t i = 300; i < 800; ++i) {
    ASSERT_TRUE(session.event(resumed.at(i), resumed.tick()).ok());
  }
  Result<Trace> finished = std::move(session).finish();
  ASSERT_TRUE(finished.ok());
  expect_equivalent(finished.value().threads[0], reference_run(800),
                    "journal-only recovery");
}

TEST(Session, CheckpointBoundsReplayAndPreservesEquivalence) {
  const std::string dir = fresh_dir("session_ckpt");
  Workload workload;
  {
    Result<RecordSession> opened =
        RecordSession::open(dir, tiny_options(/*checkpoint_every=*/100));
    ASSERT_TRUE(opened.ok());
    RecordSession session = opened.take();
    workload.intern_all(session);
    for (std::uint64_t i = 0; i < 450; ++i) {
      ASSERT_TRUE(session.event(workload.at(i), workload.tick()).ok());
    }
  }

  Result<RecordSession> reopened = RecordSession::open(dir, tiny_options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  RecordSession session = reopened.take();
  const RecoveryInfo& info = session.recovery();
  EXPECT_TRUE(info.used_checkpoint);
  EXPECT_EQ(info.checkpoint_events, 400u);
  EXPECT_EQ(info.journaled_events, 450u);
  EXPECT_EQ(info.replayed_events, 50u);

  Workload resumed = workload;
  for (std::uint64_t i = 450; i < 700; ++i) {
    ASSERT_TRUE(session.event(resumed.at(i), resumed.tick()).ok());
  }
  Result<Trace> finished = std::move(session).finish();
  ASSERT_TRUE(finished.ok());
  expect_equivalent(finished.value().threads[0], reference_run(700),
                    "checkpointed recovery");
}

TEST(Session, PrunesOldCheckpointsButManifestStaysUsable) {
  const std::string dir = fresh_dir("session_prune");
  SessionOptions options = tiny_options(/*checkpoint_every=*/50);
  options.keep_checkpoints = 2;
  Workload workload;
  {
    Result<RecordSession> opened = RecordSession::open(dir, options);
    ASSERT_TRUE(opened.ok());
    RecordSession session = opened.take();
    workload.intern_all(session);
    for (std::uint64_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(session.event(workload.at(i), workload.tick()).ok());
    }
  }
  // 10 checkpoints were cut; only the 2 newest files survive.
  EXPECT_FALSE(support::path_exists(dir + "/ckpt-000000000050.pythia"));
  EXPECT_FALSE(support::path_exists(dir + "/ckpt-000000000400.pythia"));
  EXPECT_TRUE(support::path_exists(dir + "/ckpt-000000000450.pythia"));
  EXPECT_TRUE(support::path_exists(dir + "/ckpt-000000000500.pythia"));

  Result<RecordSession> reopened = RecordSession::open(dir, tiny_options());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().recovery().checkpoint_events, 500u);
}

// In-process crash points: arm each durability boundary with kThrow,
// abandon the session mid-flight, recover, resume, and require
// event-for-event equivalence with the uninterrupted run.
class SessionCrashPoint : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { harness::disarm_crash_points(); }
};

TEST_P(SessionCrashPoint, RecoveryAfterInProcessCrashIsEquivalent) {
  const std::string dir =
      fresh_dir(std::string("session_crash_") + GetParam());
  Workload workload;
  std::uint64_t survived = 0;
  {
    Result<RecordSession> opened =
        RecordSession::open(dir, tiny_options(/*checkpoint_every=*/64));
    ASSERT_TRUE(opened.ok());
    RecordSession session = opened.take();
    workload.intern_all(session);
    harness::arm_crash_point(GetParam(), /*after_hits=*/3,
                             harness::CrashAction::kThrow);
    try {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        const Status status = session.event(workload.at(i), workload.tick());
        if (!status.ok()) {
          ADD_FAILURE() << status.to_string();
          break;
        }
        ++survived;
      }
      ADD_FAILURE() << "crash point " << GetParam() << " never fired";
    } catch (const harness::CrashPointHit& hit) {
      EXPECT_EQ(hit.point, GetParam());
      // The session object is abandoned here, exactly like a crash.
    }
  }
  harness::disarm_crash_points();
  ASSERT_GT(survived, 0u);

  Result<RecordSession> reopened = RecordSession::open(dir, tiny_options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  RecordSession session = reopened.take();
  const std::uint64_t recovered = session.recovery().journaled_events;
  // Durable-prefix bound: with flush_every_events=1 every *completed*
  // event() is on disk; the crash interrupts at most the one in flight.
  EXPECT_GE(recovered + 1, survived);
  EXPECT_LE(recovered, survived + 1);

  // The recovered prefix is the reference prefix.
  const ThreadTrace expected_prefix = reference_run(recovered);
  EXPECT_EQ(session.grammar().unfold(), expected_prefix.grammar.unfold());

  // Resume to 1000 total and compare against the uninterrupted run.
  Workload resumed = workload;
  resumed.now = recovered * 1000;  // deterministic clock position
  for (std::uint64_t i = recovered; i < 1000; ++i) {
    ASSERT_TRUE(session.event(resumed.at(i), resumed.tick()).ok());
  }
  Result<Trace> finished = std::move(session).finish();
  ASSERT_TRUE(finished.ok());
  expect_equivalent(finished.value().threads[0], reference_run(1000),
                    GetParam());
}

INSTANTIATE_TEST_SUITE_P(DurabilityBoundaries, SessionCrashPoint,
                         ::testing::Values("journal.seal", "journal.sealed",
                                           "checkpoint.pre_rename",
                                           "checkpoint.post_rename",
                                           "checkpoint.manifest",
                                           "session.event"));

TEST(Session, OfflineRecoveryBuildsFinalizedTraceWithTiming) {
  const std::string dir = fresh_dir("session_offline");
  Workload workload;
  {
    Result<RecordSession> opened =
        RecordSession::open(dir, tiny_options(/*checkpoint_every=*/128));
    ASSERT_TRUE(opened.ok());
    RecordSession session = opened.take();
    workload.intern_all(session);
    for (std::uint64_t i = 0; i < 400; ++i) {
      ASSERT_TRUE(session.event(workload.at(i), workload.tick()).ok());
    }
  }
  RecoveryInfo info;
  Result<Trace> recovered = recover_session(dir, &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(info.journaled_events, 400u);
  expect_equivalent(recovered.value().threads[0], reference_run(400),
                    "offline recovery");
  EXPECT_TRUE(recovered.value().threads[0].grammar.finalized());
}

TEST(Session, StaleCheckpointNewerThanJournalIsIgnored) {
  const std::string dir = fresh_dir("session_stale");
  Workload workload;
  {
    Result<RecordSession> opened =
        RecordSession::open(dir, tiny_options(/*checkpoint_every=*/100));
    ASSERT_TRUE(opened.ok());
    RecordSession session = opened.take();
    workload.intern_all(session);
    for (std::uint64_t i = 0; i < 250; ++i) {
      ASSERT_TRUE(session.event(workload.at(i), workload.tick()).ok());
    }
  }
  // Rewind the journal below every checkpoint: keep the file header +
  // first segment only. Both checkpoints now claim events the journal
  // does not hold; recovery must ignore them and rebuild journal-only.
  Result<JournalScan> scanned = scan_journal(dir + "/journal.pyj");
  ASSERT_TRUE(scanned.ok());
  ASSERT_TRUE(harness::truncate_file(dir + "/journal.pyj",
                                     16 + scanned.value().segment_bytes)
                  .ok());
  const std::uint64_t kept = scan_journal(dir + "/journal.pyj")
                                 .value()
                                 .event_records;
  ASSERT_LT(kept, 200u);

  RecoveryInfo info;
  Result<Trace> recovered = recover_session(dir, &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(info.journaled_events, kept);
  EXPECT_LE(info.checkpoint_events, kept);
  bool noted_stale = false;
  for (const std::string& note : info.notes) {
    if (note.find("stale") != std::string::npos) noted_stale = true;
  }
  EXPECT_TRUE(noted_stale);
  // The recovered trace is exactly the journaled prefix.
  EXPECT_EQ(recovered.value().threads[0].grammar.unfold(),
            reference_run(kept).grammar.unfold());
}

}  // namespace
}  // namespace pythia
