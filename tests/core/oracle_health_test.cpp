// Divergence circuit breaker: healthy -> degraded -> recovering state
// machine, confidence window, re-anchor rationing (exponential backoff)
// and the Oracle-level health surface consumers key off.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/oracle.hpp"
#include "core/predictor.hpp"
#include "core/recorder.hpp"

namespace pythia {
namespace {

constexpr TerminalId kUnknown = 99;  // never occurs in the reference

// Reference execution: the pattern 0 1 2 3 repeated.
ThreadTrace make_reference(int repetitions = 50) {
  Recorder recorder(Recorder::Options{});
  for (int rep = 0; rep < repetitions; ++rep) {
    for (TerminalId event : {0, 1, 2, 3}) recorder.record(event, 0);
  }
  return std::move(recorder).finish();
}

Predictor::Options breaker_on() { return Predictor::Options::runtime_defaults(); }

// Follows the reference pattern for `count` events, continuing at
// `phase`; returns the next phase.
int feed_pattern(Predictor& predictor, int count, int phase = 0) {
  for (int i = 0; i < count; ++i) {
    predictor.observe(static_cast<TerminalId>(phase));
    phase = (phase + 1) % 4;
  }
  return phase;
}

void feed_unknown(Predictor& predictor, int count) {
  for (int i = 0; i < count; ++i) predictor.observe(kUnknown);
}

TEST(OracleHealth, DisabledBreakerNeverLeavesHealthy) {
  ThreadTrace trace = make_reference();
  Predictor predictor(trace.grammar);  // default options: breaker off
  feed_unknown(predictor, 200);
  EXPECT_EQ(predictor.health(), Health::kHealthy);
  // Every miss still pays for a full re-anchor attempt.
  EXPECT_EQ(predictor.stats().anchors, 200u);
  EXPECT_EQ(predictor.stats().anchors_suppressed, 0u);
  // The confidence window is maintained regardless, as telemetry.
  EXPECT_LT(predictor.confidence(), 0.05);
}

TEST(OracleHealth, CleanStreamStaysHealthyAndPredicts) {
  ThreadTrace trace = make_reference();
  Predictor predictor(trace.grammar, nullptr, breaker_on());
  feed_pattern(predictor, 40);
  EXPECT_EQ(predictor.health(), Health::kHealthy);
  EXPECT_GT(predictor.confidence(), 0.9);
  ASSERT_TRUE(predictor.predict(1).has_value());
}

TEST(OracleHealth, MissStreakTripsBreakerAndSuppressesPredictions) {
  ThreadTrace trace = make_reference();
  Predictor predictor(trace.grammar, nullptr, breaker_on());
  feed_pattern(predictor, 40);

  const std::uint32_t limit = predictor.options().breaker.miss_streak_limit;
  feed_unknown(predictor, static_cast<int>(limit) - 1);
  EXPECT_EQ(predictor.health(), Health::kHealthy);  // one short of the limit
  feed_unknown(predictor, 1);
  EXPECT_EQ(predictor.health(), Health::kDegraded);
  EXPECT_FALSE(predictor.predict(1).has_value());
  EXPECT_TRUE(predictor.predict_distribution(1).empty());
  EXPECT_TRUE(predictor.predict_sequence(4).empty());
}

TEST(OracleHealth, DegradedRationsReanchorsWithBackoff) {
  ThreadTrace trace = make_reference();
  Predictor predictor(trace.grammar, nullptr, breaker_on());
  feed_pattern(predictor, 40);
  feed_unknown(predictor, 8);  // trip the breaker
  ASSERT_EQ(predictor.health(), Health::kDegraded);

  const std::uint64_t anchors_at_trip = predictor.stats().anchors;
  feed_unknown(predictor, 1000);
  EXPECT_EQ(predictor.health(), Health::kDegraded);
  const std::uint64_t probes = predictor.stats().anchors - anchors_at_trip;
  // Backoff 4 -> 8 -> ... -> 256 then steady: far fewer probes than events.
  EXPECT_LE(probes, 16u);
  EXPECT_GE(predictor.stats().anchors_suppressed, 1000u - probes);
}

// The degraded-probe schedule of one predictor: the unknown-event
// indices (out of `events`) at which it spent a re-anchor attempt.
std::vector<int> probe_schedule(std::uint64_t seed, double jitter,
                                int events = 1000) {
  ThreadTrace trace = make_reference();
  Predictor::Options options = breaker_on();
  options.breaker.backoff_jitter = jitter;
  options.breaker.jitter_seed = seed;
  Predictor predictor(trace.grammar, nullptr, options);
  feed_pattern(predictor, 40);
  feed_unknown(predictor, 8);  // trip the breaker
  EXPECT_EQ(predictor.health(), Health::kDegraded);

  std::vector<int> schedule;
  std::uint64_t anchors = predictor.stats().anchors;
  for (int i = 0; i < events; ++i) {
    predictor.observe(kUnknown);
    if (predictor.stats().anchors != anchors) {
      anchors = predictor.stats().anchors;
      schedule.push_back(i);
    }
  }
  return schedule;
}

TEST(OracleHealth, ProbeJitterSpreadsSchedulesAcrossSeeds) {
  // Off by default: every predictor probes on the same deterministic
  // beat, seed or no seed.
  EXPECT_EQ(probe_schedule(1, 0.0), probe_schedule(2, 0.0));

  // Jitter on: a fleet with distinct seeds spreads its probes instead
  // of re-anchoring in lockstep (the thundering-herd concern).
  const auto a = probe_schedule(1, 0.5);
  const auto b = probe_schedule(2, 0.5);
  const auto c = probe_schedule(3, 0.5);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // Same seed: bit-reproducible, like everything else in the system.
  EXPECT_EQ(a, probe_schedule(1, 0.5));

  // Jitter shortens intervals (draws from [spacing/2, spacing]) — it
  // must not defeat the rationing: still exponentially rare probes,
  // at worst ~2x the unjittered count.
  EXPECT_LE(a.size(), 32u);
  EXPECT_GE(a.size(), 4u);
}

TEST(OracleHealth, RecoversThroughProbeAndAdvanceStreak) {
  ThreadTrace trace = make_reference();
  Predictor predictor(trace.grammar, nullptr, breaker_on());
  int phase = feed_pattern(predictor, 40);
  feed_unknown(predictor, 8);
  ASSERT_EQ(predictor.health(), Health::kDegraded);

  // Resume the reference pattern: a probe re-anchors (kRecovering), then
  // a streak of clean advances restores trust.
  phase = feed_pattern(predictor, 4, phase);
  EXPECT_EQ(predictor.health(), Health::kRecovering);
  EXPECT_FALSE(predictor.predict(1).has_value());  // still not trusted
  feed_pattern(predictor, 12, phase);
  EXPECT_EQ(predictor.health(), Health::kHealthy);
  EXPECT_TRUE(predictor.predict(1).has_value());
}

TEST(OracleHealth, MissDuringRecoveryFallsBackToDegraded) {
  ThreadTrace trace = make_reference();
  Predictor predictor(trace.grammar, nullptr, breaker_on());
  int phase = feed_pattern(predictor, 40);
  feed_unknown(predictor, 8);
  ASSERT_EQ(predictor.health(), Health::kDegraded);
  feed_pattern(predictor, 4, phase);
  ASSERT_EQ(predictor.health(), Health::kRecovering);
  feed_unknown(predictor, 1);
  EXPECT_EQ(predictor.health(), Health::kDegraded);
}

TEST(OracleHealth, LowConfidenceTripsWithoutLongStreak) {
  ThreadTrace trace = make_reference();
  Predictor::Options options = breaker_on();
  Predictor predictor(trace.grammar, nullptr, options);
  // Pattern X a b: unknown (miss), re-anchor (miss), advance. Miss streak
  // never exceeds 2, but the advance rate (1/3) sits below degrade_below,
  // so the confidence window trips the breaker once it has min_samples.
  ASSERT_LT(1.0 / 3.0, options.breaker.degrade_below + 0.02);
  int phase = 0;
  bool degraded = false;
  for (int i = 0; i < 60 && !degraded; ++i) {
    predictor.observe(kUnknown);
    predictor.observe(static_cast<TerminalId>(phase));
    predictor.observe(static_cast<TerminalId>((phase + 1) % 4));
    phase = (phase + 2) % 4;
    degraded = predictor.health() == Health::kDegraded;
  }
  EXPECT_TRUE(degraded);
}

TEST(OracleHealth, OracleSurfacesHealthAndConfidence) {
  ThreadTrace trace = make_reference();
  Oracle oracle =
      Oracle::predict(trace, Predictor::Options::runtime_defaults());
  for (int i = 0; i < 40; ++i) oracle.event(i % 4);
  EXPECT_EQ(oracle.health(), Health::kHealthy);
  EXPECT_FALSE(oracle.degraded());
  EXPECT_GT(oracle.confidence(), 0.9);

  for (int i = 0; i < 16; ++i) oracle.event(kUnknown);
  EXPECT_EQ(oracle.health(), Health::kDegraded);
  EXPECT_TRUE(oracle.degraded());
  EXPECT_FALSE(oracle.predict_event(1).has_value());
  EXPECT_FALSE(oracle.predict_time_ns(1).has_value());
}

TEST(OracleHealth, NonPredictModesReportHealthy) {
  Oracle off = Oracle::off();
  EXPECT_EQ(off.health(), Health::kHealthy);
  EXPECT_EQ(off.confidence(), 1.0);
  EXPECT_FALSE(off.degraded());

  Oracle record = Oracle::record(false);
  for (int i = 0; i < 10; ++i) record.event(kUnknown);
  EXPECT_EQ(record.health(), Health::kHealthy);
  EXPECT_FALSE(record.degraded());
}

TEST(OracleHealth, EventFilterRewritesDeliveredStream) {
  ThreadTrace trace = make_reference();
  Oracle oracle = Oracle::predict(trace);

  // Telemetry hook sees the submitted stream, the predictor the filtered
  // one: drop every other event, duplicate the rest.
  std::vector<TerminalId> hooked;
  oracle.set_event_hook(
      [&hooked](TerminalId id, std::uint64_t) { hooked.push_back(id); });
  int parity = 0;
  oracle.set_event_filter(
      [&parity](TerminalId id, std::vector<TerminalId>& out) {
        if (parity++ % 2 == 0) {
          out.push_back(id);
          out.push_back(id);
        }  // odd submissions are dropped entirely
      });

  for (int i = 0; i < 10; ++i) oracle.event(static_cast<TerminalId>(i % 4));
  EXPECT_EQ(hooked.size(), 10u);
  EXPECT_EQ(oracle.predictor()->stats().observed, 10u);  // 5 * 2 deliveries
}

}  // namespace
}  // namespace pythia
