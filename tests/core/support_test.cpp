// Support-library tests: RNG determinism and distribution sanity,
// streaming statistics, table formatting, env knobs, hashing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "support/env.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pythia::support {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversTheRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 5000.0, 0.25, 0.03);
}

TEST(RunningStat, MeanMinMax) {
  RunningStat stat;
  for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) stat.add(x);
  EXPECT_EQ(stat.count(), 5u);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.8);
  EXPECT_DOUBLE_EQ(stat.min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max(), 5.0);
}

TEST(RunningStat, VarianceMatchesDefinition) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, MergeEqualsCombinedStream) {
  RunningStat left, right, combined;
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform() * 10;
    left.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 57; ++i) {
    const double x = rng.uniform() * 3 - 5;
    right.add(x);
    combined.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat empty, filled;
  filled.add(2.0);
  filled.add(4.0);
  RunningStat a = filled;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat b = empty;
  b.merge(filled);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet samples;
  for (int i = 1; i <= 100; ++i) samples.add(static_cast<double>(i));
  EXPECT_NEAR(samples.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(samples.percentile(0), 1.0, 0.01);
  EXPECT_NEAR(samples.percentile(100), 100.0, 0.01);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.max(), 100.0);
}

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer_name", "23456"});
  const std::string out = table.to_string();
  // Every line has the same length (aligned).
  std::size_t first_line_length = out.find('\n');
  std::size_t position = 0;
  while (position < out.size()) {
    const std::size_t next = out.find('\n', position);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - position, first_line_length);
    position = next + 1;
  }
}

TEST(Table, StrfFormats) {
  EXPECT_EQ(strf("%d", 42), "42");
  EXPECT_EQ(strf("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(strf("%s", "plain"), "plain");
}

TEST(EnvKnobs, ParseAndFallback) {
  ::setenv("PYTHIA_TEST_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("PYTHIA_TEST_KNOB", 1.0), 2.5);
  ::unsetenv("PYTHIA_TEST_KNOB");
  EXPECT_DOUBLE_EQ(env_double("PYTHIA_TEST_KNOB", 1.0), 1.0);

  ::setenv("PYTHIA_TEST_KNOB", "17", 1);
  EXPECT_EQ(env_long("PYTHIA_TEST_KNOB", 3), 17);
  ::setenv("PYTHIA_TEST_KNOB", "garbage", 1);
  EXPECT_EQ(env_long("PYTHIA_TEST_KNOB", 3), 3);
  ::unsetenv("PYTHIA_TEST_KNOB");

  EXPECT_FALSE(env_flag("PYTHIA_TEST_KNOB"));
  ::setenv("PYTHIA_TEST_KNOB", "1", 1);
  EXPECT_TRUE(env_flag("PYTHIA_TEST_KNOB"));
  ::setenv("PYTHIA_TEST_KNOB", "0", 1);
  EXPECT_FALSE(env_flag("PYTHIA_TEST_KNOB"));
  ::unsetenv("PYTHIA_TEST_KNOB");
}

TEST(Hashing, CombineIsOrderSensitive) {
  const std::uint64_t ab = hash_combine(hash_combine(0, 1), 2);
  const std::uint64_t ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Hashing, WordsHashDependsOnAllWords) {
  const std::uint64_t words_a[] = {1, 2, 3};
  const std::uint64_t words_b[] = {1, 2, 4};
  EXPECT_NE(hash_words(words_a, 3), hash_words(words_b, 3));
  EXPECT_EQ(hash_words(words_a, 3), hash_words(words_a, 3));
}

}  // namespace
}  // namespace pythia::support
