// Tests for progress sequences: begin/advance must walk the unfolded
// trace exactly, on hand-built grammars (paper figures 4 and 5) and on
// randomly reduced ones.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grammar.hpp"
#include "core/progress.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

Grammar reduce(const std::string& letters) {
  Grammar grammar;
  for (TerminalId t : ids(letters)) grammar.append(t);
  grammar.finalize();
  return grammar;
}

// Walking begin()+advance() must enumerate exactly unfold().
void expect_walk_matches_unfold(const Grammar& grammar) {
  const std::vector<TerminalId> expected = grammar.unfold();
  ProgressPath path = ProgressPath::begin(grammar);
  std::vector<TerminalId> walked;
  if (!path.empty()) {
    walked.push_back(path.terminal());
    while (path.advance(grammar)) walked.push_back(path.terminal());
  }
  EXPECT_EQ(walked, expected);
}

TEST(ProgressPath, WalksPaperFigure4Trace) {
  // Fig. 4/5 use the trace "abcabdababc".
  Grammar grammar = reduce("abcabdababc");
  expect_walk_matches_unfold(grammar);
}

TEST(ProgressPath, WalksSimpleTraces) {
  for (const char* trace :
       {"a", "ab", "aaaa", "abab", "abcabc", "aabbaabb", "abbcbcab",
        "abcabdababc", "xyxyxyxyzzz"}) {
    Grammar grammar = reduce(trace);
    expect_walk_matches_unfold(grammar);
  }
}

TEST(ProgressPath, WalksDeepLoopNest) {
  std::string seq;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 5; ++j) seq += "ab";
    seq += "c";
  }
  Grammar grammar = reduce(seq);
  expect_walk_matches_unfold(grammar);
}

TEST(ProgressPath, WalksRandomTraces) {
  support::Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    Grammar grammar;
    const int length = 5 + static_cast<int>(rng.below(200));
    const int alphabet = 2 + static_cast<int>(rng.below(4));
    for (int i = 0; i < length; ++i) {
      grammar.append(static_cast<TerminalId>(rng.below(alphabet)));
    }
    grammar.finalize();
    expect_walk_matches_unfold(grammar);
  }
}

TEST(ProgressPath, BeginOnEmptyGrammarIsEmpty) {
  Grammar grammar;
  grammar.finalize();
  EXPECT_TRUE(ProgressPath::begin(grammar).empty());
}

TEST(ProgressPath, AdvanceReturnsFalseAtEnd) {
  Grammar grammar = reduce("ab");
  ProgressPath path = ProgressPath::begin(grammar);
  EXPECT_EQ(path.terminal(), 0u);
  EXPECT_TRUE(path.advance(grammar));
  EXPECT_EQ(path.terminal(), 1u);
  EXPECT_FALSE(path.advance(grammar));
  EXPECT_TRUE(path.empty());
}

TEST(ProgressPath, EnumerateFindsEveryOccurrence) {
  // "abcabdababc": 'a' occurs 4 times in the trace; the enumeration must
  // produce paths whose futures cover all occurrence contexts.
  Grammar grammar = reduce("abcabdababc");
  std::vector<ProgressPath> paths;
  ProgressPath::enumerate_occurrences(grammar, 0 /*a*/, 64, paths);
  EXPECT_GE(paths.size(), 1u);
  for (const ProgressPath& path : paths) {
    EXPECT_EQ(path.terminal(), 0u);
  }
}

TEST(ProgressPath, EnumerateUnknownEventGivesNothing) {
  Grammar grammar = reduce("abab");
  std::vector<ProgressPath> paths;
  ProgressPath::enumerate_occurrences(grammar, 25 /*z*/, 64, paths);
  EXPECT_TRUE(paths.empty());
}

TEST(ProgressPath, EnumerateRespectsLimit) {
  std::string seq;
  for (int i = 0; i < 40; ++i) seq += "ab";
  Grammar grammar = reduce(seq);
  std::vector<ProgressPath> paths;
  ProgressPath::enumerate_occurrences(grammar, 0, 3, paths);
  EXPECT_LE(paths.size(), 4u);  // limit is approximate per occurrence batch
}

TEST(ProgressPath, WeightReflectsOccurrenceCount) {
  // In (ab)^20, the 'a' terminal occurrence executes 20 times.
  std::string seq;
  for (int i = 0; i < 20; ++i) seq += "ab";
  Grammar grammar = reduce(seq);
  std::vector<ProgressPath> paths;
  ProgressPath::enumerate_occurrences(grammar, 0, 64, paths);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().weight(), 20u);
}

TEST(ProgressPath, SuffixKeysDifferByContextDepth) {
  Grammar grammar = reduce("abcabdababc");
  ProgressPath path = ProgressPath::begin(grammar);
  ASSERT_GE(path.depth(), 1u);
  if (path.depth() >= 2) {
    EXPECT_NE(path.suffix_key(1), path.suffix_key(2));
  }
}

TEST(ProgressPath, HashDistinguishesRepetitionPhases) {
  Grammar grammar = reduce("aaaa");
  ProgressPath first = ProgressPath::begin(grammar);
  ProgressPath second = first;
  ASSERT_TRUE(second.advance(grammar));
  EXPECT_NE(first.hash(), second.hash());
  EXPECT_FALSE(first == second);
}

}  // namespace
}  // namespace pythia
