// OnlineOracle: learn-while-running with a confidence ramp. The ramp
// must open only after the rolling self-accuracy clears the threshold,
// trip (and back off exponentially) when the workload shifts, and be a
// pure deterministic function of (event log, options) — which is what
// makes crash recovery exact. The session-backed variant must behave
// bit-for-bit like the in-memory one and resume after reopen.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/online_oracle.hpp"

namespace pythia {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Small thresholds so tests ramp within a few hundred events.
OnlineOracle::Options test_options() {
  OnlineOracle::Options options;
  options.min_snapshot_events = 64;
  options.snapshot_growth = 1.3;
  options.warmup_replay = 32;
  options.ramp_window = 32;
  options.ramp_min_samples = 16;
  options.serve_above = 0.6;
  options.drop_below = 0.35;
  return options;
}

/// Strongly periodic stream: ids cycle through a fixed loop body, the
/// easy case Sequitur compresses and the predictor nails.
TerminalId periodic(std::uint64_t step) {
  static const TerminalId body[] = {0, 1, 0, 2, 0, 1, 0, 3};
  return body[step % 8];
}

/// A different loop body over different ids: a regime change.
TerminalId shifted(std::uint64_t step) {
  static const TerminalId body[] = {4, 5, 6, 4, 5, 7, 6, 5, 4, 7};
  return body[step % 10];
}

TEST(OnlineOracleTest, WithholdsBeforeFirstSnapshot) {
  OnlineOracle oracle = OnlineOracle::in_memory(test_options());
  EXPECT_FALSE(oracle.serving());
  EXPECT_EQ(oracle.ramp(), OnlineOracle::Ramp::kLearning);
  EXPECT_EQ(oracle.health(), Health::kDegraded);
  EXPECT_FALSE(oracle.predict(1).has_value());
  EXPECT_FALSE(oracle.predict_time_ns(1).has_value());
  EXPECT_EQ(oracle.reference_occurrences(0), 0u);

  // Observe fewer events than the first snapshot needs: still learning.
  for (std::uint64_t i = 0; i < 32; ++i) oracle.observe(periodic(i));
  EXPECT_FALSE(oracle.serving());
  EXPECT_EQ(oracle.stats().snapshots, 0u);
  EXPECT_FALSE(oracle.predict(1).has_value());
}

TEST(OnlineOracleTest, RampOpensOnPeriodicStream) {
  OnlineOracle oracle = OnlineOracle::in_memory(test_options());
  std::uint64_t now = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    oracle.observe(periodic(i), now += 1000);
  }
  EXPECT_TRUE(oracle.serving());
  const auto& stats = oracle.stats();
  EXPECT_EQ(stats.events, 1000u);
  EXPECT_GE(stats.snapshots, 2u);
  EXPECT_GT(stats.scored, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.served_events, 0u);
  EXPECT_GT(stats.first_served_event, 0u);
  EXPECT_EQ(stats.ramp_trips, 0u);
  EXPECT_GE(oracle.confidence(), 0.6);
  EXPECT_EQ(oracle.health(), Health::kHealthy);

  // Serving predictions are real: the 1-ahead prediction matches the
  // periodic stream's next event.
  const auto next = oracle.predict(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->event, periodic(1000));
  // Timestamps were recorded, so duration queries answer too.
  EXPECT_TRUE(oracle.predict_time_ns(1).has_value());
  EXPECT_GT(oracle.reference_occurrences(0), 0u);
  EXPECT_GT(oracle.snapshot_rules(), 0u);
  EXPECT_GT(oracle.snapshot_events(), 0u);
}

TEST(OnlineOracleTest, RampTripsOnRegimeChangeAndRecovers) {
  OnlineOracle oracle = OnlineOracle::in_memory(test_options());
  for (std::uint64_t i = 0; i < 600; ++i) oracle.observe(periodic(i));
  ASSERT_TRUE(oracle.serving());

  // Regime change: the stream switches to unseen ids. Self-accuracy
  // collapses, the ramp trips, and predictions are withheld (consumers
  // fall back to vanilla — never worse).
  std::uint64_t i = 0;
  while (oracle.serving() && i < 600) oracle.observe(shifted(i++));
  EXPECT_FALSE(oracle.serving());
  EXPECT_EQ(oracle.ramp(), OnlineOracle::Ramp::kWithheld);
  EXPECT_GE(oracle.stats().ramp_trips, 1u);
  EXPECT_FALSE(oracle.predict(1).has_value());
  EXPECT_EQ(oracle.health(), Health::kDegraded);

  // The new regime is itself periodic: after enough clean samples (the
  // doubled, backed-off requirement) the ramp re-opens.
  for (std::uint64_t j = 0; j < 4000 && !oracle.serving(); ++j) {
    oracle.observe(shifted(i++));
  }
  EXPECT_TRUE(oracle.serving());
  EXPECT_GT(oracle.stats().withheld_events, 0u);
}

TEST(OnlineOracleTest, DigestIsDeterministic) {
  OnlineOracle a = OnlineOracle::in_memory(test_options());
  OnlineOracle b = OnlineOracle::in_memory(test_options());
  std::uint64_t now = 0;
  for (std::uint64_t i = 0; i < 700; ++i) {
    const std::uint64_t ns = now += 500;
    a.observe(periodic(i), ns);
    b.observe(periodic(i), ns);
    if (i % 97 == 0) {
      EXPECT_EQ(a.ramp_digest(), b.ramp_digest());
    }
  }
  EXPECT_EQ(a.ramp_digest(), b.ramp_digest());

  // The digest is sensitive: one diverging event changes it.
  a.observe(periodic(700));
  b.observe(periodic(701));
  EXPECT_NE(a.ramp_digest(), b.ramp_digest());
}

TEST(OnlineOracleTest, HistorySamplesRampCurve) {
  OnlineOracle::Options options = test_options();
  options.history_every = 50;
  OnlineOracle oracle = OnlineOracle::in_memory(options);
  for (std::uint64_t i = 0; i < 500; ++i) oracle.observe(periodic(i));

  const auto& history = oracle.history();
  ASSERT_FALSE(history.empty());
  std::uint64_t prev = 0;
  bool saw_serving = false;
  for (const auto& sample : history) {
    EXPECT_GT(sample.events, prev);
    prev = sample.events;
    EXPECT_GE(sample.accuracy, 0.0);
    EXPECT_LE(sample.accuracy, 1.0);
    saw_serving = saw_serving || sample.serving;
  }
  EXPECT_TRUE(saw_serving);
}

TEST(OnlineOracleTest, FinishProducesFinalizedTrace) {
  OnlineOracle oracle = OnlineOracle::in_memory(test_options());
  std::uint64_t now = 0;
  for (std::uint64_t i = 0; i < 300; ++i) oracle.observe(periodic(i), now += 100);
  ThreadTrace trace = std::move(oracle).finish();
  EXPECT_TRUE(trace.grammar.finalized());
  EXPECT_EQ(trace.grammar.sequence_length(), 300u);
  // Timestamps were recorded, so the trace carries a timing model.
  EXPECT_FALSE(trace.timing.empty());
}

TEST(OnlineOracleTest, SessionBackedMatchesInMemory) {
  const std::string dir = fresh_dir("online_session_match");
  auto opened = OnlineOracle::open(dir, test_options());
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  OnlineOracle durable = std::move(opened.value());
  OnlineOracle memory = OnlineOracle::in_memory(test_options());

  // Session events must be interned ids; mirror the dense intern order
  // the in-memory stream uses (ids 0..3 for the periodic body).
  ASSERT_NE(durable.session(), nullptr);
  for (const char* name : {"a", "b", "c", "d"}) {
    durable.session()->intern(name);
  }

  std::uint64_t now = 0;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const std::uint64_t ns = now += 250;
    durable.observe(periodic(i), ns);
    memory.observe(periodic(i), ns);
  }
  EXPECT_EQ(durable.ramp_digest(), memory.ramp_digest());
  EXPECT_TRUE(durable.serving());
  EXPECT_EQ(durable.stats().events, memory.stats().events);
}

TEST(OnlineOracleTest, SessionReopenResumesRamp) {
  const std::string dir = fresh_dir("online_session_resume");
  std::uint64_t now = 0;
  {
    auto opened = OnlineOracle::open(dir, test_options());
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    OnlineOracle oracle = std::move(opened.value());
    for (const char* name : {"a", "b", "c", "d"}) {
      oracle.session()->intern(name);
    }
    for (std::uint64_t i = 0; i < 300; ++i) {
      oracle.observe(periodic(i), now += 250);
    }
    ASSERT_TRUE(oracle.serving());
    // Make the journal durable, then drop without finish(): the
    // destructor deliberately does not flush (crash-only discipline),
    // so recovery sees exactly what sync() made durable.
    ASSERT_TRUE(oracle.session()->sync().ok());
  }

  auto reopened = OnlineOracle::open(dir, test_options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  OnlineOracle oracle = std::move(reopened.value());
  ASSERT_NE(oracle.recovery(), nullptr);
  EXPECT_EQ(oracle.stats().events, 300u);
  EXPECT_TRUE(oracle.serving());

  // A fresh in-memory oracle fed the same 300 events agrees exactly.
  OnlineOracle fresh = OnlineOracle::in_memory(test_options());
  std::uint64_t replay_now = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    fresh.observe(periodic(i), replay_now += 250);
  }
  EXPECT_EQ(oracle.ramp_digest(), fresh.ramp_digest());

  // And the ramp resumes: both keep serving through more events and
  // stay in lockstep.
  for (std::uint64_t i = 300; i < 400; ++i) {
    const std::uint64_t ns = now += 250;
    oracle.observe(periodic(i), ns);
    fresh.observe(periodic(i), ns);
  }
  EXPECT_EQ(oracle.ramp_digest(), fresh.ramp_digest());
  EXPECT_TRUE(oracle.serving());
}

TEST(OnlineOracleTest, SessionRejectsUnknownIdWithoutRecording) {
  const std::string dir = fresh_dir("online_session_reject");
  auto opened = OnlineOracle::open(dir, test_options());
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  OnlineOracle oracle = std::move(opened.value());
  oracle.session()->intern("only");

  oracle.observe(0);
  EXPECT_EQ(oracle.stats().events, 1u);
  // Un-interned id: rejected by the session, not counted, no witness —
  // the event log and the stats stay in agreement.
  oracle.observe(99);
  EXPECT_EQ(oracle.stats().events, 1u);
  EXPECT_EQ(oracle.session()->event_count(), 1u);
}

}  // namespace
}  // namespace pythia
