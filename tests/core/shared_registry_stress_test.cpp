// SharedRegistry contention stress: N threads interning overlapping and
// disjoint kind/event sets concurrently through the shared_mutex facade,
// with decode lookups racing the registrations. The invariants:
//   - one id per name: every thread that interns "k7" gets the same
//     KindId, every thread that interns (kind, aux) gets the same
//     TerminalId (the double-checked exclusive path re-checks, so the
//     registration race is benign);
//   - no torn lookups: kind_of/aux_of on an id another thread just
//     interned return the registered values, never garbage.
// This is the multi-threaded coverage the shared_mutex read path from
// the zero-allocation PR never had; the TSan CI job runs it to hunt
// ordering bugs the assertions alone cannot see.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/event.hpp"
#include "core/shared_registry.hpp"

namespace pythia {
namespace {

constexpr int kThreads = 8;
constexpr int kSharedKinds = 16;    // every thread interns these
constexpr int kPrivateKinds = 8;    // per-thread disjoint names
constexpr int kAuxPerKind = 32;
constexpr int kRounds = 50;         // re-intern rounds (hit the read path)

TEST(SharedRegistryStress, OneIdPerNameUnderContention) {
  EventRegistry registry;
  SharedRegistry shared(registry);

  // ids[thread][slot]: what each thread observed for each shared kind.
  std::vector<std::vector<KindId>> kind_ids(
      kThreads, std::vector<KindId>(kSharedKinds, 0));
  // Shared-event ids: kind 0 with kAuxPerKind aux values, seen per thread.
  std::vector<std::vector<TerminalId>> event_ids(
      kThreads, std::vector<TerminalId>(kAuxPerKind, 0));
  std::atomic<int> torn_lookups{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Overlapping set: all threads fight over the same names. After
        // round 0 these are pure shared-lock hits.
        for (int k = 0; k < kSharedKinds; ++k) {
          const KindId id = shared.kind("shared_k" + std::to_string(k));
          if (round == 0) {
            kind_ids[t][static_cast<std::size_t>(k)] = id;
          } else if (kind_ids[t][static_cast<std::size_t>(k)] != id) {
            ++torn_lookups;  // same name must keep the same id forever
          }
        }
        // Disjoint set: no cross-thread collisions, but the writes still
        // contend on the exclusive lock with everyone else's.
        for (int k = 0; k < kPrivateKinds; ++k) {
          const std::string name =
              "private_t" + std::to_string(t) + "_k" + std::to_string(k);
          const KindId first = shared.kind(name);
          if (shared.kind(name) != first) ++torn_lookups;
        }
        // Overlapping events on a shared kind, with decode lookups racing
        // other threads' in-flight registrations.
        const KindId base = shared.kind("shared_k0");
        for (int aux = 0; aux < kAuxPerKind; ++aux) {
          const TerminalId id = shared.event(base, aux);
          if (round == 0) {
            event_ids[t][static_cast<std::size_t>(aux)] = id;
          } else if (event_ids[t][static_cast<std::size_t>(aux)] != id) {
            ++torn_lookups;
          }
          if (shared.kind_of(id) != base || shared.aux_of(id) != aux) {
            ++torn_lookups;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(torn_lookups.load(), 0);
  // Cross-thread agreement: every thread saw the identical id for every
  // shared name and every shared (kind, aux) pair.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(kind_ids[t], kind_ids[0]) << "thread " << t;
    EXPECT_EQ(event_ids[t], event_ids[0]) << "thread " << t;
  }
  // Exactly the expected population: interning raced but never duplicated.
  EXPECT_EQ(registry.kind_count(),
            static_cast<std::size_t>(kSharedKinds + kThreads * kPrivateKinds));
  EXPECT_EQ(registry.event_count(), static_cast<std::size_t>(kAuxPerKind));
}

TEST(SharedRegistryStress, CachedInternersStayCoherent) {
  // The per-shim cache in front of the facade must converge on the same
  // ids as everyone else's caches.
  EventRegistry registry;
  SharedRegistry shared(registry);
  std::vector<std::vector<TerminalId>> seen(
      kThreads, std::vector<TerminalId>(64, 0));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CachedInterner interner(shared);
      const KindId kind = shared.kind("mpi_send");
      for (int round = 0; round < kRounds; ++round) {
        for (int aux = 0; aux < 64; ++aux) {
          const TerminalId id = interner.event(kind, aux);
          if (round == 0) {
            seen[t][static_cast<std::size_t>(aux)] = id;
          } else {
            ASSERT_EQ(seen[t][static_cast<std::size_t>(aux)], id);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(registry.event_count(), 64u);
}

}  // namespace
}  // namespace pythia
