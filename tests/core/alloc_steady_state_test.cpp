// Asserts the zero-allocation steady-state contract of the hot paths:
// after warm-up, Grammar::append() on a loop trace, Predictor::observe()
// and Predictor::predict() must make no allocator calls at all. The test
// binary links pythia_alloc_hook, so every global operator new/delete is
// counted; a regression that sneaks a per-event allocation back in fails
// here, not just in the bench numbers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/grammar.hpp"
#include "core/predictor.hpp"
#include "support/alloc_counter.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> loop_trace(std::size_t events) {
  std::vector<TerminalId> out;
  out.reserve(events);
  while (out.size() < events) {
    for (TerminalId t : {0u, 1u, 2u, 3u, 4u, 5u, 5u}) {
      if (out.size() >= events) break;
      out.push_back(t);
    }
  }
  return out;
}

class AllocSteadyState : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!support::alloc_hook_active()) {
      GTEST_SKIP() << "pythia_alloc_hook not linked into this binary";
    }
  }
};

TEST_F(AllocSteadyState, GrammarAppendIsAllocationFree) {
  const std::vector<TerminalId> warmup = loop_trace(14000);
  const std::vector<TerminalId> tail = loop_trace(1400);
  Grammar grammar;
  for (TerminalId t : warmup) grammar.append(t);

  const support::AllocSnapshot before = support::alloc_snapshot();
  for (TerminalId t : tail) grammar.append(t);
  const support::AllocSnapshot delta = support::alloc_snapshot() - before;

  EXPECT_EQ(delta.allocations, 0u)
      << delta.allocations << " allocations (" << delta.bytes
      << " bytes) across " << tail.size() << " steady-state appends";
}

TEST_F(AllocSteadyState, ObserveAndPredictAreAllocationFree) {
  const std::vector<TerminalId> trace = loop_trace(14000);
  Grammar grammar;
  for (TerminalId t : trace) grammar.append(t);
  grammar.finalize();

  Predictor predictor(grammar);
  // Warm-up pass seats every scratch buffer at its high-water capacity.
  for (TerminalId t : trace) predictor.observe(t);

  support::AllocSnapshot before = support::alloc_snapshot();
  for (TerminalId t : trace) predictor.observe(t);
  support::AllocSnapshot delta = support::alloc_snapshot() - before;
  EXPECT_EQ(delta.allocations, 0u)
      << delta.allocations << " allocations across " << trace.size()
      << " steady-state observes";

  // The pass above parked the tracker at the end of the reference
  // sequence, where predict(1) rightly has no future; step back into the
  // loop body before measuring predictions. The first predict() of the
  // predictor's life seats the vote scratch buffer — that one-time
  // warm-up is allowed, per-call allocations are not.
  for (TerminalId t : {0u, 1u, 2u}) predictor.observe(t);
  ASSERT_TRUE(predictor.predict(1).has_value());

  before = support::alloc_snapshot();
  for (int i = 0; i < 1000; ++i) {
    const auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value());
  }
  delta = support::alloc_snapshot() - before;
  EXPECT_EQ(delta.allocations, 0u)
      << delta.allocations << " allocations across 1000 predict(1) calls";
}

TEST_F(AllocSteadyState, ReanchorReusesScratchCapacity) {
  // Divergence is the expensive path (anchor enumerates occurrence
  // paths); once its buffers are warm, bouncing between two loop phases
  // must also be allocation-free.
  const std::vector<TerminalId> trace = loop_trace(14000);
  Grammar grammar;
  for (TerminalId t : trace) grammar.append(t);
  grammar.finalize();

  Predictor predictor(grammar);
  auto bounce = [&] {
    for (int round = 0; round < 50; ++round) {
      for (TerminalId t : {0u, 1u, 2u}) predictor.observe(t);
      for (TerminalId t : {4u, 5u, 5u}) predictor.observe(t);  // jump
    }
  };
  bounce();  // warm up, including the re-anchor path

  const support::AllocSnapshot before = support::alloc_snapshot();
  bounce();
  const support::AllocSnapshot delta = support::alloc_snapshot() - before;
  EXPECT_EQ(delta.allocations, 0u)
      << delta.allocations << " allocations across re-anchoring rounds";
}

}  // namespace
}  // namespace pythia
