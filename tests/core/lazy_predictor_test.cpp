// Tests for the lazy partial-progress-sequence tracker (§II-B2's literal
// mechanism) and its agreement with the eager Predictor.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grammar.hpp"
#include "core/lazy_predictor.hpp"
#include "core/predictor.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

Grammar reduce(const std::string& letters) {
  Grammar grammar;
  for (TerminalId t : ids(letters)) grammar.append(t);
  grammar.finalize();
  return grammar;
}

TEST(LazyPredictor, TracksADeterministicLoop) {
  std::string trace;
  for (int i = 0; i < 40; ++i) trace += "abc";
  Grammar grammar = reduce(trace);
  LazyPredictor predictor(grammar);
  const std::vector<TerminalId> seq = ids(trace);
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    predictor.observe(seq[i]);
    if (i < 3 || i + 4 > seq.size()) continue;
    const auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value());
    ++total;
    if (prediction->event == seq[i + 1]) ++correct;
  }
  EXPECT_EQ(correct, total);
}

TEST(LazyPredictor, InitialAnchorsHoldOnlyTheTerminal) {
  // The paper: initial partial sequences contain "only the terminal" —
  // anchoring on a common event must NOT enumerate root chains.
  std::string trace;
  for (int i = 0; i < 30; ++i) trace += "ab";
  Grammar grammar = reduce(trace);
  LazyPredictor predictor(grammar);
  predictor.observe(0);
  // 'a' has one occurrence node in the grammar (inside the loop rule);
  // the lazy tracker holds exactly its phases, not one path per
  // iteration.
  EXPECT_LE(predictor.candidate_count(), 2u);
}

TEST(LazyPredictor, ExtendsAcrossRuleBoundaries) {
  // Fig. 5's situation: after the last terminal of a rule instance, the
  // tracker must continue into the successor context.
  Grammar grammar = reduce("abcabdababc");
  LazyPredictor predictor(grammar);
  const std::vector<TerminalId> seq = ids("abcabdababc");
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    predictor.observe(seq[i]);
    const auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value()) << i;
    ++total;
    if (prediction->event == seq[i + 1]) ++correct;
  }
  EXPECT_GE(correct, total * 2 / 3);
}

TEST(LazyPredictor, UnknownEventGoesDarkAndRecovers) {
  std::string trace;
  for (int i = 0; i < 20; ++i) trace += "ab";
  Grammar grammar = reduce(trace);
  LazyPredictor predictor(grammar);
  predictor.observe(0);
  predictor.observe(25);
  EXPECT_FALSE(predictor.synchronized());
  EXPECT_EQ(predictor.stats().unknown, 1u);
  predictor.observe(0);
  EXPECT_TRUE(predictor.synchronized());
  const auto prediction = predictor.predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->event, 1u);
}

class TrackerAgreement : public ::testing::TestWithParam<int> {};

TEST_P(TrackerAgreement, EagerAndLazyAgreeOnNextEvent) {
  // On structured traces tracked from the start, the two strategies must
  // give the same distance-1 answer nearly always.
  support::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<TerminalId> seq;
  // Loop-structured random trace.
  const int body_length = 2 + static_cast<int>(rng.below(4));
  std::vector<TerminalId> body;
  for (int i = 0; i < body_length; ++i) {
    body.push_back(static_cast<TerminalId>(rng.below(5)));
  }
  for (int outer = 0; outer < 30; ++outer) {
    for (TerminalId t : body) seq.push_back(t);
    seq.push_back(static_cast<TerminalId>(rng.below(5)));
  }
  Grammar grammar;
  for (TerminalId t : seq) grammar.append(t);
  grammar.finalize();

  Predictor eager(grammar);
  LazyPredictor lazy(grammar);
  std::size_t agreements = 0, comparisons = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    eager.observe(seq[i]);
    lazy.observe(seq[i]);
    const auto from_eager = eager.predict(1);
    const auto from_lazy = lazy.predict(1);
    if (i < 5) continue;
    if (from_eager.has_value() && from_lazy.has_value()) {
      ++comparisons;
      if (from_eager->event == from_lazy->event) ++agreements;
    }
  }
  ASSERT_GT(comparisons, 50u);
  EXPECT_GE(static_cast<double>(agreements),
            0.9 * static_cast<double>(comparisons));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerAgreement, ::testing::Range(0, 8));

TEST(LazyPredictor, CandidateCapHolds) {
  support::Rng rng(3);
  Grammar grammar;
  for (int i = 0; i < 2000; ++i) {
    grammar.append(static_cast<TerminalId>(rng.below(3)));
  }
  grammar.finalize();
  LazyPredictor::Options options;
  options.max_candidates = 8;
  LazyPredictor predictor(grammar, options);
  support::Rng replay(4);
  for (int i = 0; i < 100; ++i) {
    predictor.observe(static_cast<TerminalId>(replay.below(3)));
    ASSERT_LE(predictor.candidate_count(), 8u);
  }
}

TEST(LazyPredictor, DistributionSumsToOne) {
  Grammar grammar = reduce("abcabdababc");
  LazyPredictor predictor(grammar);
  predictor.observe(0);
  predictor.observe(1);
  const auto distribution = predictor.predict_distribution(2);
  double total = 0.0;
  for (const Prediction& p : distribution) total += p.probability;
  if (!distribution.empty()) {
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace pythia
