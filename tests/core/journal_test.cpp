// Journal format: round trips, segment rollover, torn-tail tolerance,
// resume-in-place, and the scan's conservative longest-valid-prefix
// behaviour under surgical corruption.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "harness/faults.hpp"
#include "support/io.hpp"

namespace pythia {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

JournalOptions tiny_segments() {
  JournalOptions options;
  options.segment_bytes = 256;  // the minimum: forces frequent rollover
  options.flush_every_events = 1;
  options.sync_on_seal = false;  // tests do not need power-loss durability
  return options;
}

JournalScan scan_ok(const std::string& path) {
  Result<JournalScan> scanned = scan_journal(path);
  EXPECT_TRUE(scanned.ok()) << scanned.status().to_string();
  return scanned.take();
}

TEST(Journal, RoundTripsEventsKindsAndDefs) {
  const std::string path = temp_path("journal_roundtrip.pyj");
  Result<JournalWriter> created = JournalWriter::create(path, tiny_segments());
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  JournalWriter writer = created.take();

  ASSERT_TRUE(writer.append_kind("compute").ok());
  ASSERT_TRUE(writer.append_kind("MPI_Send").ok());
  ASSERT_TRUE(writer.append_event_def(0, kNoAux).ok());
  ASSERT_TRUE(writer.append_event_def(1, 3).ok());
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.append_event(static_cast<TerminalId>(i % 2),
                                    1000 + i).ok());
  }
  ASSERT_TRUE(writer.close().ok());

  const JournalScan scan = scan_ok(path);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.records.size(), 104u);
  EXPECT_EQ(scan.event_records, 100u);
  EXPECT_GT(scan.segments, 1u);  // 256-byte segments must have rolled over

  EXPECT_EQ(scan.records[0].type, JournalRecord::Type::kKind);
  EXPECT_EQ(scan.records[0].name, "compute");
  EXPECT_EQ(scan.records[1].name, "MPI_Send");
  EXPECT_EQ(scan.records[2].type, JournalRecord::Type::kEventDef);
  EXPECT_EQ(scan.records[2].kind, 0u);
  EXPECT_EQ(scan.records[2].aux, kNoAux);
  EXPECT_EQ(scan.records[3].kind, 1u);
  EXPECT_EQ(scan.records[3].aux, 3);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const JournalRecord& record = scan.records[4 + i];
    ASSERT_EQ(record.type, JournalRecord::Type::kEvent);
    EXPECT_EQ(record.event, i % 2);
    EXPECT_EQ(record.time_ns, 1000 + i);
  }
}

TEST(Journal, UnflushedBufferIsLostUnflushedByDesign) {
  const std::string path = temp_path("journal_unflushed.pyj");
  JournalOptions options = tiny_segments();
  options.flush_every_events = 0;  // only seals flush
  Result<JournalWriter> created = JournalWriter::create(path, options);
  ASSERT_TRUE(created.ok());
  {
    JournalWriter writer = created.take();
    ASSERT_TRUE(writer.append_event(7, 1).ok());
    // Destructor drops the buffered record — simulated crash.
  }
  const JournalScan scan = scan_ok(path);
  EXPECT_EQ(scan.records.size(), 0u);
  EXPECT_FALSE(scan.torn);  // a fresh header alone is a valid journal
}

TEST(Journal, TornTailIsTruncatedAndResumable) {
  const std::string path = temp_path("journal_torn.pyj");
  Result<JournalWriter> created = JournalWriter::create(path, tiny_segments());
  ASSERT_TRUE(created.ok());
  JournalWriter writer = created.take();
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.append_event(static_cast<TerminalId>(i), i).ok());
  }
  ASSERT_TRUE(writer.close().ok());

  // Tear mid-record: drop the last 5 bytes of the file.
  const JournalScan before = scan_ok(path);
  ASSERT_TRUE(harness::truncate_file(path, before.file_bytes - 5).ok());

  const JournalScan torn = scan_ok(path);
  EXPECT_TRUE(torn.torn);
  EXPECT_GT(torn.torn_tail_bytes(), 0u);
  EXPECT_EQ(torn.event_records, 49u);  // exactly one record lost

  // Resume truncates the tail and continues where validity ended.
  Result<JournalWriter> resumed =
      JournalWriter::resume(path, tiny_segments(), torn);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  JournalWriter writer2 = resumed.take();
  EXPECT_EQ(writer2.event_count(), 49u);
  ASSERT_TRUE(writer2.append_event(999, 999).ok());
  ASSERT_TRUE(writer2.close().ok());

  const JournalScan after = scan_ok(path);
  EXPECT_FALSE(after.torn);
  EXPECT_EQ(after.event_records, 50u);
  EXPECT_EQ(after.records.back().event, 999u);
  EXPECT_EQ(after.records.back().seq, 49u);
}

TEST(Journal, ResumeAtExactSegmentBoundaryStartsFreshSegment) {
  const std::string path = temp_path("journal_boundary.pyj");
  JournalOptions options = tiny_segments();
  Result<JournalWriter> created = JournalWriter::create(path, options);
  ASSERT_TRUE(created.ok());
  JournalWriter writer = created.take();
  // 256-byte segment, 24-byte header, 20-byte event records: 11 events
  // fill a segment (244 bytes + header would overflow -> seals at 11).
  for (std::uint64_t i = 0; i < 11; ++i) {
    ASSERT_TRUE(writer.append_event(1, i).ok());
  }
  ASSERT_TRUE(writer.append_event(2, 11).ok());  // forces the seal
  // Abandon without close: the sealed segment is on disk, the new
  // segment (header + 1 event) only in the dropped buffer... unless the
  // flush cadence pushed it. flush_every_events=1 pushes everything, so
  // truncate back to the sealed boundary to model the boundary crash.
  const JournalScan full = scan_ok(path);
  ASSERT_TRUE(harness::truncate_file(path, 16 + full.segment_bytes).ok());

  const JournalScan at_boundary = scan_ok(path);
  EXPECT_FALSE(at_boundary.torn);
  EXPECT_EQ(at_boundary.segments, 1u);
  EXPECT_EQ(at_boundary.event_records, 11u);

  Result<JournalWriter> resumed =
      JournalWriter::resume(path, options, at_boundary);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  JournalWriter writer2 = resumed.take();
  ASSERT_TRUE(writer2.append_event(3, 100).ok());
  ASSERT_TRUE(writer2.close().ok());

  const JournalScan after = scan_ok(path);
  EXPECT_FALSE(after.torn);
  EXPECT_EQ(after.segments, 2u);
  EXPECT_EQ(after.event_records, 12u);
  EXPECT_EQ(after.records.back().event, 3u);
}

TEST(Journal, DuplicatedSegmentFailsSequenceContinuity) {
  const std::string path = temp_path("journal_dup.pyj");
  Result<JournalWriter> created = JournalWriter::create(path, tiny_segments());
  ASSERT_TRUE(created.ok());
  JournalWriter writer = created.take();
  for (std::uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(writer.append_event(static_cast<TerminalId>(i % 5), i).ok());
  }
  ASSERT_TRUE(writer.close().ok());

  const JournalScan before = scan_ok(path);
  ASSERT_GE(before.segments, 3u);
  // Clone segment 0 over segment 1: byte-valid records, wrong position.
  const std::uint64_t seg = before.segment_bytes;
  ASSERT_TRUE(harness::duplicate_file_range(path, 16, seg, 16 + seg).ok());

  const JournalScan dup = scan_ok(path);
  EXPECT_TRUE(dup.torn);
  EXPECT_EQ(dup.segments, 1u);  // scan stops at the cloned segment
  EXPECT_NE(dup.torn_note.find("discontinuity"), std::string::npos)
      << dup.torn_note;
  // Only segment 0's events survive — the clone contributes nothing.
  EXPECT_LT(dup.event_records, 40u);
}

TEST(Journal, TruncatedSegmentHeaderEndsThePrefixCleanly) {
  const std::string path = temp_path("journal_seghdr.pyj");
  Result<JournalWriter> created = JournalWriter::create(path, tiny_segments());
  ASSERT_TRUE(created.ok());
  JournalWriter writer = created.take();
  for (std::uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(writer.append_event(static_cast<TerminalId>(i % 5), i).ok());
  }
  ASSERT_TRUE(writer.close().ok());

  const JournalScan before = scan_ok(path);
  ASSERT_GE(before.segments, 2u);
  // Keep 10 bytes of segment 1's 24-byte header.
  ASSERT_TRUE(
      harness::truncate_file(path, 16 + before.segment_bytes + 10).ok());

  const JournalScan cut = scan_ok(path);
  EXPECT_TRUE(cut.torn);
  EXPECT_EQ(cut.segments, 1u);
  EXPECT_EQ(cut.valid_bytes, 16 + cut.segment_bytes);
  EXPECT_EQ(cut.torn_tail_bytes(), 10u);
}

TEST(Journal, MidFileCorruptionStopsConservatively) {
  const std::string path = temp_path("journal_corrupt.pyj");
  Result<JournalWriter> created = JournalWriter::create(path, tiny_segments());
  ASSERT_TRUE(created.ok());
  JournalWriter writer = created.take();
  for (std::uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(writer.append_event(static_cast<TerminalId>(i), i).ok());
  }
  ASSERT_TRUE(writer.close().ok());

  // Flip one byte inside the 3rd record's payload.
  std::vector<unsigned char> bytes;
  ASSERT_TRUE(support::read_file(path, bytes).ok());
  const std::size_t victim = 16 + 24 + 2 * 20 + 10;
  bytes[victim] ^= 0x40u;
  ASSERT_TRUE(support::write_file(path, bytes.data(), bytes.size()).ok());

  const JournalScan scan = scan_ok(path);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.event_records, 2u);  // everything after the flip is tail
  EXPECT_NE(scan.torn_note.find("checksum"), std::string::npos)
      << scan.torn_note;
}

TEST(Journal, FileHeaderDamageFailsTheScan) {
  const std::string path = temp_path("journal_header.pyj");
  Result<JournalWriter> created = JournalWriter::create(path, tiny_segments());
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(created.value().close().ok());

  std::vector<unsigned char> bytes;
  ASSERT_TRUE(support::read_file(path, bytes).ok());
  bytes[9] ^= 0xffu;  // segment-size field
  ASSERT_TRUE(support::write_file(path, bytes.data(), bytes.size()).ok());

  Result<JournalScan> scanned = scan_journal(path);
  EXPECT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), StatusCode::kCorrupt);
}

TEST(Journal, OversizedRecordIsRejectedNotSplit) {
  const std::string path = temp_path("journal_oversize.pyj");
  Result<JournalWriter> created = JournalWriter::create(path, tiny_segments());
  ASSERT_TRUE(created.ok());
  JournalWriter writer = created.take();
  const std::string huge(1024, 'k');  // > 256-byte segment
  const Status status = writer.append_kind(huge);
  EXPECT_EQ(status.code(), StatusCode::kInvalidState);
  ASSERT_TRUE(writer.close().ok());
  EXPECT_FALSE(scan_ok(path).torn);
}

}  // namespace
}  // namespace pythia
