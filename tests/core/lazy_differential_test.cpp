// LazyPredictor vs Predictor across the application catalog (S1): the
// lazy partial-progress tracker is the literal §II-B2 mechanism and the
// eager Predictor is the production engine — on an exact replay of any
// recorded app stream both must track dark-free and agree on distance-1
// answers. Synthetic-stream differentials live in differential_test.cpp;
// this one drives the real event streams every evaluated application
// produces, plus the degenerate edges (predict-before-observe, empty and
// single-event grammars).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/lazy_predictor.hpp"
#include "core/predictor.hpp"
#include "harness/runner.hpp"

namespace pythia {
namespace {

/// Replays rank 0's recorded stream against both trackers.
void differential_replay(const std::string& app_name,
                         const Grammar& grammar) {
  SCOPED_TRACE(app_name);
  const std::vector<TerminalId> trace = grammar.unfold();
  ASSERT_FALSE(trace.empty());

  Predictor eager(grammar);
  LazyPredictor lazy(grammar);
  std::size_t agreement = 0;
  std::size_t both = 0;
  // Short streams (EP/FT/IS are setup + a handful of collectives at
  // test scale) get a proportionally shorter warm-up.
  const std::size_t warmup = std::min<std::size_t>(8, trace.size() / 4);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    eager.observe(trace[i]);
    lazy.observe(trace[i]);
    if (i < warmup || i + 1 >= trace.size()) continue;
    const auto a = eager.predict(1);
    const auto b = lazy.predict(1);
    if (a.has_value() && b.has_value()) {
      ++both;
      if (a->event == b->event) ++agreement;
    }
  }
  // Exact replay: neither tracker ever sees an unknown event.
  EXPECT_EQ(eager.stats().unknown, 0u);
  EXPECT_EQ(lazy.stats().unknown, 0u);
  EXPECT_EQ(eager.stats().observed, lazy.stats().observed);
  // The trackers manage candidate sets differently (eager root paths vs
  // lazy suffix chains), so momentary disagreement around re-anchors is
  // legitimate; sustained disagreement is a bug. Streams long enough to
  // loop must produce comparable answers at all.
  if (trace.size() > 32) ASSERT_GT(both, 0u);
  if (both > 0) {
    EXPECT_GE(static_cast<double>(agreement) / static_cast<double>(both),
              0.9);
  }
}

TEST(LazyDifferential, AgreesAcrossTheApplicationCatalog) {
  apps::AppConfig config;
  config.scale = 0.25;
  for (const apps::App* app : apps::all_apps()) {
    const Trace trace = harness::record_reference(*app, config);
    ASSERT_FALSE(trace.threads.empty()) << app->name();
    differential_replay(app->name(), trace.threads[0].grammar);
  }
}

TEST(LazyDifferential, AgreesAcrossTheIrregularCatalog) {
  apps::AppConfig config;
  config.scale = 0.25;
  for (const apps::App* app : apps::irregular_apps()) {
    const Trace trace = harness::record_reference(*app, config);
    ASSERT_FALSE(trace.threads.empty()) << app->name();
    differential_replay(app->name(), trace.threads[0].grammar);
  }
}

TEST(LazyDifferential, PredictBeforeObserveAnswersNothing) {
  Grammar grammar;
  for (int r = 0; r < 50; ++r) {
    for (TerminalId t : {0u, 1u, 2u}) grammar.append(t);
  }
  grammar.finalize();

  const Predictor eager(grammar);
  const LazyPredictor lazy(grammar);
  EXPECT_FALSE(eager.predict(1).has_value());
  EXPECT_FALSE(lazy.predict(1).has_value());
  EXPECT_FALSE(eager.synchronized());
  EXPECT_FALSE(lazy.synchronized());
  EXPECT_TRUE(lazy.predict_distribution(1).empty());
}

TEST(LazyDifferential, EmptyGrammarAnchoringSurvives) {
  Grammar grammar;
  grammar.finalize();

  Predictor eager(grammar);
  LazyPredictor lazy(grammar);
  // Observing against an empty reference: nothing to anchor on; both
  // count the unknown and answer nothing rather than crash.
  eager.observe(7);
  lazy.observe(7);
  EXPECT_EQ(eager.stats().unknown, 1u);
  EXPECT_EQ(lazy.stats().unknown, 1u);
  EXPECT_FALSE(eager.predict(1).has_value());
  EXPECT_FALSE(lazy.predict(1).has_value());
  EXPECT_EQ(eager.candidate_count(), 0u);
  EXPECT_EQ(lazy.candidate_count(), 0u);
}

TEST(LazyDifferential, SingleEventGrammarEdges) {
  Grammar grammar;
  grammar.append(3);
  grammar.finalize();

  Predictor eager(grammar);
  LazyPredictor lazy(grammar);
  // Known event, but the trace ends right after it: anchored, yet no
  // successor exists at distance 1.
  eager.observe(3);
  lazy.observe(3);
  EXPECT_EQ(eager.stats().unknown, 0u);
  EXPECT_EQ(lazy.stats().unknown, 0u);
  EXPECT_FALSE(eager.predict(1).has_value());
  EXPECT_FALSE(lazy.predict(1).has_value());

  // An event the grammar has never seen: both fall dark and recover
  // nothing (no anchors exist for it).
  eager.observe(9);
  lazy.observe(9);
  EXPECT_EQ(eager.stats().unknown, 1u);
  EXPECT_EQ(lazy.stats().unknown, 1u);
}

}  // namespace
}  // namespace pythia
