// Exact reproductions of the paper's progress-sequence figures (4–6) on
// the published grammar of the trace "abcabdababc":
//   R -> B A d A B,   A -> a b,   B -> A c
// (A = "ab", B = "abc"; the trace is B·A·d·A·B = abc ab d ab abc.)
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/grammar.hpp"
#include "core/progress.hpp"
#include "core/timing.hpp"

namespace pythia {
namespace {

constexpr TerminalId kA = 0, kB = 1, kC = 2, kD = 3;

Grammar paper_grammar() {
  // Rule ids: 0 = R, 1 = A, 2 = B.
  std::vector<std::vector<Grammar::BodyEntry>> bodies = {
      {{Symbol::rule(2), 1},
       {Symbol::rule(1), 1},
       {Symbol::terminal(kD), 1},
       {Symbol::rule(1), 1},
       {Symbol::rule(2), 1}},
      {{Symbol::terminal(kA), 1}, {Symbol::terminal(kB), 1}},
      {{Symbol::rule(1), 1}, {Symbol::terminal(kC), 1}},
  };
  Grammar grammar = Grammar::from_bodies(bodies);
  grammar.finalize();
  return grammar;
}

std::string letters(const std::vector<TerminalId>& ids) {
  std::string out;
  for (TerminalId t : ids) out += static_cast<char>('a' + t);
  return out;
}

TEST(PaperFigure4, GrammarRepresentsTheTrace) {
  Grammar grammar = paper_grammar();
  grammar.check_invariants();
  EXPECT_EQ(letters(grammar.unfold()), "abcabdababc");
}

TEST(PaperFigure4, FourPathsForTerminalA) {
  // 'a' has ONE occurrence node (A's head) but four occurrences in the
  // trace, each denoted by a distinct progress sequence (fig. 4 shows
  // the fourth, "aAB" — a in A in the final B of R).
  Grammar grammar = paper_grammar();
  ASSERT_EQ(grammar.occurrences_of(kA).size(), 1u);
  std::vector<ProgressPath> paths;
  ProgressPath::enumerate_occurrences(grammar, kA, 64, paths);
  EXPECT_EQ(paths.size(), 4u);
  // Depths: two occurrences via R directly (depth 2: a, A-in-R), two via
  // B (depth 3: a, A-in-B, B-in-R).
  std::multiset<std::size_t> depths;
  for (const ProgressPath& path : paths) depths.insert(path.depth());
  EXPECT_EQ(depths.count(2), 2u);
  EXPECT_EQ(depths.count(3), 2u);
}

TEST(PaperFigure5, AdvanceFromThirdBToFourthA) {
  // Fig. 5: the progress sequence "bA" points at the third b of
  // "abcabda_b_abc" (the A at R's fourth slot). Advancing must yield
  // "aAB": the fourth a, inside A, inside the final B of R.
  Grammar grammar = paper_grammar();
  const Rule* root = grammar.root();
  // R's nodes: [B, A, d, A, B].
  std::vector<const Node*> body;
  for (const Node* node = root->head; node != nullptr; node = node->next) {
    body.push_back(node);
  }
  ASSERT_EQ(body.size(), 5u);
  const Rule* rule_a = grammar.rule_by_id(body[1]->sym.rule_id());
  ASSERT_NE(rule_a, nullptr);
  const Node* b_in_a = rule_a->head->next;  // A -> a b
  ASSERT_EQ(b_in_a->sym, Symbol::terminal(kB));

  ProgressPath path(std::vector<PathElement>{{b_in_a, 0}, {body[3], 0}});
  ASSERT_EQ(path.terminal(), kB);
  ASSERT_TRUE(path.advance(grammar));

  // Now at the fourth 'a': depth 3, terminal a, topmost element = R's
  // final B node (fig. 5d's "aAB").
  EXPECT_EQ(path.terminal(), kA);
  ASSERT_EQ(path.depth(), 3u);
  EXPECT_EQ(path.element(2).node, body[4]);
  // And its unfold position checks out: walking on enumerates "bc".
  ProgressPath walk = path;
  ASSERT_TRUE(walk.advance(grammar));
  EXPECT_EQ(walk.terminal(), kB);
  ASSERT_TRUE(walk.advance(grammar));
  EXPECT_EQ(walk.terminal(), kC);
  EXPECT_FALSE(walk.advance(grammar));  // end of trace
}

TEST(PaperFigure6, ContextSuffixesSeparateTheTwoBContexts) {
  // Fig. 6: the progress sequence "BAb" denotes the b's that follow an a
  // *and are followed by a c* — the two occurrences inside B. The timing
  // model keys contexts by progress-path suffixes: the context-free
  // suffix ("Ab", our depth-1 key) is shared by all four b's, while the
  // depth-2 key (b within A-used-inside-B) is shared by exactly the two
  // B-context occurrences and absent from the others.
  Grammar grammar = paper_grammar();
  std::vector<ProgressPath> paths;
  ProgressPath::enumerate_occurrences(grammar, kB, 64, paths);
  ASSERT_EQ(paths.size(), 4u);  // four b's in the trace

  std::set<std::uint64_t> depth1_keys;
  std::multiset<std::uint64_t> depth2_keys;
  for (const ProgressPath& path : paths) {
    depth1_keys.insert(path.suffix_key(1));
    depth2_keys.insert(path.suffix_key(2));
  }
  // Depth 1 ("Ab"): one shared context for all four occurrences.
  EXPECT_EQ(depth1_keys.size(), 1u);
  // Depth 2: the two B-context b's share one key ("BAb"); the two
  // R-context b's have distinct keys (different usage sites of A in R).
  std::set<std::uint64_t> distinct_depth2(depth2_keys.begin(),
                                          depth2_keys.end());
  EXPECT_EQ(distinct_depth2.size(), 3u);
  bool found_shared_pair = false;
  for (const std::uint64_t key : distinct_depth2) {
    if (depth2_keys.count(key) == 2) found_shared_pair = true;
  }
  EXPECT_TRUE(found_shared_pair);
}

TEST(PaperFigure6, SharedContextAveragesOnlyItsOccurrences) {
  // Feed the trace with distinctive gaps: b after a takes 10 ns inside B
  // (followed by c) but 100 ns in the plain-A contexts. The "BAb"-level
  // lookup must return ~10, not the pooled average.
  Grammar grammar = paper_grammar();
  // Trace: a b c a b d a b a b c   (indices of b: 1, 4, 7, 9).
  const std::vector<TerminalId> events = grammar.unfold();
  std::vector<std::uint64_t> times(events.size());
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::uint64_t gap = 1000;
    if (events[i] == kB) {
      const bool followed_by_c =
          i + 1 < events.size() && events[i + 1] == kC;
      gap = followed_by_c ? 10 : 100;
    }
    now += gap;
    times[i] = now;
  }
  const TimingModel model = TimingModel::replay(grammar, events, times);

  // Walk to the final b (index 9, inside the last B) and query.
  ProgressPath path = ProgressPath::begin(grammar);
  for (std::size_t i = 0; i + 2 < events.size(); ++i) {
    ASSERT_TRUE(path.advance(grammar));
  }
  ASSERT_EQ(path.terminal(), kB);
  const auto expected = model.expect_ns(path);
  ASSERT_TRUE(expected.has_value());
  EXPECT_NEAR(*expected, 10.0, 1e-9);
}

}  // namespace
}  // namespace pythia
