// Grammar compiler unit tests: the compiled blob must be a faithful,
// deterministic, self-validating lowering of a finalized grammar +
// timing model (compile.hpp), round-trippable through the PYTHIA02
// compiled section and the zero-copy loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/compile.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "support/io.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

ThreadTrace record_loopy(std::uint64_t seed, int alphabet, int length) {
  support::Rng rng(seed);
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  int emitted = 0;
  while (emitted < length) {
    const auto body_length = 1 + rng.below(4);
    std::vector<TerminalId> body;
    for (std::uint64_t i = 0; i < body_length; ++i) {
      body.push_back(static_cast<TerminalId>(rng.below(alphabet)));
    }
    const auto reps = 1 + rng.below(12);
    for (std::uint64_t r = 0; r < reps && emitted < length; ++r) {
      for (TerminalId t : body) {
        recorder.record(t, now += 100 + rng.below(400));
        ++emitted;
      }
    }
  }
  return std::move(recorder).finish();
}

TEST(Compile, ProducesValidatedBlobWithFaithfulTables) {
  ThreadTrace thread = record_loopy(1, 5, 600);
  ASSERT_TRUE(thread.compile());
  const CompiledView& view = thread.compiled;
  ASSERT_TRUE(view.valid());

  EXPECT_EQ(view.sequence_length(), thread.grammar.sequence_length());
  EXPECT_EQ(view.grammar_digest(), thread_section_digest(thread));
  EXPECT_TRUE(view.has_timing());
  EXPECT_GT(view.node_count(), 0u);
  EXPECT_EQ(view.rule_count(), thread.grammar.rules().size());

  // Occurrence spans partition the sequence: summing total over every
  // terminal recovers the sequence length exactly.
  std::uint64_t total = 0;
  for (TerminalId t = 0; t < view.terminal_count(); ++t) {
    total += view.occ_span(t).total;
  }
  EXPECT_EQ(total, view.sequence_length());

  // A terminal the reference never saw has an empty span, even past the
  // table end.
  EXPECT_EQ(view.occ_span(view.terminal_count()).total, 0u);
  EXPECT_EQ(view.occ_span(9999).count, 0u);
}

TEST(Compile, ByteDeterministic) {
  ThreadTrace thread = record_loopy(2, 6, 500);
  const std::uint64_t digest = thread_section_digest(thread);
  const std::vector<unsigned char> first =
      compile_thread(thread.grammar, &thread.timing, digest);
  const std::vector<unsigned char> second =
      compile_thread(thread.grammar, &thread.timing, digest);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Compile, RejectsUnfinalizedAndEmpty) {
  Grammar unfinalized;
  unfinalized.append(1);
  EXPECT_TRUE(compile_thread(unfinalized, nullptr, 0).empty());

  ThreadTrace empty;
  EXPECT_FALSE(empty.compile());
  EXPECT_FALSE(empty.compiled.valid());
}

TEST(Compile, TimingLookupMatchesModel) {
  ThreadTrace thread = record_loopy(3, 4, 400);
  ASSERT_TRUE(thread.compile());
  const CompiledView& view = thread.compiled;
  ASSERT_TRUE(view.has_timing());
  // Every context the model knows must resolve to the same mean.
  for (const auto& [key, stat] : thread.timing.contexts()) {
    double mean = 0.0;
    ASSERT_TRUE(view.timing_lookup(key, mean));
    EXPECT_DOUBLE_EQ(mean,
                     stat.sum_ns / static_cast<double>(stat.count));
  }
  double unused = 0.0;
  EXPECT_FALSE(view.timing_lookup(0xdeadbeefcafef00dULL, unused));
}

TEST(Compile, FileRoundTripCarriesCompiledSection) {
  Trace trace;
  trace.registry.intern("a");
  trace.registry.intern("b");
  trace.registry.intern("c");
  trace.threads.push_back(record_loopy(4, 3, 500));
  const std::string path = temp_path("compile_roundtrip.pythia");
  trace.save(path);

  const Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.threads.size(), 1u);
  ASSERT_TRUE(loaded.threads[0].compiled.valid());
  ASSERT_EQ(loaded.compiled_status.size(), 1u);
  EXPECT_TRUE(loaded.compiled_status[0].ok());
  EXPECT_EQ(loaded.threads[0].compiled.grammar_digest(),
            thread_section_digest(loaded.threads[0]));
  std::remove(path.c_str());
}

TEST(Compile, ZeroCopyLoadServesCompiledInPlace) {
  Trace trace;
  trace.registry.intern("a");
  trace.registry.intern("b");
  trace.registry.intern("c");
  trace.threads.push_back(record_loopy(5, 3, 500));
  const std::string path = temp_path("compile_zero_copy.pythia");
  trace.save(path);

  Result<support::MappedFile> mapped = support::MappedFile::open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  const support::MappedFile file = mapped.take();
  Result<Trace> loaded = load_trace_zero_copy(file.data(), file.size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const Trace& zero_copy = loaded.value();

  ASSERT_EQ(zero_copy.threads.size(), 1u);
  ASSERT_TRUE(zero_copy.threads[0].compiled.valid());
  EXPECT_TRUE(zero_copy.thread_ok(0));
  // The view must point INTO the mapping — zero copies.
  const unsigned char* blob = zero_copy.threads[0].compiled.data();
  EXPECT_GE(blob, file.data());
  EXPECT_LT(blob, file.data() + file.size());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(blob) % 64, 0u)
      << "blob must be 64-byte aligned in the file";
  // The registry decoded; the grammar did not (that is the point).
  EXPECT_EQ(zero_copy.registry.event_count(), trace.registry.event_count());
  EXPECT_EQ(zero_copy.threads[0].grammar.sequence_length(), 0u);
  std::remove(path.c_str());
}

TEST(Compile, ZeroCopyRejectsLegacyAndGarbage) {
  const std::string path = temp_path("compile_zero_copy_bad.pythia");
  const std::vector<unsigned char> garbage = {'n', 'o', 'p', 'e'};
  EXPECT_FALSE(load_trace_zero_copy(garbage.data(), garbage.size()).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pythia
