// CompiledPredictor vs interpreted Predictor: the compiled automaton is
// a pure lowering, so on the SAME event stream with the SAME options the
// two engines must be bit-identical observers — every prediction, every
// probability, every confidence value, every breaker transition — across
// the full application catalog, including streams that diverge from the
// reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/app.hpp"
#include "core/compiled_predictor.hpp"
#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

struct Engines {
  Predictor interpreted;
  CompiledPredictor compiled;

  Engines(const ThreadTrace& thread, const Predictor::Options& options)
      : interpreted(thread.grammar,
                    thread.timing.empty() ? nullptr : &thread.timing,
                    options),
        compiled(thread.compiled, options) {}
};

void expect_same_prediction(const std::optional<Prediction>& a,
                            const std::optional<Prediction>& b,
                            const char* what, std::size_t step) {
  ASSERT_EQ(a.has_value(), b.has_value()) << what << " at step " << step;
  if (a.has_value()) {
    EXPECT_EQ(a->event, b->event) << what << " at step " << step;
    EXPECT_DOUBLE_EQ(a->probability, b->probability)
        << what << " at step " << step;
  }
}

/// Feeds `stream` to both engines, comparing the full observable surface
/// at every step.
void run_differential(const ThreadTrace& thread,
                      const std::vector<TerminalId>& stream,
                      const Predictor::Options& options) {
  Engines engines(thread, options);
  TerminalId batch_a[16];
  TerminalId batch_b[16];
  for (std::size_t step = 0; step < stream.size(); ++step) {
    engines.interpreted.observe(stream[step]);
    engines.compiled.observe(stream[step]);

    for (const std::size_t distance : {std::size_t{1}, std::size_t{2},
                                       std::size_t{5}, std::size_t{8},
                                       std::size_t{13}}) {
      expect_same_prediction(engines.interpreted.predict(distance),
                             engines.compiled.predict(distance), "predict",
                             step);
    }
    EXPECT_DOUBLE_EQ(engines.interpreted.confidence(),
                     engines.compiled.confidence())
        << "step " << step;
    ASSERT_EQ(engines.interpreted.health(), engines.compiled.health())
        << "step " << step;

    const auto eta_a = engines.interpreted.predict_time_ns(1);
    const auto eta_b = engines.compiled.predict_time_ns(1);
    ASSERT_EQ(eta_a.has_value(), eta_b.has_value()) << "step " << step;
    if (eta_a.has_value()) {
      EXPECT_DOUBLE_EQ(*eta_a, *eta_b);
    }

    if (step % 16 == 0) {
      const std::size_t n_a =
          engines.interpreted.predict_sequence_into(batch_a, 16);
      const std::size_t n_b =
          engines.compiled.predict_sequence_into(batch_b, 16);
      ASSERT_EQ(n_a, n_b) << "predict_n length at step " << step;
      for (std::size_t i = 0; i < n_a; ++i) {
        ASSERT_EQ(batch_a[i], batch_b[i])
            << "predict_n[" << i << "] at step " << step;
      }
    }
  }
  const Predictor::Stats& stats_a = engines.interpreted.stats();
  const Predictor::Stats& stats_b = engines.compiled.stats();
  EXPECT_EQ(stats_a.observed, stats_b.observed);
  EXPECT_EQ(stats_a.advanced, stats_b.advanced);
  EXPECT_EQ(stats_a.reanchored, stats_b.reanchored);
  EXPECT_EQ(stats_a.unknown, stats_b.unknown);
  EXPECT_EQ(stats_a.anchors, stats_b.anchors);
  EXPECT_EQ(stats_a.anchors_suppressed, stats_b.anchors_suppressed);
}

/// 1.5% of events substituted — forces misses, re-anchors and (with the
/// breaker armed) degraded/recovering transitions on both engines.
std::vector<TerminalId> perturb(std::vector<TerminalId> stream,
                                std::uint64_t seed, TerminalId alphabet) {
  support::Rng rng(seed);
  for (TerminalId& event : stream) {
    if (rng.below(1000) < 15) {
      event = static_cast<TerminalId>(rng.below(alphabet + 3));
    }
  }
  return stream;
}

class CompiledCatalogDifferential
    : public ::testing::TestWithParam<const apps::App*> {};

TEST_P(CompiledCatalogDifferential, ExactReplayAndDivergedReplayMatch) {
  const apps::App& app = *GetParam();
  harness::RunConfig config;
  config.mode = harness::Mode::kRecord;
  config.app.set = apps::WorkingSet::kSmall;
  config.app.scale = 0.2;
  harness::RunResult result = harness::run_app(app, config);

  ASSERT_FALSE(result.trace.threads.empty());
  ThreadTrace subject = std::move(result.trace.threads[0]);
  ASSERT_TRUE(subject.grammar.finalized());
  ASSERT_TRUE(subject.compile());

  const std::vector<TerminalId> stream = subject.grammar.unfold();
  ASSERT_FALSE(stream.empty());
  TerminalId max_terminal = 0;
  for (TerminalId t : stream) max_terminal = std::max(max_terminal, t);

  // Analysis options: no breaker, every re-anchor visible.
  run_differential(subject, stream, Predictor::Options{});
  // Runtime options: breaker armed — exercised hard by the perturbed
  // replay below.
  run_differential(subject, stream, Predictor::Options::runtime_defaults());
  run_differential(subject, perturb(stream, 0xD1FF + app.name().size(),
                                    max_terminal),
                   Predictor::Options::runtime_defaults());
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CompiledCatalogDifferential,
    ::testing::ValuesIn(apps::all_apps()),
    [](const ::testing::TestParamInfo<const apps::App*>& info) {
      return info.param->name();
    });

}  // namespace
}  // namespace pythia
