// Oracle facade tests: mode semantics, event hook, lifecycle.
#include <gtest/gtest.h>

#include <vector>

#include "core/oracle.hpp"
#include "core/trace_io.hpp"

namespace pythia {
namespace {

TEST(Oracle, ModesReportCorrectly) {
  Oracle off = Oracle::off();
  EXPECT_EQ(off.mode(), Oracle::Mode::kOff);
  EXPECT_FALSE(off.recording());
  EXPECT_FALSE(off.predicting());

  Oracle record = Oracle::record(false);
  EXPECT_EQ(record.mode(), Oracle::Mode::kRecord);
  EXPECT_TRUE(record.recording());
  EXPECT_NE(record.recorder(), nullptr);
  EXPECT_EQ(record.predictor(), nullptr);
}

TEST(Oracle, FinishTransitionsToOff) {
  Oracle oracle = Oracle::record(false);
  oracle.event(0);
  oracle.event(1);
  ThreadTrace trace = oracle.finish();
  EXPECT_EQ(oracle.mode(), Oracle::Mode::kOff);
  EXPECT_EQ(trace.grammar.sequence_length(), 2u);
  // Events after finish are silently dropped (off mode).
  oracle.event(2);
}

TEST(Oracle, FinishOutsideRecordYieldsEmptyTrace) {
  // No-abort boundary: finish() on a non-recording session is tolerated
  // and yields an empty (but finalized, hence loadable) trace.
  Oracle oracle = Oracle::off();
  ThreadTrace trace = oracle.finish();
  EXPECT_TRUE(trace.grammar.finalized());
  EXPECT_EQ(trace.grammar.sequence_length(), 0u);
  EXPECT_TRUE(trace.timing.empty());
}

TEST(Oracle, PredictModeExposesPredictor) {
  Oracle record = Oracle::record(true);
  std::uint64_t now = 0;
  for (int i = 0; i < 20; ++i) {
    record.event(i % 2, now += 100);
  }
  ThreadTrace trace = record.finish();

  Oracle oracle = Oracle::predict(trace);
  EXPECT_TRUE(oracle.predicting());
  ASSERT_NE(oracle.predictor(), nullptr);
  oracle.event(0);
  auto next = oracle.predict_event(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->event, 1u);
}

TEST(Oracle, EventHookFiresInEveryMode) {
  std::vector<TerminalId> hooked;
  auto hook = [&](TerminalId event, std::uint64_t) {
    hooked.push_back(event);
  };

  Oracle off = Oracle::off();
  off.set_event_hook(hook);
  off.event(5);
  EXPECT_EQ(hooked, std::vector<TerminalId>{5});

  hooked.clear();
  Oracle record = Oracle::record(false);
  record.set_event_hook(hook);
  record.event(1);
  record.event(2);
  EXPECT_EQ(hooked, (std::vector<TerminalId>{1, 2}));
  EXPECT_EQ(record.recorder()->event_count(), 2u);
}

TEST(Oracle, PredictQueriesRequirePredictMode) {
  Oracle record = Oracle::record(false);
  record.event(0);
  EXPECT_FALSE(record.predict_event(1).has_value());
  EXPECT_FALSE(record.predict_time_ns(1).has_value());
}

TEST(Oracle, TimestamplessRecordingHasNoTimingModel) {
  Oracle record = Oracle::record(/*timestamps=*/false);
  for (int i = 0; i < 10; ++i) record.event(i % 2, 1000u * i);
  ThreadTrace trace = record.finish();
  EXPECT_TRUE(trace.timing.empty());

  Oracle oracle = Oracle::predict(trace);
  oracle.event(0);
  EXPECT_TRUE(oracle.predict_event(1).has_value());     // events: yes
  EXPECT_FALSE(oracle.predict_time_ns(1).has_value());  // durations: no
}

TEST(Oracle, MoveSemantics) {
  Oracle record = Oracle::record(false);
  record.event(3);
  Oracle moved = std::move(record);
  moved.event(4);
  ThreadTrace trace = moved.finish();
  EXPECT_EQ(trace.grammar.sequence_length(), 2u);
}

}  // namespace
}  // namespace pythia
