// Incremental finalize + delta compile: bit-identity differentials.
//
// The contract under test is exact equality, not approximation: a
// snapshot published through the incremental finalizer (dirty-rule drain,
// shadow sync, timing patch) must be byte-for-byte the snapshot a full
// log replay builds — same PYTHIA02 section digest, same predictions,
// same PYCGRM01 blob bytes — at every publish cadence, across the app
// catalog, under seeded-mutation fuzz, after rule-id tombstoning and
// free-list reuse, and composed with remap_terminals. The OnlineOracle
// differential extends this to the full ramp state machine via
// ramp_digest(), and the DeltaCompiler/publish_compiled tests pin the
// compile-layer reuse paths to compile_thread's output.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/compile.hpp"
#include "core/grammar.hpp"
#include "core/incremental_finalize.hpp"
#include "core/online_oracle.hpp"
#include "core/predictor.hpp"
#include "core/timing.hpp"
#include "core/trace_io.hpp"
#include "engine/snapshot.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

// --- stream generators ------------------------------------------------------

/// Phase-structured stream: loops whose bodies mutate between phases, so
/// rules are created, carved, inlined and destroyed as the grammar tracks
/// the changing structure — the churn the dirty-rule log must capture.
std::vector<TerminalId> mutating_stream(std::uint64_t seed, int alphabet,
                                        std::size_t length) {
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  std::vector<TerminalId> body;
  while (out.size() < length) {
    // Mutate the loop body: occasionally rebuild it outright, otherwise
    // perturb one position — the "seeded mutation" of the fuzz matrix.
    if (body.empty() || rng.below(6) == 0) {
      body.clear();
      const std::uint64_t body_length = 1 + rng.below(6);
      for (std::uint64_t i = 0; i < body_length; ++i) {
        body.push_back(static_cast<TerminalId>(rng.below(alphabet)));
      }
    } else {
      body[rng.below(body.size())] =
          static_cast<TerminalId>(rng.below(alphabet));
    }
    const std::uint64_t reps = 1 + rng.below(12);
    for (std::uint64_t r = 0; r < reps && out.size() < length; ++r) {
      for (TerminalId t : body) out.push_back(t);
    }
  }
  out.resize(length);
  return out;
}

// --- the differential driver ------------------------------------------------

/// Feeds a live grammar + log and publishes through an
/// IncrementalFinalizer, exactly as OnlineOracle::rebuild_snapshot does.
struct Driver {
  Grammar live;
  std::vector<TimedEvent> log;
  IncrementalFinalizer finalizer;
  bool timestamped;
  std::uint64_t clock = 0;

  explicit Driver(bool timed) : timestamped(timed) {
    live.enable_dirty_tracking();
  }

  void feed(TerminalId event, support::Rng& rng) {
    if (timestamped) clock += 1 + rng.below(997);
    live.append(event);
    log.push_back(TimedEvent::make(event, timestamped ? clock : 0));
  }

  void publish() { finalizer.publish(live, log, timestamped); }
};

/// The ground truth: full log replay, the pre-incremental publish path.
struct FullBuild {
  Grammar grammar;
  TimingModel timing;

  FullBuild(const std::vector<TimedEvent>& log, bool timestamped) {
    for (const TimedEvent& e : log) grammar.append(e.event);
    grammar.finalize();
    if (timestamped) timing = TimingModel::replay(grammar, log);
  }
};

void expect_same_timing_global(const TimingModel& a, const TimingModel& b) {
  // Bitwise, not approximate: the incremental global fold accumulates the
  // same integer-valued doubles in the same trace order.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.global_stat().sum_ns),
            std::bit_cast<std::uint64_t>(b.global_stat().sum_ns));
  EXPECT_EQ(a.global_stat().count, b.global_stat().count);
}

void expect_same_predictions(const Grammar& grammar_a,
                             const TimingModel& timing_a,
                             const Grammar& grammar_b,
                             const TimingModel& timing_b,
                             const std::vector<TimedEvent>& log) {
  Predictor a(grammar_a, timing_a.empty() ? nullptr : &timing_a,
              Predictor::Options::runtime_defaults());
  Predictor b(grammar_b, timing_b.empty() ? nullptr : &timing_b,
              Predictor::Options::runtime_defaults());
  const std::size_t warm = std::min<std::size_t>(48, log.size());
  for (std::size_t i = log.size() - warm; i < log.size(); ++i) {
    a.observe(log[i].event);
    b.observe(log[i].event);
    for (std::size_t distance : {std::size_t{1}, std::size_t{3},
                                 std::size_t{8}}) {
      const auto pa = a.predict(distance);
      const auto pb = b.predict(distance);
      ASSERT_EQ(pa.has_value(), pb.has_value()) << "at log index " << i;
      if (pa.has_value()) {
        EXPECT_EQ(pa->event, pb->event);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(pa->probability),
                  std::bit_cast<std::uint64_t>(pb->probability));
      }
    }
    const auto ta = a.predict_time_ns(1);
    const auto tb = b.predict_time_ns(1);
    ASSERT_EQ(ta.has_value(), tb.has_value());
    if (ta.has_value()) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(*ta),
                std::bit_cast<std::uint64_t>(*tb));
    }
  }
}

/// One publish-point check. `deep` additionally compares compiled blob
/// bytes and warmed-predictor behaviour (expensive: per-terminal anchor
/// lowering), so fuzz callers reserve it for the final publish.
void expect_publish_identical(Driver& driver, bool deep) {
  SCOPED_TRACE("publish at " + std::to_string(driver.log.size()));
  driver.live.check_invariants();
  driver.finalizer.grammar().check_invariants();

  const FullBuild full(driver.log, driver.timestamped);
  const std::uint64_t digest_full =
      thread_section_digest(full.grammar, &full.timing);
  const std::uint64_t digest_inc = thread_section_digest(
      driver.finalizer.grammar(), &driver.finalizer.timing());
  ASSERT_EQ(digest_inc, digest_full);
  expect_same_timing_global(driver.finalizer.timing(), full.timing);

  if (!deep) return;
  const std::vector<unsigned char> blob_full =
      compile_thread(full.grammar, &full.timing, digest_full);
  const std::vector<unsigned char> blob_inc = compile_thread(
      driver.finalizer.grammar(), &driver.finalizer.timing(), digest_inc);
  ASSERT_EQ(blob_inc, blob_full);
  expect_same_predictions(driver.finalizer.grammar(),
                          driver.finalizer.timing(), full.grammar,
                          full.timing, driver.log);
}

// --- random-stream differentials -------------------------------------------

TEST(IncrementalFinalize, RandomStreamsMatchFullRebuildDeeply) {
  for (const bool timestamped : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      SCOPED_TRACE("seed " + std::to_string(seed) +
                   (timestamped ? " timed" : " untimed"));
      support::Rng rng(seed * 0x9e3779b9ull + 7);
      const std::vector<TerminalId> stream =
          mutating_stream(seed * 131 + 3, 5, 600);
      Driver driver(timestamped);
      std::size_t next_publish = 24;
      for (TerminalId event : stream) {
        driver.feed(event, rng);
        if (driver.log.size() >= next_publish) {
          driver.publish();
          expect_publish_identical(driver, /*deep=*/driver.log.size() > 400);
          next_publish = driver.log.size() + 24 + rng.below(80);
        }
      }
      driver.publish();
      expect_publish_identical(driver, /*deep=*/true);
      EXPECT_GE(driver.finalizer.stats().publishes, 2u);
    }
  }
}

TEST(IncrementalFinalize, MutationFuzzThousandSeeds) {
  // >= 1000 seeds of mutating streams at randomized low publish cadence
  // (low cadence = small dirty sets = the sharpest test of the patch
  // ranges and the unclean closure). Digest equality at every publish;
  // blob + prediction equality at the final one.
  for (std::uint64_t seed = 0; seed < 1050; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    support::Rng rng(seed ^ 0xfeedull);
    const bool timestamped = (seed % 3) != 2;
    const int alphabet = 2 + static_cast<int>(seed % 5);
    const std::size_t length = 120 + (seed * 37) % 220;
    const std::vector<TerminalId> stream =
        mutating_stream(seed * 977 + 11, alphabet, length);
    Driver driver(timestamped);
    const std::size_t cadence = 16 + rng.below(48);
    std::size_t next_publish = cadence;
    for (TerminalId event : stream) {
      driver.feed(event, rng);
      if (driver.log.size() >= next_publish) {
        driver.publish();
        expect_publish_identical(driver, /*deep=*/false);
        if (::testing::Test::HasFatalFailure()) return;
        next_publish = driver.log.size() + cadence;
      }
    }
    driver.publish();
    expect_publish_identical(driver, /*deep=*/seed % 25 == 0);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalFinalize, SurvivesRuleTombstonesAndFreeListReuse) {
  // Alternating phases force rules to die (inline/destroy) and their
  // structs to recycle through the free list while ids stay unique; the
  // shadow must mirror births and deaths id-for-id.
  support::Rng rng(0xdead5eed);
  Driver driver(/*timed=*/true);
  std::size_t publishes = 0;
  for (int phase = 0; phase < 30; ++phase) {
    const TerminalId a = static_cast<TerminalId>(phase % 4);
    const TerminalId b = static_cast<TerminalId>((phase + 1) % 4);
    for (int rep = 0; rep < 12; ++rep) {
      driver.feed(a, rng);
      driver.feed(b, rng);
      driver.feed(static_cast<TerminalId>(phase % 3), rng);
    }
    driver.publish();
    expect_publish_identical(driver, /*deep=*/phase % 7 == 6);
    ++publishes;
  }
  ASSERT_GE(publishes, 10u);
  // The scenario only proves what it claims if ids actually died: the
  // live table must hold tombstoned slots beyond the live rules.
  EXPECT_GT(driver.live.pool_stats().rule_ids,
            driver.live.pool_stats().rules_live);
  EXPECT_GT(driver.live.pool_stats().rules_free +
                driver.finalizer.grammar().pool_stats().rules_free,
            0u);
}

TEST(IncrementalFinalize, ComposesWithRemapTerminals) {
  // Serialize both snapshots, reload (PYTHIA02 densifies rule ids),
  // remap terminals with the same permutation, and require the results
  // to stay byte-identical — the harness's canonical-renumbering path
  // applied to an incrementally published snapshot.
  support::Rng rng(0x5eed1234);
  Driver driver(/*timed=*/true);
  const std::vector<TerminalId> stream = mutating_stream(77, 6, 500);
  std::size_t next_publish = 32;
  for (TerminalId event : stream) {
    driver.feed(event, rng);
    if (driver.log.size() >= next_publish) {
      driver.publish();
      next_publish = driver.log.size() + 60;
    }
  }
  driver.publish();
  const FullBuild full(driver.log, /*timestamped=*/true);

  EventRegistry registry;
  for (int t = 0; t < 8; ++t) {
    registry.intern("k" + std::to_string(t));
  }
  auto save_reload = [&](const Grammar& grammar,
                         const TimingModel& timing) {
    const std::string path =
        ::testing::TempDir() + "/remap_" +
        std::to_string(reinterpret_cast<std::uintptr_t>(&grammar)) +
        ".pythia";
    const Status saved =
        save_trace_file(path, registry, {{&grammar, &timing}});
    EXPECT_TRUE(saved.ok()) << saved.message();
    Result<Trace> loaded = Trace::try_load(path);
    EXPECT_TRUE(loaded.ok());
    std::remove(path.c_str());
    return loaded.take();
  };

  Trace inc = save_reload(driver.finalizer.grammar(),
                          driver.finalizer.timing());
  Trace ful = save_reload(full.grammar, full.timing);
  ASSERT_EQ(inc.threads.size(), 1u);
  ASSERT_EQ(ful.threads.size(), 1u);

  // Reversal permutation over the 8 interned terminals.
  std::vector<TerminalId> old_to_new(8);
  for (std::size_t t = 0; t < old_to_new.size(); ++t) {
    old_to_new[t] = static_cast<TerminalId>(old_to_new.size() - 1 - t);
  }
  inc.threads[0].grammar.remap_terminals(old_to_new);
  ful.threads[0].grammar.remap_terminals(old_to_new);
  inc.threads[0].grammar.check_invariants();

  EXPECT_EQ(thread_section_digest(inc.threads[0]),
            thread_section_digest(ful.threads[0]));
  EXPECT_EQ(inc.threads[0].grammar.unfold(), ful.threads[0].grammar.unfold());
  const std::vector<unsigned char> blob_inc = compile_thread(
      inc.threads[0].grammar, &inc.threads[0].timing, 0x5eedull);
  const std::vector<unsigned char> blob_ful = compile_thread(
      ful.threads[0].grammar, &ful.threads[0].timing, 0x5eedull);
  EXPECT_EQ(blob_inc, blob_ful);
}

// --- catalog-wide differential ---------------------------------------------

class IncrementalCatalogDifferential
    : public ::testing::TestWithParam<const apps::App*> {};

TEST_P(IncrementalCatalogDifferential, PublishesMatchFullRebuild) {
  const apps::App& app = *GetParam();
  harness::RunConfig config;
  config.mode = harness::Mode::kRecord;
  config.app.set = apps::WorkingSet::kSmall;
  config.app.scale = 0.15;
  harness::RunResult result = harness::run_app(app, config);
  ASSERT_FALSE(result.trace.threads.empty());
  const std::vector<TerminalId> stream =
      result.trace.threads[0].grammar.unfold();
  ASSERT_FALSE(stream.empty());

  support::Rng rng(0xca7a106 + app.name().size());
  Driver driver(/*timed=*/true);
  std::size_t next_publish = 16;
  std::size_t publishes = 0;
  for (TerminalId event : stream) {
    driver.feed(event, rng);
    if (driver.log.size() >= next_publish) {
      driver.publish();
      expect_publish_identical(driver, /*deep=*/publishes % 4 == 3);
      if (::testing::Test::HasFatalFailure()) return;
      ++publishes;
      next_publish = std::max<std::size_t>(
          driver.log.size() + 1,
          static_cast<std::size_t>(driver.log.size() * 1.4));
    }
  }
  driver.publish();
  expect_publish_identical(driver, /*deep=*/true);
  if (stream.size() >= 32) {
    EXPECT_GE(driver.finalizer.stats().publishes, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, IncrementalCatalogDifferential,
    ::testing::ValuesIn(apps::all_apps()),
    [](const ::testing::TestParamInfo<const apps::App*>& info) {
      return info.param->name();
    });

// --- OnlineOracle end-to-end differential ----------------------------------

TEST(OnlineOracleIncremental, RampDigestMatchesFullRebuildEveryEvent) {
  OnlineOracle::Options incremental_options;
  incremental_options.min_snapshot_events = 24;
  incremental_options.snapshot_growth = 1.3;
  OnlineOracle::Options full_options = incremental_options;
  full_options.full_rebuild = true;

  for (std::uint64_t seed : {1ull, 9ull, 23ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    OnlineOracle incremental = OnlineOracle::in_memory(incremental_options);
    OnlineOracle full = OnlineOracle::in_memory(full_options);
    const std::vector<TerminalId> stream =
        mutating_stream(seed * 271 + 5, 5, 900);
    support::Rng rng(seed);
    std::uint64_t clock = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      clock += 1 + rng.below(512);
      incremental.observe(stream[i], clock);
      full.observe(stream[i], clock);
      ASSERT_EQ(incremental.ramp_digest(), full.ramp_digest())
          << "diverged at event " << i;
      if (i % 64 == 0) {
        const auto pi = incremental.predict(1);
        const auto pf = full.predict(1);
        ASSERT_EQ(pi.has_value(), pf.has_value());
        if (pi.has_value()) EXPECT_EQ(pi->event, pf->event);
      }
    }
    // Both oracles published on the same cadence; only the build path
    // differs — and it must actually have differed for this test to mean
    // anything.
    EXPECT_GT(incremental.publish_telemetry().incremental, 0u);
    EXPECT_EQ(incremental.publish_telemetry().full, 0u);
    EXPECT_EQ(full.publish_telemetry().incremental, 0u);
    EXPECT_GT(full.publish_telemetry().full, 0u);
    EXPECT_EQ(incremental.publish_telemetry().publishes,
              full.publish_telemetry().publishes);
  }
}

// --- delta compile ----------------------------------------------------------

TEST(DeltaCompiler, BitIdenticalToCompileThreadAcrossReusePaths) {
  DeltaCompiler compiler;
  support::Rng rng(0xdc0de);

  // Phase 1: grammar grows between compiles — full relowers.
  std::vector<TimedEvent> log;
  std::uint64_t clock = 0;
  const std::vector<TerminalId> stream = mutating_stream(31, 5, 400);
  std::size_t fed = 0;
  auto feed = [&](std::size_t upto) {
    for (; fed < upto; ++fed) {
      clock += 1 + rng.below(300);
      log.push_back(TimedEvent::make(stream[fed], clock));
    }
  };
  auto check = [&](const Grammar& g, const TimingModel* t,
                   std::uint64_t digest) {
    const std::vector<unsigned char> delta = compiler.compile(g, t, digest);
    const std::vector<unsigned char> fresh = compile_thread(g, t, digest);
    ASSERT_EQ(delta, fresh);
  };

  for (std::size_t upto : {120u, 260u, 400u}) {
    feed(upto);
    FullBuild built(log, /*timestamped=*/true);
    check(built.grammar, &built.timing,
          thread_section_digest(built.grammar, &built.timing));
  }
  EXPECT_EQ(compiler.stats().full, 3u);

  // Phase 2: identical grammar. The first check repeats the last digest
  // (same log) — whole-blob reuse. The timing-only change then forces a
  // recompile whose grammar tables are byte-identical to the cached
  // scratch, so the anchor-prediction table is reused — and the blob
  // must still match compile_thread exactly.
  FullBuild base(log, /*timestamped=*/true);
  check(base.grammar, &base.timing,
        thread_section_digest(base.grammar, &base.timing));
  EXPECT_GT(compiler.stats().blob_reused, 0u);
  TimingModel shifted = TimingModel::replay(base.grammar, log);
  shifted.accumulate_context(0x1234, {128.0, 2});
  check(base.grammar, &shifted,
        thread_section_digest(base.grammar, &shifted));
  EXPECT_GT(compiler.stats().anchor_reused, 0u);
  EXPECT_EQ(compiler.stats().full, 3u);

  // Phase 3: nothing changed — whole-blob reuse.
  const std::uint64_t digest = thread_section_digest(base.grammar, &shifted);
  check(base.grammar, &shifted, digest);
  EXPECT_GT(compiler.stats().blob_reused, 0u);
}

TEST(PublishCompiled, ServesDeltaCompiledSnapshotsAcrossRepublishes) {
  engine::PredictServer server;
  DeltaCompiler compiler;
  support::Rng rng(0x9b1d);

  std::vector<TimedEvent> log;
  std::uint64_t clock = 0;
  const std::vector<TerminalId> stream = mutating_stream(57, 4, 600);
  std::size_t fed = 0;
  std::uint64_t last_digest = 0;
  for (std::size_t upto : {150u, 300u, 600u}) {
    for (; fed < upto; ++fed) {
      clock += 1 + rng.below(200);
      log.push_back(TimedEvent::make(stream[fed], clock));
    }
    FullBuild built(log, /*timestamped=*/true);
    last_digest = thread_section_digest(built.grammar, &built.timing);
    const Status published = engine::publish_compiled(
        server, compiler, built.grammar, &built.timing, last_digest, upto);
    ASSERT_TRUE(published.ok()) << published.message();

    Result<engine::PredictSession> opened = server.open(0);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    engine::PredictSession session = opened.take();
    EXPECT_TRUE(session.using_compiled());
    EXPECT_EQ(session.snapshot()->version(), upto);

    // The served automaton must behave exactly like an interpreted
    // predictor over the source grammar.
    Predictor reference(built.grammar, &built.timing,
                        Predictor::Options::runtime_defaults());
    for (std::size_t i = log.size() - 64; i < log.size(); ++i) {
      session.observe(log[i].event);
      reference.observe(log[i].event);
      const auto ps = session.predict(1);
      const auto pr = reference.predict(1);
      ASSERT_EQ(ps.has_value(), pr.has_value());
      if (ps.has_value()) {
        EXPECT_EQ(ps->event, pr->event);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(ps->probability),
                  std::bit_cast<std::uint64_t>(pr->probability));
      }
    }
  }
  EXPECT_EQ(server.publishes(), 3u);
  EXPECT_EQ(compiler.stats().compiles, 3u);

  // Republish with nothing changed: the cached blob serves.
  FullBuild built(log, /*timestamped=*/true);
  ASSERT_TRUE(engine::publish_compiled(server, compiler, built.grammar,
                                       &built.timing, last_digest, 601)
                  .ok());
  EXPECT_EQ(compiler.stats().blob_reused, 1u);
  EXPECT_TRUE(server.open(0).ok());
}

}  // namespace
}  // namespace pythia
