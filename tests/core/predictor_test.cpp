// Predictor tests: tracking, distance-x prediction, probabilities,
// tolerance to unexpected events (paper §II-B/§II-C).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grammar.hpp"
#include "core/predictor.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> ids(const std::string& letters) {
  std::vector<TerminalId> out;
  for (char c : letters) out.push_back(static_cast<TerminalId>(c - 'a'));
  return out;
}

Grammar reduce(const std::string& letters) {
  Grammar grammar;
  for (TerminalId t : ids(letters)) grammar.append(t);
  grammar.finalize();
  return grammar;
}

TEST(Predictor, PerfectReplayPredictsEveryNextEvent) {
  // Feed the exact reference sequence; after each event, predict(1) must
  // name the true next event.
  const std::string trace = "abcabdababc";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  const std::vector<TerminalId> seq = ids(trace);
  std::size_t correct = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    predictor.observe(seq[i]);
    auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value()) << "at index " << i;
    if (prediction->event == seq[i + 1]) ++correct;
  }
  // "abcabdababc" is ambiguous at some points (after 'ab' the next event
  // was c, d, or a in the reference); the majority vote must still be
  // right most of the time.
  EXPECT_GE(correct, (seq.size() - 1) * 2 / 3);
}

TEST(Predictor, DeterministicLoopIsFullyPredictable) {
  std::string trace;
  for (int i = 0; i < 50; ++i) trace += "abc";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  const std::vector<TerminalId> seq = ids(trace);
  // Skip the first few events (anchoring), then demand perfection away
  // from the end of the loop.
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    predictor.observe(seq[i]);
    auto prediction = predictor.predict(1);
    if (i < 3 || i + 4 > seq.size()) continue;  // warm-up / loop end
    ASSERT_TRUE(prediction.has_value());
    ++total;
    if (prediction->event == seq[i + 1]) ++correct;
  }
  EXPECT_EQ(correct, total);
}

TEST(Predictor, MidRandomStartSynchronizes) {
  // Paper §II-B1: tracking can start anywhere, not only at the beginning.
  std::string trace;
  for (int i = 0; i < 30; ++i) trace += "abcd";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  const std::vector<TerminalId> seq = ids(trace);
  // Start observing at an arbitrary offset.
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 17; i + 1 < seq.size() - 8; ++i) {
    predictor.observe(seq[i]);
    if (i < 19) continue;  // two events to disambiguate
    auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value());
    ++total;
    if (prediction->event == seq[i + 1]) ++correct;
  }
  EXPECT_EQ(correct, total);
}

TEST(Predictor, DistanceXPredictions) {
  std::string trace;
  for (int i = 0; i < 100; ++i) trace += "abcd";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  const std::vector<TerminalId> seq = ids(trace);
  for (std::size_t i = 0; i < 20; ++i) predictor.observe(seq[i]);
  // Position after observing seq[19] (a 'd'); event at distance x is
  // seq[19 + x].
  for (std::size_t distance : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    auto prediction = predictor.predict(distance);
    ASSERT_TRUE(prediction.has_value()) << "distance " << distance;
    EXPECT_EQ(prediction->event, seq[19 + distance])
        << "distance " << distance;
    EXPECT_GT(prediction->probability, 0.5);
  }
}

TEST(Predictor, UnknownEventGoesDarkThenRecovers) {
  std::string trace;
  for (int i = 0; i < 20; ++i) trace += "ab";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  predictor.observe(0);  // a
  predictor.observe(1);  // b
  EXPECT_TRUE(predictor.synchronized());
  predictor.observe(25);  // 'z': never seen in the reference execution
  EXPECT_FALSE(predictor.synchronized());
  EXPECT_FALSE(predictor.predict(1).has_value());
  EXPECT_EQ(predictor.stats().unknown, 1u);
  // A known event re-anchors the oracle (§II-B2).
  predictor.observe(0);
  EXPECT_TRUE(predictor.synchronized());
  auto prediction = predictor.predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->event, 1u);  // b follows a
}

TEST(Predictor, SkippedEventsReanchor) {
  // Reference: (abcd)^30. Current run skips "bc" once: ... a b c d a D ...
  std::string trace;
  for (int i = 0; i < 30; ++i) trace += "abcd";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  const std::vector<TerminalId> seq = ids(trace);
  for (std::size_t i = 0; i < 9; ++i) predictor.observe(seq[i]);  // ...a
  predictor.observe(3);  // 'd' — skipped b and c
  EXPECT_TRUE(predictor.synchronized());  // re-anchored on d occurrences
  auto prediction = predictor.predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->event, 0u);  // after d comes a
  EXPECT_GE(predictor.stats().reanchored, 1u);
}

TEST(Predictor, ProbabilitiesReflectBranchFrequencies) {
  // Reference: "ab" 9 times followed by "ac" — after an 'a', 'b' happened
  // 9/10 times. A fresh anchor on 'a' must weight b ≈ 0.9.
  std::string trace;
  for (int i = 0; i < 9; ++i) trace += "ab";
  trace += "ac";
  Grammar grammar = reduce(trace);
  Predictor predictor(grammar);
  predictor.observe(0);  // a — ambiguous anchor
  auto distribution = predictor.predict_distribution(1);
  ASSERT_GE(distribution.size(), 1u);
  EXPECT_EQ(distribution.front().event, 1u);  // b most likely
  EXPECT_GT(distribution.front().probability, 0.6);
  if (distribution.size() >= 2) {
    EXPECT_EQ(distribution[1].event, 2u);  // c
    EXPECT_LT(distribution[1].probability, 0.4);
  }
}

TEST(Predictor, DistributionSumsToOne) {
  Grammar grammar = reduce("abcabdababc");
  Predictor predictor(grammar);
  predictor.observe(0);
  predictor.observe(1);
  auto distribution = predictor.predict_distribution(2);
  double total = 0.0;
  for (const Prediction& p : distribution) total += p.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Predictor, PredictBeyondTraceEndReturnsNothing) {
  Grammar grammar = reduce("abc");
  Predictor predictor(grammar);
  predictor.observe(0);
  predictor.observe(1);
  predictor.observe(2);  // at the last event
  EXPECT_FALSE(predictor.predict(1).has_value());
}

TEST(Predictor, CandidateCapIsRespected) {
  // A trace where 'a' occurs in many distinct contexts.
  support::Rng rng(7);
  Grammar grammar;
  for (int i = 0; i < 2000; ++i) {
    grammar.append(static_cast<TerminalId>(rng.below(3)));
  }
  grammar.finalize();
  Predictor::Options options;
  options.max_candidates = 8;
  Predictor predictor(grammar, nullptr, options);
  for (TerminalId t : {0u, 1u, 0u, 2u, 0u}) {
    predictor.observe(t);
    EXPECT_LE(predictor.candidate_count(), 8u);
  }
}

TEST(Predictor, CrossWorkingSetLoopCountChange) {
  // Record with 10 iterations, run with 25 (the paper's Small->Large
  // scenario, §III-C2): predictions stay correct inside the loop and only
  // break at the boundary (LU/MG-style misprediction).
  std::string reference;
  for (int i = 0; i < 10; ++i) reference += "abc";
  reference += "xy";  // finale
  Grammar grammar = reduce(reference);
  Predictor predictor(grammar);

  std::string current;
  for (int i = 0; i < 25; ++i) current += "abc";
  current += "xy";
  const std::vector<TerminalId> seq = ids(current);
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    predictor.observe(seq[i]);
    auto prediction = predictor.predict(1);
    if (i < 3) continue;
    ++total;
    if (prediction.has_value() && prediction->event == seq[i + 1]) ++correct;
  }
  // Mispredictions are allowed near the loop exit but must be rare.
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.85)
      << correct << "/" << total;
}

TEST(Predictor, StatsAccounting) {
  Grammar grammar = reduce("ababab");
  Predictor predictor(grammar);
  predictor.observe(0);
  predictor.observe(1);
  predictor.observe(0);
  EXPECT_EQ(predictor.stats().observed, 3u);
  EXPECT_GE(predictor.stats().advanced, 1u);
}

}  // namespace
}  // namespace pythia
