// Differential testing across the independent engines:
//  * exponent Grammar vs classic SEQUITUR — both must unfold any input
//    identically (they share no reduction code);
//  * eager Predictor vs LazyPredictor on exact replays — both must track
//    without unknowns and agree on distance-1 answers after warm-up.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/grammar.hpp"
#include "core/lazy_predictor.hpp"
#include "core/predictor.hpp"
#include "core/sequitur_classic.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::vector<TerminalId> random_trace(std::uint64_t seed, int alphabet,
                                     int length, bool loopy) {
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  if (!loopy) {
    for (int i = 0; i < length; ++i) {
      out.push_back(static_cast<TerminalId>(rng.below(alphabet)));
    }
    return out;
  }
  while (out.size() < static_cast<std::size_t>(length)) {
    const auto body_length = 1 + rng.below(5);
    std::vector<TerminalId> body;
    for (std::uint64_t i = 0; i < body_length; ++i) {
      body.push_back(static_cast<TerminalId>(rng.below(alphabet)));
    }
    const auto reps = 1 + rng.below(15);
    for (std::uint64_t r = 0;
         r < reps && out.size() < static_cast<std::size_t>(length); ++r) {
      for (TerminalId t : body) out.push_back(t);
    }
  }
  return out;
}

class EngineDifferential
    : public ::testing::TestWithParam<std::tuple<int, int, bool, int>> {};

TEST_P(EngineDifferential, BothGrammarEnginesRoundTrip) {
  const auto [alphabet, length, loopy, seed] = GetParam();
  const std::vector<TerminalId> trace = random_trace(
      static_cast<std::uint64_t>(seed) * 131 + 17, alphabet, length, loopy);

  Grammar exponents;
  baseline::ClassicSequitur classic;
  for (TerminalId t : trace) {
    exponents.append(t);
    classic.append(t);
  }
  exponents.check_invariants();
  classic.check_invariants();
  EXPECT_EQ(exponents.unfold(), trace);
  EXPECT_EQ(classic.unfold(), trace);
  // On loop-structured input the exponent grammar is never larger; on
  // unstructured input the two algorithms make different factoring
  // choices, so only a loose bound holds.
  std::size_t exponent_nodes = 0;
  for (const Rule* rule : exponents.rules()) exponent_nodes += rule->length;
  if (loopy) {
    EXPECT_LE(exponent_nodes, classic.node_count() + 2);
  } else {
    EXPECT_LE(exponent_nodes, classic.node_count() * 2 + 8);
  }
}

TEST_P(EngineDifferential, BothTrackersStayDarkFree) {
  const auto [alphabet, length, loopy, seed] = GetParam();
  const std::vector<TerminalId> trace = random_trace(
      static_cast<std::uint64_t>(seed) * 733 + 5, alphabet, length, loopy);

  Grammar grammar;
  for (TerminalId t : trace) grammar.append(t);
  grammar.finalize();

  Predictor eager(grammar);
  LazyPredictor lazy(grammar);
  for (TerminalId t : trace) {
    eager.observe(t);
    lazy.observe(t);
  }
  EXPECT_EQ(eager.stats().unknown, 0u);
  EXPECT_EQ(lazy.stats().unknown, 0u);
  // The replay is exact, so recoveries stay rare. Unstructured traces
  // can evict the true position from the capped candidate set and force
  // an occasional re-anchor; structured ones should barely ever.
  const auto budget = static_cast<std::uint64_t>(length) / 8 + 3;
  EXPECT_LE(eager.stats().reanchored, budget);
  EXPECT_LE(lazy.stats().reanchored, budget);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineDifferential,
    ::testing::Combine(::testing::Values(2, 4, 7),      // alphabet
                       ::testing::Values(50, 500),      // length
                       ::testing::Bool(),               // loopy
                       ::testing::Range(0, 5)));        // seeds

TEST(EngineDifferential, AppLikeStructuredStream) {
  // A BT-like stream through all four engines at once.
  std::vector<TerminalId> trace;
  for (int i = 0; i < 6; ++i) trace.push_back(20);
  for (int iteration = 0; iteration < 300; ++iteration) {
    for (TerminalId t : {0u, 1u, 2u, 3u, 4u, 4u, 5u}) trace.push_back(t);
  }
  trace.push_back(21);
  trace.push_back(21);

  Grammar exponents;
  baseline::ClassicSequitur classic;
  for (TerminalId t : trace) {
    exponents.append(t);
    classic.append(t);
  }
  EXPECT_EQ(exponents.unfold(), trace);
  EXPECT_EQ(classic.unfold(), trace);
  EXPECT_LT(exponents.rule_count(), classic.rule_count());

  exponents.finalize();
  Predictor eager(exponents);
  LazyPredictor lazy(exponents);
  std::size_t agreement = 0, total = 0;
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    eager.observe(trace[i]);
    lazy.observe(trace[i]);
    if (i < 10) continue;
    const auto a = eager.predict(1);
    const auto b = lazy.predict(1);
    if (a.has_value() && b.has_value()) {
      ++total;
      if (a->event == b->event) ++agreement;
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GE(agreement * 100, total * 95);
}

}  // namespace
}  // namespace pythia
