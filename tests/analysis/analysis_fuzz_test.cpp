// Analysis-under-corruption fuzzing: whatever happens to the bytes of a
// compiled blob, grammar-domain analytics must either reject the blob
// with a typed Status (and degrade to the interpreted grammar) or — when
// every checksum and structural check passed — produce exactly the same
// answers as the interpreted path. Never a crash, never garbage results
// from corrupt tables. Runs under the ASan/UBSan workflow like the other
// fuzz suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/query.hpp"
#include "core/compile.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(input),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream output(path, std::ios::binary | std::ios::trunc);
  output.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
}

/// First byte of the trailing compiled region (kind-3 section framing).
std::size_t compiled_region_begin(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 8;
  while (offset + 16 <= bytes.size()) {
    std::uint32_t kind = 0;
    std::uint32_t size = 0;
    std::memcpy(&kind, &bytes[offset], 4);
    std::memcpy(&size, &bytes[offset + 4], 4);
    if (kind == 3) return offset;
    offset += 16 + size;
  }
  return bytes.size();
}

ThreadTrace recorded_thread() {
  support::Rng source(0xA11CE);
  Recorder recorder(Recorder::Options{.record_timestamps = true});
  std::uint64_t now = 0;
  for (int i = 0; i < 400; ++i) {
    recorder.record(static_cast<TerminalId>(source.below(4)),
                    now += 100 + source.below(300));
  }
  return std::move(recorder).finish();
}

void expect_same_analysis(const analysis::Query& truth,
                          const analysis::Query& probe, int seed) {
  ASSERT_EQ(truth.events(), probe.events()) << "seed " << seed;
  ASSERT_EQ(truth.rules(), probe.rules()) << "seed " << seed;
  const analysis::SummarySet& a = truth.summaries();
  const analysis::SummarySet& b = probe.summaries();
  ASSERT_EQ(a.rules.size(), b.rules.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].exp_len, b.rules[i].exp_len) << "seed " << seed;
    EXPECT_EQ(a.rules[i].subtree_hash, b.rules[i].subtree_hash)
        << "seed " << seed;
    EXPECT_EQ(a.rules[i].occurrences, b.rules[i].occurrences)
        << "seed " << seed;
  }
  analysis::PhaseTree ta;
  analysis::PhaseTree tb;
  truth.phases(analysis::PhaseOptions{}, ta);
  probe.phases(analysis::PhaseOptions{}, tb);
  ASSERT_EQ(ta.nodes.size(), tb.nodes.size()) << "seed " << seed;
  for (std::size_t i = 0; i < ta.nodes.size(); ++i) {
    EXPECT_EQ(ta.nodes[i].events, tb.nodes[i].events) << "seed " << seed;
  }
  for (std::uint64_t i = 0; i < truth.events(); i += 37) {
    TerminalId x = 0;
    TerminalId y = 0;
    ASSERT_TRUE(truth.event_at(i, x)) << "seed " << seed;
    ASSERT_TRUE(probe.event_at(i, y)) << "seed " << seed;
    EXPECT_EQ(x, y) << "seed " << seed << " index " << i;
  }
}

TEST(AnalysisFuzz, CorruptBlobsRejectOrAnswerExactly) {
  ThreadTrace thread = recorded_thread();
  ASSERT_TRUE(thread.compile());
  const std::vector<unsigned char> pristine = thread.compiled_blob;
  const analysis::Query truth =
      analysis::Query::over(thread.grammar, &thread.timing);
  ASSERT_TRUE(truth.valid());

  support::Rng rng(0xFA22);
  int rejected = 0;
  int accepted = 0;
  constexpr int kSeeds = 1000;
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::vector<unsigned char> blob = pristine;
    const std::uint64_t mode = rng.below(10);
    if (mode < 7) {
      const int flips = 1 + static_cast<int>(rng.below(16));
      for (int f = 0; f < flips; ++f) {
        blob[rng.below(blob.size())] ^=
            static_cast<unsigned char>(1 + rng.below(255));
      }
    } else if (mode < 9) {
      blob.resize(rng.below(blob.size() + 1));
    } else {
      const std::size_t begin = rng.below(blob.size());
      const std::size_t length =
          std::min<std::size_t>(1 + rng.below(256), blob.size() - begin);
      for (std::size_t i = 0; i < length; ++i) {
        blob[begin + i] = static_cast<unsigned char>(rng.below(256));
      }
    }

    const Result<CompiledView> view =
        CompiledView::parse(blob.data(), blob.size());
    if (!view.ok()) {
      // Typed rejection: the caller degrades to the interpreted grammar,
      // which still answers everything.
      ++rejected;
      EXPECT_FALSE(view.status().message().empty()) << "seed " << seed;
      continue;
    }
    // The blob passed every CRC and structural check (flips in padding
    // or slack): analysis over it must agree with the interpreted truth.
    ++accepted;
    const analysis::Query probe = analysis::Query::over_compiled(view.value());
    ASSERT_TRUE(probe.valid()) << "seed " << seed;
    expect_same_analysis(truth, probe, seed);
  }
  // The corpus must overwhelmingly exercise the rejection path.
  EXPECT_GT(rejected, kSeeds * 9 / 10);
  EXPECT_EQ(rejected + accepted, kSeeds);
}

TEST(AnalysisFuzz, CorruptFileDegradesToInterpretedAnalysis) {
  // File-level: damage the compiled section, salvage-load, and ask
  // Query::over_thread — it must transparently fall back to the intact
  // interpreted grammar and answer exactly.
  Trace trace;
  trace.registry.intern("a");
  trace.registry.intern("b");
  trace.registry.intern("c");
  trace.registry.intern("d");
  trace.threads.push_back(recorded_thread());
  const std::string path = temp_path("analysis_fuzz.pythia");
  trace.save(path);

  const std::vector<std::uint8_t> pristine = file_bytes(path);
  const std::size_t region = compiled_region_begin(pristine);
  ASSERT_LT(region, pristine.size()) << "file must carry a compiled section";
  const analysis::Query truth =
      analysis::Query::over(trace.threads[0].grammar,
                            &trace.threads[0].timing);

  support::Rng rng(0xD3AD);
  int degraded = 0;
  constexpr int kSeeds = 200;
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::vector<std::uint8_t> bytes = pristine;
    const int flips = 1 + static_cast<int>(rng.below(16));
    for (int f = 0; f < flips; ++f) {
      const std::size_t offset = region + rng.below(bytes.size() - region);
      bytes[offset] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    write_bytes(path, bytes);

    const Result<Trace> loaded = Trace::try_load(path);
    ASSERT_TRUE(loaded.ok())
        << "seed " << seed << ": " << loaded.status().to_string();
    ASSERT_TRUE(loaded.value().thread_ok(0)) << "seed " << seed;
    const ThreadTrace& salvaged = loaded.value().threads[0];
    if (!salvaged.compiled.valid()) ++degraded;
    const analysis::Query probe = analysis::Query::over_thread(salvaged);
    ASSERT_TRUE(probe.valid()) << "seed " << seed;
    expect_same_analysis(truth, probe, seed);
  }
  EXPECT_GT(degraded, kSeeds / 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pythia
