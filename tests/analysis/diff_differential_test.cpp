// grammar_diff() must be bit-identical to the expansion oracle — same
// counters, same agreement percentage, same divergence indices — on
// synthetic adversarial pairs, seeded random pairs, and the full app
// catalog (ISSUE acceptance criterion).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diff.hpp"
#include "apps/app.hpp"
#include "core/grammar.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

Grammar from_events(const std::vector<TerminalId>& events) {
  Grammar grammar;
  for (const TerminalId event : events) grammar.append(event);
  grammar.finalize();
  return grammar;
}

void expect_identical(const Grammar& reference, const Grammar& other,
                      const std::string& label) {
  const analysis::DiffReport slow = analysis::expand_diff(reference, other);
  const analysis::DiffReport fast = analysis::grammar_diff(reference, other);
  EXPECT_EQ(slow.events, fast.events) << label;
  EXPECT_EQ(slow.advanced, fast.advanced) << label;
  EXPECT_EQ(slow.reanchored, fast.reanchored) << label;
  EXPECT_EQ(slow.unknown, fast.unknown) << label;
  EXPECT_EQ(slow.divergence_points, fast.divergence_points) << label;
  EXPECT_DOUBLE_EQ(slow.agreement_percent(), fast.agreement_percent())
      << label;
}

void expect_identical(const std::vector<TerminalId>& ref_events,
                      const std::vector<TerminalId>& other_events,
                      const std::string& label) {
  const Grammar reference = from_events(ref_events);
  const Grammar other = from_events(other_events);
  expect_identical(reference, other, label);
}

std::vector<TerminalId> periodic(std::size_t repeats,
                                 const std::vector<TerminalId>& period) {
  std::vector<TerminalId> out;
  out.reserve(repeats * period.size());
  for (std::size_t i = 0; i < repeats; ++i) {
    out.insert(out.end(), period.begin(), period.end());
  }
  return out;
}

TEST(DiffDifferential, IdenticalPeriodicTrace) {
  const std::vector<TerminalId> trace = periodic(50, {1, 2, 3});
  expect_identical(trace, trace, "identical");
}

TEST(DiffDifferential, LegacyDemoDetour) {
  // The trace_diff self-demo: 50x(a,b) with an injected c at i == 25.
  const std::vector<TerminalId> reference = periodic(50, {0, 1});
  std::vector<TerminalId> other;
  for (int i = 0; i < 50; ++i) {
    other.push_back(0);
    other.push_back(1);
    if (i == 25) other.push_back(2);
  }
  expect_identical(reference, other, "detour");
  expect_identical(other, reference, "detour reversed");
}

TEST(DiffDifferential, UnknownEventFlood) {
  const std::vector<TerminalId> reference = periodic(30, {1, 2});
  std::vector<TerminalId> other = periodic(5, {1, 2});
  other.insert(other.end(), 5000, TerminalId{9});  // never in reference
  other.insert(other.end(), 10, TerminalId{1});
  expect_identical(reference, other, "unknown flood");
}

TEST(DiffDifferential, ExponentRunLongerThanReference) {
  std::vector<TerminalId> reference(500, TerminalId{7});
  std::vector<TerminalId> other(100000, TerminalId{7});
  expect_identical(reference, other, "run overrun");
  expect_identical(other, reference, "run underrun");
}

TEST(DiffDifferential, MismatchedRuleFlood) {
  // Reference repeats (a b); other repeats (a c) many times: every
  // block repetition re-anchors identically — the block-cycle path.
  const std::vector<TerminalId> reference = periodic(100, {1, 2});
  const std::vector<TerminalId> other = periodic(50000, {1, 3});
  expect_identical(reference, other, "rule flood");
}

TEST(DiffDifferential, SharedPrefixDivergentSuffix) {
  std::vector<TerminalId> reference = periodic(200, {1, 2, 3, 4});
  std::vector<TerminalId> other = periodic(120, {1, 2, 3, 4});
  const std::vector<TerminalId> suffix = periodic(80, {1, 2, 4, 3});
  other.insert(other.end(), suffix.begin(), suffix.end());
  expect_identical(reference, other, "suffix divergence");
}

TEST(DiffDifferential, SingleEventTraces) {
  expect_identical({5}, {5}, "single match");
  expect_identical({5}, {6}, "single mismatch");
  expect_identical(periodic(20, {1, 2}), {1}, "other single");
}

TEST(DiffDifferential, NestedPhases) {
  // Two-level phase structure with an inner loop count change.
  std::vector<TerminalId> reference;
  std::vector<TerminalId> other;
  for (int outer = 0; outer < 20; ++outer) {
    for (int inner = 0; inner < 8; ++inner) {
      reference.push_back(1);
      reference.push_back(2);
      other.push_back(1);
      other.push_back(2);
    }
    // `other` runs two extra inner iterations every fourth phase.
    if (outer % 4 == 3) {
      other.push_back(1);
      other.push_back(2);
      other.push_back(1);
      other.push_back(2);
    }
    reference.push_back(3);
    other.push_back(3);
  }
  expect_identical(reference, other, "nested phases");
}

TEST(DiffDifferential, SeededRandomPairs) {
  // The workhorse: small alphabets with run-heavy shapes drive every
  // fast path (skip, run absorption, anchor cycles, block cycles) and
  // every slow-path handoff between them.
  support::Rng rng(0x90d17f00d5eedULL);
  for (int round = 0; round < 150; ++round) {
    const std::uint32_t alphabet = 2 + rng.below(4);
    auto make = [&](std::size_t length) {
      std::vector<TerminalId> events;
      events.reserve(length);
      while (events.size() < length) {
        const TerminalId t = static_cast<TerminalId>(rng.below(alphabet));
        // Bias toward runs and repeated blocks so grammars grow
        // exponents and shared rules.
        const std::uint64_t run = 1 + rng.below(6);
        for (std::uint64_t i = 0; i < run && events.size() < length; ++i) {
          events.push_back(t);
        }
        if (rng.below(3) == 0 && events.size() >= 4) {
          const std::size_t block = 2 + rng.below(3);
          const std::size_t start = events.size() - block;
          for (std::size_t i = 0; i < block && events.size() < length; ++i) {
            events.push_back(events[start + i]);
          }
        }
      }
      return events;
    };
    const std::vector<TerminalId> reference = make(40 + rng.below(400));
    const std::vector<TerminalId> other = make(40 + rng.below(400));
    expect_identical(reference, other,
                     "random round " + std::to_string(round));
    if (HasFailure()) break;
  }
}

TEST(StructuralDiff, IdenticalGrammarsHaveNoRegions) {
  const std::vector<TerminalId> events = periodic(40, {1, 2, 3});
  const Grammar reference = from_events(events);
  const Grammar other = from_events(events);
  EXPECT_TRUE(analysis::structural_diff(reference, other).empty());
}

TEST(StructuralDiff, LocalizesAnInjectedEvent) {
  // `other` injects terminal 9 (absent from the reference) into every
  // loop body: the divergence must surface as a region whose offsets
  // cover the injected event and whose occurrence count reflects the
  // loop repetition.
  const std::vector<TerminalId> reference_events = periodic(40, {1, 2, 3});
  const std::vector<TerminalId> other_events = periodic(40, {1, 2, 9, 3});
  const Grammar reference = from_events(reference_events);
  const Grammar other = from_events(other_events);

  const std::vector<analysis::DiffRegion> regions =
      analysis::structural_diff(reference, other);
  ASSERT_FALSE(regions.empty());
  std::uint64_t total_occurrences = 0;
  for (const analysis::DiffRegion& region : regions) {
    ASSERT_FALSE(region.rule_path.empty());
    EXPECT_EQ(region.rule_path.front(), 0u);  // paths start at the root
    EXPECT_LT(region.begin_event, region.end_event);
    EXPECT_GE(region.occurrences, 1u);
    total_occurrences += region.occurrences *
                         (region.end_event - region.begin_event);
  }
  // The 40 injected events are accounted for across the regions.
  EXPECT_EQ(total_occurrences, 40u);
}

TEST(StructuralDiff, RegionCapIsHonoured) {
  // Many distinct unknown terminals scattered through the trace produce
  // many regions; the cap must bound the report.
  std::vector<TerminalId> reference_events = periodic(50, {1, 2});
  std::vector<TerminalId> other_events;
  for (int i = 0; i < 50; ++i) {
    other_events.push_back(1);
    other_events.push_back(2);
    other_events.push_back(static_cast<TerminalId>(100 + i));
  }
  const Grammar reference = from_events(reference_events);
  const Grammar other = from_events(other_events);
  const std::vector<analysis::DiffRegion> regions =
      analysis::structural_diff(reference, other, 8);
  EXPECT_LE(regions.size(), 8u);
  EXPECT_FALSE(regions.empty());
}

TEST(DiffDifferential, CatalogWide) {
  apps::AppConfig config;
  config.scale = 0.12;
  for (const apps::App* app : apps::all_apps()) {
    const Trace reference = harness::record_reference(*app, config);
    apps::AppConfig rerun = config;
    rerun.seed = config.seed + 1;
    const Trace other = harness::record_reference(*app, rerun);
    ASSERT_FALSE(reference.threads.empty());
    ASSERT_FALSE(other.threads.empty());
    expect_identical(reference.threads[0].grammar, other.threads[0].grammar,
                     std::string("catalog ") + app->name());
    if (HasFailure()) break;
  }
}

TEST(DiffDifferential, IrregularCatalog) {
  apps::AppConfig config;
  config.scale = 0.12;
  for (const apps::App* app : apps::irregular_apps()) {
    const Trace reference = harness::record_reference(*app, config);
    apps::AppConfig rerun = config;
    rerun.seed = config.seed + 7;
    const Trace other = harness::record_reference(*app, rerun);
    expect_identical(reference.threads[0].grammar, other.threads[0].grammar,
                     std::string("irregular ") + app->name());
    if (HasFailure()) break;
  }
}

}  // namespace
}  // namespace pythia
