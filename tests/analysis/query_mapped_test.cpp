// Analysis over an mmapped trace: Query::over_thread binds straight to
// the mapped compiled section — no deserialization — and after the
// constructor's one-time warm-up, phases() and event_at() make zero
// allocator calls (this binary links pythia_alloc_hook, so every global
// operator new/delete is counted).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/query.hpp"
#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "core/trace_io.hpp"
#include "harness/runner.hpp"
#include "support/alloc_counter.hpp"
#include "support/io.hpp"

namespace pythia {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(QueryMapped, MappedCompiledSectionAnswersWithoutDeserializing) {
  apps::AppConfig config;
  config.scale = 0.15;
  Trace recorded = harness::record_reference(*apps::lulesh_app(), config);
  ASSERT_FALSE(recorded.threads.empty());
  ASSERT_TRUE(recorded.threads[0].compile());
  const std::string path = temp_path("query_mapped.pythia");
  recorded.save(path);

  const Result<support::MappedFile> mapped = support::MappedFile::open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  const Result<Trace> loaded =
      load_trace_zero_copy(mapped.value().data(), mapped.value().size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_FALSE(loaded.value().threads.empty());
  const ThreadTrace& thread = loaded.value().threads[0];
  ASSERT_TRUE(thread.compiled.valid())
      << "zero-copy load must bind the mapped compiled section";

  const analysis::Query query = analysis::Query::over_thread(thread);
  ASSERT_TRUE(query.valid());
  EXPECT_TRUE(query.compiled()) << "must bind the compiled encoding";

  // Same answers as the fully deserialized interpreted path.
  const analysis::Query truth = analysis::Query::over(
      recorded.threads[0].grammar, &recorded.threads[0].timing);
  ASSERT_EQ(query.events(), truth.events());
  ASSERT_EQ(query.rules(), truth.rules());
  for (std::uint32_t i = 0; i < query.rules(); ++i) {
    EXPECT_EQ(query.summaries().rules[i].exp_len,
              truth.summaries().rules[i].exp_len)
        << i;
    EXPECT_EQ(query.summaries().rules[i].subtree_hash,
              truth.summaries().rules[i].subtree_hash)
        << i;
  }
  for (std::uint64_t i = 0; i < query.events(); i += 13) {
    TerminalId a = 0;
    TerminalId b = 0;
    ASSERT_TRUE(query.event_at(i, a));
    ASSERT_TRUE(truth.event_at(i, b));
    EXPECT_EQ(a, b) << i;
  }
  std::remove(path.c_str());
}

TEST(QueryMapped, AnalysisIsAllocationFreeAfterWarmup) {
  if (!support::alloc_hook_active()) {
    GTEST_SKIP() << "pythia_alloc_hook not linked into this binary";
  }
  apps::AppConfig config;
  config.scale = 0.15;
  Trace recorded = harness::record_reference(*apps::lulesh_app(), config);
  ASSERT_FALSE(recorded.threads.empty());
  ASSERT_TRUE(recorded.threads[0].compile());
  const std::string path = temp_path("query_mapped_alloc.pythia");
  recorded.save(path);

  const Result<support::MappedFile> mapped = support::MappedFile::open(path);
  ASSERT_TRUE(mapped.ok());
  const Result<Trace> loaded =
      load_trace_zero_copy(mapped.value().data(), mapped.value().size());
  ASSERT_TRUE(loaded.ok());
  const ThreadTrace& thread = loaded.value().threads[0];
  ASSERT_TRUE(thread.compiled.valid());

  // Warm-up: the query computes its summaries once; one phases() call
  // grows the tree's capacity.
  const analysis::Query query = analysis::Query::over_thread(thread);
  ASSERT_TRUE(query.compiled());
  analysis::PhaseTree tree;
  const analysis::PhaseOptions options;
  query.phases(options, tree);
  TerminalId sink = 0;
  (void)query.event_at(0, sink);

  // Steady state: repeated analysis over the mapped tables allocates
  // nothing at all.
  const support::AllocSnapshot before = support::alloc_snapshot();
  std::uint64_t checksum = 0;
  for (int round = 0; round < 50; ++round) {
    query.phases(options, tree);
    checksum += tree.nodes.size();
    for (std::uint64_t i = 0; i < query.events(); i += 101) {
      TerminalId event = 0;
      if (query.event_at(i, event)) checksum += event;
    }
  }
  const support::AllocSnapshot delta = support::alloc_snapshot() - before;
  EXPECT_EQ(delta.allocations, 0u)
      << delta.allocations << " allocations (" << delta.bytes
      << " bytes) across 50 warm analysis rounds";
  EXPECT_GT(checksum, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pythia
