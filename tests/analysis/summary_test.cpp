// Rule summaries: O(grammar) facts about full expansions, checked
// against ground truth from actual unfolding, on both encodings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/interner.hpp"
#include "analysis/lens.hpp"
#include "analysis/query.hpp"
#include "analysis/summary.hpp"
#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "harness/runner.hpp"

namespace pythia {
namespace {

Grammar from_events(const std::vector<TerminalId>& events) {
  Grammar grammar;
  for (const TerminalId event : events) grammar.append(event);
  grammar.finalize();
  return grammar;
}

// Ground-truth expansion of one rule (test-only; the library never does
// this).
void unfold_rule_into(const Grammar& grammar, const Rule& rule,
                      std::vector<TerminalId>& out) {
  for (const Node* node = rule.head; node != nullptr; node = node->next) {
    for (std::uint64_t rep = 0; rep < node->exp; ++rep) {
      if (node->sym.is_terminal()) {
        out.push_back(node->sym.terminal_id());
      } else {
        unfold_rule_into(grammar, *grammar.rule_by_id(node->sym.rule_id()),
                         out);
      }
    }
  }
}

std::vector<TerminalId> unfold_rule(const Grammar& grammar,
                                    const Rule& rule) {
  std::vector<TerminalId> out;
  unfold_rule_into(grammar, rule, out);
  return out;
}

std::vector<TerminalId> phased_trace() {
  // 20 outer phases of (8 x (1 2)) followed by a 3.
  std::vector<TerminalId> events;
  for (int outer = 0; outer < 20; ++outer) {
    for (int inner = 0; inner < 8; ++inner) {
      events.push_back(1);
      events.push_back(2);
    }
    events.push_back(3);
  }
  return events;
}

TEST(Summary, RootMatchesUnfold) {
  const std::vector<TerminalId> events = phased_trace();
  const Grammar grammar = from_events(events);
  const analysis::RuleLens lens(grammar, nullptr);
  const analysis::SummarySet set = analysis::compute_summaries(lens);

  ASSERT_FALSE(set.rules.empty());
  EXPECT_EQ(set.events, events.size());
  EXPECT_EQ(set.root().exp_len, events.size());
  EXPECT_EQ(set.root().occurrences, 1u);
  EXPECT_EQ(set.root().first_terminal, events.front());
  EXPECT_EQ(set.root().last_terminal, events.back());
  EXPECT_FALSE(set.timed);

  // Sketch covers exactly the terminals 1, 2, 3.
  const std::uint64_t expected_sketch =
      (1ull << (1 % 64)) | (1ull << (2 % 64)) | (1ull << (3 % 64));
  EXPECT_EQ(set.root().terminal_sketch, expected_sketch);
}

TEST(Summary, PerRuleMatchesRuleUnfold) {
  const Grammar grammar = from_events(phased_trace());
  const analysis::RuleLens lens(grammar, nullptr);
  const analysis::SummarySet set = analysis::compute_summaries(lens);

  const std::vector<const Rule*> rules = grammar.rules();
  ASSERT_EQ(rules.size(), set.rules.size());
  for (std::size_t dense = 1; dense < rules.size(); ++dense) {
    const std::vector<TerminalId> expansion =
        unfold_rule(grammar, *rules[dense]);
    const analysis::RuleSummary& summary = set.rules[dense];
    EXPECT_EQ(summary.exp_len, expansion.size()) << "rule " << dense;
    ASSERT_FALSE(expansion.empty());
    EXPECT_EQ(summary.first_terminal, expansion.front()) << "rule " << dense;
    EXPECT_EQ(summary.last_terminal, expansion.back()) << "rule " << dense;
    for (const TerminalId t : expansion) {
      EXPECT_NE(summary.terminal_sketch & (1ull << (t % 64)), 0u)
          << "rule " << dense << " missing terminal " << t;
    }
    EXPECT_EQ(summary.occurrences, rules[dense]->occurrences)
        << "rule " << dense;
  }
}

TEST(Summary, TimingRollupCoversTrace) {
  const std::vector<TerminalId> events = phased_trace();
  const Grammar grammar = from_events(events);
  // Synthetic timestamps: event i arrives at 100*i ns, so total recorded
  // duration is 100 * (n - 1) (the first event has no arrival gap).
  std::vector<std::uint64_t> times;
  times.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) times.push_back(100 * i);
  const TimingModel timing = TimingModel::replay(grammar, events, times);
  ASSERT_FALSE(timing.empty());

  const analysis::RuleLens lens(grammar, &timing);
  const analysis::SummarySet set = analysis::compute_summaries(lens);
  EXPECT_TRUE(set.timed);
  const double expected_total = 100.0 * (events.size() - 1);
  EXPECT_NEAR(set.root().total_time_ns, expected_total,
              expected_total * 1e-9);
  // Self time never exceeds the rollup.
  for (const analysis::RuleSummary& summary : set.rules) {
    EXPECT_LE(summary.self_time_ns, summary.total_time_ns + 1e-6);
  }
}

TEST(Summary, CompiledEqualsInterpreted) {
  apps::AppConfig config;
  config.scale = 0.15;
  Trace trace = harness::record_reference(*apps::lulesh_app(), config);
  ASSERT_FALSE(trace.threads.empty());
  ThreadTrace& thread = trace.threads[0];
  ASSERT_TRUE(thread.compile());
  ASSERT_TRUE(thread.compiled.valid());

  const analysis::RuleLens interp(thread.grammar, &thread.timing);
  const analysis::RuleLens compiled(thread.compiled);
  ASSERT_EQ(interp.rule_count(), compiled.rule_count());

  const analysis::SummarySet a = analysis::compute_summaries(interp);
  const analysis::SummarySet b = analysis::compute_summaries(compiled);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.timed, b.timed);
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    const analysis::RuleSummary& x = a.rules[i];
    const analysis::RuleSummary& y = b.rules[i];
    EXPECT_EQ(x.exp_len, y.exp_len) << i;
    EXPECT_EQ(x.occurrences, y.occurrences) << i;
    EXPECT_EQ(x.body_nodes, y.body_nodes) << i;
    EXPECT_EQ(x.depth, y.depth) << i;
    EXPECT_EQ(x.first_terminal, y.first_terminal) << i;
    EXPECT_EQ(x.last_terminal, y.last_terminal) << i;
    EXPECT_EQ(x.terminal_sketch, y.terminal_sketch) << i;
    EXPECT_EQ(x.subtree_hash, y.subtree_hash) << i;
    EXPECT_EQ(x.self_samples, y.self_samples) << i;
    EXPECT_NEAR(x.self_time_ns, y.self_time_ns, 1e-6) << i;
    EXPECT_NEAR(x.total_time_ns, y.total_time_ns, 1e-3) << i;
  }
}

TEST(Summary, InternerConsIdsAgreeAcrossGrammars) {
  // The interner is exact: cross-grammar cons equality must mean
  // identical expansions.
  const std::vector<TerminalId> events = phased_trace();
  const Grammar left = from_events(events);
  const Grammar right = from_events(events);
  analysis::RuleLens left_lens(left, nullptr);
  analysis::RuleLens right_lens(right, nullptr);

  analysis::SubtreeInterner interner;
  std::vector<std::uint32_t> left_cons;
  std::vector<std::uint32_t> right_cons;
  interner.intern(left_lens, left_cons);
  interner.intern(right_lens, right_cons);

  // Same event stream, same construction: the grammars are isomorphic and
  // every rule must land on the same cons id.
  ASSERT_EQ(left_cons.size(), right_cons.size());
  EXPECT_EQ(left_cons, right_cons);

  // Cons-equal rules across the two grammars expand identically.
  const std::vector<const Rule*> left_rules = left.rules();
  const std::vector<const Rule*> right_rules = right.rules();
  for (std::size_t i = 1; i < left_rules.size(); ++i) {
    for (std::size_t j = 1; j < right_rules.size(); ++j) {
      if (left_cons[i] != right_cons[j]) continue;
      EXPECT_EQ(unfold_rule(left, *left_rules[i]),
                unfold_rule(right, *right_rules[j]))
          << "cons " << left_cons[i];
    }
  }
}

TEST(Summary, QueryEventAtMatchesUnfold) {
  apps::AppConfig config;
  config.scale = 0.1;
  Trace trace = harness::record_reference(*apps::amr_app(), config);
  ASSERT_FALSE(trace.threads.empty());
  const ThreadTrace& thread = trace.threads[0];
  const std::vector<TerminalId> events = thread.grammar.unfold();

  const analysis::Query query =
      analysis::Query::over(thread.grammar, &thread.timing);
  ASSERT_TRUE(query.valid());
  EXPECT_EQ(query.events(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    TerminalId got = 0;
    ASSERT_TRUE(query.event_at(i, got)) << i;
    EXPECT_EQ(got, events[i]) << i;
  }
  TerminalId past = 0;
  EXPECT_FALSE(query.event_at(events.size(), past));
}

}  // namespace
}  // namespace pythia
