// Phase/loop detection: the grammar's rule structure is the phase
// structure; the detector must find loops with correct trace-wide event
// counts and timing rollups without unfolding anything.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/phases.hpp"
#include "analysis/query.hpp"
#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "core/grammar.hpp"
#include "harness/runner.hpp"

namespace pythia {
namespace {

Grammar from_events(const std::vector<TerminalId>& events) {
  Grammar grammar;
  for (const TerminalId event : events) grammar.append(event);
  grammar.finalize();
  return grammar;
}

std::vector<TerminalId> phased_trace(int outers, int inners) {
  std::vector<TerminalId> events;
  for (int outer = 0; outer < outers; ++outer) {
    for (int inner = 0; inner < inners; ++inner) {
      events.push_back(1);
      events.push_back(2);
    }
    events.push_back(3);
  }
  return events;
}

TEST(Phases, TreeInvariants) {
  const std::vector<TerminalId> events = phased_trace(20, 8);
  const Grammar grammar = from_events(events);
  const analysis::Query query = analysis::Query::over(grammar);
  analysis::PhaseTree tree;
  query.phases(analysis::PhaseOptions{}, tree);

  ASSERT_FALSE(tree.nodes.empty());
  EXPECT_EQ(tree.total_events, events.size());
  EXPECT_FALSE(tree.truncated);

  // Node 0 is the whole trace.
  EXPECT_EQ(tree.nodes[0].parent, -1);
  EXPECT_EQ(tree.nodes[0].events, events.size());
  EXPECT_EQ(tree.nodes[0].runs, 1u);

  for (std::size_t i = 1; i < tree.nodes.size(); ++i) {
    const analysis::PhaseNode& node = tree.nodes[i];
    // Parents precede their children.
    ASSERT_GE(node.parent, 0);
    ASSERT_LT(static_cast<std::size_t>(node.parent), i);
    const analysis::PhaseNode& parent = tree.nodes[node.parent];
    EXPECT_EQ(node.depth, parent.depth + 1);
    // A child never covers more of the trace than its parent.
    EXPECT_LE(node.events, parent.events);
    EXPECT_GT(node.events, 0u);
  }

  // Children of each node never sum past the parent's coverage.
  std::vector<std::uint64_t> child_events(tree.nodes.size(), 0);
  for (std::size_t i = 1; i < tree.nodes.size(); ++i) {
    child_events[tree.nodes[i].parent] += tree.nodes[i].events;
  }
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    EXPECT_LE(child_events[i], tree.nodes[i].events) << "node " << i;
  }
}

TEST(Phases, FindsTheInnerLoop) {
  // The 8x inner loop must surface as a loop node covering the (1 2)
  // repetitions: 20 outer runs x 8 reps x 2 events = 320 of 340.
  const std::vector<TerminalId> events = phased_trace(20, 8);
  const Grammar grammar = from_events(events);
  const analysis::Query query = analysis::Query::over(grammar);
  analysis::PhaseTree tree;
  analysis::PhaseOptions options;
  options.min_coverage = 0.05;
  query.phases(options, tree);

  bool found_loop = false;
  for (const analysis::PhaseNode& node : tree.nodes) {
    if (node.is_loop && node.events >= 320) found_loop = true;
  }
  EXPECT_TRUE(found_loop);
}

TEST(Phases, CoverageFilterAndTruncation) {
  const std::vector<TerminalId> events = phased_trace(20, 8);
  const Grammar grammar = from_events(events);
  const analysis::Query query = analysis::Query::over(grammar);

  // An impossible coverage bar leaves only the root.
  analysis::PhaseTree tree;
  analysis::PhaseOptions options;
  options.min_coverage = 1.1;
  query.phases(options, tree);
  EXPECT_EQ(tree.nodes.size(), 1u);

  // A one-node cap truncates.
  options = analysis::PhaseOptions{};
  options.max_nodes = 1;
  query.phases(options, tree);
  EXPECT_EQ(tree.nodes.size(), 1u);
  EXPECT_TRUE(tree.truncated);

  // Depth 0 stops at the root without truncation flagging every site.
  options = analysis::PhaseOptions{};
  options.max_depth = 0;
  query.phases(options, tree);
  EXPECT_EQ(tree.nodes.size(), 1u);
}

TEST(Phases, TimedRollupsPropagate) {
  const std::vector<TerminalId> events = phased_trace(20, 8);
  const Grammar grammar = from_events(events);
  std::vector<std::uint64_t> times;
  for (std::size_t i = 0; i < events.size(); ++i) times.push_back(50 * i);
  const TimingModel timing = TimingModel::replay(grammar, events, times);

  const analysis::Query query = analysis::Query::over(grammar, &timing);
  analysis::PhaseTree tree;
  query.phases(analysis::PhaseOptions{}, tree);
  ASSERT_TRUE(tree.timed);
  const double total = tree.nodes[0].time_ns;
  EXPECT_NEAR(total, 50.0 * (events.size() - 1), total * 1e-9);
  for (std::size_t i = 1; i < tree.nodes.size(); ++i) {
    EXPECT_LE(tree.nodes[i].time_ns,
              tree.nodes[tree.nodes[i].parent].time_ns + 1e-6);
  }
}

TEST(Phases, CompiledMatchesInterpreted) {
  apps::AppConfig config;
  config.scale = 0.15;
  Trace trace = harness::record_reference(*apps::lulesh_app(), config);
  ASSERT_FALSE(trace.threads.empty());
  ThreadTrace& thread = trace.threads[0];
  ASSERT_TRUE(thread.compile());

  const analysis::Query interp =
      analysis::Query::over(thread.grammar, &thread.timing);
  const analysis::Query compiled =
      analysis::Query::over_compiled(thread.compiled);
  analysis::PhaseTree a;
  analysis::PhaseTree b;
  interp.phases(analysis::PhaseOptions{}, a);
  compiled.phases(analysis::PhaseOptions{}, b);

  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.timed, b.timed);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent) << i;
    EXPECT_EQ(a.nodes[i].is_rule, b.nodes[i].is_rule) << i;
    EXPECT_EQ(a.nodes[i].is_loop, b.nodes[i].is_loop) << i;
    EXPECT_EQ(a.nodes[i].rule, b.nodes[i].rule) << i;
    EXPECT_EQ(a.nodes[i].terminal, b.nodes[i].terminal) << i;
    EXPECT_EQ(a.nodes[i].reps, b.nodes[i].reps) << i;
    EXPECT_EQ(a.nodes[i].runs, b.nodes[i].runs) << i;
    EXPECT_EQ(a.nodes[i].events, b.nodes[i].events) << i;
    EXPECT_NEAR(a.nodes[i].time_ns, b.nodes[i].time_ns, 1e-3) << i;
  }
}

}  // namespace
}  // namespace pythia
