// Numeric-kernel tests: correctness and reference checksums (the NPB
// verification stage, scaled down).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "apps/kernels.hpp"

namespace pythia::apps::kernels {
namespace {

TEST(EpKernel, AcceptanceRateNearPiOverFour) {
  support::Rng rng(271828);
  const EpResult result = ep_gaussian_pairs(rng, 200'000);
  const double acceptance =
      static_cast<double>(result.accepted) / 200'000.0;
  EXPECT_NEAR(acceptance, M_PI / 4.0, 0.01);
}

TEST(EpKernel, GaussianMomentsAreSane) {
  support::Rng rng(314159);
  const EpResult result = ep_gaussian_pairs(rng, 300'000);
  // Mean of a standard Gaussian: ~0.
  EXPECT_NEAR(result.sum_x / static_cast<double>(result.accepted), 0.0,
              0.01);
  EXPECT_NEAR(result.sum_y / static_cast<double>(result.accepted), 0.0,
              0.01);
  // Annulus counts decay sharply (|N(0,1)| beyond 3 is rare).
  EXPECT_GT(result.counts[0], result.counts[2]);
  EXPECT_GT(result.counts[1], result.counts[3]);
  EXPECT_EQ(result.counts[9], 0u);
}

TEST(EpKernel, DeterministicForSeed) {
  support::Rng a(7), b(7);
  const EpResult first = ep_gaussian_pairs(a, 50'000);
  const EpResult second = ep_gaussian_pairs(b, 50'000);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_DOUBLE_EQ(first.sum_x, second.sum_x);
}

TEST(IsKernel, SortsAndChecksums) {
  support::Rng rng(99);
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back(static_cast<std::uint32_t>(rng.below(512)));
  }
  std::vector<std::uint32_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  const std::uint64_t checksum_a = bucket_sort(keys, 512);
  EXPECT_EQ(keys, expected);
  // Checksum is stable for the same multiset.
  std::vector<std::uint32_t> again = expected;
  EXPECT_EQ(bucket_sort(again, 512), checksum_a);
}

TEST(CgKernel, MatvecMatchesDenseReference) {
  std::vector<double> p = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y(5);
  cg_matvec(p, y);
  // A = 4I - shift(-1) - shift(+1), periodic.
  EXPECT_DOUBLE_EQ(y[0], 4 * 1.0 - 5.0 - 2.0);
  EXPECT_DOUBLE_EQ(y[2], 4 * 3.0 - 2.0 - 4.0);
  EXPECT_DOUBLE_EQ(y[4], 4 * 5.0 - 4.0 - 1.0);
}

TEST(CgKernel, ResidualDecreasesUntilConvergence) {
  CgState state(64);
  double previous = std::sqrt(state.rho);
  for (int iteration = 0; iteration < 20; ++iteration) {
    const double residual = cg_step(state);
    EXPECT_LT(residual, previous);
    previous = residual;
    if (previous < 1e-12) break;  // the ones-RHS is an eigenvector: 1 step
  }
  EXPECT_LT(previous, 1e-6);
}

TEST(CgKernel, SolvesTheSystem) {
  CgState state(30);  // multiple of 5: the pattern is periodic-compatible
  for (int i = 0; i < 40; ++i) cg_step(state);
  // Verify A x ~= b with b_i = 1 + (i%5)/4 (the constructor's RHS).
  std::vector<double> ax(30);
  cg_matvec(state.x, ax);
  for (std::size_t i = 0; i < ax.size(); ++i) {
    EXPECT_NEAR(ax[i], 1.0 + 0.25 * static_cast<double>(i % 5), 1e-8);
  }
}

TEST(MgKernel, RelaxationReducesResidual) {
  const std::size_t n = 12;
  std::vector<double> grid(n * n * n, 0.0);
  const double after_one = mg_relax(grid, n, 1);
  const double after_more = mg_relax(grid, n, 5);
  EXPECT_LT(after_more, after_one);
  EXPECT_GT(after_one, 0.0);
}

TEST(MgKernel, BoundaryStaysZero) {
  const std::size_t n = 8;
  std::vector<double> grid(n * n * n, 0.0);
  mg_relax(grid, n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(grid[(i * n + j) * n + 0], 0.0);
      EXPECT_DOUBLE_EQ(grid[(0 * n + i) * n + j], 0.0);
    }
  }
}

TEST(HydroKernel, EnergyDecaysToZero) {
  std::vector<double> energy(100, 10.0);
  std::vector<double> pressure(100, 0.0);
  double previous = 1e300;
  for (int step = 0; step < 50; ++step) {
    const double total = hydro_energy_update(energy, pressure, 0.1);
    EXPECT_LT(total, previous);
    previous = total;
  }
  EXPECT_LT(previous, 200.0);
  for (double e : energy) EXPECT_GE(e, 0.0);
}

TEST(FftKernel, DeltaHasFlatSpectrum) {
  // FFT of a delta: every bin has magnitude 1.
  std::vector<double> signal(2 * 16, 0.0);
  signal[0] = 1.0;
  const double checksum = fft_radix2(signal);
  EXPECT_NEAR(checksum, 16.0, 1e-9);
}

TEST(FftKernel, ConstantConcentratesInDc) {
  std::vector<double> signal(2 * 32, 0.0);
  for (int i = 0; i < 32; ++i) signal[2 * i] = 1.0;
  fft_radix2(signal);
  EXPECT_NEAR(signal[0], 32.0, 1e-9);  // DC bin
  for (int bin = 1; bin < 32; ++bin) {
    EXPECT_NEAR(signal[2 * bin], 0.0, 1e-9);
    EXPECT_NEAR(signal[2 * bin + 1], 0.0, 1e-9);
  }
}

TEST(FftKernel, ParsevalHolds) {
  support::Rng rng(5);
  const std::size_t n = 64;
  std::vector<double> signal(2 * n);
  double time_energy = 0.0;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    signal[i] = rng.uniform() - 0.5;
  }
  for (std::size_t i = 0; i < n; ++i) {
    time_energy += signal[2 * i] * signal[2 * i] +
                   signal[2 * i + 1] * signal[2 * i + 1];
  }
  fft_radix2(signal);
  double freq_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    freq_energy += signal[2 * i] * signal[2 * i] +
                   signal[2 * i + 1] * signal[2 * i + 1];
  }
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n), 1e-6);
}

}  // namespace
}  // namespace pythia::apps::kernels
