// Application-suite tests: every app runs, is deterministic, and its
// recorded grammar has the qualitative shape Table I reports (EP tiny,
// LU heavy, Quicksilver/AMG irregular, ...).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "apps/app.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {
namespace {

using apps::App;
using apps::AppConfig;
using apps::WorkingSet;

AppConfig small_config() {
  AppConfig config;
  config.set = WorkingSet::kSmall;
  config.scale = 0.25;  // keep unit tests fast
  return config;
}

class EveryApp : public ::testing::TestWithParam<const App*> {};

TEST_P(EveryApp, RunsVanilla) {
  const App& app = *GetParam();
  RunConfig config;
  config.mode = Mode::kVanilla;
  config.app = small_config();
  const RunResult result = run_app(app, config);
  EXPECT_GT(result.makespan_virtual_ns, 0u);
  EXPECT_GT(result.total_events, 0u);
}

TEST_P(EveryApp, RecordsAValidTrace) {
  const App& app = *GetParam();
  RunConfig config;
  config.mode = Mode::kRecord;
  config.app = small_config();
  const RunResult result = run_app(app, config);
  ASSERT_EQ(result.trace.threads.size(),
            static_cast<std::size_t>(app.default_ranks()));
  for (const ThreadTrace& thread : result.trace.threads) {
    thread.grammar.check_invariants();
    EXPECT_TRUE(thread.grammar.finalized());
    EXPECT_GT(thread.grammar.sequence_length(), 0u);
    EXPECT_FALSE(thread.timing.empty());
  }
  EXPECT_GT(result.mean_rules, 0.0);
}

TEST_P(EveryApp, EventStreamIsDeterministic) {
  // Terminal *ids* depend on the (racy) interning order across ranks, so
  // determinism is checked at the semantic level: the described event
  // sequence per rank must be identical between runs.
  const App& app = *GetParam();
  RunConfig config;
  config.mode = Mode::kRecord;
  config.app = small_config();
  const RunResult a = run_app(app, config);
  const RunResult b = run_app(app, config);
  ASSERT_EQ(a.trace.threads.size(), b.trace.threads.size());
  auto described = [](const RunResult& result, std::size_t rank) {
    std::vector<std::string> out;
    for (TerminalId t : result.trace.threads[rank].grammar.unfold()) {
      out.push_back(result.trace.registry.describe(t));
    }
    return out;
  };
  for (std::size_t rank = 0; rank < a.trace.threads.size(); ++rank) {
    EXPECT_EQ(described(a, rank), described(b, rank))
        << app.name() << " rank " << rank;
  }
}

TEST_P(EveryApp, PredictRunStaysSynchronized) {
  // Same working set, same seed: the oracle should track almost every
  // event by advancing, not re-anchoring.
  const App& app = *GetParam();
  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.app = small_config();
  const RunResult recorded = run_app(app, record_config);

  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.app = small_config();
  predict_config.reference = &recorded.trace;
  const RunResult predicted = run_app(app, predict_config);

  const auto& stats = predicted.predictor_stats;
  ASSERT_GT(stats.observed, 0u);
  EXPECT_EQ(stats.unknown, 0u) << app.name();
  // Each rank's very first event necessarily anchors (counted as a
  // re-anchor); beyond that, tracking should advance — allow at most one
  // extra recovery per rank.
  const auto ranks = static_cast<std::uint64_t>(app.default_ranks());
  EXPECT_LE(stats.reanchored, 2 * ranks)
      << app.name() << ": advanced " << stats.advanced << "/"
      << stats.observed << " reanchored " << stats.reanchored;
  EXPECT_EQ(stats.advanced + stats.reanchored + stats.unknown,
            stats.observed);
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, EveryApp, ::testing::ValuesIn(apps::all_apps()),
    [](const ::testing::TestParamInfo<const App*>& info) {
      return info.param->name();
    });

TEST(AppCatalog, ThirteenAppsInPaperOrder) {
  const auto& apps = apps::all_apps();
  ASSERT_EQ(apps.size(), 13u);
  const std::vector<std::string> expected = {
      "BT", "CG",  "EP",     "FT",     "IS",     "LU",         "MG",
      "SP", "AMG", "Lulesh", "Kripke", "miniFE", "Quicksilver"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(apps[i]->name(), expected[i]);
  }
  EXPECT_EQ(apps::find_app("Lulesh"), apps[9]);
  EXPECT_EQ(apps::find_app("nonexistent"), nullptr);
}

TEST(AppShapes, EventCountOrderingMatchesTableOne) {
  // Table I's qualitative ordering: EP has almost no events; LU and
  // Lulesh/Quicksilver dominate.
  std::map<std::string, std::uint64_t> events;
  for (const App* app : apps::all_apps()) {
    RunConfig config;
    config.mode = Mode::kVanilla;
    config.app = small_config();
    events[app->name()] = run_app(*app, config).total_events;
  }
  EXPECT_LT(events["EP"], 100u);
  EXPECT_LT(events["FT"], 2000u);
  EXPECT_GT(events["LU"], 10u * events["FT"]);
  EXPECT_GT(events["Lulesh"], events["Kripke"]);
}

TEST(AppShapes, GrammarSizeOrderingMatchesTableOne) {
  // EP: ~1 rule. BT: a handful. Quicksilver and AMG: large, irregular
  // grammars (paper: 409 and 150 rules).
  std::map<std::string, double> rules;
  for (const char* name : {"EP", "BT", "AMG", "Quicksilver", "miniFE"}) {
    const App* app = apps::find_app(name);
    ASSERT_NE(app, nullptr);
    RunConfig config;
    config.mode = Mode::kRecord;
    config.app = small_config();
    rules[name] = run_app(*app, config).mean_rules;
  }
  EXPECT_LE(rules["EP"], 2.0);
  EXPECT_LE(rules["BT"], 12.0);
  EXPECT_GT(rules["Quicksilver"], rules["miniFE"]);
  EXPECT_GT(rules["AMG"], rules["BT"]);
}

TEST(HybridApps, AdaptiveLuleshBeatsFixedMax) {
  const App* lulesh = apps::find_app("Lulesh");
  ASSERT_NE(lulesh, nullptr);

  RunConfig base;
  base.app = small_config();
  base.ranks = 1;  // pure-OpenMP Lulesh, like §III-D
  base.machine = ompsim::MachineModel::pudding();
  base.omp_max_threads = 24;

  RunConfig record_config = base;
  record_config.mode = Mode::kRecord;
  const RunResult recorded = run_app(*lulesh, record_config);

  RunConfig vanilla_config = base;
  vanilla_config.mode = Mode::kVanilla;
  const RunResult vanilla = run_app(*lulesh, vanilla_config);

  RunConfig predict_config = base;
  predict_config.mode = Mode::kPredict;
  predict_config.reference = &recorded.trace;
  predict_config.omp_adaptive = true;
  const RunResult predicted = run_app(*lulesh, predict_config);

  EXPECT_LT(predicted.makespan_virtual_ns, vanilla.makespan_virtual_ns);
  EXPECT_LT(predicted.omp_stats.mean_team(), 24.0);
}

}  // namespace
}  // namespace pythia::harness
