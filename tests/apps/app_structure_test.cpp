// Per-application structural tests: each skeleton must show the
// communication/region structure the paper describes for it (fig. 7,
// Table I's qualitative columns, §III-C1's discussion of irregularity).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {
namespace {

using apps::AppConfig;
using apps::WorkingSet;

AppConfig config_for(WorkingSet set, std::uint64_t seed = 42) {
  AppConfig config;
  config.set = set;
  config.scale = 0.25;
  config.seed = seed;
  return config;
}

RunResult record(const std::string& name, WorkingSet set,
                 std::uint64_t seed = 42) {
  const apps::App* app = apps::find_app(name);
  EXPECT_NE(app, nullptr);
  RunConfig config;
  config.mode = Mode::kRecord;
  config.app = config_for(set, seed);
  return run_app(*app, config);
}

std::vector<std::string> described_stream(const RunResult& result,
                                          std::size_t rank) {
  std::vector<std::string> out;
  for (TerminalId t : result.trace.threads[rank].grammar.unfold()) {
    out.push_back(result.trace.registry.describe(t));
  }
  return out;
}

std::size_t count_prefix(const std::vector<std::string>& events,
                         const std::string& prefix) {
  std::size_t total = 0;
  for (const std::string& event : events) {
    if (event.rfind(prefix, 0) == 0) ++total;
  }
  return total;
}

TEST(BtStructure, MatchesFigureSeven) {
  const RunResult result = record("BT", WorkingSet::kSmall);
  const auto events = described_stream(result, 0);
  // Fig. 7: six broadcasts up front, barrier, the time-step loop, two
  // allreduces, a reduce and a barrier at the end.
  ASSERT_GE(events.size(), 12u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].rfind("MPI_Bcast", 0), 0u);
  }
  EXPECT_EQ(count_prefix(events, "MPI_Barrier"), 2u);
  EXPECT_EQ(count_prefix(events, "MPI_Allreduce"), 2u);
  EXPECT_EQ(count_prefix(events, "MPI_Reduce"), 1u);
  // The grammar itself stays tiny (paper: 3 rules).
  EXPECT_LE(result.trace.threads[0].grammar.rule_count(), 4u);
}

TEST(EpStructure, SixEventsPerRank) {
  // Table I: EP has 384 events over 64 ranks = 6 per rank, 1 rule.
  const RunResult result = record("EP", WorkingSet::kLarge);
  for (std::size_t rank = 0; rank < result.trace.threads.size(); ++rank) {
    EXPECT_EQ(result.trace.threads[rank].grammar.sequence_length(), 6u);
    EXPECT_EQ(result.trace.threads[rank].grammar.rule_count(), 1u);
  }
}

TEST(LuStructure, WavefrontSweepsDominate) {
  const RunResult result = record("LU", WorkingSet::kSmall);
  const auto events = described_stream(result, 0);
  // Blocking sends/recvs from the pipelined sweeps dominate the stream.
  const std::size_t p2p = count_prefix(events, "MPI_Send") +
                          count_prefix(events, "MPI_Recv");
  EXPECT_GT(p2p, events.size() / 2);
}

TEST(LuStructure, EventCountGrowsWithWorkingSet) {
  // LU's plane count scales with the grid: larger sets, more messages.
  const std::uint64_t small =
      record("LU", WorkingSet::kSmall).total_events;
  const std::uint64_t large =
      record("LU", WorkingSet::kLarge).total_events;
  EXPECT_GT(large, small);
}

TEST(QuicksilverStructure, SeedChangesTheStream) {
  // §III-C1: "its MPI communication pattern depends on the particles'
  // position" — different seeds must give different event streams.
  const RunResult a = record("Quicksilver", WorkingSet::kSmall, 1);
  const RunResult b = record("Quicksilver", WorkingSet::kSmall, 2);
  bool any_difference = false;
  for (std::size_t rank = 0; rank < a.trace.threads.size(); ++rank) {
    if (described_stream(a, rank) != described_stream(b, rank)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(BtStructure, SeedDoesNotChangeTheStream) {
  // Regular applications are seed-independent.
  const RunResult a = record("BT", WorkingSet::kSmall, 1);
  const RunResult b = record("BT", WorkingSet::kSmall, 2);
  for (std::size_t rank = 0; rank < a.trace.threads.size(); ++rank) {
    EXPECT_EQ(described_stream(a, rank), described_stream(b, rank));
  }
}

TEST(AmgStructure, SetupIsIrregularSolveIsNot) {
  // Two AMG runs with different seeds differ (setup traffic is
  // matrix-dependent), but a fixed seed is fully reproducible.
  const RunResult a = record("AMG", WorkingSet::kSmall, 5);
  const RunResult b = record("AMG", WorkingSet::kSmall, 6);
  const RunResult c = record("AMG", WorkingSet::kSmall, 5);
  bool differs = false;
  for (std::size_t rank = 0; rank < a.trace.threads.size(); ++rank) {
    if (described_stream(a, rank) != described_stream(b, rank)) {
      differs = true;
    }
    EXPECT_EQ(described_stream(a, rank), described_stream(c, rank));
  }
  EXPECT_TRUE(differs);
}

TEST(LuleshStructure, ThirtyRegionsPerTimeStep) {
  const RunResult result = record("Lulesh", WorkingSet::kSmall);
  const auto events = described_stream(result, 0);
  const std::size_t begins = count_prefix(events, "GOMP_parallel_start");
  const std::size_t ends = count_prefix(events, "GOMP_parallel_end");
  EXPECT_EQ(begins, ends);
  ASSERT_GT(begins, 0u);
  EXPECT_EQ(begins % 30, 0u);  // 30 regions per time step (§III-D2)
  // All thirty distinct region ids appear.
  std::set<std::string> distinct;
  for (const std::string& event : events) {
    if (event.rfind("GOMP_parallel_start", 0) == 0) distinct.insert(event);
  }
  EXPECT_EQ(distinct.size(), 30u);
}

TEST(KripkeStructure, EightOctantSweeps) {
  const RunResult result = record("Kripke", WorkingSet::kSmall);
  const auto events = described_stream(result, 0);
  std::set<std::string> sweep_regions;
  for (int octant = 0; octant < 8; ++octant) {
    const std::string name =
        "GOMP_parallel_start(" + std::to_string(10 + octant) + ")";
    if (std::find(events.begin(), events.end(), name) != events.end()) {
      sweep_regions.insert(name);  // region ids 10..17: the octants
    }
  }
  EXPECT_EQ(sweep_regions.size(), 8u);
}

TEST(FtStructure, TransposeEveryIteration) {
  const RunResult result = record("FT", WorkingSet::kSmall);
  const auto events = described_stream(result, 0);
  const std::size_t alltoalls = count_prefix(events, "MPI_Alltoall");
  const std::size_t checksums = count_prefix(events, "MPI_Allreduce");
  EXPECT_GE(alltoalls, 2u);
  EXPECT_EQ(checksums + 1, alltoalls);  // setup transpose has no checksum
}

TEST(HybridApps, MixMpiAndOmpEventsInOneStream) {
  // The per-rank oracle sees both runtimes' events (paper §III-B uses
  // both shims together for the hybrid applications).
  for (const char* name : {"AMG", "Lulesh", "Kripke", "miniFE",
                           "Quicksilver"}) {
    const RunResult result = record(name, WorkingSet::kSmall);
    const auto events = described_stream(result, 0);
    EXPECT_GT(count_prefix(events, "GOMP_"), 0u) << name;
    EXPECT_GT(count_prefix(events, "MPI_"), 0u) << name;
  }
}

TEST(WorkingSets, VirtualTimeGrowsWithProblemSize) {
  for (const char* name : {"BT", "FT", "Lulesh", "miniFE"}) {
    const apps::App* app = apps::find_app(name);
    RunConfig config;
    config.mode = Mode::kVanilla;
    config.app = config_for(WorkingSet::kSmall);
    const std::uint64_t small = run_app(*app, config).makespan_virtual_ns;
    config.app = config_for(WorkingSet::kLarge);
    const std::uint64_t large = run_app(*app, config).makespan_virtual_ns;
    EXPECT_GT(large, small) << name;
  }
}

}  // namespace
}  // namespace pythia::harness
