// Online mode end-to-end: run_app with Mode::kOnline learns while the
// application executes — no reference trace anywhere — opens the ramp on
// periodic workloads, drives all four prediction consumers, journals
// crash-safe sessions, and survives the adversarially irregular apps.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {
namespace {

using apps::AppConfig;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Online options that ramp within a few hundred events.
OnlineOracle::Options fast_ramp() {
  OnlineOracle::Options options;
  options.min_snapshot_events = 48;
  options.snapshot_growth = 1.3;
  options.warmup_replay = 32;
  options.ramp_window = 32;
  options.ramp_min_samples = 12;
  options.serve_above = 0.55;
  options.drop_below = 0.35;
  return options;
}

/// Strongly periodic MPI-only app: the easy case the ramp must open on.
class LoopApp final : public apps::App {
 public:
  std::string name() const override { return "Loop"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 3; }
  void run_rank(apps::RankEnv& env, const apps::AppConfig&) const override {
    auto& mpi = env.mpi;
    for (int i = 0; i < 400; ++i) {
      mpi.compute(1000.0);
      mpi.barrier();
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
    }
  }
};

/// Periodic hybrid app touching every consumer: adaptive OpenMP teams,
/// isends (routed via the configured SendPath), guided I/O reads.
class ConsumerApp final : public apps::App {
 public:
  std::string name() const override { return "Consumers"; }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 2; }
  void run_rank(apps::RankEnv& env, const apps::AppConfig&) const override {
    auto& mpi = env.mpi;
    const std::vector<double> payload(8, 1.0);
    const int dst = (mpi.rank() + 1) % mpi.size();
    const int src = (mpi.rank() + mpi.size() - 1) % mpi.size();
    for (int i = 0; i < 300; ++i) {
      env.omp->parallel(16, 40'000.0, 0.9);
      std::vector<mpisim::Request> reqs;
      reqs.push_back(mpi.irecv(src, 7));
      reqs.push_back(mpi.isend_doubles(dst, 7, payload));
      mpi.waitall(reqs);
      if (env.io != nullptr) {
        for (int b = 0; b < 4; ++b) {
          env.io->read(static_cast<std::uint64_t>((i % 8) * 4 + b));
          env.io->compute(2'000.0);
        }
      }
      mpi.barrier();
    }
  }
};

TEST(OnlineMode, RampOpensAndTraceIsCollected) {
  LoopApp app;
  RunConfig config;
  config.mode = Mode::kOnline;
  config.online = fast_ramp();
  const RunResult result = run_app(app, config);

  EXPECT_EQ(result.trace.threads.size(), 3u);
  for (const auto& thread : result.trace.threads) {
    EXPECT_TRUE(thread.grammar.finalized());
    EXPECT_GT(thread.grammar.sequence_length(), 0u);
  }
  EXPECT_EQ(result.ranks_serving, 3u);
  EXPECT_EQ(result.ranks_salvaged, 0u);
  EXPECT_GT(result.online_stats.snapshots, 0u);
  EXPECT_GT(result.online_stats.served_events, 0u);
  EXPECT_GT(result.online_stats.first_served_event, 0u);
  EXPECT_EQ(result.online_stats.events, result.total_events);
}

TEST(OnlineMode, DeterministicAcrossRuns) {
  LoopApp app;
  RunConfig config;
  config.mode = Mode::kOnline;
  config.online = fast_ramp();
  const RunResult a = run_app(app, config);
  const RunResult b = run_app(app, config);
  EXPECT_EQ(a.makespan_virtual_ns, b.makespan_virtual_ns);
  EXPECT_EQ(a.online_stats.events, b.online_stats.events);
  EXPECT_EQ(a.online_stats.hits, b.online_stats.hits);
  EXPECT_EQ(a.online_stats.served_events, b.online_stats.served_events);
  EXPECT_EQ(a.online_stats.ramp_trips, b.online_stats.ramp_trips);
  EXPECT_EQ(a.ranks_serving, b.ranks_serving);
}

TEST(OnlineMode, DrivesAllFourConsumers) {
  ConsumerApp app;
  RunConfig config;
  config.mode = Mode::kOnline;
  config.online = fast_ramp();
  config.omp_adaptive = true;
  config.send_path = SendPath::kAggregate;
  config.io.enabled = true;
  const RunResult result = run_app(app, config);

  // OpenMP adaptive teams consulted the oracle (vanilla fallback counts
  // as a degraded decision while the ramp is closed).
  EXPECT_GT(result.omp_stats.regions, 0u);
  // Aggregation path saw every isend; flushes happened at sync points.
  EXPECT_GT(result.aggregator_stats.sends, 0u);
  EXPECT_GT(result.aggregator_stats.flushes, 0u);
  // Guided I/O ran reads through the block store.
  EXPECT_GT(result.io_stats.reads, 0u);
  EXPECT_EQ(result.ranks_serving, 2u);

  // Persistent-channel path: same app, other send path.
  config.send_path = SendPath::kPersistent;
  const RunResult persistent = run_app(app, config);
  EXPECT_GT(persistent.persistent_stats.sends, 0u);
  EXPECT_EQ(persistent.ranks_serving, 2u);
}

TEST(OnlineMode, SessionBackedRunJournalsPerRank) {
  const std::string dir = fresh_dir("online_mode_sessions");
  LoopApp app;
  RunConfig config;
  config.mode = Mode::kOnline;
  config.online = fast_ramp();
  config.online_session_dir = dir;
  config.online_session.checkpoint_every_events = 200;
  const RunResult result = run_app(app, config);

  EXPECT_EQ(result.ranks_serving, 3u);
  EXPECT_EQ(result.ranks_salvaged, 0u);
  EXPECT_EQ(result.online_stats.events, result.total_events);
  for (int rank = 0; rank < 3; ++rank) {
    const std::string rank_dir = dir + "/rank-" + std::to_string(rank);
    EXPECT_TRUE(std::filesystem::exists(rank_dir + "/MANIFEST"))
        << rank_dir;
    // finish() wrote the per-rank trace atomically.
    EXPECT_TRUE(std::filesystem::exists(rank_dir + "/trace.pythia"))
        << rank_dir;
  }
}

TEST(OnlineMode, IrregularAppsRecordAndRunOnline) {
  AppConfig small;
  small.scale = 0.25;
  for (const apps::App* app : apps::irregular_apps()) {
    RunConfig record;
    record.mode = Mode::kRecord;
    record.app = small;
    const RunResult recorded = run_app(*app, record);
    EXPECT_GT(recorded.total_events, 0u) << app->name();
    EXPECT_EQ(recorded.trace.threads.size(),
              static_cast<std::size_t>(app->default_ranks()))
        << app->name();
    for (const auto& thread : recorded.trace.threads) {
      EXPECT_TRUE(thread.grammar.finalized()) << app->name();
    }

    RunConfig online;
    online.mode = Mode::kOnline;
    online.app = small;
    online.online = fast_ramp();
    online.omp_adaptive = app->hybrid();
    online.io.enabled = true;  // Branchy's I/O phase uses env.io
    const RunResult ran = run_app(*app, online);
    EXPECT_GT(ran.online_stats.events, 0u) << app->name();
    EXPECT_EQ(ran.online_stats.events, ran.total_events) << app->name();
    EXPECT_EQ(ran.ranks_salvaged, 0u) << app->name();
  }
}

}  // namespace
}  // namespace pythia::harness
