// Harness resilience: salvaged reference sections degrade their rank to
// off, RunConfig::faults drives the EventFaultInjector, and the
// telemetry in RunResult reflects both.
#include <gtest/gtest.h>

#include <string>

#include "apps/app.hpp"
#include "harness/faults.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {
namespace {

class LoopApp final : public apps::App {
 public:
  std::string name() const override { return "Loop"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 3; }
  void run_rank(apps::RankEnv& env,
                const apps::AppConfig&) const override {
    auto& mpi = env.mpi;
    for (int i = 0; i < 200; ++i) {
      mpi.barrier();
      mpi.compute(1000.0);
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
    }
  }
};

Trace record_loop(const LoopApp& app) {
  RunConfig config;
  config.mode = Mode::kRecord;
  RunResult result = run_app(app, config);
  return std::move(result.trace);
}

TEST(Resilience, SalvagedSectionDegradesItsRankToOff) {
  LoopApp app;
  Trace reference = record_loop(app);
  ASSERT_EQ(reference.threads.size(), 3u);
  // Simulate what try_load produces for a damaged middle section.
  reference.section_status.assign(3, Status());
  reference.section_status[1] = Status::corrupt("thread section 1 damaged");
  reference.threads[1] = ThreadTrace{};
  reference.threads[1].grammar.finalize();

  RunConfig config;
  config.mode = Mode::kPredict;
  config.reference = &reference;
  const RunResult result = run_app(app, config);

  EXPECT_EQ(result.ranks_salvaged, 1u);
  EXPECT_EQ(result.ranks_degraded, 0u);  // the intact ranks track cleanly
  // Two predicting ranks contributed stats; the off rank none.
  EXPECT_GT(result.predictor_stats.observed, 0u);
  EXPECT_GT(result.predictor_stats.advanced, 0u);
}

TEST(Resilience, FaultPlanPerturbsStreamAndTripsBreaker) {
  LoopApp app;
  const Trace reference = record_loop(app);

  RunConfig config;
  config.mode = Mode::kPredict;
  config.reference = &reference;
  config.faults = FaultPlan::uniform(0.5, /*seed=*/11);
  const RunResult result = run_app(app, config);

  EXPECT_GT(result.fault_stats.submitted, 0u);
  EXPECT_GT(result.fault_stats.dropped, 0u);
  EXPECT_GT(result.fault_stats.injected, 0u);
  EXPECT_GT(result.fault_stats.reordered, 0u);
  // A 50% fault storm must open the breaker and ration re-anchoring.
  EXPECT_GT(result.ranks_degraded, 0u);
  EXPECT_GT(result.predictor_stats.anchors_suppressed, 0u);
  EXPECT_LT(result.min_confidence, 0.6);
}

TEST(Resilience, BreakerOffKeepsLegacyBehaviour) {
  LoopApp app;
  const Trace reference = record_loop(app);

  RunConfig config;
  config.mode = Mode::kPredict;
  config.reference = &reference;
  config.breaker = false;
  config.faults = FaultPlan::uniform(0.5, /*seed=*/11);
  const RunResult result = run_app(app, config);

  EXPECT_EQ(result.ranks_degraded, 0u);
  EXPECT_EQ(result.predictor_stats.anchors_suppressed, 0u);
  // Without rationing, every miss pays a full re-anchor enumeration.
  EXPECT_EQ(result.predictor_stats.anchors,
            result.predictor_stats.reanchored +
                result.predictor_stats.unknown);
}

TEST(Resilience, CleanPredictRunStaysHealthy) {
  LoopApp app;
  const Trace reference = record_loop(app);

  RunConfig config;
  config.mode = Mode::kPredict;
  config.reference = &reference;
  const RunResult result = run_app(app, config);

  EXPECT_EQ(result.ranks_degraded, 0u);
  EXPECT_EQ(result.ranks_salvaged, 0u);
  EXPECT_GT(result.min_confidence, 0.9);
  EXPECT_EQ(result.fault_stats.submitted, 0u);
}

}  // namespace
}  // namespace pythia::harness
