// Harness resilience: salvaged reference sections degrade their rank to
// off, RunConfig::faults drives the EventFaultInjector, the telemetry in
// RunResult reflects both, and session recovery survives surgical
// journal damage (torn tails, truncated headers, cloned segments, stale
// checkpoints).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/session.hpp"
#include "harness/faults.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {
namespace {

class LoopApp final : public apps::App {
 public:
  std::string name() const override { return "Loop"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 3; }
  void run_rank(apps::RankEnv& env,
                const apps::AppConfig&) const override {
    auto& mpi = env.mpi;
    for (int i = 0; i < 200; ++i) {
      mpi.barrier();
      mpi.compute(1000.0);
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
    }
  }
};

Trace record_loop(const LoopApp& app) {
  RunConfig config;
  config.mode = Mode::kRecord;
  RunResult result = run_app(app, config);
  return std::move(result.trace);
}

TEST(Resilience, SalvagedSectionDegradesItsRankToOff) {
  LoopApp app;
  Trace reference = record_loop(app);
  ASSERT_EQ(reference.threads.size(), 3u);
  // Simulate what try_load produces for a damaged middle section.
  reference.section_status.assign(3, Status());
  reference.section_status[1] = Status::corrupt("thread section 1 damaged");
  reference.threads[1] = ThreadTrace{};
  reference.threads[1].grammar.finalize();

  RunConfig config;
  config.mode = Mode::kPredict;
  config.reference = &reference;
  const RunResult result = run_app(app, config);

  EXPECT_EQ(result.ranks_salvaged, 1u);
  EXPECT_EQ(result.ranks_degraded, 0u);  // the intact ranks track cleanly
  // Two predicting ranks contributed stats; the off rank none.
  EXPECT_GT(result.predictor_stats.observed, 0u);
  EXPECT_GT(result.predictor_stats.advanced, 0u);
}

TEST(Resilience, FaultPlanPerturbsStreamAndTripsBreaker) {
  LoopApp app;
  const Trace reference = record_loop(app);

  RunConfig config;
  config.mode = Mode::kPredict;
  config.reference = &reference;
  config.faults = FaultPlan::uniform(0.5, /*seed=*/11);
  const RunResult result = run_app(app, config);

  EXPECT_GT(result.fault_stats.submitted, 0u);
  EXPECT_GT(result.fault_stats.dropped, 0u);
  EXPECT_GT(result.fault_stats.injected, 0u);
  EXPECT_GT(result.fault_stats.reordered, 0u);
  // A 50% fault storm must open the breaker and ration re-anchoring.
  EXPECT_GT(result.ranks_degraded, 0u);
  EXPECT_GT(result.predictor_stats.anchors_suppressed, 0u);
  EXPECT_LT(result.min_confidence, 0.6);
}

TEST(Resilience, BreakerOffKeepsLegacyBehaviour) {
  LoopApp app;
  const Trace reference = record_loop(app);

  RunConfig config;
  config.mode = Mode::kPredict;
  config.reference = &reference;
  config.breaker = false;
  config.faults = FaultPlan::uniform(0.5, /*seed=*/11);
  const RunResult result = run_app(app, config);

  EXPECT_EQ(result.ranks_degraded, 0u);
  EXPECT_EQ(result.predictor_stats.anchors_suppressed, 0u);
  // Without rationing, every miss pays a full re-anchor enumeration.
  EXPECT_EQ(result.predictor_stats.anchors,
            result.predictor_stats.reanchored +
                result.predictor_stats.unknown);
}

TEST(Resilience, CleanPredictRunStaysHealthy) {
  LoopApp app;
  const Trace reference = record_loop(app);

  RunConfig config;
  config.mode = Mode::kPredict;
  config.reference = &reference;
  const RunResult result = run_app(app, config);

  EXPECT_EQ(result.ranks_degraded, 0u);
  EXPECT_EQ(result.ranks_salvaged, 0u);
  EXPECT_GT(result.min_confidence, 0.9);
  EXPECT_EQ(result.fault_stats.submitted, 0u);
}

// --- online mode under fault storms ---------------------------------------
//
// The acceptance bar for learn-while-running: with the confidence ramp
// and breaker armed, an online oracle fed a perturbed event stream must
// never make any consumer worse than vanilla. The fault injector sits
// between the runtime and the oracle, so the oracle learns a corrupted
// stream while the application itself runs clean — exactly the setup
// where acting on bad predictions would cost real (virtual) time.

/// Hybrid app exercising every consumer: adaptive OpenMP regions, isends
/// through the configured send path, guided I/O reads.
class ConsumerLoopApp final : public apps::App {
 public:
  std::string name() const override { return "ConsumerLoop"; }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 2; }
  void run_rank(apps::RankEnv& env,
                const apps::AppConfig&) const override {
    auto& mpi = env.mpi;
    const std::vector<double> payload(8, 1.0);
    const int dst = (mpi.rank() + 1) % mpi.size();
    const int src = (mpi.rank() + mpi.size() - 1) % mpi.size();
    for (int i = 0; i < 200; ++i) {
      env.omp->parallel(16, 40'000.0, 0.9);
      std::vector<mpisim::Request> reqs;
      reqs.push_back(mpi.irecv(src, 3));
      reqs.push_back(mpi.isend_doubles(dst, 3, payload));
      mpi.waitall(reqs);
      if (env.io != nullptr) {
        for (int b = 0; b < 4; ++b) {
          env.io->read(static_cast<std::uint64_t>((i % 8) * 4 + b));
          env.io->compute(2'000.0);
        }
      }
      mpi.barrier();
    }
  }
};

OnlineOracle::Options storm_online_options() {
  OnlineOracle::Options options;
  options.min_snapshot_events = 48;
  options.snapshot_growth = 1.3;
  options.warmup_replay = 32;
  options.ramp_window = 32;
  options.ramp_min_samples = 12;
  options.serve_above = 0.55;
  options.drop_below = 0.35;
  return options;
}

TEST(Resilience, OnlineFaultStormNeverWorseThanVanilla) {
  LoopApp app;
  RunConfig vanilla;
  vanilla.mode = Mode::kVanilla;
  const RunResult base = run_app(app, vanilla);

  RunConfig online;
  online.mode = Mode::kOnline;
  online.online = storm_online_options();
  online.faults = FaultPlan::uniform(0.35, /*seed=*/7);
  const RunResult result = run_app(app, online);

  // The perturbed stream was really perturbed...
  EXPECT_GT(result.fault_stats.dropped + result.fault_stats.injected, 0u);
  // ...and the ramp withheld rather than acting on it.
  EXPECT_GT(result.online_stats.withheld_events +
                (result.online_stats.events -
                 result.online_stats.served_events),
            0u);
  // Never worse: consumers on their vanilla policy, so the makespan is
  // within noise of the vanilla run (5% guard band).
  EXPECT_LE(static_cast<double>(result.makespan_virtual_ns),
            1.05 * static_cast<double>(base.makespan_virtual_ns));
}

TEST(Resilience, OnlineConsumersUnderFaultStormNeverWorse) {
  ConsumerLoopApp app;
  RunConfig vanilla;
  vanilla.mode = Mode::kVanilla;
  vanilla.io.enabled = true;
  const RunResult base = run_app(app, vanilla);

  for (const SendPath path : {SendPath::kAggregate, SendPath::kPersistent}) {
    RunConfig online;
    online.mode = Mode::kOnline;
    online.online = storm_online_options();
    online.omp_adaptive = true;
    online.send_path = path;
    online.io.enabled = true;
    online.faults = FaultPlan::uniform(0.35, /*seed=*/13);
    const RunResult result = run_app(app, online);

    EXPECT_GT(result.fault_stats.dropped + result.fault_stats.injected, 0u)
        << static_cast<int>(path);
    EXPECT_LE(static_cast<double>(result.makespan_virtual_ns),
              1.05 * static_cast<double>(base.makespan_virtual_ns))
        << static_cast<int>(path);
  }
}

TEST(Resilience, OnlineCleanRunNeverWorseThanVanilla) {
  ConsumerLoopApp app;
  RunConfig vanilla;
  vanilla.mode = Mode::kVanilla;
  vanilla.io.enabled = true;
  const RunResult base = run_app(app, vanilla);

  RunConfig online;
  online.mode = Mode::kOnline;
  online.online = storm_online_options();
  online.omp_adaptive = true;
  online.send_path = SendPath::kAggregate;
  online.io.enabled = true;
  const RunResult result = run_app(app, online);

  // The clean periodic stream opens the ramp...
  EXPECT_EQ(result.ranks_serving, 2u);
  EXPECT_GT(result.online_stats.served_events, 0u);
  // ...and serving must not cost time either.
  EXPECT_LE(static_cast<double>(result.makespan_virtual_ns),
            1.05 * static_cast<double>(base.makespan_virtual_ns));
}

// --- journal-fault resilience ---------------------------------------------
//
// Each test records a session, damages the on-disk journal with the
// fault-injection file surgery above, and asserts recovery degrades to
// the longest valid prefix instead of failing or resurrecting bad data.

constexpr std::uint64_t kJournalEvents = 400;

std::string record_damaged_session(const std::string& name,
                                   std::uint64_t checkpoint_every = 0) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  SessionOptions options;
  options.journal.segment_bytes = 512;
  options.journal.flush_every_events = 1;
  options.journal.sync_on_seal = false;
  options.checkpoint_every_events = checkpoint_every;
  Result<RecordSession> opened = RecordSession::open(dir, options);
  EXPECT_TRUE(opened.ok()) << opened.status().to_string();
  RecordSession session = opened.take();
  const TerminalId a = session.intern("phase_a");
  const TerminalId b = session.intern("phase_b");
  const TerminalId c = session.intern("sync");
  for (std::uint64_t i = 0; i < kJournalEvents; ++i) {
    const TerminalId event = i % 5 == 4 ? c : (i % 2 == 0 ? a : b);
    EXPECT_TRUE(session.event(event, (i + 1) * 100).ok());
  }
  EXPECT_TRUE(session.sync().ok());
  // Abandoned without finish(): only journal + checkpoints remain.
  return dir;
}

RecoveryInfo recover_expecting(const std::string& dir,
                               std::uint64_t expected_events) {
  RecoveryInfo info;
  Result<Trace> recovered = recover_session(dir, &info);
  EXPECT_TRUE(recovered.ok()) << recovered.status().to_string();
  if (recovered.ok()) {
    EXPECT_EQ(info.journaled_events, expected_events);
    EXPECT_EQ(recovered.value().threads[0].grammar.sequence_length(),
              expected_events);
  }
  return info;
}

TEST(JournalResilience, TornTailRecoversThePrefix) {
  const std::string dir = record_damaged_session("jr_torn");
  const std::string journal = dir + "/journal.pyj";
  Result<JournalScan> scan = scan_journal(journal);
  ASSERT_TRUE(scan.ok());
  ASSERT_FALSE(scan.value().torn);
  // Tear 7 bytes off the final record.
  ASSERT_TRUE(truncate_file(journal, scan.value().file_bytes - 7).ok());

  const RecoveryInfo info = recover_expecting(dir, kJournalEvents - 1);
  EXPECT_EQ(info.torn_bytes, 13u);  // 20-byte event record minus the 7 cut
  EXPECT_FALSE(info.used_checkpoint);
}

TEST(JournalResilience, TruncatedSegmentHeaderEndsThePrefix) {
  const std::string dir = record_damaged_session("jr_seghdr");
  const std::string journal = dir + "/journal.pyj";
  Result<JournalScan> scan = scan_journal(journal);
  ASSERT_TRUE(scan.ok());
  const std::uint64_t seg = scan.value().segment_bytes;
  ASSERT_GE(scan.value().segments, 3u);
  // Cut into the 3rd segment's header: 12 of its 24 bytes survive.
  ASSERT_TRUE(truncate_file(journal, 16 + 2 * seg + 12).ok());

  Result<JournalScan> cut = scan_journal(journal);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(cut.value().torn);
  EXPECT_EQ(cut.value().segments, 2u);
  recover_expecting(dir, cut.value().event_records);
}

TEST(JournalResilience, DuplicatedSegmentIsRejectedBySequenceCheck) {
  const std::string dir = record_damaged_session("jr_dup");
  const std::string journal = dir + "/journal.pyj";
  Result<JournalScan> scan = scan_journal(journal);
  ASSERT_TRUE(scan.ok());
  const std::uint64_t seg = scan.value().segment_bytes;
  ASSERT_GE(scan.value().segments, 4u);
  // Clone segment 1 over segment 2: every byte checksums, but the clone
  // repeats sequence numbers the prefix already consumed.
  ASSERT_TRUE(duplicate_file_range(journal, 16 + seg, seg, 16 + 2 * seg).ok());

  Result<JournalScan> damaged = scan_journal(journal);
  ASSERT_TRUE(damaged.ok());
  EXPECT_TRUE(damaged.value().torn);
  EXPECT_EQ(damaged.value().segments, 2u);
  const RecoveryInfo info =
      recover_expecting(dir, damaged.value().event_records);
  EXPECT_LT(info.journaled_events, kJournalEvents);
}

TEST(JournalResilience, StaleCheckpointNewerThanJournalIsIgnored) {
  const std::string dir =
      record_damaged_session("jr_stale", /*checkpoint_every=*/100);
  const std::string journal = dir + "/journal.pyj";
  Result<JournalScan> scan = scan_journal(journal);
  ASSERT_TRUE(scan.ok());
  // Rewind the journal to its first segment: fewer events than any
  // checkpoint (cadence 100) covers. The checkpoints now describe a
  // future the journal cannot corroborate — recovery must ignore them.
  ASSERT_TRUE(truncate_file(journal, 16 + scan.value().segment_bytes).ok());
  Result<JournalScan> cut = scan_journal(journal);
  ASSERT_TRUE(cut.ok());
  ASSERT_LT(cut.value().event_records, 100u);

  const RecoveryInfo info =
      recover_expecting(dir, cut.value().event_records);
  EXPECT_FALSE(info.used_checkpoint);
  bool noted_stale = false;
  for (const std::string& note : info.notes) {
    if (note.find("stale") != std::string::npos) noted_stale = true;
  }
  EXPECT_TRUE(noted_stale);
}

}  // namespace
}  // namespace pythia::harness
