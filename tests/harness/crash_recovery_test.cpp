// Kill-point recovery matrix: a child process records through a
// RecordSession and SIGKILLs itself at a randomized event offset — no
// unwinding, no flushing, exactly an OOM kill. The parent recovers the
// session and asserts the crash-safety contract:
//
//   1. the journal's valid prefix M is event-for-event equal to the
//      first M events of the deterministic workload;
//   2. M is within the configured flush window of the kill offset
//      (kill_at - flush_every < M <= kill_at);
//   3. resuming the recovered session to the full length produces a
//      trace equivalent (unfold + timing) to an uninterrupted run.
//
// Seeds vary the kill offset, flush cadence, checkpoint cadence and
// segment size together, so the matrix covers mid-segment, mid-seal and
// mid-checkpoint deaths. PYTHIA_KILL_SEEDS overrides the seed count
// (CI runs 20).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

constexpr std::uint64_t kTotalEvents = 1200;

std::vector<TerminalId> intern_workload(RecordSession& session) {
  return {session.intern("compute"), session.intern("MPI_Send", 1),
          session.intern("MPI_Recv", 1), session.intern("MPI_Allreduce")};
}

std::vector<TerminalId> intern_workload(EventRegistry& registry) {
  return {registry.intern("compute"), registry.intern("MPI_Send", 1),
          registry.intern("MPI_Recv", 1), registry.intern("MPI_Allreduce")};
}

/// Deterministic stream shared by child, parent and reference run.
TerminalId workload_event(const std::vector<TerminalId>& ids,
                          std::uint64_t step) {
  switch (step % 11) {
    case 0:
    case 3:
    case 6:
      return ids[0];
    case 1:
    case 4:
      return ids[1];
    case 2:
    case 5:
      return ids[2];
    default:
      return ids[(step / 11) % 2 == 0 ? 0 : 3];
  }
}

std::uint64_t workload_time(std::uint64_t step) { return (step + 1) * 1000; }

struct KillPlan {
  std::uint64_t kill_at = 0;
  SessionOptions options;
};

KillPlan plan_for_seed(std::uint64_t seed) {
  support::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
  KillPlan plan;
  plan.kill_at = rng.below(kTotalEvents);
  plan.options.journal.segment_bytes = std::size_t{512}
                                       << rng.below(3);  // 512/1024/2048
  plan.options.journal.flush_every_events = 1 + rng.below(8);
  plan.options.journal.sync_on_seal = false;  // SIGKILL spares the page cache
  plan.options.checkpoint_every_events =
      rng.below(3) == 0 ? 0 : 64 + 64 * rng.below(4);
  return plan;
}

/// The child's whole life. Never returns.
[[noreturn]] void run_child(const std::string& dir, const KillPlan& plan) {
  Result<RecordSession> opened = RecordSession::open(dir, plan.options);
  if (!opened.ok()) ::_exit(3);
  RecordSession session = opened.take();
  const std::vector<TerminalId> ids = intern_workload(session);
  for (std::uint64_t i = 0; i < kTotalEvents; ++i) {
    if (i == plan.kill_at) {
      ::kill(::getpid(), SIGKILL);  // no unwinding, no flushing
      ::_exit(4);                   // unreachable
    }
    if (!session.event(workload_event(ids, i), workload_time(i)).ok()) {
      ::_exit(5);
    }
  }
  ::_exit(6);  // kill_at out of range — plan bug
}

ThreadTrace reference_run(std::uint64_t total) {
  EventRegistry registry;
  const std::vector<TerminalId> ids = intern_workload(registry);
  Recorder recorder(Recorder::Options{true});
  for (std::uint64_t i = 0; i < total; ++i) {
    recorder.record(workload_event(ids, i), workload_time(i));
  }
  return std::move(recorder).finish();
}

std::vector<TerminalId> reference_prefix(std::uint64_t length) {
  EventRegistry registry;
  const std::vector<TerminalId> ids = intern_workload(registry);
  std::vector<TerminalId> events;
  events.reserve(length);
  for (std::uint64_t i = 0; i < length; ++i) {
    events.push_back(workload_event(ids, i));
  }
  return events;
}

void run_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const KillPlan plan = plan_for_seed(seed);
  const std::string dir =
      testing::TempDir() + "/crash_recovery_" + std::to_string(seed);
  std::filesystem::remove_all(dir);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) run_child(dir, plan);  // never returns

  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited with code "
      << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
      << " instead of dying by signal";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Recover. The journal is the truth: M events survived.
  Result<RecordSession> reopened = RecordSession::open(dir, plan.options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  RecordSession session = reopened.take();
  const std::uint64_t recovered = session.recovery().journaled_events;

  // Durability window: completed write(2)s survive SIGKILL, so at most
  // flush_every_events - 1 completed events (the user-space buffer) die.
  EXPECT_LE(recovered, plan.kill_at);
  EXPECT_GT(recovered + plan.options.journal.flush_every_events,
            plan.kill_at);

  // Event-for-event: the recovered grammar unfolds to the exact prefix.
  EXPECT_EQ(session.grammar().unfold(), reference_prefix(recovered));
  EXPECT_EQ(session.event_count(), recovered);

  // Resume to the full run; the final trace must match the uninterrupted
  // one, including the timing model (timestamps are journaled).
  // Re-interning is idempotent: the recovered registry returns the same
  // dense ids and journals nothing new.
  const std::vector<TerminalId> ids = intern_workload(session);
  for (std::uint64_t i = recovered; i < kTotalEvents; ++i) {
    ASSERT_TRUE(session.event(workload_event(ids, i), workload_time(i)).ok());
  }
  Result<Trace> finished = std::move(session).finish();
  ASSERT_TRUE(finished.ok()) << finished.status().to_string();
  const ThreadTrace& actual = finished.value().threads[0];
  const ThreadTrace expected = reference_run(kTotalEvents);
  EXPECT_EQ(actual.grammar.sequence_length(),
            expected.grammar.sequence_length());
  EXPECT_EQ(actual.grammar.unfold(), expected.grammar.unfold());
  EXPECT_EQ(actual.timing.context_count(), expected.timing.context_count());
  EXPECT_DOUBLE_EQ(actual.timing.global_mean_ns(),
                   expected.timing.global_mean_ns());
}

TEST(CrashRecovery, SigkillAtRandomOffsetsRecoversEventForEvent) {
  const long seeds = support::env_long("PYTHIA_KILL_SEEDS", 20);
  for (long seed = 0; seed < seeds; ++seed) {
    run_seed(static_cast<std::uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace pythia
