// SIGKILL-mid-learning matrix for the online oracle: a child process
// learns a deterministic workload through a session-backed OnlineOracle
// and SIGKILLs itself at a randomized event offset — before the first
// snapshot, mid-ramp, or while serving, depending on the seed. The
// parent reopens the session and asserts the crash-only contract:
//
//   1. the recovered event log is event-for-event the workload prefix,
//      within the journal's flush window of the kill offset;
//   2. the recovered oracle's ramp_digest() equals a never-crashed
//      in-memory oracle fed the same prefix — the whole learning state
//      (snapshot cadence, validation window, ramp state machine,
//      predictor tracking) resumed exactly;
//   3. feeding the remaining events keeps the two in lockstep and the
//      ramp reaches serving on the full run.
//
// PYTHIA_KILL_SEEDS overrides the seed count (CI runs 20).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/online_oracle.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pythia {
namespace {

constexpr std::uint64_t kTotalEvents = 1200;

std::vector<TerminalId> intern_workload(RecordSession& session) {
  return {session.intern("compute"), session.intern("MPI_Send", 1),
          session.intern("MPI_Recv", 1), session.intern("MPI_Allreduce")};
}

/// Deterministic periodic stream (period 22): regular enough that the
/// ramp opens, long enough that snapshots straddle kill offsets.
TerminalId workload_event(const std::vector<TerminalId>& ids,
                          std::uint64_t step) {
  switch (step % 11) {
    case 0:
    case 3:
    case 6:
      return ids[0];
    case 1:
    case 4:
      return ids[1];
    case 2:
    case 5:
      return ids[2];
    default:
      return ids[(step / 11) % 2 == 0 ? 0 : 3];
  }
}

std::uint64_t workload_time(std::uint64_t step) { return (step + 1) * 1000; }

OnlineOracle::Options online_options() {
  OnlineOracle::Options options;
  options.min_snapshot_events = 48;
  options.snapshot_growth = 1.3;
  options.warmup_replay = 32;
  options.ramp_window = 32;
  options.ramp_min_samples = 12;
  options.serve_above = 0.55;
  options.drop_below = 0.35;
  return options;
}

struct KillPlan {
  std::uint64_t kill_at = 0;
  SessionOptions session;
};

KillPlan plan_for_seed(std::uint64_t seed) {
  support::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x0431eULL);
  KillPlan plan;
  plan.kill_at = rng.below(kTotalEvents);
  plan.session.journal.segment_bytes = std::size_t{512} << rng.below(3);
  plan.session.journal.flush_every_events = 1 + rng.below(8);
  plan.session.journal.sync_on_seal = false;  // SIGKILL spares the page cache
  plan.session.checkpoint_every_events =
      rng.below(3) == 0 ? 0 : 64 + 64 * rng.below(4);
  return plan;
}

/// The child's whole life: learn until the kill offset. Never returns.
[[noreturn]] void run_child(const std::string& dir, const KillPlan& plan) {
  Result<OnlineOracle> opened =
      OnlineOracle::open(dir, online_options(), plan.session);
  if (!opened.ok()) ::_exit(3);
  OnlineOracle oracle = std::move(opened.value());
  const std::vector<TerminalId> ids = intern_workload(*oracle.session());
  for (std::uint64_t i = 0; i < kTotalEvents; ++i) {
    if (i == plan.kill_at) {
      ::kill(::getpid(), SIGKILL);  // no unwinding, no flushing
      ::_exit(4);                   // unreachable
    }
    oracle.observe(workload_event(ids, i), workload_time(i));
  }
  ::_exit(6);  // kill_at out of range — plan bug
}

/// A never-crashed oracle fed the first `length` workload events.
OnlineOracle fresh_prefix(std::uint64_t length) {
  OnlineOracle oracle = OnlineOracle::in_memory(online_options());
  // In-memory streams use raw dense ids; mirror the session's intern
  // order (compute=0, send=1, recv=2, allreduce=3).
  const std::vector<TerminalId> ids = {0, 1, 2, 3};
  for (std::uint64_t i = 0; i < length; ++i) {
    oracle.observe(workload_event(ids, i), workload_time(i));
  }
  return oracle;
}

void run_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const KillPlan plan = plan_for_seed(seed);
  const std::string dir =
      testing::TempDir() + "/online_crash_" + std::to_string(seed);
  std::filesystem::remove_all(dir);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) run_child(dir, plan);  // never returns

  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited with code "
      << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
      << " instead of dying by signal";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Recover: the journal's valid prefix replays through the same
  // score/track/learn pipeline the child ran live.
  Result<OnlineOracle> reopened =
      OnlineOracle::open(dir, online_options(), plan.session);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  OnlineOracle oracle = std::move(reopened.value());
  const std::uint64_t recovered = oracle.event_count();

  // Durability window: at most flush_every_events - 1 completed events
  // (the user-space buffer) die with the process.
  EXPECT_LE(recovered, plan.kill_at);
  EXPECT_GT(recovered + plan.session.journal.flush_every_events,
            plan.kill_at);

  // Event-for-event: the recovered log is the exact workload prefix,
  // timestamps included.
  const std::vector<TerminalId> ids = {0, 1, 2, 3};
  const auto& log = oracle.event_log();
  ASSERT_EQ(log.size(), recovered);
  for (std::uint64_t i = 0; i < recovered; ++i) {
    ASSERT_EQ(log[i].event, workload_event(ids, i)) << "event " << i;
    ASSERT_EQ(log[i].time_ns(), workload_time(i)) << "event " << i;
  }

  // The ramp resumed exactly: digest equality against a never-crashed
  // oracle covers the snapshot cadence, the validation window, the
  // required-sample backoff and the snapshot predictor's tracking state.
  OnlineOracle fresh = fresh_prefix(recovered);
  EXPECT_EQ(oracle.ramp_digest(), fresh.ramp_digest());
  EXPECT_EQ(oracle.serving(), fresh.serving());
  EXPECT_EQ(oracle.stats().ramp_trips, fresh.stats().ramp_trips);

  // Resume the run: recovered and never-crashed stay in lockstep, and
  // on this workload the full run always ends serving.
  for (std::uint64_t i = recovered; i < kTotalEvents; ++i) {
    oracle.observe(workload_event(ids, i), workload_time(i));
    fresh.observe(workload_event(ids, i), workload_time(i));
  }
  EXPECT_EQ(oracle.ramp_digest(), fresh.ramp_digest());
  EXPECT_TRUE(oracle.serving());
  EXPECT_EQ(oracle.stats().events, kTotalEvents);
}

TEST(OnlineCrashRecovery, SigkillMidLearningResumesRampExactly) {
  const long seeds = support::env_long("PYTHIA_KILL_SEEDS", 20);
  for (long seed = 0; seed < seeds; ++seed) {
    run_seed(static_cast<std::uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace pythia
