// Harness runner tests: configuration handling, statistics aggregation,
// registry propagation.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {
namespace {

using apps::AppConfig;
using apps::WorkingSet;

// A minimal deterministic app for harness-level tests.
class TinyApp final : public apps::App {
 public:
  std::string name() const override { return "Tiny"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 3; }
  void run_rank(apps::RankEnv& env,
                const apps::AppConfig&) const override {
    auto& mpi = env.mpi;
    for (int i = 0; i < 5; ++i) {
      mpi.barrier();
      mpi.compute(1000.0);
    }
    mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
  }
};

class TinyHybrid final : public apps::App {
 public:
  std::string name() const override { return "TinyHybrid"; }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 2; }
  void run_rank(apps::RankEnv& env,
                const apps::AppConfig&) const override {
    for (int i = 0; i < 4; ++i) {
      env.omp->parallel(1, 50'000.0, 0.9);
      env.mpi.barrier();
    }
  }
};

TEST(Runner, DefaultRanksComeFromApp) {
  TinyApp app;
  RunConfig config;
  config.mode = Mode::kRecord;
  const RunResult result = run_app(app, config);
  EXPECT_EQ(result.trace.threads.size(), 3u);
}

TEST(Runner, ExplicitRanksOverride) {
  TinyApp app;
  RunConfig config;
  config.mode = Mode::kRecord;
  config.ranks = 5;
  const RunResult result = run_app(app, config);
  EXPECT_EQ(result.trace.threads.size(), 5u);
}

TEST(Runner, EventTotalsSumAcrossRanks) {
  TinyApp app;
  RunConfig config;
  config.mode = Mode::kVanilla;
  const RunResult result = run_app(app, config);
  // 5 barriers + 1 allreduce per rank, 3 ranks.
  EXPECT_EQ(result.total_events, 18u);
}

TEST(Runner, PredictWithoutReferenceAborts) {
  TinyApp app;
  RunConfig config;
  config.mode = Mode::kPredict;
  EXPECT_DEATH(run_app(app, config), "reference");
}

TEST(Runner, PredictWithWrongSectionCountAborts) {
  TinyApp app;
  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.ranks = 2;
  const RunResult recorded = run_app(app, record_config);

  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.ranks = 5;
  predict_config.reference = &recorded.trace;
  EXPECT_DEATH(run_app(app, predict_config), "section");
}

TEST(Runner, WrapReferenceAllowsRankMismatch) {
  TinyApp app;
  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.ranks = 2;
  const RunResult recorded = run_app(app, record_config);

  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.ranks = 5;
  predict_config.reference = &recorded.trace;
  predict_config.wrap_reference_threads = true;
  const RunResult predicted = run_app(app, predict_config);
  EXPECT_GT(predicted.predictor_stats.observed, 0u);
}

TEST(Runner, PredictCopiesReferenceRegistry) {
  TinyApp app;
  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  const RunResult recorded = run_app(app, record_config);
  const std::size_t recorded_events = recorded.trace.registry.event_count();
  ASSERT_GT(recorded_events, 0u);

  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.reference = &recorded.trace;
  const RunResult predicted = run_app(app, predict_config);
  // Same program, same registry contents: no new events were interned.
  EXPECT_EQ(predicted.trace.registry.event_count(), recorded_events);
}

TEST(Runner, OmpStatsAggregateOverRanks) {
  TinyHybrid app;
  RunConfig config;
  config.mode = Mode::kVanilla;
  config.omp_max_threads = 4;
  const RunResult result = run_app(app, config);
  EXPECT_EQ(result.omp_stats.regions, 8u);  // 4 regions x 2 ranks
  EXPECT_EQ(result.omp_stats.threads_used_total, 32u);  // all at 4 threads
  // OpenMP begin/end events are part of the totals.
  EXPECT_EQ(result.total_events, 8u /*barriers*/ + 16u /*region events*/);
}

TEST(Runner, MakespanIsMaxOverRanks) {
  TinyApp app;
  RunConfig config;
  config.mode = Mode::kVanilla;
  const RunResult result = run_app(app, config);
  EXPECT_GT(result.makespan_virtual_ns, 5000u);  // at least the compute
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Runner, RecordReferenceHelper) {
  TinyApp app;
  const Trace trace = record_reference(app, AppConfig{});
  EXPECT_EQ(trace.threads.size(), 3u);
  for (const ThreadTrace& thread : trace.threads) {
    EXPECT_TRUE(thread.grammar.finalized());
    EXPECT_FALSE(thread.timing.empty());
  }
}

}  // namespace
}  // namespace pythia::harness
