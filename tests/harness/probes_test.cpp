// Harness probe tests: prediction accuracy scoring and cost measurement.
#include <gtest/gtest.h>

#include <memory>

#include "apps/app.hpp"
#include "harness/probes.hpp"
#include "harness/runner.hpp"

namespace pythia::harness {
namespace {

using apps::AppConfig;
using apps::WorkingSet;

AppConfig small_config() {
  AppConfig config;
  config.set = WorkingSet::kSmall;
  config.scale = 0.25;
  return config;
}

TEST(AccuracyProbe, PerfectOnRegularAppSameWorkingSet) {
  const apps::App* bt = apps::find_app("BT");
  ASSERT_NE(bt, nullptr);

  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.app = small_config();
  const RunResult recorded = run_app(*bt, record_config);

  std::map<std::size_t, AccuracyProbe::Tally> tallies;
  std::mutex mutex;
  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.app = small_config();
  predict_config.reference = &recorded.trace;
  predict_config.observer_factory = [&](int, Oracle& oracle) {
    struct Collector : AccuracyProbe {
      Collector(Oracle& o, std::map<std::size_t, AccuracyProbe::Tally>* out,
                std::mutex* m)
          : AccuracyProbe(o, {1, 4, 16, 64}), out_(out), mutex_(m) {}
      ~Collector() override {
        std::lock_guard lock(*mutex_);
        merge_into(*out_);
      }
      std::map<std::size_t, AccuracyProbe::Tally>* out_;
      std::mutex* mutex_;
    };
    return std::make_unique<Collector>(oracle, &tallies, &mutex);
  };
  run_app(*bt, predict_config);

  for (const auto& [distance, tally] : tallies) {
    EXPECT_GT(tally.asked, 50u) << "distance " << distance;
    // BT is fully regular; among scored predictions the oracle should be
    // near-perfect at every distance (fig. 8, BT stays at ~100%). At
    // large distances some predictions aim past the end of this short
    // test run and go unscored, so the overall rate is only checked at
    // short range.
    EXPECT_GE(tally.answered_accuracy(), 0.95) << "distance " << distance;
    if (distance <= 16) {
      EXPECT_GE(tally.accuracy(), 0.9) << "distance " << distance;
    }
  }
}

TEST(AccuracyProbe, ScoresMispredictionsAgainstOracle) {
  // Record app A, predict on a *different* event stream: accuracy
  // must be visibly below the same-stream case.
  const apps::App* cg = apps::find_app("CG");
  const apps::App* bt = apps::find_app("BT");
  ASSERT_NE(cg, nullptr);

  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.app = small_config();
  const RunResult recorded = run_app(*bt, record_config);

  std::map<std::size_t, AccuracyProbe::Tally> tallies;
  std::mutex mutex;
  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.app = small_config();
  predict_config.reference = &recorded.trace;
  predict_config.observer_factory = [&](int, Oracle& oracle) {
    struct Collector : AccuracyProbe {
      Collector(Oracle& o, std::map<std::size_t, AccuracyProbe::Tally>* out,
                std::mutex* m)
          : AccuracyProbe(o, {4}), out_(out), mutex_(m) {}
      ~Collector() override {
        std::lock_guard lock(*mutex_);
        merge_into(*out_);
      }
      std::map<std::size_t, AccuracyProbe::Tally>* out_;
      std::mutex* mutex_;
    };
    return std::make_unique<Collector>(oracle, &tallies, &mutex);
  };
  run_app(*cg, predict_config);  // CG events against BT's trace

  ASSERT_EQ(tallies.size(), 1u);
  const auto& tally = tallies[4];
  EXPECT_GT(tally.asked, 10u);
  EXPECT_LT(tally.accuracy(), 0.9);
}

TEST(CostProbe, PredictionCostGrowsWithDistance) {
  const apps::App* bt = apps::find_app("BT");
  ASSERT_NE(bt, nullptr);

  RunConfig record_config;
  record_config.mode = Mode::kRecord;
  record_config.app = small_config();
  const RunResult recorded = run_app(*bt, record_config);

  std::map<std::size_t, support::RunningStat> costs;
  std::mutex mutex;
  RunConfig predict_config;
  predict_config.mode = Mode::kPredict;
  predict_config.app = small_config();
  predict_config.reference = &recorded.trace;
  predict_config.observer_factory = [&](int, Oracle& oracle) {
    struct Collector : CostProbe {
      Collector(Oracle& o, std::map<std::size_t, support::RunningStat>* out,
                std::mutex* m)
          : CostProbe(o, {1, 64}), out_(out), mutex_(m) {}
      ~Collector() override {
        std::lock_guard lock(*mutex_);
        merge_into(*out_);
      }
      std::map<std::size_t, support::RunningStat>* out_;
      std::mutex* mutex_;
    };
    return std::make_unique<Collector>(oracle, &costs, &mutex);
  };
  run_app(*bt, predict_config);

  ASSERT_EQ(costs.size(), 2u);
  EXPECT_GT(costs[1].count(), 50u);
  // Predicting 64 ahead must cost more than predicting 1 ahead (fig. 9:
  // cost grows linearly with distance).
  EXPECT_GT(costs[64].mean(), costs[1].mean());
}

TEST(FaultInjection, ErrorRateDegradesTracking) {
  const apps::App* lulesh = apps::find_app("Lulesh");
  ASSERT_NE(lulesh, nullptr);

  RunConfig base;
  base.app = small_config();
  base.ranks = 1;
  base.machine = ompsim::MachineModel::pudding();
  base.omp_max_threads = 24;

  RunConfig record_config = base;
  record_config.mode = Mode::kRecord;
  const RunResult recorded = run_app(*lulesh, record_config);

  auto run_with_error = [&](double rate) {
    RunConfig config = base;
    config.mode = Mode::kPredict;
    config.reference = &recorded.trace;
    config.omp_adaptive = true;
    config.omp_error_rate = rate;
    return run_app(*lulesh, config);
  };

  const RunResult clean = run_with_error(0.0);
  const RunResult faulty = run_with_error(0.4);
  EXPECT_EQ(clean.predictor_stats.unknown, 0u);
  EXPECT_GT(faulty.predictor_stats.unknown, 0u);
  // Bad predictions push the runtime back to max threads for small
  // regions — execution time grows with the error rate (fig. 14).
  EXPECT_GT(faulty.makespan_virtual_ns, clean.makespan_virtual_ns);
}

}  // namespace
}  // namespace pythia::harness
