// Parallel record engine tests.
//
// The load-bearing claim: a stream reduced on an engine worker (through
// the SPSC ring) builds byte-for-byte the same grammar and timing model
// as the same stream reduced inline — verified with
// thread_section_digest, the hash of the exact serialized section bytes.
// Plus: drain barrier semantics, lossless kBlock backpressure on a tiny
// ring, drop accounting under kDropNewest, and sequential-vs-parallel
// equivalence of harness::run_app for every app in the catalog.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "engine/record_engine.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"

namespace pythia::engine {
namespace {

std::vector<TerminalId> mixed_stream(std::size_t events, std::uint64_t seed) {
  // Loopy with irregular interruptions: exercises rule creation, reuse
  // and exponent bumping.
  support::Rng rng(seed);
  std::vector<TerminalId> out;
  out.reserve(events);
  while (out.size() < events) {
    for (TerminalId t : {0u, 1u, 2u, 3u, 2u, 3u}) {
      if (out.size() >= events) break;
      out.push_back(t);
    }
    if (rng.below(4) == 0) out.push_back(4 + rng.below(8));
  }
  out.resize(events);
  return out;
}

ThreadTrace record_inline(const std::vector<TerminalId>& stream,
                          bool timestamps, std::uint64_t step_ns = 1000) {
  Recorder recorder(Recorder::Options{.record_timestamps = timestamps});
  std::uint64_t now = 0;
  for (TerminalId t : stream) recorder.record(t, now += step_ns);
  return std::move(recorder).finish();
}

TEST(RecordEngine, ShardMatchesInlineRecorderByteForByte) {
  for (bool timestamps : {false, true}) {
    const std::vector<TerminalId> stream = mixed_stream(50'000, 7);
    RingOptions options;
    options.record_timestamps = timestamps;
    RecordEngine engine(1, options);
    std::uint64_t now = 0;
    for (TerminalId t : stream) engine.producer(0).submit(t, now += 1000);
    std::vector<ThreadTrace> traces = engine.finish();
    ASSERT_EQ(traces.size(), 1u);

    const ThreadTrace expected = record_inline(stream, timestamps);
    EXPECT_EQ(thread_section_digest(traces[0]),
              thread_section_digest(expected))
        << "timestamps=" << timestamps;
    EXPECT_EQ(traces[0].grammar.sequence_length(), stream.size());
  }
}

TEST(RecordEngine, ShardsAreIndependentAndOrdered) {
  constexpr std::size_t kShards = 4;
  std::vector<std::vector<TerminalId>> streams;
  for (std::size_t s = 0; s < kShards; ++s) {
    streams.push_back(mixed_stream(20'000, 100 + s));
  }

  RecordEngine engine(kShards);
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kShards; ++s) {
    producers.emplace_back([&, s] {
      std::uint64_t now = 0;
      for (TerminalId t : streams[s]) {
        engine.producer(s).submit(t, now += 500);
      }
    });
  }
  for (std::thread& thread : producers) thread.join();
  std::vector<ThreadTrace> traces = engine.finish();
  ASSERT_EQ(traces.size(), kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(thread_section_digest(traces[s]),
              thread_section_digest(record_inline(streams[s], true, 500)))
        << "shard " << s;
  }
}

TEST(RecordEngine, DrainIsABarrier) {
  RecordEngine engine(2);
  for (int round = 0; round < 50; ++round) {
    for (TerminalId t : {0u, 1u, 0u, 1u}) {
      engine.producer(0).submit(t, 0);
      engine.producer(1).submit(t, 0);
    }
    engine.drain();
    // The barrier: everything enqueued before drain() is applied to the
    // grammar by the time it returns.
    const RecordEngine::ShardStats s0 = engine.shard_stats(0);
    const RecordEngine::ShardStats s1 = engine.shard_stats(1);
    EXPECT_EQ(s0.enqueued, static_cast<std::uint64_t>(4 * (round + 1)));
    EXPECT_EQ(s0.applied, s0.enqueued);
    EXPECT_EQ(s1.applied, s1.enqueued);
  }
  std::vector<ThreadTrace> traces = engine.finish();
  EXPECT_EQ(traces[0].grammar.sequence_length(), 200u);
  EXPECT_EQ(traces[1].grammar.sequence_length(), 200u);
}

TEST(RecordEngine, BlockBackpressureIsLossless) {
  // A 4-slot ring with a 100k-event burst: the producer must stall
  // (blocked > 0 on any machine where it ever outruns the worker) but
  // nothing is lost and the grammar still matches inline reduction.
  const std::vector<TerminalId> stream = mixed_stream(100'000, 11);
  RingOptions options;
  options.capacity = 4;
  options.backpressure = RingOptions::Backpressure::kBlock;
  RecordEngine engine(1, options);
  std::uint64_t now = 0;
  for (TerminalId t : stream) engine.producer(0).submit(t, now += 10);
  const RecordEngine::ShardStats mid = engine.shard_stats(0);
  EXPECT_EQ(mid.dropped, 0u);
  EXPECT_EQ(mid.enqueued, stream.size());
  std::vector<ThreadTrace> traces = engine.finish();
  EXPECT_EQ(traces[0].grammar.sequence_length(), stream.size());
  EXPECT_EQ(thread_section_digest(traces[0]),
            thread_section_digest(record_inline(stream, true, 10)));
}

TEST(RecordEngine, DropNewestCountsEveryLostEvent) {
  // Drops depend on scheduling, so assert conservation, not a count:
  // every submitted event is either enqueued or counted as dropped, and
  // the grammar holds exactly the enqueued ones.
  const std::vector<TerminalId> stream = mixed_stream(100'000, 13);
  RingOptions options;
  options.capacity = 4;
  options.backpressure = RingOptions::Backpressure::kDropNewest;
  RecordEngine engine(1, options);
  for (TerminalId t : stream) engine.producer(0).submit(t, 0);
  engine.drain();
  const RecordEngine::ShardStats stats = engine.shard_stats(0);
  EXPECT_EQ(stats.enqueued + stats.dropped, stream.size());
  EXPECT_EQ(stats.blocked, 0u);
  std::vector<ThreadTrace> traces = engine.finish();
  EXPECT_EQ(traces[0].grammar.sequence_length(), stats.enqueued);
}

TEST(RecordEngine, StatsTotalsSumShards) {
  RecordEngine engine(3);
  for (std::size_t s = 0; s < 3; ++s) {
    for (int i = 0; i < 10 * (static_cast<int>(s) + 1); ++i) {
      engine.producer(s).submit(0, 0);
    }
  }
  engine.drain();
  EXPECT_EQ(engine.totals().enqueued, 10u + 20u + 30u);
  (void)engine.finish();
}

// --- harness integration: sequential vs. parallel record ------------------

using apps::App;
using apps::AppConfig;

AppConfig tiny_config() {
  AppConfig config;
  config.set = apps::WorkingSet::kSmall;
  config.scale = 0.125;  // whole-catalog sweep: keep each app tiny
  return config;
}

harness::RunResult record_catalog_app(const App& app, bool parallel) {
  harness::RunConfig config;
  config.mode = harness::Mode::kRecord;
  config.app = tiny_config();
  config.parallel_ranks = parallel;
  return harness::run_app(app, config);
}

class EveryAppParallel : public ::testing::TestWithParam<const App*> {};

TEST_P(EveryAppParallel, ParallelRecordIsByteIdenticalToSequential) {
  const App& app = *GetParam();
  const harness::RunResult sequential = record_catalog_app(app, false);
  const harness::RunResult parallel = record_catalog_app(app, true);

  ASSERT_EQ(parallel.trace.threads.size(), sequential.trace.threads.size());
  for (std::size_t rank = 0; rank < sequential.trace.threads.size(); ++rank) {
    EXPECT_EQ(thread_section_digest(parallel.trace.threads[rank]),
              thread_section_digest(sequential.trace.threads[rank]))
        << app.name() << " rank " << rank;
  }
  EXPECT_EQ(trace_digest(parallel.trace), trace_digest(sequential.trace))
      << app.name();
  EXPECT_EQ(parallel.engine_stats.dropped, 0u);
  EXPECT_GT(parallel.engine_stats.enqueued, 0u);
  EXPECT_EQ(sequential.engine_stats.enqueued, 0u)
      << "sequential record must not touch the engine";
}

INSTANTIATE_TEST_SUITE_P(
    WholeCatalog, EveryAppParallel, ::testing::ValuesIn(apps::all_apps()),
    [](const ::testing::TestParamInfo<const App*>& info) {
      return info.param->name();
    });

TEST(ParallelRecordHarness, ParallelTraceServesPredictMode) {
  // The parallel-recorded trace is a drop-in reference for predict mode.
  const App& app = *apps::find_app("CG");
  const harness::RunResult recorded = record_catalog_app(app, true);

  harness::RunConfig config;
  config.mode = harness::Mode::kPredict;
  config.app = tiny_config();
  config.reference = &recorded.trace;
  const harness::RunResult predicted = harness::run_app(app, config);
  EXPECT_GT(predicted.predictor_stats.observed, 0u);
  EXPECT_GT(predicted.predictor_stats.advanced, 0u);
  EXPECT_EQ(predicted.ranks_degraded, 0u);
}

}  // namespace
}  // namespace pythia::engine
