// SPSC ring unit tests: ordering, capacity/full behaviour, batch pop,
// cursor wraparound, and a two-thread handoff stress (the test the TSan
// CI job leans on for the ring's memory-ordering claims).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "support/spsc_ring.hpp"

namespace pythia::support {
namespace {

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  SpscRing<std::uint64_t> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<std::uint64_t> exact(16);
  EXPECT_EQ(exact.capacity(), 16u);
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<std::uint64_t> ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "ring should be full";
  std::uint64_t out[8] = {};
  EXPECT_EQ(ring.pop_batch(out, 8), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.pop_batch(out, 8), 0u) << "ring should be empty";
}

TEST(SpscRing, BatchPopBoundedByMax) {
  SpscRing<std::uint64_t> ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  std::uint64_t out[4] = {};
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[3], 3u);
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  EXPECT_EQ(out[0], 4u);
  std::uint64_t rest[8] = {};
  EXPECT_EQ(ring.pop_batch(rest, 8), 2u);
  EXPECT_EQ(rest[1], 9u);
}

TEST(SpscRing, CursorsWrapAcrossManyRefills) {
  // Push/pop far past the capacity so the masked indices wrap many times.
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_pop = 0;
  std::uint64_t next_push = 0;
  std::uint64_t out[4] = {};
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(next_push)) ++next_push;
    const std::size_t n = ring.pop_batch(out, 4);
    ASSERT_GT(n, 0u);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], next_pop) << "round " << round;
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, TwoThreadHandoffPreservesOrderAndLosesNothing) {
  constexpr std::uint64_t kEvents = 200'000;
  SpscRing<std::uint64_t> ring(64);  // small: forces constant wrapping

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  std::vector<std::uint64_t> batch(32);
  while (expected < kEvents) {
    const std::size_t n = ring.pop_batch(batch.data(), batch.size());
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch[i], expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(ring.size_approx(), 0u);
}

}  // namespace
}  // namespace pythia::support
