// Shared-grammar predict serving tests: snapshot immutability and
// publication, session pinning across live swaps, the batched predict_n
// path, and a many-clients concurrency run over one shared snapshot (the
// TSan CI job runs this file to vouch for the lock-free read claim).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/oracle.hpp"
#include "engine/snapshot.hpp"

namespace pythia::engine {
namespace {

/// A trace with one loopy section: a b c a b c ... (20 iterations).
Trace loop_trace(int iterations, std::uint64_t step_ns = 1000) {
  Trace trace;
  const TerminalId a = trace.registry.intern("a");
  const TerminalId b = trace.registry.intern("b");
  const TerminalId c = trace.registry.intern("c");
  Oracle oracle = Oracle::record(true);
  std::uint64_t now = 0;
  for (int i = 0; i < iterations; ++i) {
    oracle.event(a, now += step_ns);
    oracle.event(b, now += step_ns);
    oracle.event(c, now += step_ns);
  }
  trace.threads.push_back(oracle.finish());
  return trace;
}

TEST(TraceSnapshot, WrapsTraceAndComputesDigest) {
  auto snapshot = TraceSnapshot::make(loop_trace(20), /*version=*/3);
  EXPECT_EQ(snapshot->version(), 3u);
  EXPECT_EQ(snapshot->sections(), 1u);
  EXPECT_TRUE(snapshot->section_ok(0));
  EXPECT_EQ(snapshot->digest(), trace_digest(snapshot->trace()));
  // Same content, same digest: a reloader can skip a no-op publish.
  EXPECT_EQ(snapshot->digest(), TraceSnapshot::make(loop_trace(20))->digest());
  EXPECT_NE(snapshot->digest(), TraceSnapshot::make(loop_trace(21))->digest());
}

TEST(TraceSnapshot, LoadRoundTripsThroughAFile) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "pythia_snapshot_test.pythia";
  const Trace trace = loop_trace(10);
  ASSERT_TRUE(trace.try_save(path.string()).ok());
  Result<std::shared_ptr<const TraceSnapshot>> loaded =
      TraceSnapshot::load(path.string(), /*version=*/7);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value()->version(), 7u);
  EXPECT_EQ(loaded.value()->digest(), trace_digest(trace));
  fs::remove(path);

  Result<std::shared_ptr<const TraceSnapshot>> missing =
      TraceSnapshot::load((fs::temp_directory_path() / "nope.pythia").string());
  EXPECT_FALSE(missing.ok());
}

TEST(PredictServer, OpenFailsCleanlyBeforePublishAndOutOfRange) {
  PredictServer server;
  EXPECT_FALSE(server.open(0).ok());
  server.publish(TraceSnapshot::make(loop_trace(20)));
  EXPECT_TRUE(server.open(0).ok());
  EXPECT_FALSE(server.open(1).ok());
}

TEST(PredictServer, SessionTracksAndPredicts) {
  PredictServer server(TraceSnapshot::make(loop_trace(20)));
  Result<PredictSession> opened =
      server.open(0, Predictor::Options{});  // no breaker: deterministic
  ASSERT_TRUE(opened.ok());
  PredictSession session = opened.take();

  // Observe one loop body, then the oracle should know what comes next.
  session.observe(0);  // a
  session.observe(1);  // b
  session.observe(2);  // c
  session.observe(0);  // a
  const std::optional<Prediction> next = session.predict(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->event, 1u);  // b follows a
  const std::optional<double> eta = session.predict_time_ns(1);
  ASSERT_TRUE(eta.has_value());
  EXPECT_GT(*eta, 0.0);
}

TEST(PredictServer, PredictNMatchesPredictSequence) {
  PredictServer server(TraceSnapshot::make(loop_trace(20)));
  PredictSession session = server.open(0, Predictor::Options{}).take();
  session.observe(0);
  session.observe(1);

  TerminalId batched[12] = {};
  const std::size_t n = session.predict_n(batched, 12);
  ASSERT_GT(n, 0u);
  // Reference: an independent interpreted predictor over the same
  // section, tracked to the same position.
  const ThreadTrace& thread = session.snapshot()->section(0);
  Predictor interpreter(thread.grammar,
                        thread.timing.empty() ? nullptr : &thread.timing,
                        Predictor::Options{});
  interpreter.observe(0);
  interpreter.observe(1);
  const std::vector<TerminalId> reference = interpreter.predict_sequence(12);
  ASSERT_EQ(n, reference.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(batched[i], reference[i]);
  // The loop continues c a b c a b ...
  EXPECT_EQ(batched[0], 2u);
  EXPECT_EQ(batched[1], 0u);
  EXPECT_EQ(batched[2], 1u);
}

TEST(PredictServer, SwapDoesNotMovePinnedSessions) {
  auto v1 = TraceSnapshot::make(loop_trace(20), 1);
  auto v2 = TraceSnapshot::make(loop_trace(40), 2);
  PredictServer server(v1);
  PredictSession pinned = server.open(0).take();
  EXPECT_EQ(pinned.snapshot()->version(), 1u);

  server.publish(v2);
  EXPECT_EQ(server.publishes(), 2u);
  EXPECT_EQ(pinned.snapshot()->version(), 1u)
      << "live session must keep its snapshot";
  EXPECT_EQ(server.open(0).take().snapshot()->version(), 2u);

  // The old snapshot dies only when the last pinned session lets go.
  std::weak_ptr<const TraceSnapshot> watch = v1;
  v1.reset();
  EXPECT_FALSE(watch.expired());
  pinned = server.open(0).take();  // re-pin to current
  EXPECT_TRUE(watch.expired());
}

TEST(PredictServer, ManyConcurrentSessionsShareOneSnapshot) {
  // The lock-free serving claim: N clients, one immutable snapshot, no
  // coordination. Each client tracks the loop from a different phase and
  // must see exactly the deterministic continuation.
  constexpr int kClients = 8;
  constexpr int kRounds = 1'000;  // stays well inside the 1500-event trace
  PredictServer server(TraceSnapshot::make(loop_trace(500)));

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      PredictSession session = server.open(0, Predictor::Options{}).take();
      const TerminalId phase = static_cast<TerminalId>(c % 3);
      session.observe(phase);
      TerminalId expected = (phase + 1) % 3;
      TerminalId batch[6] = {};
      for (int round = 0; round < kRounds; ++round) {
        session.observe(expected);
        const std::size_t n = session.predict_n(batch, 6);
        if (n != 6) {
          ++failures;
          return;
        }
        TerminalId want = expected;
        for (std::size_t i = 0; i < n; ++i) {
          want = (want + 1) % 3;
          if (batch[i] != want) {
            ++failures;
            return;
          }
        }
        expected = (expected + 1) % 3;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TraceSnapshot, MappedLoadServesCompiledWithoutDeserializing) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "pythia_snapshot_mapped.pythia";
  const Trace trace = loop_trace(20);
  ASSERT_TRUE(trace.try_save(path.string()).ok());

  Result<std::shared_ptr<const TraceSnapshot>> mapped =
      TraceSnapshot::load_mapped(path.string(), /*version=*/5);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  const auto snapshot = mapped.value();
  EXPECT_TRUE(snapshot->mapped());
  EXPECT_EQ(snapshot->version(), 5u);
  ASSERT_EQ(snapshot->sections(), 1u);
  EXPECT_TRUE(snapshot->section_ok(0));
  // The grammar was never materialized; the compiled view was.
  EXPECT_EQ(snapshot->section(0).grammar.sequence_length(), 0u);
  ASSERT_TRUE(snapshot->section(0).compiled.valid());

  // Sessions over the mapped snapshot serve from the compiled automaton
  // and predict exactly like a fully-loaded one.
  PredictServer server(snapshot);
  PredictSession session = server.open(0).take();
  EXPECT_TRUE(session.using_compiled());
  session.observe(0);
  session.observe(1);
  const auto next = session.predict(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->event, 2u);
  const auto eta = session.predict_time_ns(1);
  ASSERT_TRUE(eta.has_value());
  EXPECT_NEAR(*eta, 1000.0, 1e-6);
  fs::remove(path);
}

TEST(TraceSnapshot, MappedLoadFailsWithoutCompiledSections) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "pythia_snapshot_nocompiled.pythia";
  // A trace whose only thread cannot compile (empty) still saves fine —
  // but carries no compiled section, so the mapped loader must refuse
  // and the caller falls back to TraceSnapshot::load.
  Trace trace;
  trace.registry.intern("a");
  Oracle oracle = Oracle::record(false);
  trace.threads.push_back(oracle.finish());
  ASSERT_TRUE(trace.try_save(path.string()).ok());

  Result<std::shared_ptr<const TraceSnapshot>> mapped =
      TraceSnapshot::load_mapped(path.string());
  EXPECT_FALSE(mapped.ok());
  Result<std::shared_ptr<const TraceSnapshot>> full =
      TraceSnapshot::load(path.string());
  EXPECT_TRUE(full.ok()) << full.status().to_string();
  fs::remove(path);
}

}  // namespace
}  // namespace pythia::engine
