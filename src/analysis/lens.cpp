#include "analysis/lens.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace pythia::analysis {

RuleLens::RuleLens(const Grammar& grammar, const TimingModel* timing)
    : grammar_(&grammar), timing_(timing) {
  PYTHIA_ASSERT_MSG(grammar.finalized(), "RuleLens requires finalize()");
  rules_ = grammar.rules();
  PYTHIA_ASSERT_MSG(!rules_.empty() && rules_[0] == grammar.root(),
                    "rules() must list the root first");
  std::uint32_t max_id = 0;
  for (const Rule* rule : rules_) max_id = std::max(max_id, rule->id);
  dense_of_id_.assign(static_cast<std::size_t>(max_id) + 1, kCompiledInvalid);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    dense_of_id_[rules_[i]->id] = static_cast<std::uint32_t>(i);
  }
}

RuleLens::RuleLens(const CompiledView& view) : view_(&view) {
  PYTHIA_ASSERT_MSG(view.valid(), "RuleLens requires a valid CompiledView");
}

std::uint32_t RuleLens::rule_count() const {
  return view_ != nullptr ? view_->rule_count()
                          : static_cast<std::uint32_t>(rules_.size());
}

std::uint64_t RuleLens::sequence_length() const {
  return view_ != nullptr ? view_->sequence_length()
                          : grammar_->sequence_length();
}

std::uint64_t RuleLens::occurrences(std::uint32_t rule) const {
  return view_ != nullptr ? view_->rule(rule).occurrences
                          : rules_[rule]->occurrences;
}

RuleLens::BodyCursor RuleLens::body(std::uint32_t rule) const {
  BodyCursor cursor;
  cursor.lens_ = this;
  if (view_ != nullptr) {
    cursor.id_ = view_->rule(rule).head;
  } else {
    cursor.node_ = rules_[rule]->head;
  }
  return cursor;
}

bool RuleLens::BodyCursor::next(BodyItem& out) {
  if (lens_->view_ != nullptr) {
    if (id_ == kCompiledInvalid) return false;
    const CompiledNode& node = lens_->view_->node(id_);
    const Symbol sym = Symbol::from_raw(node.sym_raw);
    out.is_rule = sym.is_rule();
    // Compiled bodies reference rules by dense index already. The unused
    // half stays zero so items compare equal across backends.
    out.rule = out.is_rule ? sym.rule_id() : 0;
    out.terminal = out.is_rule ? 0 : sym.terminal_id();
    out.exp = node.exp;
    out.stable_id = id_;
    id_ = node.next;
    return true;
  }
  if (node_ == nullptr) return false;
  out.is_rule = node_->sym.is_rule();
  out.rule = out.is_rule ? lens_->dense_of_id_[node_->sym.rule_id()] : 0;
  out.terminal = out.is_rule ? 0 : node_->sym.terminal_id();
  out.exp = node_->exp;
  out.stable_id = node_->stable_id;
  node_ = node_->next;
  return true;
}

bool RuleLens::has_timing() const {
  if (view_ != nullptr) return view_->has_timing();
  return timing_ != nullptr && !timing_->empty();
}

bool RuleLens::node_timing(std::uint32_t stable_id, double& sum_ns,
                           std::uint64_t& count) const {
  const std::uint64_t key = node_timing_key(stable_id);
  if (view_ != nullptr) {
    // The compiled timing table is sorted by key (binary search; same
    // scheme as CompiledView::timing_lookup, which only exposes means).
    const CompiledTimingEntry* begin = view_->timing_begin();
    const CompiledTimingEntry* end = begin + view_->timing_count();
    const CompiledTimingEntry* it = std::lower_bound(
        begin, end, key,
        [](const CompiledTimingEntry& entry, std::uint64_t k) {
          return entry.key < k;
        });
    if (it == end || it->key != key) return false;
    sum_ns = it->sum_ns;
    count = it->count;
    return true;
  }
  if (timing_ == nullptr) return false;
  const auto& contexts = timing_->contexts();
  const auto it = contexts.find(key);
  if (it == contexts.end()) return false;
  sum_ns = it->second.sum_ns;
  count = it->second.count;
  return true;
}

double RuleLens::global_mean_ns() const {
  if (view_ != nullptr) {
    return view_->timing_global_count() > 0
               ? view_->timing_global_sum() /
                     static_cast<double>(view_->timing_global_count())
               : 0.0;
  }
  return timing_ != nullptr ? timing_->global_mean_ns() : 0.0;
}

std::uint32_t RuleLens::dense_of_rule_id(std::uint32_t rule_id) const {
  if (rule_id >= dense_of_id_.size()) return kCompiledInvalid;
  return dense_of_id_[rule_id];
}

}  // namespace pythia::analysis
