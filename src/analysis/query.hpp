// analysis::Query — the shared entry point for grammar-domain analytics.
//
// trace_inspect, the grammar-domain trace_diff, and the serve daemon's
// kAnalyze op all build one of these over a recorded thread and ask it
// questions; every answer is computed from the rule summaries in
// O(grammar). A Query binds to whichever encoding the thread offers —
// the mmapped compiled blob when present (no deserialization at all),
// the interpreted grammar otherwise — and computes its summary set once
// at construction. After that warm-up, phases() and event_at() make no
// allocator calls (tests/analysis/query_mapped_test.cpp).
#pragma once

#include <cstdint>

#include "analysis/lens.hpp"
#include "analysis/phases.hpp"
#include "analysis/summary.hpp"
#include "core/recorder.hpp"

namespace pythia::analysis {

class Query {
 public:
  Query() = default;

  /// Over an interpreted grammar (+ optional timing). Referents must
  /// outlive the query.
  static Query over(const Grammar& grammar,
                    const TimingModel* timing = nullptr);

  /// Over a compiled blob; summaries are computed directly on the flat
  /// tables (works for mmapped sections — nothing is deserialized).
  static Query over_compiled(const CompiledView& view);

  /// Picks the best source a thread offers: the compiled section when
  /// valid, the interpreted grammar otherwise. Returns an invalid Query
  /// when the thread has neither (e.g. a salvaged-empty section).
  static Query over_thread(const ThreadTrace& thread);

  bool valid() const { return lens_.valid(); }
  bool compiled() const { return lens_.compiled(); }

  const RuleLens& lens() const { return lens_; }
  const SummarySet& summaries() const { return summaries_; }
  std::uint64_t events() const { return summaries_.events; }
  std::uint32_t rules() const { return lens_.rule_count(); }

  /// Phase tree into `out` (capacity reused; allocation-free once warm).
  void phases(const PhaseOptions& options, PhaseTree& out) const {
    detect_phases(lens_, summaries_, options, out);
  }

  /// Terminal at absolute trace position `index`, by O(depth) descent
  /// over per-rule expansion lengths — no unfolding.
  bool event_at(std::uint64_t index, TerminalId& out) const;

 private:
  RuleLens lens_;
  SummarySet summaries_;
};

}  // namespace pythia::analysis
