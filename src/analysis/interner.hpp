// Cross-grammar hash-consing of rule bodies.
//
// Two rules — possibly from different grammars — receive the same cons
// id iff their full expansions are structurally identical: same nested
// rule shape, same terminals, same exponents. Identity is exact, not
// probabilistic: the hash only routes to a bucket, equal bodies are
// confirmed by comparison (with child references already replaced by
// cons ids, equality at one level implies equality of the whole subtree
// by induction).
//
// The structural diff interns both runs' grammars into one table; any
// two subtrees then compare in O(1) by cons id, which is what lets the
// diff descend only into genuinely mismatched regions.
//
// Terminal ids must be comparable across the interned grammars — intern
// traces that share a registry, or canonicalize first
// (EventRegistry::canonicalize), as the record harness already does.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/lens.hpp"
#include "support/flat_map.hpp"

namespace pythia::analysis {

class SubtreeInterner {
 public:
  /// Interns every rule of `lens` bottom-up; fills out[dense] = cons id.
  void intern(const RuleLens& lens, std::vector<std::uint32_t>& out);

  /// Distinct subtrees interned so far.
  std::size_t distinct() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t hash;
    std::uint32_t offset;  ///< span into pool_
    std::uint32_t length;
    std::uint32_t next;    ///< bucket chain, kCompiledInvalid ends
  };
  /// Canonical body token: (tagged symbol, exponent). Rule references
  /// carry the child's cons id, so one level of comparison is enough.
  struct Token {
    std::uint64_t sym;
    std::uint64_t exp;
    friend bool operator==(const Token& a, const Token& b) {
      return a.sym == b.sym && a.exp == b.exp;
    }
  };

  std::uint32_t intern_body(std::uint64_t hash, std::size_t offset,
                            std::size_t length);

  std::vector<Token> pool_;
  std::vector<Entry> entries_;
  support::FlatMap<std::uint64_t, std::uint32_t> buckets_;  ///< hash -> first entry
  std::vector<Token> scratch_;
};

}  // namespace pythia::analysis
