#include "analysis/diff.hpp"

#include <algorithm>

#include "analysis/interner.hpp"
#include "analysis/lens.hpp"
#include "analysis/summary.hpp"
#include "core/predictor.hpp"
#include "core/progress.hpp"
#include "support/assert.hpp"

namespace pythia::analysis {

namespace {

constexpr std::size_t kMaxDivergencePoints = 16;

}  // namespace

DiffReport expand_diff(const Grammar& reference, const Grammar& other) {
  DiffReport report;
  Predictor predictor(reference);
  const std::vector<TerminalId> events = other.unfold();
  report.events = events.size();

  // The divergence bookkeeping below reproduces the original trace_diff
  // loop exactly, including its quirk: `previous` is only updated inside
  // the `i > 0` guard, so a miss at event 0 leaves the change pending
  // and index 1 is always recorded on traces that open with an anchor.
  std::uint64_t previous_reanchors = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    predictor.observe(events[i]);
    const Predictor::Stats& stats = predictor.stats();
    const std::uint64_t reanchors = stats.reanchored + stats.unknown;
    if (reanchors != previous_reanchors && i > 0) {
      if (report.divergence_points.size() < kMaxDivergencePoints) {
        report.divergence_points.push_back(i);
      }
      previous_reanchors = reanchors;
    }
  }
  const Predictor::Stats& stats = predictor.stats();
  report.advanced = stats.advanced;
  report.reanchored = stats.reanchored;
  report.unknown = stats.unknown;
  return report;
}

namespace {

// ---------------------------------------------------------------------
// Grammar-domain replay.
//
// With the breaker off, a Predictor's entire behavioral state is its
// ordered candidate vector, observe() is a deterministic function of
// (candidates, event), and anchor(t) is a pure function of t. The
// machine below exploits that: it walks `other`'s grammar block by
// block, keeps the candidate set itself, and only feeds the real
// predictor single events on the rare slow path. Everything regular is
// fast-forwarded:
//
//   - subtree skip: if every candidate is entering a fresh expansion of
//     a reference subtree hash-cons-equal to the block's, c whole
//     expansions advance in O(depth) path surgery — no events simulated;
//   - exponent runs: a t^n block advances by per-candidate run
//     capacities, and once the set re-anchors, state returns to the pure
//     anchor(t) set, so full (capacity+1)-event cycles multiply in O(1);
//   - block cycles: a mismatched rule block R^n snapshots the candidate
//     set before one probe expansion; if the state comes back unchanged,
//     the remaining n-1 repetitions are pure multiplication.
//
// Divergence-point bookkeeping replicates expand_diff's event-indexed
// records (cap 16, the `i > 0` quirk included) from cumulative-miss
// deltas, so reports are bit-identical.
// ---------------------------------------------------------------------

struct Accum {
  std::uint64_t advanced = 0;
  std::uint64_t reanchored = 0;
  std::uint64_t unknown = 0;
};

class DiffMachine {
 public:
  DiffMachine(const Grammar& reference, const Grammar& other)
      : ref_(reference),
        other_(other),
        predictor_(reference),
        ref_lens_(reference, nullptr),
        other_lens_(other, nullptr) {
    SubtreeInterner interner;
    interner.intern(ref_lens_, ref_cons_);
    interner.intern(other_lens_, other_cons_);
    compute_summaries(other_lens_, other_sum_);
  }

  DiffReport run() {
    walk_blocks();
    PYTHIA_ASSERT_MSG(index_ == other_.sequence_length(),
                      "grammar_diff consumed a wrong event count");
    DiffReport report;
    report.events = other_.sequence_length();
    report.advanced = accum_.advanced;
    report.reanchored = accum_.reanchored;
    report.unknown = accum_.unknown;
    report.divergence_points = std::move(points_);
    return report;
  }

 private:
  // --- divergence bookkeeping (expand_diff-exact) --------------------
  std::uint64_t cum_misses() const {
    return accum_.reanchored + accum_.unknown;
  }

  // After the event at index i, mirror one iteration of the legacy loop.
  void note_event(std::uint64_t i) {
    const std::uint64_t cum = cum_misses();
    if (cum != cum_reported_ && i > 0) {
      if (points_.size() < kMaxDivergencePoints) points_.push_back(i);
      cum_reported_ = cum;
    }
  }

  // --- slow path: one real observe() ---------------------------------
  void slow_feed(TerminalId event) {
    predictor_.set_candidates(cands_.data(), cands_.size());
    const Predictor::Stats before = predictor_.stats();
    predictor_.observe(event);
    const Predictor::Stats& after = predictor_.stats();
    accum_.advanced += after.advanced - before.advanced;
    accum_.reanchored += after.reanchored - before.reanchored;
    accum_.unknown += after.unknown - before.unknown;
    cands_ = predictor_.candidates();
    note_event(index_);
    ++index_;
  }

  // --- bulk paths -----------------------------------------------------
  // n events that all advance (cumulative misses unchanged): at most the
  // pending miss from the previous event resolves at the block's first
  // index, exactly as the legacy loop would.
  void bulk_advance(std::uint64_t n) {
    if (n == 0) return;
    note_event(index_);
    accum_.advanced += n;
    index_ += n;
  }

  // n consecutive misses (every event bumps the cumulative count, so
  // every index > 0 is recorded until the cap).
  void flood_misses(std::uint64_t n, bool unknown) {
    if (n == 0) return;
    const std::uint64_t base = cum_misses();
    for (std::uint64_t k = 0; k < n && points_.size() < kMaxDivergencePoints;
         ++k) {
      const std::uint64_t i = index_ + k;
      if (i == 0) continue;
      points_.push_back(i);
    }
    if (index_ + n - 1 > 0) cum_reported_ = base + n;
    if (unknown) {
      accum_.unknown += n;
    } else {
      accum_.reanchored += n;
    }
    index_ += n;
  }

  // --- terminal runs --------------------------------------------------
  // Advances `path` across up to `cap` consecutive `event`s, absorbing
  // whole exponent runs in O(1); returns how many it matched.
  std::uint64_t advance_run(ProgressPath& path, TerminalId event,
                            std::uint64_t cap) const {
    std::uint64_t matched = 0;
    while (matched < cap) {
      ProgressPath probe = path;
      if (!probe.advance(ref_) || probe.terminal() != event) break;
      ++matched;
      const Node* node = probe.terminal_node();
      const std::uint64_t rep = probe.element(0).rep;
      const std::uint64_t extra =
          std::min(cap - matched, node->exp - 1 - rep);
      if (extra > 0) probe.bump_front_rep(extra);
      matched += extra;
      path = probe;
    }
    return matched;
  }

  // One block of `n` consecutive `event`s.
  void handle_terminals(TerminalId event, std::uint64_t n) {
    while (n > 0) {
      if (cands_.empty()) {
        if (ref_.occurrences_of(event).empty()) {
          flood_misses(n, /*unknown=*/true);
          return;
        }
        slow_feed(event);
        --n;
        continue;
      }
      // Per-candidate run capacities; survivors of `steps` events are
      // exactly the candidates that reach the maximum (observe() filters
      // per event, and capacities are capped at n).
      std::uint64_t max_cap = 0;
      probes_.clear();
      caps_.clear();
      for (const ProgressPath& cand : cands_) {
        ProgressPath probe = cand;
        const std::uint64_t cap = advance_run(probe, event, n);
        probes_.push_back(std::move(probe));
        caps_.push_back(cap);
        max_cap = std::max(max_cap, cap);
      }
      const std::uint64_t steps = std::min(max_cap, n);
      if (steps > 0) {
        next_cands_.clear();
        for (std::size_t i = 0; i < probes_.size(); ++i) {
          if (caps_[i] == steps) next_cands_.push_back(probes_[i]);
        }
        cands_.swap(next_cands_);
        bulk_advance(steps);
        n -= steps;
        if (n == 0) return;
      }
      // The next event fails every candidate: one real observe()
      // re-anchors (anchor(t) is pure, so the post-anchor state is a
      // fixed point of the cycle below).
      slow_feed(event);
      --n;
      if (n == 0) return;
      if (cands_.empty()) {
        flood_misses(n, /*unknown=*/true);
        return;
      }
      // Anchored-set capacity: each cycle is (m' advances + 1 re-anchor)
      // returning to this exact state — multiply full cycles in O(1).
      std::uint64_t anchored_cap = 0;
      for (const ProgressPath& cand : cands_) {
        ProgressPath probe = cand;
        anchored_cap =
            std::max(anchored_cap, advance_run(probe, event, n));
      }
      if (anchored_cap == 0) {
        // anchor(t) can never advance on another t: pure re-anchor flood.
        flood_misses(n, /*unknown=*/false);
        return;
      }
      const std::uint64_t cycle = anchored_cap + 1;
      const std::uint64_t full = n / cycle;
      if (full > 0) {
        apply_anchor_cycles(anchored_cap, full);
        n -= full * cycle;
      }
      // Tail (n <= anchored_cap): the next loop iteration bulk-advances.
    }
  }

  void apply_anchor_cycles(std::uint64_t advances, std::uint64_t cycles) {
    const std::uint64_t cycle = advances + 1;
    const std::uint64_t base = cum_misses();
    for (std::uint64_t c = 0;
         c < cycles && points_.size() < kMaxDivergencePoints; ++c) {
      const std::uint64_t i = index_ + c * cycle + advances;
      if (i == 0) continue;
      points_.push_back(i);
    }
    cum_reported_ = base + cycles;
    accum_.advanced += cycles * advances;
    accum_.reanchored += cycles;
    index_ += cycles * cycle;
  }

  // --- structural subtree skip ----------------------------------------
  // If every candidate's next event enters a fresh expansion of a
  // reference subtree with cons id `cons`, consume up to `max_reps`
  // whole expansions (`unit_len` events each) by path surgery alone.
  // Returns the number of expansions consumed (0 = not applicable).
  std::uint64_t try_skip(std::uint32_t cons, std::uint64_t unit_len,
                         std::uint64_t max_reps) {
    if (cands_.empty() || cons == kCompiledInvalid) return 0;
    std::uint64_t reps = max_reps;
    skip_paths_.clear();
    skip_levels_.clear();
    for (const ProgressPath& cand : cands_) {
      ProgressPath next = cand;
      if (!next.advance(ref_)) return 0;
      // Find the ancestor that starts a fresh cons-matched expansion:
      // all levels below it must sit at their body heads, repetition 0.
      std::size_t level = 0;
      bool found = false;
      while (level + 1 < next.depth()) {
        const PathElement& below = next.element(level);
        if (below.rep != 0 || below.node->prev != nullptr) break;
        const PathElement& parent = next.element(level + 1);
        PYTHIA_ASSERT(parent.node->sym.is_rule());
        const std::uint32_t dense =
            ref_lens_.dense_of_rule_id(parent.node->sym.rule_id());
        if (dense != kCompiledInvalid && ref_cons_[dense] == cons) {
          reps = std::min(reps, parent.node->exp - parent.rep);
          found = true;
          break;
        }
        ++level;
      }
      if (!found) return 0;
      skip_paths_.push_back(std::move(next));
      skip_levels_.push_back(level + 1);
    }
    // Rebuild each path at the LAST event of the reps-th expansion: the
    // matched ancestor's repetition moves up by reps-1 and the levels
    // below become the subtree's trailing-terminal chain at full
    // repetition (Rule::tail descent).
    next_cands_.clear();
    for (std::size_t i = 0; i < skip_paths_.size(); ++i) {
      const ProgressPath& path = skip_paths_[i];
      const std::size_t anchor_level = skip_levels_[i];
      elems_.clear();
      const Rule* rule =
          ref_.rule_by_id(path.element(anchor_level).node->sym.rule_id());
      chain_.clear();
      while (true) {
        const Node* tail = rule->tail;
        chain_.push_back({tail, tail->exp - 1});
        if (!tail->sym.is_rule()) break;
        rule = ref_.rule_by_id(tail->sym.rule_id());
      }
      elems_.assign(chain_.rbegin(), chain_.rend());
      for (std::size_t level = anchor_level; level < path.depth(); ++level) {
        PathElement element = path.element(level);
        if (level == anchor_level) element.rep += reps - 1;
        elems_.push_back(element);
      }
      next_cands_.emplace_back();
      next_cands_.back().assign(elems_.data(), elems_.size());
    }
    cands_.swap(next_cands_);
    bulk_advance(reps * unit_len);
    return reps;
  }

  // --- block walk over `other` ----------------------------------------
  struct BlockFrame {
    const Node* node = nullptr;
    std::uint64_t reps_left = 0;
    // Cycle-detection snapshot around one probe expansion.
    bool probe_armed = false;
    std::vector<ProgressPath> probe_cands;
    Accum probe_accum;
    std::uint64_t probe_index = 0;
    std::size_t probe_points = 0;
  };

  void walk_blocks() {
    std::vector<BlockFrame> stack;
    {
      BlockFrame top;
      top.node = other_.root()->head;
      top.reps_left = top.node != nullptr ? top.node->exp : 0;
      stack.push_back(std::move(top));
    }
    while (!stack.empty()) {
      BlockFrame& frame = stack.back();
      if (frame.node == nullptr) {
        stack.pop_back();
        continue;
      }
      if (frame.reps_left == 0) {
        frame.node = frame.node->next;
        frame.reps_left = frame.node != nullptr ? frame.node->exp : 0;
        frame.probe_armed = false;
        continue;
      }
      if (frame.node->sym.is_terminal()) {
        handle_terminals(frame.node->sym.terminal_id(), frame.reps_left);
        frame.reps_left = 0;
        continue;
      }
      const std::uint32_t dense =
          other_lens_.dense_of_rule_id(frame.node->sym.rule_id());
      const std::uint32_t cons = other_cons_[dense];
      const std::uint64_t unit_len = other_sum_.rules[dense].exp_len;
      const std::uint64_t skipped = try_skip(cons, unit_len, frame.reps_left);
      if (skipped > 0) {
        frame.reps_left -= skipped;
        frame.probe_armed = false;
        continue;
      }
      if (frame.probe_armed && cands_ == frame.probe_cands) {
        multiply_block_cycles(frame);
        frame.reps_left = 0;
        continue;
      }
      // Descend one expansion; snapshot first so a repeating state can
      // collapse the remaining repetitions. Only armed when no miss is
      // pending AND the probe cannot contain global index 0 (whose miss
      // the legacy loop never records), so the probe's divergence
      // records replay verbatim in every later cycle.
      if (frame.reps_left >= 2 && cum_misses() == cum_reported_ &&
          index_ > 0) {
        frame.probe_armed = true;
        frame.probe_cands = cands_;
        frame.probe_accum = accum_;
        frame.probe_index = index_;
        frame.probe_points = points_.size();
      } else {
        frame.probe_armed = false;
      }
      frame.reps_left -= 1;
      const Rule* inner = other_.rule_by_id(frame.node->sym.rule_id());
      BlockFrame child;
      child.node = inner->head;
      child.reps_left = child.node != nullptr ? child.node->exp : 0;
      stack.push_back(std::move(child));  // invalidates `frame`
    }
  }

  // The probe expansion left the candidate state exactly where it
  // started: the remaining reps_left repetitions each replay the same
  // stat deltas and the same divergence offsets.
  void multiply_block_cycles(BlockFrame& frame) {
    const std::uint64_t cycles = frame.reps_left;
    const std::uint64_t period = index_ - frame.probe_index;
    const std::uint64_t d_adv = accum_.advanced - frame.probe_accum.advanced;
    const std::uint64_t d_re =
        accum_.reanchored - frame.probe_accum.reanchored;
    const std::uint64_t d_un = accum_.unknown - frame.probe_accum.unknown;
    const std::size_t first = frame.probe_points;
    const std::size_t last = points_.size();
    for (std::uint64_t c = 1;
         c <= cycles && points_.size() < kMaxDivergencePoints; ++c) {
      for (std::size_t p = first;
           p < last && points_.size() < kMaxDivergencePoints; ++p) {
        points_.push_back(points_[p] + c * period);
      }
    }
    accum_.advanced += cycles * d_adv;
    accum_.reanchored += cycles * d_re;
    accum_.unknown += cycles * d_un;
    index_ += cycles * period;
    if (d_re + d_un > 0) cum_reported_ = cum_misses();
  }

  const Grammar& ref_;
  const Grammar& other_;
  Predictor predictor_;
  RuleLens ref_lens_;
  RuleLens other_lens_;
  std::vector<std::uint32_t> ref_cons_;    ///< ref dense rule -> cons id
  std::vector<std::uint32_t> other_cons_;  ///< other dense rule -> cons id
  SummarySet other_sum_;

  std::vector<ProgressPath> cands_;
  Accum accum_;
  std::uint64_t index_ = 0;
  std::uint64_t cum_reported_ = 0;
  std::vector<std::uint64_t> points_;

  // Scratch (reused across blocks).
  std::vector<ProgressPath> probes_;
  std::vector<std::uint64_t> caps_;
  std::vector<ProgressPath> next_cands_;
  std::vector<ProgressPath> skip_paths_;
  std::vector<std::size_t> skip_levels_;
  std::vector<PathElement> elems_;
  std::vector<PathElement> chain_;
};

}  // namespace

DiffReport grammar_diff(const Grammar& reference, const Grammar& other) {
  DiffMachine machine(reference, other);
  return machine.run();
}

std::vector<DiffRegion> structural_diff(const Grammar& reference,
                                        const Grammar& other,
                                        std::size_t max_regions) {
  RuleLens ref_lens(reference, nullptr);
  RuleLens other_lens(other, nullptr);
  SubtreeInterner interner;
  std::vector<std::uint32_t> ref_cons;
  std::vector<std::uint32_t> other_cons;
  interner.intern(ref_lens, ref_cons);
  interner.intern(other_lens, other_cons);
  SummarySet other_sum = compute_summaries(other_lens);

  // Which subtrees does the reference contain at all? A cons id present
  // anywhere in the reference matches in O(1); terminals match when the
  // reference ever produces them.
  std::vector<std::uint8_t> ref_has_cons(interner.distinct(), 0);
  for (const std::uint32_t cons : ref_cons) ref_has_cons[cons] = 1;

  std::vector<DiffRegion> regions;
  // DFS over mismatched rules of `other`, path maintained explicitly.
  struct Frame {
    std::uint32_t rule;
    std::uint64_t run_begin = 0;  ///< open mismatch run start (events)
    bool run_open = false;
    RuleLens::BodyCursor cursor;
    std::uint64_t offset = 0;  ///< event offset inside one unfolding
  };
  std::vector<std::uint32_t> path;
  std::vector<Frame> stack;
  stack.push_back({0, 0, false, other_lens.body(0), 0});
  path.push_back(0);

  auto flush_run = [&](Frame& frame) {
    if (!frame.run_open) return;
    frame.run_open = false;
    if (regions.size() >= max_regions) return;
    DiffRegion region;
    region.rule_path = path;
    region.begin_event = frame.run_begin;
    region.end_event = frame.offset;
    region.occurrences = other_lens.occurrences(frame.rule);
    regions.push_back(std::move(region));
  };

  BodyItem item;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (!frame.cursor.next(item)) {
      flush_run(frame);
      stack.pop_back();
      path.pop_back();
      continue;
    }
    const std::uint64_t unit_len =
        item.is_rule ? other_sum.rules[item.rule].exp_len : 1;
    const std::uint64_t span = unit_len * item.exp;
    bool matched;
    if (item.is_rule) {
      matched = ref_has_cons[other_cons[item.rule]] != 0;
    } else {
      matched = !reference.occurrences_of(item.terminal).empty();
    }
    if (matched) {
      flush_run(frame);
      frame.offset += span;
      continue;
    }
    if (item.is_rule) {
      // Descend to localize the mismatch; the child frame reports its
      // own runs with the extended rule path.
      flush_run(frame);
      const std::uint64_t resume = frame.offset + span;
      frame.offset = resume;
      path.push_back(item.rule);
      stack.push_back({item.rule, 0, false, other_lens.body(item.rule), 0});
      continue;  // `frame` invalidated
    }
    if (!frame.run_open) {
      frame.run_open = true;
      frame.run_begin = frame.offset;
    }
    frame.offset += span;
  }
  return regions;
}

}  // namespace pythia::analysis
