#include "analysis/interner.hpp"

#include "support/assert.hpp"

namespace pythia::analysis {

namespace {

constexpr std::uint64_t kBodySeed = 0x1c69b3f74ac4fb51ULL;

// Tagged symbol word: terminals and cons ids must never collide.
std::uint64_t terminal_token(TerminalId t) {
  return static_cast<std::uint64_t>(t);
}
std::uint64_t cons_token(std::uint32_t cons) {
  return (1ull << 32) | cons;
}

}  // namespace

void SubtreeInterner::intern(const RuleLens& lens,
                             std::vector<std::uint32_t>& out) {
  const std::uint32_t count = lens.rule_count();
  out.assign(count, kCompiledInvalid);

  // Bottom-up over the rule DAG (explicit stack, see summary.cpp): a
  // child's cons id exists before any referencing body is canonicalized.
  std::vector<std::uint8_t> state(count, 0);
  struct Frame {
    std::uint32_t rule;
    RuleLens::BodyCursor cursor;
  };
  std::vector<Frame> stack;
  BodyItem item;
  for (std::uint32_t start = 0; start < count; ++start) {
    if (state[start] != 0) continue;
    state[start] = 1;
    stack.push_back({start, lens.body(start)});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      bool descended = false;
      while (frame.cursor.next(item)) {
        if (item.is_rule && state[item.rule] == 0) {
          state[item.rule] = 1;
          stack.push_back({item.rule, lens.body(item.rule)});
          descended = true;
          break;
        }
        PYTHIA_ASSERT_MSG(!item.is_rule || state[item.rule] == 2,
                          "cycle in rule DAG");
      }
      if (descended) continue;

      const std::uint32_t rule = stack.back().rule;
      scratch_.clear();
      std::uint64_t hash = kBodySeed;
      RuleLens::BodyCursor cursor = lens.body(rule);
      while (cursor.next(item)) {
        const std::uint64_t sym = item.is_rule
                                      ? cons_token(out[item.rule])
                                      : terminal_token(item.terminal);
        scratch_.push_back({sym, item.exp});
        hash = support::hash_combine(hash, sym);
        hash = support::hash_combine(hash, item.exp);
      }
      const std::size_t offset = pool_.size();
      pool_.insert(pool_.end(), scratch_.begin(), scratch_.end());
      out[rule] = intern_body(hash, offset, scratch_.size());
      state[rule] = 2;
      stack.pop_back();
    }
  }
}

std::uint32_t SubtreeInterner::intern_body(std::uint64_t hash,
                                           std::size_t offset,
                                           std::size_t length) {
  // Walk the bucket chain; on a full match, discard the freshly appended
  // body and return the existing id.
  const std::uint32_t* head = buckets_.find(hash);
  std::uint32_t at = head != nullptr ? *head : kCompiledInvalid;
  while (at != kCompiledInvalid) {
    const Entry& entry = entries_[at];
    if (entry.hash == hash && entry.length == length) {
      bool equal = true;
      for (std::size_t i = 0; i < length; ++i) {
        if (!(pool_[entry.offset + i] == pool_[offset + i])) {
          equal = false;
          break;
        }
      }
      if (equal) {
        pool_.resize(offset);
        return at;
      }
    }
    at = entry.next;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back({hash, static_cast<std::uint32_t>(offset),
                      static_cast<std::uint32_t>(length),
                      head != nullptr ? *head : kCompiledInvalid});
  buckets_.insert_or_assign(hash, id);
  return id;
}

}  // namespace pythia::analysis
