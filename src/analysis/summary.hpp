// Memoized per-rule summaries — the O(rules) backbone of every
// grammar-domain analysis (docs/ANALYSIS.md).
//
// One bottom-up sweep over the rule DAG computes, per rule, everything
// the queries need about its full expansion *without producing it*:
// length, first/last terminal, a terminal-membership sketch, structural
// content hash, and timing rollups attributed from the TimingModel's
// depth-1 contexts. Cost is proportional to grammar size (rules + body
// nodes), never to trace length.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/lens.hpp"

namespace pythia::analysis {

struct RuleSummary {
  std::uint64_t exp_len = 0;     ///< terminals in one unfolding (saturating)
  std::uint64_t occurrences = 0; ///< times the body unfolds trace-wide
  std::uint32_t body_nodes = 0;
  std::uint32_t depth = 0;       ///< max rule nesting beneath (flat body = 0)
  TerminalId first_terminal = 0; ///< first/last event of one unfolding
  TerminalId last_terminal = 0;
  /// Terminal-membership sketch: bit (t % 64) set for every terminal t
  /// occurring anywhere beneath. sketch(A) & ~sketch(B) != 0 proves A
  /// expands to an event B never produces — an O(1) pre-filter.
  std::uint64_t terminal_sketch = 0;
  /// Content hash of the full expansion structure (symbols + exponents,
  /// child hashes substituted). Equal subtrees hash equal; the interner
  /// upgrades this to exact identity.
  std::uint64_t subtree_hash = 0;
  /// Trace-wide arrival-gap time spent entering this body's direct
  /// terminal occurrences (depth-1 timing contexts), and the rollup
  /// including child rules' totals attributed by usage share.
  double self_time_ns = 0.0;
  std::uint64_t self_samples = 0;
  double total_time_ns = 0.0;
};

struct SummarySet {
  std::vector<RuleSummary> rules;  ///< dense index; rules[0] is the root
  std::uint64_t events = 0;        ///< full trace length
  bool timed = false;

  const RuleSummary& root() const { return rules[0]; }
};

/// One bottom-up sweep; reuses `out`'s capacity so repeated queries are
/// allocation-free after warm-up.
void compute_summaries(const RuleLens& lens, SummarySet& out);

inline SummarySet compute_summaries(const RuleLens& lens) {
  SummarySet set;
  compute_summaries(lens, set);
  return set;
}

}  // namespace pythia::analysis
