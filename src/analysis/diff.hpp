// Trace diffing in the grammar domain.
//
// Three entry points, one contract:
//
//  - expand_diff():   the legacy oracle. Unfolds `other` and replays every
//                     event through a Predictor over `reference`.
//                     O(trace length); kept for `trace_diff
//                     --legacy-expand` and as the differential-test
//                     oracle.
//  - grammar_diff():  the same replay computed WITHOUT unfolding —
//                     bit-identical reports (asserted catalog-wide by
//                     tests/analysis/diff_differential_test.cpp) in time
//                     proportional to grammar size. See docs/ANALYSIS.md
//                     for the fast-forward algebra (shared-subtree skips,
//                     exponent-run absorption, re-anchor cycle
//                     multiplication, block cycle detection).
//  - structural_diff(): purely structural divergence regions — (rule
//                     path, event-offset range, occurrence count) — from
//                     top-down alignment over hash-consed subtrees,
//                     descending only into mismatched rules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/grammar.hpp"

namespace pythia::analysis {

/// The exact report trace_diff has always printed.
struct DiffReport {
  std::uint64_t events = 0;
  std::uint64_t advanced = 0;
  std::uint64_t reanchored = 0;
  std::uint64_t unknown = 0;
  /// First divergences: indices where the cumulative miss count moved
  /// (capped at 16, legacy semantics preserved bit-for-bit).
  std::vector<std::uint64_t> divergence_points;

  double agreement_percent() const {
    return events > 0 ? 100.0 * static_cast<double>(advanced) /
                            static_cast<double>(events)
                      : 0.0;
  }

  friend bool operator==(const DiffReport& a, const DiffReport& b) {
    return a.events == b.events && a.advanced == b.advanced &&
           a.reanchored == b.reanchored && a.unknown == b.unknown &&
           a.divergence_points == b.divergence_points;
  }
};

/// Legacy expansion-based replay (the oracle). Both grammars finalized.
DiffReport expand_diff(const Grammar& reference, const Grammar& other);

/// Grammar-domain replay: bit-identical to expand_diff, O(grammar).
DiffReport grammar_diff(const Grammar& reference, const Grammar& other);

/// One structurally divergent region of `other` relative to `reference`.
struct DiffRegion {
  /// Dense rule indices in `other` from the root down to the rule whose
  /// body contains the divergent run.
  std::vector<std::uint32_t> rule_path;
  /// Event-offset range [begin, end) of the run inside ONE unfolding of
  /// the innermost rule on the path.
  std::uint64_t begin_event = 0;
  std::uint64_t end_event = 0;
  /// Times that unfolding executes trace-wide — how often the divergence
  /// repeats.
  std::uint64_t occurrences = 0;
};

/// Aligns the two grammars top-down over hash-consed subtrees and
/// reports maximal mismatched runs, descending only into mismatched
/// rules. O(grammar); never touches the event stream.
std::vector<DiffRegion> structural_diff(const Grammar& reference,
                                        const Grammar& other,
                                        std::size_t max_regions = 64);

}  // namespace pythia::analysis
