// RuleLens — one read-only view over the two grammar encodings.
//
// Every analysis pass (summaries, phase detection, structural diff, the
// Query facade) walks rule bodies, occurrence counts and per-node timing
// stats. Those live either in an interpreted `Grammar` (+ TimingModel)
// or inside an mmapped PYCGRM01 compiled blob whose flat tables already
// carry the same data. The lens exposes both through one cursor API so
// the passes are written once and cold analysis of a mapped trace never
// deserializes anything — it reads the tables in place.
//
// Rules are addressed by *dense index*: position in creation order for
// interpreted grammars, the compiled rule-table index for blobs. The
// root is dense index 0 in both encodings.
#pragma once

#include <cstdint>
#include <vector>

#include "core/compile.hpp"
#include "core/grammar.hpp"
#include "core/timing.hpp"
#include "support/hash.hpp"

namespace pythia::analysis {

/// Depth-1 timing-context key of a terminal occurrence node: the
/// trace-wide (sum, count) of arrival gaps into that node's events.
/// Matches ProgressPath::suffix_key(1), which TimingModel::add_sample
/// populates for every sample.
inline std::uint64_t node_timing_key(std::uint32_t stable_id) {
  return support::hash_combine(0x2545f4914f6cdd1dULL, stable_id);
}

/// One body entry as seen through a cursor.
struct BodyItem {
  bool is_rule = false;
  std::uint32_t rule = 0;       ///< dense rule index (when is_rule)
  TerminalId terminal = 0;      ///< event id (when !is_rule)
  std::uint64_t exp = 1;        ///< repetition exponent
  std::uint32_t stable_id = 0;  ///< occurrence node's stable id
};

class RuleLens {
 public:
  RuleLens() = default;

  /// Interpreted source. `timing` may be null (no rollups). The grammar
  /// must be finalized; both referents must outlive the lens.
  RuleLens(const Grammar& grammar, const TimingModel* timing);

  /// Compiled source; `view` must be valid() and outlive the lens.
  explicit RuleLens(const CompiledView& view);

  bool valid() const { return grammar_ != nullptr || view_ != nullptr; }
  bool compiled() const { return view_ != nullptr; }

  std::uint32_t rule_count() const;
  std::uint64_t sequence_length() const;
  std::uint64_t occurrences(std::uint32_t rule) const;

  /// Streams one rule body, allocation-free.
  class BodyCursor {
   public:
    bool next(BodyItem& out);

   private:
    friend class RuleLens;
    const RuleLens* lens_ = nullptr;
    const Node* node_ = nullptr;         // interpreted walk
    std::uint32_t id_ = kCompiledInvalid;  // compiled walk (stable id)
  };
  BodyCursor body(std::uint32_t rule) const;

  bool has_timing() const;
  /// Trace-wide (sum, count) of arrival gaps into this occurrence node's
  /// events; false when the node recorded no samples.
  bool node_timing(std::uint32_t stable_id, double& sum_ns,
                   std::uint64_t& count) const;
  double global_mean_ns() const;

  // Backend escape hatches for passes that need one encoding only.
  const Grammar* grammar() const { return grammar_; }
  const CompiledView* view() const { return view_; }
  /// Dense index of an interpreted rule id (interpreted lens only;
  /// kCompiledInvalid for unknown/dead ids).
  std::uint32_t dense_of_rule_id(std::uint32_t rule_id) const;
  /// Interpreted rule by dense index (interpreted lens only).
  const Rule* rule_at(std::uint32_t dense) const { return rules_[dense]; }

 private:
  const Grammar* grammar_ = nullptr;
  const TimingModel* timing_ = nullptr;
  const CompiledView* view_ = nullptr;
  std::vector<const Rule*> rules_;          ///< dense order, root first
  std::vector<std::uint32_t> dense_of_id_;  ///< interpreted id -> dense
};

}  // namespace pythia::analysis
