#include "analysis/phases.hpp"

namespace pythia::analysis {

void detect_phases(const RuleLens& lens, const SummarySet& summaries,
                   const PhaseOptions& options, PhaseTree& out) {
  out.clear();
  out.total_events = summaries.events;
  out.timed = summaries.timed;
  if (summaries.rules.empty()) return;

  const double min_events =
      options.min_coverage * static_cast<double>(summaries.events);

  PhaseNode root;
  root.is_rule = true;
  root.rule = 0;
  root.runs = 1;
  root.events = summaries.events;
  root.time_ns = summaries.root().total_time_ns;
  root.is_loop = false;
  out.nodes.push_back(root);

  // Depth-first expansion via an explicit stack of emitted node indices:
  // a popped node appends its significant child sites contiguously, then
  // pushes them in reverse so the final vector is in preorder.
  std::vector<std::uint32_t>& work = out.scratch;
  work.clear();
  work.push_back(0);
  BodyItem item;
  while (!work.empty()) {
    const std::uint32_t at = work.back();
    work.pop_back();
    // Copy the fields used below: out.nodes grows inside the loop.
    const std::uint32_t rule = out.nodes[at].rule;
    const std::uint32_t depth = out.nodes[at].depth;
    const std::uint64_t runs = out.nodes[at].runs;
    if (!out.nodes[at].is_rule || depth >= options.max_depth) continue;

    const std::size_t first_child = out.nodes.size();
    RuleLens::BodyCursor cursor = lens.body(rule);
    while (cursor.next(item)) {
      const std::uint64_t unit_len =
          item.is_rule ? summaries.rules[item.rule].exp_len : 1;
      const std::uint64_t site_runs = runs * item.exp;
      const std::uint64_t site_events = site_runs * unit_len;
      if (static_cast<double>(site_events) < min_events) continue;
      if (out.nodes.size() >= options.max_nodes) {
        out.truncated = true;
        break;
      }
      PhaseNode node;
      node.parent = static_cast<std::int32_t>(at);
      node.depth = depth + 1;
      node.is_rule = item.is_rule;
      node.is_loop = item.exp >= options.min_loop_reps;
      node.rule = item.rule;
      node.terminal = item.terminal;
      node.reps = item.exp;
      node.runs = site_runs;
      node.events = site_events;
      if (out.timed) {
        if (item.is_rule) {
          const RuleSummary& child = summaries.rules[item.rule];
          if (child.occurrences > 0) {
            node.time_ns = child.total_time_ns *
                           (static_cast<double>(site_runs) /
                            static_cast<double>(child.occurrences));
          }
        } else {
          double sum = 0.0;
          std::uint64_t count = 0;
          if (lens.node_timing(item.stable_id, sum, count)) {
            node.time_ns = sum;
          }
        }
      }
      out.nodes.push_back(node);
    }
    for (std::size_t i = out.nodes.size(); i > first_child; --i) {
      work.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }
}

}  // namespace pythia::analysis
