#include "analysis/query.hpp"

namespace pythia::analysis {

Query Query::over(const Grammar& grammar, const TimingModel* timing) {
  Query query;
  query.lens_ = RuleLens(grammar, timing);
  compute_summaries(query.lens_, query.summaries_);
  return query;
}

Query Query::over_compiled(const CompiledView& view) {
  Query query;
  query.lens_ = RuleLens(view);
  compute_summaries(query.lens_, query.summaries_);
  return query;
}

Query Query::over_thread(const ThreadTrace& thread) {
  if (thread.compiled.valid()) return over_compiled(thread.compiled);
  if (thread.grammar.finalized()) {
    return over(thread.grammar, thread.timing.empty() ? nullptr
                                                      : &thread.timing);
  }
  return Query();
}

bool Query::event_at(std::uint64_t index, TerminalId& out) const {
  if (!valid() || index >= summaries_.events) return false;
  std::uint32_t rule = 0;
  std::uint64_t target = index;
  BodyItem item;
  // Each level narrows the position to one body item, then (for rules)
  // to one repetition of it; depth is bounded by grammar nesting.
  for (;;) {
    RuleLens::BodyCursor cursor = lens_.body(rule);
    bool descended = false;
    while (cursor.next(item)) {
      const std::uint64_t unit =
          item.is_rule ? summaries_.rules[item.rule].exp_len : 1;
      const std::uint64_t span = unit * item.exp;
      if (target < span) {
        if (!item.is_rule) {
          out = item.terminal;
          return true;
        }
        target %= unit;
        rule = item.rule;
        descended = true;
        break;
      }
      target -= span;
    }
    if (!descended) return false;  // inconsistent tables
  }
}

}  // namespace pythia::analysis
