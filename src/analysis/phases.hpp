// Phase / loop detection from grammar structure (no expansion).
//
// A Sequitur grammar of a phased execution *is* its phase structure:
// high-occurrence rules with large coverage are loop bodies, repetition
// exponents are iteration counts, and nesting is the phase hierarchy.
// The detector walks rule bodies top-down, expanding only sites that
// cover a meaningful share of the trace, and annotates each phase with
// trace-wide event counts and timing rollups taken straight from the
// rule summaries — O(grammar), never O(trace).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/lens.hpp"
#include "analysis/summary.hpp"

namespace pythia::analysis {

struct PhaseOptions {
  /// Expand a site only when it covers at least this share of the trace.
  double min_coverage = 0.01;
  /// Nesting levels below the root to descend into.
  std::uint32_t max_depth = 4;
  /// Hard cap on emitted nodes (sets PhaseTree::truncated).
  std::size_t max_nodes = 256;
  /// A site with this exponent or more is flagged as a loop.
  std::uint64_t min_loop_reps = 2;
};

/// One site in the phase tree. nodes[0] is the whole trace (the root
/// rule). A node's children are contiguous and in body order, and every
/// parent precedes its children; renderers recurse via `parent` links.
struct PhaseNode {
  std::int32_t parent = -1;
  std::uint32_t depth = 0;       ///< 0 for the root node
  bool is_rule = false;
  bool is_loop = false;
  std::uint32_t rule = 0;        ///< dense rule index (when is_rule)
  TerminalId terminal = 0;       ///< event id (when !is_rule)
  std::uint64_t reps = 1;        ///< site repetition exponent
  std::uint64_t runs = 0;        ///< times the site executes trace-wide
  std::uint64_t events = 0;      ///< trace-wide events beneath the site
  double time_ns = 0.0;          ///< trace-wide rollup (0 when untimed)
};

struct PhaseTree {
  std::vector<PhaseNode> nodes;
  std::uint64_t total_events = 0;
  bool timed = false;
  bool truncated = false;  ///< max_nodes cut the tree short

  /// Internal work stack, kept here so repeated detect_phases() calls
  /// into the same tree reuse its capacity (allocation-free steady
  /// state, asserted by tests/analysis/query_mapped_test.cpp).
  std::vector<std::uint32_t> scratch;

  void clear() {
    nodes.clear();
    total_events = 0;
    timed = false;
    truncated = false;
  }
};

/// Builds the phase tree into `out`; reuses its capacity, so repeated
/// calls are allocation-free after warm-up.
void detect_phases(const RuleLens& lens, const SummarySet& summaries,
                   const PhaseOptions& options, PhaseTree& out);

}  // namespace pythia::analysis
