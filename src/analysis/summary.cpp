#include "analysis/summary.hpp"

#include <limits>

#include "support/assert.hpp"

namespace pythia::analysis {

namespace {

constexpr std::uint64_t kMax64 = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kSubtreeSeed = 0x5113a2ce97f1b2d7ULL;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kMax64 - b ? kMax64 : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kMax64 / b ? kMax64 : a * b;
}

}  // namespace

void compute_summaries(const RuleLens& lens, SummarySet& out) {
  const std::uint32_t count = lens.rule_count();
  out.rules.clear();
  out.rules.resize(count);
  out.events = lens.sequence_length();
  out.timed = lens.has_timing();

  // Explicit-stack DFS over the rule DAG: a child's summary is complete
  // before any parent reads it. Rule nesting can be adversarially deep
  // (tests/core/deep_grammar_test.cpp), so no call recursion.
  std::vector<std::uint8_t> state(count, 0);  // 0 new, 1 open, 2 done
  struct Frame {
    std::uint32_t rule;
    RuleLens::BodyCursor cursor;
  };
  std::vector<Frame> stack;
  stack.reserve(64);

  // Start from the root; pick up unreachable live rules afterwards so
  // every dense index ends up populated.
  for (std::uint32_t start = 0; start < count; ++start) {
    if (state[start] != 0) continue;
    state[start] = 1;
    stack.push_back({start, lens.body(start)});
    BodyItem item;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      bool descended = false;
      while (frame.cursor.next(item)) {
        if (item.is_rule && state[item.rule] == 0) {
          state[item.rule] = 1;
          stack.push_back({item.rule, lens.body(item.rule)});
          descended = true;
          break;
        }
        PYTHIA_ASSERT_MSG(!item.is_rule || state[item.rule] == 2,
                          "cycle in rule DAG");
      }
      if (descended) continue;

      // All children summarized: one more pass over the body fills in
      // this rule's summary.
      const std::uint32_t rule = stack.back().rule;
      RuleSummary& sum = out.rules[rule];
      sum.occurrences = lens.occurrences(rule);
      std::uint64_t hash = kSubtreeSeed;
      bool first = true;
      RuleLens::BodyCursor cursor = lens.body(rule);
      while (cursor.next(item)) {
        ++sum.body_nodes;
        std::uint64_t unit_len = 1;
        TerminalId unit_first = item.terminal;
        TerminalId unit_last = item.terminal;
        std::uint64_t unit_hash;
        if (item.is_rule) {
          const RuleSummary& child = out.rules[item.rule];
          unit_len = child.exp_len;
          unit_first = child.first_terminal;
          unit_last = child.last_terminal;
          unit_hash = child.subtree_hash;
          sum.terminal_sketch |= child.terminal_sketch;
          if (sum.depth < child.depth + 1) sum.depth = child.depth + 1;
          if (child.occurrences > 0) {
            sum.total_time_ns +=
                child.total_time_ns *
                (static_cast<double>(sat_mul(sum.occurrences, item.exp)) /
                 static_cast<double>(child.occurrences));
          }
        } else {
          unit_hash = support::hash_combine(0x7e7e7e7e7e7e7e7eULL,
                                            item.terminal);
          sum.terminal_sketch |= 1ull << (item.terminal % 64u);
          double gap_sum = 0.0;
          std::uint64_t gap_count = 0;
          if (lens.node_timing(item.stable_id, gap_sum, gap_count)) {
            sum.self_time_ns += gap_sum;
            sum.self_samples += gap_count;
          }
        }
        if (first) {
          sum.first_terminal = unit_first;
          first = false;
        }
        sum.last_terminal = unit_last;
        sum.exp_len = sat_add(sum.exp_len, sat_mul(unit_len, item.exp));
        hash = support::hash_combine(hash, unit_hash);
        hash = support::hash_combine(hash, item.exp);
      }
      sum.subtree_hash = hash;
      sum.total_time_ns += sum.self_time_ns;
      state[rule] = 2;
      stack.pop_back();
    }
  }
}

}  // namespace pythia::analysis
