// Wire protocol of the predict daemon: length-prefixed, CRC-checked
// frames over a byte-stream transport (Unix-domain socket / socketpair).
//
// Robustness is the organizing principle:
//
//  * Every frame carries a CRC32 over its header *and* a CRC32 over its
//    payload, so a bit-flipped length field can never be trusted: the
//    decoder validates the header checksum before it believes
//    payload_size, and caps the believed size at max_payload before
//    reserving a byte — no allocation amplification from hostile input.
//
//  * A byte stream cannot resynchronize after garbage (there is no
//    framing marker that corruption could not also forge), so any header
//    failure — bad magic, bad version, bad CRC, oversized — poisons the
//    decoder; the server answers with a best-effort kError frame and
//    drops the connection. Clients reconnect with capped backoff.
//
//  * Payload parsing goes through WireReader, which bounds-checks every
//    read; a truncated or lying payload yields a kBadRequest reply, never
//    an out-of-bounds access.
//
// Frame layout (little-endian, 28-byte header):
//   u32 magic        "PYW1"
//   u8  version      kWireVersion
//   u8  type         MsgType
//   u16 flags        reserved, must be 0
//   u32 payload_size bytes following the header
//   u64 request_id   client correlation id, echoed in the reply
//   u32 payload_crc  CRC32 of the payload bytes
//   u32 header_crc   CRC32 of the preceding 24 header bytes
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace pythia::serve {

inline constexpr std::uint32_t kWireMagic = 0x31575950u;  // "PYW1"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 28;

enum class MsgType : std::uint8_t {
  kHello = 1,     ///< tenant introduction (string name)
  kHelloAck,      ///< code + assigned tenant id
  kOpen,          ///< open a predict session (trace name, section)
  kOpenAck,       ///< code + session id + snapshot version
  kObserve,       ///< session id + observed event batch
  kObserveAck,    ///< code + health + confidence
  kPredict,       ///< session id + distance/count + deadline
  kPredictAck,    ///< code + health + predicted events (+ probability)
  kClose,         ///< close one session
  kCloseAck,      ///< code
  kPing,          ///< liveness probe
  kPong,          ///< liveness answer
  kStats,         ///< server counters request
  kStatsAck,      ///< server counters
  kError,         ///< request-level failure (code + message)
  kAnalyze,       ///< grammar-domain analytics (trace name + options)
  kAnalyzeAck,    ///< code + summary header + phase tree
};

/// Reply status carried inside ack payloads. kDegraded is an *answer*,
/// not an error: the oracle cannot currently be trusted for this
/// session/trace and the client must fall back to its vanilla policy —
/// exactly the in-process circuit-breaker contract, stretched over a
/// socket.
enum class ReplyCode : std::uint8_t {
  kOk = 0,
  kDegraded,         ///< oracle unhealthy: use the vanilla policy
  kShed,             ///< admission refused (rate/queue); retry later
  kDeadlineExpired,  ///< request outlived its deadline in the backlog
  kBadRequest,       ///< malformed payload or unknown session
  kNotFound,         ///< no such trace registered
  kUnavailable,      ///< trace registered but not loadable right now
};

const char* to_string(ReplyCode code);

/// Bounds-checked little-endian payload reader. Every accessor returns
/// false on underflow and leaves the output untouched; a payload that
/// lies about its own sizes can only produce a clean parse failure.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& out) { return fixed(&out, 1); }
  bool u16(std::uint16_t& out) { return fixed(&out, 2); }
  bool u32(std::uint32_t& out) { return fixed(&out, 4); }
  bool u64(std::uint64_t& out) { return fixed(&out, 8); }
  bool f64(double& out) { return fixed(&out, 8); }

  /// u32 length-prefixed string, capped (tenant and trace names are
  /// short; a 4 GiB "name" is an attack, not a request).
  bool str(std::string& out, std::size_t max_length = 256);

  /// Copies `count` u32 values (e.g. a TerminalId batch) out of the
  /// payload. memcpy-based: payload arrays carry no alignment guarantee,
  /// so borrowing a u32* view would be a misaligned-load trap.
  bool u32_array(std::uint32_t* out, std::size_t count);

  std::size_t remaining() const { return size_ - offset_; }
  bool exhausted() const { return offset_ == size_; }

 private:
  bool fixed(void* out, std::size_t bytes) {
    if (size_ - offset_ < bytes) return false;
    std::memcpy(out, data_ + offset_, bytes);
    offset_ += bytes;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// Little-endian payload builder (append-only, reusable).
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  WireWriter& u8(std::uint8_t v) { return fixed(&v, 1); }
  WireWriter& u16(std::uint16_t v) { return fixed(&v, 2); }
  WireWriter& u32(std::uint32_t v) { return fixed(&v, 4); }
  WireWriter& u64(std::uint64_t v) { return fixed(&v, 8); }
  WireWriter& f64(double v) { return fixed(&v, 8); }
  WireWriter& str(const std::string& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    return fixed(v.data(), v.size());
  }

 private:
  WireWriter& fixed(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + bytes);
    return *this;
  }

  std::vector<std::uint8_t>& out_;
};

/// One decoded frame. `payload` points into the decoder's buffer and is
/// valid until the next feed()/next() call.
struct Frame {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t size = 0;

  WireReader reader() const { return WireReader(payload, size); }
};

/// Appends a complete frame (header + payload) to `out`.
void encode_frame(MsgType type, std::uint64_t request_id,
                  const std::uint8_t* payload, std::size_t size,
                  std::vector<std::uint8_t>& out);
inline void encode_frame(MsgType type, std::uint64_t request_id,
                         const std::vector<std::uint8_t>& payload,
                         std::vector<std::uint8_t>& out) {
  encode_frame(type, request_id, payload.data(), payload.size(), out);
}

/// Incremental frame decoder over a byte stream.
///
/// feed() appends transport bytes; next() yields frames until the buffer
/// runs dry. The first malformed header or payload checksum poisons the
/// stream (failed() true, error() says why) — the owner must drop the
/// connection. Memory discipline: the internal buffer holds at most one
/// partial frame plus whatever the last feed() pushed, compacted on
/// consumption, and a frame's payload_size is only believed — and only
/// reserved — after the header CRC validates and the max_payload cap
/// passes.
class FrameDecoder {
 public:
  struct Options {
    std::size_t max_payload = 1u << 20;  ///< reject larger frames
  };

  struct Stats {
    std::uint64_t frames = 0;            ///< well-formed frames delivered
    std::uint64_t rejected_header = 0;   ///< magic/version/flags/CRC
    std::uint64_t rejected_oversize = 0; ///< payload_size > max_payload
    std::uint64_t rejected_payload = 0;  ///< payload CRC mismatch
  };

  FrameDecoder() : FrameDecoder(Options{}) {}
  explicit FrameDecoder(Options options) : options_(options) {}

  void feed(const std::uint8_t* data, std::size_t size);

  /// Next complete frame, or nullopt when more bytes are needed or the
  /// decoder failed. The returned views die at the next feed()/next().
  std::optional<Frame> next();

  bool failed() const { return !error_.ok(); }
  const Status& error() const { return error_; }
  /// Bytes buffered but not yet consumed — nonzero at connection close
  /// means a truncated trailing frame.
  std::size_t pending() const { return buffer_.size() - consumed_; }
  const Stats& stats() const { return stats_; }

 private:
  void fail(Status status) { error_ = std::move(status); }
  void compact();

  Options options_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  Status error_;
  Stats stats_;
};

// --- Payload schemas -------------------------------------------------
//
// Each message's payload has an encode_* builder and a parse_* reader;
// parse returns false on any underflow/overflow (the server replies
// kBadRequest). Trailing bytes are tolerated (forward compatibility).

struct HelloMsg {
  std::string tenant;
};
void encode_hello(const HelloMsg& msg, std::vector<std::uint8_t>& out);
bool parse_hello(WireReader reader, HelloMsg& out);

struct HelloAckMsg {
  ReplyCode code = ReplyCode::kOk;
  std::uint32_t tenant_id = 0;
};
void encode_hello_ack(const HelloAckMsg& msg, std::vector<std::uint8_t>& out);
bool parse_hello_ack(WireReader reader, HelloAckMsg& out);

struct OpenMsg {
  std::string trace;
  std::uint32_t section = 0;
};
void encode_open(const OpenMsg& msg, std::vector<std::uint8_t>& out);
bool parse_open(WireReader reader, OpenMsg& out);

struct OpenAckMsg {
  ReplyCode code = ReplyCode::kOk;
  std::uint64_t session_id = 0;
  std::uint64_t snapshot_version = 0;
};
void encode_open_ack(const OpenAckMsg& msg, std::vector<std::uint8_t>& out);
bool parse_open_ack(WireReader reader, OpenAckMsg& out);

struct ObserveMsg {
  std::uint64_t session_id = 0;
  /// Filled into the caller's reusable scratch vector (see parse).
  std::size_t count = 0;
};
void encode_observe(std::uint64_t session_id, const std::uint32_t* events,
                    std::size_t count, std::vector<std::uint8_t>& out);
/// `events_scratch` is clear()ed and filled with the batch (reused per
/// connection, so the steady state allocates nothing). `max_events`
/// rejects abusive batch sizes before any copy happens.
bool parse_observe(WireReader reader, ObserveMsg& out,
                   std::vector<std::uint32_t>& events_scratch,
                   std::size_t max_events);

struct ObserveAckMsg {
  ReplyCode code = ReplyCode::kOk;
  std::uint8_t health = 0;  ///< pythia::Health
  double confidence = 1.0;
};
void encode_observe_ack(const ObserveAckMsg& msg,
                        std::vector<std::uint8_t>& out);
bool parse_observe_ack(WireReader reader, ObserveAckMsg& out);

struct PredictMsg {
  std::uint64_t session_id = 0;
  std::uint32_t distance = 1;  ///< used when count <= 1
  std::uint32_t count = 1;     ///< >1: batched predict_n sequence
  /// Absolute CLOCK_MONOTONIC deadline in ns (0 = none). Same-host
  /// transports share the monotonic clock, so the server can honour it
  /// exactly; a request that outlives its deadline in a backlog gets an
  /// explicit kDeadlineExpired instead of a late, useless answer.
  std::uint64_t deadline_ns = 0;
};
void encode_predict(const PredictMsg& msg, std::vector<std::uint8_t>& out);
bool parse_predict(WireReader reader, PredictMsg& out);

struct PredictAckMsg {
  ReplyCode code = ReplyCode::kOk;
  std::uint8_t health = 0;     ///< pythia::Health
  double probability = 0.0;    ///< single-event queries
  double confidence = 1.0;
  std::size_t count = 0;       ///< events land in the caller's scratch
};
void encode_predict_ack(ReplyCode code, std::uint8_t health,
                        double probability, double confidence,
                        const std::uint32_t* events, std::size_t count,
                        std::vector<std::uint8_t>& out);
bool parse_predict_ack(WireReader reader, PredictAckMsg& out,
                       std::vector<std::uint32_t>& events_scratch,
                       std::size_t max_events);

struct CloseMsg {
  std::uint64_t session_id = 0;
};
void encode_close(const CloseMsg& msg, std::vector<std::uint8_t>& out);
bool parse_close(WireReader reader, CloseMsg& out);

struct CloseAckMsg {
  ReplyCode code = ReplyCode::kOk;
};
void encode_close_ack(const CloseAckMsg& msg, std::vector<std::uint8_t>& out);
bool parse_close_ack(WireReader reader, CloseAckMsg& out);

struct ErrorMsg {
  ReplyCode code = ReplyCode::kBadRequest;
  std::string message;
};
void encode_error(const ErrorMsg& msg, std::vector<std::uint8_t>& out);
bool parse_error(WireReader reader, ErrorMsg& out);

struct AnalyzeMsg {
  std::string trace;
  std::uint32_t section = 0;
  std::uint32_t max_depth = 4;
  std::uint32_t max_nodes = 256;
  /// Expansion threshold in permille of the trace (10 = 1%). Integer on
  /// the wire: a float here would invite cross-platform drift in what is
  /// otherwise a deterministic reply.
  std::uint32_t min_coverage_permille = 10;
};
void encode_analyze(const AnalyzeMsg& msg, std::vector<std::uint8_t>& out);
bool parse_analyze(WireReader reader, AnalyzeMsg& out);

/// Wire mirror of analysis::PhaseNode (49 bytes each on the wire).
struct AnalyzePhase {
  std::int32_t parent = -1;
  std::uint32_t depth = 0;
  std::uint8_t flags = 0;  ///< bit 0: is_rule, bit 1: is_loop
  std::uint32_t rule = 0;
  std::uint32_t terminal = 0;
  std::uint64_t reps = 1;
  std::uint64_t runs = 0;
  std::uint64_t events = 0;
  double time_ns = 0.0;

  bool is_rule() const { return (flags & 1u) != 0; }
  bool is_loop() const { return (flags & 2u) != 0; }
};

struct AnalyzeAckMsg {
  ReplyCode code = ReplyCode::kOk;
  std::uint8_t compiled = 0;   ///< served from the compiled blob
  std::uint8_t timed = 0;      ///< rollups carry real timing
  std::uint8_t truncated = 0;  ///< node cap (or response cap) cut the tree
  std::uint64_t events = 0;
  std::uint32_t rules = 0;
  std::size_t count = 0;       ///< phases land in the caller's scratch
};
void encode_analyze_ack(const AnalyzeAckMsg& msg, const AnalyzePhase* phases,
                        std::size_t count, std::vector<std::uint8_t>& out);
/// `phases_scratch` is clear()ed and filled; `max_nodes` bounds what the
/// caller is willing to materialize from a (possibly hostile) reply.
bool parse_analyze_ack(WireReader reader, AnalyzeAckMsg& out,
                       std::vector<AnalyzePhase>& phases_scratch,
                       std::size_t max_nodes);

/// Exact payload size of an analyze ack with `count` phase nodes — the
/// server checks this against the frame cap *before* encoding and sheds
/// instead of emitting a reply the client's decoder must reject.
inline std::size_t analyze_ack_bytes(std::size_t count) {
  return 20 + count * 49;
}

struct StatsAckMsg {
  std::uint64_t frames = 0;
  std::uint64_t replies = 0;
  std::uint64_t sessions_open = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t expired = 0;
  std::uint64_t publishes = 0;
};
void encode_stats_ack(const StatsAckMsg& msg, std::vector<std::uint8_t>& out);
bool parse_stats_ack(WireReader reader, StatsAckMsg& out);

}  // namespace pythia::serve
