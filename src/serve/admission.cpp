#include "serve/admission.hpp"

#include <algorithm>

namespace pythia::serve {

std::uint32_t AdmissionController::register_tenant(const std::string& name) {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].name == name) return static_cast<std::uint32_t>(i);
  }
  Tenant tenant;
  tenant.name = name;
  tenant.limits = defaults_;
  tenant.bucket = TokenBucket(defaults_.rate_per_sec, defaults_.burst);
  tenant.stats.name = name;
  tenants_.push_back(std::move(tenant));
  return static_cast<std::uint32_t>(tenants_.size() - 1);
}

void AdmissionController::set_limits(std::uint32_t tenant,
                                     const TenantLimits& limits) {
  if (tenant >= tenants_.size()) return;
  tenants_[tenant].limits = limits;
  tenants_[tenant].bucket = TokenBucket(limits.rate_per_sec, limits.burst);
}

Admit AdmissionController::admit(std::uint32_t tenant, std::uint64_t now_ns,
                                 bool trace_degraded) {
  if (tenant >= tenants_.size()) return Admit::kShedQueue;
  Tenant& t = tenants_[tenant];
  if (trace_degraded) {
    // The cheapest possible service: the answer ("fall back to vanilla")
    // is known before any oracle work, and it does not spend the
    // tenant's rate budget — a degraded trace must not eat the budget
    // the tenant needs for its healthy traces.
    ++t.stats.shed_degraded;
    return Admit::kDegraded;
  }
  if (t.inflight >= t.limits.max_inflight) {
    ++t.stats.shed_queue;
    return Admit::kShedQueue;
  }
  if (!t.bucket.try_take(now_ns)) {
    ++t.stats.shed_rate;
    return Admit::kShedRate;
  }
  ++t.stats.admitted;
  return Admit::kAdmit;
}

void AdmissionController::begin(std::uint32_t tenant) {
  if (tenant >= tenants_.size()) return;
  ++tenants_[tenant].inflight;
}

void AdmissionController::end(std::uint32_t tenant) {
  if (tenant >= tenants_.size()) return;
  Tenant& t = tenants_[tenant];
  if (t.inflight > 0) --t.inflight;
}

std::vector<AdmissionController::TenantStats> AdmissionController::stats()
    const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    TenantStats s = t.stats;
    s.inflight = t.inflight;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace pythia::serve
