// Per-tenant admission control for the predict daemon.
//
// Overload safety before speed: one flooding or hostile tenant must not
// starve the rest, and an oracle that cannot currently be trusted must
// shed its traffic *early* — with an explicit kDegraded answer the
// client maps to its vanilla policy — rather than burn cycles producing
// predictions nobody should act on (the per-process circuit-breaker
// contract, lifted to the serving layer).
//
// Three gates, evaluated in cost order (cheapest rejection first):
//   1. degraded trace  — the target trace's sessions are mostly
//                        degraded: answer kDegraded without spending a
//                        token (the answer is already known);
//   2. bounded inflight— per-tenant queue depth cap: a tenant that
//                        pipelines thousands of requests into one read
//                        burst gets kShed beyond its bound;
//   3. token bucket    — sustained-rate limiting with a burst allowance,
//                        refilled from the caller's clock (virtual in
//                        tests, CLOCK_MONOTONIC in the daemon; no hidden
//                        clock reads, fully deterministic under test).
//
// Deadlines are enforced by the caller (ServerCore) per request frame —
// admission only decides *whether* to serve, the deadline decides
// whether serving is still useful.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace pythia::serve {

struct TenantLimits {
  double rate_per_sec = 10000.0;  ///< sustained request budget
  double burst = 256.0;           ///< bucket capacity (instantaneous)
  std::size_t max_inflight = 256; ///< bounded per-tenant queue depth
};

/// Classic token bucket against an external nanosecond clock.
class TokenBucket {
 public:
  TokenBucket() : TokenBucket(10000.0, 256.0) {}
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  bool try_take(std::uint64_t now_ns, double cost = 1.0) {
    refill(now_ns);
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  double tokens(std::uint64_t now_ns) {
    refill(now_ns);
    return tokens_;
  }

 private:
  void refill(std::uint64_t now_ns) {
    if (last_ns_ == 0) {
      last_ns_ = now_ns;
      return;
    }
    if (now_ns <= last_ns_) return;  // clock went sideways: no refill
    const double elapsed_s =
        static_cast<double>(now_ns - last_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_ns_ = now_ns;
  }

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
};

enum class Admit : std::uint8_t {
  kAdmit = 0,
  kShedRate,   ///< token bucket empty -> ReplyCode::kShed
  kShedQueue,  ///< inflight bound hit  -> ReplyCode::kShed
  kDegraded,   ///< trace health shed   -> ReplyCode::kDegraded
};

class AdmissionController {
 public:
  AdmissionController() : AdmissionController(TenantLimits{}) {}
  explicit AdmissionController(TenantLimits defaults)
      : defaults_(defaults) {}

  /// Registers a tenant (idempotent by name) and returns its id.
  std::uint32_t register_tenant(const std::string& name);
  void set_limits(std::uint32_t tenant, const TenantLimits& limits);

  /// One admission decision. `trace_degraded` is the serving layer's
  /// aggregated health verdict for the request's target trace.
  Admit admit(std::uint32_t tenant, std::uint64_t now_ns,
              bool trace_degraded);

  /// Inflight accounting: begin() after a successful admit, end() when
  /// the reply is handed to the transport.
  void begin(std::uint32_t tenant);
  void end(std::uint32_t tenant);

  struct TenantStats {
    std::string name;
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate = 0;
    std::uint64_t shed_queue = 0;
    std::uint64_t shed_degraded = 0;
    std::size_t inflight = 0;
  };
  std::vector<TenantStats> stats() const;
  std::size_t tenants() const { return tenants_.size(); }

 private:
  struct Tenant {
    std::string name;
    TenantLimits limits;
    TokenBucket bucket;
    std::size_t inflight = 0;
    TenantStats stats;
  };

  TenantLimits defaults_;
  std::vector<Tenant> tenants_;
};

}  // namespace pythia::serve
