#include "serve/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "support/crash_point.hpp"
#include "support/crc32.hpp"
#include "support/io.hpp"

namespace pythia::serve {

namespace {

constexpr const char* kManifestMagic = "PYSRV01";

/// CRC over the line's semantic content, hex-encoded — a torn or
/// bit-flipped manifest line fails its own checksum and is skipped
/// instead of poisoning the whole recovery.
std::uint32_t line_crc(const std::string& name, const std::string& path) {
  std::uint32_t crc = support::crc32_init();
  crc = support::crc32_update(crc, name.data(), name.size());
  crc = support::crc32_update(crc, "\t", 1);
  crc = support::crc32_update(crc, path.data(), path.size());
  return support::crc32_final(crc);
}

}  // namespace

TraceRegistry::TraceRegistry(RegistryOptions options)
    : options_(std::move(options)) {}

TraceRegistry::Entry* TraceRegistry::find_locked(const std::string& name) {
  for (auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

const TraceRegistry::Entry* TraceRegistry::find_locked(
    const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Status TraceRegistry::persist_locked() {
  if (options_.manifest_path.empty()) return Status();
  std::string text = kManifestMagic;
  text += '\n';
  for (const auto& entry : entries_) {
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                  line_crc(entry->name, entry->path));
    text += crc_hex;
    text += '\t';
    text += entry->name;
    text += '\t';
    text += entry->path;
    text += '\n';
  }
  support::crash_point("serve.manifest.write");
  const Status status =
      support::write_file_atomic(options_.manifest_path, text.data(),
                                 text.size(), options_.durable_manifest);
  support::crash_point("serve.manifest.renamed");
  if (status.ok()) ++stats_.manifest_writes;
  return status;
}

Status TraceRegistry::add(const std::string& name, const std::string& path) {
  if (name.empty() || name.size() > 256 ||
      name.find('\t') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    return Status::invalid_state("registry: invalid trace name");
  }
  if (path.find('\t') != std::string::npos ||
      path.find('\n') != std::string::npos) {
    return Status::invalid_state("registry: invalid trace path");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = find_locked(name)) {
    // Re-registering an existing name re-points it (next acquire loads
    // the new file; resident snapshot of the old file is dropped).
    existing->path = path;
    existing->server.publish(nullptr);
    existing->version = 0;
    return persist_locked();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->path = path;
  entries_.push_back(std::move(entry));
  Status status = persist_locked();
  if (!status.ok()) entries_.pop_back();  // membership matches disk
  return status;
}

Status TraceRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const std::unique_ptr<Entry>& e) { return e->name == name; });
  if (it == entries_.end()) {
    return Status::invalid_state("registry: unknown trace '" + name + "'");
  }
  std::unique_ptr<Entry> removed = std::move(*it);
  entries_.erase(it);
  Status status = persist_locked();
  if (!status.ok()) entries_.push_back(std::move(removed));
  return status;
}

Status TraceRegistry::publish(
    const std::string& name,
    std::shared_ptr<const engine::TraceSnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_locked(name);
  if (entry == nullptr) {
    return Status::invalid_state("registry: unknown trace '" + name + "'");
  }
  entry->version = snapshot ? snapshot->version() : 0;
  entry->server.publish(std::move(snapshot));
  entry->last_used = ++lru_tick_;
  ++stats_.publishes;
  evict_over_cap_locked();
  return Status();
}

Result<std::shared_ptr<const engine::TraceSnapshot>> TraceRegistry::acquire(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_locked(name);
  if (entry == nullptr) {
    return Status::invalid_state("registry: unknown trace '" + name + "'");
  }
  entry->last_used = ++lru_tick_;
  std::shared_ptr<const engine::TraceSnapshot> snapshot =
      entry->server.snapshot();
  if (snapshot != nullptr) return snapshot;

  // Cold: fault the trace in from its file. Loading under the registry
  // mutex serializes concurrent cold loads of the same name (good) at
  // the cost of delaying unrelated acquires (acceptable: cold loads are
  // rare and the hot path — resident acquire — is a map walk).
  ++stats_.cold_loads;
  Result<std::shared_ptr<const engine::TraceSnapshot>> loaded =
      Status::invalid_state("mapped load disabled");
  if (options_.prefer_mapped) {
    // Zero-copy first: traces with compiled sections serve straight from
    // the page cache with no deserialization. Anything unservable that
    // way (legacy file, damaged compiled sections) falls back below.
    loaded = engine::TraceSnapshot::load_mapped(entry->path,
                                                entry->version + 1);
    if (loaded.ok()) {
      ++stats_.mapped_loads;
    } else {
      ++stats_.mapped_fallbacks;
    }
  }
  if (!loaded.ok()) {
    loaded = engine::TraceSnapshot::load(entry->path, entry->version + 1);
  }
  if (!loaded.ok()) {
    ++stats_.load_failures;
    return loaded.status();
  }
  snapshot = loaded.take();
  entry->version = snapshot->version();
  entry->server.publish(snapshot);
  evict_over_cap_locked();
  return snapshot;
}

void TraceRegistry::evict_over_cap_locked() {
  // Evict beyond the residency cap, least-recently-used first, unpinned
  // entries before pinned ones. Eviction drops only the registry's
  // reference: a pinned snapshot stays fully valid for its sessions and
  // its memory is released when the last pin drops.
  const std::size_t cap = std::max<std::size_t>(1, options_.max_resident);
  while (true) {
    std::size_t resident_count = 0;
    Entry* victim = nullptr;
    bool victim_pinned = false;
    for (auto& entry : entries_) {
      const auto snapshot = entry->server.snapshot();
      if (snapshot == nullptr) continue;
      ++resident_count;
      // use_count: registry's publisher holds one reference plus the
      // local `snapshot` — anything beyond 2 is a client pin.
      const bool pinned = snapshot.use_count() > 2;
      if (victim == nullptr ||
          (victim_pinned && !pinned) ||
          (victim_pinned == pinned && entry->last_used < victim->last_used)) {
        victim = entry.get();
        victim_pinned = pinned;
      }
    }
    if (resident_count <= cap || victim == nullptr) return;
    victim->server.publish(nullptr);
    ++stats_.evictions;
  }
}

Status TraceRegistry::recover() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  if (options_.manifest_path.empty() ||
      !support::path_exists(options_.manifest_path)) {
    return Status();  // first boot: empty registry
  }
  std::vector<unsigned char> bytes;
  Status status = support::read_file(options_.manifest_path, bytes);
  if (!status.ok()) return status;
  const std::string text(bytes.begin(), bytes.end());

  std::size_t offset = 0;
  auto next_line = [&](std::string& line) {
    if (offset >= text.size()) return false;
    const std::size_t end = text.find('\n', offset);
    if (end == std::string::npos) {
      // No terminating newline: a torn final line from a crash mid-write
      // of a non-atomic editor; treat as absent.
      offset = text.size();
      line.clear();
      return false;
    }
    line = text.substr(offset, end - offset);
    offset = end + 1;
    return true;
  };

  std::string line;
  if (!next_line(line) || line != kManifestMagic) {
    return Status::corrupt("registry manifest: bad magic");
  }
  while (next_line(line)) {
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 =
        tab1 == std::string::npos ? std::string::npos
                                  : line.find('\t', tab1 + 1);
    if (tab1 != 8 || tab2 == std::string::npos) {
      ++stats_.manifest_salvaged_lines;
      continue;
    }
    const std::string crc_hex = line.substr(0, 8);
    const std::string name = line.substr(tab1 + 1, tab2 - tab1 - 1);
    const std::string path = line.substr(tab2 + 1);
    char* end = nullptr;
    const unsigned long crc = std::strtoul(crc_hex.c_str(), &end, 16);
    if (end != crc_hex.c_str() + 8 ||
        static_cast<std::uint32_t>(crc) != line_crc(name, path) ||
        name.empty() || find_locked(name) != nullptr) {
      ++stats_.manifest_salvaged_lines;
      continue;
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->path = path;
    entries_.push_back(std::move(entry));
  }
  return Status();
}

bool TraceRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(name) != nullptr;
}

std::vector<std::string> TraceRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry->name);
  return out;
}

std::size_t TraceRegistry::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& entry : entries_) {
    if (entry->server.snapshot() != nullptr) ++count;
  }
  return count;
}

std::size_t TraceRegistry::pins(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = find_locked(name);
  if (entry == nullptr) return 0;
  const auto snapshot = entry->server.snapshot();
  if (snapshot == nullptr) return 0;
  const long uses = snapshot.use_count();
  return uses > 2 ? static_cast<std::size_t>(uses - 2) : 0;
}

std::uint64_t TraceRegistry::version_of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = find_locked(name);
  return entry == nullptr ? 0 : entry->version;
}

TraceRegistry::Stats TraceRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace pythia::serve
