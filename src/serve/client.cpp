#include "serve/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "support/io.hpp"

namespace pythia::serve {

namespace {

std::uint64_t monotonic_ns() {
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void sleep_ms(std::uint64_t ms) {
  struct timespec ts {};
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000ull);
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

std::string degraded_key(const std::string& trace, std::uint32_t section) {
  return trace + '#' + std::to_string(section);
}

}  // namespace

PredictClient::PredictClient(ClientOptions options)
    : options_(std::move(options)),
      rng_(options_.jitter_seed ^ 0xc1ec7c1ec7ull) {}

PredictClient::~PredictClient() { disconnect(); }

void PredictClient::disconnect() {
  if (fd_ >= 0) {
    support::close_noeintr(fd_);
    fd_ = -1;
  }
  // Poisoned or half-fed decoder state dies with the connection.
  decoder_ = FrameDecoder();
  hello_sent_ = false;
}

Status PredictClient::connect_fd(int fd) {
  if (fd < 0) return Status::invalid_state("client: bad fd");
  disconnect();
  fd_ = fd;
  unix_path_.clear();
  ++generation_;
  return Status();
}

Status PredictClient::connect_unix(const std::string& path) {
  disconnect();
  unix_path_ = path;
  return reconnect();
}

Status PredictClient::reconnect() {
  disconnect();
  if (unix_path_.empty()) {
    return Status::invalid_state("client: no reconnect target");
  }
  struct sockaddr_un addr {};
  if (unix_path_.size() >= sizeof(addr.sun_path)) {
    return Status::invalid_state("client: socket path too long");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return support::errno_status("socket", unix_path_);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, unix_path_.c_str(), unix_path_.size() + 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = support::errno_status("connect", unix_path_);
    support::close_noeintr(fd);
    return status;
  }
  fd_ = fd;
  ++generation_;
  ++stats_.reconnects;
  return Status();
}

std::uint64_t PredictClient::backoff_delay_ms(std::uint32_t attempt) {
  // Capped exponential, then jittered *down*: the cap stays an upper
  // bound and no two seeds produce the same schedule — a daemon restart
  // is greeted by a smear of reconnects, not a stampede.
  std::uint64_t base = options_.backoff_initial_ms;
  for (std::uint32_t i = 1; i < attempt && base < options_.backoff_max_ms;
       ++i) {
    base *= 2;
  }
  base = std::min(base, options_.backoff_max_ms);
  const double jitter = std::clamp(options_.backoff_jitter, 0.0, 1.0);
  const auto span =
      static_cast<std::uint64_t>(jitter * static_cast<double>(base));
  if (span == 0) return base;
  return std::max<std::uint64_t>(1, base - rng_.below(span + 1));
}

std::uint64_t PredictClient::arm_deadline() const {
  if (options_.total_deadline_ms == 0) return 0;
  return monotonic_ns() + options_.total_deadline_ms * 1000000ull;
}

Status PredictClient::give_up(const Status& last) {
  ++stats_.deadline_giveups;
  std::string message = "client: total deadline spent";
  if (!last.message().empty()) message += "; last error: " + last.message();
  return Status::deadline_exceeded(std::move(message));
}

bool PredictClient::degraded_cached(const std::string& key,
                                    std::uint64_t now_ns) {
  for (std::size_t i = degraded_.size(); i-- > 0;) {
    if (degraded_[i].until_ns <= now_ns) {
      degraded_[i] = degraded_.back();
      degraded_.pop_back();
      continue;
    }
    if (degraded_[i].key == key) return true;
  }
  return false;
}

void PredictClient::note_degraded(const std::string& key,
                                  std::uint64_t now_ns) {
  if (options_.degraded_ttl_ms == 0) return;
  const std::uint64_t until = now_ns + options_.degraded_ttl_ms * 1000000ull;
  for (DegradedEntry& entry : degraded_) {
    if (entry.key == key) {
      entry.until_ns = until;
      return;
    }
  }
  degraded_.push_back(DegradedEntry{key, until});
}

Status PredictClient::round_trip(MsgType type,
                                 const std::vector<std::uint8_t>& payload,
                                 MsgType expect, Frame& reply,
                                 std::uint64_t op_deadline_ns) {
  if (fd_ < 0) return Status::io_error("client: not connected");
  const std::uint64_t request_id = next_request_++;
  send_buffer_.clear();
  encode_frame(type, request_id, payload, send_buffer_);

  std::size_t sent = 0;
  while (sent < send_buffer_.size()) {
    const ssize_t n = ::send(fd_, send_buffer_.data() + sent,
                             send_buffer_.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = support::errno_status("send", "predict daemon");
      disconnect();
      return status;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::uint64_t deadline =
      monotonic_ns() + options_.request_timeout_ms * 1000000ull;
  // The per-attempt timeout never reaches past the operation's overall
  // budget: the last attempt before the cap gets only what remains.
  if (op_deadline_ns != 0) deadline = std::min(deadline, op_deadline_ns);
  std::uint8_t chunk[4096];
  while (true) {
    while (auto frame = decoder_.next()) {
      if (frame->request_id != request_id) continue;  // stale: timed out
      if (frame->type != expect && frame->type != MsgType::kError) {
        disconnect();
        return Status::corrupt("client: unexpected reply type");
      }
      reply_payload_.assign(frame->payload, frame->payload + frame->size);
      reply.type = frame->type;
      reply.request_id = frame->request_id;
      reply.payload = reply_payload_.data();
      reply.size = reply_payload_.size();
      return Status();
    }
    if (decoder_.failed()) {
      const Status status = decoder_.error();
      disconnect();
      return status;
    }

    const std::uint64_t now = monotonic_ns();
    if (now >= deadline) {
      ++stats_.timeouts;
      if (op_deadline_ns != 0 && now >= op_deadline_ns) {
        return Status::deadline_exceeded(
            "client: request outlived the total deadline");
      }
      return Status::io_error("client: request timed out");
    }
    struct pollfd pfd {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int timeout_ms =
        static_cast<int>((deadline - now + 999999ull) / 1000000ull);
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      const Status status = support::errno_status("poll", "predict daemon");
      disconnect();
      return status;
    }
    if (ready == 0) continue;  // loop re-checks the deadline
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      decoder_.feed(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    disconnect();
    return Status::io_error("client: connection closed by daemon");
  }
}

Status PredictClient::request(MsgType type,
                              const std::vector<std::uint8_t>& payload,
                              MsgType expect, Frame& reply) {
  ++stats_.requests;
  const std::uint64_t op_deadline = arm_deadline();
  Status last = Status::io_error("client: not connected");
  for (std::uint32_t attempt = 0; attempt <= options_.max_retries;
       ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      std::uint64_t delay = backoff_delay_ms(attempt);
      if (op_deadline != 0) {
        const std::uint64_t now = monotonic_ns();
        if (now >= op_deadline) return give_up(last);
        // Clamp rounds *up*: the last sleep must cross the deadline, or
        // fast-failing attempts could drain every retry just shy of it
        // and the caller would see the transport error, not the cap.
        delay = std::min<std::uint64_t>(
            delay, (op_deadline - now + 999999ull) / 1000000ull);
      }
      sleep_ms(delay);
    }
    if (fd_ < 0) {
      last = reconnect();
      if (!last.ok()) continue;
    }
    if (type != MsgType::kHello) {
      last = hello(op_deadline);
      if (!last.ok()) continue;
    }
    last = round_trip(type, payload, expect, reply, op_deadline);
    if (last.ok()) return last;
  }
  if (last.code() == StatusCode::kDeadlineExceeded) ++stats_.deadline_giveups;
  return last;
}

Status PredictClient::hello() { return hello(arm_deadline()); }

Status PredictClient::hello(std::uint64_t op_deadline_ns) {
  if (fd_ < 0) return Status::io_error("client: not connected");
  if (hello_sent_) return Status();
  std::vector<std::uint8_t> payload;
  encode_hello(HelloMsg{options_.tenant}, payload);
  Frame reply;
  Status status = round_trip(MsgType::kHello, payload, MsgType::kHelloAck,
                             reply, op_deadline_ns);
  if (!status.ok()) return status;
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    (void)parse_error(reply.reader(), err);
    return Status::invalid_state("client: hello rejected: " + err.message);
  }
  HelloAckMsg ack;
  if (!parse_hello_ack(reply.reader(), ack) || ack.code != ReplyCode::kOk) {
    return Status::corrupt("client: malformed hello ack");
  }
  hello_sent_ = true;
  return Status();
}

Status PredictClient::ensure_open(ClientSession& session,
                                  std::uint64_t op_deadline_ns) {
  if (session.open && session.generation == generation_) return Status();
  std::vector<std::uint8_t> payload;
  encode_open(OpenMsg{session.trace, session.section}, payload);
  Frame reply;
  Status status = round_trip(MsgType::kOpen, payload, MsgType::kOpenAck,
                             reply, op_deadline_ns);
  if (!status.ok()) return status;
  if (reply.type == MsgType::kError) {
    ErrorMsg err;
    (void)parse_error(reply.reader(), err);
    session.open = false;
    session.last_code = err.code;
    return Status();
  }
  OpenAckMsg ack;
  if (!parse_open_ack(reply.reader(), ack)) {
    return Status::corrupt("client: malformed open ack");
  }
  session.last_code = ack.code;
  if (ack.code != ReplyCode::kOk) {
    session.open = false;
    return Status();
  }
  if (session.server_id != 0) ++stats_.reopens;
  session.server_id = ack.session_id;
  session.snapshot_version = ack.snapshot_version;
  session.generation = generation_;
  session.open = true;
  return Status();
}

Result<ClientSession> PredictClient::open(const std::string& trace,
                                          std::uint32_t section) {
  ClientSession session;
  session.trace = trace;
  session.section = section;
  ++stats_.requests;
  const std::uint64_t op_deadline = arm_deadline();
  Status last = Status::io_error("client: not connected");
  for (std::uint32_t attempt = 0; attempt <= options_.max_retries;
       ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      std::uint64_t delay = backoff_delay_ms(attempt);
      if (op_deadline != 0) {
        const std::uint64_t now = monotonic_ns();
        if (now >= op_deadline) return give_up(last);
        delay = std::min<std::uint64_t>(
            delay, (op_deadline - now + 999999ull) / 1000000ull);
      }
      sleep_ms(delay);
    }
    if (fd_ < 0) {
      last = reconnect();
      if (!last.ok()) continue;
    }
    last = hello(op_deadline);
    if (!last.ok()) continue;
    last = ensure_open(session, op_deadline);
    if (last.ok()) return session;  // last_code explains open == false
  }
  if (last.code() == StatusCode::kDeadlineExceeded) ++stats_.deadline_giveups;
  return last;
}

Result<PredictClient::ObserveResult> PredictClient::observe(
    ClientSession& session, const TerminalId* events, std::size_t count) {
  ++stats_.requests;
  const std::uint64_t op_deadline = arm_deadline();
  Status last = Status::io_error("client: not connected");
  for (std::uint32_t attempt = 0; attempt <= options_.max_retries;
       ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      std::uint64_t delay = backoff_delay_ms(attempt);
      if (op_deadline != 0) {
        const std::uint64_t now = monotonic_ns();
        if (now >= op_deadline) return give_up(last);
        delay = std::min<std::uint64_t>(
            delay, (op_deadline - now + 999999ull) / 1000000ull);
      }
      sleep_ms(delay);
    }
    if (fd_ < 0) {
      last = reconnect();
      if (!last.ok()) continue;
    }
    last = hello(op_deadline);
    if (!last.ok()) continue;
    last = ensure_open(session, op_deadline);
    if (!last.ok()) continue;
    if (!session.open) {
      // The server answered: the trace is degraded / gone. Not a
      // transport failure — surface the code, do not burn retries.
      return ObserveResult{session.last_code, Health::kDegraded, 0.0};
    }
    payload_buffer_.clear();
    encode_observe(session.server_id, events, count, payload_buffer_);
    Frame reply;
    last = round_trip(MsgType::kObserve, payload_buffer_,
                      MsgType::kObserveAck, reply, op_deadline);
    if (!last.ok()) continue;
    if (reply.type == MsgType::kError) {
      ErrorMsg err;
      (void)parse_error(reply.reader(), err);
      return ObserveResult{err.code, Health::kDegraded, 0.0};
    }
    ObserveAckMsg ack;
    if (!parse_observe_ack(reply.reader(), ack)) {
      return Status::corrupt("client: malformed observe ack");
    }
    return ObserveResult{ack.code, static_cast<Health>(ack.health),
                         ack.confidence};
  }
  if (last.code() == StatusCode::kDeadlineExceeded) ++stats_.deadline_giveups;
  return last;
}

Result<PredictResult> PredictClient::predict(ClientSession& session,
                                             std::uint32_t distance,
                                             std::uint32_t count,
                                             std::uint64_t deadline_budget_ns) {
  const std::string key = degraded_key(session.trace, session.section);
  if (options_.degraded_ttl_ms != 0 && degraded_cached(key, monotonic_ns())) {
    // The breaker already spoke for this (trace, section); answer
    // locally until the TTL lapses instead of re-asking per decision
    // point.
    ++stats_.degraded_cache_hits;
    PredictResult result;
    result.code = ReplyCode::kDegraded;
    result.health = Health::kDegraded;
    return result;
  }

  ++stats_.requests;
  const std::uint64_t op_deadline = arm_deadline();
  Status last = Status::io_error("client: not connected");
  for (std::uint32_t attempt = 0; attempt <= options_.max_retries;
       ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      std::uint64_t delay = backoff_delay_ms(attempt);
      if (op_deadline != 0) {
        const std::uint64_t now = monotonic_ns();
        if (now >= op_deadline) return give_up(last);
        delay = std::min<std::uint64_t>(
            delay, (op_deadline - now + 999999ull) / 1000000ull);
      }
      sleep_ms(delay);
    }
    if (fd_ < 0) {
      last = reconnect();
      if (!last.ok()) continue;
    }
    last = hello(op_deadline);
    if (!last.ok()) continue;
    last = ensure_open(session, op_deadline);
    if (!last.ok()) continue;

    PredictResult result;
    if (!session.open) {
      result.code = session.last_code;
      result.health = Health::kDegraded;
      if (result.code == ReplyCode::kDegraded) {
        note_degraded(key, monotonic_ns());
      }
      return result;
    }

    PredictMsg msg;
    msg.session_id = session.server_id;
    msg.distance = distance;
    msg.count = count;
    msg.deadline_ns =
        deadline_budget_ns == 0 ? 0 : monotonic_ns() + deadline_budget_ns;
    payload_buffer_.clear();
    encode_predict(msg, payload_buffer_);
    Frame reply;
    last = round_trip(MsgType::kPredict, payload_buffer_,
                      MsgType::kPredictAck, reply, op_deadline);
    if (!last.ok()) continue;
    if (reply.type == MsgType::kError) {
      ErrorMsg err;
      (void)parse_error(reply.reader(), err);
      result.code = err.code;
      result.health = Health::kDegraded;
      return result;
    }
    PredictAckMsg ack;
    if (!parse_predict_ack(reply.reader(), ack, event_scratch_,
                           options_.max_reply_events)) {
      return Status::corrupt("client: malformed predict ack");
    }
    result.code = ack.code;
    result.health = static_cast<Health>(ack.health);
    result.probability = ack.probability;
    result.confidence = ack.confidence;
    result.events.assign(event_scratch_.begin(), event_scratch_.end());
    if (result.code == ReplyCode::kDegraded) {
      note_degraded(key, monotonic_ns());
    }
    return result;
  }
  if (last.code() == StatusCode::kDeadlineExceeded) ++stats_.deadline_giveups;
  return last;
}

Status PredictClient::close(ClientSession& session) {
  if (!session.open) return Status();
  session.open = false;
  if (fd_ < 0 || session.generation != generation_) {
    return Status();  // the server-side session died with its connection
  }
  payload_buffer_.clear();
  encode_close(CloseMsg{session.server_id}, payload_buffer_);
  Frame reply;
  return round_trip(MsgType::kClose, payload_buffer_, MsgType::kCloseAck,
                    reply, arm_deadline());
}

Result<PredictClient::AnalyzeResult> PredictClient::analyze(
    const std::string& trace, std::uint32_t section, std::uint32_t max_depth,
    std::uint32_t max_nodes, std::uint32_t min_coverage_permille) {
  AnalyzeMsg msg;
  msg.trace = trace;
  msg.section = section;
  msg.max_depth = max_depth;
  msg.max_nodes = max_nodes;
  msg.min_coverage_permille = min_coverage_permille;
  payload_buffer_.clear();
  encode_analyze(msg, payload_buffer_);
  Frame reply;
  Status status = request(MsgType::kAnalyze, payload_buffer_,
                          MsgType::kAnalyzeAck, reply);
  if (!status.ok()) return status;
  if (reply.type == MsgType::kError) {
    return Status::invalid_state("client: analyze rejected");
  }
  AnalyzeResult result;
  AnalyzeAckMsg ack;
  if (!parse_analyze_ack(reply.reader(), ack, result.phases,
                         options_.max_reply_events)) {
    return Status::corrupt("client: malformed analyze ack");
  }
  result.code = ack.code;
  result.compiled = ack.compiled != 0;
  result.timed = ack.timed != 0;
  result.truncated = ack.truncated != 0;
  result.events = ack.events;
  result.rules = ack.rules;
  return result;
}

Result<StatsAckMsg> PredictClient::server_stats() {
  Frame reply;
  Status status = request(MsgType::kStats, {}, MsgType::kStatsAck, reply);
  if (!status.ok()) return status;
  if (reply.type == MsgType::kError) {
    return Status::invalid_state("client: stats rejected");
  }
  StatsAckMsg ack;
  if (!parse_stats_ack(reply.reader(), ack)) {
    return Status::corrupt("client: malformed stats ack");
  }
  return ack;
}

Status PredictClient::ping() {
  Frame reply;
  return request(MsgType::kPing, {}, MsgType::kPong, reply);
}

}  // namespace pythia::serve
