#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "analysis/query.hpp"

namespace pythia::serve {

ServerCore::ServerCore(ServerOptions options)
    : options_(std::move(options)),
      registry_(options_.registry),
      admission_(options_.tenant_defaults) {}

std::uint64_t ServerCore::connection_open() {
  const std::uint64_t id = next_connection_++;
  Connection conn;
  conn.decoder = FrameDecoder(options_.wire);
  connections_.emplace(id, std::move(conn));
  stats_.connections = connections_.size();
  return id;
}

void ServerCore::connection_close(std::uint64_t connection) {
  auto it = connections_.find(connection);
  if (it == connections_.end()) return;
  for (auto& [sid, session] : it->second.sessions) {
    (void)sid;
    drop_session_gauge(session);
    ++stats_.sessions_closed;
  }
  stats_.sessions_open -= it->second.sessions.size();
  connections_.erase(it);
  stats_.connections = connections_.size();
}

bool ServerCore::trace_degraded(const std::string& trace) const {
  const auto it = gauges_.find(trace);
  if (it == gauges_.end()) return false;
  const TraceGauge& gauge = it->second;
  if (gauge.sessions < options_.degraded_min_sessions) return false;
  return static_cast<double>(gauge.degraded) >=
         options_.degraded_fraction * static_cast<double>(gauge.sessions);
}

std::pair<std::size_t, std::size_t> ServerCore::trace_health(
    const std::string& trace) const {
  const auto it = gauges_.find(trace);
  if (it == gauges_.end()) return {0, 0};
  return {it->second.degraded, it->second.sessions};
}

void ServerCore::note_health(ServeSession& session, Health now_health) {
  if (now_health == session.last_health) return;
  TraceGauge& gauge = gauges_[session.trace];
  if (session.last_health == Health::kDegraded && gauge.degraded > 0) {
    --gauge.degraded;
  }
  if (now_health == Health::kDegraded) ++gauge.degraded;
  session.last_health = now_health;
}

void ServerCore::drop_session_gauge(const ServeSession& session) {
  auto it = gauges_.find(session.trace);
  if (it == gauges_.end()) return;
  TraceGauge& gauge = it->second;
  if (gauge.sessions > 0) --gauge.sessions;
  if (session.last_health == Health::kDegraded && gauge.degraded > 0) {
    --gauge.degraded;
  }
  if (gauge.sessions == 0) gauges_.erase(it);
}

void ServerCore::reply_error(const Frame& frame, ReplyCode code,
                             std::string message, Connection& conn,
                             std::vector<std::uint8_t>& out) {
  ++stats_.bad_requests;
  ++stats_.replies;
  conn.payload_scratch.clear();
  encode_error(ErrorMsg{code, std::move(message)}, conn.payload_scratch);
  encode_frame(MsgType::kError, frame.request_id, conn.payload_scratch, out);
}

bool ServerCore::on_bytes(std::uint64_t connection, const std::uint8_t* data,
                          std::size_t size, std::vector<std::uint8_t>& out,
                          std::uint64_t now_ns) {
  auto it = connections_.find(connection);
  if (it == connections_.end()) return false;
  Connection& conn = it->second;

  conn.decoder.feed(data, size);
  while (auto frame = conn.decoder.next()) {
    ++stats_.frames;
    serve_frame(conn, *frame, out, now_ns);
  }
  if (conn.decoder.failed()) {
    // Corrupt framing: tell the client why (best effort — the stream is
    // already suspect), then force the drop. request_id 0: the frame it
    // belonged to is unrecoverable by definition.
    ++stats_.bad_frames;
    ++stats_.connections_dropped;
    ++stats_.replies;
    conn.payload_scratch.clear();
    encode_error(ErrorMsg{ReplyCode::kBadRequest,
                          conn.decoder.error().to_string()},
                 conn.payload_scratch);
    encode_frame(MsgType::kError, 0, conn.payload_scratch, out);
    return false;
  }
  return true;
}

void ServerCore::serve_frame(Connection& conn, const Frame& frame,
                             std::vector<std::uint8_t>& out,
                             std::uint64_t now_ns) {
  conn.payload_scratch.clear();

  switch (frame.type) {
    case MsgType::kPing: {
      ++stats_.replies;
      encode_frame(MsgType::kPong, frame.request_id, nullptr, 0, out);
      return;
    }

    case MsgType::kHello: {
      HelloMsg msg;
      if (!parse_hello(frame.reader(), msg) || msg.tenant.empty()) {
        reply_error(frame, ReplyCode::kBadRequest, "hello: bad tenant name",
                    conn, out);
        return;
      }
      conn.tenant = admission_.register_tenant(msg.tenant);
      conn.hello_done = true;
      ++stats_.replies;
      encode_hello_ack(HelloAckMsg{ReplyCode::kOk, conn.tenant},
                       conn.payload_scratch);
      encode_frame(MsgType::kHelloAck, frame.request_id,
                   conn.payload_scratch, out);
      return;
    }

    case MsgType::kStats: {
      StatsAckMsg msg;
      msg.frames = stats_.frames;
      msg.replies = stats_.replies + 1;
      msg.sessions_open = stats_.sessions_open;
      msg.shed = stats_.shed;
      msg.degraded = stats_.degraded;
      msg.expired = stats_.expired;
      msg.publishes = registry_.stats().publishes;
      ++stats_.replies;
      encode_stats_ack(msg, conn.payload_scratch);
      encode_frame(MsgType::kStatsAck, frame.request_id,
                   conn.payload_scratch, out);
      return;
    }

    default:
      break;
  }

  // Everything below requires an introduced tenant.
  if (!conn.hello_done) {
    reply_error(frame, ReplyCode::kBadRequest,
                "protocol: hello required first", conn, out);
    return;
  }

  switch (frame.type) {
    case MsgType::kOpen: {
      OpenMsg msg;
      if (!parse_open(frame.reader(), msg)) {
        reply_error(frame, ReplyCode::kBadRequest, "open: malformed", conn,
                    out);
        return;
      }
      OpenAckMsg ack;
      if (conn.sessions.size() >= options_.max_sessions_per_tenant) {
        ack.code = ReplyCode::kShed;
        ++stats_.shed;
      } else if (!registry_.contains(msg.trace)) {
        ack.code = ReplyCode::kNotFound;
      } else if (trace_degraded(msg.trace)) {
        // No point opening a session whose predictions would be
        // suppressed — tell the tenant to run vanilla now.
        ack.code = ReplyCode::kDegraded;
        ++stats_.degraded;
      } else {
        const Admit verdict =
            admission_.admit(conn.tenant, now_ns, /*trace_degraded=*/false);
        if (verdict != Admit::kAdmit) {
          ack.code = ReplyCode::kShed;
          ++stats_.shed;
        } else {
          Result<std::shared_ptr<const engine::TraceSnapshot>> acquired =
              registry_.acquire(msg.trace);
          if (!acquired.ok()) {
            ack.code = ReplyCode::kUnavailable;
          } else {
            const auto& snapshot = acquired.value();
            if (msg.section >= snapshot->sections() ||
                !snapshot->section_ok(msg.section)) {
              ack.code = ReplyCode::kUnavailable;
            } else {
              const std::uint64_t sid = next_session_++;
              Predictor::Options popts =
                  Predictor::Options::runtime_defaults();
              popts.breaker.backoff_jitter = options_.breaker_jitter;
              popts.breaker.jitter_seed = sid;
              ServeSession session;
              session.trace = msg.trace;
              session.session = std::make_unique<engine::PredictSession>(
                  engine::PredictServer(snapshot)
                      .open(msg.section, popts)
                      .take());
              conn.sessions.emplace(sid, std::move(session));
              ++gauges_[msg.trace].sessions;
              ++stats_.sessions_opened;
              ++stats_.sessions_open;
              ack.session_id = sid;
              ack.snapshot_version = snapshot->version();
            }
          }
        }
      }
      ++stats_.replies;
      encode_open_ack(ack, conn.payload_scratch);
      encode_frame(MsgType::kOpenAck, frame.request_id, conn.payload_scratch,
                   out);
      return;
    }

    case MsgType::kObserve: {
      ObserveMsg msg;
      if (!parse_observe(frame.reader(), msg, conn.event_scratch,
                         options_.max_events_per_observe)) {
        reply_error(frame, ReplyCode::kBadRequest, "observe: malformed",
                    conn, out);
        return;
      }
      auto sit = conn.sessions.find(msg.session_id);
      ObserveAckMsg ack;
      if (sit == conn.sessions.end()) {
        ack.code = ReplyCode::kBadRequest;
      } else {
        const Admit verdict = admission_.admit(
            conn.tenant, now_ns, trace_degraded(sit->second.trace));
        if (verdict == Admit::kDegraded) {
          ack.code = ReplyCode::kDegraded;
          ++stats_.degraded;
        } else if (verdict != Admit::kAdmit) {
          ack.code = ReplyCode::kShed;
          ++stats_.shed;
        } else {
          admission_.begin(conn.tenant);
          engine::PredictSession& session = *sit->second.session;
          for (std::size_t i = 0; i < msg.count; ++i) {
            session.observe(conn.event_scratch[i]);
          }
          note_health(sit->second, session.health());
          ack.health = static_cast<std::uint8_t>(session.health());
          ack.confidence = session.confidence();
          if (session.health() == Health::kDegraded) {
            ack.code = ReplyCode::kDegraded;
            ++stats_.degraded;
          }
          admission_.end(conn.tenant);
        }
      }
      ++stats_.replies;
      encode_observe_ack(ack, conn.payload_scratch);
      encode_frame(MsgType::kObserveAck, frame.request_id,
                   conn.payload_scratch, out);
      return;
    }

    case MsgType::kPredict: {
      PredictMsg msg;
      if (!parse_predict(frame.reader(), msg)) {
        reply_error(frame, ReplyCode::kBadRequest, "predict: malformed",
                    conn, out);
        return;
      }
      if (msg.count > options_.max_predict_count) {
        reply_error(frame, ReplyCode::kBadRequest,
                    "predict: count exceeds cap", conn, out);
        return;
      }
      auto sit = conn.sessions.find(msg.session_id);
      ReplyCode code = ReplyCode::kOk;
      std::uint8_t health = 0;
      double probability = 0.0;
      double confidence = 1.0;
      std::size_t filled = 0;
      if (sit == conn.sessions.end()) {
        code = ReplyCode::kBadRequest;
      } else if (msg.deadline_ns != 0 && now_ns > msg.deadline_ns) {
        // The request outlived its usefulness in the backlog: an
        // explicit expiry beats a late answer the runtime already
        // replaced with its vanilla decision.
        code = ReplyCode::kDeadlineExpired;
        ++stats_.expired;
      } else {
        const Admit verdict = admission_.admit(
            conn.tenant, now_ns, trace_degraded(sit->second.trace));
        if (verdict == Admit::kDegraded) {
          code = ReplyCode::kDegraded;
          ++stats_.degraded;
        } else if (verdict != Admit::kAdmit) {
          code = ReplyCode::kShed;
          ++stats_.shed;
        } else {
          admission_.begin(conn.tenant);
          engine::PredictSession& session = *sit->second.session;
          health = static_cast<std::uint8_t>(session.health());
          confidence = session.confidence();
          if (session.health() == Health::kDegraded) {
            code = ReplyCode::kDegraded;
            ++stats_.degraded;
          } else if (msg.count <= 1) {
            const auto prediction =
                session.predict(std::max<std::uint32_t>(1, msg.distance));
            if (prediction.has_value()) {
              conn.predict_scratch.assign(1, prediction->event);
              probability = prediction->probability;
              filled = 1;
            }
          } else {
            conn.predict_scratch.resize(msg.count);
            filled = session.predict_n(conn.predict_scratch.data(),
                                       msg.count);
          }
          note_health(sit->second, session.health());
          admission_.end(conn.tenant);
        }
      }
      ++stats_.replies;
      encode_predict_ack(code, health, probability, confidence,
                         filled > 0 ? conn.predict_scratch.data() : nullptr,
                         filled, conn.payload_scratch);
      encode_frame(MsgType::kPredictAck, frame.request_id,
                   conn.payload_scratch, out);
      return;
    }

    case MsgType::kAnalyze: {
      AnalyzeMsg msg;
      if (!parse_analyze(frame.reader(), msg)) {
        reply_error(frame, ReplyCode::kBadRequest, "analyze: malformed",
                    conn, out);
        return;
      }
      AnalyzeAckMsg ack;
      conn.phase_scratch.clear();
      if (!registry_.contains(msg.trace)) {
        ack.code = ReplyCode::kNotFound;
      } else {
        // Analytics pay the same per-tenant token bucket as predictions:
        // an analyze flood cannot starve other tenants' predict traffic.
        const Admit verdict = admission_.admit(conn.tenant, now_ns,
                                               trace_degraded(msg.trace));
        if (verdict == Admit::kDegraded) {
          ack.code = ReplyCode::kDegraded;
          ++stats_.degraded;
        } else if (verdict != Admit::kAdmit) {
          ack.code = ReplyCode::kShed;
          ++stats_.shed;
        } else {
          admission_.begin(conn.tenant);
          Result<std::shared_ptr<const engine::TraceSnapshot>> acquired =
              registry_.acquire(msg.trace);
          if (!acquired.ok()) {
            ack.code = ReplyCode::kUnavailable;
          } else {
            const auto& snapshot = acquired.value();
            if (msg.section >= snapshot->sections() ||
                !snapshot->section_ok(msg.section)) {
              ack.code = ReplyCode::kUnavailable;
            } else {
              const analysis::Query query =
                  analysis::Query::over_thread(snapshot->section(msg.section));
              if (!query.valid()) {
                ack.code = ReplyCode::kUnavailable;
              } else {
                analysis::PhaseOptions popts;
                popts.max_depth = msg.max_depth;
                popts.max_nodes =
                    std::min<std::size_t>(msg.max_nodes,
                                          options_.max_analyze_nodes);
                popts.min_coverage =
                    static_cast<double>(msg.min_coverage_permille) / 1000.0;
                analysis::PhaseTree tree;
                query.phases(popts, tree);
                ack.compiled = query.compiled() ? 1 : 0;
                ack.timed = tree.timed ? 1 : 0;
                ack.truncated = tree.truncated ? 1 : 0;
                ack.events = tree.total_events;
                ack.rules = query.rules();
                if (analyze_ack_bytes(tree.nodes.size()) >
                    options_.wire.max_payload) {
                  // Oversized reply: the decoder on the other end would
                  // reject the frame anyway, so shed explicitly — the
                  // client retries with a smaller node budget.
                  ack.code = ReplyCode::kShed;
                  ack.truncated = 1;
                  ++stats_.shed;
                } else {
                  conn.phase_scratch.reserve(tree.nodes.size());
                  for (const analysis::PhaseNode& node : tree.nodes) {
                    AnalyzePhase phase;
                    phase.parent = node.parent;
                    phase.depth = node.depth;
                    phase.flags = (node.is_rule ? 1u : 0u) |
                                  (node.is_loop ? 2u : 0u);
                    phase.rule = node.rule;
                    phase.terminal = node.terminal;
                    phase.reps = node.reps;
                    phase.runs = node.runs;
                    phase.events = node.events;
                    phase.time_ns = node.time_ns;
                    conn.phase_scratch.push_back(phase);
                  }
                }
              }
            }
          }
          admission_.end(conn.tenant);
        }
      }
      ++stats_.replies;
      encode_analyze_ack(ack, conn.phase_scratch.data(),
                         conn.phase_scratch.size(), conn.payload_scratch);
      encode_frame(MsgType::kAnalyzeAck, frame.request_id,
                   conn.payload_scratch, out);
      return;
    }

    case MsgType::kClose: {
      CloseMsg msg;
      if (!parse_close(frame.reader(), msg)) {
        reply_error(frame, ReplyCode::kBadRequest, "close: malformed", conn,
                    out);
        return;
      }
      CloseAckMsg ack;
      auto sit = conn.sessions.find(msg.session_id);
      if (sit == conn.sessions.end()) {
        ack.code = ReplyCode::kBadRequest;
      } else {
        drop_session_gauge(sit->second);
        conn.sessions.erase(sit);
        ++stats_.sessions_closed;
        --stats_.sessions_open;
      }
      ++stats_.replies;
      encode_close_ack(ack, conn.payload_scratch);
      encode_frame(MsgType::kCloseAck, frame.request_id,
                   conn.payload_scratch, out);
      return;
    }

    default:
      reply_error(frame, ReplyCode::kBadRequest,
                  "protocol: unexpected message type", conn, out);
      return;
  }
}

}  // namespace pythia::serve
