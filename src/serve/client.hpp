// PredictClient: the tenant-side library of the predict daemon.
//
// A runtime system embeds this next to its decision points, so the
// client must fail *fast* and fail *useful*: every call returns within
// its timeout budget, every failure maps to "use the vanilla policy",
// and a degraded oracle stops being queried at all for a while — the
// in-process circuit breaker's discipline (PR 1), mirrored client-side:
//
//   * request timeout per attempt (poll(2) bounded reads);
//   * capped exponential backoff with seeded jitter between reconnect
//     attempts — a daemon restart must not be greeted by every tenant
//     retrying in lockstep;
//   * a degradation cache: after a kDegraded answer for a (trace,
//     section), predict() short-circuits locally to kDegraded until the
//     TTL passes, so thousands of decision points don't pay a round
//     trip each to re-learn what the breaker already said;
//   * transparent session re-open after reconnect: sessions are
//     connection-scoped on the server, so the client remembers what each
//     handle was opened on and re-opens lazily (fresh tracking state —
//     the oracle re-anchors, which is exactly what it would do after a
//     gap in observations anyway).
//
// Thread model: one PredictClient per client thread (like a Predictor).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "core/symbol.hpp"
#include "serve/wire.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace pythia::serve {

struct ClientOptions {
  std::string tenant = "default";
  std::uint64_t request_timeout_ms = 1000;
  /// Reconnect/retry schedule: capped exponential backoff, jittered.
  std::uint32_t max_retries = 3;
  std::uint64_t backoff_initial_ms = 10;
  std::uint64_t backoff_max_ms = 500;
  double backoff_jitter = 0.5;  ///< fraction of each delay randomized
  std::uint64_t jitter_seed = 0x5eed;
  /// Overall per-operation cap across all retries, reconnects and
  /// backoff sleeps (ms); 0 disables it. Without the cap, the worst
  /// case per call is ~max_retries * (request_timeout_ms + backoff) —
  /// far longer than any decision point can stall. When the budget is
  /// spent the call returns StatusCode::kDeadlineExceeded instead of
  /// burning the remaining retry schedule, and the caller falls back
  /// to the vanilla policy *now*.
  std::uint64_t total_deadline_ms = 0;
  /// Degradation cache TTL; 0 disables the cache.
  std::uint64_t degraded_ttl_ms = 250;
  std::size_t max_reply_events = 4096;
};

/// A client-side session handle. Survives reconnects: `generation`
/// tells the client when the server-side session died with its
/// connection and must be re-opened.
struct ClientSession {
  std::string trace;
  std::uint32_t section = 0;
  std::uint64_t server_id = 0;
  std::uint64_t generation = 0;
  std::uint64_t snapshot_version = 0;
  bool open = false;
  /// Server's answer to the last (re)open: kDegraded / kNotFound / …
  /// explain why `open` stayed false without a transport error.
  ReplyCode last_code = ReplyCode::kOk;
};

struct PredictResult {
  ReplyCode code = ReplyCode::kUnavailable;
  Health health = Health::kHealthy;
  double probability = 0.0;
  double confidence = 0.0;
  std::vector<TerminalId> events;
};

class PredictClient {
 public:
  explicit PredictClient(ClientOptions options = {});
  ~PredictClient();

  PredictClient(const PredictClient&) = delete;
  PredictClient& operator=(const PredictClient&) = delete;

  /// Connects over an already-open stream fd (socketpair tests). The
  /// client owns the fd. No reconnect source: when this connection
  /// dies, calls fail with kIoError until connect_* is called again.
  Status connect_fd(int fd);

  /// Connects to a daemon's Unix socket; remembers the path, so broken
  /// connections heal themselves via the retry schedule.
  Status connect_unix(const std::string& path);

  bool connected() const { return fd_ >= 0; }
  /// Sends hello (implicit in the first request otherwise).
  Status hello();

  Result<ClientSession> open(const std::string& trace,
                             std::uint32_t section);

  /// Feeds observed events. Degraded/shed answers come back as the
  /// Status-ok codes inside `health_out`-style results; transport
  /// failures return non-ok after the retry budget.
  struct ObserveResult {
    ReplyCode code = ReplyCode::kUnavailable;
    Health health = Health::kHealthy;
    double confidence = 0.0;
  };
  Result<ObserveResult> observe(ClientSession& session,
                                const TerminalId* events, std::size_t count);

  /// Predicts distance/count with a deadline budget (0 = none). A cached
  /// degradation short-circuits without touching the wire.
  Result<PredictResult> predict(ClientSession& session,
                                std::uint32_t distance, std::uint32_t count,
                                std::uint64_t deadline_budget_ns = 0);

  Status close(ClientSession& session);

  /// Grammar-domain analytics for a registered trace (no session — the
  /// reply is a pure function of the published snapshot). A kShed answer
  /// with truncated set means the phase tree would not fit a frame;
  /// retry with a smaller max_nodes/max_depth.
  struct AnalyzeResult {
    ReplyCode code = ReplyCode::kUnavailable;
    bool compiled = false;
    bool timed = false;
    bool truncated = false;
    std::uint64_t events = 0;
    std::uint32_t rules = 0;
    std::vector<AnalyzePhase> phases;
  };
  Result<AnalyzeResult> analyze(const std::string& trace,
                                std::uint32_t section,
                                std::uint32_t max_depth = 4,
                                std::uint32_t max_nodes = 256,
                                std::uint32_t min_coverage_permille = 10);

  Result<StatsAckMsg> server_stats();
  Status ping();

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t deadline_giveups = 0;  ///< ops that hit total_deadline_ms
    std::uint64_t degraded_cache_hits = 0;
    std::uint64_t reopens = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct DegradedEntry {
    std::string key;
    std::uint64_t until_ns = 0;
  };

  void disconnect();
  Status reconnect();
  /// One request round trip (no retries): send `type` with `payload`,
  /// await the matching reply frame into reply_payload_. A non-zero
  /// `op_deadline_ns` (absolute, CLOCK_MONOTONIC) further clamps the
  /// per-attempt timeout to the operation's remaining overall budget.
  Status round_trip(MsgType type, const std::vector<std::uint8_t>& payload,
                    MsgType expect, Frame& reply,
                    std::uint64_t op_deadline_ns = 0);
  /// round_trip + reconnect/retry schedule + implicit hello/re-open.
  Status request(MsgType type, const std::vector<std::uint8_t>& payload,
                 MsgType expect, Frame& reply);
  Status hello(std::uint64_t op_deadline_ns);
  Status ensure_open(ClientSession& session, std::uint64_t op_deadline_ns);
  std::uint64_t backoff_delay_ms(std::uint32_t attempt);
  /// Absolute deadline for an operation starting now (0 = uncapped).
  std::uint64_t arm_deadline() const;
  /// The typed give-up: counts the giveup and wraps the last transport
  /// error so the caller can tell "budget spent" from "daemon broken".
  Status give_up(const Status& last);
  bool degraded_cached(const std::string& key, std::uint64_t now_ns);
  void note_degraded(const std::string& key, std::uint64_t now_ns);

  ClientOptions options_;
  int fd_ = -1;
  std::string unix_path_;       ///< reconnect target; empty for fds
  bool hello_sent_ = false;
  std::uint64_t generation_ = 0;  ///< bumped per (re)connect
  std::uint64_t next_request_ = 1;
  support::Rng rng_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> send_buffer_;
  std::vector<std::uint8_t> payload_buffer_;
  std::vector<std::uint8_t> reply_payload_;
  std::vector<std::uint32_t> event_scratch_;
  std::vector<DegradedEntry> degraded_;
  Stats stats_;
};

}  // namespace pythia::serve
