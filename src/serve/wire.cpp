#include "serve/wire.hpp"

#include "support/crc32.hpp"

namespace pythia::serve {

const char* to_string(ReplyCode code) {
  switch (code) {
    case ReplyCode::kOk:
      return "ok";
    case ReplyCode::kDegraded:
      return "degraded";
    case ReplyCode::kShed:
      return "shed";
    case ReplyCode::kDeadlineExpired:
      return "deadline-expired";
    case ReplyCode::kBadRequest:
      return "bad-request";
    case ReplyCode::kNotFound:
      return "not-found";
    case ReplyCode::kUnavailable:
      return "unavailable";
  }
  return "?";
}

bool WireReader::str(std::string& out, std::size_t max_length) {
  std::uint32_t length = 0;
  if (!u32(length)) return false;
  if (length > max_length || length > remaining()) return false;
  out.assign(reinterpret_cast<const char*>(data_ + offset_), length);
  offset_ += length;
  return true;
}

bool WireReader::u32_array(std::uint32_t* out, std::size_t count) {
  if (count == 0) return true;  // memcpy(null, _, 0) is still UB
  if (count > remaining() / 4) return false;
  std::memcpy(out, data_ + offset_, count * 4);
  offset_ += count * 4;
  return true;
}

void encode_frame(MsgType type, std::uint64_t request_id,
                  const std::uint8_t* payload, std::size_t size,
                  std::vector<std::uint8_t>& out) {
  std::uint8_t header[kFrameHeaderSize];
  auto put32 = [&](std::size_t at, std::uint32_t v) {
    std::memcpy(header + at, &v, 4);
  };
  put32(0, kWireMagic);
  header[4] = kWireVersion;
  header[5] = static_cast<std::uint8_t>(type);
  header[6] = 0;  // flags
  header[7] = 0;
  put32(8, static_cast<std::uint32_t>(size));
  std::memcpy(header + 12, &request_id, 8);
  put32(20, support::crc32(payload, size));
  put32(24, support::crc32(header, 24));
  out.insert(out.end(), header, header + kFrameHeaderSize);
  out.insert(out.end(), payload, payload + size);
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (failed()) return;
  compact();
  buffer_.insert(buffer_.end(), data, data + size);
}

void FrameDecoder::compact() {
  // Drop consumed bytes so the buffer never grows past one in-progress
  // frame plus the transport's read chunk.
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

std::optional<Frame> FrameDecoder::next() {
  if (failed()) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return std::nullopt;

  const std::uint8_t* header = buffer_.data() + consumed_;
  auto get32 = [&](std::size_t at) {
    std::uint32_t v;
    std::memcpy(&v, header + at, 4);
    return v;
  };

  // The header checksum comes first: nothing else in the header — least
  // of all payload_size — is believed until it passes.
  if (get32(24) != support::crc32(header, 24)) {
    ++stats_.rejected_header;
    fail(Status::corrupt("wire: frame header checksum mismatch"));
    return std::nullopt;
  }
  if (get32(0) != kWireMagic) {
    ++stats_.rejected_header;
    fail(Status::corrupt("wire: bad frame magic"));
    return std::nullopt;
  }
  if (header[4] != kWireVersion) {
    ++stats_.rejected_header;
    fail(Status::unsupported("wire: unknown protocol version " +
                             std::to_string(header[4])));
    return std::nullopt;
  }
  std::uint16_t flags;
  std::memcpy(&flags, header + 6, 2);
  if (flags != 0) {
    ++stats_.rejected_header;
    fail(Status::unsupported("wire: reserved flags set"));
    return std::nullopt;
  }
  const std::uint32_t payload_size = get32(8);
  if (payload_size > options_.max_payload) {
    ++stats_.rejected_oversize;
    fail(Status::corrupt("wire: frame payload " +
                         std::to_string(payload_size) + " exceeds cap " +
                         std::to_string(options_.max_payload)));
    return std::nullopt;
  }
  if (available < kFrameHeaderSize + payload_size) {
    // Incomplete but believable (header validated): wait for more bytes.
    return std::nullopt;
  }

  const std::uint8_t* payload = header + kFrameHeaderSize;
  if (get32(20) != support::crc32(payload, payload_size)) {
    ++stats_.rejected_payload;
    fail(Status::corrupt("wire: frame payload checksum mismatch"));
    return std::nullopt;
  }

  Frame frame;
  frame.type = static_cast<MsgType>(header[5]);
  std::memcpy(&frame.request_id, header + 12, 8);
  frame.payload = payload;
  frame.size = payload_size;
  consumed_ += kFrameHeaderSize + payload_size;
  ++stats_.frames;
  return frame;
}

// --- Payload schemas -------------------------------------------------

void encode_hello(const HelloMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out).str(msg.tenant);
}

bool parse_hello(WireReader reader, HelloMsg& out) {
  return reader.str(out.tenant);
}

void encode_hello_ack(const HelloAckMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out).u8(static_cast<std::uint8_t>(msg.code)).u32(msg.tenant_id);
}

bool parse_hello_ack(WireReader reader, HelloAckMsg& out) {
  std::uint8_t code;
  if (!reader.u8(code) || !reader.u32(out.tenant_id)) return false;
  out.code = static_cast<ReplyCode>(code);
  return true;
}

void encode_open(const OpenMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out).str(msg.trace).u32(msg.section);
}

bool parse_open(WireReader reader, OpenMsg& out) {
  return reader.str(out.trace) && reader.u32(out.section);
}

void encode_open_ack(const OpenAckMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out)
      .u8(static_cast<std::uint8_t>(msg.code))
      .u64(msg.session_id)
      .u64(msg.snapshot_version);
}

bool parse_open_ack(WireReader reader, OpenAckMsg& out) {
  std::uint8_t code;
  if (!reader.u8(code) || !reader.u64(out.session_id) ||
      !reader.u64(out.snapshot_version)) {
    return false;
  }
  out.code = static_cast<ReplyCode>(code);
  return true;
}

void encode_observe(std::uint64_t session_id, const std::uint32_t* events,
                    std::size_t count, std::vector<std::uint8_t>& out) {
  WireWriter writer(out);
  writer.u64(session_id).u32(static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) writer.u32(events[i]);
}

bool parse_observe(WireReader reader, ObserveMsg& out,
                   std::vector<std::uint32_t>& events_scratch,
                   std::size_t max_events) {
  std::uint32_t count;
  if (!reader.u64(out.session_id) || !reader.u32(count)) return false;
  if (count > max_events || count > reader.remaining() / 4) return false;
  events_scratch.resize(count);
  if (!reader.u32_array(events_scratch.data(), count)) return false;
  out.count = count;
  return true;
}

void encode_observe_ack(const ObserveAckMsg& msg,
                        std::vector<std::uint8_t>& out) {
  WireWriter(out)
      .u8(static_cast<std::uint8_t>(msg.code))
      .u8(msg.health)
      .f64(msg.confidence);
}

bool parse_observe_ack(WireReader reader, ObserveAckMsg& out) {
  std::uint8_t code;
  if (!reader.u8(code) || !reader.u8(out.health) ||
      !reader.f64(out.confidence)) {
    return false;
  }
  out.code = static_cast<ReplyCode>(code);
  return true;
}

void encode_predict(const PredictMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out)
      .u64(msg.session_id)
      .u32(msg.distance)
      .u32(msg.count)
      .u64(msg.deadline_ns);
}

bool parse_predict(WireReader reader, PredictMsg& out) {
  return reader.u64(out.session_id) && reader.u32(out.distance) &&
         reader.u32(out.count) && reader.u64(out.deadline_ns);
}

void encode_predict_ack(ReplyCode code, std::uint8_t health,
                        double probability, double confidence,
                        const std::uint32_t* events, std::size_t count,
                        std::vector<std::uint8_t>& out) {
  WireWriter writer(out);
  writer.u8(static_cast<std::uint8_t>(code))
      .u8(health)
      .f64(probability)
      .f64(confidence)
      .u32(static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) writer.u32(events[i]);
}

bool parse_predict_ack(WireReader reader, PredictAckMsg& out,
                       std::vector<std::uint32_t>& events_scratch,
                       std::size_t max_events) {
  std::uint8_t code;
  std::uint32_t count;
  if (!reader.u8(code) || !reader.u8(out.health) ||
      !reader.f64(out.probability) || !reader.f64(out.confidence) ||
      !reader.u32(count)) {
    return false;
  }
  if (count > max_events || count > reader.remaining() / 4) return false;
  events_scratch.resize(count);
  if (!reader.u32_array(events_scratch.data(), count)) return false;
  out.code = static_cast<ReplyCode>(code);
  out.count = count;
  return true;
}

void encode_close(const CloseMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out).u64(msg.session_id);
}

bool parse_close(WireReader reader, CloseMsg& out) {
  return reader.u64(out.session_id);
}

void encode_close_ack(const CloseAckMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out).u8(static_cast<std::uint8_t>(msg.code));
}

bool parse_close_ack(WireReader reader, CloseAckMsg& out) {
  std::uint8_t code;
  if (!reader.u8(code)) return false;
  out.code = static_cast<ReplyCode>(code);
  return true;
}

void encode_error(const ErrorMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out).u8(static_cast<std::uint8_t>(msg.code)).str(msg.message);
}

bool parse_error(WireReader reader, ErrorMsg& out) {
  std::uint8_t code;
  if (!reader.u8(code) || !reader.str(out.message, 1024)) return false;
  out.code = static_cast<ReplyCode>(code);
  return true;
}

void encode_analyze(const AnalyzeMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out)
      .str(msg.trace)
      .u32(msg.section)
      .u32(msg.max_depth)
      .u32(msg.max_nodes)
      .u32(msg.min_coverage_permille);
}

bool parse_analyze(WireReader reader, AnalyzeMsg& out) {
  return reader.str(out.trace) && reader.u32(out.section) &&
         reader.u32(out.max_depth) && reader.u32(out.max_nodes) &&
         reader.u32(out.min_coverage_permille);
}

void encode_analyze_ack(const AnalyzeAckMsg& msg, const AnalyzePhase* phases,
                        std::size_t count, std::vector<std::uint8_t>& out) {
  WireWriter writer(out);
  writer.u8(static_cast<std::uint8_t>(msg.code))
      .u8(msg.compiled)
      .u8(msg.timed)
      .u8(msg.truncated)
      .u64(msg.events)
      .u32(msg.rules)
      .u32(static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const AnalyzePhase& phase = phases[i];
    writer.u32(static_cast<std::uint32_t>(phase.parent))
        .u32(phase.depth)
        .u8(phase.flags)
        .u32(phase.rule)
        .u32(phase.terminal)
        .u64(phase.reps)
        .u64(phase.runs)
        .u64(phase.events)
        .f64(phase.time_ns);
  }
}

bool parse_analyze_ack(WireReader reader, AnalyzeAckMsg& out,
                       std::vector<AnalyzePhase>& phases_scratch,
                       std::size_t max_nodes) {
  phases_scratch.clear();
  std::uint8_t code;
  std::uint32_t count;
  if (!reader.u8(code) || !reader.u8(out.compiled) || !reader.u8(out.timed) ||
      !reader.u8(out.truncated) || !reader.u64(out.events) ||
      !reader.u32(out.rules) || !reader.u32(count)) {
    return false;
  }
  if (count > max_nodes || count > reader.remaining() / 49) return false;
  phases_scratch.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    AnalyzePhase& phase = phases_scratch[i];
    std::uint32_t parent_raw = 0;
    if (!reader.u32(parent_raw) || !reader.u32(phase.depth) ||
        !reader.u8(phase.flags) || !reader.u32(phase.rule) ||
        !reader.u32(phase.terminal) || !reader.u64(phase.reps) ||
        !reader.u64(phase.runs) || !reader.u64(phase.events) ||
        !reader.f64(phase.time_ns)) {
      return false;
    }
    phase.parent = static_cast<std::int32_t>(parent_raw);
  }
  out.code = static_cast<ReplyCode>(code);
  out.count = count;
  return true;
}

void encode_stats_ack(const StatsAckMsg& msg, std::vector<std::uint8_t>& out) {
  WireWriter(out)
      .u64(msg.frames)
      .u64(msg.replies)
      .u64(msg.sessions_open)
      .u64(msg.shed)
      .u64(msg.degraded)
      .u64(msg.expired)
      .u64(msg.publishes);
}

bool parse_stats_ack(WireReader reader, StatsAckMsg& out) {
  return reader.u64(out.frames) && reader.u64(out.replies) &&
         reader.u64(out.sessions_open) && reader.u64(out.shed) &&
         reader.u64(out.degraded) && reader.u64(out.expired) &&
         reader.u64(out.publishes);
}

}  // namespace pythia::serve
