// Trace registry of the predict daemon: many named traces, bounded
// residency, crash-recoverable membership.
//
// Residency vs. existence: a registered trace always *exists* (name +
// file path, persisted in the manifest); it is only sometimes *resident*
// (its TraceSnapshot loaded and published). acquire() faults a cold
// trace in from disk and evicts the least-recently-used resident entry
// beyond the cap. Eviction only drops the registry's own reference — a
// session that pinned the snapshot (shared_ptr) keeps it alive and
// valid, so eviction can never invalidate an in-flight client. The pin
// count is also the eviction policy's input: unpinned entries go first.
//
// Hot swap: publish() atomically replaces a resident snapshot through
// engine::PredictServer — in-flight sessions keep their pinned version,
// new opens get the new one, zero client disruption.
//
// Crash safety: the manifest (name -> path, one self-checksummed line
// each) is rewritten atomically (write-temp -> rename) on every
// membership change, so a daemon that is SIGKILLed recovers its registry
// by re-reading the manifest; snapshots reload lazily on first acquire.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/snapshot.hpp"
#include "support/status.hpp"

namespace pythia::serve {

struct RegistryOptions {
  /// Resident snapshot cap (LRU beyond it). Pinned entries survive
  /// eviction physically (their sessions hold the memory) — the cap
  /// bounds what the *registry* keeps alive, which is what matters once
  /// the pins drain.
  std::size_t max_resident = 4;
  /// Manifest file path; empty disables persistence (in-memory registry,
  /// used by unit tests and the bench).
  std::string manifest_path;
  /// fsync the manifest (and its directory) on every rewrite. Off is
  /// still atomic against process death; on survives power loss.
  bool durable_manifest = false;
  /// Cold loads try the zero-copy mmap path first (compiled sections
  /// served in place, thread sections never deserialized) and fall back
  /// to the full loader for traces without usable compiled sections.
  bool prefer_mapped = true;
};

class TraceRegistry {
 public:
  TraceRegistry() : TraceRegistry(RegistryOptions{}) {}
  explicit TraceRegistry(RegistryOptions options);

  /// Registers `name` backed by trace file `path` and persists the
  /// manifest. The file is not touched yet (lazy load on first acquire);
  /// a bad path surfaces as kUnavailable from acquire(), keeping one
  /// tenant's broken registration from delaying everyone else's adds.
  Status add(const std::string& name, const std::string& path);

  /// Unregisters and persists. In-flight sessions on the trace keep
  /// their pinned snapshots; only new opens start failing.
  Status remove(const std::string& name);

  /// Publishes a new snapshot version for `name` (hot swap; the entry
  /// becomes resident). Fails when the name is unknown.
  Status publish(const std::string& name,
                 std::shared_ptr<const engine::TraceSnapshot> snapshot);

  /// The current snapshot of `name`, loading it from disk when cold
  /// (evicting the LRU resident entry beyond max_resident). The returned
  /// shared_ptr is the caller's pin.
  Result<std::shared_ptr<const engine::TraceSnapshot>> acquire(
      const std::string& name);

  /// Re-reads the manifest, replacing in-memory membership — the daemon
  /// restart path. Unreadable lines are skipped (salvage), a missing
  /// manifest file yields an empty registry (first boot).
  Status recover();

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;
  std::size_t resident() const;
  /// Outstanding pins on `name`'s current snapshot (0 when cold or
  /// unknown; registry's own reference excluded).
  std::size_t pins(const std::string& name) const;
  /// Version the next acquire() would see (0 when cold/unknown).
  std::uint64_t version_of(const std::string& name) const;

  struct Stats {
    std::uint64_t cold_loads = 0;
    std::uint64_t load_failures = 0;
    /// Cold loads served zero-copy from an mmap of the trace file.
    std::uint64_t mapped_loads = 0;
    /// Cold loads where the mapped path was unusable and the full
    /// deserializing loader took over.
    std::uint64_t mapped_fallbacks = 0;
    std::uint64_t evictions = 0;
    std::uint64_t publishes = 0;
    std::uint64_t manifest_writes = 0;
    std::uint64_t manifest_salvaged_lines = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string name;
    std::string path;
    engine::PredictServer server;  ///< holds the resident snapshot
    std::uint64_t last_used = 0;   ///< LRU tick of the last acquire
    std::uint64_t version = 0;     ///< bumped per publish/load
  };

  Entry* find_locked(const std::string& name);
  const Entry* find_locked(const std::string& name) const;
  Status persist_locked();
  void evict_over_cap_locked();

  RegistryOptions options_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::uint64_t lru_tick_ = 0;
  Stats stats_;
};

}  // namespace pythia::serve
