// The predict daemon: a single-threaded poll(2) event loop hosting a
// ServerCore over Unix-domain stream sockets and/or adopted socketpair
// ends.
//
// One serving thread is a robustness feature, not a shortcut: every
// request against the oracle engine runs on the loop thread, so there is
// no locking in the request path to get wrong, and a SIGKILL can never
// leave half-taken locks — the only cross-thread surfaces are the
// internally synchronized TraceRegistry (operator publishes) and the
// atomic stop flag. Predict queries are tens of nanoseconds; the loop
// saturates a core long before the oracle does (bench/serve measures
// it). Scale-out is another daemon, not another lock.
//
// Slow-reader protection: replies buffer per connection up to
// max_output_buffer; a client that stops reading while pumping requests
// (or never reads at all) crosses the bound and is dropped, freeing the
// loop — one hostile reader cannot wedge the daemon or grow its memory.
//
// Crash recovery: the registry manifest lives on disk (ServerOptions::
// registry.manifest_path); a restarted daemon calls recover() before
// serving, so tenants reconnect to the same trace names with snapshots
// lazily reloaded (sessions are connection-scoped and die with their
// connection — clients re-open, which the client library automates).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/server.hpp"
#include "support/status.hpp"

namespace pythia::serve {

struct DaemonOptions {
  ServerOptions server;
  std::size_t read_chunk = 64 * 1024;
  /// Per-connection pending-reply cap; beyond it the reader is presumed
  /// dead or hostile and the connection is dropped.
  std::size_t max_output_buffer = 4 * 1024 * 1024;
  /// poll timeout; bounds stop() latency, nothing else.
  int poll_interval_ms = 50;
};

class Daemon {
 public:
  Daemon() : Daemon(DaemonOptions{}) {}
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  ServerCore& core() { return core_; }

  /// Binds and listens on a Unix-domain socket path (unlinked first —
  /// the daemon owns its endpoint). Call before start().
  Status listen_unix(const std::string& path);

  /// Adopts an already-connected stream fd (e.g. one end of a
  /// socketpair). Thread-safe; usable before or after start().
  Status adopt(int fd);

  /// Spawns the serving thread. recover()s the registry first when a
  /// manifest path is configured.
  Status start();

  /// Stops and joins the serving thread; idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t dropped_protocol = 0;    ///< framing failures
    std::uint64_t dropped_slow_reader = 0; ///< output bound exceeded
    std::uint64_t dropped_hangup = 0;      ///< peer closed / error
  };
  /// Loop-thread counters; read them after stop() (or accept the tear).
  const Stats& transport_stats() const { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;           ///< ServerCore connection id
    std::vector<std::uint8_t> outbox;
    std::size_t out_offset = 0;
  };

  void loop();
  void add_connection_locked(int fd);
  void drop_connection(std::size_t index);
  bool flush_connection(Conn& conn);

  DaemonOptions options_;
  ServerCore core_;
  int listen_fd_ = -1;
  std::string listen_path_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;

  /// Fds handed to adopt() before/while the loop runs; the loop drains
  /// this under the mutex into its private connection list.
  std::mutex adopt_mutex_;
  std::vector<int> adopted_;

  std::vector<Conn> conns_;  ///< loop-thread private
  std::vector<std::uint8_t> read_buffer_;
  Stats stats_;
};

}  // namespace pythia::serve
