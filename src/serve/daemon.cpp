#include "serve/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/io.hpp"

namespace pythia::serve {

namespace {

std::uint64_t monotonic_ns() {
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return support::errno_status("fcntl", "fd " + std::to_string(fd));
  }
  return Status();
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(options), core_(options.server) {
  read_buffer_.resize(options_.read_chunk);
}

Daemon::~Daemon() {
  stop();
  if (listen_fd_ >= 0) support::close_noeintr(listen_fd_);
  if (!listen_path_.empty()) ::unlink(listen_path_.c_str());
  if (wake_read_fd_ >= 0) support::close_noeintr(wake_read_fd_);
  if (wake_write_fd_ >= 0) support::close_noeintr(wake_write_fd_);
  for (int fd : adopted_) support::close_noeintr(fd);
  for (Conn& conn : conns_) support::close_noeintr(conn.fd);
}

Status Daemon::listen_unix(const std::string& path) {
  if (running()) return Status::invalid_state("daemon: already running");
  struct sockaddr_un addr {};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::invalid_state("daemon: socket path too long");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return support::errno_status("socket", path);
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = support::errno_status("bind", path);
    support::close_noeintr(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = support::errno_status("listen", path);
    support::close_noeintr(fd);
    return status;
  }
  Status status = set_nonblocking(fd);
  if (!status.ok()) {
    support::close_noeintr(fd);
    return status;
  }
  listen_fd_ = fd;
  listen_path_ = path;
  return Status();
}

Status Daemon::adopt(int fd) {
  Status status = set_nonblocking(fd);
  if (!status.ok()) return status;
  {
    std::lock_guard<std::mutex> lock(adopt_mutex_);
    adopted_.push_back(fd);
  }
  // Nudge a running loop out of poll() so the fd is served promptly.
  if (wake_write_fd_ >= 0) {
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
  return Status();
}

Status Daemon::start() {
  if (running()) return Status::invalid_state("daemon: already running");
  if (!options_.server.registry.manifest_path.empty()) {
    // Crash recovery: membership comes back from the manifest; the
    // snapshots themselves reload lazily on first acquire.
    Status status = core_.registry().recover();
    if (!status.ok()) return status;
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return support::errno_status("pipe", "daemon wake pipe");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  (void)set_nonblocking(wake_read_fd_);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return Status();
}

void Daemon::stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void Daemon::add_connection_locked(int fd) {
  Conn conn;
  conn.fd = fd;
  conn.id = core_.connection_open();
  conns_.push_back(std::move(conn));
  ++stats_.accepted;
}

void Daemon::drop_connection(std::size_t index) {
  Conn& conn = conns_[index];
  core_.connection_close(conn.id);
  support::close_noeintr(conn.fd);
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
}

/// Writes as much buffered output as the socket accepts. Returns false
/// when the connection is dead (EPIPE & co).
bool Daemon::flush_connection(Conn& conn) {
  while (conn.out_offset < conn.outbox.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbox.data() + conn.out_offset,
               conn.outbox.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn.out_offset += static_cast<std::size_t>(n);
  }
  conn.outbox.clear();
  conn.out_offset = 0;
  return true;
}

void Daemon::loop() {
  std::vector<struct pollfd> fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(adopt_mutex_);
      for (int fd : adopted_) add_connection_locked(fd);
      adopted_.clear();
    }

    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    // Only this prefix of conns_ has a pollfd this iteration; accepts
    // below append past it and wait for the next poll round.
    const std::size_t polled = conns_.size();
    for (Conn& conn : conns_) {
      short events = POLLIN;
      if (conn.out_offset < conn.outbox.size()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(),
                             options_.poll_interval_ms);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }

    if (listen_fd_ >= 0 && (fds[1].revents & POLLIN) != 0) {
      while (true) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) break;
        if (set_nonblocking(client).ok()) {
          add_connection_locked(client);
        } else {
          support::close_noeintr(client);
        }
      }
    }

    // Serve back to front so drop_connection's erase cannot shift an
    // index we still have to visit. Bounded by `polled`, not the live
    // size: a connection accepted above has no pollfd entry yet —
    // reading fds[conn_base + i] for it would run past the array (and
    // whatever garbage revents came back could drop the newcomer on
    // the spot).
    for (std::size_t i = polled; i-- > 0;) {
      const short revents = fds[conn_base + i].revents;
      if (revents == 0) continue;
      Conn& conn = conns_[i];
      bool drop = false;

      if ((revents & POLLIN) != 0) {
        while (true) {
          const ssize_t n =
              ::recv(conn.fd, read_buffer_.data(), read_buffer_.size(), 0);
          if (n > 0) {
            const std::uint64_t now = monotonic_ns();
            if (!core_.on_bytes(conn.id, read_buffer_.data(),
                                static_cast<std::size_t>(n), conn.outbox,
                                now)) {
              ++stats_.dropped_protocol;
              drop = true;
              break;
            }
            if (conn.outbox.size() - conn.out_offset >
                options_.max_output_buffer) {
              // The peer pumps requests but does not read answers: a
              // slow or hostile reader. Bound the memory, cut the cord.
              ++stats_.dropped_slow_reader;
              drop = true;
              break;
            }
            continue;
          }
          if (n == 0) {
            ++stats_.dropped_hangup;
            drop = true;
          } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR) {
            ++stats_.dropped_hangup;
            drop = true;
          }
          break;
        }
      }

      if (!drop && (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          conn.out_offset >= conn.outbox.size()) {
        ++stats_.dropped_hangup;
        drop = true;
      }

      if (!drop && !flush_connection(conn)) {
        ++stats_.dropped_hangup;
        drop = true;
      }

      if (drop) {
        // Best effort: push any pending error reply before closing so
        // the client learns *why* when the kernel buffer allows it.
        (void)flush_connection(conn);
        drop_connection(i);
      }
    }
  }

  // Shutdown: flush what the sockets will take, then close everything.
  for (Conn& conn : conns_) (void)flush_connection(conn);
  while (!conns_.empty()) drop_connection(conns_.size() - 1);
}

}  // namespace pythia::serve
