// ServerCore: the transport-agnostic request brain of the predict
// daemon.
//
// One ServerCore hosts one TraceRegistry, one AdmissionController, and
// every connection's protocol state. The daemon (serve/daemon.hpp) feeds
// it raw transport bytes per connection; the core decodes frames,
// applies admission and deadlines, drives the engine's PredictSessions,
// and appends reply bytes for the transport to flush. The core never
// reads a clock and never touches a socket — every call takes `now_ns`
// from the caller, which makes the whole request pipeline, including
// rate limiting and deadline expiry, deterministic under test.
//
// Robustness contract per failure class:
//   * bit-flipped / truncated / oversized frame  -> best-effort kError
//     reply, connection dropped (a byte stream cannot resync), decoder
//     counters record which check caught it;
//   * malformed payload in a valid frame         -> kError(kBadRequest)
//     reply, connection lives (framing is still sound);
//   * unknown session / trace                    -> explicit kBadRequest /
//     kNotFound reply codes, never a hang;
//   * flooding tenant                            -> admission sheds with
//     kShed, other tenants' budgets untouched;
//   * unhealthy trace (sessions mostly degraded) -> early kDegraded
//     before any oracle work, client falls back to vanilla policy;
//   * request past its deadline                  -> kDeadlineExpired
//     instead of a late answer;
//   * publish during in-flight traffic           -> sessions keep their
//     pinned snapshot (engine guarantee), new opens get the new one.
//
// Threading: a ServerCore instance belongs to one serving thread (the
// daemon's event loop). The *registry* is internally synchronized — hot
// publishes may arrive from other threads (an operator reload) while the
// loop serves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/snapshot.hpp"
#include "serve/admission.hpp"
#include "serve/registry.hpp"
#include "serve/wire.hpp"

namespace pythia::serve {

struct ServerOptions {
  FrameDecoder::Options wire;
  TenantLimits tenant_defaults;
  RegistryOptions registry;

  std::size_t max_sessions_per_tenant = 4096;
  std::size_t max_events_per_observe = 4096;
  std::size_t max_predict_count = 1024;
  /// Hard cap on phase nodes per kAnalyze reply (requests asking for
  /// more are clamped, not rejected). The real bound is the frame cap:
  /// a reply that would not fit wire.max_payload is shed, because a
  /// frame the client's decoder must reject helps nobody.
  std::size_t max_analyze_nodes = 4096;

  /// Trace-health aggregation: a trace whose sessions are mostly
  /// degraded sheds new work early. Both thresholds must hold.
  double degraded_fraction = 0.5;
  std::size_t degraded_min_sessions = 4;

  /// Serve-side sessions run the standard runtime breaker plus seeded
  /// backoff jitter (salted by session id): thousands of sessions that
  /// degrade together on one shared divergence must not re-anchor in
  /// lockstep against the shared grammar.
  double breaker_jitter = 0.25;
};

class ServerCore {
 public:
  ServerCore() : ServerCore(ServerOptions{}) {}
  explicit ServerCore(ServerOptions options);

  TraceRegistry& registry() { return registry_; }
  AdmissionController& admission() { return admission_; }
  const ServerOptions& options() const { return options_; }

  /// Opens a connection-state slot; the id keys every later call.
  std::uint64_t connection_open();
  void connection_close(std::uint64_t connection);

  /// Feeds transport bytes; reply frames are appended to `out`. Returns
  /// false when the connection must be dropped (framing failure) — a
  /// best-effort kError frame is already in `out` when so.
  bool on_bytes(std::uint64_t connection, const std::uint8_t* data,
                std::size_t size, std::vector<std::uint8_t>& out,
                std::uint64_t now_ns);

  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t bad_frames = 0;       ///< framing failures (drops)
    std::uint64_t bad_requests = 0;     ///< well-framed, malformed payload
    std::uint64_t replies = 0;
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t shed = 0;             ///< kShed replies (rate/queue)
    std::uint64_t degraded = 0;         ///< kDegraded replies
    std::uint64_t expired = 0;          ///< kDeadlineExpired replies
    std::uint64_t connections_dropped = 0;
    std::size_t sessions_open = 0;      ///< live right now
    std::size_t connections = 0;        ///< live right now
  };
  const Stats& stats() const { return stats_; }

  /// Sessions currently degraded / total, for `trace` (health gauge).
  std::pair<std::size_t, std::size_t> trace_health(
      const std::string& trace) const;

 private:
  struct ServeSession {
    std::string trace;
    std::unique_ptr<engine::PredictSession> session;
    Health last_health = Health::kHealthy;
  };

  struct Connection {
    FrameDecoder decoder;
    bool hello_done = false;
    std::uint32_t tenant = 0;
    std::unordered_map<std::uint64_t, ServeSession> sessions;
    /// Reusable per-connection scratch (observe batches, predict
    /// buffers): the steady-state request path allocates nothing.
    std::vector<std::uint32_t> event_scratch;
    std::vector<std::uint32_t> predict_scratch;
    std::vector<std::uint8_t> payload_scratch;
    std::vector<AnalyzePhase> phase_scratch;
  };

  struct TraceGauge {
    std::size_t sessions = 0;
    std::size_t degraded = 0;
  };

  void serve_frame(Connection& conn, const Frame& frame,
                   std::vector<std::uint8_t>& out, std::uint64_t now_ns);
  void reply_error(const Frame& frame, ReplyCode code, std::string message,
                   Connection& conn, std::vector<std::uint8_t>& out);
  bool trace_degraded(const std::string& trace) const;
  void note_health(ServeSession& session, Health now_health);
  void drop_session_gauge(const ServeSession& session);

  ServerOptions options_;
  TraceRegistry registry_;
  AdmissionController admission_;
  std::unordered_map<std::uint64_t, Connection> connections_;
  std::unordered_map<std::string, TraceGauge> gauges_;
  std::uint64_t next_connection_ = 1;
  std::uint64_t next_session_ = 1;
  Stats stats_;
};

}  // namespace pythia::serve
