// Calibrated real busy-work.
//
// Table I measures the *real* overhead of PYTHIA-RECORD relative to real
// application work. The application skeletons therefore burn genuine CPU
// between events; the Spinner converts a nanosecond budget into a
// calibrated arithmetic loop (no sleeping — sleeps would hide the
// recording cost in scheduler noise).
#pragma once

#include <chrono>
#include <cstdint>

namespace pythia::sim {

class Spinner {
 public:
  /// Burns approximately `ns` nanoseconds of CPU.
  static void spin_ns(double ns) {
    if (ns <= 0) return;
    const double per_iteration = ns_per_iteration();
    auto iterations = static_cast<std::uint64_t>(ns / per_iteration) + 1;
    burn(iterations);
  }

 private:
  static std::uint64_t burn(std::uint64_t iterations) {
    // Simple integer recurrence the optimizer cannot elide (result used).
    volatile std::uint64_t sink = 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = sink;
    for (std::uint64_t i = 0; i < iterations; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    sink = x;
    return sink;
  }

  static double ns_per_iteration() {
    static const double calibrated = [] {
      using clock = std::chrono::steady_clock;
      constexpr std::uint64_t kProbe = 2'000'000;
      const auto start = clock::now();
      burn(kProbe);
      const auto stop = clock::now();
      const double elapsed =
          std::chrono::duration<double, std::nano>(stop - start).count();
      const double per = elapsed / static_cast<double>(kProbe);
      return per > 0.05 ? per : 0.05;
    }();
    return calibrated;
  }
};

}  // namespace pythia::sim
