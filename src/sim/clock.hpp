// Virtual (logical) time.
//
// Every simulated rank/thread owns a VirtualClock. Computation advances it
// explicitly; messages piggyback the sender's clock and receivers take the
// max (Lamport-style), so the simulated timeline is deterministic and
// independent of host scheduling — essential on a 1-core host standing in
// for a 16/24-core testbed (see DESIGN.md substitutions).
#pragma once

#include <algorithm>
#include <cstdint>

namespace pythia::sim {

class VirtualClock {
 public:
  std::uint64_t now_ns() const { return now_ns_; }

  void advance(double ns) {
    if (ns > 0) now_ns_ += static_cast<std::uint64_t>(ns);
  }

  /// Lamport merge: never moves backwards.
  void merge(std::uint64_t other_ns) { now_ns_ = std::max(now_ns_, other_ns); }

  void reset() { now_ns_ = 0; }

 private:
  std::uint64_t now_ns_ = 0;
};

}  // namespace pythia::sim
