#include "core/trace_io.hpp"

#include "core/compile.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/crc32.hpp"
#include "support/hash.hpp"
#include "support/io.hpp"

namespace pythia {

namespace {

constexpr char kMagicV1[8] = {'P', 'Y', 'T', 'H', 'I', 'A', '0', '1'};
constexpr char kMagicV2[8] = {'P', 'Y', 'T', 'H', 'I', 'A', '0', '2'};

// Section kinds of the PYTHIA02 framing.
constexpr std::uint32_t kSectionRegistry = 1;
constexpr std::uint32_t kSectionThread = 2;
// Compiled prediction automaton (compile.hpp), appended after the thread
// sections; payload = thread index (u32), pad byte count (u32), pad, blob.
// The pad places the blob at a 64-byte file offset for aligned mmaps.
constexpr std::uint32_t kSectionCompiled = 3;
constexpr std::size_t kSectionHeaderBytes = 16;  // kind, size, crc, hdr crc

// Parse failures inside a section; converted to Status at the boundary
// (Grammar::from_bodies throws std::runtime_error for the same reason, so
// the catch handles both).
[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("pythia: corrupt trace file (" + what + ")");
}

/// Serializes into a growable in-memory buffer; sections are framed and
/// checksummed only once their full payload is known.
class BufWriter {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  void u8(std::uint8_t v) { bytes(&v, sizeof v); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i32(std::int32_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  const std::vector<unsigned char>& buffer() const { return buf_; }
  std::vector<unsigned char> take() && { return std::move(buf_); }

 private:
  std::vector<unsigned char> buf_;
};

/// Bounds-checked reads over an in-memory payload. Overruns are
/// corruption, not UB: every read validates against the remaining size.
class BufReader {
 public:
  BufReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - offset_; }
  bool at_end() const { return offset_ == size_; }

  /// Current read position within the underlying buffer — the zero-copy
  /// loader uses it to point a CompiledView at mapped bytes in place.
  const unsigned char* cursor() const { return data_ + offset_; }
  void skip(std::size_t size) {
    if (size > remaining()) fail("truncated data");
    offset_ += size;
  }

  void bytes(void* out, std::size_t size) {
    if (size > remaining()) fail("truncated data");
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    bytes(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    bytes(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    bytes(&v, sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    bytes(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    bytes(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t size = u32();
    if (size > (1u << 20) || size > remaining()) fail("string size");
    std::string s(size, '\0');
    bytes(s.data(), size);
    return s;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

// --- grammar / timing payload encoding (identical in v1 and v2) ----------

void write_grammar(BufWriter& writer, const Grammar& grammar) {
  // Remap live rules to dense ids (root stays 0). The relative order of
  // live rules is preserved so that finalize()'s stable node ids are
  // reproduced exactly on load.
  std::vector<const Rule*> live = grammar.rules();
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    remap[live[i]->id] = static_cast<std::uint32_t>(i);
  }
  PYTHIA_ASSERT(!live.empty() && live.front()->id == 0);

  writer.u32(static_cast<std::uint32_t>(live.size()));
  for (const Rule* rule : live) {
    writer.u32(static_cast<std::uint32_t>(rule->length));
    for (const Node* node = rule->head; node != nullptr; node = node->next) {
      Symbol sym = node->sym;
      if (sym.is_rule()) sym = Symbol::rule(remap.at(sym.rule_id()));
      writer.u32(sym.raw());
      writer.u64(node->exp);
    }
  }
}

Grammar read_grammar(BufReader& reader) {
  const std::uint32_t rule_count = reader.u32();
  if (rule_count == 0 || rule_count > (1u << 24)) fail("rule count");
  std::vector<std::vector<Grammar::BodyEntry>> bodies(rule_count);
  for (std::uint32_t r = 0; r < rule_count; ++r) {
    const std::uint32_t length = reader.u32();
    // Each body entry needs 12 bytes in the stream, so a count that the
    // remaining data cannot possibly hold fails here instead of looping.
    if (length > (1u << 26) || length > reader.remaining() / 12) {
      fail("body length");
    }
    bodies[r].reserve(length);
    for (std::uint32_t i = 0; i < length; ++i) {
      const Symbol sym = Symbol::from_raw(reader.u32());
      const std::uint64_t exp = reader.u64();
      if (exp == 0 || (sym.is_rule() && sym.rule_id() >= rule_count)) {
        fail("body entry");
      }
      bodies[r].push_back({sym, exp});
    }
  }
  // from_bodies revalidates the invariants and rejects rule-reference
  // cycles (anywhere, not only under the root), so a structurally corrupt
  // grammar can never reach finalize()'s occurrence counting.
  return Grammar::from_bodies(bodies);
}

void write_timing(BufWriter& writer, const TimingModel& timing) {
  writer.u8(timing.empty() ? 0 : 1);
  if (timing.empty()) return;
  writer.u32(static_cast<std::uint32_t>(timing.contexts().size()));
  for (const auto& [key, stat] : timing.contexts()) {
    writer.u64(key);
    writer.f64(stat.sum_ns);
    writer.u64(stat.count);
  }
}

TimingModel read_timing(BufReader& reader) {
  TimingModel timing;
  if (reader.u8() == 0) return timing;
  const std::uint32_t count = reader.u32();
  // Each context is 24 bytes on the wire; a count the remaining data
  // cannot hold is corruption and fails fast instead of walking to EOF.
  if (count > reader.remaining() / 24) fail("timing context count");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t key = reader.u64();
    TimingModel::DurationStat stat;
    stat.sum_ns = reader.f64();
    stat.count = reader.u64();
    timing.load_context(key, stat);
  }
  return timing;
}

void read_registry_tables(BufReader& reader, EventRegistry& registry) {
  const std::uint32_t kinds = reader.u32();
  if (kinds > (1u << 20)) fail("kind count");
  for (std::uint32_t k = 0; k < kinds; ++k) {
    const std::string name = reader.str();
    if (registry.intern_kind(name) != k) fail("kind table");
  }
  const std::uint32_t events = reader.u32();
  if (events > (1u << 24)) fail("event count");
  for (std::uint32_t e = 0; e < events; ++e) {
    const KindId kind = reader.u32();
    const EventAux aux = reader.i32();
    if (kind >= kinds) fail("event table");
    if (registry.intern_event(kind, aux) != e) fail("event table");
  }
}

ThreadTrace read_thread_payload(BufReader& reader, bool finalize) {
  ThreadTrace thread;
  thread.grammar = read_grammar(reader);
  if (finalize) thread.grammar.finalize();
  thread.timing = read_timing(reader);
  return thread;
}

ThreadTrace placeholder_thread() {
  ThreadTrace placeholder;
  placeholder.grammar.finalize();  // empty, inert: predicts nothing
  return placeholder;
}

// --- PYTHIA02 section framing --------------------------------------------

void append_section(BufWriter& out, std::uint32_t kind,
                    const std::vector<unsigned char>& payload) {
  BufWriter header;
  header.u32(kind);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(support::crc32(payload.data(), payload.size()));
  const auto& head = header.buffer();
  out.bytes(head.data(), head.size());
  out.u32(support::crc32(head.data(), head.size()));
  out.bytes(payload.data(), payload.size());
}

struct SectionHeader {
  std::uint32_t kind = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
  bool header_ok = false;
};

/// Reads one 16-byte section header; header_ok is false when its own
/// checksum fails, in which case payload_size cannot be trusted and the
/// scan must stop.
SectionHeader read_section_header(BufReader& reader) {
  unsigned char raw[12];
  reader.bytes(raw, sizeof raw);
  const std::uint32_t stored_crc = reader.u32();
  SectionHeader header;
  header.header_ok = support::crc32(raw, sizeof raw) == stored_crc;
  std::memcpy(&header.kind, raw, 4);
  std::memcpy(&header.payload_size, raw + 4, 4);
  std::memcpy(&header.payload_crc, raw + 8, 4);
  return header;
}

Result<Trace> load_v2(const unsigned char* data, std::size_t size,
                      const TraceLoadOptions& options) {
  BufReader reader(data, size);

  // Registry section: without it terminal ids mean nothing, so any damage
  // here fails the whole load.
  Trace trace;
  std::uint32_t thread_count = 0;
  try {
    if (reader.remaining() < kSectionHeaderBytes) fail("missing registry");
    const SectionHeader header = read_section_header(reader);
    if (!header.header_ok) fail("registry section header checksum");
    if (header.kind != kSectionRegistry) fail("registry section kind");
    if (header.payload_size > reader.remaining()) {
      fail("registry section size");
    }
    std::vector<unsigned char> payload(header.payload_size);
    reader.bytes(payload.data(), payload.size());
    if (support::crc32(payload.data(), payload.size()) !=
        header.payload_crc) {
      fail("registry section checksum");
    }
    BufReader body(payload.data(), payload.size());
    read_registry_tables(body, trace.registry);
    thread_count = body.u32();
    if (thread_count > (1u << 20)) fail("thread count");
    if (!body.at_end()) fail("registry section trailing bytes");
  } catch (const std::exception& error) {
    return Status::corrupt(error.what());
  }

  // Thread sections: a damaged one degrades to a placeholder (salvage) or
  // fails the load (strict). Once a section *header* is unreadable the
  // rest of the file cannot be framed, so all remaining sections are lost.
  trace.threads.reserve(thread_count);
  trace.section_status.reserve(thread_count);
  bool framing_lost = false;
  for (std::uint32_t t = 0; t < thread_count; ++t) {
    Status status;
    ThreadTrace thread;
    if (framing_lost || reader.remaining() < kSectionHeaderBytes) {
      status = Status::corrupt("thread section " + std::to_string(t) +
                               " missing (file truncated or framing lost)");
    } else {
      const SectionHeader header = read_section_header(reader);
      if (!header.header_ok || header.kind != kSectionThread ||
          header.payload_size > reader.remaining()) {
        framing_lost = true;
        status = Status::corrupt("thread section " + std::to_string(t) +
                                 " header corrupt");
      } else {
        std::vector<unsigned char> payload(header.payload_size);
        reader.bytes(payload.data(), payload.size());
        if (support::crc32(payload.data(), payload.size()) !=
            header.payload_crc) {
          status = Status::corrupt("thread section " + std::to_string(t) +
                                   " checksum mismatch");
        } else {
          try {
            BufReader body(payload.data(), payload.size());
            thread = read_thread_payload(body, options.finalize_grammars);
            if (!body.at_end()) fail("thread section trailing bytes");
          } catch (const std::exception& error) {
            status = Status::corrupt(error.what());
          }
        }
      }
    }
    if (!status.ok()) {
      if (!options.salvage_sections) return status;
      thread = placeholder_thread();
    }
    trace.threads.push_back(std::move(thread));
    trace.section_status.push_back(std::move(status));
  }

  // Trailing sections: compiled prediction automatons (and any future
  // kinds, which are skipped). A damaged compiled section never costs the
  // thread itself — under salvage the artifact is dropped and the thread
  // serves interpreted; strict mode still fails the load.
  trace.compiled_status.assign(thread_count, Status());
  while (!framing_lost && reader.remaining() >= kSectionHeaderBytes) {
    const SectionHeader header = read_section_header(reader);
    if (!header.header_ok || header.payload_size > reader.remaining()) {
      if (!options.salvage_sections) {
        return Status::corrupt("trailing section header corrupt");
      }
      break;  // framing lost in the tail; nothing further can be read
    }
    std::vector<unsigned char> payload(header.payload_size);
    reader.bytes(payload.data(), payload.size());
    if (header.kind != kSectionCompiled) continue;  // unknown: skip

    Status status;
    std::uint32_t thread_index = thread_count;
    if (payload.size() < 8) {
      status = Status::corrupt("compiled section truncated");
    } else {
      // Thread index first, checksum second: when the CRC fails, the
      // (unverified) index still attributes the drop to a thread in
      // compiled_status — a diagnosis hint, never trusted further.
      std::uint32_t pad = 0;
      std::memcpy(&thread_index, payload.data(), 4);
      std::memcpy(&pad, payload.data() + 4, 4);
      if (thread_index >= thread_count) {
        status = Status::corrupt("compiled section thread index");
        thread_index = thread_count;
      } else if (support::crc32(payload.data(), payload.size()) !=
                 header.payload_crc) {
        status = Status::corrupt("compiled section checksum mismatch");
      } else if (pad > 63 || payload.size() - 8 < pad) {
        status = Status::corrupt("compiled section padding");
      } else {
        // Copy the blob into its own allocation: the mmap path serves
        // aligned bytes in place, but a heap-loaded payload gives no
        // alignment guarantee at the pad-dependent blob offset.
        std::vector<unsigned char> blob(payload.begin() + 8 + pad,
                                        payload.end());
        Result<CompiledView> view = CompiledView::parse(blob.data(),
                                                        blob.size());
        if (!view.ok()) {
          status = view.status();
        } else if (view.value().grammar_digest() !=
                   thread_section_digest(trace.threads[thread_index])) {
          status = Status::corrupt(
              "compiled section does not match its thread section");
        } else {
          trace.threads[thread_index].compiled_blob = std::move(blob);
          trace.threads[thread_index].compiled = view.take();
        }
      }
    }
    if (!status.ok()) {
      if (!options.salvage_sections) return status;
      if (thread_index < thread_count) {
        trace.compiled_status[thread_index] = std::move(status);
      }
    }
  }
  // Strict loads require the file to frame exactly into sections: a
  // partial trailing header is truncation, not slack. Salvage ignores it.
  if (!framing_lost && reader.remaining() != 0 && !options.salvage_sections) {
    return Status::corrupt("trailing bytes do not frame a section");
  }
  return trace;
}

Result<Trace> load_v1(const unsigned char* data, std::size_t size,
                      const TraceLoadOptions& options) {
  // Legacy format: no framing, no checksums — nothing to salvage with, so
  // the first structural problem fails the load.
  BufReader reader(data, size);
  try {
    Trace trace;
    read_registry_tables(reader, trace.registry);
    const std::uint32_t thread_count = reader.u32();
    if (thread_count > (1u << 20)) fail("thread count");
    trace.threads.reserve(thread_count);
    trace.section_status.assign(thread_count, Status());
    for (std::uint32_t t = 0; t < thread_count; ++t) {
      trace.threads.push_back(
          read_thread_payload(reader, options.finalize_grammars));
    }
    return trace;
  } catch (const std::exception& error) {
    return Status::corrupt(error.what());
  }
}

/// Serializes registry + thread views into a complete PYTHIA02 image.
std::vector<unsigned char> serialize_trace(
    const EventRegistry& registry,
    const std::vector<ThreadTraceView>& threads) {
  BufWriter registry_payload;
  registry_payload.u32(static_cast<std::uint32_t>(registry.kind_count()));
  for (std::uint32_t k = 0; k < registry.kind_count(); ++k) {
    registry_payload.str(registry.kind_name(k));
  }
  registry_payload.u32(static_cast<std::uint32_t>(registry.event_count()));
  for (std::uint32_t e = 0; e < registry.event_count(); ++e) {
    registry_payload.u32(registry.kind_of(e));
    registry_payload.i32(registry.aux_of(e));
  }
  registry_payload.u32(static_cast<std::uint32_t>(threads.size()));

  BufWriter file;
  file.bytes(kMagicV2, sizeof kMagicV2);
  append_section(file, kSectionRegistry, registry_payload.buffer());
  const TimingModel empty_timing;
  for (const ThreadTraceView& thread : threads) {
    BufWriter payload;
    write_grammar(payload, *thread.grammar);
    write_timing(payload,
                 thread.timing != nullptr ? *thread.timing : empty_timing);
    append_section(file, kSectionThread, payload.buffer());
  }

  // Compiled sections, trailing so readers without compiled support stop
  // cleanly after the last thread section. Only finalized, non-empty
  // grammars are compilable; others simply have no compiled section
  // (checkpoints of live recording sessions stay exactly as before).
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const ThreadTraceView& thread = threads[t];
    if (!thread.grammar->finalized()) continue;
    const std::vector<unsigned char> blob = compile_thread(
        *thread.grammar, thread.timing,
        thread_section_digest(*thread.grammar, thread.timing));
    if (blob.empty()) continue;
    BufWriter payload;
    payload.u32(static_cast<std::uint32_t>(t));
    // Pad so the blob lands on a 64-byte *file* offset: section header
    // (16) plus thread index + pad count (8) follow the current end.
    const std::size_t base = file.buffer().size() + kSectionHeaderBytes + 8;
    const std::uint32_t pad = static_cast<std::uint32_t>((64 - base % 64) % 64);
    payload.u32(pad);
    for (std::uint32_t i = 0; i < pad; ++i) payload.u8(0);
    payload.bytes(blob.data(), blob.size());
    append_section(file, kSectionCompiled, payload.buffer());
  }
  return std::move(file).take();
}

/// FNV-1a over a byte run, finalized with mix64. Deliberately not CRC32:
/// a digest match is independent evidence beyond the file checksums.
std::uint64_t digest_bytes(const std::vector<unsigned char>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return support::mix64(h ^ bytes.size());
}

}  // namespace

bool ThreadTrace::compile(const CompileOptions& options) {
  compiled = CompiledView();
  compiled_blob.clear();
  if (!grammar.finalized()) return false;
  std::vector<unsigned char> blob =
      compile_thread(grammar, timing.empty() ? nullptr : &timing,
                     thread_section_digest(*this), options);
  if (blob.empty()) return false;
  Result<CompiledView> view = CompiledView::parse(blob.data(), blob.size());
  PYTHIA_ASSERT_MSG(view.ok(), "freshly compiled blob failed validation");
  compiled_blob = std::move(blob);
  compiled = view.take();
  return true;
}

std::uint64_t thread_section_digest(const Grammar& grammar,
                                    const TimingModel* timing) {
  // Grammar: hash the exact serialized payload bytes (rule order and node
  // order are canonical already). Timing: the context table is an
  // unordered_map whose iteration order depends on insertion history, so
  // the *file* bytes can differ across a save/load round trip even though
  // the model is identical — canonicalize by sorting on the context key
  // so the digest is a content hash, stable across round trips.
  BufWriter payload;
  write_grammar(payload, grammar);
  std::uint64_t h = digest_bytes(payload.buffer());

  std::vector<std::pair<std::uint64_t, TimingModel::DurationStat>> contexts;
  if (timing != nullptr) {
    contexts.assign(timing->contexts().begin(), timing->contexts().end());
  }
  std::sort(contexts.begin(), contexts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  h = support::hash_combine(h, contexts.size());
  for (const auto& [key, stat] : contexts) {
    std::uint64_t sum_bits = 0;
    static_assert(sizeof stat.sum_ns == sizeof sum_bits);
    std::memcpy(&sum_bits, &stat.sum_ns, sizeof sum_bits);
    h = support::hash_combine(h, key);
    h = support::hash_combine(h, sum_bits);
    h = support::hash_combine(h, stat.count);
  }
  return h;
}

std::uint64_t thread_section_digest(const ThreadTrace& thread) {
  return thread_section_digest(thread.grammar, &thread.timing);
}

std::uint64_t trace_digest(const Trace& trace) {
  BufWriter registry_payload;
  registry_payload.u32(static_cast<std::uint32_t>(trace.registry.kind_count()));
  for (std::uint32_t k = 0; k < trace.registry.kind_count(); ++k) {
    registry_payload.str(trace.registry.kind_name(k));
  }
  registry_payload.u32(
      static_cast<std::uint32_t>(trace.registry.event_count()));
  for (std::uint32_t e = 0; e < trace.registry.event_count(); ++e) {
    registry_payload.u32(trace.registry.kind_of(e));
    registry_payload.i32(trace.registry.aux_of(e));
  }
  std::uint64_t h = digest_bytes(registry_payload.buffer());
  for (const ThreadTrace& thread : trace.threads) {
    h = support::hash_combine(h, thread_section_digest(thread));
  }
  return h;
}

Status save_trace_file(const std::string& path, const EventRegistry& registry,
                       const std::vector<ThreadTraceView>& threads,
                       bool durable) {
  const std::vector<unsigned char> bytes = serialize_trace(registry, threads);
  return support::write_file(path, bytes.data(), bytes.size(), durable);
}

Status Trace::try_save(const std::string& path) const {
  std::vector<ThreadTraceView> views;
  views.reserve(threads.size());
  for (const ThreadTrace& thread : threads) {
    views.push_back({&thread.grammar, &thread.timing});
  }
  const std::vector<unsigned char> bytes = serialize_trace(registry, views);
  // Atomic replace: a crash mid-save leaves the previous trace (or no
  // file), never a torn one. Durability is deliberate here — this is the
  // end of a whole reference execution.
  return support::write_file_atomic(path, bytes.data(), bytes.size(),
                                    /*durable=*/true);
}

Result<Trace> Trace::try_load(const std::string& path,
                              const TraceLoadOptions& options) {
  std::vector<unsigned char> bytes;
  Status io = support::read_file(path, bytes);
  if (!io.ok()) return io;

  if (bytes.size() < 8) {
    return Status::corrupt("not a PYTHIA trace file (too short): " + path);
  }
  if (std::memcmp(bytes.data(), kMagicV2, 8) == 0) {
    return load_v2(bytes.data() + 8, bytes.size() - 8, options);
  }
  if (std::memcmp(bytes.data(), kMagicV1, 8) == 0) {
    return load_v1(bytes.data() + 8, bytes.size() - 8, options);
  }
  if (std::memcmp(bytes.data(), "PYTHIA", 6) == 0) {
    return Status::unsupported("trace format version newer than this "
                               "library: " +
                               path);
  }
  return Status::corrupt("not a PYTHIA trace file: " + path);
}

void Trace::save(const std::string& path) const {
  const Status status = try_save(path);
  if (!status.ok()) {
    throw std::runtime_error("pythia: " + status.to_string());
  }
}

Trace Trace::load(const std::string& path) {
  Result<Trace> result =
      try_load(path, TraceLoadOptions{.salvage_sections = false});
  if (!result.ok()) {
    throw std::runtime_error("pythia: " + result.status().to_string());
  }
  return result.take();
}

Result<Trace> load_trace_zero_copy(const unsigned char* data,
                                   std::size_t size) {
  if (size < 8 || std::memcmp(data, kMagicV2, 8) != 0) {
    return Status::unsupported(
        "zero-copy load needs a PYTHIA02 trace with compiled sections");
  }
  BufReader reader(data + 8, size - 8);

  // Registry section: small, parsed fully (terminal ids mean nothing
  // without it). Any damage here fails the load — the caller falls back
  // to the deserializing loader, which can salvage.
  Trace trace;
  std::uint32_t thread_count = 0;
  try {
    if (reader.remaining() < kSectionHeaderBytes) fail("missing registry");
    const SectionHeader header = read_section_header(reader);
    if (!header.header_ok) fail("registry section header checksum");
    if (header.kind != kSectionRegistry) fail("registry section kind");
    if (header.payload_size > reader.remaining()) {
      fail("registry section size");
    }
    std::vector<unsigned char> payload(header.payload_size);
    reader.bytes(payload.data(), payload.size());
    if (support::crc32(payload.data(), payload.size()) !=
        header.payload_crc) {
      fail("registry section checksum");
    }
    BufReader body(payload.data(), payload.size());
    read_registry_tables(body, trace.registry);
    thread_count = body.u32();
    if (thread_count > (1u << 20)) fail("thread count");
    if (!body.at_end()) fail("registry section trailing bytes");
  } catch (const std::exception& error) {
    return Status::corrupt(error.what());
  }

  // Thread sections: *skipped*, not deserialized — that is the point of
  // the zero-copy path. The kernel never faults their pages in; a thread
  // is servable only if a valid compiled section for it follows. Until
  // one arrives the thread is an inert placeholder marked unavailable.
  trace.section_status.assign(
      thread_count,
      Status::invalid_state("thread section not deserialized (zero-copy "
                            "load serves compiled sections only)"));
  trace.compiled_status.assign(
      thread_count, Status::invalid_state("no compiled section in file"));
  for (std::uint32_t t = 0; t < thread_count; ++t) {
    trace.threads.push_back(placeholder_thread());
    if (reader.remaining() < kSectionHeaderBytes) {
      return Status::corrupt("thread section " + std::to_string(t) +
                             " missing (file truncated)");
    }
    const SectionHeader header = read_section_header(reader);
    if (!header.header_ok || header.kind != kSectionThread ||
        header.payload_size > reader.remaining()) {
      return Status::corrupt("thread section " + std::to_string(t) +
                             " header corrupt");
    }
    try {
      reader.skip(header.payload_size);
    } catch (const std::exception& error) {
      return Status::corrupt(error.what());
    }
  }

  // Trailing compiled sections, validated *in place*: the writer 64-byte
  // aligns each blob in the file, so a page-aligned mapping keeps the
  // alignment and CompiledView::parse can point straight at the map. The
  // per-table CRCs inside the blob carry the integrity check; the
  // digest-vs-thread-section cross-check of the deserializing loader is
  // unavailable here (it needs the decoded thread), which is fine — the
  // thread sections are never consulted on this path.
  while (reader.remaining() >= kSectionHeaderBytes) {
    const SectionHeader header = read_section_header(reader);
    if (!header.header_ok || header.payload_size > reader.remaining()) {
      break;  // tail framing lost; serve what parsed so far
    }
    if (header.kind != kSectionCompiled) {
      try {
        reader.skip(header.payload_size);
      } catch (const std::exception&) {
        break;
      }
      continue;
    }
    const unsigned char* payload = reader.cursor();
    reader.skip(header.payload_size);
    Status status;
    std::uint32_t thread_index = thread_count;
    if (header.payload_size < 8) {
      status = Status::corrupt("compiled section truncated");
    } else {
      std::uint32_t pad = 0;
      std::memcpy(&thread_index, payload, 4);
      std::memcpy(&pad, payload + 4, 4);
      if (thread_index >= thread_count) {
        status = Status::corrupt("compiled section thread index");
        thread_index = thread_count;
      } else if (pad > 63 || header.payload_size - 8 < pad) {
        status = Status::corrupt("compiled section padding");
      } else {
        Result<CompiledView> view = CompiledView::parse(
            payload + 8 + pad, header.payload_size - 8 - pad);
        if (!view.ok()) {
          status = view.status();
        } else {
          trace.threads[thread_index].compiled = view.take();
          trace.section_status[thread_index] = Status();
          trace.compiled_status[thread_index] = Status();
        }
      }
    }
    if (!status.ok() && thread_index < thread_count) {
      trace.compiled_status[thread_index] = std::move(status);
    }
  }
  return trace;
}

}  // namespace pythia
