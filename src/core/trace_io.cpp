#include "core/trace_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "support/assert.hpp"

namespace pythia {

namespace {

constexpr char kMagic[8] = {'P', 'Y', 'T', 'H', 'I', 'A', '0', '1'};

class Writer {
 public:
  explicit Writer(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb"), &std::fclose) {
    if (file_ == nullptr) {
      throw std::runtime_error("pythia: cannot open trace file for writing: " +
                               path);
    }
  }

  void bytes(const void* data, std::size_t size) {
    if (std::fwrite(data, 1, size, file_.get()) != size) {
      throw std::runtime_error("pythia: short write to trace file");
    }
  }
  void u8(std::uint8_t v) { bytes(&v, sizeof v); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i32(std::int32_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

 private:
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb"), &std::fclose) {
    if (file_ == nullptr) {
      throw std::runtime_error("pythia: cannot open trace file for reading: " +
                               path);
    }
  }

  void bytes(void* data, std::size_t size) {
    if (std::fread(data, 1, size, file_.get()) != size) {
      throw std::runtime_error("pythia: truncated trace file");
    }
  }
  std::uint8_t u8() {
    std::uint8_t v;
    bytes(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    bytes(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    bytes(&v, sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    bytes(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    bytes(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t size = u32();
    if (size > (1u << 20)) {
      throw std::runtime_error("pythia: corrupt trace file (string size)");
    }
    std::string s(size, '\0');
    bytes(s.data(), size);
    return s;
  }

 private:
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
};

void write_grammar(Writer& writer, const Grammar& grammar) {
  // Remap live rules to dense ids (root stays 0). The relative order of
  // live rules is preserved so that finalize()'s stable node ids are
  // reproduced exactly on load.
  std::vector<const Rule*> live = grammar.rules();
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    remap[live[i]->id] = static_cast<std::uint32_t>(i);
  }
  PYTHIA_ASSERT(!live.empty() && live.front()->id == 0);

  writer.u32(static_cast<std::uint32_t>(live.size()));
  for (const Rule* rule : live) {
    writer.u32(static_cast<std::uint32_t>(rule->length));
    for (const Node* node = rule->head; node != nullptr; node = node->next) {
      Symbol sym = node->sym;
      if (sym.is_rule()) sym = Symbol::rule(remap.at(sym.rule_id()));
      writer.u32(sym.raw());
      writer.u64(node->exp);
    }
  }
}

Grammar read_grammar(Reader& reader) {
  const std::uint32_t rule_count = reader.u32();
  if (rule_count == 0 || rule_count > (1u << 24)) {
    throw std::runtime_error("pythia: corrupt trace file (rule count)");
  }
  std::vector<std::vector<Grammar::BodyEntry>> bodies(rule_count);
  for (std::uint32_t r = 0; r < rule_count; ++r) {
    const std::uint32_t length = reader.u32();
    if (length > (1u << 26)) {
      throw std::runtime_error("pythia: corrupt trace file (body length)");
    }
    bodies[r].reserve(length);
    for (std::uint32_t i = 0; i < length; ++i) {
      const Symbol sym = Symbol::from_raw(reader.u32());
      const std::uint64_t exp = reader.u64();
      if (exp == 0 || (sym.is_rule() && sym.rule_id() >= rule_count)) {
        throw std::runtime_error("pythia: corrupt trace file (body entry)");
      }
      bodies[r].push_back({sym, exp});
    }
  }
  return Grammar::from_bodies(bodies);
}

void write_timing(Writer& writer, const TimingModel& timing) {
  writer.u8(timing.empty() ? 0 : 1);
  if (timing.empty()) return;
  writer.u32(static_cast<std::uint32_t>(timing.contexts().size()));
  for (const auto& [key, stat] : timing.contexts()) {
    writer.u64(key);
    writer.f64(stat.sum_ns);
    writer.u64(stat.count);
  }
}

TimingModel read_timing(Reader& reader) {
  TimingModel timing;
  if (reader.u8() == 0) return timing;
  const std::uint32_t count = reader.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t key = reader.u64();
    TimingModel::DurationStat stat;
    stat.sum_ns = reader.f64();
    stat.count = reader.u64();
    timing.load_context(key, stat);
  }
  return timing;
}

}  // namespace

void Trace::save(const std::string& path) const {
  Writer writer(path);
  writer.bytes(kMagic, sizeof kMagic);

  // Registry.
  writer.u32(static_cast<std::uint32_t>(registry.kind_count()));
  for (std::uint32_t k = 0; k < registry.kind_count(); ++k) {
    writer.str(registry.kind_name(k));
  }
  writer.u32(static_cast<std::uint32_t>(registry.event_count()));
  for (std::uint32_t e = 0; e < registry.event_count(); ++e) {
    writer.u32(registry.kind_of(e));
    writer.i32(registry.aux_of(e));
  }

  // Threads.
  writer.u32(static_cast<std::uint32_t>(threads.size()));
  for (const ThreadTrace& thread : threads) {
    write_grammar(writer, thread.grammar);
    write_timing(writer, thread.timing);
  }
}

Trace Trace::load(const std::string& path) {
  Reader reader(path);
  char magic[8];
  reader.bytes(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof magic) != 0) {
    throw std::runtime_error("pythia: not a PYTHIA trace file: " + path);
  }

  Trace trace;
  const std::uint32_t kinds = reader.u32();
  for (std::uint32_t k = 0; k < kinds; ++k) {
    const std::string name = reader.str();
    const KindId id = trace.registry.intern_kind(name);
    if (id != k) {
      throw std::runtime_error("pythia: corrupt trace file (kind table)");
    }
  }
  const std::uint32_t events = reader.u32();
  for (std::uint32_t e = 0; e < events; ++e) {
    const KindId kind = reader.u32();
    const EventAux aux = reader.i32();
    if (kind >= kinds) {
      throw std::runtime_error("pythia: corrupt trace file (event table)");
    }
    const TerminalId id = trace.registry.intern_event(kind, aux);
    if (id != e) {
      throw std::runtime_error("pythia: corrupt trace file (event table)");
    }
  }

  const std::uint32_t thread_count = reader.u32();
  if (thread_count > (1u << 20)) {
    throw std::runtime_error("pythia: corrupt trace file (thread count)");
  }
  trace.threads.reserve(thread_count);
  for (std::uint32_t t = 0; t < thread_count; ++t) {
    Grammar grammar = read_grammar(reader);
    grammar.finalize();
    TimingModel timing = read_timing(reader);
    trace.threads.push_back(ThreadTrace{std::move(grammar),
                                        std::move(timing)});
  }
  return trace;
}

}  // namespace pythia
