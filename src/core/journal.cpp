#include "core/journal.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "support/crash_point.hpp"
#include "support/crc32.hpp"
#include "support/io.hpp"

namespace pythia {

namespace {

constexpr char kFileMagic[8] = {'P', 'Y', 'J', 'R', 'N', 'L', '0', '1'};
constexpr std::size_t kFileHeaderBytes = 16;
constexpr std::uint32_t kSegmentMagic = 0x534a5950u;  // "PYJS" LE
constexpr std::size_t kSegmentHeaderBytes = 24;
constexpr std::size_t kRecordHeaderBytes = 8;
constexpr std::size_t kMinSegmentBytes = 256;
constexpr std::size_t kMaxSegmentBytes = std::size_t{1} << 30;

void put_u32(unsigned char* out, std::uint32_t v) {
  std::memcpy(out, &v, sizeof v);
}
void put_u64(unsigned char* out, std::uint64_t v) {
  std::memcpy(out, &v, sizeof v);
}
std::uint32_t get_u32(const unsigned char* in) {
  std::uint32_t v;
  std::memcpy(&v, in, sizeof v);
  return v;
}
std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t v;
  std::memcpy(&v, in, sizeof v);
  return v;
}

std::size_t clamp_segment_bytes(std::size_t bytes) {
  return std::clamp(bytes, kMinSegmentBytes, kMaxSegmentBytes);
}

Status pread_full(int fd, unsigned char* out, std::size_t size,
                  std::uint64_t offset, const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::pread(fd, out, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return support::errno_status("pread", path);
    }
    if (n == 0) {
      return Status::io_error("unexpected EOF reading journal tail: " +
                              path);
    }
    out += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return Status();
}

}  // namespace

// --- scan -----------------------------------------------------------------

Result<JournalScan> scan_journal(const std::string& path) {
  std::vector<unsigned char> bytes;
  Status io = support::read_file(path, bytes);
  if (!io.ok()) return io;

  if (bytes.size() < kFileHeaderBytes ||
      std::memcmp(bytes.data(), kFileMagic, sizeof kFileMagic) != 0) {
    return Status::corrupt("not a PYTHIA journal (bad magic or too short): " +
                           path);
  }
  if (support::crc32(bytes.data(), 12) != get_u32(bytes.data() + 12)) {
    return Status::corrupt("journal file header checksum mismatch: " + path);
  }
  const std::size_t segment_bytes = get_u32(bytes.data() + 8);
  if (segment_bytes < kMinSegmentBytes || segment_bytes > kMaxSegmentBytes) {
    return Status::corrupt("journal segment size out of bounds: " + path);
  }

  JournalScan scan;
  scan.segment_bytes = segment_bytes;
  scan.file_bytes = bytes.size();
  scan.valid_bytes = kFileHeaderBytes;

  std::uint64_t seq = 0;
  std::uint64_t events = 0;
  std::size_t pos = kFileHeaderBytes;
  bool stop = false;
  while (!stop && pos < bytes.size()) {
    if (pos + kSegmentHeaderBytes > bytes.size()) {
      scan.torn_note = "truncated segment header at offset " +
                       std::to_string(pos);
      break;
    }
    const unsigned char* head = bytes.data() + pos;
    if (get_u32(head) != kSegmentMagic ||
        support::crc32(head, 20) != get_u32(head + 20)) {
      scan.torn_note = "invalid segment header at offset " +
                       std::to_string(pos);
      break;
    }
    if (get_u64(head + 4) != seq || get_u64(head + 12) != events) {
      scan.torn_note =
          "segment sequence discontinuity at offset " + std::to_string(pos) +
          " (duplicated or reordered segment)";
      break;
    }
    ++scan.segments;
    // The validated header joins the prefix even before any record does:
    // a freshly started (empty, unsealed) tail segment is not damage.
    scan.valid_bytes = pos + kSegmentHeaderBytes;
    const std::size_t seg_end = std::min(pos + segment_bytes, bytes.size());
    const bool sealed = pos + segment_bytes <= bytes.size();
    std::size_t rpos = pos + kSegmentHeaderBytes;
    while (true) {
      if (rpos + kRecordHeaderBytes > seg_end) break;
      const unsigned char* rec = bytes.data() + rpos;
      const std::uint32_t len_type = get_u32(rec + 4);
      if (len_type == 0) break;  // padding begins (sealed segment)
      const auto type = static_cast<std::uint8_t>(len_type >> 24);
      const std::size_t len = len_type & 0xffffffu;
      if (type == 0 ||
          type > static_cast<std::uint8_t>(JournalRecord::Type::kEventDef)) {
        scan.torn_note = "unknown record type at offset " +
                         std::to_string(rpos);
        stop = true;
        break;
      }
      if (rpos + kRecordHeaderBytes + len > seg_end) {
        scan.torn_note = "record overruns its segment at offset " +
                         std::to_string(rpos);
        stop = true;
        break;
      }
      const unsigned char* payload = rec + kRecordHeaderBytes;
      if (record_check(len_type, payload, len, seq) != get_u32(rec)) {
        scan.torn_note = "record checksum mismatch at offset " +
                         std::to_string(rpos) + " (torn or corrupt record)";
        stop = true;
        break;
      }
      JournalRecord record;
      record.type = static_cast<JournalRecord::Type>(type);
      record.seq = seq;
      bool shape_ok = true;
      switch (record.type) {
        case JournalRecord::Type::kEvent:
          shape_ok = len == 12;
          if (shape_ok) {
            record.event = get_u32(payload);
            record.time_ns = get_u64(payload + 4);
          }
          break;
        case JournalRecord::Type::kKind:
          record.name.assign(reinterpret_cast<const char*>(payload), len);
          break;
        case JournalRecord::Type::kEventDef:
          shape_ok = len == 8;
          if (shape_ok) {
            record.kind = get_u32(payload);
            std::int32_t aux;
            std::memcpy(&aux, payload + 4, sizeof aux);
            record.aux = aux;
          }
          break;
        case JournalRecord::Type::kPad:
          shape_ok = false;
          break;
      }
      if (!shape_ok) {
        scan.torn_note = "record payload shape invalid at offset " +
                         std::to_string(rpos);
        stop = true;
        break;
      }
      if (record.type == JournalRecord::Type::kEvent) ++events;
      scan.records.push_back(std::move(record));
      ++seq;
      rpos += kRecordHeaderBytes + len;
      scan.valid_bytes = rpos;
    }
    if (stop) break;
    if (sealed) {
      pos += segment_bytes;
      scan.valid_bytes = pos;  // the pad region belongs to the prefix
    } else {
      // Unsealed tail segment: the journal ends with its last valid
      // record; anything after it (a torn pad, garbage) is tail.
      break;
    }
  }

  scan.event_records = events;
  scan.torn = scan.valid_bytes < scan.file_bytes;
  if (scan.torn && scan.torn_note.empty()) {
    scan.torn_note = "unreachable bytes after offset " +
                     std::to_string(scan.valid_bytes);
  }
  return scan;
}

// --- writer ---------------------------------------------------------------

JournalWriter::~JournalWriter() { release(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept {
  *this = std::move(other);
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this == &other) return *this;
  release();
  fd_ = other.fd_;
  other.fd_ = -1;
  path_ = std::move(other.path_);
  options_ = other.options_;
  buffer_ = std::move(other.buffer_);
  buffer_used_ = other.buffer_used_;
  buffer_flushed_ = other.buffer_flushed_;
  next_seq_ = other.next_seq_;
  event_count_ = other.event_count_;
  events_since_flush_ = other.events_since_flush_;
  events_since_sync_ = other.events_since_sync_;
  return *this;
}

void JournalWriter::release() {
  // Crash semantics: buffered records are dropped, not flushed. close()
  // is the orderly path.
  if (fd_ >= 0) {
    support::close_noeintr(fd_);
    fd_ = -1;
  }
}

Result<JournalWriter> JournalWriter::create(const std::string& path,
                                            const JournalOptions& options) {
  JournalWriter writer;
  writer.path_ = path;
  writer.options_ = options;
  writer.options_.segment_bytes = clamp_segment_bytes(options.segment_bytes);

  writer.fd_ = support::open_noeintr(
      path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC);
  if (writer.fd_ < 0) return support::errno_status("open", path);

  unsigned char header[kFileHeaderBytes];
  std::memcpy(header, kFileMagic, sizeof kFileMagic);
  put_u32(header + 8,
          static_cast<std::uint32_t>(writer.options_.segment_bytes));
  put_u32(header + 12, support::crc32(header, 12));
  Status status = support::full_write(writer.fd_, header, sizeof header, path);
  if (status.ok()) status = support::fsync_fd(writer.fd_, path);
  if (status.ok()) {
    status = support::fsync_path(support::parent_dir(path));
  }
  if (!status.ok()) return status;

  writer.start_segment();
  return writer;
}

Result<JournalWriter> JournalWriter::resume(const std::string& path,
                                            const JournalOptions& options,
                                            const JournalScan& scan) {
  JournalWriter writer;
  writer.path_ = path;
  writer.options_ = options;
  // The on-disk segment size is part of the format; it wins over the
  // options so mixed-configuration resumes cannot corrupt the framing.
  writer.options_.segment_bytes = scan.segment_bytes;
  writer.next_seq_ = scan.records.size();
  writer.event_count_ = scan.event_records;

  writer.fd_ = support::open_noeintr(path.c_str(), O_RDWR | O_CLOEXEC);
  if (writer.fd_ < 0) return support::errno_status("open", path);

  // Truncate the torn tail so the resumed stream is append-only again.
  int rc;
  do {
    rc = ::ftruncate(writer.fd_, static_cast<off_t>(scan.valid_bytes));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return support::errno_status("ftruncate", path);
  Status status = support::fsync_fd(writer.fd_, path);
  if (!status.ok()) return status;

  const std::uint64_t body = scan.valid_bytes - kFileHeaderBytes;
  const std::size_t partial = static_cast<std::size_t>(
      body % writer.options_.segment_bytes);
  if (partial == 0) {
    writer.start_segment();
  } else {
    // Reload the active tail segment so sealing can pad it correctly.
    const std::uint64_t seg_start = kFileHeaderBytes + (body - partial);
    writer.buffer_.assign(writer.options_.segment_bytes, 0);
    status = pread_full(writer.fd_, writer.buffer_.data(), partial,
                        seg_start, path);
    if (!status.ok()) return status;
    writer.buffer_used_ = partial;
    writer.buffer_flushed_ = partial;
  }
  if (::lseek(writer.fd_, static_cast<off_t>(scan.valid_bytes), SEEK_SET) ==
      static_cast<off_t>(-1)) {
    return support::errno_status("lseek", path);
  }
  return writer;
}

void JournalWriter::start_segment() {
  // One zero-fill per segment keeps the eventual pad region pre-zeroed,
  // so sealing and the per-record hot path never write padding.
  buffer_.assign(options_.segment_bytes, 0);
  buffer_flushed_ = 0;
  put_u32(buffer_.data(), kSegmentMagic);
  put_u64(buffer_.data() + 4, next_seq_);
  put_u64(buffer_.data() + 12, event_count_);
  put_u32(buffer_.data() + 20, support::crc32(buffer_.data(), 20));
  buffer_used_ = kSegmentHeaderBytes;
}

Status JournalWriter::seal_segment() {
  support::crash_point("journal.seal");
  buffer_used_ = options_.segment_bytes;  // pad region is already zero
  Status status = flush();
  if (!status.ok()) return status;
  if (options_.sync_on_seal) {
    status = support::fsync_fd(fd_, path_);
    if (!status.ok()) return status;
    events_since_sync_ = 0;
  }
  start_segment();
  support::crash_point("journal.sealed");
  return Status();
}

Status JournalWriter::append_record(JournalRecord::Type type,
                                    const void* payload, std::size_t size) {
  if (fd_ < 0) {
    return Status::invalid_state("journal writer is closed: " + path_);
  }
  const std::size_t max_payload =
      options_.segment_bytes - kSegmentHeaderBytes - kRecordHeaderBytes;
  if (size > max_payload) {
    return Status::invalid_state(
        "journal record larger than a segment (" + std::to_string(size) +
        " > " + std::to_string(max_payload) + " bytes): " + path_);
  }
  if (buffer_used_ + kRecordHeaderBytes + size > options_.segment_bytes) {
    const Status status = seal_segment();
    if (!status.ok()) return status;
  }
  const std::uint32_t len_type =
      (static_cast<std::uint32_t>(type) << 24) |
      static_cast<std::uint32_t>(size);
  const std::uint32_t check = record_check(len_type, payload, size, next_seq_);
  unsigned char* out = buffer_.data() + buffer_used_;
  put_u32(out, check);
  put_u32(out + 4, len_type);
  if (size > 0) std::memcpy(out + 8, payload, size);
  buffer_used_ += kRecordHeaderBytes + size;
  ++next_seq_;
  return Status();
}

Status JournalWriter::append_event_slow(TerminalId event,
                                        std::uint64_t time_ns) {
  unsigned char payload[12];
  put_u32(payload, event);
  put_u64(payload + 4, time_ns);
  const Status status = append_record(JournalRecord::Type::kEvent, payload,
                                      sizeof payload);
  if (!status.ok()) return status;
  ++event_count_;
  ++events_since_flush_;
  ++events_since_sync_;
  if (options_.sync_every_events > 0 &&
      events_since_sync_ >= options_.sync_every_events) {
    return sync();
  }
  if (options_.flush_every_events > 0 &&
      events_since_flush_ >= options_.flush_every_events) {
    return flush();
  }
  return Status();
}

Status JournalWriter::append_kind(std::string_view name) {
  return append_record(JournalRecord::Type::kKind, name.data(), name.size());
}

Status JournalWriter::append_event_def(KindId kind, EventAux aux) {
  unsigned char payload[8];
  put_u32(payload, kind);
  std::int32_t aux32 = aux;
  std::memcpy(payload + 4, &aux32, sizeof aux32);
  return append_record(JournalRecord::Type::kEventDef, payload,
                       sizeof payload);
}

Status JournalWriter::flush() {
  if (fd_ < 0) {
    return Status::invalid_state("journal writer is closed: " + path_);
  }
  if (buffer_flushed_ < buffer_used_) {
    const Status status =
        support::full_write(fd_, buffer_.data() + buffer_flushed_,
                            buffer_used_ - buffer_flushed_, path_);
    if (!status.ok()) return status;
    buffer_flushed_ = buffer_used_;
  }
  events_since_flush_ = 0;
  return Status();
}

Status JournalWriter::sync() {
  Status status = flush();
  if (!status.ok()) return status;
  support::crash_point("journal.sync");
  status = support::fsync_fd(fd_, path_);
  if (!status.ok()) return status;
  events_since_sync_ = 0;
  return Status();
}

Status JournalWriter::close() {
  if (fd_ < 0) return Status();
  Status status = sync();
  if (support::close_noeintr(fd_) != 0 && status.ok()) {
    status = support::errno_status("close", path_);
  }
  fd_ = -1;
  return status;
}

}  // namespace pythia
