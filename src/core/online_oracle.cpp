#include "core/online_oracle.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/io.hpp"

namespace pythia {

OnlineOracle::OnlineOracle(const Options& options) : options_(options) {
  window_.assign(std::max<std::size_t>(1, options_.ramp_window), 0);
  required_samples_ = std::min(options_.ramp_min_samples, window_.size());
  next_snapshot_at_ = std::max<std::uint64_t>(1, options_.min_snapshot_events);
}

OnlineOracle OnlineOracle::in_memory(const Options& options) {
  OnlineOracle oracle(options);
  // The event log is the snapshot source, so timestamps are not optional
  // here: every snapshot rebuild and timing-model replay reads it.
  oracle.recorder_ = std::make_unique<Recorder>(
      Recorder::Options{.record_timestamps = true});
  return oracle;
}

Result<OnlineOracle> OnlineOracle::open(const std::string& dir,
                                        const Options& options,
                                        SessionOptions session) {
  session.record_timestamps = true;  // the log is the snapshot source
  Result<RecordSession> opened = RecordSession::open(dir, session);
  if (!opened.ok()) return opened.status();

  OnlineOracle oracle(options);
  oracle.session_ = std::make_unique<RecordSession>(opened.take());
  if (oracle.session_->event_count() > 0) {
    // Crash recovery: the session rebuilt the journaled log; re-running
    // the score/track/snapshot/ramp pipeline over it reproduces, state
    // bit for state, the oracle a never-killed run would hold at the
    // same event count (the pipeline is deterministic in the log).
    oracle.replay_history();
  }
  return oracle;
}

const Grammar& OnlineOracle::live_grammar() const {
  return session_ ? session_->grammar() : recorder_->grammar();
}

const std::vector<TimedEvent>& OnlineOracle::event_log() const {
  return session_ ? session_->event_log() : recorder_->log();
}

const Predictor::Stats& OnlineOracle::predictor_stats() const {
  static const Predictor::Stats kNone{};
  return snapshot_ ? snapshot_->predictor->stats() : kNone;
}

Health OnlineOracle::health() const {
  if (ramp_ != Ramp::kServing || snapshot_ == nullptr) {
    return Health::kDegraded;
  }
  return snapshot_->predictor->health();
}

void OnlineOracle::observe(TerminalId event, std::uint64_t now_ns) {
  // Learn first (WAL ordering: the journal must see the event before any
  // derived state does), then witness, then maybe refresh — recovery
  // replays witness+refresh over the recovered log in exactly this
  // order, which is what makes the ramp resume where it left off.
  if (session_ != nullptr) {
    if (event >= session_->registry().event_count() && registry_sync_) {
      (void)registry_sync_(*session_);
    }
    const std::uint64_t before = session_->event_count();
    (void)session_->event(event, now_ns);
    if (session_->event_count() == before) {
      return;  // rejected (id never interned) — not part of the log
    }
  } else {
    recorder_->record(event, now_ns);
  }
  witness(event);
  maybe_refresh(stats_.events);
}

void OnlineOracle::witness(TerminalId event) {
  ++stats_.events;

  if (snapshot_ != nullptr) {
    // Self-scoring: did the snapshot foresee this event one step out?
    // A breaker-suppressed or unsynchronized predictor answers nullopt,
    // which scores as a miss — the ramp stays (or falls) closed while
    // tracking is lost and reopens only after the breaker's probing has
    // caught the stream again and accuracy recovers.
    ++stats_.scored;
    const std::optional<Prediction> expected =
        snapshot_->predictor->predict(1);
    const bool hit = expected.has_value() && expected->event == event;
    if (hit) ++stats_.hits;
    snapshot_->predictor->observe(event);
    record_outcome(hit);

    const double accuracy = confidence();
    if (ramp_ == Ramp::kServing) {
      if (window_count_ >= std::min(options_.ramp_min_samples,
                                    window_.size()) &&
          accuracy < options_.drop_below) {
        // Trip: stop serving, demand a doubled streak of clean samples
        // before serving again (capped at the window size — the window
        // cannot hold more evidence than that).
        ramp_ = Ramp::kWithheld;
        ++stats_.ramp_trips;
        required_samples_ =
            std::min(std::max<std::size_t>(1, required_samples_) * 2,
                     window_.size());
        reset_window();
      }
    } else if (window_count_ >= required_samples_ &&
               accuracy >= options_.serve_above) {
      if (ramp_ == Ramp::kLearning) {
        stats_.first_served_event = stats_.events;
      }
      ramp_ = Ramp::kServing;
    }
  }

  if (ramp_ == Ramp::kServing) {
    ++stats_.served_events;
  } else {
    ++stats_.withheld_events;
  }

  if (options_.history_every != 0 &&
      stats_.events % options_.history_every == 0) {
    history_.push_back({stats_.events,
                        window_count_ == 0 ? 0.0 : confidence(),
                        ramp_ == Ramp::kServing, snapshot_rules()});
  }
}

void OnlineOracle::record_outcome(bool hit) {
  const std::uint8_t outcome = hit ? 1 : 0;
  if (window_count_ == window_.size()) {
    window_hits_ -= window_[window_next_];
  } else {
    ++window_count_;
  }
  window_[window_next_] = outcome;
  window_hits_ += outcome;
  window_next_ = (window_next_ + 1) % window_.size();
}

void OnlineOracle::reset_window() {
  // The ring's stale bytes are NOT cleared: they are a deterministic
  // function of the event stream, so recovery replay reproduces them and
  // ramp_digest() can hash the buffer verbatim.
  window_count_ = 0;
  window_hits_ = 0;
}

void OnlineOracle::maybe_refresh(std::uint64_t prefix_len) {
  if (prefix_len < next_snapshot_at_) return;
  rebuild_snapshot(prefix_len);
  const auto grown = static_cast<std::uint64_t>(
      static_cast<double>(prefix_len) * options_.snapshot_growth);
  next_snapshot_at_ = std::max(prefix_len + 1, grown);
}

void OnlineOracle::rebuild_snapshot(std::uint64_t prefix_len) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<TimedEvent>& log = event_log();
  PYTHIA_ASSERT(prefix_len <= log.size());
  const auto n = static_cast<std::size_t>(prefix_len);

  // A virtual-clock run that never advances journals all-zero stamps;
  // replaying those would only poison the timing model (same rule as
  // recover_session). The scan is monotone and incremental across
  // publishes — the old per-publish rescan was itself O(log) and would
  // have capped the incremental speedup.
  while (!timestamped_seen_ && timestamp_scan_ < n) {
    timestamped_seen_ = log[timestamp_scan_].time_ns() != 0;
    ++timestamp_scan_;
  }
  const bool timestamped = timestamped_seen_;

  auto snapshot = std::make_unique<Snapshot>();
  // The incremental finalizer syncs its shadow against the *live*
  // grammar, so it only applies when the publish covers the full live
  // length. Recovery's historical replays (the live grammar is already
  // fully grown while stats_.events walks the log) fall back to full
  // replay; the final replay publish at prefix == live length may
  // bootstrap incrementally. Snapshot content is bit-identical either
  // way, which is what keeps ramp_digest() in lockstep with a
  // never-crashed twin.
  const bool incremental = !options_.full_rebuild &&
                           prefix_len == live_grammar().sequence_length();
  if (incremental) {
    Grammar& live =
        session_ ? session_->mutable_grammar() : recorder_->mutable_grammar();
    if (finalizer_ == nullptr) {
      // Lazy: dirty stamps cost nothing until the first incremental
      // publish, and the finalizer's first publish bootstraps with a
      // full sweep regardless of what the stamps missed before now.
      finalizer_ = std::make_unique<IncrementalFinalizer>();
      live.enable_dirty_tracking();
    }
    finalizer_->publish(live, log, timestamped);
    snapshot->grammar = &finalizer_->grammar();
    snapshot->timing = &finalizer_->timing();
    snapshot->incremental = true;
  } else {
    snapshot->owned_grammar = std::make_unique<Grammar>();
    for (std::size_t i = 0; i < n; ++i) {
      snapshot->owned_grammar->append(log[i].event);
    }
    snapshot->owned_grammar->finalize();
    snapshot->owned_timing = std::make_unique<TimingModel>();
    if (timestamped) {
      const std::vector<TimedEvent> prefix(
          log.begin(), log.begin() + static_cast<std::ptrdiff_t>(n));
      *snapshot->owned_timing =
          TimingModel::replay(*snapshot->owned_grammar, prefix);
    }
    snapshot->grammar = snapshot->owned_grammar.get();
    snapshot->timing = snapshot->owned_timing.get();
  }

  snapshot->predictor = std::make_unique<Predictor>(
      *snapshot->grammar,
      snapshot->timing->empty() ? nullptr : snapshot->timing,
      options_.predictor);

  // Warm-up: replay the log tail (unscored) so the fresh predictor is
  // anchored at the current execution point the moment it takes over —
  // otherwise every snapshot swap would cost a re-anchor and a miss.
  const std::size_t warm =
      std::min<std::size_t>(options_.warmup_replay, n);
  for (std::size_t i = n - warm; i < n; ++i) {
    snapshot->predictor->observe(log[i].event);
  }

  snapshot->events = prefix_len;
  snapshot_ = std::move(snapshot);
  ++stats_.snapshots;

  // Telemetry (not part of ramp_digest(): a recovered run reports its own
  // publish counts, not the dead twin's, while the digest must match).
  ++telemetry_.publishes;
  telemetry_.last_incremental = incremental;
  if (incremental) {
    ++telemetry_.incremental;
    telemetry_.last_dirty_rules = finalizer_->stats().last_dirty_rules;
    telemetry_.last_closure_rules = finalizer_->stats().last_closure_rules;
  } else {
    ++telemetry_.full;
    telemetry_.last_dirty_rules = 0;
    telemetry_.last_closure_rules = 0;
  }
  telemetry_.last_publish_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  if (session_ != nullptr) write_telemetry_sidecar();
}

void OnlineOracle::write_telemetry_sidecar() {
  // Advisory text file next to the journal; temp+rename so readers
  // (trace_inspect) never see a torn write. It describes the last
  // *completed* publish, so a crash mid-publish leaves the previous one.
  const std::uint64_t bootstraps =
      finalizer_ ? finalizer_->stats().bootstraps : 0;
  char buf[512];
  const int len = std::snprintf(
      buf, sizeof buf,
      "publishes=%llu\n"
      "incremental=%llu\n"
      "full=%llu\n"
      "bootstraps=%llu\n"
      "last_incremental=%d\n"
      "last_publish_ns=%llu\n"
      "last_dirty_rules=%llu\n"
      "last_closure_rules=%llu\n"
      "events=%llu\n"
      "snapshot_rules=%llu\n",
      static_cast<unsigned long long>(telemetry_.publishes),
      static_cast<unsigned long long>(telemetry_.incremental),
      static_cast<unsigned long long>(telemetry_.full),
      static_cast<unsigned long long>(bootstraps),
      telemetry_.last_incremental ? 1 : 0,
      static_cast<unsigned long long>(telemetry_.last_publish_ns),
      static_cast<unsigned long long>(telemetry_.last_dirty_rules),
      static_cast<unsigned long long>(telemetry_.last_closure_rules),
      static_cast<unsigned long long>(stats_.events),
      static_cast<unsigned long long>(snapshot_rules()));
  if (len <= 0) return;
  (void)support::write_file_atomic(session_->dir() + "/online_telemetry", buf,
                                   static_cast<std::size_t>(len));
}

void OnlineOracle::replay_history() {
  const std::vector<TimedEvent>& log = event_log();
  const std::size_t total = log.size();
  for (std::size_t i = 0; i < total; ++i) {
    witness(log[i].event);
    maybe_refresh(stats_.events);
  }
}

std::optional<Prediction> OnlineOracle::predict(std::size_t distance) const {
  if (ramp_ != Ramp::kServing || snapshot_ == nullptr) return std::nullopt;
  return snapshot_->predictor->predict(distance);
}

std::optional<double> OnlineOracle::predict_time_ns(
    std::size_t distance) const {
  if (ramp_ != Ramp::kServing || snapshot_ == nullptr) return std::nullopt;
  return snapshot_->predictor->predict_time_ns(distance);
}

std::uint64_t OnlineOracle::reference_occurrences(TerminalId event) const {
  if (ramp_ != Ramp::kServing || snapshot_ == nullptr) return 0;
  return snapshot_->predictor->reference_occurrences(event);
}

std::uint64_t OnlineOracle::ramp_digest() const {
  using support::hash_combine;
  std::uint64_t h = 0x0431e0c1e0431e0cULL;
  h = hash_combine(h, stats_.events);
  h = hash_combine(h, stats_.snapshots);
  h = hash_combine(h, stats_.scored);
  h = hash_combine(h, stats_.hits);
  h = hash_combine(h, stats_.served_events);
  h = hash_combine(h, stats_.withheld_events);
  h = hash_combine(h, stats_.ramp_trips);
  h = hash_combine(h, stats_.first_served_event);
  h = hash_combine(h, static_cast<std::uint64_t>(ramp_));
  h = hash_combine(h, window_count_);
  h = hash_combine(h, window_hits_);
  h = hash_combine(h, window_next_);
  for (std::uint8_t outcome : window_) h = hash_combine(h, outcome);
  h = hash_combine(h, required_samples_);
  h = hash_combine(h, next_snapshot_at_);
  if (snapshot_ != nullptr) {
    h = hash_combine(h, snapshot_->events);
    h = hash_combine(h, snapshot_->grammar->rule_count());
    h = hash_combine(h, snapshot_->grammar->sequence_length());
    const Predictor& predictor = *snapshot_->predictor;
    h = hash_combine(h, static_cast<std::uint64_t>(predictor.health()));
    h = hash_combine(h, predictor.candidate_count());
    h = hash_combine(h, std::bit_cast<std::uint64_t>(predictor.confidence()));
    const Predictor::Stats& stats = predictor.stats();
    h = hash_combine(h, stats.observed);
    h = hash_combine(h, stats.advanced);
    h = hash_combine(h, stats.reanchored);
    h = hash_combine(h, stats.unknown);
    h = hash_combine(h, stats.anchors);
    h = hash_combine(h, stats.anchors_suppressed);
  }
  return h;
}

ThreadTrace OnlineOracle::finish() && {
  if (session_ != nullptr) {
    Result<Trace> finished = std::move(*session_).finish();
    if (finished.ok()) {
      Trace trace = finished.take();
      PYTHIA_ASSERT(!trace.threads.empty());
      return std::move(trace.threads[0]);
    }
    // The trace file could not be written (the journal on disk still
    // holds every event — trace_recover can rebuild it); degrade to an
    // empty trace rather than aborting the host application.
    ThreadTrace empty;
    empty.grammar.finalize();
    return empty;
  }
  return std::move(*recorder_).finish();
}

}  // namespace pythia
