// PYTHIA-RECORD: per-thread event recording (paper §II-A).
//
// One Recorder per thread of the instrumented application. Events reduce
// into the grammar on the fly; when timestamp recording is enabled the
// raw (event, time) log is kept so that finish() can replay it against
// the final grammar and build the context-sensitive timing model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/compile.hpp"
#include "core/grammar.hpp"
#include "core/timing.hpp"
#include "support/assert.hpp"

namespace pythia {

/// The recorded behaviour of one thread: the reference-execution grammar
/// plus (optionally) its timing model. This is what the trace file stores
/// per thread and what the predictor consumes.
///
/// When the trace was loaded from a file with a compiled section (or
/// compiled in memory), `compiled_blob` owns the blob bytes and
/// `compiled` is the validated view into them — Oracle::predict() then
/// serves from the CompiledPredictor instead of the interpreted one.
/// The view points into the blob, which vector moves keep stable, so
/// ThreadTrace stays freely movable.
struct ThreadTrace {
  Grammar grammar;
  TimingModel timing;
  std::vector<unsigned char> compiled_blob;
  CompiledView compiled;  ///< valid() only when the blob parsed clean

  /// Builds (or rebuilds) the compiled artifact from the grammar/timing
  /// in memory. Returns false when the grammar is not compilable.
  bool compile(const CompileOptions& options = {});
};

class Recorder {
 public:
  struct Options {
    /// Record per-event timestamps for duration prediction (§II-C). Costs
    /// 12 bytes per event in memory until finish().
    bool record_timestamps = false;
  };

  Recorder() : options_{} {}
  explicit Recorder(Options options) : options_(options) {}

  /// Resumes recording from recovered state (the crash-safe session
  /// layer): a grammar rebuilt from a checkpoint/journal — which must not
  /// be finalized — plus the timestamp log replayed so far.
  Recorder(Options options, Grammar&& grammar, std::vector<TimedEvent>&& log)
      : options_(options), grammar_(std::move(grammar)), log_(std::move(log)) {
    PYTHIA_ASSERT(!grammar_.finalized());
  }

  /// Submits one event; `now_ns` is only stored when timestamp recording
  /// is on (pass the runtime's clock — wall or virtual).
  void record(TerminalId event, std::uint64_t now_ns = 0) {
    grammar_.append(event);
    if (options_.record_timestamps) {
      // Packed single-vector log (12 bytes/event on one stream) with
      // explicit geometric growth: one reserve per doubling, no
      // per-event reallocation check beyond the capacity test.
      if (log_.size() == log_.capacity()) {
        log_.reserve(log_.empty() ? kInitialLogCapacity
                                  : log_.capacity() * 2);
      }
      log_.push_back(TimedEvent::make(event, now_ns));
    }
  }

  std::uint64_t event_count() const { return grammar_.sequence_length(); }
  const Grammar& grammar() const { return grammar_; }
  /// Mutable access for the incremental finalizer (dirty-epoch drains).
  Grammar& mutable_grammar() { return grammar_; }

  /// The raw (event, time) log — empty unless record_timestamps is on.
  const std::vector<TimedEvent>& log() const { return log_; }

  /// Ends the reference execution: finalizes the grammar and, when
  /// timestamps were recorded, replays them to build the timing model.
  /// The recorder is consumed.
  ThreadTrace finish() && {
    grammar_.finalize();
    TimingModel timing;
    if (options_.record_timestamps && !log_.empty()) {
      timing = TimingModel::replay(grammar_, log_);
    }
    ThreadTrace trace;
    trace.grammar = std::move(grammar_);
    trace.timing = std::move(timing);
    return trace;
  }

 private:
  static constexpr std::size_t kInitialLogCapacity = 4096;

  Options options_;
  Grammar grammar_;
  std::vector<TimedEvent> log_;
};

}  // namespace pythia
