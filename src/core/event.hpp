// Event model: what runtime systems submit to PYTHIA.
//
// Following §II-A of the paper, an event is "an integer that identifies the
// key point and optionally additional information such as a timestamp, or
// the destination of an MPI message". We intern (kind, aux) pairs into
// dense terminal ids so the grammar distinguishes e.g. MPI_Send(dst=1)
// from MPI_Send(dst=2) — the payloads are part of the pattern the oracle
// must predict.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/symbol.hpp"
#include "support/assert.hpp"

namespace pythia {

/// Identifier of an event *kind* (a key point: function, region, ...).
using KindId = std::uint32_t;

/// Auxiliary payload attached to an event kind (peer rank, op, root, ...).
/// kNoAux means "no payload".
using EventAux = std::int32_t;
inline constexpr EventAux kNoAux = -1;

/// Interns event kinds and (kind, aux) pairs into dense terminal ids.
///
/// The registry is shared between the recording and predicting runs of an
/// application (it is serialized into the trace file) so that terminal ids
/// are stable across executions.
class EventRegistry {
 public:
  /// Interns a key-point name; idempotent.
  KindId intern_kind(std::string_view name) {
    auto it = kind_by_name_.find(std::string(name));
    if (it != kind_by_name_.end()) return it->second;
    const KindId id = static_cast<KindId>(kind_names_.size());
    kind_names_.emplace_back(name);
    kind_by_name_.emplace(std::string(name), id);
    return id;
  }

  /// Interns an event (kind + optional payload) into a terminal id.
  TerminalId intern_event(KindId kind, EventAux aux = kNoAux) {
    PYTHIA_ASSERT(kind < kind_names_.size());
    const std::uint64_t key =
        (static_cast<std::uint64_t>(kind) << 32u) |
        static_cast<std::uint32_t>(aux);
    auto it = event_by_key_.find(key);
    if (it != event_by_key_.end()) return it->second;
    const auto id = static_cast<TerminalId>(events_.size());
    events_.push_back({kind, aux});
    event_by_key_.emplace(key, id);
    return id;
  }

  /// Convenience: intern kind by name and event in one call.
  TerminalId intern(std::string_view name, EventAux aux = kNoAux) {
    return intern_event(intern_kind(name), aux);
  }

  /// Const lookups that never intern — the read-only half of the intern
  /// calls above, split out so concurrent callers (SharedRegistry) can
  /// resolve already-registered ids under a shared lock.
  bool find_kind(std::string_view name, KindId& out) const {
    auto it = kind_by_name_.find(std::string(name));
    if (it == kind_by_name_.end()) return false;
    out = it->second;
    return true;
  }
  bool find_event(KindId kind, EventAux aux, TerminalId& out) const {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(kind) << 32u) |
        static_cast<std::uint32_t>(aux);
    auto it = event_by_key_.find(key);
    if (it == event_by_key_.end()) return false;
    out = it->second;
    return true;
  }

  std::size_t kind_count() const { return kind_names_.size(); }
  std::size_t event_count() const { return events_.size(); }

  const std::string& kind_name(KindId kind) const {
    PYTHIA_ASSERT(kind < kind_names_.size());
    return kind_names_[kind];
  }

  KindId kind_of(TerminalId id) const {
    PYTHIA_ASSERT(id < events_.size());
    return events_[id].kind;
  }

  EventAux aux_of(TerminalId id) const {
    PYTHIA_ASSERT(id < events_.size());
    return events_[id].aux;
  }

  /// Renumbers kinds by name and events by (kind name, aux), returning
  /// the old-id -> new-id terminal map. Interning order is first-come —
  /// with ranks interning concurrently it depends on thread scheduling —
  /// so a freshly recorded registry is not reproducible run to run. The
  /// harness calls this once at record aggregation (single-threaded, ids
  /// no longer live in any interner cache) and remaps each grammar's
  /// terminals to match, which makes recorded traces deterministic.
  std::vector<TerminalId> canonicalize() {
    std::vector<KindId> kind_order(kind_names_.size());
    for (KindId i = 0; i < kind_order.size(); ++i) kind_order[i] = i;
    std::sort(kind_order.begin(), kind_order.end(),
              [&](KindId a, KindId b) { return kind_names_[a] < kind_names_[b]; });
    std::vector<KindId> kind_remap(kind_names_.size());
    for (KindId fresh = 0; fresh < kind_order.size(); ++fresh) {
      kind_remap[kind_order[fresh]] = fresh;
    }

    std::vector<TerminalId> event_order(events_.size());
    for (TerminalId i = 0; i < event_order.size(); ++i) event_order[i] = i;
    std::sort(event_order.begin(), event_order.end(),
              [&](TerminalId a, TerminalId b) {
                const EventRecord& ea = events_[a];
                const EventRecord& eb = events_[b];
                if (ea.kind != eb.kind) {
                  return kind_remap[ea.kind] < kind_remap[eb.kind];
                }
                return ea.aux < eb.aux;
              });
    std::vector<TerminalId> remap(events_.size());
    for (TerminalId fresh = 0; fresh < event_order.size(); ++fresh) {
      remap[event_order[fresh]] = fresh;
    }

    std::vector<std::string> kind_names(kind_names_.size());
    for (KindId old = 0; old < kind_names_.size(); ++old) {
      kind_names[kind_remap[old]] = std::move(kind_names_[old]);
    }
    kind_names_ = std::move(kind_names);
    kind_by_name_.clear();
    for (KindId id = 0; id < kind_names_.size(); ++id) {
      kind_by_name_.emplace(kind_names_[id], id);
    }

    std::vector<EventRecord> events(events_.size());
    for (TerminalId old = 0; old < events_.size(); ++old) {
      events[remap[old]] = {kind_remap[events_[old].kind], events_[old].aux};
    }
    events_ = std::move(events);
    event_by_key_.clear();
    for (TerminalId id = 0; id < events_.size(); ++id) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(events_[id].kind) << 32u) |
          static_cast<std::uint32_t>(events_[id].aux);
      event_by_key_.emplace(key, id);
    }
    return remap;
  }

  /// Human-readable form, e.g. "MPI_Send(3)" or "GOMP_parallel".
  std::string describe(TerminalId id) const {
    const auto& record = events_[id];
    std::string out = kind_name(record.kind);
    if (record.aux != kNoAux) {
      out += "(" + std::to_string(record.aux) + ")";
    }
    return out;
  }

 private:
  struct EventRecord {
    KindId kind;
    EventAux aux;
  };

  std::vector<std::string> kind_names_;
  std::unordered_map<std::string, KindId> kind_by_name_;
  std::vector<EventRecord> events_;
  std::unordered_map<std::uint64_t, TerminalId> event_by_key_;

  friend class TraceWriter;  // serializes the tables directly
  friend class TraceReader;
};

}  // namespace pythia
