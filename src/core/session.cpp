#include "core/session.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "support/crash_point.hpp"
#include "support/crc32.hpp"
#include "support/io.hpp"

namespace pythia {

namespace {

constexpr const char* kJournalName = "journal.pyj";
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kTraceName = "trace.pythia";

std::string join(const std::string& dir, const char* name) {
  return dir + "/" + name;
}

/// One validated manifest entry.
struct ManifestEntry {
  std::uint64_t events = 0;
  std::string file;
};

/// "ckpt <events> <file>" — the checksummed part of a manifest line.
std::string manifest_body(std::uint64_t events, const std::string& file) {
  return "ckpt " + std::to_string(events) + " " + file;
}

char hex_digit(std::uint32_t nibble) {
  return static_cast<char>(nibble < 10 ? '0' + nibble : 'a' + nibble - 10);
}

std::string crc_hex(const std::string& body) {
  const std::uint32_t crc = support::crc32(body.data(), body.size());
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[7 - i] = hex_digit((crc >> (4 * i)) & 0xfu);
  }
  return out;
}

/// Parses the manifest, ignoring lines whose checksum fails (a torn
/// final line is expected after a crash) — each skip is noted.
std::vector<ManifestEntry> parse_manifest(const std::string& path,
                                          std::vector<std::string>& notes) {
  std::vector<ManifestEntry> entries;
  std::vector<unsigned char> bytes;
  if (!support::read_file(path, bytes).ok()) return entries;
  const std::string text(bytes.begin(), bytes.end());
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    bool valid = false;
    const std::size_t crc_at = line.find_last_of(' ');
    if (crc_at != std::string::npos && line.size() - crc_at - 1 == 8) {
      const std::string body = line.substr(0, crc_at);
      if (line.compare(crc_at + 1, 8, crc_hex(body)) == 0 &&
          body.rfind("ckpt ", 0) == 0) {
        const std::size_t file_at = body.find(' ', 5);
        if (file_at != std::string::npos && file_at + 1 < body.size()) {
          ManifestEntry entry;
          entry.events =
              std::strtoull(body.c_str() + 5, nullptr, 10);
          entry.file = body.substr(file_at + 1);
          entries.push_back(std::move(entry));
          valid = true;
        }
      }
    }
    if (!valid) {
      notes.push_back("manifest: ignored invalid line (torn or corrupt): " +
                      line.substr(0, 64));
    }
  }
  return entries;
}

/// Everything recovery reconstructs from a session directory. The
/// grammar is NOT finalized (a resumed session keeps appending).
struct RecoveredState {
  EventRegistry registry;
  Grammar grammar;
  std::vector<TimedEvent> log;  ///< full journaled (event, time) stream
  JournalScan scan;
  std::vector<std::pair<std::uint64_t, std::string>> checkpoints;
  std::uint64_t checkpoint_events = 0;
  bool used_checkpoint = false;
};

/// Core recovery: newest covered-and-valid checkpoint + journal replay.
Result<RecoveredState> recover_state(const std::string& dir,
                                     RecoveryInfo& info) {
  RecoveredState state;

  Result<JournalScan> scanned = scan_journal(join(dir, kJournalName));
  if (!scanned.ok()) return scanned.status();
  state.scan = scanned.take();
  info.recovered = true;
  info.journaled_events = state.scan.event_records;
  info.torn_bytes = state.scan.torn_tail_bytes();
  if (state.scan.torn) {
    info.notes.push_back("journal: " + state.scan.torn_note + "; " +
                         std::to_string(info.torn_bytes) +
                         " torn byte(s) truncated");
  }

  // Newest manifest entry that (a) the journal covers — the journal is
  // the source of truth, a checkpoint claiming more events than the
  // journal holds is stale — and (b) loads and validates.
  std::vector<ManifestEntry> entries =
      parse_manifest(join(dir, kManifestName), info.notes);
  for (const ManifestEntry& entry : entries) {
    state.checkpoints.emplace_back(entry.events, entry.file);
  }
  for (std::size_t i = entries.size(); i-- > 0 && !state.used_checkpoint;) {
    const ManifestEntry& entry = entries[i];
    if (entry.events > state.scan.event_records) {
      info.notes.push_back("checkpoint " + entry.file + " claims " +
                           std::to_string(entry.events) +
                           " events but the journal only holds " +
                           std::to_string(state.scan.event_records) +
                           " (stale, newer than journal); ignored");
      continue;
    }
    TraceLoadOptions load_options;
    load_options.salvage_sections = false;
    load_options.finalize_grammars = false;
    Result<Trace> loaded = Trace::try_load(join(dir, entry.file.c_str()),
                                           load_options);
    if (!loaded.ok()) {
      info.notes.push_back("checkpoint " + entry.file +
                           " unusable: " + loaded.status().to_string());
      continue;
    }
    Trace trace = loaded.take();
    if (trace.threads.size() != 1 ||
        trace.threads[0].grammar.sequence_length() != entry.events) {
      info.notes.push_back("checkpoint " + entry.file +
                           " inconsistent with its manifest entry; ignored");
      continue;
    }
    state.registry = std::move(trace.registry);
    state.grammar = std::move(trace.threads[0].grammar);
    state.checkpoint_events = entry.events;
    state.used_checkpoint = true;
    info.used_checkpoint = true;
    info.checkpoint_file = entry.file;
    info.checkpoint_events = entry.events;
  }

  // Replay every journal record in order. Intern records re-drive the
  // registry (idempotent when the checkpoint already covers them) and
  // must reproduce the same dense ids; event records re-drive
  // Grammar::append for the tail past the checkpoint, and rebuild the
  // full timestamp log so finish() can still build the timing model.
  state.log.reserve(state.scan.event_records);
  std::uint64_t kind_index = 0;
  std::uint64_t event_def_index = 0;
  std::uint64_t event_index = 0;
  for (const JournalRecord& record : state.scan.records) {
    switch (record.type) {
      case JournalRecord::Type::kKind:
        if (state.registry.intern_kind(record.name) != kind_index) {
          return Status::corrupt(
              "journal kind record " + std::to_string(record.seq) +
              " disagrees with the checkpoint registry (name '" +
              record.name + "')");
        }
        ++kind_index;
        break;
      case JournalRecord::Type::kEventDef:
        if (record.kind >= state.registry.kind_count()) {
          return Status::corrupt("journal event-def record " +
                                 std::to_string(record.seq) +
                                 " references unknown kind");
        }
        if (state.registry.intern_event(record.kind, record.aux) !=
            event_def_index) {
          return Status::corrupt(
              "journal event-def record " + std::to_string(record.seq) +
              " disagrees with the checkpoint registry");
        }
        ++event_def_index;
        break;
      case JournalRecord::Type::kEvent:
        if (record.event >= state.registry.event_count()) {
          return Status::corrupt(
              "journal event record " + std::to_string(record.seq) +
              " references terminal id " + std::to_string(record.event) +
              " before its definition");
        }
        state.log.push_back(TimedEvent::make(record.event, record.time_ns));
        if (event_index >= state.checkpoint_events) {
          state.grammar.append(record.event);
        }
        ++event_index;
        break;
      case JournalRecord::Type::kPad:
        break;
    }
  }
  if (state.grammar.sequence_length() != state.scan.event_records) {
    return Status::corrupt("recovered grammar length disagrees with the "
                           "journal (internal error)");
  }
  info.replayed_events = state.scan.event_records - state.checkpoint_events;
  info.notes.push_back(
      "recovered " + std::to_string(state.scan.event_records) + " event(s): " +
      (state.used_checkpoint
           ? "checkpoint covered " + std::to_string(state.checkpoint_events) +
                 ", replayed " + std::to_string(info.replayed_events) +
                 " from the journal"
           : "no usable checkpoint, rebuilt entirely from the journal"));
  return state;
}

}  // namespace

// --- RecordSession --------------------------------------------------------

Result<RecordSession> RecordSession::open(const std::string& dir,
                                          const SessionOptions& options) {
  if (!support::is_directory(dir)) {
    // Recursive: harness online mode nests rank-<r> sessions under a
    // shared run directory that may not exist yet.
    Status status = support::make_dirs(dir);
    if (!status.ok()) return status;
  }

  RecordSession session;
  session.dir_ = dir;
  session.options_ = options;

  const std::string journal_path = join(dir, kJournalName);
  if (!support::path_exists(journal_path)) {
    Result<JournalWriter> journal =
        JournalWriter::create(journal_path, options.journal);
    if (!journal.ok()) return journal.status();
    session.journal_ = journal.take();
    session.recorder_ =
        Recorder(Recorder::Options{options.record_timestamps});
    return session;
  }

  Result<RecoveredState> recovered = recover_state(dir, session.recovery_);
  if (!recovered.ok()) return recovered.status();
  RecoveredState state = recovered.take();

  Result<JournalWriter> journal =
      JournalWriter::resume(journal_path, options.journal, state.scan);
  if (!journal.ok()) return journal.status();
  session.journal_ = journal.take();

  session.registry_ = std::move(state.registry);
  session.recorder_ =
      Recorder(Recorder::Options{options.record_timestamps},
               std::move(state.grammar),
               options.record_timestamps ? std::move(state.log)
                                         : std::vector<TimedEvent>{});
  session.checkpoints_ = std::move(state.checkpoints);
  session.journaled_kinds_ = session.registry_.kind_count();
  session.journaled_events_ = session.registry_.event_count();
  session.events_since_checkpoint_ =
      state.scan.event_records - state.checkpoint_events;
  return session;
}

Status RecordSession::journal_new_interns() {
  while (journaled_kinds_ < registry_.kind_count()) {
    const Status status = journal_.append_kind(
        registry_.kind_name(static_cast<KindId>(journaled_kinds_)));
    if (!status.ok()) {
      if (durability_.ok()) durability_ = status;
      return durability_;
    }
    ++journaled_kinds_;
  }
  while (journaled_events_ < registry_.event_count()) {
    const auto id = static_cast<TerminalId>(journaled_events_);
    const Status status =
        journal_.append_event_def(registry_.kind_of(id), registry_.aux_of(id));
    if (!status.ok()) {
      if (durability_.ok()) durability_ = status;
      return durability_;
    }
    ++journaled_events_;
  }
  return Status();
}

KindId RecordSession::intern_kind(std::string_view name) {
  const KindId id = registry_.intern_kind(name);
  journal_new_interns();
  return id;
}

TerminalId RecordSession::intern_event(KindId kind, EventAux aux) {
  const TerminalId id = registry_.intern_event(kind, aux);
  journal_new_interns();
  return id;
}

TerminalId RecordSession::intern(std::string_view name, EventAux aux) {
  const TerminalId id = registry_.intern(name, aux);
  journal_new_interns();
  return id;
}

Status RecordSession::import_registry(const EventRegistry& src) {
  // Dense-order copy through the normal intern path: the common prefix
  // must already agree (both registries intern in dense order), so each
  // missing entry lands at the same id it has in `src` — and
  // journal_new_interns() below persists them before any event that
  // references them can be journaled.
  //
  // The prefix check matters on resume: a recovered session carries the
  // intern order of the *original* run, and a differently-scheduled
  // source registry must not silently remap its ids.
  for (std::size_t kind = 0;
       kind < registry_.kind_count() && kind < src.kind_count(); ++kind) {
    if (registry_.kind_name(static_cast<KindId>(kind)) !=
        src.kind_name(static_cast<KindId>(kind))) {
      return Status::invalid_state(
          "import_registry: kind " + std::to_string(kind) +
          " disagrees with the session registry");
    }
  }
  for (std::size_t id = 0;
       id < registry_.event_count() && id < src.event_count(); ++id) {
    const auto event = static_cast<TerminalId>(id);
    if (registry_.kind_of(event) != src.kind_of(event) ||
        registry_.aux_of(event) != src.aux_of(event)) {
      return Status::invalid_state(
          "import_registry: event " + std::to_string(id) +
          " disagrees with the session registry");
    }
  }
  for (std::size_t kind = registry_.kind_count(); kind < src.kind_count();
       ++kind) {
    registry_.intern_kind(src.kind_name(static_cast<KindId>(kind)));
  }
  for (std::size_t id = registry_.event_count(); id < src.event_count();
       ++id) {
    const auto event = static_cast<TerminalId>(id);
    if (src.kind_of(event) >= registry_.kind_count()) {
      return Status::invalid_state(
          "import_registry: source event references an unknown kind");
    }
    registry_.intern_event(src.kind_of(event), src.aux_of(event));
  }
  return journal_new_interns();
}

const Status& RecordSession::event(TerminalId event, std::uint64_t now_ns) {
  if (event >= registry_.event_count()) {
    // Caller error, reported but NOT latched into durability_: one bad id
    // must not poison the session.
    event_error_ = Status::invalid_state(
        "event id " + std::to_string(event) +
        " was never interned through this session (registry holds " +
        std::to_string(registry_.event_count()) + ")");
    return event_error_;
  }
  // WAL ordering: the journal sees the event before the grammar does, so
  // a crash can lose tail events but never journal an event the grammar
  // already consumed... the other way round the journal could under-report.
  const Status journaled = journal_.append_event(event, now_ns);
  if (!journaled.ok() && durability_.ok()) durability_ = journaled;
  recorder_.record(event, now_ns);
  support::crash_point("session.event");
  ++events_since_checkpoint_;
  if (options_.checkpoint_every_events > 0 &&
      events_since_checkpoint_ >= options_.checkpoint_every_events) {
    const Status status = checkpoint();
    if (!status.ok() && durability_.ok()) durability_ = status;
  }
  return durability_;
}

std::string RecordSession::checkpoint_path(std::uint64_t events) const {
  char name[32];
  std::snprintf(name, sizeof name, "ckpt-%012llu.pythia",
                static_cast<unsigned long long>(events));
  return name;
}

Status RecordSession::checkpoint() {
  // The checkpoint must never get ahead of the durable journal: sync
  // first, so checkpoint_events <= journaled events even across a power
  // loss right after the checkpoint lands.
  Status status = journal_.sync();
  if (!status.ok()) {
    if (durability_.ok()) durability_ = status;
    return status;
  }

  const std::uint64_t events = recorder_.event_count();
  const std::string name = checkpoint_path(events);
  const std::string path = join(dir_, name.c_str());
  const std::string temp = path + ".tmp";

  std::vector<ThreadTraceView> views;
  views.push_back({&recorder_.grammar(), nullptr});
  status = save_trace_file(temp, registry_, views, /*durable=*/true);
  if (!status.ok()) {
    std::remove(temp.c_str());
    if (durability_.ok()) durability_ = status;
    return status;
  }
  support::crash_point("checkpoint.pre_rename");
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    status = support::errno_status("rename", temp);
    std::remove(temp.c_str());
    if (durability_.ok()) durability_ = status;
    return status;
  }
  status = support::fsync_path(dir_);
  if (!status.ok()) {
    if (durability_.ok()) durability_ = status;
    return status;
  }
  support::crash_point("checkpoint.post_rename");

  const std::string line = manifest_body(events, name) + " " +
                           crc_hex(manifest_body(events, name)) + "\n";
  status = support::append_file(join(dir_, kManifestName), line.data(),
                                line.size(), /*durable=*/true);
  if (!status.ok()) {
    if (durability_.ok()) durability_ = status;
    return status;
  }
  support::crash_point("checkpoint.manifest");

  checkpoints_.emplace_back(events, name);
  // Prune: keep the newest keep_checkpoints files. The manifest keeps its
  // lines (append-only); recovery skips entries whose file is gone.
  const std::size_t keep = options_.keep_checkpoints == 0
                               ? 1
                               : options_.keep_checkpoints;
  while (checkpoints_.size() > keep) {
    std::remove(join(dir_, checkpoints_.front().second.c_str()).c_str());
    checkpoints_.erase(checkpoints_.begin());
  }
  events_since_checkpoint_ = 0;
  return Status();
}

Status RecordSession::sync() {
  const Status status = journal_.sync();
  if (!status.ok() && durability_.ok()) durability_ = status;
  return status;
}

Result<Trace> RecordSession::finish() && {
  ThreadTrace thread = std::move(recorder_).finish();
  Trace trace;
  trace.registry = registry_;
  trace.threads.push_back(std::move(thread));

  const Status journal_status = journal_.close();
  if (!journal_status.ok() && durability_.ok()) {
    durability_ = journal_status;
  }
  // try_save is atomic + durable; on failure the journal (already synced
  // by close, or intact on disk even if close failed) still holds every
  // event — trace_recover can rebuild this trace.
  const Status saved = trace.try_save(join(dir_, kTraceName));
  if (!saved.ok()) return saved;
  return trace;
}

// --- offline recovery ------------------------------------------------------

Result<Trace> recover_session(const std::string& dir, RecoveryInfo* info) {
  RecoveryInfo local;
  RecoveryInfo& out = info != nullptr ? *info : local;
  out = RecoveryInfo{};
  Result<RecoveredState> recovered = recover_state(dir, out);
  if (!recovered.ok()) return recovered.status();
  RecoveredState state = recovered.take();

  state.grammar.finalize();
  TimingModel timing;
  // The journal stores a timestamp per event; a session recording without
  // timestamps journals zeros, which would only poison the model.
  bool timestamped = false;
  for (const TimedEvent& entry : state.log) {
    if (entry.time_ns() != 0) {
      timestamped = true;
      break;
    }
  }
  if (timestamped) {
    timing = TimingModel::replay(state.grammar, state.log);
  }

  Trace trace;
  trace.registry = std::move(state.registry);
  trace.threads.emplace_back();
  trace.threads.back().grammar = std::move(state.grammar);
  trace.threads.back().timing = std::move(timing);
  return trace;
}

}  // namespace pythia
