// Thread-safe interning facade over EventRegistry.
//
// One registry is shared by every rank/thread of an instrumented job; the
// runtime shims intern through this facade and keep a per-shim cache so
// the registry is only consulted the first time a (kind, aux) pair is
// seen. Interning is rare after warm-up while decode lookups keep coming,
// so the facade uses a reader/writer lock: lookups and already-interned
// hits take a shared lock and proceed in parallel; only the first
// registration of a kind/event takes the exclusive lock.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>

#include "core/event.hpp"

namespace pythia {

class SharedRegistry {
 public:
  explicit SharedRegistry(EventRegistry& registry) : registry_(registry) {}

  KindId kind(std::string_view name) {
    {
      std::shared_lock lock(mutex_);
      KindId id;
      if (registry_.find_kind(name, id)) return id;
    }
    // Not registered yet (or raced with another registrar): take the
    // exclusive lock and intern — intern_kind re-checks, so the race is
    // benign.
    std::unique_lock lock(mutex_);
    return registry_.intern_kind(name);
  }

  TerminalId event(KindId kind, EventAux aux = kNoAux) {
    {
      std::shared_lock lock(mutex_);
      TerminalId id;
      if (registry_.find_event(kind, aux, id)) return id;
    }
    std::unique_lock lock(mutex_);
    return registry_.intern_event(kind, aux);
  }

  /// Lookups for consumers that decode predicted events while other
  /// threads may still be interning. Shared lock: decoders never block
  /// each other, only an in-flight registration.
  KindId kind_of(TerminalId event) {
    std::shared_lock lock(mutex_);
    return registry_.kind_of(event);
  }
  EventAux aux_of(TerminalId event) {
    std::shared_lock lock(mutex_);
    return registry_.aux_of(event);
  }

  /// The underlying registry. Only safe to touch single-threaded (before
  /// or after a parallel run).
  EventRegistry& registry() { return registry_; }

  /// Runs `fn(const EventRegistry&)` under the shared lock — the safe way
  /// to read the registry (e.g. copy new interns into a per-rank session)
  /// while other ranks may still be interning.
  template <typename Fn>
  auto with_registry(Fn&& fn) {
    std::shared_lock lock(mutex_);
    return fn(static_cast<const EventRegistry&>(registry_));
  }

 private:
  std::shared_mutex mutex_;
  EventRegistry& registry_;
};

/// Per-caller cache in front of a SharedRegistry.
class CachedInterner {
 public:
  explicit CachedInterner(SharedRegistry& shared) : shared_(shared) {}

  TerminalId event(KindId kind, EventAux aux = kNoAux) {
    const std::uint64_t key = (static_cast<std::uint64_t>(kind) << 32u) |
                              static_cast<std::uint32_t>(aux);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const TerminalId id = shared_.event(kind, aux);
    cache_.emplace(key, id);
    return id;
  }

 private:
  SharedRegistry& shared_;
  std::unordered_map<std::uint64_t, TerminalId> cache_;
};

}  // namespace pythia
