// Thread-safe interning facade over EventRegistry.
//
// One registry is shared by every rank/thread of an instrumented job; the
// runtime shims intern through this facade and keep a per-shim cache so
// the lock is only taken the first time a (kind, aux) pair is seen.
#pragma once

#include <mutex>
#include <string_view>
#include <unordered_map>

#include "core/event.hpp"

namespace pythia {

class SharedRegistry {
 public:
  explicit SharedRegistry(EventRegistry& registry) : registry_(registry) {}

  KindId kind(std::string_view name) {
    std::lock_guard lock(mutex_);
    return registry_.intern_kind(name);
  }

  TerminalId event(KindId kind, EventAux aux = kNoAux) {
    std::lock_guard lock(mutex_);
    return registry_.intern_event(kind, aux);
  }

  /// Locked lookups for consumers that decode predicted events while
  /// other threads may still be interning.
  KindId kind_of(TerminalId event) {
    std::lock_guard lock(mutex_);
    return registry_.kind_of(event);
  }
  EventAux aux_of(TerminalId event) {
    std::lock_guard lock(mutex_);
    return registry_.aux_of(event);
  }

  /// The underlying registry. Only safe to touch single-threaded (before
  /// or after a parallel run).
  EventRegistry& registry() { return registry_; }

 private:
  std::mutex mutex_;
  EventRegistry& registry_;
};

/// Per-caller cache in front of a SharedRegistry.
class CachedInterner {
 public:
  explicit CachedInterner(SharedRegistry& shared) : shared_(shared) {}

  TerminalId event(KindId kind, EventAux aux = kNoAux) {
    const std::uint64_t key = (static_cast<std::uint64_t>(kind) << 32u) |
                              static_cast<std::uint32_t>(aux);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const TerminalId id = shared_.event(kind, aux);
    cache_.emplace(key, id);
    return id;
  }

 private:
  SharedRegistry& shared_;
  std::unordered_map<std::uint64_t, TerminalId> cache_;
};

}  // namespace pythia
